// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation. Each benchmark regenerates its experiment at a
// reduced-but-shape-preserving scale and reports the figure's headline
// numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// produces a compact machine-readable rendition of the whole evaluation.
// For paper-scale runs use cmd/sdpcm-bench with -refs 10000000.
//
// Figures execute through the declarative sweep runner: points run in
// parallel (bit-identical results regardless of worker count) and repeat
// points are memoized. BenchmarkAllFiguresSharedCache measures the whole
// evaluation with the cache shared across figures, the sdpcm-bench -exp all
// path.
package sdpcm_test

import (
	"fmt"
	"testing"

	"sdpcm"
)

// benchOpts keeps individual benchmarks to a few hundred milliseconds.
func benchOpts() sdpcm.ExperimentOptions {
	return sdpcm.ExperimentOptions{
		RefsPerCore: 2500,
		Cores:       4,
		MemPages:    1 << 16,
		RegionPages: 1024,
		Benchmarks:  []string{"gemsFDTD", "lbm", "mcf"},
		Seed:        42,
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sdpcm.Table1()
		b.ReportMetric(t.Get("word-line", "error-rate"), "wl-rate")
		b.ReportMetric(t.Get("bit-line", "error-rate"), "bl-rate")
	}
}

func BenchmarkCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sdpcm.Capacity()
		b.ReportMetric(t.Get("capacity improvement", "value"), "improvement")
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sdpcm.Fig4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Get("gmean", "wl-avg"), "wl-err/write")
		b.ReportMetric(t.Get("gmean", "bl-avg/line"), "bl-err/line")
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sdpcm.Fig5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Get("gmean", "verify-only"), "verify-slowdown")
		b.ReportMetric(t.Get("gmean", "verify+correct"), "vnc-slowdown")
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sdpcm.Fig11(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Get("gmean", "DIN"), "din-speedup")
		b.ReportMetric(t.Get("gmean", "LazyC(ECP-6)"), "lazyc-speedup")
		b.ReportMetric(t.Get("gmean", "LazyC+PreRead+(2:3)"), "all3-speedup")
		b.ReportMetric(t.Get("gmean", "(1:2)-Alloc"), "alloc12-speedup")
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sdpcm.Fig12(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Get("average", "ECP-0"), "corr/write-ecp0")
		b.ReportMetric(t.Get("average", "ECP-6"), "corr/write-ecp6")
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sdpcm.Fig13(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Get("gmean", "ECP-6"), "ecp6-speedup")
		b.ReportMetric(t.Get("gmean", "ECP-12"), "ecp12-speedup")
	}
}

func BenchmarkFig14(b *testing.B) {
	o := benchOpts()
	o.Benchmarks = []string{"lbm"}
	for i := 0; i < b.N; i++ {
		t, err := sdpcm.Fig14(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Get("100% lifetime", "normalised-perf"), "eol-perf")
	}
}

func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sdpcm.Fig15(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Get("gmean", "wq-8"), "wq8-speedup")
		b.ReportMetric(t.Get("gmean", "wq-32"), "wq32-speedup")
		b.ReportMetric(t.Get("gmean", "wq-64"), "wq64-speedup")
	}
}

func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sdpcm.Fig16(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Get("gmean", "(1:2)"), "alloc12-speedup")
		b.ReportMetric(t.Get("gmean", "(2:3)"), "alloc23-speedup")
		b.ReportMetric(t.Get("gmean", "(3:4)"), "alloc34-speedup")
	}
}

func BenchmarkFig17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sdpcm.Fig17(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Get("gmean", "lifetime"), "data-chip-life")
	}
}

func BenchmarkFig18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sdpcm.Fig18(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Get("gmean", "lifetime"), "ecp-chip-life")
	}
}

func BenchmarkFig19(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sdpcm.Fig19(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Get("gmean", "WC"), "wc-speedup")
		b.ReportMetric(t.Get("gmean", "WC+LazyC"), "wc-lazyc-speedup")
	}
}

// BenchmarkAllFiguresSharedCache runs every simulation-backed figure through
// one shared sweep executor — the sdpcm-bench -exp all path — and reports
// how much work the memo cache deduplicates across figures.
func BenchmarkAllFiguresSharedCache(b *testing.B) {
	figs := []func(sdpcm.ExperimentOptions) (*sdpcm.ResultTable, error){
		sdpcm.Fig4, sdpcm.Fig5, sdpcm.Fig11, sdpcm.Fig12, sdpcm.Fig13,
		sdpcm.Fig14, sdpcm.Fig15, sdpcm.Fig16, sdpcm.Fig17, sdpcm.Fig18,
		sdpcm.Fig19,
	}
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Exec = sdpcm.NewSweepRunner(o)
		for _, f := range figs {
			if _, err := f(o); err != nil {
				b.Fatal(err)
			}
		}
		st := o.Exec.Stats()
		b.ReportMetric(float64(st.Points), "points")
		b.ReportMetric(float64(st.SimRuns), "sim-runs")
		b.ReportMetric(float64(st.CacheHits), "cache-hits")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (references
// simulated per second) for the heaviest scheme — useful when sizing
// paper-scale runs.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := sdpcm.SimConfig{
		Scheme:      sdpcm.AllThree(6, sdpcm.Tag23),
		Mix:         sdpcm.HomogeneousMix("mcf", 8),
		RefsPerCore: 5000,
		MemPages:    1 << 16,
		RegionPages: 1024,
		Seed:        1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sdpcm.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(8*5000*b.N)/b.Elapsed().Seconds(), "refs/s")
}

// BenchmarkSimRunSharded measures intra-run scaling of the bank-sharded
// executor on the BenchmarkSimulatorThroughput workload: the same run at 1
// (single-goroutine), 4 and 8 shard workers. Results are byte-identical at
// every shard count (pinned by the equivalence fixture); only refs/s should
// move, and only on multi-core hosts — on a single-core runner the sharded
// variants price the channel machinery, not the parallelism.
func BenchmarkSimRunSharded(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("%d", shards), func(b *testing.B) {
			cfg := sdpcm.SimConfig{
				Scheme:      sdpcm.AllThree(6, sdpcm.Tag23),
				Mix:         sdpcm.HomogeneousMix("mcf", 8),
				RefsPerCore: 5000,
				MemPages:    1 << 16,
				RegionPages: 1024,
				Seed:        1,
				Shards:      shards,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sdpcm.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(8*5000*b.N)/b.Elapsed().Seconds(), "refs/s")
		})
	}
}

// BenchmarkAblationEncoding compares word-line codecs on the same workload
// (a DESIGN.md ablation): DIN-style disturbance-aware inversion (§4.1),
// Flip-N-Write (write-minimising but disturbance-oblivious [7]) and raw
// storage. Reported: manifested word-line errors per write and programmed
// cells per write.
func BenchmarkAblationEncoding(b *testing.B) {
	for _, enc := range []string{"din", "fnw", "none"} {
		enc := enc
		b.Run(enc, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := sdpcm.LazyC(6)
				s.Encoding = enc
				r, err := sdpcm.Run(sdpcm.SimConfig{
					Scheme:      s,
					Mix:         sdpcm.HomogeneousMix("lbm", 4),
					RefsPerCore: 3000,
					MemPages:    1 << 16,
					RegionPages: 1024,
					Seed:        42,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.WordLineErrorsPerWrite(), "wl-err/write")
				b.ReportMetric(float64(r.Dev.ResetPulses+r.Dev.SetPulses)/float64(r.MC.WriteOps), "cells/write")
				b.ReportMetric(r.CPI, "CPI")
			}
		})
	}
}

// BenchmarkAblationNMRegionSize sweeps the (n:m) marking-region size (a
// DESIGN.md ablation): smaller regions mean more always-verify boundary
// strips (§4.4), eroding the allocator's VnC savings.
func BenchmarkAblationNMRegionSize(b *testing.B) {
	for _, region := range []int{256, 1024, 4096} {
		region := region
		b.Run(fmt.Sprintf("region-%d", region), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := sdpcm.Run(sdpcm.SimConfig{
					Scheme:      sdpcm.NMAlloc(sdpcm.Tag12),
					Mix:         sdpcm.HomogeneousMix("lbm", 4),
					RefsPerCore: 3000,
					MemPages:    1 << 16,
					RegionPages: region,
					Seed:        42,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.MC.VerifyReads)/float64(r.MC.WriteOps), "verify-reads/write")
				b.ReportMetric(r.CPI, "CPI")
			}
		})
	}
}

// BenchmarkAblationWearLeveling sweeps the intra-row Start-Gap period (the
// §6.7 design alternative [20]): smaller psi rotates faster, spreading wear
// at the cost of extra line copies.
func BenchmarkAblationWearLeveling(b *testing.B) {
	for _, psi := range []int{0, 100, 20} {
		psi := psi
		name := fmt.Sprintf("psi-%d", psi)
		if psi == 0 {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := sdpcm.Run(sdpcm.SimConfig{
					Scheme:       sdpcm.LazyC(6),
					Mix:          sdpcm.HomogeneousMix("lbm", 4),
					RefsPerCore:  3000,
					MemPages:     1 << 16,
					RegionPages:  1024,
					WearLevelPsi: psi,
					Seed:         42,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.CPI, "CPI")
				b.ReportMetric(float64(r.WearMoves), "gap-moves")
			}
		})
	}
}

// BenchmarkMetricsOverhead quantifies the observability layer's cost on the
// simulator throughput path. The off case is the seed hot path plus the
// nil-registry branch at every instrumentation site (the <2% budget); the
// on/trace cases price full collection and event tracing.
func BenchmarkMetricsOverhead(b *testing.B) {
	for _, mode := range []struct {
		name    string
		collect bool
		trace   int
	}{
		{"off", false, 0},
		{"on", true, 0},
		{"trace-4096", true, 4096},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := sdpcm.SimConfig{
				Scheme:         sdpcm.AllThree(6, sdpcm.Tag23),
				Mix:            sdpcm.HomogeneousMix("mcf", 8),
				RefsPerCore:    5000,
				MemPages:       1 << 16,
				RegionPages:    1024,
				Seed:           1,
				CollectMetrics: mode.collect,
				TraceEvents:    mode.trace,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sdpcm.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(8*5000*b.N)/b.Elapsed().Seconds(), "refs/s")
		})
	}
}
