// Package stats provides the metric arithmetic and table formatting used by
// the experiment harness: CPI/speedup per §5.2, geometric means across the
// multi-programmed workloads, and fixed-width result tables that mirror the
// paper's figure series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Speedup is the paper's §5.2 metric: CPI_base / CPI_tech. Values above 1
// mean tech is faster than base.
func Speedup(cpiBase, cpiTech float64) float64 {
	if cpiTech <= 0 {
		return 0
	}
	return cpiBase / cpiTech
}

// GeoMean returns the geometric mean of positive values; zero and negative
// inputs are ignored. The figures' "gmean" bar.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	out := 0.0
	for i, x := range xs {
		if i == 0 || x > out {
			out = x
		}
	}
	return out
}

// Table accumulates named rows of named columns and renders a fixed-width
// text table, the harness's output format for every reproduced figure.
type Table struct {
	Title   string
	columns []string
	rows    []string
	cells   map[string]map[string]float64
	format  string
}

// NewTable creates a table with the given column order. format is the
// fmt verb for cells (default "%8.3f").
func NewTable(title string, columns ...string) *Table {
	return &Table{
		Title:   title,
		columns: columns,
		cells:   make(map[string]map[string]float64),
		format:  "%10.3f",
	}
}

// SetFormat overrides the cell format verb.
func (t *Table) SetFormat(f string) { t.format = f }

// Set stores a cell, creating the row on first use (row order = insertion
// order).
func (t *Table) Set(row, col string, v float64) {
	m := t.cells[row]
	if m == nil {
		m = make(map[string]float64)
		t.cells[row] = m
		t.rows = append(t.rows, row)
	}
	m[col] = v
}

// Get returns a cell value (0 if unset).
func (t *Table) Get(row, col string) float64 { return t.cells[row][col] }

// Rows returns the row labels in insertion order.
func (t *Table) Rows() []string { return append([]string(nil), t.rows...) }

// Columns returns the column labels.
func (t *Table) Columns() []string { return append([]string(nil), t.columns...) }

// AddGeoMeanRow appends a "gmean" row aggregating all current rows.
func (t *Table) AddGeoMeanRow() {
	vals := make(map[string][]float64)
	for _, r := range t.rows {
		for _, c := range t.columns {
			if v, ok := t.cells[r][c]; ok {
				vals[c] = append(vals[c], v)
			}
		}
	}
	for _, c := range t.columns {
		t.Set("gmean", c, GeoMean(vals[c]))
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	rowW := 10
	for _, r := range t.rows {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	fmt.Fprintf(&b, "%-*s", rowW+2, "")
	for _, c := range t.columns {
		fmt.Fprintf(&b, "%*s", cellWidth(t.format), c)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-*s", rowW+2, r)
		for _, c := range t.columns {
			if v, ok := t.cells[r][c]; ok {
				fmt.Fprintf(&b, t.format, v)
			} else {
				fmt.Fprintf(&b, "%*s", cellWidth(t.format), "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// cellWidth extracts the width of a simple %N.Mf verb (falls back to 10).
func cellWidth(format string) int {
	w := 0
	for i := 1; i < len(format); i++ {
		ch := format[i]
		if ch >= '0' && ch <= '9' {
			w = w*10 + int(ch-'0')
			continue
		}
		break
	}
	if w == 0 {
		return 10
	}
	return w
}

// SortedKeys returns a map's keys in sorted order (stable reporting).
func SortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
