package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSpeedup(t *testing.T) {
	if Speedup(2, 1) != 2 {
		t.Fatal("halving CPI must double speedup")
	}
	if Speedup(1, 2) != 0.5 {
		t.Fatal("doubling CPI must halve speedup")
	}
	if Speedup(1, 0) != 0 {
		t.Fatal("zero CPI must not divide by zero")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean([]float64{5}); got != 5 {
		t.Fatalf("GeoMean(5) = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v", got)
	}
	// Non-positive inputs ignored.
	if got := GeoMean([]float64{0, -1, 4}); got != 4 {
		t.Fatalf("GeoMean with junk = %v", got)
	}
}

func TestGeoMeanBounds(t *testing.T) {
	// Property: min <= gmean <= max for positive inputs.
	if err := quick.Check(func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), 0.0
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
			if xs[i] < lo {
				lo = xs[i]
			}
			if xs[i] > hi {
				hi = xs[i]
			}
		}
		g := GeoMean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMax(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) wrong")
	}
	if Max([]float64{3, 9, 2}) != 9 {
		t.Fatal("Max wrong")
	}
	if Max([]float64{-5, -2}) != -2 {
		t.Fatal("Max of negatives wrong")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("Figure X", "a", "b")
	tb.Set("row1", "a", 1.5)
	tb.Set("row1", "b", 2.5)
	tb.Set("row2", "a", 3)
	out := tb.String()
	if !strings.Contains(out, "Figure X") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "row1") || !strings.Contains(out, "row2") {
		t.Fatal("rows missing")
	}
	if !strings.Contains(out, "1.500") {
		t.Fatalf("cell missing:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatal("unset cell must render as dash")
	}
	if tb.Get("row1", "b") != 2.5 {
		t.Fatal("Get wrong")
	}
	if got := tb.Rows(); len(got) != 2 || got[0] != "row1" {
		t.Fatalf("Rows = %v", got)
	}
	if got := tb.Columns(); len(got) != 2 || got[1] != "b" {
		t.Fatalf("Columns = %v", got)
	}
}

func TestTableGeoMeanRow(t *testing.T) {
	tb := NewTable("t", "x")
	tb.Set("r1", "x", 2)
	tb.Set("r2", "x", 8)
	tb.AddGeoMeanRow()
	if got := tb.Get("gmean", "x"); math.Abs(got-4) > 1e-12 {
		t.Fatalf("gmean cell = %v, want 4", got)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("SortedKeys = %v", got)
	}
}

func TestCellWidth(t *testing.T) {
	if cellWidth("%10.3f") != 10 {
		t.Fatal("width parse failed")
	}
	if cellWidth("%f") != 10 {
		t.Fatal("fallback width failed")
	}
}
