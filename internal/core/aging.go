package core

import (
	"math"

	"sdpcm/internal/pcm"
)

// EndOfLifeMeanHardErrors is the mean per-line hard-error count when the
// DIMM reaches its lifetime limit. ECP was provisioned for hard errors
// (ECP-6); a DIMM is end-of-life when the tail of the distribution starts
// exceeding the entries. With a Poisson mean of 1.5, about 0.4% of lines
// have 6+ hard errors at end of life — the tail that actually retires the
// DIMM — while the typical line still keeps 4+ entries free for
// LazyCorrection, matching Fig. 14's near-flat performance curve.
const EndOfLifeMeanHardErrors = 1.5

// HardErrorModel returns a deterministic per-line hard-error count for a
// DIMM at the given fraction of its lifetime (Fig. 14). Counts follow a
// Poisson distribution with mean EndOfLifeMeanHardErrors*fraction, sampled
// by inverse CDF from a per-address hash, so the same line always reports
// the same wear and runs remain reproducible.
func HardErrorModel(lifetimeFraction float64) func(pcm.LineAddr) int {
	if lifetimeFraction <= 0 {
		return nil
	}
	if lifetimeFraction > 1 {
		lifetimeFraction = 1
	}
	lambda := EndOfLifeMeanHardErrors * lifetimeFraction
	expNegLambda := math.Exp(-lambda)
	return func(a pcm.LineAddr) int {
		// SplitMix64 hash of the address → uniform in [0,1).
		z := uint64(a) + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		u := float64(z>>11) / (1 << 53)
		// Inverse CDF of Poisson(lambda).
		p := expNegLambda
		cdf := p
		k := 0
		for u > cdf && k < 64 {
			k++
			p *= lambda / float64(k)
			cdf += p
		}
		return k
	}
}
