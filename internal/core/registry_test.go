package core

import (
	"sort"
	"testing"
)

func TestByNameResolvesBuiltins(t *testing.T) {
	cases := []struct{ query, want string }{
		{"din", "DIN"},
		{"DIN", "DIN"}, // case-insensitive
		{"wdfree", "WD-free"},
		{"wd-free", "WD-free"}, // alias
		{"prototype", "WD-free"},
		{"vnc", "baseline"},
		{"lazyc", "LazyC(ECP-6)"},
		{"lazyc+preread", "LazyC+PreRead"},
		{"2:3", "(2:3)-Alloc"},
		{"all", "LazyC+PreRead+(2:3)"},
		{"lazyc+preread+2:3", "LazyC+PreRead+(2:3)"},
		{"wc+lazyc", "WC+LazyC"},
	}
	for _, c := range cases {
		s, err := ByName(c.query, 0)
		if err != nil {
			t.Errorf("ByName(%q): %v", c.query, err)
			continue
		}
		if s.Name != c.want {
			t.Errorf("ByName(%q).Name = %q, want %q", c.query, s.Name, c.want)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("ByName(%q): %v", c.query, err)
		}
	}
}

func TestByNameECPDefaulting(t *testing.T) {
	if s, _ := ByName("lazyc", 0); s.ECPEntries != DefaultECPEntries {
		t.Errorf("ecp<=0 gave ECP-%d, want the default %d", s.ECPEntries, DefaultECPEntries)
	}
	if s, _ := ByName("lazyc", 8); s.ECPEntries != 8 {
		t.Errorf("ecp=8 gave ECP-%d", s.ECPEntries)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("no-such-scheme", 0); err == nil {
		t.Fatal("unknown scheme resolved")
	}
}

func TestNamesSortedAndCanonical(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("Names() lists %q twice", n)
		}
		seen[n] = true
		if _, err := ByName(n, 0); err != nil {
			t.Errorf("canonical name %q does not resolve: %v", n, err)
		}
	}
	for _, want := range []string{"baseline", "din", "lazyc+preread", "wc"} {
		if !seen[want] {
			t.Errorf("built-in %q missing from Names() = %v", want, names)
		}
	}
	// Aliases resolve but are not listed.
	if seen["vnc"] || seen["prototype"] {
		t.Errorf("aliases leaked into Names() = %v", names)
	}
}

func TestAliasesOf(t *testing.T) {
	got := AliasesOf("wdfree")
	want := []string{"wd-free", "prototype"}
	if len(got) != len(want) {
		t.Fatalf("AliasesOf(wdfree) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AliasesOf(wdfree) = %v, want %v", got, want)
		}
	}
	if AliasesOf("din") != nil {
		t.Errorf("AliasesOf(din) = %v, want none", AliasesOf("din"))
	}
	if AliasesOf("nope") != nil {
		t.Errorf("AliasesOf(nope) = %v for unknown name", AliasesOf("nope"))
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	mustPanic := func(name string, aliases []string) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Register(%q, %v) did not panic", name, aliases)
			}
		}()
		Register(name, aliases, func(int) Scheme { return Baseline() })
	}
	mustPanic("din", nil)               // duplicate canonical name
	mustPanic("BASELINE", nil)          // case-insensitive collision
	mustPanic("vnc", nil)               // name colliding with an alias
	mustPanic("fresh", []string{"wc"})  // alias colliding with a name
	mustPanic("fresh", []string{"vnc"}) // alias colliding with an alias
	mustPanic("", nil)                  // empty name
	// A failed Register must not leave partial state behind.
	if _, err := ByName("fresh", 0); err == nil {
		t.Error("failed registration left a resolvable name")
	}
}
