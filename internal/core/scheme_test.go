package core

import (
	"testing"

	"sdpcm/internal/alloc"
	"sdpcm/internal/geometry"
	"sdpcm/internal/mc"
)

func TestRosterValidates(t *testing.T) {
	for _, s := range Figure11Roster() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	for _, s := range []Scheme{WDFree(), PreReadOnly(), WC(), WCLazyC(6)} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestValidateCatchesBadSchemes(t *testing.T) {
	bad := []Scheme{
		{}, // no name
		{Name: "x", Layout: geometry.Layout{WordLinePitchF: 1, BitLinePitchF: 2}, Tag: alloc.Tag11},
		{Name: "x", Layout: geometry.SuperDense, Tag: alloc.Tag{N: 5, M: 2}},
		{Name: "x", Layout: geometry.SuperDense, Tag: alloc.Tag11, ECPEntries: -1},
		// LazyCorrection without bit-line WD is a configuration error.
		{Name: "x", Layout: geometry.DINEnhanced, Tag: alloc.Tag11, LazyCorrection: true},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad scheme %d accepted", i)
		}
	}
}

func TestSchemeRates(t *testing.T) {
	if r := Baseline().Rates(); r.BitLine == 0 || r.WordLine == 0 {
		t.Error("4F² must disturb on both axes")
	}
	if r := DIN().Rates(); r.BitLine != 0 || r.WordLine == 0 {
		t.Error("8F² must disturb along word-lines only")
	}
	if r := WDFree().Rates(); r.BitLine != 0 || r.WordLine != 0 {
		t.Error("12F² must be disturbance-free")
	}
}

func TestNeedsVnC(t *testing.T) {
	if !Baseline().NeedsVnC() {
		t.Error("baseline needs VnC")
	}
	if DIN().NeedsVnC() || WDFree().NeedsVnC() {
		t.Error("WD-free bit-line layouts must not need VnC")
	}
}

func TestMCConfigTranslation(t *testing.T) {
	s := AllThree(6, alloc.Tag23)
	cfg := s.MCConfig(16)
	if !cfg.VerifyNeighbors || cfg.Correction != mc.LazyECP() || cfg.Preread != mc.IdleSlotPreread() {
		t.Errorf("config = %+v", cfg)
	}
	if cfg.ECPEntries != 6 || cfg.WriteQueueCap != 16 {
		t.Errorf("config = %+v", cfg)
	}
	if !cfg.UseDIN {
		t.Error("all schemes keep DIN encoding on (§4.1)")
	}
	din := DIN().MCConfig(0)
	if din.VerifyNeighbors {
		t.Error("DIN scheme must not verify neighbours")
	}
}

func TestCapacityFraction(t *testing.T) {
	if got := Baseline().CapacityFraction(); got != 1.0 {
		t.Errorf("baseline capacity = %v", got)
	}
	if got := DIN().CapacityFraction(); got != 0.5 {
		t.Errorf("DIN capacity = %v (8F² halves density)", got)
	}
	if got := NMAlloc(alloc.Tag12).CapacityFraction(); got != 0.5 {
		t.Errorf("(1:2) capacity = %v", got)
	}
	// LazyC+(2:3) still beats DIN on capacity: 2/3 > 1/2 (§6.3's point).
	if LazyCNM(6, alloc.Tag23).CapacityFraction() <= DIN().CapacityFraction() {
		t.Error("(2:3) super dense must out-capacity DIN")
	}
}

func TestSchemeNames(t *testing.T) {
	if LazyC(6).Name != "LazyC(ECP-6)" {
		t.Errorf("name = %q", LazyC(6).Name)
	}
	if NMAlloc(alloc.Tag12).Name != "(1:2)-Alloc" {
		t.Errorf("name = %q", NMAlloc(alloc.Tag12).Name)
	}
	if AllThree(6, alloc.Tag23).Name != "LazyC+PreRead+(2:3)" {
		t.Errorf("name = %q", AllThree(6, alloc.Tag23).Name)
	}
}
