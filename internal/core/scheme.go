// Package core composes SD-PCM's mechanisms into the named schemes the
// paper evaluates (§5.3). A Scheme selects the cell-array layout (which
// fixes the disturbance rates), the VnC mitigation stack (LazyCorrection,
// PreRead, write cancellation, ECP provisioning) and the page-allocator tag
// ((n:m)-Alloc). Schemes translate directly into memory-controller
// configurations and carry the capacity consequences of their layout.
package core

import (
	"fmt"

	"sdpcm/internal/alloc"
	"sdpcm/internal/din"
	"sdpcm/internal/fnw"
	"sdpcm/internal/geometry"
	"sdpcm/internal/mc"
	"sdpcm/internal/pcm"
	"sdpcm/internal/thermal"
)

// Scheme is one evaluated design point.
type Scheme struct {
	Name string
	// Layout is the cell-array geometry: SuperDense (4F²) for every SD-PCM
	// variant, DINEnhanced (8F²) for the DIN comparator, Prototype (12F²)
	// for the WD-free reference.
	Layout geometry.Layout
	// LazyCorrection, PreRead, WriteCancel enable §4.2, §4.3 and §6.8.
	LazyCorrection bool
	PreRead        bool
	WriteCancel    bool
	// ECPEntries is N of ECP-N (0 disables; the paper defaults to 6).
	ECPEntries int
	// Tag is the (n:m) page allocator the workload's memory comes from.
	Tag alloc.Tag
	// HardErrorFn models device aging (Fig. 14); nil = pristine DIMM.
	HardErrorFn func(pcm.LineAddr) int
	// NoVerifyCharge / NoCorrectCharge make the corresponding VnC phase
	// free in time (device effects still happen). Instrumentation knobs for
	// the Figure 5 overhead decomposition, never part of a real design.
	NoVerifyCharge, NoCorrectCharge bool
	// Encoding selects the word-line codec: "din" (default, §4.1),
	// "fnw" (Flip-N-Write [7], for the encoding ablation) or "none"
	// (raw storage, exposes unmitigated word-line WD).
	Encoding string
	// Policy, when set, post-processes the assembled controller
	// configuration — the hook plugin schemes use to install their own
	// policy values (internal/imdb's in-module barrier is the worked
	// example). MCConfig calls it once per invocation and the hook must
	// install fresh policy state each call, so concurrent runs of the same
	// Scheme stay independent.
	Policy func(*mc.Config)
	// PolicyKey is the declarative identity of the Policy hook for result
	// memoization (e.g. "imdb:8"). A scheme with a Policy but no PolicyKey
	// is not cacheable — an opaque func pointer says nothing about its
	// behaviour (same rule as HardErrorFn).
	PolicyKey string
}

// Rates returns the layout's disturbance probabilities at the paper's
// technology node.
func (s Scheme) Rates() thermal.Rates {
	return thermal.RatesFor(s.Layout.WordLinePitchF, s.Layout.BitLinePitchF, geometry.FeatureSizeNM)
}

// NeedsVnC reports whether the layout exposes bit-line WD (4F²), requiring
// the verify-and-correct machinery.
func (s Scheme) NeedsVnC() bool { return s.Rates().BitLine > 0 }

// MCConfig translates the scheme into a memory-controller configuration.
// writeQueueCap <= 0 selects the Table 2 default (32).
func (s Scheme) MCConfig(writeQueueCap int) mc.Config {
	var enc mc.Encoder
	switch s.Encoding {
	case "", "din":
		// nil Encoder + UseDIN selects the DIN codec in the controller.
	case "fnw":
		enc = fnw.NewCodec()
	case "none":
		enc = (*din.Codec)(nil)
	default:
		panic(fmt.Sprintf("core: unknown encoding %q", s.Encoding))
	}
	cfg := mc.Config{
		Encoder:         enc,
		Rates:           s.Rates(),
		VerifyNeighbors: s.NeedsVnC(),
		Correction:      mc.EagerCorrection(),
		ECPEntries:      s.ECPEntries,
		Preread:         mc.NoPreread(),
		Drain:           mc.BurstyDrain(),
		WriteQueueCap:   writeQueueCap,
		UseDIN:          true,
		ChargeVerify:    !s.NoVerifyCharge,
		ChargeCorrect:   !s.NoCorrectCharge,
		HardErrorFn:     s.HardErrorFn,
	}
	if s.LazyCorrection {
		cfg.Correction = mc.LazyECP()
	}
	if s.PreRead {
		cfg.Preread = mc.IdleSlotPreread()
	}
	if s.WriteCancel {
		cfg.Drain = mc.WriteCancelDrain()
	}
	if s.Policy != nil {
		s.Policy(&cfg)
	}
	return cfg
}

// Validate reports configuration errors.
func (s Scheme) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("core: scheme without a name")
	}
	if !s.Layout.Valid() {
		return fmt.Errorf("core: scheme %s has invalid layout", s.Name)
	}
	if !s.Tag.Valid() {
		return fmt.Errorf("core: scheme %s has invalid tag %v", s.Name, s.Tag)
	}
	if s.ECPEntries < 0 {
		return fmt.Errorf("core: scheme %s has negative ECP entries", s.Name)
	}
	if s.LazyCorrection && !s.NeedsVnC() {
		return fmt.Errorf("core: scheme %s enables LazyCorrection on a WD-free-bit-line layout", s.Name)
	}
	switch s.Encoding {
	case "", "din", "fnw", "none":
	default:
		return fmt.Errorf("core: scheme %s has unknown encoding %q", s.Name, s.Encoding)
	}
	return nil
}

// CapacityFraction returns the scheme's usable cell-array capacity relative
// to the ideal super dense array: layout density times the (n:m) allocator's
// strip usage. The §6 performance/capacity trade-off in one number.
func (s Scheme) CapacityFraction() float64 {
	return s.Layout.DensityRelativeTo(geometry.SuperDense) * s.Tag.CapacityFraction()
}

// The §5.3 scheme roster.

// DIN is the state-of-the-art comparator: DIN-encoded 8F² PCM, WD-free
// along bit-lines, no VnC needed.
func DIN() Scheme {
	return Scheme{Name: "DIN", Layout: geometry.DINEnhanced, Tag: alloc.Tag11}
}

// WDFree is the 12F² prototype layout with no disturbance at all (the no-op
// reference used to decompose VnC overhead, Fig. 5).
func WDFree() Scheme {
	return Scheme{Name: "WD-free", Layout: geometry.Prototype, Tag: alloc.Tag11}
}

// Baseline is basic VnC on super dense 4F² PCM.
func Baseline() Scheme {
	return Scheme{Name: "baseline", Layout: geometry.SuperDense, Tag: alloc.Tag11}
}

// LazyC is LazyCorrection (ECP-N) on top of baseline; the paper's default
// is 6 entries.
func LazyC(ecpEntries int) Scheme {
	return Scheme{
		Name:           fmt.Sprintf("LazyC(ECP-%d)", ecpEntries),
		Layout:         geometry.SuperDense,
		LazyCorrection: true,
		ECPEntries:     ecpEntries,
		Tag:            alloc.Tag11,
	}
}

// PreReadOnly is PreRead on top of baseline (§5.3's standalone PreRead).
func PreReadOnly() Scheme {
	return Scheme{Name: "PreRead", Layout: geometry.SuperDense, PreRead: true, Tag: alloc.Tag11}
}

// LazyCPreRead combines LazyCorrection and PreRead.
func LazyCPreRead(ecpEntries int) Scheme {
	s := LazyC(ecpEntries)
	s.Name = "LazyC+PreRead"
	s.PreRead = true
	return s
}

// NMAlloc is baseline VnC with an (n:m) page allocator.
func NMAlloc(tag alloc.Tag) Scheme {
	return Scheme{
		Name:   fmt.Sprintf("%v-Alloc", tag),
		Layout: geometry.SuperDense,
		Tag:    tag,
	}
}

// LazyCNM combines LazyCorrection with an (n:m) allocator.
func LazyCNM(ecpEntries int, tag alloc.Tag) Scheme {
	s := LazyC(ecpEntries)
	s.Name = fmt.Sprintf("LazyC+%v", tag)
	s.Tag = tag
	return s
}

// AllThree combines LazyCorrection, PreRead and (n:m)-Alloc (§6.3's best
// composite).
func AllThree(ecpEntries int, tag alloc.Tag) Scheme {
	s := LazyCNM(ecpEntries, tag)
	s.Name = fmt.Sprintf("LazyC+PreRead+%v", tag)
	s.PreRead = true
	return s
}

// WC is write cancellation on top of baseline VnC (§6.8).
func WC() Scheme {
	return Scheme{Name: "WC", Layout: geometry.SuperDense, WriteCancel: true, Tag: alloc.Tag11}
}

// WCLazyC combines write cancellation with LazyCorrection (§6.8).
func WCLazyC(ecpEntries int) Scheme {
	s := LazyC(ecpEntries)
	s.Name = "WC+LazyC"
	s.WriteCancel = true
	return s
}

// Figure11Roster returns the schemes of the paper's headline comparison in
// presentation order (all normalised to Baseline when reported).
func Figure11Roster() []Scheme {
	return []Scheme{
		DIN(),
		Baseline(),
		LazyC(ecpDefault),
		LazyCPreRead(ecpDefault),
		LazyCNM(ecpDefault, alloc.Tag23),
		AllThree(ecpDefault, alloc.Tag23),
		NMAlloc(alloc.Tag12),
	}
}

const ecpDefault = 6

// DefaultECPEntries is the paper's ECP provisioning.
const DefaultECPEntries = ecpDefault
