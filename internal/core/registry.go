package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"sdpcm/internal/alloc"
)

// The scheme registry maps the CLI/experiment vocabulary to scheme
// constructors, the way database/sql maps driver names: packages register
// at init time (the built-in roster below; internal/imdb registers its
// in-module barrier) and callers resolve with ByName. sdpcm-sim,
// sdpcm-bench and experiments all look schemes up here, so a new scheme
// registered anywhere appears in every tool without edits.

// Ctor builds a registered scheme at the given ECP provisioning;
// ecpEntries <= 0 selects DefaultECPEntries. Constructors of schemes with
// no ECP use ignore the argument.
type Ctor func(ecpEntries int) Scheme

type regEntry struct {
	canonical string
	aliases   []string
	ctor      Ctor
}

var (
	regMu     sync.RWMutex
	registry  = map[string]*regEntry{} // lowercase name or alias → entry
	canonical []string                 // sorted canonical names
)

// Register adds a scheme constructor under a canonical name plus optional
// aliases (all matched case-insensitively). It panics on a duplicate name
// or alias — registration collisions are programming errors, caught at
// init time like duplicate database/sql drivers.
func Register(name string, aliases []string, ctor Ctor) {
	if name == "" || ctor == nil {
		panic("core: Register with empty name or nil constructor")
	}
	regMu.Lock()
	defer regMu.Unlock()
	e := &regEntry{canonical: strings.ToLower(name), aliases: aliases, ctor: ctor}
	keys := make([]string, 0, 1+len(aliases))
	for _, key := range append([]string{name}, aliases...) {
		key = strings.ToLower(key)
		if _, dup := registry[key]; dup {
			panic(fmt.Sprintf("core: scheme %q registered twice", key))
		}
		keys = append(keys, key)
	}
	for _, key := range keys {
		registry[key] = e
	}
	canonical = append(canonical, e.canonical)
	sort.Strings(canonical)
}

// ByName resolves a scheme name or alias (case-insensitive) through the
// registry. ecpEntries <= 0 selects DefaultECPEntries.
func ByName(name string, ecpEntries int) (Scheme, error) {
	regMu.RLock()
	e := registry[strings.ToLower(name)]
	regMu.RUnlock()
	if e == nil {
		return Scheme{}, fmt.Errorf("unknown scheme %q", name)
	}
	if ecpEntries <= 0 {
		ecpEntries = DefaultECPEntries
	}
	return e.ctor(ecpEntries), nil
}

// Names returns the sorted canonical names of every registered scheme —
// the live -scheme vocabulary for usage hints.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(canonical))
	copy(out, canonical)
	return out
}

// AliasesOf returns the registered aliases of a canonical scheme name (nil
// when it has none or is unknown). Documentation generators use this.
func AliasesOf(name string) []string {
	regMu.RLock()
	defer regMu.RUnlock()
	e := registry[strings.ToLower(name)]
	if e == nil || len(e.aliases) == 0 {
		return nil
	}
	out := make([]string, len(e.aliases))
	copy(out, e.aliases)
	return out
}

// The built-in §5.3 roster, under the names the CLIs always used.
func init() {
	fixed := func(f func() Scheme) Ctor { return func(int) Scheme { return f() } }
	Register("din", nil, fixed(DIN))
	Register("wdfree", []string{"wd-free", "prototype"}, fixed(WDFree))
	Register("baseline", []string{"vnc"}, fixed(Baseline))
	Register("lazyc", nil, LazyC)
	Register("preread", nil, fixed(PreReadOnly))
	Register("lazyc+preread", nil, LazyCPreRead)
	Register("1:2", nil, fixed(func() Scheme { return NMAlloc(alloc.Tag12) }))
	Register("2:3", nil, fixed(func() Scheme { return NMAlloc(alloc.Tag23) }))
	Register("3:4", nil, fixed(func() Scheme { return NMAlloc(alloc.Tag34) }))
	Register("lazyc+2:3", nil, func(ecp int) Scheme { return LazyCNM(ecp, alloc.Tag23) })
	Register("all", []string{"lazyc+preread+2:3"}, func(ecp int) Scheme { return AllThree(ecp, alloc.Tag23) })
	Register("wc", nil, fixed(WC))
	Register("wc+lazyc", nil, WCLazyC)
}
