package mc

import (
	"sdpcm/internal/metrics"
	"sdpcm/internal/pcm"
)

// CorrectionPolicy decides what happens to the WD errors that post-write
// verification detects on an adjacent line: correct them now (eager), park
// them in ECP entries (§4.2 LazyCorrection) or buffer them elsewhere (e.g.
// internal/imdb's in-module barrier). Unlike the schedulers, the interface
// is open — external packages implement it to plug new schemes in without
// touching the controller core.
//
// Absorb gets first refusal on a detected error batch: returning
// absorbed=true claims the errors (the controller counts a lazy record and
// skips the correction write), absorbed=false sends the line down the
// standard correction path. cycles is any bank time the decision consumed
// (the built-in policies use none; a policy that evicts through
// PolicyContext.Correct reports the eviction's cost here). depth is the
// cascade recursion level of the triggering verification; pass it through
// to PolicyContext.Correct so recursion stays bounded.
//
// newBits (the set-bit indices of flips, ascending) is backed by a scratch
// buffer the controller reuses; it is valid only for the duration of the
// call — a policy that retains it past Absorb's return must copy it first.
//
// A stateful policy may additionally implement ReadOverrider, WriteObserver
// and Drainer; the controller resolves these once at construction.
type CorrectionPolicy interface {
	Absorb(ctx PolicyContext, addr pcm.LineAddr, flips pcm.Mask, newBits []int, depth int) (cycles int, absorbed bool)
}

// ReadOverrider lets a correction policy holding buffered (not yet applied)
// repairs present corrected data on reads: OverrideRead receives the
// ECP-corrected raw line and returns what the module actually delivers.
type ReadOverrider interface {
	OverrideRead(a pcm.LineAddr, line pcm.Line) pcm.Line
}

// WriteObserver is notified of every normal array write before it programs:
// a fresh write supersedes any errors a policy has buffered for that line
// (the same rule that releases parked ECP entries for free, §4.2).
type WriteObserver interface {
	ObserveWrite(a pcm.LineAddr)
}

// Drainer writes a policy's buffered repairs back at flush time (the buffer
// is volatile module state) and returns the total bank cycles consumed.
type Drainer interface {
	DrainFlush(ctx PolicyContext) int
}

// PolicyContext is the bounded view of the controller a CorrectionPolicy
// acts through: ECP parking and the standard correction path, without
// access to queue or bank scheduling state.
type PolicyContext struct {
	c *Controller
}

// RecordWD tries to park an error batch in the line's free ECP entries
// (X + Y <= N); recording happens in the WD-free low-density ECP chip and
// costs no data-bank time.
func (p PolicyContext) RecordWD(a pcm.LineAddr, bits []int) bool {
	return p.c.ecp.RecordWD(a, bits)
}

// Recorded returns the line's currently parked WD error count.
func (p PolicyContext) Recorded(a pcm.LineAddr) int { return p.c.ecp.Recorded(a) }

// Correct runs the standard correction path on a line: rewrite clearing the
// given flips plus anything ECP has pending, cascade-verify the rewrite's
// own neighbours (bounded by MaxCascadeDepth). Returns the bank cycles
// consumed. Reentrant: a policy may call it from Absorb to evict.
func (p PolicyContext) Correct(a pcm.LineAddr, flips pcm.Mask, depth int) int {
	return p.c.correctLine(a, flips, depth)
}

// MaxCascadeDepth exposes the cascade recursion bound.
func (p PolicyContext) MaxCascadeDepth() int { return p.c.cfg.MaxCascadeDepth }

// EagerCorrection returns the basic-VnC policy: every detected error batch
// is corrected immediately.
func EagerCorrection() CorrectionPolicy { return eagerCorrection{} }

type eagerCorrection struct{}

func (eagerCorrection) Absorb(PolicyContext, pcm.LineAddr, pcm.Mask, []int, int) (int, bool) {
	return 0, false
}

// LazyECP returns the §4.2 LazyCorrection policy: park the errors if the
// line's free ECP entries cover them, correct otherwise.
func LazyECP() CorrectionPolicy { return lazyECP{} }

type lazyECP struct{}

func (lazyECP) Absorb(ctx PolicyContext, addr pcm.LineAddr, flips pcm.Mask, newBits []int, depth int) (int, bool) {
	return 0, ctx.RecordWD(addr, newBits)
}

// scratchBits renders flips into the controller's per-depth scratch buffer
// and returns the set-bit indices, ascending. One buffer per cascade depth
// keeps the slices disjoint across the recursion verifyNeighbour → Absorb →
// PolicyContext.Correct → verifyNeighbour(depth+1): depth strictly increases
// down that call chain, so at most one frame per depth is ever live. The
// returned slice is valid until the next verification at the same depth
// (the CorrectionPolicy contract).
func (c *Controller) scratchBits(depth int, flips pcm.Mask) []int {
	for len(c.bitScratch) <= depth {
		c.bitScratch = append(c.bitScratch, make([]int, 0, pcm.LineBits))
	}
	out := flips.AppendBits(c.bitScratch[depth][:0])
	c.bitScratch[depth] = out
	return out
}

// verifyNeighbour performs the post-write read of one adjacent line and
// resolves any disturbance found there through the correction policy.
// depth tracks cascade recursion (0 = first-level verification of the
// original write).
func (c *Controller) verifyNeighbour(addr pcm.LineAddr, flips pcm.Mask, depth int) int {
	cycles := 0
	// Post-write read.
	c.dev.CountRead(addr)
	if depth == 0 {
		c.Stats.VerifyReads++
		if c.cfg.ChargeVerify {
			cycles += c.cfg.Timing.ReadCycles
			c.Stats.VerifyCycles += uint64(c.cfg.Timing.ReadCycles)
		}
	} else {
		c.Stats.CascadeReads++
		if c.cfg.ChargeCorrect {
			cycles += c.cfg.Timing.ReadCycles
			c.Stats.CorrectCycles += uint64(c.cfg.Timing.ReadCycles)
		}
	}
	if !flips.Any() {
		return cycles
	}
	newBits := c.scratchBits(depth, flips)
	if c.tr != nil {
		c.tr.Emit(c.engine.Now, metrics.EvWDDetected, uint64(addr), uint64(len(newBits)), uint64(depth))
	}
	d, absorbed := c.cfg.Correction.Absorb(PolicyContext{c}, addr, flips, newBits, depth)
	cycles += d
	if absorbed {
		c.Stats.LazyRecords++
		c.hm.RecordParked(addr, len(newBits))
		if c.tr != nil {
			c.tr.Emit(c.engine.Now, metrics.EvWDParked, uint64(addr), uint64(len(newBits)), uint64(c.ecp.Recorded(addr)))
		}
		return cycles
	}
	// Correction write: RESET every pending disturbed cell (newly found and
	// previously parked); hard errors stay in their entries.
	cycles += c.correctLine(addr, flips, depth)
	return cycles
}

// correctLine rewrites a disturbed line to clear its WD errors and runs
// cascading verification on the correction's own neighbours.
func (c *Controller) correctLine(addr pcm.LineAddr, newFlips pcm.Mask, depth int) int {
	cycles := 0
	pending := c.ecp.CorrectionMask(addr).Or(newFlips)
	raw := c.dev.Peek(addr)
	var corrected pcm.Line
	for i := range raw {
		corrected[i] = raw[i] &^ pending[i]
	}
	res := c.dev.Write(addr, corrected, pcm.CorrectionWrite)
	c.ecp.ClearWD(addr, true)
	c.Stats.CorrectionWrites++
	c.cascadeDepth.Observe(uint64(depth))
	c.hm.RecordCorrection(addr, pending.PopCount(), depth)
	if c.tr != nil {
		c.tr.Emit(c.engine.Now, metrics.EvWDFlushed, uint64(addr), uint64(pending.PopCount()), uint64(depth))
	}
	if c.cfg.ChargeCorrect {
		cycles += res.Cycles
		c.Stats.CorrectCycles += uint64(res.Cycles)
	}
	// The correction write is a write: its RESET pulses disturb. Note the
	// corrected line's content is already (conceptually) known from the
	// verification read, so no fresh pre-reads are needed here — cascading
	// verification is post-reads only (§6.8).
	out := c.engine.OnWrite(c.dev, addr, raw, corrected, res.Reset, res.Set)
	if out.RewritePulses > 0 && c.cfg.ChargeCorrect {
		d := c.cfg.Timing.WriteCycles(out.RewritePulses, 0)
		cycles += d
		c.Stats.CorrectCycles += uint64(d)
	}
	if depth >= c.cfg.MaxCascadeDepth {
		c.Stats.CascadeTruncated++
		return cycles
	}
	above, below, okA, okB := c.geo.AdjacentLines(addr, c.dev.RowsPerBank)
	vt, vb := c.verifySides(addr.Page())
	if (okA && vt || okB && vb) && c.tr != nil {
		c.tr.Emit(c.engine.Now, metrics.EvCascadeStep, uint64(addr), uint64(depth+1), 0)
	}
	if okA && vt {
		cycles += c.verifyNeighbour(above, out.Above, depth+1)
	}
	if okB && vb {
		cycles += c.verifyNeighbour(below, out.Below, depth+1)
	}
	return cycles
}
