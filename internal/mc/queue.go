package mc

import (
	"sdpcm/internal/metrics"
	"sdpcm/internal/pcm"
)

// This file is the controller core's queue machinery: per-bank write queues,
// background (watermark) draining, lazy catch-up execution and the flush
// path. It dispatches to the pluggable policies only through their
// interfaces — adding a scheme must not require edits here.

// DrainPolicy decides what happens when a write-back finds its bank's queue
// full: how much room to make and whether demand reads may preempt the
// resulting drain. BurstyDrain and WriteCancelDrain are the built-in
// implementations. The interface is sealed (unexported methods): drain
// decisions manipulate bank scheduling state directly.
type DrainPolicy interface {
	// onFull makes room in a full queue at now (the §5.1 drain decision).
	// It runs after the controller has counted the drain and floored the
	// bank's freeAt at now.
	onFull(c *Controller, b *bank, now uint64)
	// onRead observes a demand read arriving at now, after lazy catch-up
	// and before the read is timed — the write-cancellation accounting
	// point.
	onRead(c *Controller, b *bank, now uint64, addr pcm.LineAddr)
}

// BurstyDrain returns the §5.1 default full-queue policy: flush the queue
// down to the low watermark in one burst, blocking that bank's reads for
// the whole drain.
func BurstyDrain() DrainPolicy { return burstyDrain{} }

type burstyDrain struct{}

func (burstyDrain) onFull(c *Controller, b *bank, now uint64) {
	for len(b.wq) > c.cfg.LowWatermark {
		c.Stats.BurstOps++
		c.executeNext(b, true)
	}
}

func (burstyDrain) onRead(*Controller, *bank, uint64, pcm.LineAddr) {}

// writeEntry is one write-queue slot (Fig. 8: address, data, two PreRead
// flag bits and two 64 B buffers).
type writeEntry struct {
	id         uint64
	addr       pcm.LineAddr
	data       pcm.Line // decoded new content
	enqueuedAt uint64

	verifyTop, verifyBelow bool
	top, below             pcm.LineAddr
	topOK, belowOK         bool

	prTop, prBelow   bool
	bufTop, bufBelow pcm.Line
}

// bank is one PCM bank's scheduling state.
type bank struct {
	freeAt   uint64
	wq       []*writeEntry
	draining bool
	prereads []prOp
}

// findEntry locates a queued write to addr.
func (b *bank) findEntry(addr pcm.LineAddr) *writeEntry {
	for _, e := range b.wq {
		if e.addr == addr {
			return e
		}
	}
	return nil
}

func (b *bank) findEntryByID(id uint64) *writeEntry {
	for _, e := range b.wq {
		if e.id == id {
			return e
		}
	}
	return nil
}

// catchUp advances a bank's lazy work to time t: completed prereads are
// retired, and (under a drain) queued write ops whose start time has passed
// are executed. At most one op ends past t (the in-flight op). Any idle
// time left afterwards goes to the preread scheduler (§4.3: "a PreRead
// operation often has the opportunity to be issued when its associated
// memory bank is idle").
func (c *Controller) catchUp(b *bank, t uint64) {
	c.cfg.Preread.retire(c, b, t)
	for len(b.wq) > 0 && b.freeAt <= t && (b.draining || len(b.wq) > c.cfg.LowWatermark) {
		c.Stats.BackgroundOps++
		c.executeNext(b, false)
		if b.draining && len(b.wq) <= c.cfg.LowWatermark {
			b.draining = false
		}
	}
	if b.draining && len(b.wq) <= c.cfg.LowWatermark {
		b.draining = false
	}
	c.cfg.Preread.issue(c, b, t)
}

// executeNext pops the oldest write entry and runs its full VnC write op,
// advancing freeAt. Work cannot start before the write arrived. burst marks
// ops retired inside a full-queue drain (trace attribution only). The
// retired entry returns to the controller's pool: with queues bounded by
// WriteQueueCap the steady-state write path allocates nothing.
func (c *Controller) executeNext(b *bank, burst bool) {
	e := b.wq[0]
	// Shift down instead of advancing the slice: the backing array keeps its
	// capacity, so the queue never reallocates after warm-up. n <= wq cap
	// pointer moves per op — noise next to the write op itself.
	n := copy(b.wq, b.wq[1:])
	b.wq[n] = nil
	b.wq = b.wq[:n]
	b.freeAt = max(b.freeAt, e.enqueuedAt)
	if c.tr != nil {
		var bf uint64
		if burst {
			bf = 1
		}
		c.tr.Emit(b.freeAt, metrics.EvQueueDrain, uint64(e.addr), b.freeAt-e.enqueuedAt, bf)
	}
	c.queueRes.Observe(b.freeAt - e.enqueuedAt)
	d := c.executeWrite(b, e)
	b.freeAt += uint64(d)
	// No pointer to e survives execution (prereads reference entries by id),
	// so the entry is free for reuse.
	c.entryPool = append(c.entryPool, e)
}

// Write buffers a write-back arriving at `now` (posted: the core does not
// stall). A full queue triggers the configured drain policy: the §5.1
// bursty drain by default, the lazy preemptible drain under write
// cancellation.
func (c *Controller) Write(now uint64, addr pcm.LineAddr, data pcm.Line) {
	c.Stats.WriteRequests++
	loc := c.geo.Locate(addr)
	b := &c.banks[loc.Bank]
	c.catchUp(b, now)
	if e := b.findEntry(addr); e != nil {
		// Coalesce: update in place; pre-read state is unaffected.
		e.data = data
		c.Stats.Coalesced++
		return
	}
	if len(b.wq) >= c.cfg.WriteQueueCap {
		c.Stats.Drains++
		if c.tr != nil {
			c.tr.Emit(now, metrics.EvQueueStall, uint64(addr), uint64(len(b.wq)), 0)
		}
		b.freeAt = max(b.freeAt, now)
		c.cfg.Drain.onFull(c, b, now)
	}
	e := c.newEntry(addr, data)
	e.enqueuedAt = now
	b.wq = append(b.wq, e)
	c.queueDepth.Observe(uint64(len(b.wq)))
	if c.tr != nil {
		c.tr.Emit(now, metrics.EvQueueEnqueue, uint64(addr), uint64(len(b.wq)), 0)
	}
	c.cfg.Preread.issue(c, b, now)
}

// newEntry builds a write-queue entry (recycling a retired one when the
// pool has one), resolving the (n:m) verification decisions for its two
// bit-line neighbours.
func (c *Controller) newEntry(addr pcm.LineAddr, data pcm.Line) *writeEntry {
	c.nextID++
	var e *writeEntry
	if n := len(c.entryPool); n > 0 {
		e = c.entryPool[n-1]
		c.entryPool[n-1] = nil
		c.entryPool = c.entryPool[:n-1]
		*e = writeEntry{id: c.nextID, addr: addr, data: data}
	} else {
		e = &writeEntry{id: c.nextID, addr: addr, data: data}
	}
	e.top, e.below, e.topOK, e.belowOK = c.geo.AdjacentLines(addr, c.dev.RowsPerBank)
	vt, vb := c.verifySides(addr.Page())
	e.verifyTop = vt && e.topOK
	e.verifyBelow = vb && e.belowOK
	return e
}

// verifySides applies §4.4: which bit-line neighbours of a write to this
// page hold data and need VnC. With VerifyNeighbors off (WD-free bit-lines)
// nothing is verified.
func (c *Controller) verifySides(p pcm.PageAddr) (top, below bool) {
	if !c.cfg.VerifyNeighbors {
		return false, false
	}
	tag := c.region.RegionTag(p)
	s := c.region.StripIndexInRegion(p)
	return tag.VerifyNeighbors(s, c.region.StripsPerRegion())
}

// Flush drains every bank completely (end of simulation or checkpoint) and
// returns the cycle all work finishes. A correction policy holding buffered
// repairs (Drainer) writes them back here — its buffer is volatile module
// SRAM and must be empty at power-down.
func (c *Controller) Flush(now uint64) uint64 {
	end, drain := c.FlushParts(now)
	return end + drain
}

// FlushParts is Flush split into its two components: the cycle this
// controller's bank queues run dry, and the policy drain-buffer cost that is
// conservatively serialised after all queue work. Separating them lets the
// sharded simulator combine per-bank controllers exactly as one controller
// would: global end = max over banks of the queue end, plus the sum of every
// drain cost (the single-controller DrainFlush already sums its banks).
func (c *Controller) FlushParts(now uint64) (end, drain uint64) {
	end = now
	for i := range c.banks {
		b := &c.banks[i]
		c.catchUp(b, now)
		b.freeAt = max(b.freeAt, now)
		for len(b.wq) > 0 {
			c.executeNext(b, false)
		}
		b.draining = false
		end = max(end, b.freeAt)
	}
	if c.drainer != nil {
		drain = uint64(c.drainer.DrainFlush(PolicyContext{c}))
	}
	return end, drain
}

// QueueOccupancy returns the total buffered writes (for tests/monitoring).
func (c *Controller) QueueOccupancy() int {
	n := 0
	for i := range c.banks {
		n += len(c.banks[i].wq)
	}
	return n
}
