package mc

import (
	"sdpcm/internal/metrics"
	"sdpcm/internal/pcm"
)

// PrereadScheduler manages the §4.3 pre-write reads: when queued write
// entries get their two neighbour buffers filled, and what happens to
// in-flight prereads when a demand read claims the bank. NoPreread and
// IdleSlotPreread are the built-in implementations. The interface is sealed
// (unexported methods): scheduling manipulates bank and queue-entry state
// directly.
type PrereadScheduler interface {
	// retire drops prereads completed by time t (called before queued work
	// catches up).
	retire(c *Controller, b *bank, t uint64)
	// issue uses bank idle time at now to perform pending pre-write reads
	// for queued entries.
	issue(c *Controller, b *bank, now uint64)
	// cancel aborts in-flight prereads at time t: demand reads have
	// priority (§4.3).
	cancel(c *Controller, b *bank, t uint64)
}

// NoPreread returns the disabled scheduler: pre-write reads happen inside
// the write op itself.
func NoPreread() PrereadScheduler { return noPreread{} }

type noPreread struct{}

func (noPreread) retire(*Controller, *bank, uint64) {}
func (noPreread) issue(*Controller, *bank, uint64)  {}
func (noPreread) cancel(*Controller, *bank, uint64) {}

// IdleSlotPreread returns the §4.3 scheduler: pending pre-write reads issue
// during bank idle slots, neighbours present in the write queue are
// forwarded from their entry buffers at no bank cost, and demand reads
// cancel in-flight prereads.
func IdleSlotPreread() PrereadScheduler { return idleSlotPreread{} }

type idleSlotPreread struct{}

// prOp is an in-flight PreRead occupying bank time; cancellable by a demand
// read until its end time passes.
type prOp struct {
	start, end uint64
	entryID    uint64
	top        bool
}

// retire drops completed prereads.
func (idleSlotPreread) retire(c *Controller, b *bank, t uint64) {
	keep := b.prereads[:0]
	for _, p := range b.prereads {
		if p.end > t {
			keep = append(keep, p)
		}
	}
	b.prereads = keep
}

// issue uses bank idle time at `now` to perform pending pre-write reads for
// queued entries (§4.3).
func (s idleSlotPreread) issue(c *Controller, b *bank, now uint64) {
	idle := b.freeAt <= now && !b.draining
	for _, e := range b.wq {
		if e.verifyTop && !e.prTop {
			idle = s.issueOne(c, b, e, true, now, idle)
		}
		if e.verifyBelow && !e.prBelow {
			idle = s.issueOne(c, b, e, false, now, idle)
		}
	}
}

// issueOne services one pending pre-write read. Forwarding from a queued
// write to the neighbour costs no bank time and happens regardless of bank
// state; a device read requires the idle grant. Returns whether further
// device reads may still be issued in this batch.
func (idleSlotPreread) issueOne(c *Controller, b *bank, e *writeEntry, top bool, now uint64, idle bool) bool {
	neighbour := e.top
	if !top {
		neighbour = e.below
	}
	// Forward from the queue when the neighbour line has a pending write:
	// by the time this entry executes, the queue (FIFO) will have written
	// it, so the buffered data is the authoritative old content (§4.3).
	if other := b.findEntry(neighbour); other != nil {
		if top {
			e.prTop, e.bufTop = true, other.data
		} else {
			e.prBelow, e.bufBelow = true, other.data
		}
		c.Stats.PreReadsForwarded++
		if c.tr != nil {
			c.tr.Emit(now, metrics.EvPreReadForwarded, uint64(neighbour), e.id, 0)
		}
		return idle
	}
	if !idle {
		return false
	}
	start := max(b.freeAt, now)
	end := start + uint64(c.cfg.Timing.ReadCycles)
	buf := c.dev.Read(neighbour)
	if top {
		e.prTop, e.bufTop = true, buf
	} else {
		e.prBelow, e.bufBelow = true, buf
	}
	b.freeAt = end
	b.prereads = append(b.prereads, prOp{start: start, end: end, entryID: e.id, top: top})
	c.Stats.PreReadsIssued++
	if c.tr != nil {
		c.tr.Emit(start, metrics.EvPreReadIssued, uint64(neighbour), e.id, 0)
	}
	return true
}

// cancel aborts in-flight prereads (end > t): demand reads have priority
// (§4.3). Bank time is rolled back to the first canceled start — prereads
// are always the newest work on the bank.
func (idleSlotPreread) cancel(c *Controller, b *bank, t uint64) {
	if len(b.prereads) == 0 {
		return
	}
	rollback := b.freeAt
	keep := b.prereads[:0]
	for _, p := range b.prereads {
		if p.end <= t {
			keep = append(keep, p)
			continue
		}
		c.Stats.PreReadsCanceled++
		if p.start < rollback {
			rollback = p.start
		}
		if e := b.findEntryByID(p.entryID); e != nil {
			var victim pcm.LineAddr
			if p.top {
				e.prTop = false
				victim = e.top
			} else {
				e.prBelow = false
				victim = e.below
			}
			if c.tr != nil {
				c.tr.Emit(t, metrics.EvPreReadCanceled, uint64(victim), p.entryID, 0)
			}
		}
	}
	b.prereads = keep
	if rollback < b.freeAt {
		b.freeAt = rollback
	}
}
