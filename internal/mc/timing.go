package mc

import (
	"sdpcm/internal/metrics"
	"sdpcm/internal/pcm"
)

// This file is the controller core's externally-timed operations: demand
// read servicing and the complete VnC write op. Like queue.go, it reaches
// the pluggable policies only through their interfaces.

// Read services a demand read arriving at `now`. It returns the cycle the
// data is available and the (ECP-corrected, decoded) line content.
func (c *Controller) Read(now uint64, addr pcm.LineAddr) (uint64, pcm.Line) {
	c.Stats.DemandReads++
	loc := c.geo.Locate(addr)
	b := &c.banks[loc.Bank]
	// Write-queue forwarding: the freshest value lives in the queue.
	if e := b.findEntry(addr); e != nil {
		c.Stats.ForwardedReads++
		done := now + uint64(c.cfg.ForwardCycles)
		c.Stats.ReadLatencySum += uint64(c.cfg.ForwardCycles)
		c.readLat.Observe(uint64(c.cfg.ForwardCycles))
		return done, e.data
	}
	c.catchUp(b, now)
	c.cfg.Drain.onRead(c, b, now, addr)
	c.cfg.Preread.cancel(c, b, now)
	start := max(now, b.freeAt)
	data := c.PeekData(addr)
	c.dev.CountRead(addr) // demand array read
	done := start + uint64(c.cfg.Timing.ReadCycles)
	b.freeAt = done
	c.Stats.ReadCycles += uint64(c.cfg.Timing.ReadCycles)
	c.Stats.ReadLatencySum += done - now
	c.Stats.ReadWaitSum += start - now
	c.readLat.Observe(done - now)
	return done, data
}

// executeWrite runs one complete write operation for a queue entry and
// returns the bank cycles it consumes. The flow (§3.2, §4.2):
//
//  1. pre-write reads of the adjacent lines that need verification, unless
//     PreRead already buffered them;
//  2. DIN encoding, differential programming, in-line word-line
//     verify-and-rewrite (folded into the program phase);
//  3. post-write reads of the same adjacent lines; comparison yields the
//     manifested bit-line WD errors;
//  4. per neighbour: the correction policy absorbs the errors (LazyC parks
//     X+Y<=N of them in ECP entries) or a correction write RESETs the
//     disturbed cells, which cascades — the correction is itself a write
//     whose neighbours must be verified — until a verification finds no new
//     errors.
func (c *Controller) executeWrite(b *bank, e *writeEntry) int {
	c.Stats.WriteOps++
	// The engine stamps trace events with the op's start time (writes run
	// asynchronously to core time, so "now" is when the bank begins the op).
	c.engine.Now = b.freeAt
	cycles := 0

	// --- 1. Pre-write reads (charged as verification). ---
	if e.verifyTop || e.verifyBelow {
		missing := 0
		if e.verifyTop && !e.prTop {
			e.bufTop = c.dev.Read(e.top)
			e.prTop = true
			missing++
		}
		if e.verifyBelow && !e.prBelow {
			e.bufBelow = c.dev.Read(e.below)
			e.prBelow = true
			missing++
		}
		if missing == 0 {
			c.Stats.PreReadHits++
			if c.tr != nil {
				c.tr.Emit(b.freeAt, metrics.EvPreReadHit, uint64(e.addr), 0, 0)
			}
		}
		c.Stats.VerifyReads += uint64(missing)
		if c.cfg.ChargeVerify {
			d := missing * c.cfg.Timing.ReadCycles
			cycles += d
			c.Stats.VerifyCycles += uint64(d)
		}
	}

	// --- 2. Program the line. ---
	// A fresh write supersedes any WD errors parked for this line (§4.2):
	// the ECP entries are released for free, and a buffering policy drops
	// its pending repairs the same way.
	c.ecp.ClearWD(e.addr, false)
	if c.writeObserver != nil {
		c.writeObserver.ObserveWrite(e.addr)
	}
	old := c.dev.Peek(e.addr)
	img := c.codec.Encode(e.addr, e.data, old)
	res := c.dev.Write(e.addr, img, pcm.NormalWrite)
	out := c.engine.OnWrite(c.dev, e.addr, old, img, res.Reset, res.Set)
	prog := res.Cycles
	if out.RewritePulses > 0 {
		// In-line rewrite rounds extend the program phase.
		prog += c.cfg.Timing.WriteCycles(out.RewritePulses, 0)
	}
	cycles += prog
	c.Stats.ProgramCycles += uint64(prog)

	// --- 3/4. Verify adjacent lines and handle their errors. ---
	if e.verifyTop {
		cycles += c.verifyNeighbour(e.top, out.Above, 0)
	}
	if e.verifyBelow {
		cycles += c.verifyNeighbour(e.below, out.Below, 0)
	}
	return cycles
}
