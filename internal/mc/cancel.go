package mc

import (
	"sdpcm/internal/metrics"
	"sdpcm/internal/pcm"
)

// WriteCancelDrain returns the §6.8 [22] full-queue policy: the drain runs
// lazily — ops execute as simulated time passes and demand reads preempt
// the drain at write-op boundaries instead of waiting for the whole burst.
func WriteCancelDrain() DrainPolicy { return writeCancelDrain{} }

type writeCancelDrain struct{}

// onFull marks the bank draining (catch-up retires ops as time passes) and
// makes room for the incoming write now.
func (writeCancelDrain) onFull(c *Controller, b *bank, now uint64) {
	b.draining = true
	for len(b.wq) >= c.cfg.WriteQueueCap {
		c.Stats.BurstOps++
		c.executeNext(b, true)
	}
}

// onRead counts a demand read that preempts an in-flight drain: the read
// waits only for the in-flight op (write cancellation / pausing); remaining
// drain work resumes after the read.
func (writeCancelDrain) onRead(c *Controller, b *bank, now uint64, addr pcm.LineAddr) {
	if b.draining && b.freeAt > now {
		c.Stats.ReadPreemptions++
		if c.tr != nil {
			c.tr.Emit(now, metrics.EvWriteCancel, uint64(addr), uint64(len(b.wq)), 0)
		}
	}
}
