package mc

import (
	"testing"

	"sdpcm/internal/alloc"
	"sdpcm/internal/pcm"
	"sdpcm/internal/rng"
	"sdpcm/internal/thermal"
)

const testPages = 512 // 32 rows per bank

var (
	denseRates = thermal.RatesFor(2, 2, 20) // 4F²: WD on both axes
	dinRates   = thermal.RatesFor(2, 4, 20) // 8F²: word-line WD only
)

// testRig bundles a controller with its device and allocator.
type testRig struct {
	c *Controller
	d *pcm.Device
	a *alloc.Allocator
}

func newRig(t *testing.T, cfg Config) *testRig {
	t.Helper()
	d, err := pcm.NewDevice(pcm.Config{Pages: testPages, FillSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, err := alloc.New(testPages, 128)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cfg, d, a, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{c: c, d: d, a: a}
}

func baselineCfg() Config {
	return Config{
		Rates:           denseRates,
		VerifyNeighbors: true,
		UseDIN:          true,
		ChargeVerify:    true,
		ChargeCorrect:   true,
	}
}

func dinCfg() Config {
	return Config{
		Rates:           dinRates,
		VerifyNeighbors: false,
		UseDIN:          true,
		ChargeVerify:    true,
		ChargeCorrect:   true,
	}
}

func lineWith(words ...uint64) pcm.Line {
	var l pcm.Line
	copy(l[:], words)
	return l
}

func TestReadLatency(t *testing.T) {
	r := newRig(t, dinCfg())
	done, _ := r.c.Read(1000, pcm.LineOf(100, 0))
	if done != 1400 {
		t.Fatalf("idle-bank read done at %d, want 1400", done)
	}
}

func TestBankConflictSerialisesReads(t *testing.T) {
	r := newRig(t, dinCfg())
	a1 := pcm.LineOf(100, 0)
	a2 := pcm.LineOf(100+pcm.NumBanks, 0) // same bank, next row
	done1, _ := r.c.Read(0, a1)
	done2, _ := r.c.Read(10, a2)
	if done1 != 400 || done2 != 800 {
		t.Fatalf("same-bank reads done at %d/%d, want 400/800", done1, done2)
	}
	// A different bank is independent.
	done3, _ := r.c.Read(10, pcm.LineOf(101, 0))
	if done3 != 410 {
		t.Fatalf("other-bank read done at %d, want 410", done3)
	}
}

func TestWriteReadBack(t *testing.T) {
	r := newRig(t, baselineCfg())
	addr := pcm.LineOf(100, 5)
	data := lineWith(0xdeadbeef, 42)
	r.c.Write(0, addr, data)
	if got := r.c.QueueOccupancy(); got != 1 {
		t.Fatalf("queue occupancy = %d", got)
	}
	// Forwarding from the queue.
	done, got := r.c.Read(100, addr)
	if got != data {
		t.Fatal("forwarded read returned wrong data")
	}
	if done != 100+40 {
		t.Fatalf("forwarded read done at %d, want 140", done)
	}
	if r.c.Stats.ForwardedReads != 1 {
		t.Fatal("forwarding not counted")
	}
	// After flush, from the array.
	r.c.Flush(1000)
	if got := r.c.PeekData(addr); got != data {
		t.Fatalf("array readback = %v, want %v", got, data)
	}
}

func TestWriteCoalescing(t *testing.T) {
	r := newRig(t, baselineCfg())
	addr := pcm.LineOf(100, 0)
	r.c.Write(0, addr, lineWith(1))
	r.c.Write(10, addr, lineWith(2))
	if r.c.QueueOccupancy() != 1 || r.c.Stats.Coalesced != 1 {
		t.Fatalf("occupancy=%d coalesced=%d", r.c.QueueOccupancy(), r.c.Stats.Coalesced)
	}
	_, got := r.c.Read(20, addr)
	if got != lineWith(2) {
		t.Fatal("coalesced write must expose the newest data")
	}
}

func TestFullQueueTriggersBurstyDrain(t *testing.T) {
	cfg := baselineCfg()
	cfg.WriteQueueCap = 4
	cfg.LowWatermark = 3
	r := newRig(t, cfg)
	bankPage := pcm.PageAddr(100) // all writes to bank 100%16=4
	// Busy the bank first so background draining cannot run.
	r.c.Read(0, pcm.LineOf(bankPage, 60))
	for i := 0; i < 5; i++ {
		addr := pcm.LineOf(bankPage, i)
		r.c.Write(uint64(i+1), addr, lineWith(uint64(i)))
	}
	// The 5th write found the queue full: bursty drain down to the
	// watermark, then the new write is buffered.
	if r.c.Stats.Drains != 1 {
		t.Fatalf("drains = %d, want 1", r.c.Stats.Drains)
	}
	if r.c.Stats.WriteOps != 1 || r.c.QueueOccupancy() != 4 {
		t.Fatalf("ops=%d occupancy=%d", r.c.Stats.WriteOps, r.c.QueueOccupancy())
	}
	// A read to that bank must wait behind the burst.
	done, _ := r.c.Read(10, pcm.LineOf(bankPage+16*3, 20))
	if done < 400+400+400 { // initial read + >=1 write op + this read
		t.Fatalf("read done at %d, expected to wait for the burst", done)
	}
}

func TestBackgroundDrainUsesIdleBanks(t *testing.T) {
	// Writes above the watermark retire during idle time without any
	// bursty drain, so reads arriving much later see a free bank.
	cfg := baselineCfg()
	cfg.WriteQueueCap = 8
	cfg.LowWatermark = 2
	r := newRig(t, cfg)
	for i := 0; i < 6; i++ {
		r.c.Write(uint64(i)*100000, pcm.LineOf(100, i), lineWith(uint64(i), 3))
	}
	if r.c.Stats.Drains != 0 {
		t.Fatalf("drains = %d, want 0 (background only)", r.c.Stats.Drains)
	}
	if r.c.Stats.WriteOps == 0 {
		t.Fatal("background drain never ran")
	}
	if r.c.QueueOccupancy() > cfg.LowWatermark+1 {
		t.Fatalf("occupancy = %d, want near watermark", r.c.QueueOccupancy())
	}
	// Bank long idle: a late read is serviced immediately.
	done, _ := r.c.Read(10_000_000, pcm.LineOf(100+16*2, 40))
	if done != 10_000_400 {
		t.Fatalf("late read done at %d, want 10000400", done)
	}
}

func TestDINSchemeWritesAreCheap(t *testing.T) {
	// With WD-free bit-lines there are no verification reads, no
	// corrections, and no disturbance on neighbours.
	cfg := dinCfg()
	cfg.WriteQueueCap = 2
	r := newRig(t, cfg)
	for i := 0; i < 10; i++ {
		r.c.Write(uint64(i*10), pcm.LineOf(100, i), lineWith(uint64(i), 7))
	}
	r.c.Flush(1000)
	if r.c.Stats.VerifyReads != 0 || r.c.Stats.CorrectionWrites != 0 {
		t.Fatalf("DIN scheme did VnC: %+v", r.c.Stats)
	}
	if r.c.Engine().Stats.BitLineFlips != 0 {
		t.Fatal("8F² layout must have no bit-line flips")
	}
}

func TestBaselineVnCVerifiesBothNeighbours(t *testing.T) {
	cfg := baselineCfg()
	cfg.WriteQueueCap = 1
	r := newRig(t, cfg)
	// Interior row write: both neighbours exist and are (1:1)-verified.
	addr := pcm.LineOf(100, 0)
	r.c.Write(0, addr, lineWith(0xffffffff, 0xff00ff00))
	r.c.Flush(10)
	// 2 pre-write + 2 post-write reads.
	if r.c.Stats.VerifyReads != 4 {
		t.Fatalf("verify reads = %d, want 4", r.c.Stats.VerifyReads)
	}
}

func TestBoundaryRowsVerifyOnlyExistingNeighbours(t *testing.T) {
	cfg := baselineCfg()
	cfg.WriteQueueCap = 1
	r := newRig(t, cfg)
	r.c.Write(0, pcm.LineOf(3, 0), lineWith(1)) // row 0: no top neighbour
	r.c.Flush(10)
	if r.c.Stats.VerifyReads != 2 {
		t.Fatalf("row-0 verify reads = %d, want 2 (below only)", r.c.Stats.VerifyReads)
	}
}

func TestCorrectionsHappenWithoutECP(t *testing.T) {
	// ECP-0 baseline: every detected flip forces a correction write.
	cfg := baselineCfg()
	cfg.ECPEntries = 0
	cfg.WriteQueueCap = 4
	r := newRig(t, cfg)
	var clock uint64
	for i := 0; i < 200; i++ {
		addr := pcm.LineOf(pcm.PageAddr(16+i%64), i%64)
		data := lineWith(uint64(i)*0x9e3779b97f4a7c15, ^uint64(i), uint64(i)<<32)
		r.c.Write(clock, addr, data)
		clock += 1000
	}
	r.c.Flush(clock)
	if r.c.Stats.CorrectionWrites == 0 {
		t.Fatal("expected corrections with ECP-0 under dense rates")
	}
	perWrite := float64(r.c.Stats.CorrectionWrites) / float64(r.c.Stats.WriteOps)
	if perWrite < 0.3 {
		t.Fatalf("corrections per write = %v, implausibly low for ECP-0", perWrite)
	}
}

func TestLazyCorrectionReducesCorrections(t *testing.T) {
	run := func(lazy bool, entries int) (corrections, ops uint64) {
		cfg := baselineCfg()
		if lazy {
			cfg.Correction = LazyECP()
		}
		cfg.ECPEntries = entries
		cfg.WriteQueueCap = 4
		r := newRig(t, cfg)
		var clock uint64
		for i := 0; i < 300; i++ {
			addr := pcm.LineOf(pcm.PageAddr(16+i%64), i%64)
			data := lineWith(uint64(i)*0xabcdef123, ^uint64(i*3))
			r.c.Write(clock, addr, data)
			clock += 1000
		}
		r.c.Flush(clock)
		return r.c.Stats.CorrectionWrites, r.c.Stats.WriteOps
	}
	c0, ops0 := run(false, 0)
	c6, ops6 := run(true, 6)
	r0 := float64(c0) / float64(ops0)
	r6 := float64(c6) / float64(ops6)
	if r6 >= r0/2 {
		t.Fatalf("LazyC/ECP-6 corrections per write %v not well below baseline %v", r6, r0)
	}
}

func TestDataIntegrityGolden(t *testing.T) {
	// The whole point of VnC: under heavy disturbance, every line the host
	// wrote must read back exactly, and untouched in-use lines must keep
	// their original content. Run each scheme combination through the same
	// random workload and verify.
	schemes := []struct {
		name string
		cfg  Config
	}{
		{"baseline", baselineCfg()},
		{"lazy6", func() Config {
			c := baselineCfg()
			c.Correction = LazyECP()
			c.ECPEntries = 6
			return c
		}()},
		{"lazy0", func() Config {
			c := baselineCfg()
			c.Correction = LazyECP()
			c.ECPEntries = 0
			return c
		}()},
		{"preread", func() Config {
			c := baselineCfg()
			c.Preread = IdleSlotPreread()
			return c
		}()},
		{"wc+lazy", func() Config {
			c := baselineCfg()
			c.Drain = WriteCancelDrain()
			c.Correction = LazyECP()
			c.ECPEntries = 6
			return c
		}()},
		{"din", dinCfg()},
	}
	for _, s := range schemes {
		s := s
		t.Run(s.name, func(t *testing.T) {
			cfg := s.cfg
			cfg.WriteQueueCap = 4
			r := newRig(t, cfg)
			shadow := map[pcm.LineAddr]pcm.Line{}
			rnd := rng.New(5)
			var clock uint64
			for i := 0; i < 1500; i++ {
				page := pcm.PageAddr(rnd.Intn(256))
				addr := pcm.LineOf(page, rnd.Intn(64))
				if rnd.Bernoulli(0.6) {
					var data pcm.Line
					for w := range data {
						data[w] = rnd.Uint64()
					}
					r.c.Write(clock, addr, data)
					shadow[addr] = data
				} else {
					_, got := r.c.Read(clock, addr)
					want, ok := shadow[addr]
					if ok && got != want {
						t.Fatalf("read %d returned stale/corrupt data", addr)
					}
				}
				clock += uint64(rnd.Intn(2000))
			}
			r.c.Flush(clock)
			for addr, want := range shadow {
				if got := r.c.PeekData(addr); got != want {
					t.Fatalf("line %d corrupted: WD escaped VnC", addr)
				}
			}
			// Untouched lines in verified territory must be pristine.
			fresh, err := pcm.NewDevice(pcm.Config{Pages: testPages, FillSeed: 7})
			if err != nil {
				t.Fatal(err)
			}
			checked := 0
			for p := pcm.PageAddr(0); p < 256; p++ {
				for slot := 0; slot < 64; slot += 17 {
					addr := pcm.LineOf(p, slot)
					if _, written := shadow[addr]; written {
						continue
					}
					checked++
					if got := r.c.PeekData(addr); got != fresh.Peek(addr) {
						t.Fatalf("untouched line %d corrupted (slot %d page %d)", addr, slot, p)
					}
				}
			}
			if checked == 0 {
				t.Fatal("test checked nothing")
			}
		})
	}
}

func TestPreReadUsesIdleBanks(t *testing.T) {
	cfg := baselineCfg()
	cfg.Preread = IdleSlotPreread()
	cfg.WriteQueueCap = 8
	r := newRig(t, cfg)
	// Write with a long quiet period: prereads issue immediately at
	// enqueue (bank idle).
	r.c.Write(0, pcm.LineOf(100, 0), lineWith(0xff, 0xee))
	if r.c.Stats.PreReadsIssued != 2 {
		t.Fatalf("prereads issued = %d, want 2", r.c.Stats.PreReadsIssued)
	}
	// Let them complete, then drain: the write op needs no pre-write reads.
	r.c.Flush(100000)
	if r.c.Stats.PreReadHits != 1 {
		t.Fatalf("preread hits = %d, want 1", r.c.Stats.PreReadHits)
	}
	// Only the 2 post-write verification reads were charged at write time.
	if r.c.Stats.VerifyReads != 2 {
		t.Fatalf("verify reads at write time = %d, want 2", r.c.Stats.VerifyReads)
	}
}

func TestPreReadCanceledByDemandRead(t *testing.T) {
	cfg := baselineCfg()
	cfg.Preread = IdleSlotPreread()
	r := newRig(t, cfg)
	r.c.Write(0, pcm.LineOf(100, 0), lineWith(1)) // prereads start at 0
	// Demand read to the same bank 100 cycles later: both prereads are
	// still in flight (400 cycles each, serial): cancel them.
	done, _ := r.c.Read(100, pcm.LineOf(100+16, 30))
	if done != 500 {
		t.Fatalf("demand read done at %d, want 500 (no preread wait)", done)
	}
	if r.c.Stats.PreReadsCanceled == 0 {
		t.Fatal("in-flight prereads must be canceled by a demand read")
	}
}

func TestPreReadForwardsFromQueue(t *testing.T) {
	cfg := baselineCfg()
	cfg.Preread = IdleSlotPreread()
	cfg.WriteQueueCap = 8
	r := newRig(t, cfg)
	top := pcm.LineOf(100, 0)
	bottom := pcm.LineOf(100+16, 0) // bit-line neighbour of top
	r.c.Write(0, top, lineWith(0xaa))
	// Busy the bank? No: second write's preread of `top` must forward from
	// the queue at zero bank cost.
	r.c.Write(10, bottom, lineWith(0xbb))
	if r.c.Stats.PreReadsForwarded == 0 {
		t.Fatal("expected forwarded preread for queued neighbour")
	}
}

func TestWriteCancellationPreemptsDrain(t *testing.T) {
	mkRig := func(wc bool) (*testRig, uint64) {
		cfg := baselineCfg()
		if wc {
			cfg.Drain = WriteCancelDrain()
		}
		cfg.WriteQueueCap = 8
		cfg.LowWatermark = 2
		r := newRig(t, cfg)
		// Busy the bank so writes pile up, then overflow the queue to
		// trigger a drain at t=10.
		r.c.Read(0, pcm.LineOf(100, 60))
		for i := 0; i < 9; i++ {
			r.c.Write(uint64(i+1), pcm.LineOf(100, i), lineWith(uint64(i), ^uint64(i), uint64(i)*3))
		}
		// Read arriving mid-drain.
		done, _ := r.c.Read(1000, pcm.LineOf(100+16*2, 40))
		return r, done
	}
	_, doneNoWC := mkRig(false)
	rWC, doneWC := mkRig(true)
	if doneWC >= doneNoWC {
		t.Fatalf("WC read done at %d, no-WC at %d: cancellation must help", doneWC, doneNoWC)
	}
	if rWC.c.Stats.ReadPreemptions == 0 {
		t.Fatal("preemption not counted")
	}
	// The paused drain must still complete eventually.
	rWC.c.Flush(1 << 40)
	if rWC.c.QueueOccupancy() != 0 {
		t.Fatal("drain never completed after preemption")
	}
}

func TestNMAllocSkipsNoUseNeighbours(t *testing.T) {
	cfg := baselineCfg()
	cfg.WriteQueueCap = 1
	r := newRig(t, cfg)
	// Allocate under (1:2) so the written pages' neighbours are no-use.
	b, err := r.a.Alloc(32, alloc.Tag12)
	if err != nil {
		t.Fatal(err)
	}
	usable := r.a.Usable(b)
	var clock uint64
	for _, p := range usable {
		// Skip region-boundary strips, which always verify one side.
		s := r.a.StripIndexInRegion(p)
		if s == 0 || s == r.a.StripsPerRegion()-1 {
			continue
		}
		r.c.Write(clock, pcm.LineOf(p, 3), lineWith(uint64(p)))
		clock += 100000
	}
	r.c.Flush(clock)
	if r.c.Stats.VerifyReads != 0 {
		t.Fatalf("(1:2) interior writes did %d verify reads, want 0", r.c.Stats.VerifyReads)
	}
}

func TestNMAlloc23VerifiesOneSide(t *testing.T) {
	cfg := baselineCfg()
	cfg.WriteQueueCap = 1
	r := newRig(t, cfg)
	b, err := r.a.Alloc(64, alloc.Tag23)
	if err != nil {
		t.Fatal(err)
	}
	var clock uint64
	writes := 0
	for _, p := range r.a.Usable(b) {
		s := r.a.StripIndexInRegion(p)
		if s == 0 || s == r.a.StripsPerRegion()-1 {
			continue
		}
		r.c.Write(clock, pcm.LineOf(p, 0), lineWith(uint64(p), 0xf0f0))
		clock += 100000
		writes++
	}
	r.c.Flush(clock)
	// Each interior (2:3) write verifies exactly one neighbour: 1 pre + 1
	// post read.
	if int(r.c.Stats.VerifyReads) != 2*writes {
		t.Fatalf("verify reads = %d for %d writes, want %d",
			r.c.Stats.VerifyReads, writes, 2*writes)
	}
}

func TestChargeDecomposition(t *testing.T) {
	// With verification charging off, VnC still happens (device effects)
	// but consumes no bank time for the reads.
	cfg := baselineCfg()
	cfg.ChargeVerify = false
	cfg.WriteQueueCap = 1
	r := newRig(t, cfg)
	r.c.Write(0, pcm.LineOf(100, 0), lineWith(0x1234, 0x5678))
	r.c.Flush(10)
	if r.c.Stats.VerifyReads != 4 {
		t.Fatalf("verify reads = %d, want 4 (still performed)", r.c.Stats.VerifyReads)
	}
	if r.c.Stats.VerifyCycles != 0 {
		t.Fatalf("verify cycles = %d, want 0 (not charged)", r.c.Stats.VerifyCycles)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		r, err := pcm.NewDevice(pcm.Config{Pages: testPages, FillSeed: 7})
		if err != nil {
			t.Fatal(err)
		}
		a, _ := alloc.New(testPages, 128)
		cfg := baselineCfg()
		cfg.Correction = LazyECP()
		cfg.ECPEntries = 6
		cfg.Preread = IdleSlotPreread()
		cfg.WriteQueueCap = 4
		c, err := New(cfg, r, a, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		rnd := rng.New(2)
		var clock uint64
		for i := 0; i < 500; i++ {
			addr := pcm.LineOf(pcm.PageAddr(rnd.Intn(200)), rnd.Intn(64))
			if rnd.Bool() {
				var data pcm.Line
				data[0] = rnd.Uint64()
				c.Write(clock, addr, data)
			} else {
				c.Read(clock, addr)
			}
			clock += uint64(rnd.Intn(500))
		}
		c.Flush(clock)
		return c.Stats
	}
	if run() != run() {
		t.Fatal("controller must be deterministic under fixed seeds")
	}
}
