package mc

import (
	"sdpcm/internal/metrics"
	"sdpcm/internal/pcm"
)

// executeWrite runs one complete write operation for a queue entry and
// returns the bank cycles it consumes. The flow (§3.2, §4.2):
//
//  1. pre-write reads of the adjacent lines that need verification, unless
//     PreRead already buffered them;
//  2. DIN encoding, differential programming, in-line word-line
//     verify-and-rewrite (folded into the program phase);
//  3. post-write reads of the same adjacent lines; comparison yields the
//     manifested bit-line WD errors;
//  4. per neighbour: LazyCorrection parks X+Y<=N errors in ECP entries;
//     otherwise a correction write RESETs the disturbed cells, which
//     cascades — the correction is itself a write whose neighbours must be
//     verified — until a verification finds no new errors.
func (c *Controller) executeWrite(b *bank, e *writeEntry) int {
	c.Stats.WriteOps++
	// The engine stamps trace events with the op's start time (writes run
	// asynchronously to core time, so "now" is when the bank begins the op).
	c.engine.Now = b.freeAt
	cycles := 0

	// --- 1. Pre-write reads (charged as verification). ---
	if e.verifyTop || e.verifyBelow {
		missing := 0
		if e.verifyTop && !e.prTop {
			e.bufTop = c.dev.Read(e.top)
			e.prTop = true
			missing++
		}
		if e.verifyBelow && !e.prBelow {
			e.bufBelow = c.dev.Read(e.below)
			e.prBelow = true
			missing++
		}
		if missing == 0 {
			c.Stats.PreReadHits++
			if c.tr != nil {
				c.tr.Emit(b.freeAt, metrics.EvPreReadHit, uint64(e.addr), 0, 0)
			}
		}
		c.Stats.VerifyReads += uint64(missing)
		if c.cfg.ChargeVerify {
			d := missing * c.cfg.Timing.ReadCycles
			cycles += d
			c.Stats.VerifyCycles += uint64(d)
		}
	}

	// --- 2. Program the line. ---
	// A fresh write supersedes any WD errors parked for this line (§4.2):
	// the ECP entries are released for free.
	c.ecp.ClearWD(e.addr, false)
	old := c.dev.Peek(e.addr)
	img := c.codec.Encode(e.addr, e.data, old)
	res := c.dev.Write(e.addr, img, pcm.NormalWrite)
	out := c.engine.OnWrite(c.dev, e.addr, old, img, res.Reset, res.Set)
	prog := res.Cycles
	if out.RewritePulses > 0 {
		// In-line rewrite rounds extend the program phase.
		prog += c.cfg.Timing.WriteCycles(out.RewritePulses, 0)
	}
	cycles += prog
	c.Stats.ProgramCycles += uint64(prog)

	// --- 3/4. Verify adjacent lines and handle their errors. ---
	if e.verifyTop {
		cycles += c.verifyNeighbour(e.top, out.Above, 0)
	}
	if e.verifyBelow {
		cycles += c.verifyNeighbour(e.below, out.Below, 0)
	}
	return cycles
}

// verifyNeighbour performs the post-write read of one adjacent line and
// resolves any disturbance found there. depth tracks cascade recursion
// (0 = first-level verification of the original write).
func (c *Controller) verifyNeighbour(addr pcm.LineAddr, flips pcm.Mask, depth int) int {
	cycles := 0
	// Post-write read.
	c.dev.Stats.Reads++
	if depth == 0 {
		c.Stats.VerifyReads++
		if c.cfg.ChargeVerify {
			cycles += c.cfg.Timing.ReadCycles
			c.Stats.VerifyCycles += uint64(c.cfg.Timing.ReadCycles)
		}
	} else {
		c.Stats.CascadeReads++
		if c.cfg.ChargeCorrect {
			cycles += c.cfg.Timing.ReadCycles
			c.Stats.CorrectCycles += uint64(c.cfg.Timing.ReadCycles)
		}
	}
	newBits := flips.Bits()
	if len(newBits) == 0 {
		return cycles
	}
	if c.tr != nil {
		c.tr.Emit(c.engine.Now, metrics.EvWDDetected, uint64(addr), uint64(len(newBits)), uint64(depth))
	}
	// LazyCorrection: park the errors if the line's free ECP entries cover
	// them (X + Y <= N). Recording happens in the WD-free low density ECP
	// chip and costs no data-bank time.
	if c.cfg.LazyCorrection && c.ecp.RecordWD(addr, newBits) {
		c.Stats.LazyRecords++
		c.hm.RecordParked(addr, len(newBits))
		if c.tr != nil {
			c.tr.Emit(c.engine.Now, metrics.EvWDParked, uint64(addr), uint64(len(newBits)), uint64(c.ecp.Recorded(addr)))
		}
		return cycles
	}
	// Correction write: RESET every pending disturbed cell (newly found and
	// previously parked); hard errors stay in their entries.
	cycles += c.correctLine(addr, flips, depth)
	return cycles
}

// correctLine rewrites a disturbed line to clear its WD errors and runs
// cascading verification on the correction's own neighbours.
func (c *Controller) correctLine(addr pcm.LineAddr, newFlips pcm.Mask, depth int) int {
	cycles := 0
	pending := c.ecp.CorrectionMask(addr).Or(newFlips)
	raw := c.dev.Peek(addr)
	var corrected pcm.Line
	for i := range raw {
		corrected[i] = raw[i] &^ pending[i]
	}
	res := c.dev.Write(addr, corrected, pcm.CorrectionWrite)
	c.ecp.ClearWD(addr, true)
	c.Stats.CorrectionWrites++
	c.cascadeDepth.Observe(uint64(depth))
	c.hm.RecordCorrection(addr, pending.PopCount(), depth)
	if c.tr != nil {
		c.tr.Emit(c.engine.Now, metrics.EvWDFlushed, uint64(addr), uint64(pending.PopCount()), uint64(depth))
	}
	if c.cfg.ChargeCorrect {
		cycles += res.Cycles
		c.Stats.CorrectCycles += uint64(res.Cycles)
	}
	// The correction write is a write: its RESET pulses disturb. Note the
	// corrected line's content is already (conceptually) known from the
	// verification read, so no fresh pre-reads are needed here — cascading
	// verification is post-reads only (§6.8).
	out := c.engine.OnWrite(c.dev, addr, raw, corrected, res.Reset, res.Set)
	if out.RewritePulses > 0 && c.cfg.ChargeCorrect {
		d := c.cfg.Timing.WriteCycles(out.RewritePulses, 0)
		cycles += d
		c.Stats.CorrectCycles += uint64(d)
	}
	if depth >= c.cfg.MaxCascadeDepth {
		c.Stats.CascadeTruncated++
		return cycles
	}
	above, below, okA, okB := pcm.AdjacentLines(addr, c.dev.RowsPerBank)
	vt, vb := c.verifySides(addr.Page())
	if (okA && vt || okB && vb) && c.tr != nil {
		c.tr.Emit(c.engine.Now, metrics.EvCascadeStep, uint64(addr), uint64(depth+1), 0)
	}
	if okA && vt {
		cycles += c.verifyNeighbour(above, out.Above, depth+1)
	}
	if okB && vb {
		cycles += c.verifyNeighbour(below, out.Below, depth+1)
	}
	return cycles
}
