package mc

import "sdpcm/internal/metrics"

// Publish exports the controller counters into reg under the "mc." prefix.
// Publishing happens once at end of run, off the hot path; a nil registry is
// a no-op.
func (s Stats) Publish(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("mc.demand_reads").Add(s.DemandReads)
	reg.Counter("mc.forwarded_reads").Add(s.ForwardedReads)
	reg.Counter("mc.write_requests").Add(s.WriteRequests)
	reg.Counter("mc.coalesced").Add(s.Coalesced)
	reg.Counter("mc.write_ops").Add(s.WriteOps)
	reg.Counter("mc.drains").Add(s.Drains)
	reg.Counter("mc.preread_issued").Add(s.PreReadsIssued)
	reg.Counter("mc.preread_forwarded").Add(s.PreReadsForwarded)
	reg.Counter("mc.preread_canceled").Add(s.PreReadsCanceled)
	reg.Counter("mc.preread_hits").Add(s.PreReadHits)
	reg.Counter("mc.verify_reads").Add(s.VerifyReads)
	reg.Counter("mc.cascade_reads").Add(s.CascadeReads)
	reg.Counter("mc.correction_writes").Add(s.CorrectionWrites)
	reg.Counter("mc.lazy_records").Add(s.LazyRecords)
	reg.Counter("mc.cascade_truncated").Add(s.CascadeTruncated)
	reg.Counter("mc.read_preemptions").Add(s.ReadPreemptions)
	reg.Counter("mc.burst_ops").Add(s.BurstOps)
	reg.Counter("mc.background_ops").Add(s.BackgroundOps)
	reg.Counter("mc.program_cycles").Add(s.ProgramCycles)
	reg.Counter("mc.verify_cycles").Add(s.VerifyCycles)
	reg.Counter("mc.correct_cycles").Add(s.CorrectCycles)
	reg.Counter("mc.read_cycles").Add(s.ReadCycles)
	reg.Counter("mc.read_latency_sum").Add(s.ReadLatencySum)
	reg.Counter("mc.read_wait_sum").Add(s.ReadWaitSum)
}
