package mc

import (
	"testing"

	"sdpcm/internal/alloc"
	"sdpcm/internal/fnw"
	"sdpcm/internal/pcm"
	"sdpcm/internal/rng"
)

func TestCascadeDepthTruncation(t *testing.T) {
	// With a cascade depth of 1 and certain disturbance (rate 1.0 on the
	// bit-line axis), corrections keep disturbing their neighbours and the
	// recursion must be cut, counted, and still terminate.
	cfg := baselineCfg()
	cfg.Rates.BitLine = 1.0
	cfg.MaxCascadeDepth = 1
	cfg.WriteQueueCap = 1
	r := newRig(t, cfg)
	var clock uint64
	for i := 0; i < 50; i++ {
		addr := pcm.LineOf(pcm.PageAddr(32+i%16), i%64)
		r.c.Write(clock, addr, lineWith(^uint64(i), uint64(i)*0x1234567))
		clock += 100000
	}
	r.c.Flush(clock)
	if r.c.Stats.CascadeTruncated == 0 {
		t.Fatal("expected truncated cascades at rate 1.0 with depth 1")
	}
}

func TestHardErrorsForceCorrections(t *testing.T) {
	// A DIMM whose lines have all ECP entries eaten by hard errors cannot
	// park WD errors: LazyC degenerates to eager correction.
	mk := func(hard int) *testRig {
		cfg := baselineCfg()
		cfg.Correction = LazyECP()
		cfg.ECPEntries = 6
		cfg.WriteQueueCap = 2
		cfg.HardErrorFn = func(pcm.LineAddr) int { return hard }
		return newRig(t, cfg)
	}
	drive := func(r *testRig) {
		var clock uint64
		for i := 0; i < 150; i++ {
			addr := pcm.LineOf(pcm.PageAddr(32+i%32), i%64)
			r.c.Write(clock, addr, lineWith(uint64(i)*0x9e3779b97f4a7c15, ^uint64(i)))
			clock += 50000
		}
		r.c.Flush(clock)
	}
	pristine := mk(0)
	drive(pristine)
	worn := mk(6)
	drive(worn)
	if worn.c.Stats.CorrectionWrites <= pristine.c.Stats.CorrectionWrites {
		t.Fatalf("worn DIMM corrections %d must exceed pristine %d",
			worn.c.Stats.CorrectionWrites, pristine.c.Stats.CorrectionWrites)
	}
	if pristine.c.Stats.LazyRecords == 0 {
		t.Fatal("pristine DIMM must park errors lazily")
	}
}

func TestReadReturnsECPCorrectedData(t *testing.T) {
	// Park WD errors in ECP (LazyC), then demand-read the disturbed line
	// through the controller: the returned data must be corrected even
	// though the array still holds flipped cells. A zero-filled device and
	// a three-RESET aggressor keep the error count within ECP-6.
	cfg := baselineCfg()
	cfg.Correction = LazyECP()
	cfg.ECPEntries = 6
	cfg.Rates.BitLine = 1.0 // make disturbance certain
	cfg.WriteQueueCap = 1
	// Identity codec: the DIN encoder would (correctly!) invert the group
	// and avoid the RESET pulses this test needs.
	cfg.UseDIN = false
	d, err := pcm.NewDevice(pcm.Config{Pages: testPages, ZeroFill: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := alloc.New(testPages, 128)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cfg, d, a, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}

	victim := pcm.LineOf(100, 7)
	var victimData pcm.Line // all-zero: maximally vulnerable

	// Aggressor below the victim: SET three cells (no disturbance), then
	// RESET them (three certain flips on the victim, parked in ECP).
	aggressor := pcm.LineOf(100+16, 7)
	c.Write(0, aggressor, lineWith(0x7))
	c.Flush(10)
	c.Write(100000, aggressor, pcm.Line{})
	c.Flush(200000)

	if got := len(c.ECP().WDBits(victim)); got != 3 {
		t.Fatalf("parked WD errors = %d, want 3", got)
	}
	// The raw array content is corrupted...
	if d.Peek(victim) == victimData {
		t.Fatal("test setup failed: victim not physically disturbed")
	}
	// ...but a demand read returns the true data.
	_, got := c.Read(300000, victim)
	if got != victimData {
		t.Fatal("demand read returned uncorrected data")
	}
}

func TestFlushCompletesLazyDrain(t *testing.T) {
	cfg := baselineCfg()
	cfg.Drain = WriteCancelDrain()
	cfg.WriteQueueCap = 4
	cfg.LowWatermark = 1
	r := newRig(t, cfg)
	// Busy the bank, overflow the queue (lazy drain starts), then Flush.
	r.c.Read(0, pcm.LineOf(100, 60))
	for i := 0; i < 6; i++ {
		r.c.Write(uint64(i+1), pcm.LineOf(100, i), lineWith(uint64(i)))
	}
	end := r.c.Flush(10)
	if r.c.QueueOccupancy() != 0 {
		t.Fatalf("flush left %d queued writes", r.c.QueueOccupancy())
	}
	if end <= 10 {
		t.Fatal("flush must account the drained work")
	}
	// All six writes must be readable.
	for i := 0; i < 6; i++ {
		if got := r.c.PeekData(pcm.LineOf(100, i)); got != lineWith(uint64(i)) {
			t.Fatalf("write %d lost across flush", i)
		}
	}
}

func TestCoalescingPreservesPrereadState(t *testing.T) {
	cfg := baselineCfg()
	cfg.Preread = IdleSlotPreread()
	cfg.WriteQueueCap = 8
	r := newRig(t, cfg)
	addr := pcm.LineOf(100, 0)
	r.c.Write(0, addr, lineWith(1)) // prereads issue immediately (idle bank)
	issued := r.c.Stats.PreReadsIssued
	if issued == 0 {
		t.Fatal("prereads not issued")
	}
	// Coalesce much later, when the prereads completed: they stay valid.
	r.c.Write(1<<20, addr, lineWith(2))
	if r.c.Stats.Coalesced != 1 {
		t.Fatal("write not coalesced")
	}
	r.c.Flush(1 << 21)
	if r.c.Stats.PreReadHits != 1 {
		t.Fatalf("preread hits = %d: coalescing dropped buffered pre-reads", r.c.Stats.PreReadHits)
	}
	if got := r.c.PeekData(addr); got != lineWith(2) {
		t.Fatal("coalesced data lost")
	}
}

func TestFNWEncoderThroughController(t *testing.T) {
	cfg := baselineCfg()
	cfg.Encoder = fnw.NewCodec()
	cfg.WriteQueueCap = 2
	r := newRig(t, cfg)
	shadow := map[pcm.LineAddr]pcm.Line{}
	rnd := rng.New(31)
	var clock uint64
	for i := 0; i < 300; i++ {
		addr := pcm.LineOf(pcm.PageAddr(rnd.Intn(128)), rnd.Intn(64))
		var data pcm.Line
		for w := range data {
			data[w] = rnd.Uint64()
		}
		r.c.Write(clock, addr, data)
		shadow[addr] = data
		clock += uint64(rnd.Intn(3000))
	}
	r.c.Flush(clock)
	for addr, want := range shadow {
		if got := r.c.PeekData(addr); got != want {
			t.Fatalf("FNW-encoded line %d corrupted", addr)
		}
	}
}

func TestDeviceReadAccounting(t *testing.T) {
	// Every architectural read the controller performs must be visible in
	// the device counters: demand + verification + cascade + prereads.
	cfg := baselineCfg()
	cfg.Preread = IdleSlotPreread()
	cfg.WriteQueueCap = 4
	r := newRig(t, cfg)
	rnd := rng.New(8)
	var clock uint64
	for i := 0; i < 200; i++ {
		addr := pcm.LineOf(pcm.PageAddr(rnd.Intn(64)), rnd.Intn(64))
		if rnd.Bool() {
			r.c.Write(clock, addr, lineWith(rnd.Uint64(), rnd.Uint64()))
		} else {
			r.c.Read(clock, addr)
		}
		clock += uint64(rnd.Intn(2000))
	}
	r.c.Flush(clock)
	s := r.c.Stats
	arch := s.DemandReads - s.ForwardedReads + s.VerifyReads + s.CascadeReads + s.PreReadsIssued
	if r.d.Stats().Reads != arch {
		t.Fatalf("device reads %d != architectural reads %d (%+v)",
			r.d.Stats().Reads, arch, s)
	}
}

func TestRegionBoundaryAlwaysVerifies(t *testing.T) {
	// Under (1:2), a write to the first strip of a region must verify its
	// top neighbour even though the allocator would call it no-use (§4.4
	// reliability rule).
	cfg := baselineCfg()
	cfg.WriteQueueCap = 1
	r := newRig(t, cfg)
	if _, err := r.a.Alloc(64, alloc.Tag12); err != nil {
		t.Fatal(err)
	}
	// The first usable page of the region is strip 0.
	first := pcm.PageAddr(0)
	if r.a.RegionTag(first) != alloc.Tag12 {
		t.Skip("allocator did not hand out region 0; strip arithmetic differs")
	}
	// Interior page exists above? Row 0 has no physical top neighbour, so
	// use the *last* strip instead: its below neighbour must be verified.
	strips := r.a.StripsPerRegion()
	lastStripPage := pcm.PageAddr((strips - 1) * 16)
	r.c.Write(0, pcm.LineOf(lastStripPage, 0), lineWith(0xabc))
	r.c.Flush(10)
	if r.c.Stats.VerifyReads == 0 {
		t.Fatal("region-boundary write skipped verification")
	}
}
