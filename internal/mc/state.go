package mc

import (
	"fmt"

	"sdpcm/internal/pcm"
	"sdpcm/internal/snap"
)

// PolicyState is the optional CorrectionPolicy extension for policies that
// carry mutable state across write operations (the in-module barrier's
// victim buffers, for example). The built-in policies are stateless and do
// not implement it; a stateful plugin must, or checkpointing a run that
// uses it is refused — silently dropping policy state would break the
// resume contract.
type PolicyState interface {
	EncodePolicyState(e *snap.Encoder)
	DecodePolicyState(d *snap.Decoder) error
}

// codecState is the word-line codec's optional checkpoint surface;
// *din.Codec (including the nil identity form) and *fnw.Codec implement it.
type codecState interface {
	EncodeState(e *snap.Encoder)
	DecodeState(d *snap.Decoder) error
}

// CheckpointSupported reports whether this controller's configuration can
// be checkpointed exactly: an opaque correction policy or word-line codec
// without a state codec would silently lose state across a resume.
func (c *Controller) CheckpointSupported() error {
	// The built-in policies are stateless value types; anything else must
	// declare its state through PolicyState.
	if _, ok := c.cfg.Correction.(PolicyState); !ok && !isBuiltinPolicy(c.cfg.Correction) {
		return fmt.Errorf("mc: correction policy %T does not implement mc.PolicyState; checkpointing would drop its state", c.cfg.Correction)
	}
	if _, ok := c.codec.(codecState); !ok {
		return fmt.Errorf("mc: word-line codec %T does not implement a state codec; checkpointing would drop its state", c.codec)
	}
	return nil
}

func isBuiltinPolicy(p CorrectionPolicy) bool {
	switch p.(type) {
	case eagerCorrection, lazyECP:
		return true
	}
	return false
}

func encodeMCStats(e *snap.Encoder, s Stats) {
	e.U64(s.DemandReads)
	e.U64(s.ForwardedReads)
	e.U64(s.WriteRequests)
	e.U64(s.Coalesced)
	e.U64(s.WriteOps)
	e.U64(s.Drains)
	e.U64(s.PreReadsIssued)
	e.U64(s.PreReadsForwarded)
	e.U64(s.PreReadsCanceled)
	e.U64(s.PreReadHits)
	e.U64(s.VerifyReads)
	e.U64(s.CascadeReads)
	e.U64(s.CorrectionWrites)
	e.U64(s.LazyRecords)
	e.U64(s.CascadeTruncated)
	e.U64(s.ReadPreemptions)
	e.U64(s.BurstOps)
	e.U64(s.BackgroundOps)
	e.U64(s.ProgramCycles)
	e.U64(s.VerifyCycles)
	e.U64(s.CorrectCycles)
	e.U64(s.ReadCycles)
	e.U64(s.ReadLatencySum)
	e.U64(s.ReadWaitSum)
}

func decodeMCStats(d *snap.Decoder, s *Stats) {
	s.DemandReads = d.U64()
	s.ForwardedReads = d.U64()
	s.WriteRequests = d.U64()
	s.Coalesced = d.U64()
	s.WriteOps = d.U64()
	s.Drains = d.U64()
	s.PreReadsIssued = d.U64()
	s.PreReadsForwarded = d.U64()
	s.PreReadsCanceled = d.U64()
	s.PreReadHits = d.U64()
	s.VerifyReads = d.U64()
	s.CascadeReads = d.U64()
	s.CorrectionWrites = d.U64()
	s.LazyRecords = d.U64()
	s.CascadeTruncated = d.U64()
	s.ReadPreemptions = d.U64()
	s.BurstOps = d.U64()
	s.BackgroundOps = d.U64()
	s.ProgramCycles = d.U64()
	s.VerifyCycles = d.U64()
	s.CorrectCycles = d.U64()
	s.ReadCycles = d.U64()
	s.ReadLatencySum = d.U64()
	s.ReadWaitSum = d.U64()
}

// EncodeState serializes the controller's mutable state: counters, the
// entry-ID generator, every bank's queue and preread bookkeeping, and the
// ECP table, disturbance engine, word-line codec and (when stateful)
// correction policy owned by this controller. The device is shared across
// controllers and is serialized once by the caller.
func (c *Controller) EncodeState(e *snap.Encoder) {
	e.Begin("mc.controller")
	encodeMCStats(e, c.Stats)
	e.U64(c.nextID)
	for i := range c.banks {
		b := &c.banks[i]
		e.U64(b.freeAt)
		e.Bool(b.draining)
		e.Uvarint(uint64(len(b.wq)))
		for _, w := range b.wq {
			e.U64(w.id)
			e.U64(uint64(w.addr))
			pcm.EncodeLine(e, w.data)
			e.U64(w.enqueuedAt)
			e.Bool(w.verifyTop)
			e.Bool(w.verifyBelow)
			e.U64(uint64(w.top))
			e.U64(uint64(w.below))
			e.Bool(w.topOK)
			e.Bool(w.belowOK)
			e.Bool(w.prTop)
			e.Bool(w.prBelow)
			pcm.EncodeLine(e, w.bufTop)
			pcm.EncodeLine(e, w.bufBelow)
		}
		e.Uvarint(uint64(len(b.prereads)))
		for _, p := range b.prereads {
			e.U64(p.start)
			e.U64(p.end)
			e.U64(p.entryID)
			e.Bool(p.top)
		}
	}
	c.ecp.EncodeState(e)
	c.engine.EncodeState(e)
	if cs, ok := c.codec.(codecState); ok {
		e.Bool(true)
		cs.EncodeState(e)
	} else {
		e.Bool(false)
	}
	if ps, ok := c.cfg.Correction.(PolicyState); ok {
		e.Bool(true)
		ps.EncodePolicyState(e)
	} else {
		e.Bool(false)
	}
	e.End()
}

// DecodeState restores state written by EncodeState into a controller
// freshly constructed with the same Config.
func (c *Controller) DecodeState(d *snap.Decoder) error {
	d.Begin("mc.controller")
	decodeMCStats(d, &c.Stats)
	c.nextID = d.U64()
	for i := range c.banks {
		b := &c.banks[i]
		b.freeAt = d.U64()
		b.draining = d.Bool()
		n := d.Uvarint()
		if d.Err() != nil {
			return d.Err()
		}
		b.wq = b.wq[:0]
		for j := uint64(0); j < n && d.Err() == nil; j++ {
			w := &writeEntry{}
			w.id = d.U64()
			w.addr = pcm.LineAddr(d.U64())
			w.data = pcm.DecodeLine(d)
			w.enqueuedAt = d.U64()
			w.verifyTop = d.Bool()
			w.verifyBelow = d.Bool()
			w.top = pcm.LineAddr(d.U64())
			w.below = pcm.LineAddr(d.U64())
			w.topOK = d.Bool()
			w.belowOK = d.Bool()
			w.prTop = d.Bool()
			w.prBelow = d.Bool()
			w.bufTop = pcm.DecodeLine(d)
			w.bufBelow = pcm.DecodeLine(d)
			b.wq = append(b.wq, w)
		}
		m := d.Uvarint()
		if d.Err() != nil {
			return d.Err()
		}
		b.prereads = b.prereads[:0]
		for j := uint64(0); j < m && d.Err() == nil; j++ {
			var p prOp
			p.start = d.U64()
			p.end = d.U64()
			p.entryID = d.U64()
			p.top = d.Bool()
			b.prereads = append(b.prereads, p)
		}
	}
	if err := c.ecp.DecodeState(d); err != nil {
		return err
	}
	if err := c.engine.DecodeState(d); err != nil {
		return err
	}
	hasCodec := d.Bool()
	cs, ok := c.codec.(codecState)
	if d.Err() == nil && hasCodec != ok {
		return fmt.Errorf("mc: checkpoint codec-state presence %t does not match this run's codec %T", hasCodec, c.codec)
	}
	if hasCodec && d.Err() == nil {
		if err := cs.DecodeState(d); err != nil {
			return err
		}
	}
	hasPolicy := d.Bool()
	ps, ok := c.cfg.Correction.(PolicyState)
	if d.Err() == nil && hasPolicy != ok {
		return fmt.Errorf("mc: checkpoint policy-state presence %t does not match this run's policy %T", hasPolicy, c.cfg.Correction)
	}
	if hasPolicy && d.Err() == nil {
		if err := ps.DecodePolicyState(d); err != nil {
			return err
		}
	}
	d.End()
	return d.Err()
}
