// Package mc implements the SD-PCM memory controller (§4): per-bank write
// queues with bursty drain, the basic Verify-and-Correct (VnC) write flow
// with cascading verification, and the paper's three mitigation schemes —
// LazyCorrection (§4.2), PreRead (§4.3) and (n:m)-Alloc-aware verification
// skipping (§4.4) — plus write cancellation integration (§6.8).
//
// The controller is driven in global time order by the simulator: every
// public method takes `now` (the cycle the request reaches the controller)
// and returns completion times. Banks are modelled as serially-busy
// resources (`freeAt`); queued write work executes lazily as simulated time
// passes it, which lets write cancellation preempt a drain at write-op
// granularity without rolling back device state.
package mc

import (
	"fmt"

	"sdpcm/internal/alloc"
	"sdpcm/internal/din"
	"sdpcm/internal/ecp"
	"sdpcm/internal/metrics"
	"sdpcm/internal/pcm"
	"sdpcm/internal/rng"
	"sdpcm/internal/thermal"
	"sdpcm/internal/wd"
)

// Config selects the scheme composition and device parameters.
type Config struct {
	// Timing defaults to pcm.DefaultTiming when zero.
	Timing pcm.Timing
	// Rates are the per-axis disturbance probabilities of the chosen cell
	// layout (thermal.RatesFor).
	Rates thermal.Rates
	// VerifyNeighbors enables the bit-line VnC machinery. False models
	// WD-free bit-lines (DIN's 8F² layout or the 12F² prototype), where
	// writes need no adjacent-line handling.
	VerifyNeighbors bool
	// LazyCorrection parks detected WD errors in free ECP entries instead
	// of immediately rewriting the disturbed line (§4.2).
	LazyCorrection bool
	// ECPEntries is N of ECP-N (6 by default in the paper). Zero entries
	// with LazyCorrection on degenerates to basic VnC.
	ECPEntries int
	// PreRead issues the two pre-write reads from the write queue during
	// bank idle slots (§4.3).
	PreRead bool
	// WriteCancel lets demand reads preempt a write burst at write-op
	// boundaries instead of waiting for the whole drain (§6.8 [22]).
	WriteCancel bool
	// WriteQueueCap is the per-bank write queue capacity (32 in Table 2).
	WriteQueueCap int
	// LowWatermark is the queue depth background draining drains down to:
	// writes above it are retired during bank idle time (read-priority
	// scheduling); writes below it wait in the queue — the population
	// PreRead works on. A full queue still triggers the §5.1 bursty drain
	// (to the watermark), which blocks that bank's reads. Defaults to a
	// quarter of WriteQueueCap.
	LowWatermark int
	// UseDIN enables the word-line disturbance-aware encoding. All
	// evaluated schemes keep it on (§4.1); turning it off exposes raw
	// word-line WD for the Figure 4 study.
	UseDIN bool
	// Encoder overrides the word-line codec (nil selects DIN when UseDIN
	// is set, identity otherwise). Used by the encoding ablation to swap
	// in Flip-N-Write or raw storage.
	Encoder Encoder
	// ForwardCycles is the latency of servicing a read from the write
	// queue's data buffer.
	ForwardCycles int
	// ChargeVerify / ChargeCorrect control whether verification reads and
	// correction work consume bank time. Both default true; switching one
	// off isolates the other's overhead (the Figure 5 decomposition).
	// Device/ECP state effects always happen regardless.
	ChargeVerify, ChargeCorrect bool
	// MaxCascadeDepth bounds cascading verification recursion.
	MaxCascadeDepth int
	// HardErrorFn, when set, pre-populates per-line ECP hard-error
	// occupancy (lifetime experiments, Fig. 14).
	HardErrorFn func(pcm.LineAddr) int
}

// normalized fills defaults.
func (c Config) normalized() Config {
	if c.Timing == (pcm.Timing{}) {
		c.Timing = pcm.DefaultTiming
	}
	if c.WriteQueueCap <= 0 {
		c.WriteQueueCap = 32
	}
	if c.LowWatermark <= 0 {
		c.LowWatermark = c.WriteQueueCap / 4
	}
	if c.LowWatermark >= c.WriteQueueCap {
		c.LowWatermark = c.WriteQueueCap - 1
	}
	if c.ForwardCycles <= 0 {
		c.ForwardCycles = 40
	}
	if c.MaxCascadeDepth <= 0 {
		c.MaxCascadeDepth = 64
	}
	return c
}

// Stats aggregates controller activity.
type Stats struct {
	DemandReads    uint64
	ForwardedReads uint64
	WriteRequests  uint64
	Coalesced      uint64 // write requests merged into an existing entry
	WriteOps       uint64 // write operations executed on the array
	Drains         uint64 // bursty drains triggered by a full queue

	PreReadsIssued    uint64
	PreReadsForwarded uint64 // satisfied from the write queue, no bank time
	PreReadsCanceled  uint64
	PreReadHits       uint64 // write ops that found both pre-reads done

	VerifyReads      uint64 // pre+post adjacent-line reads at write ops
	CascadeReads     uint64 // verification reads triggered by corrections
	CorrectionWrites uint64
	LazyRecords      uint64 // error batches absorbed by ECP without correction
	CascadeTruncated uint64 // cascades cut by MaxCascadeDepth

	ReadPreemptions uint64 // reads that preempted a drain (write cancellation)

	BurstOps      uint64 // write ops executed inside a full-queue bursty drain
	BackgroundOps uint64 // write ops executed during bank idle time

	// Cycle decomposition across all banks.
	ProgramCycles uint64
	VerifyCycles  uint64
	CorrectCycles uint64
	ReadCycles    uint64

	// Latency accounting for demand reads.
	ReadLatencySum uint64
	ReadWaitSum    uint64 // queueing component of read latency
}

// Encoder is the word-line codec contract: a stored-image transform with
// per-line state. *din.Codec (including its nil identity form) and
// *fnw.Codec implement it.
type Encoder interface {
	Encode(a pcm.LineAddr, data, stored pcm.Line) pcm.Line
	Decode(a pcm.LineAddr, stored pcm.Line) pcm.Line
	Forget(a pcm.LineAddr)
}

// prOp is an in-flight PreRead occupying bank time; cancellable by a demand
// read until its end time passes.
type prOp struct {
	start, end uint64
	entryID    uint64
	top        bool
}

// writeEntry is one write-queue slot (Fig. 8: address, data, two PreRead
// flag bits and two 64 B buffers).
type writeEntry struct {
	id         uint64
	addr       pcm.LineAddr
	data       pcm.Line // decoded new content
	enqueuedAt uint64

	verifyTop, verifyBelow bool
	top, below             pcm.LineAddr
	topOK, belowOK         bool

	prTop, prBelow   bool
	bufTop, bufBelow pcm.Line
}

// bank is one PCM bank's scheduling state.
type bank struct {
	freeAt   uint64
	wq       []*writeEntry
	draining bool
	prereads []prOp
}

// Controller is the memory controller for one DIMM.
type Controller struct {
	cfg    Config
	dev    *pcm.Device
	ecp    *ecp.Table
	codec  Encoder
	engine *wd.Engine
	region *alloc.Allocator

	banks  []bank
	nextID uint64
	Stats  Stats

	// Instrumentation handles (all nil when uninstrumented: every use is a
	// nil-safe no-op, so the disabled cost is one branch per site).
	tr           *metrics.Trace
	hm           *wd.Heatmap
	readLat      *metrics.Histogram
	queueRes     *metrics.Histogram
	queueDepth   *metrics.Histogram
	cascadeDepth *metrics.Histogram
}

// New builds a controller. dev supplies the array; region supplies
// (n:m)-strip marking decisions (its RegionTag/StripIndexInRegion are the
// hardware-side interpretation of the TLB tag of Fig. 9); rnd seeds the
// disturbance engine.
func New(cfg Config, dev *pcm.Device, region *alloc.Allocator, rnd *rng.Rand) (*Controller, error) {
	cfg = cfg.normalized()
	table, err := ecp.New(cfg.ECPEntries)
	if err != nil {
		return nil, err
	}
	table.HardFn = cfg.HardErrorFn
	codec := cfg.Encoder
	if codec == nil {
		if cfg.UseDIN {
			codec = din.NewCodec()
		} else {
			codec = (*din.Codec)(nil) // nil-safe identity transform
		}
	}
	if region == nil {
		return nil, fmt.Errorf("mc: nil allocator")
	}
	return &Controller{
		cfg:    cfg,
		dev:    dev,
		ecp:    table,
		codec:  codec,
		engine: wd.New(cfg.Rates, rnd.SplitLabeled("mc:wd")),
		region: region,
		banks:  make([]bank, pcm.NumBanks),
	}, nil
}

// Instrument attaches the controller and its subcomponents (disturbance
// engine, ECP table) to a metrics registry: distribution histograms record
// on the hot path and the registry's event trace, when enabled, receives the
// controller's decision points. A nil registry leaves the controller
// uninstrumented — the zero-overhead default.
func (c *Controller) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	c.tr = reg.Trace()
	c.readLat = reg.Histogram("mc.read_latency", []uint64{400, 800, 1600, 3200, 6400, 12800, 25600, 51200})
	c.queueRes = reg.Histogram("mc.queue_residency", []uint64{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22})
	c.queueDepth = reg.Histogram("mc.queue_depth_at_enqueue", []uint64{1, 2, 4, 8, 16, 24, 32, 48})
	c.cascadeDepth = reg.Histogram("mc.cascade_depth", []uint64{0, 1, 2, 3, 4, 6, 8, 12, 16, 32})
	c.engine.Instrument(reg.Trace())
	c.ecp.Instrument(reg)
}

// InstrumentHeatmap attaches a WD spatial heatmap to the controller and its
// disturbance engine: injected flips, LazyCorrection parks and correction
// writes accumulate per bank × line-region. A nil heatmap is the disabled
// (zero-overhead) default.
func (c *Controller) InstrumentHeatmap(h *wd.Heatmap) {
	c.hm = h
	c.engine.InstrumentHeatmap(h)
}

// Device exposes the underlying array (for wear statistics).
func (c *Controller) Device() *pcm.Device { return c.dev }

// ECP exposes the pointer table (for wear statistics).
func (c *Controller) ECP() *ecp.Table { return c.ecp }

// Engine exposes the disturbance engine (for error statistics).
func (c *Controller) Engine() *wd.Engine { return c.engine }

// PeekData returns the current logical content of a line: raw array bits,
// ECP-corrected, DIN-decoded. It models the data the LLC would hold and is
// used by the simulator to build write-back payloads.
func (c *Controller) PeekData(a pcm.LineAddr) pcm.Line {
	return c.codec.Decode(a, c.ecp.CorrectRead(a, c.dev.Peek(a)))
}

// LatestData returns the freshest logical content of a line, checking the
// bank's write queue before the array — the coherence rule forwarding uses.
// Wear-leveling copies read through this so a queued-but-undrained write is
// never lost by a rotation.
func (c *Controller) LatestData(a pcm.LineAddr) pcm.Line {
	b := &c.banks[pcm.Locate(a).Bank]
	if e := b.findEntry(a); e != nil {
		return e.data
	}
	return c.PeekData(a)
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// catchUp advances a bank's lazy work to time t: completed prereads are
// retired, and (under a drain) queued write ops whose start time has passed
// are executed. At most one op ends past t (the in-flight op).
func (c *Controller) catchUp(b *bank, t uint64) {
	// Retire completed prereads.
	keep := b.prereads[:0]
	for _, p := range b.prereads {
		if p.end > t {
			keep = append(keep, p)
		}
	}
	b.prereads = keep
	for len(b.wq) > 0 && b.freeAt <= t && (b.draining || len(b.wq) > c.cfg.LowWatermark) {
		c.Stats.BackgroundOps++
		c.executeNext(b, false)
		if b.draining && len(b.wq) <= c.cfg.LowWatermark {
			b.draining = false
		}
	}
	if b.draining && len(b.wq) <= c.cfg.LowWatermark {
		b.draining = false
	}
	// Any idle time left after draining goes to pending pre-reads (§4.3:
	// "a PreRead operation often has the opportunity to be issued when its
	// associated memory bank is idle").
	if c.cfg.PreRead {
		c.issuePrereads(b, t)
	}
}

// executeNext pops the oldest write entry and runs its full VnC write op,
// advancing freeAt. Work cannot start before the write arrived. burst marks
// ops retired inside a full-queue drain (trace attribution only).
func (c *Controller) executeNext(b *bank, burst bool) {
	e := b.wq[0]
	b.wq = b.wq[1:]
	if b.freeAt < e.enqueuedAt {
		b.freeAt = e.enqueuedAt
	}
	if c.tr != nil {
		var bf uint64
		if burst {
			bf = 1
		}
		c.tr.Emit(b.freeAt, metrics.EvQueueDrain, uint64(e.addr), b.freeAt-e.enqueuedAt, bf)
	}
	c.queueRes.Observe(b.freeAt - e.enqueuedAt)
	d := c.executeWrite(b, e)
	b.freeAt += uint64(d)
}

// findEntry locates a queued write to addr.
func (b *bank) findEntry(addr pcm.LineAddr) *writeEntry {
	for _, e := range b.wq {
		if e.addr == addr {
			return e
		}
	}
	return nil
}

// cancelPrereads aborts in-flight prereads (end > t): demand reads have
// priority (§4.3). Bank time is rolled back to the first canceled start —
// prereads are always the newest work on the bank.
func (c *Controller) cancelPrereads(b *bank, t uint64) {
	if len(b.prereads) == 0 {
		return
	}
	rollback := b.freeAt
	keep := b.prereads[:0]
	for _, p := range b.prereads {
		if p.end <= t {
			keep = append(keep, p)
			continue
		}
		c.Stats.PreReadsCanceled++
		if p.start < rollback {
			rollback = p.start
		}
		if e := b.findEntryByID(p.entryID); e != nil {
			var victim pcm.LineAddr
			if p.top {
				e.prTop = false
				victim = e.top
			} else {
				e.prBelow = false
				victim = e.below
			}
			if c.tr != nil {
				c.tr.Emit(t, metrics.EvPreReadCanceled, uint64(victim), p.entryID, 0)
			}
		}
	}
	b.prereads = keep
	if rollback < b.freeAt {
		b.freeAt = rollback
	}
}

func (b *bank) findEntryByID(id uint64) *writeEntry {
	for _, e := range b.wq {
		if e.id == id {
			return e
		}
	}
	return nil
}

// Read services a demand read arriving at `now`. It returns the cycle the
// data is available and the (ECP-corrected, decoded) line content.
func (c *Controller) Read(now uint64, addr pcm.LineAddr) (uint64, pcm.Line) {
	c.Stats.DemandReads++
	loc := pcm.Locate(addr)
	b := &c.banks[loc.Bank]
	// Write-queue forwarding: the freshest value lives in the queue.
	if e := b.findEntry(addr); e != nil {
		c.Stats.ForwardedReads++
		done := now + uint64(c.cfg.ForwardCycles)
		c.Stats.ReadLatencySum += uint64(c.cfg.ForwardCycles)
		c.readLat.Observe(uint64(c.cfg.ForwardCycles))
		return done, e.data
	}
	c.catchUp(b, now)
	if b.draining && c.cfg.WriteCancel && b.freeAt > now {
		// The read waits only for the in-flight op (write cancellation /
		// pausing); remaining drain work resumes after the read.
		c.Stats.ReadPreemptions++
		if c.tr != nil {
			c.tr.Emit(now, metrics.EvWriteCancel, uint64(addr), uint64(len(b.wq)), 0)
		}
	}
	c.cancelPrereads(b, now)
	start := maxU64(now, b.freeAt)
	data := c.PeekData(addr)
	c.dev.Stats.Reads++ // demand array read
	done := start + uint64(c.cfg.Timing.ReadCycles)
	b.freeAt = done
	c.Stats.ReadCycles += uint64(c.cfg.Timing.ReadCycles)
	c.Stats.ReadLatencySum += done - now
	c.Stats.ReadWaitSum += start - now
	c.readLat.Observe(done - now)
	return done, data
}

// Write buffers a write-back arriving at `now` (posted: the core does not
// stall). A full queue triggers the bursty drain of §5.1; under write
// cancellation the drain runs lazily and reads may preempt it.
func (c *Controller) Write(now uint64, addr pcm.LineAddr, data pcm.Line) {
	c.Stats.WriteRequests++
	loc := pcm.Locate(addr)
	b := &c.banks[loc.Bank]
	c.catchUp(b, now)
	if e := b.findEntry(addr); e != nil {
		// Coalesce: update in place; pre-read state is unaffected.
		e.data = data
		c.Stats.Coalesced++
		return
	}
	if len(b.wq) >= c.cfg.WriteQueueCap {
		c.Stats.Drains++
		if c.tr != nil {
			c.tr.Emit(now, metrics.EvQueueStall, uint64(addr), uint64(len(b.wq)), 0)
		}
		if b.freeAt < now {
			b.freeAt = now
		}
		if c.cfg.WriteCancel {
			// Lazy drain: ops execute as time passes and reads may preempt
			// at op boundaries; make room for the incoming write now.
			b.draining = true
			for len(b.wq) >= c.cfg.WriteQueueCap {
				c.Stats.BurstOps++
				c.executeNext(b, true)
			}
		} else {
			// Bursty drain (§5.1): flush to the watermark, blocking this
			// bank's reads for the whole burst.
			for len(b.wq) > c.cfg.LowWatermark {
				c.Stats.BurstOps++
				c.executeNext(b, true)
			}
		}
	}
	e := c.newEntry(addr, data)
	e.enqueuedAt = now
	b.wq = append(b.wq, e)
	c.queueDepth.Observe(uint64(len(b.wq)))
	if c.tr != nil {
		c.tr.Emit(now, metrics.EvQueueEnqueue, uint64(addr), uint64(len(b.wq)), 0)
	}
	if c.cfg.PreRead {
		c.issuePrereads(b, now)
	}
}

// newEntry builds a write-queue entry, resolving the (n:m) verification
// decisions for its two bit-line neighbours.
func (c *Controller) newEntry(addr pcm.LineAddr, data pcm.Line) *writeEntry {
	c.nextID++
	e := &writeEntry{id: c.nextID, addr: addr, data: data}
	e.top, e.below, e.topOK, e.belowOK = pcm.AdjacentLines(addr, c.dev.RowsPerBank)
	vt, vb := c.verifySides(addr.Page())
	e.verifyTop = vt && e.topOK
	e.verifyBelow = vb && e.belowOK
	return e
}

// verifySides applies §4.4: which bit-line neighbours of a write to this
// page hold data and need VnC. With VerifyNeighbors off (WD-free bit-lines)
// nothing is verified.
func (c *Controller) verifySides(p pcm.PageAddr) (top, below bool) {
	if !c.cfg.VerifyNeighbors {
		return false, false
	}
	tag := c.region.RegionTag(p)
	s := c.region.StripIndexInRegion(p)
	return tag.VerifyNeighbors(s, c.region.StripsPerRegion())
}

// issuePrereads uses bank idle time at `now` to perform pending pre-write
// reads for queued entries (§4.3). Neighbours present in the write queue are
// forwarded from their entry buffers at no bank cost.
func (c *Controller) issuePrereads(b *bank, now uint64) {
	idle := b.freeAt <= now && !b.draining
	for _, e := range b.wq {
		if e.verifyTop && !e.prTop {
			idle = c.issueOnePreread(b, e, true, now, idle)
		}
		if e.verifyBelow && !e.prBelow {
			idle = c.issueOnePreread(b, e, false, now, idle)
		}
	}
}

// issueOnePreread services one pending pre-write read. Forwarding from a
// queued write to the neighbour costs no bank time and happens regardless of
// bank state; a device read requires the idle grant. Returns whether further
// device reads may still be issued in this batch.
func (c *Controller) issueOnePreread(b *bank, e *writeEntry, top bool, now uint64, idle bool) bool {
	neighbour := e.top
	if !top {
		neighbour = e.below
	}
	// Forward from the queue when the neighbour line has a pending write:
	// by the time this entry executes, the queue (FIFO) will have written
	// it, so the buffered data is the authoritative old content (§4.3).
	if other := b.findEntry(neighbour); other != nil {
		if top {
			e.prTop, e.bufTop = true, other.data
		} else {
			e.prBelow, e.bufBelow = true, other.data
		}
		c.Stats.PreReadsForwarded++
		if c.tr != nil {
			c.tr.Emit(now, metrics.EvPreReadForwarded, uint64(neighbour), e.id, 0)
		}
		return idle
	}
	if !idle {
		return false
	}
	start := maxU64(b.freeAt, now)
	end := start + uint64(c.cfg.Timing.ReadCycles)
	buf := c.dev.Read(neighbour)
	if top {
		e.prTop, e.bufTop = true, buf
	} else {
		e.prBelow, e.bufBelow = true, buf
	}
	b.freeAt = end
	b.prereads = append(b.prereads, prOp{start: start, end: end, entryID: e.id, top: top})
	c.Stats.PreReadsIssued++
	if c.tr != nil {
		c.tr.Emit(start, metrics.EvPreReadIssued, uint64(neighbour), e.id, 0)
	}
	return true
}

// Flush drains every bank completely (end of simulation or checkpoint) and
// returns the cycle all work finishes.
func (c *Controller) Flush(now uint64) uint64 {
	end := now
	for i := range c.banks {
		b := &c.banks[i]
		c.catchUp(b, now)
		if b.freeAt < now {
			b.freeAt = now
		}
		for len(b.wq) > 0 {
			c.executeNext(b, false)
		}
		b.draining = false
		if b.freeAt > end {
			end = b.freeAt
		}
	}
	return end
}

// QueueOccupancy returns the total buffered writes (for tests/monitoring).
func (c *Controller) QueueOccupancy() int {
	n := 0
	for i := range c.banks {
		n += len(c.banks[i].wq)
	}
	return n
}
