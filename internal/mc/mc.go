// Package mc implements the SD-PCM memory controller (§4): per-bank write
// queues with bursty drain, the basic Verify-and-Correct (VnC) write flow
// with cascading verification, and the paper's three mitigation schemes —
// LazyCorrection (§4.2), PreRead (§4.3) and (n:m)-Alloc-aware verification
// skipping (§4.4) — plus write cancellation integration (§6.8).
//
// The controller is driven in global time order by the simulator: every
// public method takes `now` (the cycle the request reaches the controller)
// and returns completion times. Banks are modelled as serially-busy
// resources (`freeAt`); queued write work executes lazily as simulated time
// passes it, which lets write cancellation preempt a drain at write-op
// granularity without rolling back device state.
//
// The write path is decomposed into pluggable policies, with the Encoder
// interface as the model: CorrectionPolicy decides what happens to detected
// WD errors (correction.go), PrereadScheduler manages the §4.3 pre-write
// reads (preread.go) and DrainPolicy picks the full-queue strategy
// (queue.go, cancel.go). The controller core — queue bookkeeping (queue.go)
// and operation timing (timing.go) — calls the policies only through their
// interfaces, so a new scheme plugs in without touching either file.
package mc

import (
	"fmt"

	"sdpcm/internal/alloc"
	"sdpcm/internal/din"
	"sdpcm/internal/ecp"
	"sdpcm/internal/metrics"
	"sdpcm/internal/pcm"
	"sdpcm/internal/rng"
	"sdpcm/internal/thermal"
	"sdpcm/internal/wd"
)

// Config selects the scheme composition and device parameters.
type Config struct {
	// Timing defaults to pcm.DefaultTiming when zero.
	Timing pcm.Timing
	// Rates are the per-axis disturbance probabilities of the chosen cell
	// layout (thermal.RatesFor).
	Rates thermal.Rates
	// VerifyNeighbors enables the bit-line VnC machinery. False models
	// WD-free bit-lines (DIN's 8F² layout or the 12F² prototype), where
	// writes need no adjacent-line handling.
	VerifyNeighbors bool
	// Correction resolves the WD errors that verification detects:
	// EagerCorrection rewrites the disturbed line immediately, LazyECP parks
	// the errors in free ECP entries (§4.2). Nil selects eager. Stateful
	// policies must not be shared between controllers — core.Scheme builds a
	// fresh value per MCConfig call.
	Correction CorrectionPolicy
	// ECPEntries is N of ECP-N (6 by default in the paper). Zero entries
	// with LazyECP degenerates to basic VnC.
	ECPEntries int
	// Preread schedules the two pre-write reads of §4.3: IdleSlotPreread
	// issues them from the write queue during bank idle slots, NoPreread
	// leaves them to the write op itself. Nil selects none.
	Preread PrereadScheduler
	// Drain picks the full-queue strategy: BurstyDrain flushes to the
	// watermark blocking the bank (§5.1), WriteCancelDrain lets demand reads
	// preempt the drain at write-op boundaries (§6.8 [22]). Nil selects
	// bursty.
	Drain DrainPolicy
	// WriteQueueCap is the per-bank write queue capacity (32 in Table 2).
	WriteQueueCap int
	// LowWatermark is the queue depth background draining drains down to:
	// writes above it are retired during bank idle time (read-priority
	// scheduling); writes below it wait in the queue — the population
	// PreRead works on. A full queue still triggers the §5.1 bursty drain
	// (to the watermark), which blocks that bank's reads. Defaults to a
	// quarter of WriteQueueCap.
	LowWatermark int
	// UseDIN enables the word-line disturbance-aware encoding. All
	// evaluated schemes keep it on (§4.1); turning it off exposes raw
	// word-line WD for the Figure 4 study.
	UseDIN bool
	// Encoder overrides the word-line codec (nil selects DIN when UseDIN
	// is set, identity otherwise). Used by the encoding ablation to swap
	// in Flip-N-Write or raw storage.
	Encoder Encoder
	// ForwardCycles is the latency of servicing a read from the write
	// queue's data buffer.
	ForwardCycles int
	// ChargeVerify / ChargeCorrect control whether verification reads and
	// correction work consume bank time. Both default true; switching one
	// off isolates the other's overhead (the Figure 5 decomposition).
	// Device/ECP state effects always happen regardless.
	ChargeVerify, ChargeCorrect bool
	// MaxCascadeDepth bounds cascading verification recursion.
	MaxCascadeDepth int
	// HardErrorFn, when set, pre-populates per-line ECP hard-error
	// occupancy (lifetime experiments, Fig. 14).
	HardErrorFn func(pcm.LineAddr) int
}

// normalized fills defaults.
func (c Config) normalized() Config {
	if c.Timing == (pcm.Timing{}) {
		c.Timing = pcm.DefaultTiming
	}
	if c.Correction == nil {
		c.Correction = EagerCorrection()
	}
	if c.Preread == nil {
		c.Preread = NoPreread()
	}
	if c.Drain == nil {
		c.Drain = BurstyDrain()
	}
	if c.WriteQueueCap <= 0 {
		c.WriteQueueCap = 32
	}
	if c.LowWatermark <= 0 {
		c.LowWatermark = c.WriteQueueCap / 4
	}
	if c.LowWatermark >= c.WriteQueueCap {
		c.LowWatermark = c.WriteQueueCap - 1
	}
	if c.ForwardCycles <= 0 {
		c.ForwardCycles = 40
	}
	if c.MaxCascadeDepth <= 0 {
		c.MaxCascadeDepth = 64
	}
	return c
}

// Stats aggregates controller activity.
type Stats struct {
	DemandReads    uint64
	ForwardedReads uint64
	WriteRequests  uint64
	Coalesced      uint64 // write requests merged into an existing entry
	WriteOps       uint64 // write operations executed on the array
	Drains         uint64 // bursty drains triggered by a full queue

	PreReadsIssued    uint64
	PreReadsForwarded uint64 // satisfied from the write queue, no bank time
	PreReadsCanceled  uint64
	PreReadHits       uint64 // write ops that found both pre-reads done

	VerifyReads      uint64 // pre+post adjacent-line reads at write ops
	CascadeReads     uint64 // verification reads triggered by corrections
	CorrectionWrites uint64
	LazyRecords      uint64 // error batches absorbed by the correction policy
	CascadeTruncated uint64 // cascades cut by MaxCascadeDepth

	ReadPreemptions uint64 // reads that preempted a drain (write cancellation)

	BurstOps      uint64 // write ops executed inside a full-queue bursty drain
	BackgroundOps uint64 // write ops executed during bank idle time

	// Cycle decomposition across all banks.
	ProgramCycles uint64
	VerifyCycles  uint64
	CorrectCycles uint64
	ReadCycles    uint64

	// Latency accounting for demand reads.
	ReadLatencySum uint64
	ReadWaitSum    uint64 // queueing component of read latency
}

// Add accumulates another Stats value. Every field is additive, so merging
// per-bank controller shards in bank order reproduces the single-controller
// aggregate exactly.
func (s *Stats) Add(o Stats) {
	s.DemandReads += o.DemandReads
	s.ForwardedReads += o.ForwardedReads
	s.WriteRequests += o.WriteRequests
	s.Coalesced += o.Coalesced
	s.WriteOps += o.WriteOps
	s.Drains += o.Drains
	s.PreReadsIssued += o.PreReadsIssued
	s.PreReadsForwarded += o.PreReadsForwarded
	s.PreReadsCanceled += o.PreReadsCanceled
	s.PreReadHits += o.PreReadHits
	s.VerifyReads += o.VerifyReads
	s.CascadeReads += o.CascadeReads
	s.CorrectionWrites += o.CorrectionWrites
	s.LazyRecords += o.LazyRecords
	s.CascadeTruncated += o.CascadeTruncated
	s.ReadPreemptions += o.ReadPreemptions
	s.BurstOps += o.BurstOps
	s.BackgroundOps += o.BackgroundOps
	s.ProgramCycles += o.ProgramCycles
	s.VerifyCycles += o.VerifyCycles
	s.CorrectCycles += o.CorrectCycles
	s.ReadCycles += o.ReadCycles
	s.ReadLatencySum += o.ReadLatencySum
	s.ReadWaitSum += o.ReadWaitSum
}

// Encoder is the word-line codec contract: a stored-image transform with
// per-line state. *din.Codec (including its nil identity form) and
// *fnw.Codec implement it.
type Encoder interface {
	Encode(a pcm.LineAddr, data, stored pcm.Line) pcm.Line
	Decode(a pcm.LineAddr, stored pcm.Line) pcm.Line
	Forget(a pcm.LineAddr)
}

// RegionResolver is the hardware-side interpretation of the TLB tag of
// Fig. 9: given a page, which (n:m) compression tag governs its region and
// where in the region's strip layout the page falls. *alloc.Allocator is the
// live implementation; the sharded simulator substitutes a versioned mirror
// so shard goroutines resolve tags without touching the allocator.
type RegionResolver interface {
	RegionTag(p pcm.PageAddr) alloc.Tag
	StripIndexInRegion(p pcm.PageAddr) int
	StripsPerRegion() int
}

// Controller is the memory controller for one DIMM.
type Controller struct {
	cfg    Config
	dev    *pcm.Device
	geo    pcm.Geometry
	ecp    *ecp.Table
	codec  Encoder
	engine *wd.Engine
	region RegionResolver

	// Optional CorrectionPolicy extensions, resolved once at construction so
	// the hot paths pay a nil check instead of a type assertion. All nil for
	// the built-in policies.
	readOverride  ReadOverrider
	writeObserver WriteObserver
	drainer       Drainer

	banks  []bank
	nextID uint64
	Stats  Stats

	// Steady-state allocation elimination: retired write-queue entries are
	// recycled, and verification renders flip masks into per-depth scratch
	// buffers instead of fresh slices (see scratchBits).
	entryPool  []*writeEntry
	bitScratch [][]int

	// Instrumentation handles (all nil when uninstrumented: every use is a
	// nil-safe no-op, so the disabled cost is one branch per site).
	tr           *metrics.Trace
	hm           *wd.Heatmap
	readLat      *metrics.Histogram
	queueRes     *metrics.Histogram
	queueDepth   *metrics.Histogram
	cascadeDepth *metrics.Histogram
}

// New builds a controller. dev supplies the array; region supplies
// (n:m)-strip marking decisions (its RegionTag/StripIndexInRegion are the
// hardware-side interpretation of the TLB tag of Fig. 9); rnd seeds the
// disturbance engine.
func New(cfg Config, dev *pcm.Device, region RegionResolver, rnd *rng.Rand) (*Controller, error) {
	cfg = cfg.normalized()
	table, err := ecp.New(cfg.ECPEntries)
	if err != nil {
		return nil, err
	}
	table.HardFn = cfg.HardErrorFn
	codec := cfg.Encoder
	if codec == nil {
		if cfg.UseDIN {
			codec = din.NewCodec()
		} else {
			codec = (*din.Codec)(nil) // nil-safe identity transform
		}
	}
	if region == nil {
		return nil, fmt.Errorf("mc: nil allocator")
	}
	c := &Controller{
		cfg:    cfg,
		dev:    dev,
		geo:    dev.Geometry(),
		ecp:    table,
		codec:  codec,
		engine: wd.New(cfg.Rates, rnd.SplitLabeled("mc:wd")),
		region: region,
		banks:  make([]bank, dev.Banks()),
	}
	c.readOverride, _ = cfg.Correction.(ReadOverrider)
	c.writeObserver, _ = cfg.Correction.(WriteObserver)
	c.drainer, _ = cfg.Correction.(Drainer)
	return c, nil
}

// Instrument attaches the controller and its subcomponents (disturbance
// engine, ECP table) to a metrics registry: distribution histograms record
// on the hot path and the registry's event trace, when enabled, receives the
// controller's decision points. A nil registry leaves the controller
// uninstrumented — the zero-overhead default.
func (c *Controller) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	c.tr = reg.Trace()
	c.readLat = reg.Histogram("mc.read_latency", []uint64{400, 800, 1600, 3200, 6400, 12800, 25600, 51200})
	c.queueRes = reg.Histogram("mc.queue_residency", []uint64{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22})
	c.queueDepth = reg.Histogram("mc.queue_depth_at_enqueue", []uint64{1, 2, 4, 8, 16, 24, 32, 48})
	c.cascadeDepth = reg.Histogram("mc.cascade_depth", []uint64{0, 1, 2, 3, 4, 6, 8, 12, 16, 32})
	c.engine.Instrument(reg.Trace())
	c.ecp.Instrument(reg)
}

// InstrumentHeatmap attaches a WD spatial heatmap to the controller and its
// disturbance engine: injected flips, LazyCorrection parks and correction
// writes accumulate per bank × line-region. A nil heatmap is the disabled
// (zero-overhead) default.
func (c *Controller) InstrumentHeatmap(h *wd.Heatmap) {
	c.hm = h
	c.engine.InstrumentHeatmap(h)
}

// Device exposes the underlying array (for wear statistics).
func (c *Controller) Device() *pcm.Device { return c.dev }

// ECP exposes the pointer table (for wear statistics).
func (c *Controller) ECP() *ecp.Table { return c.ecp }

// Engine exposes the disturbance engine (for error statistics).
func (c *Controller) Engine() *wd.Engine { return c.engine }

// PeekData returns the current logical content of a line: raw array bits,
// ECP-corrected, policy-corrected (when the correction policy buffers
// pending repairs, e.g. the in-module barrier), DIN-decoded. It models the
// data the LLC would hold and is used by the simulator to build write-back
// payloads.
func (c *Controller) PeekData(a pcm.LineAddr) pcm.Line {
	line := c.ecp.CorrectRead(a, c.dev.Peek(a))
	if c.readOverride != nil {
		line = c.readOverride.OverrideRead(a, line)
	}
	return c.codec.Decode(a, line)
}

// LatestData returns the freshest logical content of a line, checking the
// bank's write queue before the array — the coherence rule forwarding uses.
// Wear-leveling copies read through this so a queued-but-undrained write is
// never lost by a rotation.
func (c *Controller) LatestData(a pcm.LineAddr) pcm.Line {
	b := &c.banks[c.geo.Locate(a).Bank]
	if e := b.findEntry(a); e != nil {
		return e.data
	}
	return c.PeekData(a)
}
