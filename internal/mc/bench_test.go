package mc

import (
	"testing"

	"sdpcm/internal/alloc"
	"sdpcm/internal/pcm"
	"sdpcm/internal/rng"
)

// BenchmarkWritePath measures the hot write path with VnC on: posted writes
// at a rate that keeps the queue busy, so background drains, bursty drains
// and the full executeWrite flow (pre-reads, program, verify, correct) all
// run. The sub-benchmarks cover each policy stack; the numbers guard the
// cost of the policy-interface indirection (must stay within noise of the
// direct-call implementation).
// TestWritePathAllocFree pins the controller's steady-state zero-allocation
// contract: after a warm-up that materializes device chunks, queue capacity,
// the entry pool and the per-depth bit scratch, posted writes (including
// verification and eager correction) never touch the heap.
func TestWritePathAllocFree(t *testing.T) {
	cfg := baselineCfg()
	cfg.WriteQueueCap = 8
	d, err := pcm.NewDevice(pcm.Config{Pages: testPages, FillSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, err := alloc.New(testPages, 128)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cfg, d, a, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	// Pre-grow the verification scratch to the cascade bound so a deeper-
	// than-warm-up cascade during measurement cannot allocate.
	for depth := 0; depth <= cfg.MaxCascadeDepth; depth++ {
		c.scratchBits(depth, pcm.Mask{})
	}
	rnd := rng.New(3)
	const n = 4096
	addrs := make([]pcm.LineAddr, n)
	datas := make([]pcm.Line, n)
	for i := range addrs {
		addrs[i] = pcm.LineOf(pcm.PageAddr(rnd.Intn(256)), rnd.Intn(64))
		for w := range datas[i] {
			datas[i][w] = rnd.Uint64()
		}
	}
	var clock uint64
	step := func(i int) {
		j := i % n
		c.Write(clock, addrs[j], datas[j])
		clock += 700
	}
	// Two full cycles materialize every chunk, ECP/codec line state and the
	// steady queue/pool capacities.
	for i := 0; i < 2*n; i++ {
		step(i)
	}
	i := 0
	if got := testing.AllocsPerRun(400, func() {
		i++
		step(i)
	}); got != 0 {
		t.Errorf("write path allocates %v/run in steady state", got)
	}
}

func BenchmarkWritePath(b *testing.B) {
	variants := []struct {
		name string
		cfg  Config
	}{
		{"vnc", baselineCfg()},
		{"lazyc6", func() Config {
			c := baselineCfg()
			c.Correction = LazyECP()
			c.ECPEntries = 6
			return c
		}()},
		{"lazyc6+preread", func() Config {
			c := baselineCfg()
			c.Correction = LazyECP()
			c.ECPEntries = 6
			c.Preread = IdleSlotPreread()
			return c
		}()},
		{"wc+lazyc6", func() Config {
			c := baselineCfg()
			c.Correction = LazyECP()
			c.ECPEntries = 6
			c.Drain = WriteCancelDrain()
			return c
		}()},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := v.cfg
			cfg.WriteQueueCap = 8
			d, err := pcm.NewDevice(pcm.Config{Pages: testPages, FillSeed: 7})
			if err != nil {
				b.Fatal(err)
			}
			a, err := alloc.New(testPages, 128)
			if err != nil {
				b.Fatal(err)
			}
			c, err := New(cfg, d, a, rng.New(99))
			if err != nil {
				b.Fatal(err)
			}
			// Pre-generate a deterministic request stream so generation cost
			// stays out of the measured loop.
			rnd := rng.New(3)
			const n = 4096
			addrs := make([]pcm.LineAddr, n)
			datas := make([]pcm.Line, n)
			for i := range addrs {
				addrs[i] = pcm.LineOf(pcm.PageAddr(rnd.Intn(256)), rnd.Intn(64))
				for w := range datas[i] {
					datas[i][w] = rnd.Uint64()
				}
			}
			var clock uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % n
				c.Write(clock, addrs[j], datas[j])
				clock += 700
			}
			b.StopTimer()
			c.Flush(clock)
		})
	}
}
