package mc

import (
	"testing"

	"sdpcm/internal/alloc"
	"sdpcm/internal/pcm"
	"sdpcm/internal/rng"
)

// BenchmarkWritePath measures the hot write path with VnC on: posted writes
// at a rate that keeps the queue busy, so background drains, bursty drains
// and the full executeWrite flow (pre-reads, program, verify, correct) all
// run. The sub-benchmarks cover each policy stack; the numbers guard the
// cost of the policy-interface indirection (must stay within noise of the
// direct-call implementation).
func BenchmarkWritePath(b *testing.B) {
	variants := []struct {
		name string
		cfg  Config
	}{
		{"vnc", baselineCfg()},
		{"lazyc6", func() Config {
			c := baselineCfg()
			c.Correction = LazyECP()
			c.ECPEntries = 6
			return c
		}()},
		{"lazyc6+preread", func() Config {
			c := baselineCfg()
			c.Correction = LazyECP()
			c.ECPEntries = 6
			c.Preread = IdleSlotPreread()
			return c
		}()},
		{"wc+lazyc6", func() Config {
			c := baselineCfg()
			c.Correction = LazyECP()
			c.ECPEntries = 6
			c.Drain = WriteCancelDrain()
			return c
		}()},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := v.cfg
			cfg.WriteQueueCap = 8
			d, err := pcm.NewDevice(pcm.Config{Pages: testPages, FillSeed: 7})
			if err != nil {
				b.Fatal(err)
			}
			a, err := alloc.New(testPages, 128)
			if err != nil {
				b.Fatal(err)
			}
			c, err := New(cfg, d, a, rng.New(99))
			if err != nil {
				b.Fatal(err)
			}
			// Pre-generate a deterministic request stream so generation cost
			// stays out of the measured loop.
			rnd := rng.New(3)
			const n = 4096
			addrs := make([]pcm.LineAddr, n)
			datas := make([]pcm.Line, n)
			for i := range addrs {
				addrs[i] = pcm.LineOf(pcm.PageAddr(rnd.Intn(256)), rnd.Intn(64))
				for w := range datas[i] {
					datas[i][w] = rnd.Uint64()
				}
			}
			var clock uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % n
				c.Write(clock, addrs[j], datas[j])
				clock += 700
			}
			b.StopTimer()
			c.Flush(clock)
		})
	}
}
