package workload

import "sdpcm/internal/snap"

// EncodeState serializes the generator's mutable state: the RNG stream
// position and the sequential cursor. Spec-derived parameters are rebuilt
// identically by construction.
func (g *Generator) EncodeState(e *snap.Encoder) {
	e.Begin("workload.generator")
	for _, w := range g.rnd.State() {
		e.U64(w)
	}
	e.U64(g.cursor)
	e.End()
}

// DecodeState restores state written by EncodeState into a generator built
// with the same spec and seed.
func (g *Generator) DecodeState(d *snap.Decoder) error {
	d.Begin("workload.generator")
	var s [4]uint64
	for i := range s {
		s[i] = d.U64()
	}
	g.rnd.SetState(s)
	g.cursor = d.U64()
	d.End()
	return d.Err()
}

// EncodeState serializes the mutator's RNG stream position; the rewrite
// probability is a construction parameter.
func (m *Mutator) EncodeState(e *snap.Encoder) {
	e.Begin("workload.mutator")
	for _, w := range m.rnd.State() {
		e.U64(w)
	}
	e.End()
}

// DecodeState restores state written by EncodeState.
func (m *Mutator) DecodeState(d *snap.Decoder) error {
	d.Begin("workload.mutator")
	var s [4]uint64
	for i := range s {
		s[i] = d.U64()
	}
	m.rnd.SetState(s)
	d.End()
	return d.Err()
}
