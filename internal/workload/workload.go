// Package workload synthesises main-memory reference streams calibrated to
// the paper's Table 3 applications (SPEC2006 + STREAM).
//
// The paper captures, with PIN, ten million references to main memory per
// application after cache warm-up; we do not have SPEC inputs or PIN, so
// each benchmark is modelled as a parameterised stochastic address process
// reproducing the observable characteristics the evaluation depends on:
//
//   - memory intensity and read/write mix (Table 3 RPKI/WPKI);
//   - spatial behaviour (streaming vs hot-set vs pointer-chasing), which
//     drives bank conflict and row locality;
//   - footprint (distinct pages touched), which drives allocator pressure;
//   - per-write data volatility (fraction of a line rewritten), which
//     drives differential-write pulse counts and hence disturbance rates —
//     e.g. gemsFDTD "changes less bits per write" (§6.4).
//
// Generators are deterministic for a given seed and implement trace.Stream,
// so they can be consumed directly by the simulator or captured to trace
// files with sdpcm-trace.
package workload

import (
	"fmt"
	"sort"

	"sdpcm/internal/rng"
	"sdpcm/internal/trace"
)

// Spec describes one benchmark's memory behaviour.
type Spec struct {
	Name string
	// RPKI and WPKI are main-memory reads/writes per thousand instructions
	// (Table 3).
	RPKI, WPKI float64
	// FootprintPages is the number of distinct virtual pages the process
	// touches.
	FootprintPages int
	// SeqProb is the probability a reference continues the sequential
	// stream (streaming codes like STREAM/lbm are high; mcf is near zero).
	SeqProb float64
	// HotProb is the probability a non-sequential reference falls in the
	// hot set; HotFrac is the hot set's share of the footprint.
	HotProb, HotFrac float64
	// WriteChunkChange is the probability each 16-bit chunk of a line (32
	// chunks per 64 B) is rewritten with fresh random content by a write —
	// the data volatility knob. Calibrated so the average differential
	// write flips the bit counts behind the paper's §4.2 observation ("one
	// PCM line write triggers two WD errors in each of its adjacent
	// lines"); gemsFDTD is the low outlier (§6.4).
	WriteChunkChange float64
}

// Validate reports whether the spec is well-formed.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if s.RPKI < 0 || s.WPKI < 0 || s.RPKI+s.WPKI == 0 {
		return fmt.Errorf("workload %s: RPKI+WPKI must be positive", s.Name)
	}
	if s.FootprintPages <= 0 {
		return fmt.Errorf("workload %s: footprint must be positive", s.Name)
	}
	for _, p := range []float64{s.SeqProb, s.HotProb, s.HotFrac, s.WriteChunkChange} {
		if p < 0 || p > 1 {
			return fmt.Errorf("workload %s: probability out of range", s.Name)
		}
	}
	return nil
}

// Table3 lists the paper's simulated applications with their published
// RPKI/WPKI and our behavioural parameterisation.
var Table3 = []Spec{
	{Name: "bwaves", RPKI: 17.45, WPKI: 0.47, FootprintPages: 3072,
		SeqProb: 0.80, HotProb: 0.50, HotFrac: 0.10, WriteChunkChange: 0.25},
	{Name: "gemsFDTD", RPKI: 9.62, WPKI: 6.67, FootprintPages: 3072,
		SeqProb: 0.70, HotProb: 0.50, HotFrac: 0.10, WriteChunkChange: 0.06},
	{Name: "lbm", RPKI: 14.59, WPKI: 7.29, FootprintPages: 4096,
		SeqProb: 0.85, HotProb: 0.40, HotFrac: 0.10, WriteChunkChange: 0.28},
	{Name: "leslie3d", RPKI: 2.39, WPKI: 0.04, FootprintPages: 2048,
		SeqProb: 0.75, HotProb: 0.50, HotFrac: 0.15, WriteChunkChange: 0.20},
	{Name: "mcf", RPKI: 22.38, WPKI: 20.47, FootprintPages: 8192,
		SeqProb: 0.05, HotProb: 0.35, HotFrac: 0.05, WriteChunkChange: 0.33},
	{Name: "wrf", RPKI: 0.14, WPKI: 0.02, FootprintPages: 1024,
		SeqProb: 0.60, HotProb: 0.60, HotFrac: 0.20, WriteChunkChange: 0.20},
	{Name: "xalan", RPKI: 0.13, WPKI: 0.13, FootprintPages: 1024,
		SeqProb: 0.20, HotProb: 0.70, HotFrac: 0.10, WriteChunkChange: 0.24},
	{Name: "zeusmp", RPKI: 4.11, WPKI: 3.36, FootprintPages: 3072,
		SeqProb: 0.65, HotProb: 0.45, HotFrac: 0.10, WriteChunkChange: 0.24},
	{Name: "stream", RPKI: 2.32, WPKI: 2.32, FootprintPages: 4096,
		SeqProb: 0.95, HotProb: 0.0, HotFrac: 0.0, WriteChunkChange: 0.30},
}

// ByName returns the Table 3 spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Table3 {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names returns the benchmark names in Table 3 order.
func Names() []string {
	out := make([]string, len(Table3))
	for i, s := range Table3 {
		out[i] = s.Name
	}
	return out
}

// Generator emits an infinite, deterministic reference stream for one
// process (one core in the multi-programmed mix).
type Generator struct {
	spec Spec
	rnd  *rng.Rand

	cursor    uint64 // sequential stream position (line index)
	writeFrac float64
	gapP      float64 // geometric parameter for instruction gaps
	hotPages  int
}

// NewGenerator builds a generator for spec. Generators with the same spec
// and seed produce identical streams.
func NewGenerator(spec Spec, seed uint64) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	refsPerInstr := (spec.RPKI + spec.WPKI) / 1000
	// Mean instructions per reference, at least 1 (the ref itself).
	meanGap := 1/refsPerInstr - 1
	gapP := 1.0
	if meanGap > 0 {
		gapP = 1 / (meanGap + 1)
	}
	hot := int(float64(spec.FootprintPages) * spec.HotFrac)
	if hot <= 0 {
		hot = 1
	}
	g := &Generator{
		spec:      spec,
		rnd:       rng.New(seed).SplitLabeled("workload:" + spec.Name),
		writeFrac: spec.WPKI / (spec.RPKI + spec.WPKI),
		gapP:      gapP,
		hotPages:  hot,
	}
	g.cursor = g.rnd.Uint64n(uint64(spec.FootprintPages) * 64)
	return g, nil
}

// Spec returns the generator's specification.
func (g *Generator) Spec() Spec { return g.spec }

// Next implements trace.Stream; generators never exhaust.
func (g *Generator) Next() (trace.Record, bool) {
	var line uint64
	totalLines := uint64(g.spec.FootprintPages) * 64
	switch {
	case g.rnd.Bernoulli(g.spec.SeqProb):
		g.cursor = (g.cursor + 1) % totalLines
		line = g.cursor
	case g.rnd.Bernoulli(g.spec.HotProb):
		page := g.rnd.Uint64n(uint64(g.hotPages))
		line = page*64 + g.rnd.Uint64n(64)
	default:
		line = g.rnd.Uint64n(totalLines)
		// Random jumps also relocate the sequential stream occasionally,
		// as when a streaming kernel moves to its next array.
		if g.rnd.Bernoulli(0.1) {
			g.cursor = line
		}
	}
	kind := trace.Read
	if g.rnd.Bernoulli(g.writeFrac) {
		kind = trace.Write
	}
	gap := uint32(g.rnd.Geometric(g.gapP))
	return trace.Record{Kind: kind, Line: line, Gap: gap}, true
}

// MutateLine produces the new content of a line written by this workload:
// each 16-bit chunk is rewritten with probability WriteChunkChange. At
// least one chunk always changes (a write-back of a clean line never
// reaches memory).
func (g *Generator) MutateLine(old [8]uint64) [8]uint64 {
	return mutate(g.rnd, g.spec.WriteChunkChange, old)
}

// Mutator produces write-back payloads for replayed traces, which carry
// addresses but no data: it applies the same chunk-level volatility model
// the live generators use.
type Mutator struct {
	rnd  *rng.Rand
	prob float64
}

// NewMutator builds a mutator with the given per-16-bit-chunk rewrite
// probability (clamped to (0,1]; non-positive values select a typical 0.15).
func NewMutator(prob float64, seed uint64) *Mutator {
	if prob <= 0 {
		prob = 0.15
	}
	if prob > 1 {
		prob = 1
	}
	return &Mutator{rnd: rng.New(seed).SplitLabeled("mutator"), prob: prob}
}

// MutateLine rewrites chunks of the line per the volatility model.
func (m *Mutator) MutateLine(old [8]uint64) [8]uint64 {
	return mutate(m.rnd, m.prob, old)
}

func mutate(rnd *rng.Rand, prob float64, old [8]uint64) [8]uint64 {
	return DrawMutation(rnd, prob).Apply(old)
}

// Capture materialises n records from the generator into a slice.
func Capture(g *Generator, n int) []trace.Record {
	out := make([]trace.Record, n)
	for i := range out {
		out[i], _ = g.Next()
	}
	return out
}

// MixSpec names a multi-programmed workload: one benchmark per core, as in
// §5.2 ("each core runs one copy of these applications").
type MixSpec struct {
	Name  string
	Cores []string // benchmark per core
}

// HomogeneousMix builds the paper's configuration: every core runs a copy of
// the same benchmark.
func HomogeneousMix(bench string, cores int) MixSpec {
	c := make([]string, cores)
	for i := range c {
		c[i] = bench
	}
	return MixSpec{Name: bench, Cores: c}
}

// Generators instantiates one generator per core with decorrelated seeds.
func (m MixSpec) Generators(seed uint64) ([]*Generator, error) {
	out := make([]*Generator, len(m.Cores))
	for i, b := range m.Cores {
		spec, err := ByName(b)
		if err != nil {
			return nil, err
		}
		g, err := NewGenerator(spec, seed+uint64(i)*0x9e3779b97f4a7c15)
		if err != nil {
			return nil, err
		}
		out[i] = g
	}
	return out, nil
}

// SortedCopy returns the specs sorted by name (for stable reporting).
func SortedCopy() []Spec {
	out := make([]Spec, len(Table3))
	copy(out, Table3)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
