package workload

import (
	"math"
	"testing"

	"sdpcm/internal/trace"
)

func TestAllSpecsValid(t *testing.T) {
	if len(Table3) != 9 {
		t.Fatalf("Table3 has %d entries, want 9", len(Table3))
	}
	for _, s := range Table3 {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("mcf")
	if err != nil || s.Name != "mcf" {
		t.Fatalf("ByName(mcf) = %+v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
	if len(Names()) != len(Table3) {
		t.Fatal("Names length mismatch")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	spec, _ := ByName("lbm")
	g1, _ := NewGenerator(spec, 7)
	g2, _ := NewGenerator(spec, 7)
	for i := 0; i < 1000; i++ {
		r1, _ := g1.Next()
		r2, _ := g2.Next()
		if r1 != r2 {
			t.Fatalf("streams diverged at %d", i)
		}
	}
	// Different seeds differ.
	g3, _ := NewGenerator(spec, 8)
	same := 0
	for i := 0; i < 100; i++ {
		r1, _ := g1.Next()
		r3, _ := g3.Next()
		if r1 == r3 {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("different seeds matched %d/100 records", same)
	}
}

func TestCalibrationMatchesTable3(t *testing.T) {
	// The generated streams must reproduce the published RPKI/WPKI within
	// 10% (they are the calibration targets).
	for _, spec := range Table3 {
		g, err := NewGenerator(spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		recs := Capture(g, 50000)
		st := trace.Summarize(recs)
		if rel := math.Abs(st.RPKI()-spec.RPKI) / spec.RPKI; rel > 0.10 {
			t.Errorf("%s: RPKI %v vs target %v (%.1f%% off)",
				spec.Name, st.RPKI(), spec.RPKI, rel*100)
		}
		if spec.WPKI > 0.1 {
			if rel := math.Abs(st.WPKI()-spec.WPKI) / spec.WPKI; rel > 0.15 {
				t.Errorf("%s: WPKI %v vs target %v (%.1f%% off)",
					spec.Name, st.WPKI(), spec.WPKI, rel*100)
			}
		}
	}
}

func TestFootprintRespected(t *testing.T) {
	for _, name := range []string{"mcf", "stream", "wrf"} {
		spec, _ := ByName(name)
		g, _ := NewGenerator(spec, 2)
		maxLine := uint64(spec.FootprintPages) * 64
		for i := 0; i < 20000; i++ {
			r, _ := g.Next()
			if r.Line >= maxLine {
				t.Fatalf("%s: line %d outside footprint of %d lines",
					name, r.Line, maxLine)
			}
		}
	}
}

func TestStreamingVsPointerChasing(t *testing.T) {
	// stream must be overwhelmingly sequential; mcf overwhelmingly not.
	seqFrac := func(name string) float64 {
		spec, _ := ByName(name)
		g, _ := NewGenerator(spec, 3)
		prev, _ := g.Next()
		seq := 0
		const n = 10000
		for i := 0; i < n; i++ {
			r, _ := g.Next()
			if r.Line == prev.Line+1 {
				seq++
			}
			prev = r
		}
		return float64(seq) / n
	}
	if f := seqFrac("stream"); f < 0.85 {
		t.Errorf("stream sequential fraction = %v, want > 0.85", f)
	}
	if f := seqFrac("mcf"); f > 0.15 {
		t.Errorf("mcf sequential fraction = %v, want < 0.15", f)
	}
}

func TestMutateLineVolatility(t *testing.T) {
	// gemsFDTD must change far fewer bits per write than mcf (§6.4).
	avgFlips := func(name string) float64 {
		spec, _ := ByName(name)
		g, _ := NewGenerator(spec, 4)
		var line [8]uint64
		total := 0
		const n = 2000
		for i := 0; i < n; i++ {
			next := g.MutateLine(line)
			for w := range line {
				x := line[w] ^ next[w]
				for x != 0 {
					x &= x - 1
					total++
				}
			}
			line = next
		}
		return float64(total) / n
	}
	gems := avgFlips("gemsFDTD")
	mcf := avgFlips("mcf")
	if gems >= mcf/2 {
		t.Errorf("gemsFDTD flips/write = %v, mcf = %v; want gems << mcf", gems, mcf)
	}
	if gems < 1 {
		t.Errorf("gemsFDTD flips/write = %v, a write must change something", gems)
	}
}

func TestMutateLineAlwaysChanges(t *testing.T) {
	spec, _ := ByName("gemsFDTD") // lowest change probability
	g, _ := NewGenerator(spec, 5)
	var line [8]uint64
	for i := 0; i < 500; i++ {
		next := g.MutateLine(line)
		if next == line {
			t.Fatal("MutateLine must always change at least one word")
		}
		line = next
	}
}

func TestHomogeneousMix(t *testing.T) {
	m := HomogeneousMix("lbm", 8)
	if m.Name != "lbm" || len(m.Cores) != 8 {
		t.Fatalf("mix = %+v", m)
	}
	gens, err := m.Generators(1)
	if err != nil || len(gens) != 8 {
		t.Fatalf("Generators: %v, %d", err, len(gens))
	}
	// Cores must have decorrelated streams.
	r0, _ := gens[0].Next()
	r1, _ := gens[1].Next()
	r2, _ := gens[2].Next()
	if r0 == r1 && r1 == r2 {
		t.Fatal("core streams are correlated")
	}
	// Unknown benchmark propagates an error.
	badMix := MixSpec{Name: "x", Cores: []string{"nope"}}
	if _, err := badMix.Generators(1); err == nil {
		t.Fatal("unknown benchmark in mix must error")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{},
		{Name: "a", RPKI: 0, WPKI: 0, FootprintPages: 1},
		{Name: "a", RPKI: 1, FootprintPages: 0},
		{Name: "a", RPKI: 1, FootprintPages: 1, SeqProb: 1.5},
		{Name: "a", RPKI: -1, WPKI: 2, FootprintPages: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestSortedCopy(t *testing.T) {
	s := SortedCopy()
	if len(s) != len(Table3) {
		t.Fatal("SortedCopy length mismatch")
	}
	for i := 1; i < len(s); i++ {
		if s[i-1].Name > s[i].Name {
			t.Fatal("SortedCopy not sorted")
		}
	}
	// Must not mutate the original.
	if Table3[0].Name != "bwaves" {
		t.Fatal("Table3 order mutated")
	}
}

func TestMutatorDeterminismAndClamping(t *testing.T) {
	m1 := NewMutator(0.2, 9)
	m2 := NewMutator(0.2, 9)
	var line [8]uint64
	for i := 0; i < 50; i++ {
		a := m1.MutateLine(line)
		b := m2.MutateLine(line)
		if a != b {
			t.Fatal("mutators with equal seeds diverged")
		}
		line = a
	}
	// Non-positive probability selects the default and still mutates.
	m := NewMutator(-1, 3)
	if m.MutateLine(line) == line {
		t.Fatal("default-probability mutator must change the line")
	}
	// Probability 1 rewrites every chunk (almost surely != old).
	hot := NewMutator(5, 4) // clamped to 1
	if hot.MutateLine(line) == line {
		t.Fatal("prob-1 mutator must rewrite")
	}
}

func TestMutatorMatchesGeneratorModel(t *testing.T) {
	// The mutator and the generator share the volatility model: average
	// flipped bits should be comparable for equal probabilities.
	spec, _ := ByName("lbm")
	g, _ := NewGenerator(spec, 7)
	m := NewMutator(spec.WriteChunkChange, 7)
	count := func(f func([8]uint64) [8]uint64) float64 {
		var line [8]uint64
		total := 0
		for i := 0; i < 3000; i++ {
			next := f(line)
			for w := range line {
				x := line[w] ^ next[w]
				for x != 0 {
					x &= x - 1
					total++
				}
			}
			line = next
		}
		return float64(total) / 3000
	}
	a := count(g.MutateLine)
	b := count(m.MutateLine)
	if a < b*0.8 || a > b*1.2 {
		t.Fatalf("generator flips %v vs mutator %v: models diverged", a, b)
	}
}
