package workload

import (
	"testing"

	"sdpcm/internal/rng"
)

// legacyMutate is the original in-place volatility model, kept verbatim as
// the reference: DrawMutation+Apply must consume the RNG and transform the
// line identically, or every golden table silently shifts.
func legacyMutate(rnd *rng.Rand, prob float64, old [8]uint64) [8]uint64 {
	out := old
	changed := false
	for w := range out {
		for c := uint(0); c < 4; c++ {
			if rnd.Bernoulli(prob) {
				fresh := rnd.Uint64() & 0xffff
				out[w] = out[w]&^(uint64(0xffff)<<(16*c)) | fresh<<(16*c)
				changed = true
			}
		}
	}
	if !changed {
		i := rnd.Uint64n(32)
		w, c := i/4, uint(i%4)
		fresh := rnd.Uint64() & 0xffff
		out[w] = out[w]&^(uint64(0xffff)<<(16*c)) | fresh<<(16*c)
	}
	return out
}

func TestDrawMutationMatchesLegacyMutate(t *testing.T) {
	for _, prob := range []float64{0, 0.001, 0.06, 0.33, 1} {
		a, b := rng.New(77), rng.New(77)
		old := [8]uint64{}
		for i := range old {
			old[i] = a.Uint64()
			b.Uint64()
		}
		for i := 0; i < 2000; i++ {
			want := legacyMutate(a, prob, old)
			got := DrawMutation(b, prob).Apply(old)
			if got != want {
				t.Fatalf("prob=%v iter %d: Draw+Apply %x != legacy %x", prob, i, got, want)
			}
			// RNG streams must stay in lockstep too.
			if a.Uint64() != b.Uint64() {
				t.Fatalf("prob=%v iter %d: RNG consumption diverged", prob, i)
			}
			old = want
		}
	}
}

func TestDrawMutationAlwaysChanges(t *testing.T) {
	r := rng.New(3)
	for i := 0; i < 100; i++ {
		if m := DrawMutation(r, 0); m.Mask == 0 {
			t.Fatal("mutation with empty mask")
		}
	}
}
