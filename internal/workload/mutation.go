package workload

import (
	"math/bits"

	"sdpcm/internal/rng"
)

// Mutation is one pre-drawn write-back payload: which 16-bit chunks of the
// line are rewritten and with what content. Separating the stochastic draw
// (DrawMutation, consuming the workload RNG) from its application to line
// content (Apply, pure) lets the sharded simulator draw mutations on the
// orchestrator goroutine — preserving the per-core RNG consumption order —
// while the owning bank shard applies them to the latest stored data later.
type Mutation struct {
	Mask  uint32     // bit i set: chunk i (word i/4, 16-bit lane i%4) is rewritten
	Fresh [32]uint16 // replacement content for chunks whose Mask bit is set
}

// DrawMutation draws a mutation from the volatility model: each of the 32
// chunks is rewritten with probability prob; if none is selected, one
// uniformly random chunk is rewritten (a write-back of a clean line never
// reaches memory). The RNG consumption is exactly that of the pre-existing
// in-place mutate path, so streams and goldens depend only on the model.
func DrawMutation(rnd *rng.Rand, prob float64) Mutation {
	var m Mutation
	for w := 0; w < 8; w++ {
		for c := 0; c < 4; c++ {
			if rnd.Bernoulli(prob) {
				idx := w*4 + c
				m.Fresh[idx] = uint16(rnd.Uint64() & 0xffff)
				m.Mask |= 1 << idx
			}
		}
	}
	if m.Mask == 0 {
		i := rnd.Uint64n(32)
		m.Fresh[i] = uint16(rnd.Uint64() & 0xffff)
		m.Mask = 1 << i
	}
	return m
}

// Apply returns the line content after the mutation rewrites its chunks.
func (m Mutation) Apply(old [8]uint64) [8]uint64 {
	out := old
	for mask := m.Mask; mask != 0; mask &= mask - 1 {
		idx := bits.TrailingZeros32(mask)
		w, c := idx/4, uint(idx%4)
		out[w] = out[w]&^(uint64(0xffff)<<(16*c)) | uint64(m.Fresh[idx])<<(16*c)
	}
	return out
}

// DrawMutation draws this workload's next write-back payload.
func (g *Generator) DrawMutation() Mutation {
	return DrawMutation(g.rnd, g.spec.WriteChunkChange)
}

// DrawMutation draws the next replayed-trace write-back payload.
func (m *Mutator) DrawMutation() Mutation {
	return DrawMutation(m.rnd, m.prob)
}
