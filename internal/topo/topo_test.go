package topo

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestDefaultIsDefault(t *testing.T) {
	var nilSpec *Spec
	if !nilSpec.IsDefault() {
		t.Error("nil spec should be default")
	}
	if !Default().IsDefault() {
		t.Error("Default() should be default")
	}
	if got, want := nilSpec.Canon(), Default().Canon(); got != want {
		t.Errorf("nil and Default() canon diverge: %q vs %q", got, want)
	}
	if Demo2().IsDefault() {
		t.Error("Demo2() must not be default")
	}
	if (&Spec{Modules: []Module{{Banks: 16}}}).IsDefault() {
		t.Error("an explicitly-configured single module is not the default topology")
	}
}

func TestValidateZeroModules(t *testing.T) {
	for _, s := range []*Spec{nil, {}, {Modules: []Module{}}} {
		if err := s.Validate(nil); err == nil {
			t.Errorf("zero-module spec %v validated", s)
		}
	}
}

func TestValidateUnknownScheme(t *testing.T) {
	known := func(name string) bool { return name == "vnc" }
	s := &Spec{Modules: []Module{{Scheme: "vnc"}, {Scheme: "nope"}}}
	err := s.Validate(known)
	if err == nil || !strings.Contains(err.Error(), `unknown scheme "nope"`) {
		t.Errorf("unknown scheme not rejected: %v", err)
	}
	// Without a lookup the name is not checked (topo cannot see the registry).
	if err := s.Validate(nil); err != nil {
		t.Errorf("nil lookup should skip scheme checking: %v", err)
	}
}

func TestValidateDuplicateNames(t *testing.T) {
	s := &Spec{Modules: []Module{{Name: "near"}, {Name: "near"}}}
	if err := s.Validate(nil); err == nil || !strings.Contains(err.Error(), `share the name "near"`) {
		t.Errorf("duplicate names not rejected: %v", err)
	}
	// An explicit name colliding with another module's "m<i>" default is the
	// same ambiguity.
	s = &Spec{Modules: []Module{{}, {Name: "m0"}}}
	if err := s.Validate(nil); err == nil || !strings.Contains(err.Error(), `share the name "m0"`) {
		t.Errorf("default-name collision not rejected: %v", err)
	}
}

func TestValidateRanges(t *testing.T) {
	cases := []struct {
		name string
		s    *Spec
		want string
	}{
		{"overlap", &Spec{Modules: []Module{
			{Pages: 100}, {Start: 50, Pages: 100},
		}}, "overlaps"},
		{"unsorted", &Spec{Modules: []Module{
			{Start: 0, Pages: 64}, {Start: 64, Pages: 64}, {Start: 32, Pages: 64},
		}}, "overlaps or is unsorted"},
		{"gap", &Spec{Modules: []Module{
			{Pages: 64}, {Start: 128, Pages: 64},
		}}, "gap"},
		{"missing pages", &Spec{Modules: []Module{
			{Pages: 64}, {Start: 64}, {Start: 128, Pages: 64},
		}}, "explicit pages"},
		{"bad banks", &Spec{Modules: []Module{{Banks: 12}}}, "power of two"},
		{"bad rate", &Spec{Modules: []Module{{BitLineRate: 1.5}}}, "WD rate"},
	}
	for _, tc := range cases {
		err := tc.s.Validate(nil)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	ok := &Spec{Modules: []Module{
		{Start: 0, Pages: 64}, {Start: 64, Pages: 128}, {Start: 192, Pages: 64},
	}}
	if err := ok.Validate(nil); err != nil {
		t.Errorf("sorted contiguous ranges rejected: %v", err)
	}
}

func TestResolveAutoLayout(t *testing.T) {
	s := &Spec{Modules: []Module{
		{Name: "near"},
		{Banks: 8},
	}}
	layout, err := s.Resolve(1<<10, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(layout) != 2 {
		t.Fatalf("got %d placements", len(layout))
	}
	if layout[0].Pages != 512 || layout[1].Pages != 512 {
		t.Errorf("equal split failed: %d/%d", layout[0].Pages, layout[1].Pages)
	}
	if layout[0].Start != 0 || layout[1].Start != 512 {
		t.Errorf("layout not contiguous: %d/%d", layout[0].Start, layout[1].Start)
	}
	if layout[0].Banks != DefaultBanks || layout[1].Banks != 8 {
		t.Errorf("bank defaulting failed: %d/%d", layout[0].Banks, layout[1].Banks)
	}
	if layout[0].Name != "near" || layout[1].Name != "m1" {
		t.Errorf("name defaulting failed: %q/%q", layout[0].Name, layout[1].Name)
	}
	if layout[0].RegionPages != 256 || layout[1].RegionPages != 256 {
		t.Errorf("region defaulting failed: %d/%d", layout[0].RegionPages, layout[1].RegionPages)
	}
	for page, want := range map[int]int{0: 0, 511: 0, 512: 1, 1023: 1} {
		if got := ModuleFor(layout, page); got != want {
			t.Errorf("ModuleFor(%d) = %d, want %d", page, got, want)
		}
	}
}

func TestResolveErrors(t *testing.T) {
	// Oversubscription.
	s := &Spec{Modules: []Module{{Pages: 2048}}}
	if _, err := s.Resolve(1024, 256); err == nil {
		t.Error("oversubscribed spec resolved")
	}
	// Uneven split.
	s = &Spec{Modules: []Module{{}, {}, {}}}
	if _, err := s.Resolve(1<<10, 256); err == nil {
		t.Error("uneven auto split resolved")
	}
	// Pages not a multiple of banks.
	s = &Spec{Modules: []Module{{Pages: 24, Banks: 16}, {Pages: 1000}}}
	if _, err := s.Resolve(1024, 256); err == nil {
		t.Error("pages not a bank multiple resolved")
	}
	// Under-subscription with no auto module.
	s = &Spec{Modules: []Module{{Pages: 512}}}
	if _, err := s.Resolve(1024, 256); err == nil {
		t.Error("undersubscribed explicit spec resolved")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := Demo2()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Errorf("round trip diverged:\n  %+v\n  %+v", orig, back)
	}
	if orig.Canon() != back.Canon() {
		t.Errorf("canon diverged over round trip")
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"modules":[{"bankz":8}]}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`{"modules":[{}]}{"modules":[{}]}`)); err == nil {
		t.Error("trailing data accepted")
	}
}

func TestCanonStable(t *testing.T) {
	a := &Spec{Modules: []Module{{Name: "x", Banks: 8, LinkCycles: 100}}}
	b, err := ParseSpec([]byte(`{"modules":[{"link_cycles":100,"banks":8,"name":"x"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.Canon() != b.Canon() {
		t.Errorf("field order changed canon: %q vs %q", a.Canon(), b.Canon())
	}
	if a.Canon() == Default().Canon() {
		t.Error("non-default spec canonicalized to default")
	}
}
