// Package topo declares memory topologies: N heterogeneous PCM modules —
// each with its own bank geometry, capacity, timing profile (including a
// CXL-style link latency), reliability scheme and WD rate overrides —
// behind an address-range router that maps physical pages to modules.
//
// The package is purely declarative: it parses, validates and canonicalizes
// specs, and resolves them against a memory size into a concrete page
// layout. The simulator (internal/sim) instantiates the described modules;
// the sweep layers (internal/runner, internal/serve) fold the canonical
// form into result-cache keys. topo sits below all of them and imports
// none of them — it may not even name the scheme registry (internal/core),
// so Validate takes the registry as a lookup function.
package topo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// DefaultBanks is the bank count of an unspecified module — the fixed
// 16-bank DIMM (2 ranks × 8 banks) every single-module run uses.
const DefaultBanks = 16

// Module describes one PCM module of a topology.
type Module struct {
	// Name labels the module in results and metrics ("" = "m<i>").
	Name string `json:"name,omitempty"`
	// Banks is the module's bank count (power of two; 0 = DefaultBanks).
	Banks int `json:"banks,omitempty"`
	// Pages is the module's capacity in 4KB pages. 0 means an equal share
	// of the simulated memory left over after explicitly-sized modules.
	Pages int `json:"pages,omitempty"`
	// Start is the first physical page the module serves. Leave every
	// Start zero for automatic contiguous layout in declaration order;
	// explicit starts must describe sorted, non-overlapping, gap-free
	// ranges beginning at page 0.
	Start int `json:"start,omitempty"`
	// RegionPages overrides the (n:m)-Alloc marking-region size for this
	// module (0 = the run's region size).
	RegionPages int `json:"region_pages,omitempty"`
	// Scheme names the module's reliability scheme in the registry
	// ("" inherits the run's scheme).
	Scheme string `json:"scheme,omitempty"`
	// ECPEntries provisions the module's ECP (0 = the scheme's default).
	ECPEntries int `json:"ecp_entries,omitempty"`
	// Timing overrides, in controller cycles (0 = device defaults).
	ReadCycles   int `json:"read_cycles,omitempty"`
	SetCycles    int `json:"set_cycles,omitempty"`
	ResetCycles  int `json:"reset_cycles,omitempty"`
	ParallelBits int `json:"parallel_bits,omitempty"`
	// LinkCycles is the one-way interconnect latency in front of the
	// module (0 = directly attached; CXL-attached modules pay it on every
	// request and response).
	LinkCycles int `json:"link_cycles,omitempty"`
	// WordLineRate / BitLineRate override the scheme layout's WD
	// probabilities (0 = the layout's thermal-model rates; a hotter or
	// denser far module can be modeled by raising them).
	WordLineRate float64 `json:"word_line_rate,omitempty"`
	BitLineRate  float64 `json:"bit_line_rate,omitempty"`
}

// Spec is a declarative memory topology: the ordered module list. The zero
// Spec is invalid; Default() is the single-module identity topology.
type Spec struct {
	Modules []Module `json:"modules"`
}

// Default returns the topology every run without one uses: a single
// all-default module — today's 16-bank DIMM holding all of memory.
func Default() *Spec {
	return &Spec{Modules: []Module{{}}}
}

// IsDefault reports whether the spec (nil included) describes the default
// single-module topology, i.e. selects the simulator's classic code path.
func (s *Spec) IsDefault() bool {
	return s == nil || (len(s.Modules) == 1 && s.Modules[0] == Module{})
}

// Demo2 is the repository's two-module demo: a directly-attached "near"
// module under basic VnC and a CXL-attached "far" module under
// LazyCorrection with ECP-6 paying ~600 cycles of link latency each way.
func Demo2() *Spec {
	return &Spec{Modules: []Module{
		{Name: "near", Scheme: "vnc"},
		{Name: "far", Scheme: "lazyc", ECPEntries: 6, LinkCycles: 600},
	}}
}

// Validate checks the spec's internal consistency. schemeKnown, when
// non-nil, resolves module scheme names against the caller's registry
// (topo itself may not import it); nil skips scheme-name checking.
func (s *Spec) Validate(schemeKnown func(name string) bool) error {
	if s == nil || len(s.Modules) == 0 {
		return fmt.Errorf("topo: spec has no modules")
	}
	explicit := false
	for i, m := range s.Modules {
		if i > 0 && m.Start != 0 {
			explicit = true
		}
	}
	names := make(map[string]int, len(s.Modules))
	prevEnd := 0
	for i, m := range s.Modules {
		// Names key per-module results (and experiment columns), so they must
		// be unique after the "m<i>" default is applied.
		name := m.Name
		if name == "" {
			name = fmt.Sprintf("m%d", i)
		}
		if prev, dup := names[name]; dup {
			return fmt.Errorf("topo: modules %d and %d share the name %q", prev, i, name)
		}
		names[name] = i
		banks := m.Banks
		if banks == 0 {
			banks = DefaultBanks
		}
		if banks < 1 || banks > 1024 || banks&(banks-1) != 0 {
			return fmt.Errorf("topo: module %d: banks %d not a power of two in [1,1024]", i, m.Banks)
		}
		if m.Pages < 0 || m.Start < 0 || m.RegionPages < 0 || m.ECPEntries < 0 ||
			m.ReadCycles < 0 || m.SetCycles < 0 || m.ResetCycles < 0 ||
			m.ParallelBits < 0 || m.LinkCycles < 0 {
			return fmt.Errorf("topo: module %d: negative field", i)
		}
		if m.WordLineRate < 0 || m.WordLineRate > 1 || m.BitLineRate < 0 || m.BitLineRate > 1 {
			return fmt.Errorf("topo: module %d: WD rate outside [0,1]", i)
		}
		if m.Scheme != "" && schemeKnown != nil && !schemeKnown(m.Scheme) {
			return fmt.Errorf("topo: module %d: unknown scheme %q", i, m.Scheme)
		}
		if explicit {
			if m.Pages == 0 {
				return fmt.Errorf("topo: module %d: explicit starts need explicit pages on every module", i)
			}
			if m.Start != prevEnd {
				if m.Start < prevEnd {
					return fmt.Errorf("topo: module %d: range [%d,%d) overlaps or is unsorted (previous end %d)",
						i, m.Start, m.Start+m.Pages, prevEnd)
				}
				return fmt.Errorf("topo: module %d: range starts at %d, leaving a gap after %d",
					i, m.Start, prevEnd)
			}
			prevEnd = m.Start + m.Pages
		}
	}
	return nil
}

// Placement is one module resolved against a memory size: its concrete
// page range and geometry, auto-layout applied.
type Placement struct {
	Module
	// Index is the module's position in the spec.
	Index int
}

// Resolve lays the spec out over memPages pages of physical memory:
// explicitly-sized modules keep their size, the rest split the remainder
// equally, and ranges become contiguous in declaration order. regionPages
// is the run's default marking-region size, applied to modules without
// their own. The returned placements have Banks, Pages, Start, RegionPages
// and Name all concrete.
func (s *Spec) Resolve(memPages, regionPages int) ([]Placement, error) {
	if err := s.Validate(nil); err != nil {
		return nil, err
	}
	remaining := memPages
	auto := 0
	for _, m := range s.Modules {
		if m.Pages == 0 {
			auto++
		} else {
			remaining -= m.Pages
		}
	}
	if remaining < 0 {
		return nil, fmt.Errorf("topo: modules claim more than the %d simulated pages", memPages)
	}
	share := 0
	if auto > 0 {
		if remaining%auto != 0 {
			return nil, fmt.Errorf("topo: %d leftover pages do not split evenly across %d auto-sized modules",
				remaining, auto)
		}
		share = remaining / auto
	} else if remaining != 0 {
		return nil, fmt.Errorf("topo: modules cover %d of the %d simulated pages", memPages-remaining, memPages)
	}
	out := make([]Placement, len(s.Modules))
	start := 0
	for i, m := range s.Modules {
		p := Placement{Module: m, Index: i}
		if p.Banks == 0 {
			p.Banks = DefaultBanks
		}
		if p.Pages == 0 {
			p.Pages = share
		}
		if p.RegionPages == 0 {
			p.RegionPages = regionPages
		}
		if p.Name == "" {
			p.Name = fmt.Sprintf("m%d", i)
		}
		p.Start = start
		start += p.Pages
		if p.Pages <= 0 || p.Pages%p.Banks != 0 {
			return nil, fmt.Errorf("topo: module %d: %d pages not a positive multiple of %d banks",
				i, p.Pages, p.Banks)
		}
		out[i] = p
	}
	return out, nil
}

// ModuleFor routes a physical page to its module index in a resolved
// layout. The caller guarantees page is within the laid-out memory.
func ModuleFor(layout []Placement, page int) int {
	for i := len(layout) - 1; i > 0; i-- {
		if page >= layout[i].Start {
			return i
		}
	}
	return 0
}

// Canon renders the spec in a canonical single-line form, stable across
// JSON field ordering and whitespace — the topology component of
// runner.Key. The default topology canonicalizes to "default".
func (s *Spec) Canon() string {
	if s.IsDefault() {
		return "default"
	}
	var b strings.Builder
	b.WriteString("modules=[")
	for i, m := range s.Modules {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "{name=%q banks=%d pages=%d start=%d region=%d scheme=%q ecp=%d rd=%d set=%d rst=%d par=%d link=%d wl=%g bl=%g}",
			m.Name, m.Banks, m.Pages, m.Start, m.RegionPages, m.Scheme, m.ECPEntries,
			m.ReadCycles, m.SetCycles, m.ResetCycles, m.ParallelBits, m.LinkCycles,
			m.WordLineRate, m.BitLineRate)
	}
	b.WriteString("]")
	return b.String()
}

// ParseSpec decodes a topology spec from JSON, rejecting unknown fields so
// a typo fails loudly instead of silently meaning "default".
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("topo: parse spec: %w", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err == nil || extra != nil {
		return nil, fmt.Errorf("topo: parse spec: trailing data after spec")
	}
	return &s, nil
}

// Load reads and parses a topology spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("topo: %w", err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("topo: %s: %w", path, err)
	}
	return s, nil
}
