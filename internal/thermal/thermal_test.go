package thermal

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestTable1Calibration(t *testing.T) {
	// The model must reproduce Table 1 exactly at the calibration points.
	rows := Table1()
	if len(rows) != 2 {
		t.Fatalf("Table1 has %d rows, want 2", len(rows))
	}
	wl, bl := rows[0], rows[1]
	if wl.Axis != WordLine || bl.Axis != BitLine {
		t.Fatal("Table1 row order must be word-line, bit-line")
	}
	if !approx(wl.TempRiseC, 310, 0.01) {
		t.Errorf("word-line temp = %v, want 310", wl.TempRiseC)
	}
	if !approx(bl.TempRiseC, 320, 0.01) {
		t.Errorf("bit-line temp = %v, want 320", bl.TempRiseC)
	}
	if !approx(wl.ErrorRate, 0.099, 1e-4) {
		t.Errorf("word-line rate = %v, want 0.099", wl.ErrorRate)
	}
	if !approx(bl.ErrorRate, 0.115, 1e-4) {
		t.Errorf("bit-line rate = %v, want 0.115", bl.ErrorRate)
	}
}

func TestPrototypeGeometryIsWDFree(t *testing.T) {
	// 3F word-line / 4F bit-line pitch (prototype chip) must be WD-free.
	if r := ErrorRate(WordLine, 3, 20); r != 0 {
		t.Errorf("3F word-line pitch error rate = %v, want 0", r)
	}
	if r := ErrorRate(BitLine, 4, 20); r != 0 {
		t.Errorf("4F bit-line pitch error rate = %v, want 0", r)
	}
}

func TestDINGeometry(t *testing.T) {
	// DIN-enhanced: 2F along word-lines (WD present), 4F along bit-lines
	// (WD-free).
	if r := ErrorRate(WordLine, 2, 20); !approx(r, 0.099, 1e-4) {
		t.Errorf("DIN word-line rate = %v, want 0.099", r)
	}
	if r := ErrorRate(BitLine, 4, 20); r != 0 {
		t.Errorf("DIN bit-line rate = %v, want 0", r)
	}
}

func TestBitLineHotterThanWordLine(t *testing.T) {
	// The GST rail conducts heat better than oxide: at equal pitch the
	// bit-line neighbour is always hotter (§2.2.2).
	for pitch := 2; pitch <= 6; pitch++ {
		wl := NeighborTemperatureC(WordLine, pitch, 20)
		bl := NeighborTemperatureC(BitLine, pitch, 20)
		if bl <= wl {
			t.Errorf("pitch %dF: bit-line %v°C <= word-line %v°C", pitch, bl, wl)
		}
	}
}

func TestTemperatureMonotonicInPitch(t *testing.T) {
	for _, axis := range []Axis{WordLine, BitLine} {
		prev := math.Inf(1)
		for pitch := 2; pitch <= 8; pitch++ {
			cur := NeighborTemperatureC(axis, pitch, 20)
			if cur >= prev {
				t.Errorf("%v: temp not decreasing at pitch %dF (%v >= %v)",
					axis, pitch, cur, prev)
			}
			prev = cur
		}
	}
}

func TestTemperatureMonotonicInNode(t *testing.T) {
	// Scaling model: shrinking the feature size raises disturb temperature.
	for _, axis := range []Axis{WordLine, BitLine} {
		prev := 0.0
		for _, node := range []float64{54, 40, 28, 20, 16} {
			cur := NeighborTemperatureC(axis, 2, node)
			if cur <= prev {
				t.Errorf("%v: temp not increasing as node shrinks to %vnm", axis, node)
			}
			prev = cur
		}
	}
}

func TestWDEmergesWithScaling(t *testing.T) {
	// WD was first observed at 54nm and became significant at 20nm (§1):
	// at 54nm the model should give (near) zero rate, at 20nm ~10%.
	if r := ErrorRate(BitLine, 2, 54); r > 0.001 {
		t.Errorf("54nm bit-line rate = %v, want ~0", r)
	}
	if r := ErrorRate(BitLine, 2, 20); r < 0.10 {
		t.Errorf("20nm bit-line rate = %v, want >= 0.10", r)
	}
}

func TestDisturbProbabilityGated(t *testing.T) {
	if p := DisturbProbability(CrystallizeC - 0.001); p != 0 {
		t.Errorf("below crystallisation threshold p = %v, want 0", p)
	}
	if p := DisturbProbability(CrystallizeC); p <= 0 {
		t.Errorf("at threshold p = %v, want > 0", p)
	}
}

func TestDisturbProbabilityBounds(t *testing.T) {
	if err := quick.Check(func(raw uint16) bool {
		temp := float64(raw%1000) - 100 // [-100, 900)°C
		p := DisturbProbability(temp)
		return p >= 0 && p <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDisturbProbabilityMonotonic(t *testing.T) {
	prev := -1.0
	for temp := 300.0; temp <= 600; temp += 10 {
		p := DisturbProbability(temp)
		if p < prev {
			t.Errorf("p(%v) = %v < p(previous) = %v", temp, p, prev)
		}
		prev = p
	}
}

func TestSETDisturbanceNegligible(t *testing.T) {
	// SET neighbour temperature must stay below crystallisation even at
	// minimal pitch, so SET never disturbs (§2.2.1).
	for _, axis := range []Axis{WordLine, BitLine} {
		temp := SETNeighborTemperatureC(axis, 2, 20)
		if temp >= CrystallizeC {
			t.Errorf("%v SET neighbour temp %v°C >= crystallisation", axis, temp)
		}
		if p := DisturbProbability(temp); p != 0 {
			t.Errorf("%v SET disturb probability = %v, want 0", axis, p)
		}
	}
}

func TestRatesFor(t *testing.T) {
	// Super dense layout: both axes disturb.
	r := RatesFor(2, 2, 20)
	if !approx(r.WordLine, 0.099, 1e-4) || !approx(r.BitLine, 0.115, 1e-4) {
		t.Errorf("super dense rates = %+v", r)
	}
	// Prototype: WD-free both axes.
	r = RatesFor(3, 4, 20)
	if r.WordLine != 0 || r.BitLine != 0 {
		t.Errorf("prototype rates = %+v, want zero", r)
	}
}

func TestPitchClamp(t *testing.T) {
	// Pitches below 2F are physically impossible and clamp to 2F.
	if NeighborTemperatureC(BitLine, 1, 20) != NeighborTemperatureC(BitLine, 2, 20) {
		t.Error("pitch < 2F must clamp to 2F")
	}
}

func TestAxisString(t *testing.T) {
	if WordLine.String() != "word-line" || BitLine.String() != "bit-line" {
		t.Errorf("axis strings: %q, %q", WordLine.String(), BitLine.String())
	}
	if Axis(9).String() != "Axis(9)" {
		t.Errorf("unknown axis string: %q", Axis(9).String())
	}
}
