// Package thermal implements the write-disturbance thermal model of SD-PCM
// §2.2.2, composed of three parts mirroring the DIN model [10] it adopts:
//
//  1. a cell thermal model — the temperature elevation a RESET pulse induces
//     at a neighbouring cell, decaying exponentially with distance and
//     depending on the inter-cell medium (GST along a µTrench bit-line
//     conducts heat better than the oxide between bit-lines);
//  2. a cell scaling model — distances are expressed as pitch (in feature
//     sizes) times the technology node, so shrinking F raises neighbour
//     temperatures;
//  3. a disturbance model — an Arrhenius-style crystallisation probability
//     for an idle amorphous cell held at the disturb temperature for the
//     duration of the pulse, gated by the crystallisation threshold.
//
// The two free parameters of each stage are solved, at package init, from
// the paper's published calibration points (Table 1): at 20 nm and 2F pitch
// the word-line neighbour reaches 310 °C and flips with 9.9 % probability,
// the bit-line neighbour 320 °C and 11.5 %. The prototype chip's enlarged
// pitches (3F word-line, 4F bit-line) must come out WD-free, which they do:
// both fall far below the 300 °C crystallisation threshold.
package thermal

import (
	"fmt"
	"math"
)

// Physical constants of the model (°C unless noted).
const (
	// AmbientC is the die ambient temperature.
	AmbientC = 27.0
	// MeltC is the GST melting point; RESET heats the programmed cell above it.
	MeltC = 600.0
	// CrystallizeC is the crystallisation threshold; an idle amorphous cell
	// below this temperature cannot be disturbed (§2.2.1).
	CrystallizeC = 300.0
	// ResetPeakC is the peak temperature of the programmed cell during RESET.
	ResetPeakC = 630.0
	// SETTemperatureScale: SET current is about half of RESET current, so the
	// temperature increase during SET is four times lower (§2.2.1 [26]);
	// SET disturbance is therefore negligible and the model reports zero.
	SETTemperatureScale = 0.25
)

// Axis identifies the direction of a neighbour relative to the written cell.
type Axis int

const (
	// WordLine neighbours sit on the same word-line (adjacent bit-lines,
	// separated by oxide).
	WordLine Axis = iota
	// BitLine neighbours sit on the same µTrench GST rail (adjacent
	// word-lines, same bit-line).
	BitLine
)

// String implements fmt.Stringer.
func (a Axis) String() string {
	switch a {
	case WordLine:
		return "word-line"
	case BitLine:
		return "bit-line"
	default:
		return fmt.Sprintf("Axis(%d)", int(a))
	}
}

// Calibration points from Table 1 at the reference node (20 nm, 2F pitch).
const (
	refNodeNM        = 20.0
	refPitchF        = 2
	wordLineRefTempC = 310.0
	bitLineRefTempC  = 320.0
	wordLineRefRate  = 0.099
	bitLineRefRate   = 0.115
)

// decay lengths (nm) of the exponential lateral temperature profile, one per
// medium, solved from the reference temperatures at init.
var lambdaNM [2]float64

// Arrhenius parameters of the crystallisation probability
// p(T) = 1 - exp(-arrA * exp(-arrB/T_kelvin)), solved from the two
// reference (temperature, rate) points at init.
var arrA, arrB float64

func init() {
	rise := ResetPeakC - AmbientC
	d := refPitchF * refNodeNM
	lambdaNM[WordLine] = d / math.Log(rise/(wordLineRefTempC-AmbientC))
	lambdaNM[BitLine] = d / math.Log(rise/(bitLineRefTempC-AmbientC))

	// Solve A, B from the two (T, p) calibration points.
	t1 := wordLineRefTempC + 273.15
	t2 := bitLineRefTempC + 273.15
	h1 := -math.Log(1 - wordLineRefRate)
	h2 := -math.Log(1 - bitLineRefRate)
	arrB = math.Log(h2/h1) / (1/t1 - 1/t2)
	arrA = h1 * math.Exp(arrB/t1)
}

// NeighborTemperatureC returns the steady temperature (°C) reached by the
// neighbouring cell along the given axis during a RESET of a cell at
// pitchF*featureNM centre-to-centre distance.
func NeighborTemperatureC(axis Axis, pitchF int, featureNM float64) float64 {
	if pitchF < 2 {
		pitchF = 2 // cells cannot overlap; clamp to minimal pitch
	}
	d := float64(pitchF) * featureNM
	return AmbientC + (ResetPeakC-AmbientC)*math.Exp(-d/lambdaNM[axis])
}

// SETNeighborTemperatureC returns the neighbour temperature during a SET
// pulse; the elevation is SETTemperatureScale of the RESET elevation.
func SETNeighborTemperatureC(axis Axis, pitchF int, featureNM float64) float64 {
	t := NeighborTemperatureC(axis, pitchF, featureNM)
	return AmbientC + (t-AmbientC)*SETTemperatureScale
}

// DisturbProbability returns the probability that an idle amorphous cell at
// temperature tempC (°C) for the duration of one RESET pulse loses its bit.
// Below the crystallisation threshold the probability is exactly zero.
func DisturbProbability(tempC float64) float64 {
	if tempC < CrystallizeC {
		return 0
	}
	tK := tempC + 273.15
	return 1 - math.Exp(-arrA*math.Exp(-arrB/tK))
}

// ErrorRate returns the per-vulnerable-cell disturbance probability for a
// RESET at the given geometry: the composition of the thermal and
// disturbance models.
func ErrorRate(axis Axis, pitchF int, featureNM float64) float64 {
	return DisturbProbability(NeighborTemperatureC(axis, pitchF, featureNM))
}

// Rates bundles the two per-axis disturbance probabilities a cell array
// geometry induces; this is what the rest of the simulator consumes.
type Rates struct {
	WordLine float64 // probability an idle '0' word-line neighbour flips per RESET
	BitLine  float64 // probability an idle '0' bit-line neighbour flips per RESET
}

// RatesFor returns the disturbance rates for a layout described by its two
// pitches at the given technology node.
func RatesFor(wordLinePitchF, bitLinePitchF int, featureNM float64) Rates {
	return Rates{
		WordLine: ErrorRate(WordLine, wordLinePitchF, featureNM),
		BitLine:  ErrorRate(BitLine, bitLinePitchF, featureNM),
	}
}

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Axis      Axis
	TempRiseC float64 // neighbour temperature during RESET, °C
	ErrorRate float64 // SLC disturbance probability
}

// Table1 regenerates the paper's Table 1 (4F² cells at 20 nm).
func Table1() []Table1Row {
	rows := make([]Table1Row, 0, 2)
	for _, axis := range []Axis{WordLine, BitLine} {
		t := NeighborTemperatureC(axis, refPitchF, refNodeNM)
		rows = append(rows, Table1Row{Axis: axis, TempRiseC: t, ErrorRate: DisturbProbability(t)})
	}
	return rows
}
