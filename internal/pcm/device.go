package pcm

import "fmt"

// Timing holds the PCM access latencies of Table 2, in CPU cycles (4 GHz:
// 100 ns read = 400 cycles, 200 ns SET = 800 cycles, 100 ns RESET = 400).
type Timing struct {
	ReadCycles   int
	ResetCycles  int
	SetCycles    int
	ParallelBits int // write-driver width (128 in Table 2)
}

// DefaultTiming is the Table 2 configuration.
var DefaultTiming = Timing{
	ReadCycles:   400,
	ResetCycles:  400,
	SetCycles:    800,
	ParallelBits: ParallelWriteBits,
}

// WriteCycles returns the bank-occupancy time of programming the given
// number of RESET and SET cells. The write drivers program ParallelBits
// cells per round with per-cell pulse shaping (Table 2: "128-bit parallel
// write"), so a round mixing both pulse classes lasts as long as its
// longest pulse — the 200 ns SET. RESET-only rounds finish in 100 ns. A
// write that changes nothing still occupies the bank for one RESET slot
// (row activation and drive setup).
func (t Timing) WriteCycles(nReset, nSet int) int {
	total := nReset + nSet
	if total == 0 {
		return t.ResetCycles
	}
	rounds := (total + t.ParallelBits - 1) / t.ParallelBits
	if nSet > 0 {
		return rounds * t.SetCycles
	}
	return rounds * t.ResetCycles
}

// WriteKind classifies device writes for wear accounting.
type WriteKind int

const (
	// NormalWrite is a demand write from the memory controller.
	NormalWrite WriteKind = iota
	// CorrectionWrite rewrites a neighbour line to clear WD errors (§4.2).
	CorrectionWrite
)

// Stats aggregates device activity; all counters are cumulative.
type Stats struct {
	Reads  uint64 // line reads (demand + verification + pre-reads)
	Writes uint64 // line write operations

	ResetPulses uint64 // total cells driven by RESET across all writes
	SetPulses   uint64 // total cells driven by SET across all writes

	CorrectionWrites      uint64 // writes with kind CorrectionWrite
	CorrectionResetPulses uint64 // RESET pulses spent on corrections

	DisturbedBits uint64 // cells flipped by write disturbance
}

// CellWrites returns the total number of programmed cells (wear proxy).
func (s Stats) CellWrites() uint64 { return s.ResetPulses + s.SetPulses }

// Device is one PCM DIMM's worth of data cell arrays. Storage is sparse:
// lines never written hold a deterministic background pattern derived from
// the fill seed, so disturbance vulnerability of untouched neighbours is
// modelled without materialising the full capacity.
//
// Device is purely functional/data-level; command timing and scheduling live
// in the memory controller (internal/mc).
type Device struct {
	RowsPerBank int
	Timing      Timing
	Stats       Stats

	data     map[LineAddr]Line
	fillSeed uint64
	zeroFill bool
}

// Config parameterises a Device.
type Config struct {
	// Pages is the number of physical pages the device exposes. It must be
	// a positive multiple of NumBanks so every bank has the same row count.
	Pages int
	// Timing defaults to DefaultTiming when zero.
	Timing Timing
	// FillSeed drives the deterministic background content of untouched
	// lines. Ignored when ZeroFill is set.
	FillSeed uint64
	// ZeroFill makes untouched lines all-zero (fully amorphous) instead of
	// pseudo-random. Useful for tests needing exact vulnerability control.
	ZeroFill bool
}

// NewDevice builds a device with cfg.Pages pages.
func NewDevice(cfg Config) (*Device, error) {
	if cfg.Pages <= 0 || cfg.Pages%NumBanks != 0 {
		return nil, fmt.Errorf("pcm: Pages must be a positive multiple of %d, got %d", NumBanks, cfg.Pages)
	}
	t := cfg.Timing
	if t == (Timing{}) {
		t = DefaultTiming
	}
	if t.ParallelBits <= 0 {
		return nil, fmt.Errorf("pcm: ParallelBits must be positive, got %d", t.ParallelBits)
	}
	return &Device{
		RowsPerBank: cfg.Pages / NumBanks,
		Timing:      t,
		data:        make(map[LineAddr]Line),
		fillSeed:    cfg.FillSeed,
		zeroFill:    cfg.ZeroFill,
	}, nil
}

// Pages returns the number of pages the device exposes.
func (d *Device) Pages() int { return d.RowsPerBank * NumBanks }

// Lines returns the number of lines the device exposes.
func (d *Device) Lines() int { return d.Pages() * LinesPerPage }

// contains reports whether the address is within the device.
func (d *Device) contains(a LineAddr) bool { return int(a) < d.Lines() }

// background returns the deterministic initial content of a line.
func (d *Device) background(a LineAddr) Line {
	var l Line
	if d.zeroFill {
		return l
	}
	state := d.fillSeed ^ (uint64(a)+1)*0x9e3779b97f4a7c15
	for i := range l {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		l[i] = z ^ (z >> 31)
	}
	return l
}

// Peek returns the current content of a line without touching statistics.
// It panics on out-of-range addresses: callers are inside the simulator and
// an out-of-range access is a bug, not an input error.
func (d *Device) Peek(a LineAddr) Line {
	if !d.contains(a) {
		panic(fmt.Sprintf("pcm: line %d out of range (%d lines)", a, d.Lines()))
	}
	if l, ok := d.data[a]; ok {
		return l
	}
	return d.background(a)
}

// Read returns a line's content and counts one array read. Timing is the
// caller's concern (Timing.ReadCycles).
func (d *Device) Read(a LineAddr) Line {
	d.Stats.Reads++
	return d.Peek(a)
}

// WriteResult describes the device-level effect of one line write.
type WriteResult struct {
	Reset  Mask // cells driven 1→0
	Set    Mask // cells driven 0→1
	Cycles int  // bank occupancy of the programming operation
}

// Write programs a line to new content using differential write and returns
// the pulse maps and bank occupancy. kind attributes the wear.
func (d *Device) Write(a LineAddr, new Line, kind WriteKind) WriteResult {
	old := d.Peek(a)
	reset, set := DiffMasks(old, new)
	d.data[a] = new
	nr, ns := reset.PopCount(), set.PopCount()
	d.Stats.Writes++
	d.Stats.ResetPulses += uint64(nr)
	d.Stats.SetPulses += uint64(ns)
	if kind == CorrectionWrite {
		d.Stats.CorrectionWrites++
		d.Stats.CorrectionResetPulses += uint64(nr)
	}
	return WriteResult{Reset: reset, Set: set, Cycles: d.Timing.WriteCycles(nr, ns)}
}

// Disturb crystallises the given cells of a line in place (0→1 flips caused
// by neighbouring RESET heat). Bits of the mask that are already 1 are
// ignored; the count of actually flipped cells is returned. Disturbance is
// not a programmed pulse and adds no wear.
func (d *Device) Disturb(a LineAddr, flips Mask) int {
	old := d.Peek(a)
	var newLine Line
	n := 0
	for i := range old {
		flipped := flips[i] &^ old[i]
		newLine[i] = old[i] | flipped
		n += popcount64(flipped)
	}
	if n > 0 {
		d.data[a] = newLine
		d.Stats.DisturbedBits += uint64(n)
	}
	return n
}

func popcount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
