package pcm

import (
	"fmt"
	"math/bits"
)

// Timing holds the PCM access latencies of Table 2, in CPU cycles (4 GHz:
// 100 ns read = 400 cycles, 200 ns SET = 800 cycles, 100 ns RESET = 400).
type Timing struct {
	ReadCycles   int
	ResetCycles  int
	SetCycles    int
	ParallelBits int // write-driver width (128 in Table 2)
}

// DefaultTiming is the Table 2 configuration.
var DefaultTiming = Timing{
	ReadCycles:   400,
	ResetCycles:  400,
	SetCycles:    800,
	ParallelBits: ParallelWriteBits,
}

// WriteCycles returns the bank-occupancy time of programming the given
// number of RESET and SET cells. The write drivers program ParallelBits
// cells per round with per-cell pulse shaping (Table 2: "128-bit parallel
// write"), so a round mixing both pulse classes lasts as long as its
// longest pulse — the 200 ns SET. RESET-only rounds finish in 100 ns. A
// write that changes nothing still occupies the bank for one RESET slot
// (row activation and drive setup).
func (t Timing) WriteCycles(nReset, nSet int) int {
	total := nReset + nSet
	if total == 0 {
		return t.ResetCycles
	}
	rounds := (total + t.ParallelBits - 1) / t.ParallelBits
	if nSet > 0 {
		return rounds * t.SetCycles
	}
	return rounds * t.ResetCycles
}

// WriteKind classifies device writes for wear accounting.
type WriteKind int

const (
	// NormalWrite is a demand write from the memory controller.
	NormalWrite WriteKind = iota
	// CorrectionWrite rewrites a neighbour line to clear WD errors (§4.2).
	CorrectionWrite
)

// Stats aggregates device activity; all counters are cumulative.
type Stats struct {
	Reads  uint64 // line reads (demand + verification + pre-reads)
	Writes uint64 // line write operations

	ResetPulses uint64 // total cells driven by RESET across all writes
	SetPulses   uint64 // total cells driven by SET across all writes

	CorrectionWrites      uint64 // writes with kind CorrectionWrite
	CorrectionResetPulses uint64 // RESET pulses spent on corrections

	DisturbedBits uint64 // cells flipped by write disturbance
}

// CellWrites returns the total number of programmed cells (wear proxy).
func (s Stats) CellWrites() uint64 { return s.ResetPulses + s.SetPulses }

// Add accumulates another Stats value; all fields are additive, so folding
// per-bank shards in bank order is equivalent to a single global counter.
func (s *Stats) Add(o Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.ResetPulses += o.ResetPulses
	s.SetPulses += o.SetPulses
	s.CorrectionWrites += o.CorrectionWrites
	s.CorrectionResetPulses += o.CorrectionResetPulses
	s.DisturbedBits += o.DisturbedBits
}

// bankStats pads one bank's counters to a full cache line so shard
// goroutines updating different banks never contend on a shared line.
type bankStats struct {
	Stats
	_ [64 - (8*7)%64]byte
}

// chunkLines is the number of lines in one lazily materialized storage
// chunk. 16 lines (1 KB of cell data) balances dense-access locality
// against the zeroing cost of materializing a chunk for workloads that
// touch rows sparsely; profiles of sim.Run showed 64-line chunks spending
// more on memclr than the indexed access path saved.
const (
	chunkLines = 16
	chunkShift = 4
	chunkMask  = chunkLines - 1
)

// lineChunk is one dense block of bank-local line storage. Lines are filled
// with their background pattern on first touch, tracked per line in the
// resident bitmap — materializing a chunk is a single zeroed allocation, so
// sparse access patterns never pay for background content they don't read.
type lineChunk struct {
	// resident bit i set: lines[i] holds device content. Clear: the line is
	// still untouched and reads as its background pattern.
	resident uint64
	lines    [chunkLines]Line
}

// Device is one PCM DIMM's worth of data cell arrays. Storage is a per-bank
// two-level dense store: each bank owns a table of fixed-size line chunks,
// materialized (and filled with the deterministic background pattern) on
// first write or disturbance. Untouched chunks stay nil — Peek computes the
// background lazily — so disturbance vulnerability of untouched neighbours
// is modelled without materialising the full capacity, while every access to
// touched storage is plain array indexing with zero allocation.
//
// Bank-local layout: line a lives in bank Locate(a).Bank at local index
// row*LinesPerPage+slot, so physically adjacent rows (the bit-line WD
// victims, rows r±1) are LinesPerPage local lines apart and land in the
// same or a neighbouring chunk.
//
// Device is purely functional/data-level; command timing and scheduling live
// in the memory controller (internal/mc).
type Device struct {
	RowsPerBank int
	Timing      Timing

	geo Geometry

	// stats is sharded per bank (cache-line padded) so controllers driving
	// disjoint banks from different goroutines can count without contention;
	// Stats() folds the shards.
	stats []bankStats

	banks        [][]*lineChunk
	slabs        [][]lineChunk // per-bank bulk-zeroed arenas chunks are handed out from
	linesPerBank int
	numLines     int // cached Lines(): the bound checkRange tests per access
	fillSeed     uint64
	zeroFill     bool
}

// Config parameterises a Device.
type Config struct {
	// Pages is the number of physical pages the device exposes. It must be
	// a positive multiple of the bank count so every bank has the same row
	// count.
	Pages int
	// Banks is the module's bank count, a power of two (0 = NumBanks, the
	// Figure 6 DIMM).
	Banks int
	// Timing defaults to DefaultTiming when zero.
	Timing Timing
	// FillSeed drives the deterministic background content of untouched
	// lines. Ignored when ZeroFill is set.
	FillSeed uint64
	// ZeroFill makes untouched lines all-zero (fully amorphous) instead of
	// pseudo-random. Useful for tests needing exact vulnerability control.
	ZeroFill bool
}

// NewDevice builds a device with cfg.Pages pages.
func NewDevice(cfg Config) (*Device, error) {
	nbanks := cfg.Banks
	if nbanks == 0 {
		nbanks = NumBanks
	}
	geo, err := NewGeometry(nbanks)
	if err != nil {
		return nil, err
	}
	if cfg.Pages <= 0 || cfg.Pages%nbanks != 0 {
		return nil, fmt.Errorf("pcm: Pages must be a positive multiple of %d, got %d", nbanks, cfg.Pages)
	}
	t := cfg.Timing
	if t == (Timing{}) {
		t = DefaultTiming
	}
	if t.ParallelBits <= 0 {
		return nil, fmt.Errorf("pcm: ParallelBits must be positive, got %d", t.ParallelBits)
	}
	d := &Device{
		RowsPerBank: cfg.Pages / nbanks,
		Timing:      t,
		geo:         geo,
		stats:       make([]bankStats, nbanks),
		banks:       make([][]*lineChunk, nbanks),
		slabs:       make([][]lineChunk, nbanks),
		fillSeed:    cfg.FillSeed,
		zeroFill:    cfg.ZeroFill,
	}
	d.linesPerBank = d.RowsPerBank * LinesPerPage
	d.numLines = d.linesPerBank * nbanks
	chunksPerBank := (d.linesPerBank + chunkLines - 1) / chunkLines
	for b := range d.banks {
		d.banks[b] = make([]*lineChunk, chunksPerBank)
	}
	return d, nil
}

// Banks returns the device's bank count.
func (d *Device) Banks() int { return d.geo.banks }

// Geometry returns the device's bank layout.
func (d *Device) Geometry() Geometry { return d.geo }

// Stats folds the per-bank counter shards into one aggregate view. It is
// only meaningful when no bank is concurrently active (e.g. after a run, or
// between conservative-window barriers).
func (d *Device) Stats() Stats {
	var s Stats
	for b := range d.stats {
		s.Add(d.stats[b].Stats)
	}
	return s
}

// BankStats returns one bank's counters (same quiescence caveat as Stats).
func (d *Device) BankStats(bank int) Stats { return d.stats[bank].Stats }

// CountRead attributes one array read to the line's bank without performing
// it — the controller's read-combining paths serve data from queue state but
// still occupy the array (verification, cascade and pre-reads).
func (d *Device) CountRead(a LineAddr) {
	bank, _ := d.geo.bankLocal(a)
	d.stats[bank].Reads++
}

// Pages returns the number of pages the device exposes.
func (d *Device) Pages() int { return d.RowsPerBank * d.geo.banks }

// Lines returns the number of lines the device exposes.
func (d *Device) Lines() int { return d.numLines }

// contains reports whether the address is within the device.
func (d *Device) contains(a LineAddr) bool { return uint64(a) < uint64(d.numLines) }

// background returns the deterministic initial content of a line.
func (d *Device) background(a LineAddr) Line {
	var l Line
	if d.zeroFill {
		return l
	}
	state := d.fillSeed ^ (uint64(a)+1)*0x9e3779b97f4a7c15
	for i := range l {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		l[i] = z ^ (z >> 31)
	}
	return l
}

// checkRange panics on out-of-range addresses: callers are inside the
// simulator and an out-of-range access is a bug, not an input error.
func (d *Device) checkRange(a LineAddr) {
	if !d.contains(a) {
		panic(fmt.Sprintf("pcm: line %d out of range (%d lines)", a, d.Lines()))
	}
}

// slabChunks is how many chunks one arena slab holds. Chunks live for the
// device's lifetime, so handing them out of a bulk-zeroed slab replaces one
// 4 KB allocator round trip per chunk with one per slabChunks chunks.
const slabChunks = 32

// materializeChunk installs a fresh zeroed chunk for the given bank-local
// chunk index and returns it.
func (d *Device) materializeChunk(bank, ci int) *lineChunk {
	if len(d.slabs[bank]) == 0 {
		d.slabs[bank] = make([]lineChunk, slabChunks)
	}
	ch := &d.slabs[bank][0]
	d.slabs[bank] = d.slabs[bank][1:]
	d.banks[bank][ci] = ch
	return ch
}

// line returns a pointer to the stored image of a line, materializing its
// chunk and its background content on first touch.
func (d *Device) line(a LineAddr) *Line {
	bank, local := d.geo.bankLocal(a)
	ch := d.banks[bank][local>>chunkShift]
	if ch == nil {
		ch = d.materializeChunk(bank, local>>chunkShift)
	}
	idx := local & chunkMask
	l := &ch.lines[idx]
	if ch.resident&(1<<idx) == 0 {
		ch.resident |= 1 << idx
		if !d.zeroFill {
			*l = d.background(a)
		}
	}
	return l
}

// Peek returns the current content of a line without touching statistics.
// It panics on out-of-range addresses. Peeking an untouched line computes
// the background pattern without materialising storage, so read-mostly
// scans stay cheap on memory.
func (d *Device) Peek(a LineAddr) Line {
	d.checkRange(a)
	bank, local := d.geo.bankLocal(a)
	if ch := d.banks[bank][local>>chunkShift]; ch != nil {
		if idx := local & chunkMask; ch.resident&(1<<idx) != 0 {
			return ch.lines[idx]
		}
	}
	return d.background(a)
}

// Read returns a line's content and counts one array read. Timing is the
// caller's concern (Timing.ReadCycles).
func (d *Device) Read(a LineAddr) Line {
	d.CountRead(a)
	return d.Peek(a)
}

// WriteResult describes the device-level effect of one line write.
type WriteResult struct {
	Reset  Mask // cells driven 1→0
	Set    Mask // cells driven 0→1
	Cycles int  // bank occupancy of the programming operation
}

// Write programs a line to new content using differential write and returns
// the pulse maps and bank occupancy. kind attributes the wear.
func (d *Device) Write(a LineAddr, new Line, kind WriteKind) WriteResult {
	d.checkRange(a)
	bank, _ := d.geo.bankLocal(a)
	l := d.line(a)
	// Fused differential write: one pass computes both pulse maps, their
	// popcounts and the stored update (DiffMasks + 2×PopCount + copy would
	// walk the line four times).
	var reset, set Mask
	nr, ns := 0, 0
	for i := range l {
		r := l[i] &^ new[i]
		s := new[i] &^ l[i]
		reset[i], set[i] = r, s
		nr += bits.OnesCount64(r)
		ns += bits.OnesCount64(s)
		l[i] = new[i]
	}
	st := &d.stats[bank].Stats
	st.Writes++
	st.ResetPulses += uint64(nr)
	st.SetPulses += uint64(ns)
	if kind == CorrectionWrite {
		st.CorrectionWrites++
		st.CorrectionResetPulses += uint64(nr)
	}
	return WriteResult{Reset: reset, Set: set, Cycles: d.Timing.WriteCycles(nr, ns)}
}

// Disturb crystallises the given cells of a line in place (0→1 flips caused
// by neighbouring RESET heat). Bits of the mask that are already 1 are
// ignored; the count of actually flipped cells is returned. Disturbance is
// not a programmed pulse and adds no wear. The stored line is mutated in
// place; a disturbance that flips nothing leaves untouched chunks
// unmaterialized.
func (d *Device) Disturb(a LineAddr, flips Mask) int {
	d.checkRange(a)
	bank, local := d.geo.bankLocal(a)
	ch := d.banks[bank][local>>chunkShift]
	idx := local & chunkMask
	n := 0
	if ch != nil && ch.resident&(1<<idx) != 0 {
		l := &ch.lines[idx]
		for i := range flips {
			n += bits.OnesCount64(flips[i] &^ l[i])
		}
		if n > 0 {
			for i := range flips {
				l[i] |= flips[i]
			}
		}
	} else {
		bg := d.background(a)
		for i := range flips {
			n += bits.OnesCount64(flips[i] &^ bg[i])
		}
		if n > 0 {
			// Materialize directly from the background image already in hand
			// rather than through line(), which would recompute it.
			if ch == nil {
				ch = d.materializeChunk(bank, local>>chunkShift)
			}
			ch.resident |= 1 << idx
			l := &ch.lines[idx]
			for i := range flips {
				l[i] = bg[i] | flips[i]
			}
		}
	}
	if n > 0 {
		d.stats[bank].DisturbedBits += uint64(n)
	}
	return n
}
