package pcm

import (
	"testing"
	"testing/quick"
)

func newTestDevice(t *testing.T, pages int, zero bool) *Device {
	t.Helper()
	d, err := NewDevice(Config{Pages: pages, FillSeed: 1, ZeroFill: zero})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDeviceValidation(t *testing.T) {
	if _, err := NewDevice(Config{Pages: 0}); err == nil {
		t.Error("zero pages must be rejected")
	}
	if _, err := NewDevice(Config{Pages: 17}); err == nil {
		t.Error("pages not multiple of NumBanks must be rejected")
	}
	if _, err := NewDevice(Config{Pages: 16, Timing: Timing{ReadCycles: 1, ResetCycles: 1, SetCycles: 1}}); err == nil {
		t.Error("zero ParallelBits must be rejected")
	}
	d, err := NewDevice(Config{Pages: 32})
	if err != nil {
		t.Fatal(err)
	}
	if d.Pages() != 32 || d.RowsPerBank != 2 || d.Lines() != 32*LinesPerPage {
		t.Errorf("device sizing wrong: %d pages, %d rows, %d lines",
			d.Pages(), d.RowsPerBank, d.Lines())
	}
	if d.Timing != DefaultTiming {
		t.Error("zero Timing must default to DefaultTiming")
	}
}

func TestBackgroundDeterministic(t *testing.T) {
	d1 := newTestDevice(t, 16, false)
	d2 := newTestDevice(t, 16, false)
	for a := LineAddr(0); a < 100; a++ {
		if d1.Peek(a) != d2.Peek(a) {
			t.Fatalf("background content differs at %d", a)
		}
	}
	// Different seeds give different content.
	d3, _ := NewDevice(Config{Pages: 16, FillSeed: 2})
	diff := 0
	for a := LineAddr(0); a < 100; a++ {
		if d1.Peek(a) != d3.Peek(a) {
			diff++
		}
	}
	if diff < 99 {
		t.Fatalf("different seeds shared %d of 100 lines", 100-diff)
	}
}

func TestBackgroundBitBalance(t *testing.T) {
	// Random fill should be roughly half ones so ~half the cells are
	// WD-vulnerable, as with arbitrary resident data.
	d := newTestDevice(t, 16, false)
	ones := 0
	const lines = 200
	for a := LineAddr(0); a < lines; a++ {
		l := d.Peek(a)
		ones += l.PopCount()
	}
	total := lines * LineBits
	frac := float64(ones) / float64(total)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("background one-density = %v, want ~0.5", frac)
	}
}

func TestZeroFill(t *testing.T) {
	d := newTestDevice(t, 16, true)
	if d.Peek(0) != (Line{}) {
		t.Fatal("zero-fill device must start all-amorphous")
	}
}

func TestWriteThenRead(t *testing.T) {
	d := newTestDevice(t, 16, true)
	var l Line
	l[0] = 0xdeadbeef
	l[7] = 1 << 63
	d.Write(5, l, NormalWrite)
	if got := d.Read(5); got != l {
		t.Fatalf("read back %v, want %v", got, l)
	}
	if d.Stats().Reads != 1 || d.Stats().Writes != 1 {
		t.Fatalf("stats = %+v", d.Stats())
	}
}

func TestWritePulseAccounting(t *testing.T) {
	d := newTestDevice(t, 16, true)
	var l Line
	l[0] = 0xff // 8 SET pulses from all-zero
	res := d.Write(9, l, NormalWrite)
	if res.Set.PopCount() != 8 || res.Reset.PopCount() != 0 {
		t.Fatalf("pulse maps: set=%d reset=%d", res.Set.PopCount(), res.Reset.PopCount())
	}
	if d.Stats().SetPulses != 8 || d.Stats().ResetPulses != 0 {
		t.Fatalf("stats = %+v", d.Stats())
	}
	// Now clear 3 of them: 3 RESET pulses.
	l[0] = 0x1f
	res = d.Write(9, l, NormalWrite)
	if res.Reset.PopCount() != 3 || res.Set.PopCount() != 0 {
		t.Fatalf("second write pulses: %+v", res)
	}
	if res.Cycles != DefaultTiming.ResetCycles {
		t.Fatalf("reset-only write cycles = %d", res.Cycles)
	}
}

func TestDifferentialWriteSkipsUnchanged(t *testing.T) {
	if err := quick.Check(func(o, n [8]uint64) bool {
		d, err := NewDevice(Config{Pages: 16, ZeroFill: true})
		if err != nil {
			return false
		}
		d.Write(3, Line(o), NormalWrite)
		before := d.Stats().CellWrites()
		res := d.Write(3, Line(n), NormalWrite)
		pulses := d.Stats().CellWrites() - before
		// Pulses must equal the Hamming distance, never the full line.
		return int(pulses) == Line(o).Xor(Line(n)).PopCount() &&
			res.Reset.PopCount()+res.Set.PopCount() == int(pulses)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrectionWearAttribution(t *testing.T) {
	d := newTestDevice(t, 16, true)
	var l Line
	l[0] = 0xf
	d.Write(1, l, NormalWrite)
	d.Write(1, Line{}, CorrectionWrite) // clears 4 bits via RESET
	if d.Stats().CorrectionWrites != 1 {
		t.Fatalf("correction writes = %d", d.Stats().CorrectionWrites)
	}
	if d.Stats().CorrectionResetPulses != 4 {
		t.Fatalf("correction reset pulses = %d", d.Stats().CorrectionResetPulses)
	}
}

func TestDisturb(t *testing.T) {
	d := newTestDevice(t, 16, true)
	var flips Mask
	flips.SetBit(0)
	flips.SetBit(100)
	n := d.Disturb(7, flips)
	if n != 2 {
		t.Fatalf("disturbed %d cells, want 2", n)
	}
	got := d.Peek(7)
	if got.Bit(0) != 1 || got.Bit(100) != 1 {
		t.Fatal("disturbed bits must crystallise to 1")
	}
	// Disturbing already-crystalline cells is a no-op.
	if n := d.Disturb(7, flips); n != 0 {
		t.Fatalf("re-disturb flipped %d cells, want 0", n)
	}
	if d.Stats().DisturbedBits != 2 {
		t.Fatalf("DisturbedBits = %d", d.Stats().DisturbedBits)
	}
	// Disturbance adds no wear.
	if d.Stats().ResetPulses != 0 || d.Stats().SetPulses != 0 {
		t.Fatal("disturbance must not count as programmed pulses")
	}
}

func TestPeekOutOfRangePanics(t *testing.T) {
	d := newTestDevice(t, 16, true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Peek")
		}
	}()
	d.Peek(LineAddr(d.Lines()))
}

func TestWriteOutOfRangePanics(t *testing.T) {
	d := newTestDevice(t, 16, true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Write")
		}
	}()
	d.Write(LineAddr(d.Lines()), Line{}, NormalWrite)
}

func TestDisturbOutOfRangePanics(t *testing.T) {
	d := newTestDevice(t, 16, true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Disturb")
		}
	}()
	d.Disturb(LineAddr(d.Lines()), Mask{})
}

// TestMaterializedChunkMatchesBackground pins the dense store's key
// invariant: materializing a chunk (triggered by the first write anywhere in
// it) reproduces exactly the background pattern a lazy Peek would have
// computed, for every other line of the chunk. An untouched reference
// device is the oracle.
func TestMaterializedChunkMatchesBackground(t *testing.T) {
	const pages = 64
	dirty, err := NewDevice(Config{Pages: pages, FillSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewDevice(Config{Pages: pages, FillSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// One write materializes the chunk holding line 100 and its bank
	// neighbours.
	dirty.Write(100, Line{0xabc}, NormalWrite)
	for a := LineAddr(0); a < LineAddr(dirty.Lines()); a++ {
		if a == 100 {
			continue
		}
		if dirty.Peek(a) != fresh.Peek(a) {
			t.Fatalf("line %d diverged from background after unrelated write", a)
		}
	}
	if dirty.Peek(100) != (Line{0xabc}) {
		t.Fatal("written line lost its content")
	}
}

// TestDisturbDoesNotMaterializeOnNoop: a disturbance that flips nothing must
// leave untouched chunks unmaterialized (Peek still serves the background),
// and an effective one must land in dense storage.
func TestDisturbDoesNotMaterializeOnNoop(t *testing.T) {
	d := newTestDevice(t, 16, false)
	a := LineAddr(5)
	bg := d.Peek(a)
	// Flip mask fully covered by already-crystalline background bits.
	var noop Mask
	for i := 0; i < LineBits; i++ {
		if bg.Bit(i) == 1 {
			noop.SetBit(i)
			break
		}
	}
	if n := d.Disturb(a, noop); n != 0 {
		t.Fatalf("no-op disturb flipped %d cells", n)
	}
	if d.banks[0] == nil {
		t.Fatal("bank table missing")
	}
	bank, local := d.geo.bankLocal(a)
	if d.banks[bank][local>>chunkShift] != nil {
		t.Fatal("no-op disturb materialized a chunk")
	}
	// Now flip an amorphous cell: the chunk materializes and holds bg|flip.
	var eff Mask
	for i := 0; i < LineBits; i++ {
		if bg.Bit(i) == 0 {
			eff.SetBit(i)
			break
		}
	}
	if n := d.Disturb(a, eff); n != 1 {
		t.Fatalf("effective disturb flipped %d cells, want 1", n)
	}
	if d.banks[bank][local>>chunkShift] == nil {
		t.Fatal("effective disturb did not materialize the chunk")
	}
}

// TestDeviceHotPathAllocFree pins the zero-allocation contract of the data
// plane: once a chunk is materialized, Peek, Write and Disturb never touch
// the heap.
func TestDeviceHotPathAllocFree(t *testing.T) {
	d := newTestDevice(t, 64, false)
	addrs := []LineAddr{0, 100, 1000, LineAddr(d.Lines() - 1)}
	for _, a := range addrs {
		d.Write(a, Line{1, 2, 3}, NormalWrite) // materialize
	}
	var flips Mask
	flips.SetBit(7)
	flips.SetBit(400)
	var sink Line
	if n := testing.AllocsPerRun(200, func() {
		for _, a := range addrs {
			sink = d.Peek(a)
		}
	}); n != 0 {
		t.Errorf("Peek allocates %v/run", n)
	}
	i := uint64(0)
	if n := testing.AllocsPerRun(200, func() {
		for _, a := range addrs {
			i++
			d.Write(a, Line{i}, NormalWrite)
		}
	}); n != 0 {
		t.Errorf("Write allocates %v/run", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		for _, a := range addrs {
			d.Disturb(a, flips)
		}
	}); n != 0 {
		t.Errorf("Disturb allocates %v/run", n)
	}
	_ = sink
}
