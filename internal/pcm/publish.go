package pcm

import "sdpcm/internal/metrics"

// Publish exports the device counters into reg under the "pcm." prefix.
// Called once at end of run; a nil registry is a no-op.
func (s Stats) Publish(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("pcm.reads").Add(s.Reads)
	reg.Counter("pcm.writes").Add(s.Writes)
	reg.Counter("pcm.reset_pulses").Add(s.ResetPulses)
	reg.Counter("pcm.set_pulses").Add(s.SetPulses)
	reg.Counter("pcm.correction_writes").Add(s.CorrectionWrites)
	reg.Counter("pcm.correction_reset_pulses").Add(s.CorrectionResetPulses)
	reg.Counter("pcm.disturbed_bits").Add(s.DisturbedBits)
}
