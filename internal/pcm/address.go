// Package pcm models the PCM DIMM of Figure 6 at device level: 2 ranks x 8
// banks, eight x8 data chips plus one ECP chip per rank, 4 KB device rows
// (4096 cells per chip-row), 64 B lines, SLC cells with differential write
// and 128-bit parallel write drivers.
//
// Bit convention: a cell value of 0 is the fully amorphous (RESET, high
// resistance) state and 1 the crystalline (SET) state. Writing a 0 over a 1
// issues a RESET pulse; writing a 1 over a 0 issues a SET pulse; unchanged
// cells are skipped entirely (differential write [35]). Only RESET pulses
// generate write disturbance, and only idle amorphous ('0') neighbours are
// vulnerable (§2.2.1).
package pcm

import (
	"fmt"
	"math/bits"
)

// Geometry constants of the Figure 6 / Table 2 organisation.
const (
	// LineBytes is the memory line (and LLC block) size.
	LineBytes = 64
	// LineBits is the number of SLC cells in one line.
	LineBits = LineBytes * 8
	// LineWords is the number of 64-bit words backing one line.
	LineWords = LineBits / 64
	// PageBytes is the OS page and device row payload size.
	PageBytes = 4096
	// LinesPerPage is the number of 64 B lines per 4 KB device row.
	LinesPerPage = PageBytes / LineBytes
	// Ranks and BanksPerRank describe the single-channel DIMM.
	Ranks        = 2
	BanksPerRank = 8
	// NumBanks is the total number of banks (and the strip width in pages):
	// physically adjacent rows in one bank hold pages NumBanks apart (§4.1).
	NumBanks = Ranks * BanksPerRank
	// DataChips is the number of data chips one row spreads across.
	DataChips = 8
	// CellsPerChipRow is the number of SLC cells each chip contributes to a
	// row (4096 in the paper: "one bank stores 4096 SLC cells in one row"
	// per chip, 8 chips = 4 KB).
	CellsPerChipRow = PageBytes * 8 / DataChips
	// BitsPerChipLine is each chip's share of one 64 B line.
	BitsPerChipLine = LineBits / DataChips
	// ParallelWriteBits is the number of cells the write drivers can program
	// simultaneously (power constraint, Table 2).
	ParallelWriteBits = 128
)

// LineAddr is the global index of a 64 B line: physical page number times
// LinesPerPage plus the line offset within the page.
type LineAddr uint64

// PageAddr is a physical page (frame) number.
type PageAddr uint64

// Loc pinpoints a line inside the DIMM: its bank, device row within the
// bank, and slot (line offset) within the row.
type Loc struct {
	Bank int
	Row  int
	Slot int
}

// Page returns the physical page a line belongs to.
func (a LineAddr) Page() PageAddr { return PageAddr(a / LinesPerPage) }

// Slot returns the line offset within its page (0..LinesPerPage-1).
func (a LineAddr) Slot() int { return int(a % LinesPerPage) }

// LineOf returns the global line address for a slot within a page.
func LineOf(p PageAddr, slot int) LineAddr {
	return LineAddr(uint64(p)*LinesPerPage + uint64(slot))
}

// Locate maps a line address to its device coordinates under the
// strip-interleaved layout of §4.1: page p lives in bank p mod NumBanks at
// row p div NumBanks, so one strip (equal row index across all banks) holds
// NumBanks consecutive pages and bit-line neighbours are NumBanks pages
// apart.
func Locate(a LineAddr) Loc {
	p := uint64(a.Page())
	return Loc{
		Bank: int(p % NumBanks),
		Row:  int(p / NumBanks),
		Slot: a.Slot(),
	}
}

// AddrOf is the inverse of Locate.
func AddrOf(l Loc) LineAddr {
	page := uint64(l.Row)*NumBanks + uint64(l.Bank)
	return LineOf(PageAddr(page), l.Slot)
}

// StripIndex returns the device strip (row index across banks) of a page.
func (p PageAddr) StripIndex() int { return int(uint64(p) / NumBanks) }

// AdjacentLines returns the bit-line neighbours of a line: the same slot in
// the rows physically above and below within the same bank (pages p±NumBanks).
// ok is false for a neighbour that falls outside [0, rows) of the bank.
func AdjacentLines(a LineAddr, rowsPerBank int) (above, below LineAddr, okAbove, okBelow bool) {
	return DefaultGeometry.AdjacentLines(a, rowsPerBank)
}

// Geometry generalizes the strip-interleaved layout of §4.1 to a
// configurable power-of-two bank count: page p lives in bank p mod Banks at
// row p div Banks. The bank count is a power of two with a precomputed
// shift, so the hot-path address arithmetic stays shifts and masks exactly
// like the fixed-constant layout. The zero Geometry is invalid; use
// DefaultGeometry or NewGeometry.
type Geometry struct {
	banks int
	shift uint
}

// DefaultGeometry is the fixed Figure 6 DIMM layout: NumBanks (16) banks.
var DefaultGeometry = Geometry{banks: NumBanks, shift: uint(bits.TrailingZeros(NumBanks))}

// NewGeometry builds a layout over the given bank count (a power of two).
func NewGeometry(banks int) (Geometry, error) {
	if banks < 1 || banks&(banks-1) != 0 {
		return Geometry{}, fmt.Errorf("pcm: bank count %d not a power of two", banks)
	}
	return Geometry{banks: banks, shift: uint(bits.TrailingZeros(uint(banks)))}, nil
}

// Banks returns the layout's bank count (and strip width in pages).
func (g Geometry) Banks() int { return g.banks }

// Locate maps a line address to its device coordinates under the layout.
func (g Geometry) Locate(a LineAddr) Loc {
	p := uint64(a.Page())
	return Loc{
		Bank: int(p & uint64(g.banks-1)),
		Row:  int(p >> g.shift),
		Slot: a.Slot(),
	}
}

// AddrOf is the inverse of Locate.
func (g Geometry) AddrOf(l Loc) LineAddr {
	page := uint64(l.Row)<<g.shift | uint64(l.Bank)
	return LineOf(PageAddr(page), l.Slot)
}

// StripIndex returns the device strip (row index across banks) of a page.
func (g Geometry) StripIndex(p PageAddr) int { return int(uint64(p) >> g.shift) }

// AdjacentLines returns the bit-line neighbours of a line under the layout
// (pages p±Banks); ok is false outside [0, rowsPerBank).
func (g Geometry) AdjacentLines(a LineAddr, rowsPerBank int) (above, below LineAddr, okAbove, okBelow bool) {
	loc := g.Locate(a)
	if loc.Row > 0 {
		above = g.AddrOf(Loc{Bank: loc.Bank, Row: loc.Row - 1, Slot: loc.Slot})
		okAbove = true
	}
	if loc.Row < rowsPerBank-1 {
		below = g.AddrOf(Loc{Bank: loc.Bank, Row: loc.Row + 1, Slot: loc.Slot})
		okBelow = true
	}
	return
}

// bankLocal maps a line address to its bank and bank-local line index
// (row*LinesPerPage+slot). Bank count and LinesPerPage are powers of two,
// so the arithmetic is shifts and masks.
func (g Geometry) bankLocal(a LineAddr) (bank, local int) {
	page := uint64(a) / LinesPerPage
	bank = int(page & uint64(g.banks-1))
	local = int(page>>g.shift)*LinesPerPage + int(uint64(a)%LinesPerPage)
	return
}
