package pcm

import (
	"testing"
	"testing/quick"
)

func lineFrom(words [8]uint64) Line { return Line(words) }

func TestBitSetBit(t *testing.T) {
	var l Line
	for _, i := range []int{0, 1, 63, 64, 100, 511} {
		if l.Bit(i) != 0 {
			t.Fatalf("fresh line bit %d != 0", i)
		}
		l.SetBit(i, 1)
		if l.Bit(i) != 1 {
			t.Fatalf("bit %d not set", i)
		}
		l.SetBit(i, 0)
		if l.Bit(i) != 0 {
			t.Fatalf("bit %d not cleared", i)
		}
	}
}

func TestDiffMasksProperties(t *testing.T) {
	// For any (old, new): masks are disjoint, reset ⊆ old, set ∩ old = ∅,
	// and applying them to old yields new exactly.
	if err := quick.Check(func(o, n [8]uint64) bool {
		old, new := lineFrom(o), lineFrom(n)
		reset, set := DiffMasks(old, new)
		if reset.And(set).Any() {
			return false
		}
		for i := range old {
			if reset[i]&^old[i] != 0 { // RESET only cells currently 1
				return false
			}
			if set[i]&old[i] != 0 { // SET only cells currently 0
				return false
			}
		}
		return ApplyMasks(old, reset, set) == new
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiffMasksIdentity(t *testing.T) {
	if err := quick.Check(func(o [8]uint64) bool {
		old := lineFrom(o)
		reset, set := DiffMasks(old, old)
		return !reset.Any() && !set.Any()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiffMasksCountsMatchHamming(t *testing.T) {
	if err := quick.Check(func(o, n [8]uint64) bool {
		old, new := lineFrom(o), lineFrom(n)
		reset, set := DiffMasks(old, new)
		return reset.PopCount()+set.PopCount() == old.Xor(new).PopCount()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaskBits(t *testing.T) {
	var m Mask
	want := []int{0, 5, 63, 64, 200, 511}
	for _, b := range want {
		m.SetBit(b)
	}
	got := m.Bits()
	if len(got) != len(want) {
		t.Fatalf("Bits() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Bits()[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	m.ClearBit(5)
	if m.Bit(5) != 0 || m.PopCount() != len(want)-1 {
		t.Fatal("ClearBit failed")
	}
}

// TestVisitBitsMatchesBits: the allocation-free visitor must produce exactly
// the ascending order of Bits() — the RNG-stream-preservation invariant the
// disturbance engine relies on — and honour early termination.
func TestVisitBitsMatchesBits(t *testing.T) {
	if err := quick.Check(func(words [LineWords]uint64) bool {
		m := Mask(words)
		var visited []int
		m.VisitBits(func(b int) bool {
			visited = append(visited, b)
			return true
		})
		want := m.Bits()
		if len(visited) != len(want) {
			return false
		}
		for i := range want {
			if visited[i] != want[i] {
				return false
			}
		}
		// AppendBits onto a prefix keeps the prefix and appends the same.
		app := m.AppendBits([]int{-1})
		if app[0] != -1 || len(app) != len(want)+1 {
			return false
		}
		for i := range want {
			if app[i+1] != want[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVisitBitsEarlyStop(t *testing.T) {
	var m Mask
	for _, b := range []int{1, 60, 80, 300} {
		m.SetBit(b)
	}
	var got []int
	m.VisitBits(func(b int) bool {
		got = append(got, b)
		return len(got) < 2
	})
	if len(got) != 2 || got[0] != 1 || got[1] != 60 {
		t.Fatalf("early-stop visit = %v", got)
	}
}

// TestVisitBitsAllocFree pins the visitor's zero-allocation property with a
// capturing closure — the wd.sample pattern.
func TestVisitBitsAllocFree(t *testing.T) {
	var m Mask
	for b := 0; b < LineBits; b += 7 {
		m.SetBit(b)
	}
	count := 0
	if n := testing.AllocsPerRun(100, func() {
		var out Mask
		m.VisitBits(func(b int) bool {
			out.SetBit(b)
			count++
			return true
		})
	}); n != 0 {
		t.Errorf("VisitBits allocates %v/run", n)
	}
	if count == 0 {
		t.Fatal("visitor never ran")
	}
}

func TestMaskSetOps(t *testing.T) {
	if err := quick.Check(func(a, b [8]uint64) bool {
		ma, mb := Mask(a), Mask(b)
		union := ma.Or(mb)
		inter := ma.And(mb)
		diff := ma.AndNot(mb)
		// |A∪B| = |A| + |B| - |A∩B|; A\B = A∩¬B.
		if union.PopCount() != ma.PopCount()+mb.PopCount()-inter.PopCount() {
			return false
		}
		return diff.PopCount() == ma.PopCount()-inter.PopCount()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCycles(t *testing.T) {
	tim := DefaultTiming
	cases := []struct {
		nReset, nSet, want int
	}{
		{0, 0, 400},      // silent write still occupies one RESET slot
		{1, 0, 400},      // one RESET round
		{128, 0, 400},    // exactly one RESET-only round
		{129, 0, 800},    // two RESET-only rounds
		{0, 1, 800},      // one SET round
		{0, 129, 1600},   // two SET rounds
		{50, 60, 800},    // mixed round: SET pulse dominates
		{120, 9, 1600},   // 129 cells, one SET: two SET-paced rounds
		{256, 256, 3200}, // 4 mixed rounds at SET latency
	}
	for _, c := range cases {
		if got := tim.WriteCycles(c.nReset, c.nSet); got != c.want {
			t.Errorf("WriteCycles(%d,%d) = %d, want %d", c.nReset, c.nSet, got, c.want)
		}
	}
}
