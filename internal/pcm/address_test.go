package pcm

import (
	"testing"
	"testing/quick"
)

func TestLocateRoundTrip(t *testing.T) {
	if err := quick.Check(func(raw uint32) bool {
		a := LineAddr(raw)
		return AddrOf(Locate(a)) == a
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocateLayout(t *testing.T) {
	// Page p -> bank p mod 16, row p div 16 (Figure 6 interleaving).
	a := LineOf(PageAddr(35), 7)
	loc := Locate(a)
	if loc.Bank != 35%NumBanks || loc.Row != 35/NumBanks || loc.Slot != 7 {
		t.Fatalf("Locate = %+v", loc)
	}
}

func TestStripHoldsConsecutivePages(t *testing.T) {
	// One strip = same row index across all 16 banks = 16 consecutive pages.
	row := 5
	banksSeen := map[int]bool{}
	for p := row * NumBanks; p < (row+1)*NumBanks; p++ {
		loc := Locate(LineOf(PageAddr(p), 0))
		if loc.Row != row {
			t.Fatalf("page %d: row %d, want %d", p, loc.Row, row)
		}
		banksSeen[loc.Bank] = true
	}
	if len(banksSeen) != NumBanks {
		t.Fatalf("strip covers %d banks, want %d", len(banksSeen), NumBanks)
	}
}

func TestAdjacentLinesAre16PagesApart(t *testing.T) {
	// §4.3: "an adjacent line is 16 physical frames away from the line to be
	// written".
	const rows = 100
	a := LineOf(PageAddr(100), 13)
	above, below, okA, okB := AdjacentLines(a, rows)
	if !okA || !okB {
		t.Fatal("interior line must have both neighbours")
	}
	if above.Page() != 100-NumBanks || below.Page() != 100+NumBanks {
		t.Fatalf("neighbour pages %d,%d; want %d,%d",
			above.Page(), below.Page(), 100-NumBanks, 100+NumBanks)
	}
	if above.Slot() != 13 || below.Slot() != 13 {
		t.Fatal("neighbours must be at the same slot")
	}
	la, lb := Locate(above), Locate(below)
	orig := Locate(a)
	if la.Bank != orig.Bank || lb.Bank != orig.Bank {
		t.Fatal("neighbours must be in the same bank")
	}
	if la.Row != orig.Row-1 || lb.Row != orig.Row+1 {
		t.Fatalf("neighbour rows %d,%d around %d", la.Row, lb.Row, orig.Row)
	}
}

func TestAdjacentLinesBoundaries(t *testing.T) {
	const rows = 4
	// Row 0: no neighbour above.
	_, below, okA, okB := AdjacentLines(LineOf(PageAddr(3), 0), rows)
	if okA {
		t.Error("row 0 must have no above neighbour")
	}
	if !okB || Locate(below).Row != 1 {
		t.Error("row 0 must have a below neighbour at row 1")
	}
	// Last row: no neighbour below.
	lastRowPage := PageAddr((rows-1)*NumBanks + 2)
	above, _, okA, okB := AdjacentLines(LineOf(lastRowPage, 0), rows)
	if okB {
		t.Error("last row must have no below neighbour")
	}
	if !okA || Locate(above).Row != rows-2 {
		t.Error("last row must have an above neighbour")
	}
	// Single-row bank: fully isolated.
	_, _, okA, okB = AdjacentLines(LineOf(PageAddr(0), 0), 1)
	if okA || okB {
		t.Error("single-row bank must have no neighbours")
	}
}

func TestAdjacencySymmetry(t *testing.T) {
	// If b is a's below neighbour then a is b's above neighbour.
	if err := quick.Check(func(raw uint16, slotRaw uint8) bool {
		const rows = 1 << 12
		a := LineOf(PageAddr(raw), int(slotRaw)%LinesPerPage)
		_, below, _, okB := AdjacentLines(a, rows)
		if !okB {
			return true
		}
		above, _, okA, _ := AdjacentLines(below, rows)
		return okA && above == a
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPageAndSlot(t *testing.T) {
	a := LineOf(PageAddr(9), 63)
	if a.Page() != 9 || a.Slot() != 63 {
		t.Fatalf("Page/Slot = %d/%d", a.Page(), a.Slot())
	}
	if PageAddr(47).StripIndex() != 2 {
		t.Fatalf("StripIndex(47) = %d, want 2", PageAddr(47).StripIndex())
	}
}

func TestGeometryConstantsConsistent(t *testing.T) {
	if LinesPerPage*LineBytes != PageBytes {
		t.Error("LinesPerPage inconsistent")
	}
	if BitsPerChipLine*DataChips != LineBits {
		t.Error("chip share inconsistent")
	}
	if CellsPerChipRow*DataChips != PageBytes*8 {
		t.Error("cells per chip row inconsistent")
	}
	if NumBanks != 16 {
		t.Errorf("NumBanks = %d, want 16 (2 ranks x 8 banks)", NumBanks)
	}
}
