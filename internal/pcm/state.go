package pcm

import (
	"fmt"

	"sdpcm/internal/snap"
)

// encodeStats writes one Stats value field by field; keep in lockstep with
// decodeStats and Stats.Add.
func encodeStats(e *snap.Encoder, s Stats) {
	e.U64(s.Reads)
	e.U64(s.Writes)
	e.U64(s.ResetPulses)
	e.U64(s.SetPulses)
	e.U64(s.CorrectionWrites)
	e.U64(s.CorrectionResetPulses)
	e.U64(s.DisturbedBits)
}

func decodeStats(d *snap.Decoder, s *Stats) {
	s.Reads = d.U64()
	s.Writes = d.U64()
	s.ResetPulses = d.U64()
	s.SetPulses = d.U64()
	s.CorrectionWrites = d.U64()
	s.CorrectionResetPulses = d.U64()
	s.DisturbedBits = d.U64()
}

// EncodeLine writes one line image as eight fixed words.
func EncodeLine(e *snap.Encoder, l Line) {
	for _, w := range l {
		e.U64(w)
	}
}

// DecodeLine reads one line image.
func DecodeLine(d *snap.Decoder) Line {
	var l Line
	for i := range l {
		l[i] = d.U64()
	}
	return l
}

// EncodeState serializes the device's mutable state: per-bank counters and
// every materialized chunk's resident lines. Geometry, timing and the
// background fill are construction parameters and are not stored — decode
// targets a freshly built Device of the same Config.
func (d *Device) EncodeState(e *snap.Encoder) {
	e.Begin("pcm.device")
	for b := range d.banks {
		encodeStats(e, d.stats[b].Stats)
		n := 0
		for _, ch := range d.banks[b] {
			if ch != nil {
				n++
			}
		}
		e.Uvarint(uint64(n))
		for ci, ch := range d.banks[b] {
			if ch == nil {
				continue
			}
			e.Uvarint(uint64(ci))
			e.U64(ch.resident)
			for i := 0; i < chunkLines; i++ {
				if ch.resident&(1<<i) != 0 {
					EncodeLine(e, ch.lines[i])
				}
			}
		}
	}
	e.End()
}

// DecodeState restores state written by EncodeState into a device freshly
// constructed with the same Config.
func (d *Device) DecodeState(dec *snap.Decoder) error {
	dec.Begin("pcm.device")
	for b := range d.banks {
		decodeStats(dec, &d.stats[b].Stats)
		for ci := range d.banks[b] {
			d.banks[b][ci] = nil
		}
		d.slabs[b] = nil
		n := dec.Uvarint()
		for k := uint64(0); k < n; k++ {
			ci := dec.Uvarint()
			resident := dec.U64()
			if dec.Err() != nil {
				return dec.Err()
			}
			if ci >= uint64(len(d.banks[b])) {
				return fmt.Errorf("pcm: checkpoint chunk index %d out of range (bank %d has %d)", ci, b, len(d.banks[b]))
			}
			if resident>>chunkLines != 0 {
				return fmt.Errorf("pcm: checkpoint residency bitmap %#x has bits beyond %d lines", resident, chunkLines)
			}
			ch := d.materializeChunk(b, int(ci))
			ch.resident = resident
			for i := 0; i < chunkLines; i++ {
				if resident&(1<<i) != 0 {
					ch.lines[i] = DecodeLine(dec)
				}
			}
		}
	}
	dec.End()
	return dec.Err()
}
