package pcm

import "math/bits"

// Line is the content of one 64 B memory line as eight 64-bit words.
// Bit i of the line is word i/64, bit i%64 (LSB first).
type Line [LineWords]uint64

// Mask is a per-bit mask over a line, same layout as Line.
type Mask [LineWords]uint64

// Bit returns bit i of the line (0 = amorphous/RESET, 1 = crystalline/SET).
func (l *Line) Bit(i int) uint64 { return (l[i>>6] >> (uint(i) & 63)) & 1 }

// SetBit sets bit i to v (0 or 1).
func (l *Line) SetBit(i int, v uint64) {
	w, b := i>>6, uint(i)&63
	l[w] = (l[w] &^ (1 << b)) | ((v & 1) << b)
}

// Equal reports whether two lines hold identical content.
func (l Line) Equal(o Line) bool { return l == o }

// PopCount returns the number of 1 (crystalline) bits in the line.
func (l Line) PopCount() int {
	n := 0
	for _, w := range l {
		n += bits.OnesCount64(w)
	}
	return n
}

// Xor returns the bitwise difference between two lines as a mask.
func (l Line) Xor(o Line) Mask {
	var m Mask
	for i := range l {
		m[i] = l[i] ^ o[i]
	}
	return m
}

// Bit returns bit i of the mask.
func (m *Mask) Bit(i int) uint64 { return (m[i>>6] >> (uint(i) & 63)) & 1 }

// SetBit sets bit i of the mask to 1.
func (m *Mask) SetBit(i int) { m[i>>6] |= 1 << (uint(i) & 63) }

// ClearBit clears bit i of the mask.
func (m *Mask) ClearBit(i int) { m[i>>6] &^= 1 << (uint(i) & 63) }

// PopCount returns the number of set bits in the mask.
func (m Mask) PopCount() int {
	n := 0
	for _, w := range m {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether the mask has at least one set bit.
func (m Mask) Any() bool {
	for _, w := range m {
		if w != 0 {
			return true
		}
	}
	return false
}

// Or returns the union of two masks.
func (m Mask) Or(o Mask) Mask {
	var r Mask
	for i := range m {
		r[i] = m[i] | o[i]
	}
	return r
}

// And returns the intersection of two masks.
func (m Mask) And(o Mask) Mask {
	var r Mask
	for i := range m {
		r[i] = m[i] & o[i]
	}
	return r
}

// AndNot returns m with o's bits cleared.
func (m Mask) AndNot(o Mask) Mask {
	var r Mask
	for i := range m {
		r[i] = m[i] &^ o[i]
	}
	return r
}

// Bits returns the indices of all set bits, ascending. It allocates; hot
// paths use VisitBits or AppendBits instead.
func (m Mask) Bits() []int {
	return m.AppendBits(make([]int, 0, m.PopCount()))
}

// AppendBits appends the indices of all set bits, ascending, to dst and
// returns the extended slice. With a caller-owned scratch buffer the append
// is allocation-free once the buffer has grown to the working-set size.
func (m Mask) AppendBits(dst []int) []int {
	for w, word := range m {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, w*64+b)
			word &= word - 1
		}
	}
	return dst
}

// VisitBits calls f for every set bit in ascending index order, stopping
// early if f returns false. It performs no allocation: the closure stays on
// the stack (f does not escape), so per-bit work like the disturbance
// engine's Bernoulli sampling runs allocation-free.
func (m Mask) VisitBits(f func(int) bool) {
	for w, word := range m {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			if !f(w*64 + b) {
				return
			}
			word &= word - 1
		}
	}
}

// DiffMasks computes the differential-write pulse maps for updating a line
// from old to new: reset holds the cells that must be driven 1→0 (RESET
// pulses) and set the cells driven 0→1 (SET pulses). Unchanged cells appear
// in neither mask and are not programmed at all.
func DiffMasks(old, new Line) (reset, set Mask) {
	for i := range old {
		reset[i] = old[i] &^ new[i]
		set[i] = new[i] &^ old[i]
	}
	return
}

// ApplyMasks returns old with reset bits cleared and set bits set; it is the
// device-side effect of programming the two pulse maps.
func ApplyMasks(old Line, reset, set Mask) Line {
	var out Line
	for i := range old {
		out[i] = (old[i] &^ reset[i]) | set[i]
	}
	return out
}
