package pcm

import (
	"testing"
)

// Device microbenchmarks: the data-plane primitives every simulated memory
// reference funnels through. These are pinned in the benchstat CI gate
// (scripts/benchgate) — a >10% ns/op regression fails the build.

// benchAddrs returns a deterministic scatter of in-range line addresses.
func benchAddrs(d *Device, n int) []LineAddr {
	addrs := make([]LineAddr, n)
	state := uint64(12345)
	for i := range addrs {
		state = state*6364136223846793005 + 1442695040888963407
		addrs[i] = LineAddr(state % uint64(d.Lines()))
	}
	return addrs
}

func benchDevice(b *testing.B) *Device {
	b.Helper()
	d, err := NewDevice(Config{Pages: 512, FillSeed: 7})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkDevicePeek(b *testing.B) {
	d := benchDevice(b)
	addrs := benchAddrs(d, 4096)
	// Touch every chunk so Peek measures the dense indexed path.
	for _, a := range addrs {
		d.Write(a, Line{1}, NormalWrite)
	}
	var sink Line
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = d.Peek(addrs[i%len(addrs)])
	}
	_ = sink
}

// BenchmarkDevicePeekUntouched measures the lazy background path: untouched
// chunks compute their pattern on the fly instead of being materialized.
func BenchmarkDevicePeekUntouched(b *testing.B) {
	d := benchDevice(b)
	addrs := benchAddrs(d, 4096)
	var sink Line
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = d.Peek(addrs[i%len(addrs)])
	}
	_ = sink
}

func BenchmarkDeviceWrite(b *testing.B) {
	d := benchDevice(b)
	addrs := benchAddrs(d, 4096)
	// Two random images per address, alternated so every timed write
	// programs a realistic (~50% of cells) differential pulse set.
	datas := make([]Line, 2*len(addrs))
	state := uint64(99)
	for i := range datas {
		for w := range datas[i] {
			state = state*6364136223846793005 + 1442695040888963407
			datas[i][w] = state
		}
	}
	// Warm up: materialize every touched chunk so the loop measures the
	// steady-state write path, not one-time storage setup.
	for j := range addrs {
		d.Write(addrs[j], datas[j], NormalWrite)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % (2 * len(addrs))
		d.Write(addrs[j%len(addrs)], datas[j], NormalWrite)
	}
}

func BenchmarkDeviceDisturb(b *testing.B) {
	d := benchDevice(b)
	addrs := benchAddrs(d, 4096)
	var flips Mask
	flips.SetBit(3)
	flips.SetBit(200)
	flips.SetBit(509)
	for _, a := range addrs {
		d.Disturb(a, flips)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Disturb(addrs[i%len(addrs)], flips)
	}
}
