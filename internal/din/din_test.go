package din

import (
	"testing"
	"testing/quick"

	"sdpcm/internal/pcm"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := NewCodec()
	if err := quick.Check(func(d, s [8]uint64) bool {
		data, stored := pcm.Line(d), pcm.Line(s)
		a := pcm.LineAddr(d[0] % 1000)
		img := c.Encode(a, data, stored)
		return c.Decode(a, img) == data
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialWritesRoundTrip(t *testing.T) {
	// The stored image evolves across writes; decode must always track the
	// latest coding.
	c := NewCodec()
	var stored pcm.Line
	for i := 0; i < 50; i++ {
		var data pcm.Line
		for w := range data {
			data[w] = uint64(i)*0x9e3779b97f4a7c15 + uint64(w)*12345
		}
		stored = c.Encode(7, data, stored)
		if c.Decode(7, stored) != data {
			t.Fatalf("roundtrip failed at write %d", i)
		}
	}
}

func TestNilCodecIsIdentity(t *testing.T) {
	var c *Codec
	var data, stored pcm.Line
	data[0] = 0xabcdef
	img := c.Encode(1, data, stored)
	if img != data {
		t.Fatal("nil codec must store data verbatim")
	}
	if c.Decode(1, img) != data {
		t.Fatal("nil codec decode must be identity")
	}
	if c.AuxBits(1) != 0 {
		t.Fatal("nil codec has no aux bits")
	}
	c.Forget(1) // must not panic
}

func TestVulnerableDefinition(t *testing.T) {
	// Cell 5 fires RESET (1→0); cells 4 and 6 idle amorphous: both victims.
	var old, new pcm.Line
	old.SetBit(5, 1)
	reset, _ := pcm.DiffMasks(old, new)
	v := Vulnerable(reset, old, new)
	if v.Bit(6) != 1 || v.Bit(4) != 1 {
		t.Fatalf("victims = %v, want {4,6}", v.Bits())
	}
	if v.PopCount() != 2 {
		t.Fatalf("victims = %v", v.Bits())
	}
}

func TestVulnerableExcludesNonIdleAndCrystalline(t *testing.T) {
	var old, new pcm.Line
	// Cell 5 RESET. Cell 6: idle crystalline (1→1): not a victim.
	old.SetBit(5, 1)
	old.SetBit(6, 1)
	new.SetBit(6, 1)
	// Cell 4: programmed this write (0→1): not idle, not a victim.
	new.SetBit(4, 1)
	reset, _ := pcm.DiffMasks(old, new)
	v := Vulnerable(reset, old, new)
	if v.Any() {
		t.Fatalf("victims = %v, want none", v.Bits())
	}
}

func TestVulnerableIsSingleStep(t *testing.T) {
	// A run of idle zeros next to one RESET: only the immediately adjacent
	// cell is vulnerable in one step (the rewrite loop iterates).
	var old, new pcm.Line
	old.SetBit(10, 1) // RESET at 10; 11,12,13... idle amorphous
	reset, _ := pcm.DiffMasks(old, new)
	v := Vulnerable(reset, old, new)
	if v.Bit(11) != 1 || v.Bit(12) != 0 {
		t.Fatalf("victims = %v, want {9,11}", v.Bits())
	}
}

func TestVulnerableRespectsChipSegments(t *testing.T) {
	// Cell 63 (end of chip 0) RESET must not victimise cell 64 (start of
	// chip 1) — they are on different chips.
	var old, new pcm.Line
	old.SetBit(63, 1)
	reset, _ := pcm.DiffMasks(old, new)
	v := Vulnerable(reset, old, new)
	if v.Bit(64) != 0 {
		t.Fatal("vulnerability must not cross chip segment boundaries")
	}
	if v.Bit(62) != 1 {
		t.Fatal("in-segment victim at 62 expected")
	}
}

func TestVulnerableExcludesAggressors(t *testing.T) {
	// A cell that itself fires a pulse this write is not idle even when the
	// aggressor mask includes it.
	var old, new pcm.Line
	old.SetBit(5, 1)
	old.SetBit(6, 1) // both RESET
	reset, _ := pcm.DiffMasks(old, new)
	v := Vulnerable(reset, old, new)
	if v.Bit(5) != 0 && v.Bit(6) != 0 {
		// fine
	}
	if v.Bit(5) == 1 || v.Bit(6) == 1 {
		t.Fatalf("aggressor cells cannot be victims: %v", v.Bits())
	}
}

func TestEncodingReducesVulnerability(t *testing.T) {
	// Across random writes, the coded image must create fewer victims on
	// average than identity storage.
	c := NewCodec()
	var codedVictims, plainVictims int
	seed := uint64(12345)
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	count := func(old, new pcm.Line) int {
		reset, _ := pcm.DiffMasks(old, new)
		return Vulnerable(reset, old, new).PopCount()
	}
	var storedCoded, storedPlain pcm.Line
	for i := 0; i < 500; i++ {
		var data pcm.Line
		for w := range data {
			data[w] = next()
		}
		img := c.Encode(11, data, storedCoded)
		codedVictims += count(storedCoded, img)
		storedCoded = img
		plainVictims += count(storedPlain, data)
		storedPlain = data
	}
	if codedVictims >= plainVictims {
		t.Fatalf("coding did not reduce victims: coded=%d plain=%d",
			codedVictims, plainVictims)
	}
}

func TestEdges(t *testing.T) {
	var reset pcm.Mask
	reset.SetBit(0)   // chip 0 left edge
	reset.SetBit(127) // chip 1 right edge
	reset.SetBit(300) // interior of chip 4
	e := Edges(reset)
	if !e.LeftAggressor[0] || e.RightAggressor[0] {
		t.Fatalf("segment 0 edges = %+v", e)
	}
	if !e.RightAggressor[1] || e.LeftAggressor[1] {
		t.Fatalf("segment 1 edges = %+v", e)
	}
	for s := 2; s < 8; s++ {
		if e.LeftAggressor[s] || e.RightAggressor[s] {
			t.Fatalf("segment %d must have no aggressors", s)
		}
	}
}

func TestForget(t *testing.T) {
	c := NewCodec()
	var data, stored pcm.Line
	data[0] = ^uint64(0) // encourage inversion somewhere
	c.Encode(5, data, stored)
	c.Forget(5)
	if c.AuxBits(5) != 0 {
		t.Fatal("Forget must drop aux state")
	}
}

func TestStatsProgress(t *testing.T) {
	c := NewCodec()
	var stored pcm.Line
	for i := 0; i < 10; i++ {
		var data pcm.Line
		for w := range data {
			data[w] = uint64(i*7+w) * 0x123456789
		}
		stored = c.Encode(1, data, stored)
	}
	if c.Stats.Encodes != 10 {
		t.Fatalf("Encodes = %d", c.Stats.Encodes)
	}
}

func TestConstantsConsistent(t *testing.T) {
	if GroupsPerLine*GroupBits != pcm.LineBits {
		t.Fatal("group partitioning must tile the line")
	}
	if SegmentBits%GroupBits != 0 {
		t.Fatal("groups must not straddle chip segments")
	}
	if AuxBitsPerLine != 32 {
		t.Fatalf("aux overhead = %d bits, want 32", AuxBitsPerLine)
	}
}
