// Package din implements a disturbance-aware data encoding in the spirit of
// DIN [10] (Jiang et al., DSN'14), which SD-PCM adopts to mitigate write
// disturbance along word-lines (§4.1).
//
// Word-line WD arises when a RESET pulse fires next to an *idle* cell that
// stores '0' (amorphous). The codec splits each line into 16-cell groups
// (four per 64-cell chip segment) and, for every group, picks identity or
// inverted polarity, greedily minimising the number of vulnerable victim
// cells the write would create — with chip-segment edge aggressors weighted
// extra (they threaten the horizontally adjacent line, which the write
// cannot verify) and fewer programmed cells as the tie-breaker. One
// auxiliary coding bit per group (32 per line, 6.25 % overhead) is stored
// alongside the row.
//
// Residual in-line word-line flips are caught by the write circuit's
// program-and-verify loop and rewritten within the write operation — the
// "additional checks and rewrites" DIN performs to ensure write reliability;
// internal/wd simulates that loop stochastically. What Figure 4(a) reports
// (≈0.4 manifested errors per write) is exactly those residual flips.
//
// Physical adjacency is confined to each chip's contiguous 64-cell share of
// the line: bit 63 of chip k is not adjacent to bit 0 of chip k+1.
package din

import (
	"fmt"

	"sdpcm/internal/pcm"
)

// GroupBits is the inversion-coding granularity.
const GroupBits = 16

// GroupsPerLine is the number of coding groups (and aux bits) per line.
const GroupsPerLine = pcm.LineBits / GroupBits

// SegmentBits is the span of physical word-line adjacency: one chip's share
// of a line.
const SegmentBits = pcm.BitsPerChipLine

// AuxBitsPerLine is the per-line coding-bit storage overhead.
const AuxBitsPerLine = GroupsPerLine

// edgePenalty is the cost weight of a chip-segment edge cell firing RESET:
// edge aggressors threaten a neighbouring line the write cannot verify, so
// they are costed as heavily as two in-line victims.
const edgePenalty = 2

// Stats aggregates codec activity.
type Stats struct {
	Encodes         uint64 // lines encoded
	GroupsInverted  uint64 // groups stored in inverted polarity
	VulnerableCells uint64 // in-line vulnerable victims left after coding
	BitsSaved       uint64 // programmed-cell reduction vs identity coding
}

// Codec encodes line data into disturbance-minimising stored images and
// remembers each line's current per-group polarity. A nil *Codec is valid
// and behaves as the identity transform (encoding disabled).
type Codec struct {
	Stats Stats

	aux map[pcm.LineAddr]uint32 // bit g set = group g stored inverted
}

// NewCodec returns an enabled codec.
func NewCodec() *Codec {
	return &Codec{aux: make(map[pcm.LineAddr]uint32)}
}

// groupWordShift returns the word index and bit shift of group g's lane.
func groupWordShift(g int) (word int, shift uint) {
	return g * GroupBits / 64, uint(g * GroupBits % 64)
}

// Decode maps a stored image back to data using the line's recorded coding.
func (c *Codec) Decode(a pcm.LineAddr, stored pcm.Line) pcm.Line {
	if c == nil {
		return stored
	}
	auxBits := c.aux[a]
	if auxBits == 0 {
		return stored
	}
	out := stored
	for g := 0; g < GroupsPerLine; g++ {
		if auxBits&(1<<uint(g)) != 0 {
			w, s := groupWordShift(g)
			out[w] ^= uint64(0xffff) << s
		}
	}
	return out
}

// Encode produces the stored image for writing data over the current stored
// image. On a nil codec the stored image is the data itself.
func (c *Codec) Encode(a pcm.LineAddr, data, stored pcm.Line) pcm.Line {
	if c == nil {
		return data
	}
	var newAux uint32
	out := data
	identityChanges, chosenChanges := 0, 0
	for g := 0; g < GroupsPerLine; g++ {
		w, s := groupWordShift(g)
		oldBits := uint16(stored[w] >> s)
		plain := uint16(data[w] >> s)
		inv := ^plain
		// Greedy: groups to the left of g are already fixed in out.
		var leftOldBit, leftNewBit uint64
		groupsPerSeg := SegmentBits / GroupBits
		posInSeg := g % groupsPerSeg
		hasLeft := posInSeg != 0
		if hasLeft {
			leftOldBit = stored.Bit(g*GroupBits - 1)
			leftNewBit = out.Bit(g*GroupBits - 1)
		}
		atSegStart := posInSeg == 0
		atSegEnd := posInSeg == groupsPerSeg-1
		cPlain := groupCost(oldBits, plain, hasLeft, leftOldBit, leftNewBit, atSegStart, atSegEnd)
		cInv := groupCost(oldBits, inv, hasLeft, leftOldBit, leftNewBit, atSegStart, atSegEnd)
		choose, chosen := plain, cPlain
		if !better(cPlain, cInv) {
			choose, chosen = inv, cInv
			newAux |= 1 << uint(g)
			c.Stats.GroupsInverted++
		}
		identityChanges += cPlain.changes
		chosenChanges += chosen.changes
		out[w] = (out[w] &^ (uint64(0xffff) << s)) | uint64(choose)<<s
	}
	if identityChanges > chosenChanges {
		c.Stats.BitsSaved += uint64(identityChanges - chosenChanges)
	}
	c.aux[a] = newAux
	c.Stats.Encodes++
	c.Stats.VulnerableCells += uint64(vulnerableCount(stored, out))
	return out
}

// cost ranks a candidate group coding.
type cost struct {
	risk    int // vulnerable victims + weighted edge aggressors
	changes int // cells programmed
}

// better reports whether a is preferable to b: lower risk first, then fewer
// programmed cells, with a (identity) winning exact ties for stable aux bits.
func better(a, b cost) bool {
	if a.risk != b.risk {
		return a.risk < b.risk
	}
	return a.changes <= b.changes
}

// groupCost evaluates writing cand over old within one 16-cell group,
// counting in-group victims, the boundary pair with the already-fixed cell
// to the left, and segment-edge aggressors.
func groupCost(old, cand uint16, hasLeft bool, leftOld, leftNew uint64, atSegStart, atSegEnd bool) cost {
	resets := old &^ cand     // cells pulsed 1→0
	idle := ^(old ^ cand)     // cells not programmed
	amorphous := idle & ^cand // idle cells reading 0
	changes := popcount16(old ^ cand)
	risk := popcount16(amorphous & ((resets << 1) | (resets >> 1)))
	if hasLeft {
		leftIdle := leftOld == leftNew
		if leftIdle && leftNew == 0 && resets&1 != 0 {
			risk++ // our bit 0 resetting victimises the fixed left cell
		}
		if leftOld == 1 && leftNew == 0 && amorphous&1 != 0 {
			risk++ // the left cell's RESET victimises our idle bit 0
		}
	}
	if atSegStart && resets&1 != 0 {
		risk += edgePenalty // threatens previous slot's line (unverifiable)
	}
	if atSegEnd && resets&(1<<15) != 0 {
		risk += edgePenalty // threatens next slot's line
	}
	return cost{risk: risk, changes: changes}
}

// Vulnerable returns the idle amorphous cells horizontally adjacent (within
// a chip segment) to an aggressor RESET pulse, given the pulse map and the
// old/new stored images. This is a single-step set: rewriting a flipped
// victim fires new RESET pulses, so internal/wd iterates this with fresh
// aggressor masks until quiescent.
func Vulnerable(aggressors pcm.Mask, old, new pcm.Line) pcm.Mask {
	var out pcm.Mask
	for seg := 0; seg < pcm.LineBits/SegmentBits; seg++ {
		w := seg // SegmentBits == 64, so one word per segment
		idle := ^(old[w] ^ new[w]) &^ aggressors[w]
		amorphous := idle & ^new[w]
		out[w] = amorphous & ((aggressors[w] << 1) | (aggressors[w] >> 1))
	}
	return out
}

// vulnerableCount counts the victims a write's own differential pulses
// create (for codec statistics).
func vulnerableCount(old, new pcm.Line) int {
	reset, _ := pcm.DiffMasks(old, new)
	return Vulnerable(reset, old, new).PopCount()
}

// EdgeExposure describes the written line's residual word-line aggressors:
// for each chip segment, whether its first/last cell fires a RESET pulse,
// which can disturb the edge cell of the horizontally adjacent line in the
// same row.
type EdgeExposure struct {
	// LeftAggressor[s] is true when segment s's first cell fires RESET
	// (threatens the previous slot's segment-s last cell).
	LeftAggressor [pcm.LineBits / SegmentBits]bool
	// RightAggressor[s] is true when segment s's last cell fires RESET
	// (threatens the next slot's segment-s first cell).
	RightAggressor [pcm.LineBits / SegmentBits]bool
}

// Edges extracts the residual cross-line word-line aggressors from a pulse
// map (which must include any rewrite pulses).
func Edges(resetMask pcm.Mask) EdgeExposure {
	var e EdgeExposure
	for seg := 0; seg < pcm.LineBits/SegmentBits; seg++ {
		w := seg // one 64-bit word per segment
		e.LeftAggressor[seg] = resetMask[w]&1 != 0
		e.RightAggressor[seg] = resetMask[w]&(1<<63) != 0
	}
	return e
}

// Forget drops the codec's aux state for a line (used when a line is
// decommissioned, e.g. marked no-use by the (n:m) allocator).
func (c *Codec) Forget(a pcm.LineAddr) {
	if c != nil {
		delete(c.aux, a)
	}
}

// AuxBits exposes a line's current coding word for inspection/testing.
func (c *Codec) AuxBits(a pcm.LineAddr) uint32 {
	if c == nil {
		return 0
	}
	return c.aux[a]
}

func popcount16(x uint16) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// sanity check at init: exactly one 64-bit word per chip segment.
var _ = func() struct{} {
	if SegmentBits != 64 {
		panic(fmt.Sprintf("din: SegmentBits = %d, expected 64", SegmentBits))
	}
	return struct{}{}
}()
