package din

import (
	"fmt"
	"slices"

	"sdpcm/internal/pcm"
	"sdpcm/internal/snap"
)

// EncodeState serializes the codec's counters and per-line coding bits in
// ascending address order. Nil-safe: the identity form encodes as absent,
// so a scheme with encoding disabled round-trips through a checkpoint.
func (c *Codec) EncodeState(e *snap.Encoder) {
	e.Begin("din.codec")
	e.Bool(c != nil)
	if c != nil {
		e.U64(c.Stats.Encodes)
		e.U64(c.Stats.GroupsInverted)
		e.U64(c.Stats.VulnerableCells)
		e.U64(c.Stats.BitsSaved)
		encodeAux(e, c.aux)
	}
	e.End()
}

// DecodeState restores state written by EncodeState. The receiver's
// presence (nil or not, fixed by the scheme) must match the checkpoint's.
func (c *Codec) DecodeState(d *snap.Decoder) error {
	d.Begin("din.codec")
	present := d.Bool()
	if err := checkPresence(d, "din", present, c != nil); err != nil {
		return err
	}
	if present {
		c.Stats.Encodes = d.U64()
		c.Stats.GroupsInverted = d.U64()
		c.Stats.VulnerableCells = d.U64()
		c.Stats.BitsSaved = d.U64()
		c.aux = decodeAux(d)
	}
	d.End()
	return d.Err()
}

// checkPresence verifies the checkpoint and the running scheme agree on
// whether the codec is enabled; presence is fixed by the scheme, so a
// mismatch means the checkpoint belongs to a different configuration.
func checkPresence(d *snap.Decoder, name string, got, want bool) error {
	if err := d.Err(); err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("%s: checkpoint codec presence %t does not match this run's %t", name, got, want)
	}
	return nil
}

// encodeAux writes a per-line aux-bit map deterministically; shared with
// the fnw codec's state encoding via identical layout.
func encodeAux(e *snap.Encoder, aux map[pcm.LineAddr]uint32) {
	addrs := make([]pcm.LineAddr, 0, len(aux))
	for a := range aux {
		addrs = append(addrs, a)
	}
	slices.Sort(addrs)
	e.Uvarint(uint64(len(addrs)))
	for _, a := range addrs {
		e.U64(uint64(a))
		e.Uvarint(uint64(aux[a]))
	}
}

func decodeAux(d *snap.Decoder) map[pcm.LineAddr]uint32 {
	n := d.Uvarint()
	aux := make(map[pcm.LineAddr]uint32, n)
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		a := pcm.LineAddr(d.U64())
		aux[a] = uint32(d.Uvarint())
	}
	return aux
}
