// Package rng provides a small, deterministic, splittable random number
// generator used throughout the simulator.
//
// Reproducibility is a hard requirement for the experiment harness: every
// stochastic decision (write-disturbance flips, workload address streams,
// hard-error placement) must be replayable from a single root seed so that
// paper figures regenerate bit-identically across runs and machines. The
// standard library's math/rand is seedable but offers no principled way to
// derive independent substreams; this package implements xoshiro256** seeded
// via SplitMix64, with a Split operation for creating statistically
// independent child generators.
package rng

import "math/bits"

// Rand is a deterministic pseudo-random generator (xoshiro256**).
// It is not safe for concurrent use; use Split to give each goroutine or
// subsystem its own stream.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output.
// It is used for seeding so that nearby seeds produce unrelated states.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Any seed, including zero, yields
// a valid non-degenerate state.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro requires a not-all-zero state; splitmix64 outputs make an
	// all-zero state astronomically unlikely, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// State returns the generator's internal xoshiro256** state, for
// checkpointing. SetState with the returned value reproduces the stream
// exactly from this point.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state with one previously
// obtained from State. An all-zero state is degenerate (xoshiro would emit
// zeros forever) and is rejected by falling back to the guard state New
// uses; State never returns one, so this only triggers on corrupt input.
func (r *Rand) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		s[0] = 1
	}
	r.s = s
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is statistically independent of
// the parent's subsequent output. The parent is advanced.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// SplitLabeled returns a child generator derived from both the parent stream
// and a label, so that differently-labeled subsystems obtain unrelated
// streams even if created in a different order.
func (r *Rand) SplitLabeled(label string) *Rand {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return New(r.Uint64() ^ h)
}

// SplitLabeledSeq derives n children labeled "<prefix>-0" .. "<prefix>-(n-1)",
// in index order. The parent advances exactly n times regardless of how the
// children are later consumed, so per-shard streams (e.g. one per PCM bank)
// stay identical across shard counts and scheduling orders.
func (r *Rand) SplitLabeledSeq(prefix string, n int) []*Rand {
	out := make([]*Rand, n)
	for i := range out {
		out[i] = r.SplitLabeled(prefix + "-" + itoa(i))
	}
	return out
}

// itoa formats a small non-negative int without importing strconv.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Float64 returns a uniform value in [0,1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.boundedUint64(uint64(n)))
}

// Uint64n returns a uniform value in [0,n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return r.boundedUint64(n)
}

// boundedUint64 implements Lemire's nearly-divisionless bounded generation.
func (r *Rand) boundedUint64(n uint64) uint64 {
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Bool returns true with probability 1/2.
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// Bernoulli returns true with probability p. Values of p outside [0,1] are
// clamped.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a random permutation of [0,n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// NormFloat64 returns a normally distributed value with mean 0 and stddev 1,
// using the polar (Marsaglia) method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		// ln(s) via math is fine; avoid importing math by series? No:
		// use the stdlib; clarity over cleverness.
		return u * sqrtNeg2LogOverS(s)
	}
}

// Poisson returns a Poisson-distributed value with the given mean using
// Knuth's method for small means and a normal approximation for large ones.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation with continuity correction.
		v := mean + sqrt(mean)*r.NormFloat64() + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Geometric returns the number of failures before the first success in a
// sequence of Bernoulli(p) trials. p is clamped to (0,1].
func (r *Rand) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric with non-positive p")
	}
	n := 0
	for !r.Bernoulli(p) {
		n++
		if n > 1<<24 { // defensive bound for absurdly small p
			return n
		}
	}
	return n
}
