package rng

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d times in 64 draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed produced degenerate stream: %d distinct of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical streams")
	}
}

func TestSplitLabeledOrderIndependent(t *testing.T) {
	// Same parent state + same label must give the same child stream.
	p1, p2 := New(9), New(9)
	a := p1.SplitLabeled("wd")
	b := p2.SplitLabeled("wd")
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("labeled splits from identical parents diverged")
		}
	}
	// Different labels from identical parents must differ.
	p3, p4 := New(9), New(9)
	c := p3.SplitLabeled("wd")
	d := p4.SplitLabeled("alloc")
	if c.Uint64() == d.Uint64() {
		t.Fatal("differently-labeled splits collided")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(4)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d count %d deviates >10%% from %v", i, c, want)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(6)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(8)
	const p, draws = 0.115, 200000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-p) > 0.005 {
		t.Fatalf("Bernoulli(%v) empirical rate %v", p, got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw % 64)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(11)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: sum %d != %d", got, sum)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(12)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(13)
	for _, mean := range []float64{0.5, 2, 10, 100} {
		const draws = 50000
		sum := 0
		for i := 0; i < draws; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / draws
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Fatalf("Poisson(%v) empirical mean %v", mean, got)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(14)
	if r.Poisson(0) != 0 || r.Poisson(-3) != 0 {
		t.Fatal("Poisson of non-positive mean must be 0")
	}
	for i := 0; i < 1000; i++ {
		if r.Poisson(200) < 0 {
			t.Fatal("Poisson returned negative value")
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(15)
	const p, draws = 0.25, 50000
	sum := 0
	for i := 0; i < draws; i++ {
		sum += r.Geometric(p)
	}
	got := float64(sum) / draws
	want := (1 - p) / p // mean failures before success
	if math.Abs(got-want) > want*0.05 {
		t.Fatalf("Geometric(%v) empirical mean %v, want ~%v", p, got, want)
	}
	if r.Geometric(1) != 0 {
		t.Fatal("Geometric(1) must be 0")
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(16)
	for i := 0; i < 10000; i++ {
		if v := r.Uint64n(7); v >= 7 {
			t.Fatalf("Uint64n(7) returned %d", v)
		}
	}
}

func TestSplitLabeledSeq(t *testing.T) {
	// Children must match the equivalent manual SplitLabeled calls and
	// advance the parent identically.
	a, b := New(99), New(99)
	seq := a.SplitLabeledSeq("bank", 16)
	if len(seq) != 16 {
		t.Fatalf("got %d children", len(seq))
	}
	for i, c := range seq {
		want := b.SplitLabeled("bank-" + itoa(i))
		for j := 0; j < 8; j++ {
			if g, w := c.Uint64(), want.Uint64(); g != w {
				t.Fatalf("child %d draw %d: %#x != %#x", i, j, g, w)
			}
		}
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("parents diverged after SplitLabeledSeq")
	}
	// Distinct children must be decorrelated.
	c0 := New(5).SplitLabeledSeq("bank", 2)
	if c0[0].Uint64() == c0[1].Uint64() {
		t.Fatal("bank-0 and bank-1 produced identical first draws")
	}
}

func TestItoa(t *testing.T) {
	for _, v := range []int{0, 1, 9, 10, 15, 123, 1 << 20} {
		if got, want := itoa(v), fmt.Sprint(v); got != want {
			t.Fatalf("itoa(%d) = %q, want %q", v, got, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkBernoulli(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Bernoulli(0.115)
	}
}
