package rng

import "math"

// Thin wrappers keep the hot paths in rng.go free of direct math imports and
// document exactly which transcendental functions the generator relies on.

func sqrt(x float64) float64 { return math.Sqrt(x) }

func exp(x float64) float64 { return math.Exp(x) }

// sqrtNeg2LogOverS computes sqrt(-2*ln(s)/s), the scaling factor of the
// Marsaglia polar method.
func sqrtNeg2LogOverS(s float64) float64 {
	return math.Sqrt(-2 * math.Log(s) / s)
}
