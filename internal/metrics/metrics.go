// Package metrics is the simulator's observability layer: a zero-dependency
// registry of counters, gauges and fixed-bucket histograms, plus an optional
// bounded ring-buffer event trace (trace.go).
//
// Design constraints, in order:
//
//   - Allocation-free on the hot path. Instruments are registered once at
//     construction time; Add/Set/Observe mutate plain uint64 fields and
//     never allocate. One simulation run is single-goroutine deterministic,
//     so no locks or atomics are needed (a Registry must not be shared
//     across concurrently executing runs).
//   - Free when disabled. Every instrument method is nil-safe: a nil
//     *Registry hands out nil instrument handles, and calling a method on a
//     nil handle is a no-op. Uninstrumented components therefore pay one
//     nil-check branch per call site and nothing else — the overhead budget
//     is <2% on the simulator's hot paths (BenchmarkMetricsOverhead).
//   - Deterministic snapshots. Snapshot orders every instrument by name, so
//     two runs with the same config and seed export byte-identical JSON —
//     snapshots double as regression fixtures.
package metrics

import "sort"

// Counter is a monotonically increasing uint64 instrument.
type Counter struct {
	v uint64
}

// Add increases the counter; no-op on a nil handle.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Inc increases the counter by one; no-op on a nil handle.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Value returns the current count (0 for a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value-wins uint64 instrument.
type Gauge struct {
	v uint64
}

// Set records the gauge value; no-op on a nil handle.
func (g *Gauge) Set(v uint64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the current value (0 for a nil handle).
func (g *Gauge) Value() uint64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket uint64 distribution. A histogram with bounds
// [b0, b1, ... bn] has n+2 buckets: v <= b0, b0 < v <= b1, ..., v > bn.
type Histogram struct {
	bounds []uint64
	counts []uint64
	sum    uint64
	n      uint64
}

// Observe records one sample; no-op on a nil handle.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.n++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of samples observed (0 for a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of observed samples (0 for a nil handle).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed samples,
// interpolating linearly inside the containing bucket. Samples landing in
// the unbounded overflow bucket are attributed to the top bound, so
// quantiles saturate there (the Prometheus histogram_quantile convention).
// Returns 0 on a nil or empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return quantile(h.bounds, h.counts, h.n, q)
}

// quantile is the shared bucket-walking estimator behind Histogram.Quantile
// and HistogramPoint.Quantile.
func quantile(bounds, counts []uint64, n uint64, q float64) float64 {
	if n == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := float64(cum)
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(bounds) {
			// Overflow bucket: no upper edge to interpolate toward.
			return float64(bounds[len(bounds)-1])
		}
		lo := 0.0
		if i > 0 {
			lo = float64(bounds[i-1])
		}
		hi := float64(bounds[i])
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return float64(bounds[len(bounds)-1])
}

// Registry owns the instruments of one simulation run. The zero value is not
// usable; construct with New. A nil *Registry is the disabled form: every
// lookup returns a nil handle and Snapshot returns nil.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	trace    *Trace
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (the no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (ascending) on first use; later calls ignore bounds. Returns
// nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	h := r.hists[name]
	if h == nil {
		bs := make([]uint64, len(bounds))
		copy(bs, bounds)
		h = &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// EnableTrace attaches a bounded event ring buffer keeping the last cap
// events. Returns the trace (nil on a nil registry or cap <= 0).
func (r *Registry) EnableTrace(cap int) *Trace {
	if r == nil || cap <= 0 {
		return nil
	}
	if r.trace == nil {
		r.trace = newTrace(cap)
	}
	return r.trace
}

// Trace returns the attached event trace, or nil when tracing is disabled.
func (r *Registry) Trace() *Trace {
	if r == nil {
		return nil
	}
	return r.trace
}

// Snapshot exports the registry's current state with stable (name-sorted)
// ordering. Returns nil on a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterPoint{Name: name, Value: c.v})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugePoint{Name: name, Value: g.v})
	}
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	for name, h := range r.hists {
		hp := HistogramPoint{
			Name:   name,
			Bounds: append([]uint64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
			Sum:    h.sum,
			Count:  h.n,
		}
		s.Histograms = append(s.Histograms, hp)
	}
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	if r.trace != nil {
		s.Events = r.trace.Events()
		s.EventsDropped = r.trace.Dropped()
	}
	return s
}
