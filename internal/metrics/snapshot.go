package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// CounterPoint is one exported counter.
type CounterPoint struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugePoint is one exported gauge.
type GaugePoint struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// HistogramPoint is one exported histogram: len(Counts) == len(Bounds)+1,
// with Counts[i] the samples in (Bounds[i-1], Bounds[i]] and the last bucket
// holding samples above the top bound.
type HistogramPoint struct {
	Name   string   `json:"name"`
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Sum    uint64   `json:"sum"`
	Count  uint64   `json:"count"`
}

// Mean returns the average observed sample (0 when empty).
func (h HistogramPoint) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile estimates the q-quantile of the exported distribution with
// linear interpolation inside buckets; see Histogram.Quantile for the
// overflow-bucket convention.
func (h HistogramPoint) Quantile(q float64) float64 {
	return quantile(h.Bounds, h.Counts, h.Count, q)
}

// Snapshot is a registry export: every slice is sorted by instrument name,
// so equal registries marshal to byte-identical JSON and snapshots serve as
// regression fixtures. The zero value is a valid empty snapshot; a nil
// *Snapshot (metrics disabled) is handled by every method.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters,omitempty"`
	Gauges     []GaugePoint     `json:"gauges,omitempty"`
	Histograms []HistogramPoint `json:"histograms,omitempty"`
	// Events is the tail of the event trace, when enabled.
	Events []Event `json:"events,omitempty"`
	// EventsDropped counts trace events overwritten by the ring buffer.
	EventsDropped uint64 `json:"events_dropped,omitempty"`
}

// Counter returns the named counter's value (0 when absent or nil snapshot).
func (s *Snapshot) Counter(name string) uint64 {
	if s == nil {
		return 0
	}
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge's value (0 when absent or nil snapshot).
func (s *Snapshot) Gauge(name string) uint64 {
	if s == nil {
		return 0
	}
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Histogram returns the named histogram point and whether it exists.
func (s *Snapshot) Histogram(name string) (HistogramPoint, bool) {
	if s == nil {
		return HistogramPoint{}, false
	}
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramPoint{}, false
}

// Equal reports whether two snapshots export identical state (events
// included). Nil snapshots are equal only to nil/empty snapshots.
func (s *Snapshot) Equal(o *Snapshot) bool {
	a, errA := json.Marshal(s)
	b, errB := json.Marshal(o)
	return errA == nil && errB == nil && string(a) == string(b)
}

// WriteJSON writes the snapshot as indented JSON. A nil snapshot writes
// "null".
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteTable writes a fixed-width human-readable rendition: counters and
// gauges as name/value rows, histograms with per-bucket counts, then the
// event tail.
func (s *Snapshot) WriteTable(w io.Writer) error {
	if s == nil {
		_, err := fmt.Fprintln(w, "(metrics disabled)")
		return err
	}
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "%-40s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "%-40s %d\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "%-40s n=%d sum=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f\n",
			h.Name, h.Count, h.Sum, h.Mean(),
			h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)); err != nil {
			return err
		}
		for i, n := range h.Counts {
			if n == 0 {
				continue
			}
			label := "+Inf"
			if i < len(h.Bounds) {
				label = fmt.Sprintf("%d", h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "  le %-10s %d\n", label, n); err != nil {
				return err
			}
		}
	}
	if len(s.Events) > 0 {
		if _, err := fmt.Fprintf(w, "events (%d buffered, %d dropped)\n", len(s.Events), s.EventsDropped); err != nil {
			return err
		}
		for _, e := range s.Events {
			if _, err := fmt.Fprintf(w, "  #%-8d t=%-12d %s\n", e.Seq, e.Time, e); err != nil {
				return err
			}
		}
	}
	return nil
}

// Merge folds another snapshot into an aggregate: counters and histogram
// buckets sum; gauges keep the maximum; events are dropped (an aggregate has
// no single timeline). All three operations are commutative and
// associative, so a merge over a set of snapshots is deterministic
// regardless of arrival order. Histograms with mismatched bounds keep the
// receiver's bounds and sum only total count/sum.
func (s *Snapshot) Merge(o *Snapshot) *Snapshot {
	if s == nil {
		s = &Snapshot{}
	}
	if o == nil {
		return s
	}
	s.Counters = mergeNamed(s.Counters, o.Counters,
		func(p CounterPoint) string { return p.Name },
		func(a, b CounterPoint) CounterPoint { a.Value += b.Value; return a })
	s.Gauges = mergeNamed(s.Gauges, o.Gauges,
		func(p GaugePoint) string { return p.Name },
		func(a, b GaugePoint) GaugePoint {
			if b.Value > a.Value {
				a.Value = b.Value
			}
			return a
		})
	s.Histograms = mergeNamed(s.Histograms, o.Histograms,
		func(p HistogramPoint) string { return p.Name },
		mergeHistogram)
	s.Events = nil
	s.EventsDropped += o.EventsDropped + uint64(len(o.Events))
	return s
}

// Combine returns a rendering union of two snapshots: instruments merge as
// in Merge, but the receiver's event tail (and drop count) survives — the
// right shape for displaying a run's deterministic snapshot together with
// auxiliary counters (e.g. executor behaviour), which carry no timeline of
// their own. Neither argument is mutated.
func (s *Snapshot) Combine(o *Snapshot) *Snapshot {
	if o == nil {
		return s
	}
	out := (&Snapshot{}).Merge(s).Merge(o)
	if s != nil {
		out.Events = s.Events
		out.EventsDropped = s.EventsDropped
	} else {
		out.Events = nil
		out.EventsDropped = 0
	}
	return out
}

func mergeHistogram(a, b HistogramPoint) HistogramPoint {
	a.Sum += b.Sum
	a.Count += b.Count
	if len(a.Bounds) == len(b.Bounds) && len(a.Counts) == len(b.Counts) {
		same := true
		for i := range a.Bounds {
			if a.Bounds[i] != b.Bounds[i] {
				same = false
				break
			}
		}
		if same {
			counts := append([]uint64(nil), a.Counts...)
			for i := range counts {
				counts[i] += b.Counts[i]
			}
			a.Counts = counts
		}
	}
	return a
}

// mergeNamed merges two name-sorted point slices, combining same-name
// entries and keeping the output sorted.
func mergeNamed[T any](a, b []T, name func(T) string, combine func(T, T) T) []T {
	out := make([]T, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case name(a[i]) == name(b[j]):
			out = append(out, combine(a[i], b[j]))
			i++
			j++
		case name(a[i]) < name(b[j]):
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	sort.Slice(out, func(x, y int) bool { return name(out[x]) < name(out[y]) })
	return out
}
