package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Set(3)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3 (last write wins)", got)
	}
}

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry
	// Every call below must be a safe no-op.
	r.Counter("x").Inc()
	r.Counter("x").Add(3)
	r.Gauge("x").Set(1)
	r.Histogram("x", []uint64{1, 2}).Observe(9)
	r.EnableTrace(16).Emit(0, EvWDInjected, 1, 2, 3)
	r.Trace().Emit(0, EvWDDetected, 1, 2, 3)
	if r.Trace().Len() != 0 || r.Trace().Dropped() != 0 || r.Trace().Events() != nil {
		t.Fatal("nil trace should be empty")
	}
	if s := r.Snapshot(); s != nil {
		t.Fatalf("nil registry snapshot = %+v, want nil", s)
	}
	if got := r.Counter("x").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := New()
	h := r.Histogram("h", []uint64{10, 100})
	// Exactly-on-bound lands in the bound's bucket (le semantics); one past
	// spills to the next; above the top bound lands in the overflow bucket.
	h.Observe(0)
	h.Observe(10)
	h.Observe(11)
	h.Observe(100)
	h.Observe(101)
	h.Observe(1 << 60)
	if got, want := h.Count(), uint64(6); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	s := r.Snapshot()
	hp, ok := s.Histogram("h")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	want := []uint64{2, 2, 2}
	for i, w := range want {
		if hp.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, hp.Counts[i], w, hp.Counts)
		}
	}
}

func TestHistogramNoBounds(t *testing.T) {
	r := New()
	h := r.Histogram("h", nil)
	h.Observe(42)
	hp, _ := r.Snapshot().Histogram("h")
	if len(hp.Counts) != 1 || hp.Counts[0] != 1 {
		t.Fatalf("boundless histogram counts = %v, want [1]", hp.Counts)
	}
	if hp.Mean() != 42 {
		t.Fatalf("mean = %g, want 42", hp.Mean())
	}
}

func TestTraceRingWraps(t *testing.T) {
	r := New()
	tr := r.EnableTrace(4)
	for i := uint64(0); i < 10; i++ {
		tr.Emit(i*100, EvQueueEnqueue, i, 0, 0)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("len(events) = %d, want 4", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(6 + i)
		if e.Seq != wantSeq || e.Addr != wantSeq {
			t.Fatalf("event %d = %+v, want seq/addr %d (oldest-first order)", i, e, wantSeq)
		}
	}
}

func TestSnapshotStableOrderAndJSON(t *testing.T) {
	build := func(order []string) *Snapshot {
		r := New()
		for _, n := range order {
			r.Counter(n).Inc()
		}
		return r.Snapshot()
	}
	a := build([]string{"z", "a", "m"})
	b := build([]string{"m", "z", "a"})
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("snapshots of same state differ:\n%s\n%s", ja, jb)
	}
	if !a.Equal(b) {
		t.Fatal("Equal() = false for identical state")
	}
	if a.Counters[0].Name != "a" || a.Counters[2].Name != "z" {
		t.Fatalf("counters not name-sorted: %+v", a.Counters)
	}
}

func TestEventKindJSONNames(t *testing.T) {
	out, err := json.Marshal(EvWDParked)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `"wd-parked"` {
		t.Fatalf("kind JSON = %s", out)
	}
	if EventKind(200).String() != "kind-200" {
		t.Fatalf("unknown kind String = %q", EventKind(200).String())
	}
}

func TestSnapshotAccessors(t *testing.T) {
	r := New()
	r.Counter("c").Add(9)
	r.Gauge("g").Set(4)
	s := r.Snapshot()
	if s.Counter("c") != 9 || s.Counter("missing") != 0 {
		t.Fatal("counter accessor wrong")
	}
	if s.Gauge("g") != 4 || s.Gauge("missing") != 0 {
		t.Fatal("gauge accessor wrong")
	}
	var nilSnap *Snapshot
	if nilSnap.Counter("c") != 0 || nilSnap.Gauge("g") != 0 {
		t.Fatal("nil snapshot accessors should return 0")
	}
	if _, ok := nilSnap.Histogram("h"); ok {
		t.Fatal("nil snapshot histogram lookup should miss")
	}
}

func TestMergeIsOrderIndependent(t *testing.T) {
	mk := func(c uint64, g uint64, obs ...uint64) *Snapshot {
		r := New()
		r.Counter("c").Add(c)
		r.Counter("only-" + string(rune('a'+c))).Add(1)
		r.Gauge("g").Set(g)
		h := r.Histogram("h", []uint64{10, 100})
		for _, v := range obs {
			h.Observe(v)
		}
		r.EnableTrace(2).Emit(0, EvWDInjected, 0, 0, 0)
		return r.Snapshot()
	}
	a, b := mk(1, 5, 3, 50), mk(2, 9, 200)
	ab := (&Snapshot{}).Merge(a).Merge(b)
	ba := (&Snapshot{}).Merge(b).Merge(a)
	if !ab.Equal(ba) {
		ja, _ := json.Marshal(ab)
		jb, _ := json.Marshal(ba)
		t.Fatalf("merge not commutative:\n%s\n%s", ja, jb)
	}
	if got := ab.Counter("c"); got != 3 {
		t.Fatalf("merged counter = %d, want 3", got)
	}
	if got := ab.Gauge("g"); got != 9 {
		t.Fatalf("merged gauge = %d, want max 9", got)
	}
	hp, _ := ab.Histogram("h")
	if hp.Count != 3 || hp.Sum != 253 {
		t.Fatalf("merged histogram = %+v", hp)
	}
	if len(ab.Events) != 0 || ab.EventsDropped != 2 {
		t.Fatalf("merged events = %d kept / %d dropped, want 0/2", len(ab.Events), ab.EventsDropped)
	}
	// Merging into nil starts a fresh aggregate.
	var nilSnap *Snapshot
	if got := nilSnap.Merge(a).Counter("c"); got != 1 {
		t.Fatalf("nil-receiver merge counter = %d, want 1", got)
	}
}

func TestCombineKeepsReceiverEvents(t *testing.T) {
	r := New()
	r.Counter("mc.write_ops").Add(7)
	r.Gauge("g").Set(4)
	r.EnableTrace(4).Emit(10, EvWDInjected, 1, 0, 0)
	base := r.Snapshot()

	aux := New()
	aux.Counter("exec.batches_published").Add(3)
	aux.Gauge("g").Set(9)
	out := base.Combine(aux.Snapshot())

	if got := out.Counter("mc.write_ops"); got != 7 {
		t.Fatalf("combined counter = %d, want 7", got)
	}
	if got := out.Counter("exec.batches_published"); got != 3 {
		t.Fatalf("combined aux counter = %d, want 3", got)
	}
	if got := out.Gauge("g"); got != 9 {
		t.Fatalf("combined gauge = %d, want max 9", got)
	}
	if len(out.Events) != 1 || out.EventsDropped != 0 {
		t.Fatalf("combine lost the receiver's event tail: %d kept / %d dropped", len(out.Events), out.EventsDropped)
	}
	// Neither input is mutated.
	if len(base.Events) != 1 || base.Counter("exec.batches_published") != 0 {
		t.Fatal("Combine mutated its receiver")
	}
	// Nil handling: nil aux is a no-op; nil receiver adopts aux instruments.
	if base.Combine(nil) != base {
		t.Fatal("nil other should return the receiver unchanged")
	}
	var nilSnap *Snapshot
	if got := nilSnap.Combine(aux.Snapshot()); got.Counter("exec.batches_published") != 3 || len(got.Events) != 0 {
		t.Fatalf("nil receiver combine = %+v", got)
	}
}

func TestWriteTable(t *testing.T) {
	r := New()
	r.Counter("mc.write_ops").Add(7)
	r.Histogram("mc.cascade_depth", []uint64{1, 2}).Observe(1)
	r.EnableTrace(4).Emit(10, EvWDFlushed, 3, 2, 1)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"mc.write_ops", "7", "mc.cascade_depth", "wd-flushed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	var nilSnap *Snapshot
	buf.Reset()
	if err := nilSnap.WriteTable(&buf); err != nil || !strings.Contains(buf.String(), "disabled") {
		t.Fatalf("nil snapshot table = %q, err %v", buf.String(), err)
	}
}

func TestMergeEventTails(t *testing.T) {
	ev := func(seq, time uint64) Event { return Event{Seq: seq, Time: time, Kind: EvWDInjected} }
	tails := [][]Event{
		{ev(0, 10), ev(1, 30), ev(2, 30)},
		{ev(5, 20), ev(6, 30)},
	}
	merged, dropped := MergeEventTails(4, tails, []uint64{2, 0})
	// total = 3+2+2 dropped = 7; keep last 4; base seq = 3.
	if dropped != 3 || len(merged) != 4 {
		t.Fatalf("dropped=%d len=%d, want 3,4", dropped, len(merged))
	}
	// Sorted by (Time, shard, Seq): t10s0, t20s1, t30s0#1, t30s0#2, t30s1 →
	// tail of 4 drops t10.
	wantTimes := []uint64{20, 30, 30, 30}
	for i, e := range merged {
		if e.Time != wantTimes[i] {
			t.Fatalf("merged[%d].Time = %d, want %d (%+v)", i, e.Time, wantTimes[i], merged)
		}
		if e.Seq != 3+uint64(i) {
			t.Fatalf("merged[%d].Seq = %d, want %d", i, e.Seq, 3+i)
		}
	}
	// Within t=30, shard 0's two events precede shard 1's, in Seq order.
	if merged[1].Seq != 4 { // renumbered; check source order via Time ties already
		t.Fatalf("tie-break renumbering wrong: %+v", merged)
	}

	// A single shard with capacity ≥ total is the identity modulo Seq rebase.
	one, d := MergeEventTails(8, [][]Event{{ev(3, 1), ev(4, 2)}}, []uint64{3})
	if d != 3 || len(one) != 2 || one[0].Time != 1 || one[1].Time != 2 {
		t.Fatalf("single-shard merge wrong: %+v dropped=%d", one, d)
	}

	// Zero capacity disables bounding only when non-positive... capacity<=0
	// keeps everything.
	all, d0 := MergeEventTails(0, tails, nil)
	if d0 != 0 || len(all) != 5 {
		t.Fatalf("unbounded merge: len=%d dropped=%d", len(all), d0)
	}
}
