package metrics

import (
	"fmt"
	"sort"

	"sdpcm/internal/snap"
)

// EncodeState serializes the registry's instrument values and the event-ring
// contents in name-sorted (deterministic) order. Nil-safe: a disabled
// registry encodes as absent.
func (r *Registry) EncodeState(e *snap.Encoder) {
	e.Begin("metrics.registry")
	e.Bool(r != nil)
	if r == nil {
		e.End()
		return
	}

	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	e.Uvarint(uint64(len(names)))
	for _, n := range names {
		e.String(n)
		e.U64(r.counters[n].v)
	}

	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	e.Uvarint(uint64(len(names)))
	for _, n := range names {
		e.String(n)
		e.U64(r.gauges[n].v)
	}

	names = names[:0]
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	e.Uvarint(uint64(len(names)))
	for _, n := range names {
		h := r.hists[n]
		e.String(n)
		e.Uvarint(uint64(len(h.bounds)))
		for _, b := range h.bounds {
			e.U64(b)
		}
		for _, c := range h.counts {
			e.U64(c)
		}
		e.U64(h.sum)
		e.U64(h.n)
	}

	e.Bool(r.trace != nil)
	if r.trace != nil {
		t := r.trace
		e.Int(cap(t.buf))
		e.U64(t.next)
		// Raw storage order, not emission order: ring positions are
		// addressed by next % cap, so the layout must survive verbatim.
		e.Uvarint(uint64(len(t.buf)))
		for _, ev := range t.buf {
			e.U64(ev.Seq)
			e.U64(ev.Time)
			e.Uvarint(uint64(ev.Kind))
			e.U64(ev.Addr)
			e.U64(ev.A)
			e.U64(ev.B)
		}
	}
	e.End()
}

// DecodeState restores instrument values written by EncodeState. The restore
// is in place — existing Counter/Gauge/Histogram handles held by
// already-instrumented components stay valid; instruments absent from the
// fresh registry are created. Histogram bounds must match the running
// configuration.
func (r *Registry) DecodeState(d *snap.Decoder) error {
	d.Begin("metrics.registry")
	present := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if present != (r != nil) {
		return fmt.Errorf("metrics: checkpoint registry presence %t does not match this run's %t", present, r != nil)
	}
	if !present {
		d.End()
		return d.Err()
	}

	nc := d.Uvarint()
	for i := uint64(0); i < nc && d.Err() == nil; i++ {
		name := d.String()
		r.Counter(name).v = d.U64()
	}
	ng := d.Uvarint()
	for i := uint64(0); i < ng && d.Err() == nil; i++ {
		name := d.String()
		r.Gauge(name).v = d.U64()
	}
	nh := d.Uvarint()
	for i := uint64(0); i < nh && d.Err() == nil; i++ {
		name := d.String()
		nb := d.Uvarint()
		bounds := make([]uint64, nb)
		for j := range bounds {
			bounds[j] = d.U64()
		}
		if d.Err() != nil {
			break
		}
		h := r.Histogram(name, bounds)
		if len(h.bounds) != len(bounds) {
			return fmt.Errorf("metrics: checkpoint histogram %q has %d bounds, this run has %d", name, len(bounds), len(h.bounds))
		}
		for j, b := range bounds {
			if h.bounds[j] != b {
				return fmt.Errorf("metrics: checkpoint histogram %q bounds differ from this run's", name)
			}
		}
		for j := range h.counts {
			h.counts[j] = d.U64()
		}
		h.sum = d.U64()
		h.n = d.U64()
	}

	hasTrace := d.Bool()
	if d.Err() == nil && hasTrace != (r.trace != nil) {
		return fmt.Errorf("metrics: checkpoint trace presence %t does not match this run's %t", hasTrace, r.trace != nil)
	}
	if hasTrace && d.Err() == nil {
		t := r.trace
		if c := d.Int(); d.Err() == nil && c != cap(t.buf) {
			return fmt.Errorf("metrics: checkpoint trace capacity %d does not match this run's %d", c, cap(t.buf))
		}
		t.next = d.U64()
		n := d.Uvarint()
		if d.Err() == nil && n > uint64(cap(t.buf)) {
			return fmt.Errorf("metrics: checkpoint trace holds %d events, capacity is %d", n, cap(t.buf))
		}
		t.buf = t.buf[:0]
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			t.buf = append(t.buf, Event{
				Seq:  d.U64(),
				Time: d.U64(),
				Kind: EventKind(d.Uvarint()),
				Addr: d.U64(),
				A:    d.U64(),
				B:    d.U64(),
			})
		}
	}
	d.End()
	return d.Err()
}
