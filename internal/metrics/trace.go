package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
)

// EventKind labels one event-trace record type. The set mirrors the
// controller's decision points: where write disturbance is injected and
// detected, how LazyCorrection and cascades resolve it, how PreRead and
// write cancellation steal bank time, and the write queue's life cycle.
type EventKind uint8

const (
	// EvWDInjected: the disturbance engine applied persistent bit-line
	// flips to a vertically adjacent line. Addr = victim line, A = flips.
	EvWDInjected EventKind = iota
	// EvWDDetected: a post-write verification read found disturbed cells.
	// Addr = victim line, A = new error count, B = cascade depth.
	EvWDDetected
	// EvWDParked: LazyCorrection absorbed the errors into free ECP entries.
	// Addr = victim line, A = error count, B = entries occupied after.
	EvWDParked
	// EvWDFlushed: a correction write RESET the line's pending errors.
	// Addr = victim line, A = corrected cell count, B = cascade depth.
	EvWDFlushed
	// EvCascadeStep: a correction write triggered verification of its own
	// neighbours. Addr = corrected line, A = next depth.
	EvCascadeStep
	// EvPreReadIssued: a pre-write read occupied bank idle time.
	// Addr = neighbour line read, A = entry id.
	EvPreReadIssued
	// EvPreReadForwarded: a pre-write read was satisfied from a queued
	// write's buffer at no bank cost. Addr = neighbour line, A = entry id.
	EvPreReadForwarded
	// EvPreReadHit: a write op started with both pre-reads already buffered
	// (the §4.3 payoff). Addr = written line.
	EvPreReadHit
	// EvPreReadCanceled: a demand read aborted an in-flight pre-read.
	// Addr = neighbour line being read, A = entry id.
	EvPreReadCanceled
	// EvWriteCancel: a demand read preempted a lazy drain at a write-op
	// boundary (§6.8). Addr = read line.
	EvWriteCancel
	// EvQueueEnqueue: a write entered a bank's write queue.
	// Addr = written line, A = queue depth after.
	EvQueueEnqueue
	// EvQueueStall: a write found its bank queue full and triggered a
	// drain, blocking reads (bursty) or racing them (write cancellation).
	// Addr = incoming line, A = queue depth.
	EvQueueStall
	// EvQueueDrain: one queued write op executed. Addr = written line,
	// A = residency cycles in queue, B = 1 if inside a bursty drain.
	EvQueueDrain
)

var eventKindNames = [...]string{
	EvWDInjected:       "wd-injected",
	EvWDDetected:       "wd-detected",
	EvWDParked:         "wd-parked",
	EvWDFlushed:        "wd-flushed",
	EvCascadeStep:      "cascade-step",
	EvPreReadIssued:    "preread-issued",
	EvPreReadForwarded: "preread-forwarded",
	EvPreReadHit:       "preread-hit",
	EvPreReadCanceled:  "preread-canceled",
	EvWriteCancel:      "write-cancel",
	EvQueueEnqueue:     "queue-enqueue",
	EvQueueStall:       "queue-stall",
	EvQueueDrain:       "queue-drain",
}

// String returns the event kind's stable wire name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind-%d", uint8(k))
}

// MarshalJSON encodes the kind as its wire name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON accepts a wire name, so /events payloads and snapshot JSON
// round-trip through Event.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range eventKindNames {
		if name == s {
			*k = EventKind(i)
			return nil
		}
	}
	return fmt.Errorf("metrics: unknown event kind %q", s)
}

// Event is one trace record. Seq is the global emission index (0-based,
// monotonic even after the ring wraps); Time is the simulated cycle of the
// emitting operation; Addr and A/B are kind-specific (see EventKind docs).
type Event struct {
	Seq  uint64    `json:"seq"`
	Time uint64    `json:"t"`
	Kind EventKind `json:"kind"`
	Addr uint64    `json:"addr"`
	A    uint64    `json:"a,omitempty"`
	B    uint64    `json:"b,omitempty"`
}

// String renders the event with its kind-specific Addr/A/B semantics spelled
// out (see the EventKind docs), e.g. "wd-parked line=93 errors=2 occupied=4".
// Seq and Time are left to the caller — table renderers print them as
// columns of their own.
func (e Event) String() string {
	switch e.Kind {
	case EvWDInjected:
		return fmt.Sprintf("%s line=%d flips=%d", e.Kind, e.Addr, e.A)
	case EvWDDetected:
		return fmt.Sprintf("%s line=%d errors=%d depth=%d", e.Kind, e.Addr, e.A, e.B)
	case EvWDParked:
		return fmt.Sprintf("%s line=%d errors=%d occupied=%d", e.Kind, e.Addr, e.A, e.B)
	case EvWDFlushed:
		return fmt.Sprintf("%s line=%d corrected=%d depth=%d", e.Kind, e.Addr, e.A, e.B)
	case EvCascadeStep:
		return fmt.Sprintf("%s line=%d next-depth=%d", e.Kind, e.Addr, e.A)
	case EvPreReadIssued, EvPreReadForwarded, EvPreReadCanceled:
		return fmt.Sprintf("%s line=%d entry=%d", e.Kind, e.Addr, e.A)
	case EvPreReadHit:
		return fmt.Sprintf("%s line=%d", e.Kind, e.Addr)
	case EvWriteCancel:
		return fmt.Sprintf("%s line=%d queued=%d", e.Kind, e.Addr, e.A)
	case EvQueueEnqueue:
		return fmt.Sprintf("%s line=%d depth=%d", e.Kind, e.Addr, e.A)
	case EvQueueStall:
		return fmt.Sprintf("%s line=%d depth=%d", e.Kind, e.Addr, e.A)
	case EvQueueDrain:
		if e.B == 1 {
			return fmt.Sprintf("%s line=%d residency=%d bursty", e.Kind, e.Addr, e.A)
		}
		return fmt.Sprintf("%s line=%d residency=%d", e.Kind, e.Addr, e.A)
	}
	return fmt.Sprintf("%s addr=%d a=%d b=%d", e.Kind, e.Addr, e.A, e.B)
}

// Trace is a bounded ring buffer of events keeping the most recent cap
// records. A nil *Trace is the disabled form: Emit is a no-op.
type Trace struct {
	buf  []Event
	next uint64 // total events emitted
}

func newTrace(cap int) *Trace {
	return &Trace{buf: make([]Event, 0, cap)}
}

// Emit appends an event, overwriting the oldest once the buffer is full.
// No-op on a nil trace.
func (t *Trace) Emit(time uint64, kind EventKind, addr, a, b uint64) {
	if t == nil {
		return
	}
	e := Event{Seq: t.next, Time: time, Kind: kind, Addr: addr, A: a, B: b}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next%uint64(cap(t.buf))] = e
	}
	t.next++
}

// Len returns the number of buffered events (0 on a nil trace).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Dropped returns how many emitted events have been overwritten.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.next - uint64(len(t.buf))
}

// MergeEventTails combines per-shard event-ring tails into one bounded tail
// of at most capacity events, as if a single ring of that capacity had
// observed the union. tails[i] is shard i's buffered events (oldest first)
// and droppedBefore[i] how many that shard's ring already overwrote. The
// merge is canonical — events sort by (Time, shard index, per-shard Seq) and
// the result keeps the latest `capacity` with globally renumbered Seq — so
// any shard partition of the same per-bank event streams produces the same
// tail. Kept-event ordering is by simulated time, not global emission order
// (which per-bank rings cannot reconstruct); within one shard relative order
// is preserved.
func MergeEventTails(capacity int, tails [][]Event, droppedBefore []uint64) ([]Event, uint64) {
	type tagged struct {
		e     Event
		shard int
	}
	var all []tagged
	total := uint64(0)
	for i, tl := range tails {
		total += uint64(len(tl))
		if i < len(droppedBefore) {
			total += droppedBefore[i]
		}
		for _, e := range tl {
			all = append(all, tagged{e, i})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		x, y := all[a], all[b]
		if x.e.Time != y.e.Time {
			return x.e.Time < y.e.Time
		}
		if x.shard != y.shard {
			return x.shard < y.shard
		}
		return x.e.Seq < y.e.Seq
	})
	if capacity > 0 && len(all) > capacity {
		all = all[len(all)-capacity:]
	}
	out := make([]Event, len(all))
	base := total - uint64(len(all))
	for i, t := range all {
		out[i] = t.e
		out[i].Seq = base + uint64(i)
	}
	return out, base
}

// Events returns the buffered events in emission order (oldest first).
// The slice is a copy.
func (t *Trace) Events() []Event {
	if t == nil || len(t.buf) == 0 {
		return nil
	}
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		return append(out, t.buf...)
	}
	start := t.next % uint64(cap(t.buf))
	out = append(out, t.buf[start:]...)
	out = append(out, t.buf[:start]...)
	return out
}
