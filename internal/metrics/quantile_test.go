package metrics

import (
	"math"
	"testing"
)

func TestQuantileEmptyAndClamp(t *testing.T) {
	h := &Histogram{}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v", got)
	}
	r := New()
	hh := r.Histogram("x", []uint64{10, 20})
	hh.Observe(5)
	// q outside [0,1] clamps rather than panicking or extrapolating.
	if lo, hi := hh.Quantile(-3), hh.Quantile(7); lo > hi {
		t.Fatalf("clamped quantiles inverted: %v > %v", lo, hi)
	}
}

func TestQuantileUniformInterpolation(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []uint64{100})
	// 100 samples spread uniformly through the (0,100] bucket: the linear
	// interpolation should place p50 near the middle of the bucket.
	for i := 0; i < 100; i++ {
		h.Observe(uint64(i + 1))
	}
	p50 := h.Quantile(0.5)
	if p50 < 40 || p50 > 60 {
		t.Fatalf("p50 = %v, want ~50", p50)
	}
	if p10, p90 := h.Quantile(0.1), h.Quantile(0.9); !(p10 < p50 && p50 < p90) {
		t.Fatalf("quantiles not ordered: %v %v %v", p10, p50, p90)
	}
}

func TestQuantileAcrossBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []uint64{10, 100, 1000})
	for i := 0; i < 90; i++ {
		h.Observe(5) // 90 samples in (0,10]
	}
	for i := 0; i < 10; i++ {
		h.Observe(500) // 10 samples in (100,1000]
	}
	if p50 := h.Quantile(0.5); p50 > 10 {
		t.Fatalf("p50 = %v, want inside the first bucket", p50)
	}
	p95 := h.Quantile(0.95)
	if p95 <= 100 || p95 > 1000 {
		t.Fatalf("p95 = %v, want inside (100,1000]", p95)
	}
}

func TestQuantileOverflowBucketSaturates(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []uint64{10, 100})
	for i := 0; i < 10; i++ {
		h.Observe(5000) // all samples above the top bound
	}
	// Prometheus convention: quantiles falling in the overflow bucket report
	// the highest finite bound rather than inventing a value.
	if got := h.Quantile(0.99); got != 100 {
		t.Fatalf("overflow quantile = %v, want 100", got)
	}
}

func TestHistogramPointQuantileMatchesLive(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []uint64{10, 100, 1000})
	for _, v := range []uint64{3, 8, 15, 40, 70, 200, 600, 2000} {
		h.Observe(v)
	}
	hp, ok := r.Snapshot().Histogram("lat")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 1} {
		if live, snap := h.Quantile(q), hp.Quantile(q); math.Abs(live-snap) > 1e-9 {
			t.Fatalf("q=%v: live %v != snapshot %v", q, live, snap)
		}
	}
}
