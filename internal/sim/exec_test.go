package sim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sdpcm/internal/alloc"
	"sdpcm/internal/core"
	"sdpcm/internal/mc"
	"sdpcm/internal/pcm"
	"sdpcm/internal/rng"
	"sdpcm/internal/trace"
	"sdpcm/internal/workload"
)

// execSide is a bank plane plus one executor over it, built the way sim.Run
// builds them, so executor edge cases can be driven op-by-op without the
// core model in the way. The inline side routes every controller through a
// single shared tag mirror and applies ownership changes at issue time —
// exactly when the live allocator would have mutated.
type execSide struct {
	p       *bankPlane
	exec    bankExec
	mirror0 *tagMirror // inline only
	mirrors []*tagMirror
}

func newExecSide(t *testing.T, cfg Config, shards int) *execSide {
	t.Helper()
	root := rng.New(cfg.Seed)
	dev, err := pcm.NewDevice(pcm.Config{
		Pages:    cfg.MemPages,
		FillSeed: root.SplitLabeled("fill").Uint64(),
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := alloc.New(cfg.MemPages, cfg.RegionPages)
	if err != nil {
		t.Fatal(err)
	}
	bankRngs := root.SplitLabeled("mc").SplitLabeledSeq("bank", pcm.NumBanks)
	mcCfg := func() mc.Config { return cfg.Scheme.MCConfig(cfg.WriteQueueCap) }
	s := &execSide{}
	if shards > 1 {
		s.mirrors = make([]*tagMirror, shards)
		for i := range s.mirrors {
			s.mirrors[i] = newTagMirror(a)
		}
		resolve := func(bank int) mc.RegionResolver { return s.mirrors[bank%shards] }
		s.p, err = newBankPlane(cfg, dev, mcCfg, resolve, bankRngs)
		if err != nil {
			t.Fatal(err)
		}
		s.exec = newShardExec(s.p, s.mirrors, cfg)
	} else {
		s.mirror0 = newTagMirror(a)
		resolve := func(bank int) mc.RegionResolver { return s.mirror0 }
		s.p, err = newBankPlane(cfg, dev, mcCfg, resolve, bankRngs)
		if err != nil {
			t.Fatal(err)
		}
		s.exec = newInlineExec(s.p, cfg.CheckIntegrity)
	}
	return s
}

// ownerChange mutates region ownership the way each executor expects: the
// sharded side broadcasts through the op stream, the inline side applies to
// its live resolver at issue time.
func (s *execSide) ownerChange(region int, tg alloc.Tag, present bool) {
	if s.mirror0 != nil {
		s.mirror0.apply(region, tg, present)
		return
	}
	s.exec.ownerChange(region, tg, present)
}

// stateFingerprint closes the executor, flushes the plane and renders the
// merged statistics plus the stored content of every line in [0, lines).
func (s *execSide) stateFingerprint(t *testing.T, now uint64, lines int) string {
	t.Helper()
	s.exec.close()
	end := s.p.flushAll(now)
	mcS, devS, ecpS, wdS := s.p.mergedStats()
	out := fmt.Sprintf("end=%d mc=%+v dev=%+v ecp=%+v wd=%+v\n", end, mcS, devS, ecpS, wdS)
	for l := 0; l < lines; l++ {
		a := pcm.LineAddr(l)
		out += fmt.Sprintf("%d:%x\n", l, s.p.ctrlFor(a).PeekData(a))
	}
	return out
}

func execPairCfg() Config {
	return Config{
		Scheme:        core.AllThree(6, alloc.Tag23),
		MemPages:      1 << 10,
		RegionPages:   64,
		WriteQueueCap: 8,
		Seed:          77,
	}
}

// TestExecRingWraparound drives far more posted ops through one shard than
// its ring holds — with no demand reads, so nothing ever resets the window —
// forcing the free-running indices to wrap several times. Run with -race to
// double as the ring's publication-protocol check. The inline twin pins
// equivalence.
func TestExecRingWraparound(t *testing.T) {
	cfg := execPairCfg()
	const ops = 4 * ringCap
	lines := 4 * pcm.LinesPerPage
	drive := func(s *execSide) string {
		mut := workload.NewMutator(0.2, 9)
		for i := 0; i < ops; i++ {
			a := pcm.LineAddr(i % lines)
			s.exec.write(uint64(i), a, a, mut.DrawMutation())
			if i%97 == 0 {
				// Start-Gap-shaped copy: both lines share a page (page p
				// lives wholly in bank p mod NumBanks), so they share a bank.
				to := a&^pcm.LineAddr(pcm.LinesPerPage-1) | pcm.LineAddr(int(a+1)%pcm.LinesPerPage)
				s.exec.copyLine(uint64(i), a, to)
			}
		}
		s.exec.barrier()
		return s.stateFingerprint(t, ops, lines)
	}
	inline := drive(newExecSide(t, cfg, 1))
	for _, shards := range []int{2, 16} {
		if got := drive(newExecSide(t, cfg, shards)); got != inline {
			t.Errorf("shards=%d: state diverged from inline after ring wraparound", shards)
		}
	}
}

// TestExecBarrierAfterOwnerChange pins the ordering edge the ISSUE calls
// out: a barrier issued immediately after an ownerChange — with no ops in
// between — must still apply the broadcast to every shard mirror before
// returning, and must not deadlock on shards whose rings were empty.
func TestExecBarrierAfterOwnerChange(t *testing.T) {
	cfg := execPairCfg()
	s := newExecSide(t, cfg, 8)
	for round := 0; round < 50; round++ {
		region := (round % 4) * cfg.RegionPages
		tg := alloc.Tag{N: 1 + round%2, M: 2}
		s.exec.ownerChange(region, tg, true)
		s.exec.barrier()
		for i, m := range s.mirrors {
			if got := m.RegionTag(pcm.PageAddr(region)); got != tg {
				t.Fatalf("round %d: mirror %d saw tag %+v after barrier, want %+v", round, i, got, tg)
			}
		}
	}
	// Retag to absent and re-check the broadcast propagates that too.
	s.exec.ownerChange(0, alloc.Tag{N: 1, M: 2}, false)
	s.exec.barrier()
	for i, m := range s.mirrors {
		if got := m.RegionTag(0); got != alloc.Tag11 {
			t.Fatalf("mirror %d still resolves %+v after release", i, got)
		}
	}
	s.exec.close()
}

// TestExecRandomizedBatchBoundaries is the batch-boundary stress: random op
// soups at random shard counts and batch windows (including window 1, which
// publishes every op, and windows straddling every power of two) must leave
// plane state and every demand-read result byte-identical to the inline
// executor. Read replies are compared in program order, so a reordering
// anywhere in the transport shows up as a concrete diverging op index.
func TestExecRandomizedBatchBoundaries(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			cfg := execPairCfg()
			cfg.CheckIntegrity = true
			shards := []int{2, 3, 4, 8, 16}[r.Intn(5)]
			cfg.BatchWindow = []int{1, 2, 3, 7, 31, 256}[r.Intn(6)]
			lines := 8 * pcm.LinesPerPage
			const ops = 6000

			type readResult struct {
				done uint64
				data pcm.Line
				err  bool
			}
			drive := func(s *execSide, muts []workload.Mutation, kinds []int, addrs []pcm.LineAddr) ([]readResult, string) {
				var reads []readResult
				mi := 0
				for i := 0; i < ops; i++ {
					a := addrs[i]
					now := uint64(i)
					switch kinds[i] {
					case 0: // write
						s.exec.write(now, a, a, muts[mi])
						mi++
					case 1: // read (with lookahead, as the sim loop hints)
						s.exec.hintRead()
						done, data, err := s.exec.read(now, a, a)
						reads = append(reads, readResult{done, data, err != nil})
					case 2: // same-page copy
						to := a&^pcm.LineAddr(pcm.LinesPerPage-1) | pcm.LineAddr(int(a+1)%pcm.LinesPerPage)
						s.exec.copyLine(now, a, to)
					case 3: // ownership broadcast
						region := (int(a) / pcm.LinesPerPage / cfg.RegionPages) * cfg.RegionPages
						s.ownerChange(region, alloc.Tag{N: 2, M: 3}, i%2 == 0)
					case 4:
						s.exec.barrier()
					}
				}
				return reads, s.stateFingerprint(t, ops, lines)
			}

			// Pre-draw the op soup once so both sides replay the identical
			// program: kinds, addresses and mutation payloads.
			kinds := make([]int, ops)
			addrs := make([]pcm.LineAddr, ops)
			var muts []workload.Mutation
			mut := workload.NewMutator(0.25, uint64(seed))
			for i := range kinds {
				p := r.Intn(100)
				switch {
				case p < 62:
					kinds[i] = 0
					muts = append(muts, mut.DrawMutation())
				case p < 82:
					kinds[i] = 1
				case p < 90:
					kinds[i] = 2
				case p < 96:
					kinds[i] = 3
				default:
					kinds[i] = 4
				}
				addrs[i] = pcm.LineAddr(r.Intn(lines))
			}

			inlineReads, inlineState := drive(newExecSide(t, cfg, 1), muts, kinds, addrs)
			shardReads, shardState := drive(newExecSide(t, cfg, shards), muts, kinds, addrs)
			if len(inlineReads) != len(shardReads) {
				t.Fatalf("read count diverged: %d inline, %d sharded", len(inlineReads), len(shardReads))
			}
			for i := range inlineReads {
				if inlineReads[i] != shardReads[i] {
					t.Fatalf("read %d diverged (shards=%d window=%d): inline %+v, sharded %+v",
						i, shards, cfg.BatchWindow, inlineReads[i], shardReads[i])
				}
			}
			if inlineState != shardState {
				t.Fatalf("plane state diverged (shards=%d window=%d)", shards, cfg.BatchWindow)
			}
		})
	}
}

// TestExecZeroRefSharded: a sharded run that never posts a single op must
// start and join its workers cleanly at high shard counts, report zero
// work, and (with collection on) export an all-zero ExecMetrics snapshot
// rather than nil or garbage.
func TestExecZeroRefSharded(t *testing.T) {
	for _, shards := range []int{8, 16} {
		cfg := Config{
			Scheme:         core.Baseline(),
			Streams:        []trace.Stream{trace.NewSliceStream(nil), trace.NewSliceStream(nil)},
			RefsPerCore:    100,
			MemPages:       1 << 16,
			RegionPages:    1024,
			Seed:           3,
			Shards:         shards,
			CollectMetrics: true,
		}
		r := run(t, cfg)
		if math.IsNaN(r.CPI) || r.CPI != 0 || r.Instructions != 0 || r.MC.WriteOps != 0 {
			t.Fatalf("shards=%d: zero-ref run did work: %+v", shards, r)
		}
		if r.ExecMetrics == nil {
			t.Fatalf("shards=%d: ExecMetrics nil with collection on", shards)
		}
		if n := r.ExecMetrics.Counter("exec.ops_published"); n != 0 {
			t.Fatalf("shards=%d: %d ops published on a zero-ref run", shards, n)
		}
		if g := r.ExecMetrics.Gauge("exec.shards"); g != uint64(shards) {
			t.Fatalf("shards=%d: exec.shards gauge = %d", shards, g)
		}
	}
}

// TestExecMetricsPlacement pins the split between the two snapshots: the
// deterministic Result.Metrics must never contain executor-behaviour
// counters (they would break byte-identity across shard counts), and
// ExecMetrics appears exactly when a sharded run collects metrics.
func TestExecMetricsPlacement(t *testing.T) {
	cfg := quickCfg(core.LazyC(6), "mcf")
	cfg.RefsPerCore = 500
	cfg.CollectMetrics = true
	inline := run(t, cfg)
	if inline.ExecMetrics != nil {
		t.Fatal("inline run exported ExecMetrics")
	}
	cfg.Shards = 8
	sharded := run(t, cfg)
	if sharded.ExecMetrics == nil {
		t.Fatal("sharded run with CollectMetrics exported no ExecMetrics")
	}
	if n := sharded.ExecMetrics.Counter("exec.reads_inline") + sharded.ExecMetrics.Counter("exec.reads_rendezvous"); n == 0 {
		t.Fatal("sharded run recorded no demand reads in ExecMetrics")
	}
	for _, c := range sharded.Metrics.Counters {
		if len(c.Name) >= 5 && c.Name[:5] == "exec." {
			t.Fatalf("deterministic snapshot contains executor counter %s", c.Name)
		}
	}
	off := cfg
	off.CollectMetrics = false
	if r := run(t, off); r.ExecMetrics != nil {
		t.Fatal("ExecMetrics exported with collection off")
	}
}
