package sim

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdpcm/internal/alloc"
	"sdpcm/internal/core"
	"sdpcm/internal/mc"
	"sdpcm/internal/pcm"
	"sdpcm/internal/snap"
	"sdpcm/internal/trace"
	"sdpcm/internal/workload"
)

var updateCheckpointFixture = flag.Bool("update-checkpoint", false,
	"regenerate testdata/checkpoint_v1.bin (run after bumping checkpointVersion)")

// checkpointCfg exercises every checkpointed subsystem: ECP parking, the WD
// engine and heatmap, the DIN codec, wear leveling, metrics registries with
// event rings, and the integrity shadow.
func checkpointCfg() Config {
	cfg := quickCfg(core.AllThree(6, alloc.Tag23), "mcf")
	cfg.RefsPerCore = 2000
	cfg.CollectMetrics = true
	cfg.TraceEvents = 32
	cfg.HeatmapRegions = 8
	cfg.CheckIntegrity = true
	cfg.WearLevelPsi = 64
	return cfg
}

// totalRefs of checkpointCfg is 4 cores × 2000 = 8000; an interval of 4101
// fires exactly once, at ~51% of the run, and is never overwritten — an
// in-process stand-in for killing the run mid-flight.
const midRunInterval = 4101

// TestResumeDeterminismMatrix is the tentpole contract: a run resumed from a
// mid-run checkpoint produces a Result byte-identical to the uninterrupted
// run, at every combination of writer and resumer shard counts — including
// cross-shard resume (checkpoint under Shards=1, resume under Shards=4 and
// vice versa). The checkpointing run itself must also be unperturbed.
func TestResumeDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("resume matrix is not short")
	}
	base := checkpointCfg()
	want := fullFingerprint(t, run(t, base))

	for _, writeShards := range []int{1, 4} {
		ckptPath := filepath.Join(t.TempDir(), "mid.ckpt")
		w := base
		w.Shards = writeShards
		w.CheckpointPath = ckptPath
		w.CheckpointEvery = midRunInterval
		if got := fullFingerprint(t, run(t, w)); got != want {
			t.Errorf("writeShards=%d: checkpointing perturbed the run: %s != %s", writeShards, got, want)
		}
		if _, err := os.Stat(ckptPath); err != nil {
			t.Fatalf("writeShards=%d: no checkpoint written: %v", writeShards, err)
		}
		for _, resumeShards := range []int{1, 4} {
			r := base
			r.Shards = resumeShards
			r.ResumeFrom = ckptPath
			if got := fullFingerprint(t, run(t, r)); got != want {
				t.Errorf("writeShards=%d resumeShards=%d: resumed fingerprint %s != %s",
					writeShards, resumeShards, got, want)
			}
		}
	}
}

// TestResumeTraceReplay covers the replay path: caller-provided streams are
// fast-forwarded by consumed-record count and the write-back mutators
// restore their RNG positions.
func TestResumeTraceReplay(t *testing.T) {
	spec, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenerator(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	recs := workload.Capture(g, 3000)
	mk := func() Config {
		return Config{
			Scheme:         core.LazyC(6),
			Streams:        []trace.Stream{trace.NewSliceStream(recs)},
			RefsPerCore:    len(recs),
			MemPages:       1 << 16,
			RegionPages:    1024,
			Seed:           13,
			CollectMetrics: true,
		}
	}
	want := fingerprint(t, run(t, mk()))

	ckptPath := filepath.Join(t.TempDir(), "replay.ckpt")
	w := mk()
	w.CheckpointPath = ckptPath
	w.CheckpointEvery = 1501 // once, at ~50% of the 3000 records
	run(t, w)

	r := mk()
	r.ResumeFrom = ckptPath
	r.Shards = 4
	if got := fingerprint(t, run(t, r)); got != want {
		t.Errorf("replay resume diverged: %s != %s", got, want)
	}
}

// TestResumeConfigMismatch: a checkpoint must refuse to resume a different
// configuration, with an error the sweep runner can recognise (ErrResume)
// to fall back to a cold start.
func TestResumeConfigMismatch(t *testing.T) {
	ckptPath := filepath.Join(t.TempDir(), "mismatch.ckpt")
	w := checkpointCfg()
	w.CheckpointPath = ckptPath
	w.CheckpointEvery = midRunInterval
	run(t, w)

	r := checkpointCfg()
	r.Seed++
	r.ResumeFrom = ckptPath
	_, err := Run(r)
	if !errors.Is(err, ErrResume) {
		t.Fatalf("resume with different seed: err = %v, want ErrResume", err)
	}
	if !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("error does not explain the mismatch: %v", err)
	}
}

// TestResumeMissingFile: a nonexistent checkpoint wraps ErrResume too.
func TestResumeMissingFile(t *testing.T) {
	cfg := quickCfg(core.Baseline(), "lbm")
	cfg.RefsPerCore = 100
	cfg.ResumeFrom = filepath.Join(t.TempDir(), "absent.ckpt")
	if _, err := Run(cfg); !errors.Is(err, ErrResume) {
		t.Fatalf("err = %v, want ErrResume", err)
	}
}

// fixtureCfg is the golden checkpoint's configuration: small but touching
// every serialized subsystem. Changing it requires regenerating the fixture.
func fixtureCfg() Config {
	cfg := quickCfg(core.AllThree(6, alloc.Tag23), "mcf")
	cfg.RefsPerCore = 400
	cfg.CollectMetrics = true
	cfg.TraceEvents = 16
	cfg.HeatmapRegions = 4
	cfg.CheckIntegrity = true
	cfg.WearLevelPsi = 64
	return cfg
}

const fixturePath = "testdata/checkpoint_v1.bin"

// fixtureInterval fires once at 801 of the 1600 total references.
const fixtureInterval = 801

// TestCheckpointFixtureCompat decodes the committed golden checkpoint on
// every test run, pinning the on-disk format: an incompatible layout change
// fails here (with a decode error, not a panic or silent garbage) until
// checkpointVersion is bumped and the fixture regenerated with
// `go test ./internal/sim -run Fixture -update-checkpoint`.
func TestCheckpointFixtureCompat(t *testing.T) {
	if *updateCheckpointFixture {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		w := fixtureCfg()
		w.CheckpointPath = fixturePath
		w.CheckpointEvery = fixtureInterval
		run(t, w)
		t.Logf("regenerated %s", fixturePath)
	}
	if _, err := os.Stat(fixturePath); err != nil {
		t.Fatalf("golden checkpoint missing (regenerate with -update-checkpoint): %v", err)
	}

	want := fullFingerprint(t, run(t, fixtureCfg()))
	r := fixtureCfg()
	r.ResumeFrom = fixturePath
	if got := fullFingerprint(t, run(t, r)); got != want {
		t.Errorf("resume from golden checkpoint diverged from the uninterrupted run: %s != %s", got, want)
	}
}

// TestCheckpointVersionError: a future-versioned file fails with a typed,
// versioned error — never a panic and never silently decoded garbage.
func TestCheckpointVersionError(t *testing.T) {
	data, err := os.ReadFile(fixturePath)
	if err != nil {
		t.Fatalf("golden checkpoint missing: %v", err)
	}
	bad := append([]byte(nil), data...)
	// Version field: u32 LE at bytes 4..8 of the header.
	bad[4], bad[5], bad[6], bad[7] = 99, 0, 0, 0
	badPath := filepath.Join(t.TempDir(), "future.ckpt")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := fixtureCfg()
	cfg.ResumeFrom = badPath
	_, err = Run(cfg)
	if !errors.Is(err, ErrResume) {
		t.Fatalf("err = %v, want ErrResume", err)
	}
	var ve *snap.VersionError
	if !errors.As(err, &ve) || ve.Got != 99 {
		t.Fatalf("err = %v, want *snap.VersionError with Got=99", err)
	}
	if !strings.Contains(err.Error(), "unsupported checkpoint version 99") {
		t.Fatalf("error message %q lacks the versioned explanation", err)
	}
}

// TestCheckpointUnsupportedPolicy: an opaque stateful correction policy is
// refused up front rather than silently dropped across a resume.
func TestCheckpointUnsupportedPolicy(t *testing.T) {
	cfg := quickCfg(core.Baseline(), "lbm")
	cfg.RefsPerCore = 100
	cfg.Scheme.Policy = func(m *mc.Config) { m.Correction = opaquePolicy{} }
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "x.ckpt")
	cfg.CheckpointEvery = 50
	if _, err := Run(cfg); !errors.Is(err, ErrCheckpointUnsupported) {
		t.Fatalf("err = %v, want ErrCheckpointUnsupported", err)
	}
	// The same configuration without checkpointing must still run.
	cfg.CheckpointPath, cfg.CheckpointEvery = "", 0
	run(t, cfg)
}

// opaquePolicy is a plugin correction policy that does not declare its
// state through mc.PolicyState.
type opaquePolicy struct{}

func (opaquePolicy) Absorb(ctx mc.PolicyContext, addr pcm.LineAddr, flips pcm.Mask, newBits []int, depth int) (int, bool) {
	return 0, false
}
