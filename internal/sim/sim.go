// Package sim is the full-system simulator of §5.1: eight in-order cores
// replaying calibrated main-memory reference streams against the SD-PCM
// memory controller, with per-process address spaces allocated by the
// WD-aware buddy system and the (n:m) tag flowing TLB → controller.
//
// Cores are single-issue and in-order (Table 2): non-memory instructions
// cost one cycle, demand reads block the core until the controller returns
// data, and writes are posted (they stall the core only indirectly, by
// write bursts blocking that bank's reads). Cores interact only through
// banks, so the simulation processes core events in global time order from
// a small binary heap — a conservative event-driven model that needs no
// rollback.
package sim

import (
	"container/heap"
	"fmt"

	"sdpcm/internal/alloc"
	"sdpcm/internal/core"
	"sdpcm/internal/ecp"
	"sdpcm/internal/mc"
	"sdpcm/internal/metrics"
	"sdpcm/internal/pcm"
	"sdpcm/internal/rng"
	"sdpcm/internal/topo"
	"sdpcm/internal/trace"
	"sdpcm/internal/vm"
	"sdpcm/internal/wd"
	"sdpcm/internal/weargap"
	"sdpcm/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	// Scheme is the design point under test.
	Scheme core.Scheme
	// Mix names the per-core benchmarks (§5.2: one copy per core).
	// Ignored when Streams is set.
	Mix workload.MixSpec
	// Streams replays pre-captured traces instead of live generators, one
	// stream per core (the sdpcm-trace workflow). Replayed traces carry no
	// data payloads; write-backs are synthesised with MutateChunkProb.
	Streams []trace.Stream
	// MutateChunkProb is the per-16-bit-chunk rewrite probability used for
	// replayed writes (<=0 selects a typical 0.15).
	MutateChunkProb float64
	// RefsPerCore is the number of main-memory references each core
	// replays (the paper uses 10M; benches use less, shape-preserving).
	RefsPerCore int
	// Topology, when set to a non-default spec, runs the multi-module
	// simulator: each module gets its own device, allocator, per-bank
	// controllers and labeled RNG subtree, cores are assigned to modules
	// round-robin, and per-module link latency is charged on every request
	// and response. Nil (or topo.Default()) selects the classic
	// single-DIMM path with byte-identical results to earlier versions.
	Topology *topo.Spec
	// MemPages is the device size in pages (default 2^21 = 8 GB).
	MemPages int
	// RegionPages is the (n:m) marking-region span (default 16384 pages =
	// 64 MB as in §4.4).
	RegionPages int
	// WriteQueueCap per bank (default 32, Table 2).
	WriteQueueCap int
	// Shards selects the intra-run parallel executor: banks are partitioned
	// into Shards groups (bank b → shard b % Shards), each group's
	// controller work running on its own goroutine behind a conservative
	// bounded-lag window. Shards <= 1 runs the same per-bank-decomposed code
	// on one goroutine; values above pcm.NumBanks are clamped. The Result is
	// byte-identical — stats, metrics snapshot, event trace, heatmap —
	// across every shard count and GOMAXPROCS: sharding changes wall-clock
	// speed, never simulated behavior.
	Shards int
	// BatchWindow caps the sharded executor's adaptive batch window: the
	// number of ops a shard accumulates before a publication when no demand
	// read is pending (the window starts small and doubles up to this cap,
	// resetting on every read). 0 selects the default (256); values are
	// clamped to the ring's safe ceiling. Like Shards it can change
	// wall-clock speed only, never simulated behavior, so it is excluded
	// from result caching and checkpoint identity.
	BatchWindow int
	// Seed drives every stochastic element of the run.
	Seed uint64
	// CoreTags overrides the allocator tag per core (§4.4's usage model:
	// the OS performs (n:m) allocation only for processes that request it,
	// so a high-priority write-intensive app can run under (1:2) while its
	// neighbours use the default allocator). Empty = every core uses
	// Scheme.Tag. Length must match the core count when set.
	CoreTags []alloc.Tag
	// WearLevelPsi enables intra-row Start-Gap wear leveling (§6.7 design
	// alternative, [20]) with the given gap period (writes between gap
	// movements; 0 disables). Costs one line slot per row (1.6% capacity)
	// and one controller-mediated line copy per psi writes per row.
	WearLevelPsi int
	// CollectMetrics attaches a metrics registry to the run: controller, WD
	// engine, ECP and device activity plus latency/occupancy distributions
	// are exported as Result.Metrics. Snapshots are deterministic — the same
	// config and seed produce byte-identical exports — and collection is
	// cheap but not free (the hot path gains histogram observations).
	CollectMetrics bool
	// TraceEvents, when positive, additionally keeps the last N typed
	// events (WD inject/detect/park/flush, VnC cascade steps, PreRead
	// issue/forward/hit, write-cancel preemptions, queue enqueue/stall/
	// drain) in Result.Metrics.Events. Implies metrics collection.
	TraceEvents int
	// HeatmapRegions, when positive, accumulates the WD spatial heatmap:
	// injected bit-line flips, LazyCorrection parks and correction writes
	// per bank × line-region (each bank's rows tiled into this many equal
	// regions), exported as Result.Heatmap. Independent of CollectMetrics.
	HeatmapRegions int
	// SnapshotInterval, when positive, invokes OnSnapshot with a mid-run
	// metrics snapshot every SnapshotInterval simulated cycles, so live
	// observers (the -listen HTTP server) see gauges move while a long run
	// is in flight. Implies metrics collection. The published snapshots are
	// deterministic; only their wall-clock arrival varies.
	SnapshotInterval uint64
	// OnSnapshot receives each mid-run snapshot (and, when set, a final one
	// just before Run returns). Called on the simulation goroutine — cheap
	// handlers only; publish-to-server callbacks should just swap a pointer.
	OnSnapshot func(*metrics.Snapshot)
	// CheckIntegrity maintains a shadow copy of every line the cores write
	// and verifies — on every read and again after the final flush — that
	// the memory system returns exactly what was stored, i.e. that no
	// write-disturbance error escaped VnC. Costs memory proportional to the
	// footprint; intended for tests.
	CheckIntegrity bool
	// CheckpointEvery, when positive together with CheckpointPath, writes a
	// versioned snapshot of the complete simulator state every
	// CheckpointEvery processed references (counted in program order, so
	// the trigger points are identical across shard counts). Each write
	// atomically replaces the previous file; a killed run loses at most one
	// interval of progress.
	CheckpointEvery int
	// CheckpointPath is where checkpoints are published (tmp-and-rename).
	CheckpointPath string
	// ResumeFrom, when set, loads a checkpoint written by a run with the
	// same configuration (any shard count) and continues it; the final
	// Result is byte-identical to the uninterrupted run's. Load or
	// validation failures wrap ErrResume so callers can fall back to a
	// cold start.
	ResumeFrom string
}

func (c Config) normalized() Config {
	if c.MemPages <= 0 {
		c.MemPages = 1 << 21
	}
	if c.RegionPages <= 0 {
		c.RegionPages = 16384
	}
	if c.RefsPerCore <= 0 {
		c.RefsPerCore = 100000
	}
	if len(c.Mix.Cores) == 0 && len(c.Streams) == 0 {
		c.Mix = workload.HomogeneousMix(c.Mix.Name, 8)
	}
	return c
}

// Result aggregates a run's outcome.
type Result struct {
	Scheme string
	Mix    string

	// Cycles is the makespan (last core finish, including the final queue
	// flush); Instructions is the total instruction count across cores.
	Cycles       uint64
	Instructions uint64
	// CPI is the mean per-core cycles-per-instruction — the §5.2 metric's
	// numerator/denominator source.
	CPI float64

	MC  mc.Stats
	Dev pcm.Stats
	ECP ecp.Stats
	WD  wd.Stats

	TLBMisses  uint64
	PageFaults uint64

	// WearMoves counts Start-Gap line copies (when WearLevelPsi > 0).
	WearMoves uint64

	// Metrics is the run's observability snapshot — every module counter,
	// the latency/occupancy histograms and (with Config.TraceEvents) the
	// event-trace tail. Nil unless Config.CollectMetrics or
	// Config.TraceEvents enabled collection.
	Metrics *metrics.Snapshot

	// Heatmap is the WD spatial accumulation (Config.HeatmapRegions > 0):
	// per bank × line-region injected flips, parked errors and cascade
	// activity. Nil when disabled. Under a multi-module topology the
	// per-module heatmaps are stacked bank-major in module order (Banks is
	// the sum over modules).
	Heatmap *wd.HeatmapSnapshot

	// Modules holds the per-module breakdown of a multi-module topology
	// run, in module order. Empty on the classic single-DIMM path.
	Modules []ModuleResult `json:",omitempty"`

	// ExecMetrics is the sharded executor's behaviour snapshot: batch
	// publication counts and occupancy, ring stalls, worker parks,
	// steal-on-read and rendezvous tallies. Unlike Metrics it is
	// timing-dependent — scheduling, GOMAXPROCS and host load all move it —
	// so it is deliberately excluded from the determinism contract, from
	// serialized Results and from checkpoints. Nil on the inline path or
	// when metrics collection is off. Under a multi-module topology the
	// per-module executors' snapshots are merged.
	ExecMetrics *metrics.Snapshot `json:"-"`
}

// CorrectionsPerWrite is the Figure 12 metric.
func (r Result) CorrectionsPerWrite() float64 {
	if r.MC.WriteOps == 0 {
		return 0
	}
	return float64(r.MC.CorrectionWrites) / float64(r.MC.WriteOps)
}

// WordLineErrorsPerWrite is the Figure 4(a) metric.
func (r Result) WordLineErrorsPerWrite() float64 {
	if r.WD.WritesObserved == 0 {
		return 0
	}
	return float64(r.WD.InLineErrors+r.WD.EdgeErrors) / float64(r.WD.WritesObserved)
}

// BitLineErrorsPerAdjacentLine is the Figure 4(b) metric: average manifested
// WD errors per adjacent line per write.
func (r Result) BitLineErrorsPerAdjacentLine() float64 {
	if r.WD.WritesObserved == 0 {
		return 0
	}
	return float64(r.WD.BitLineFlips) / float64(2*r.WD.WritesObserved)
}

// DataChipLifetime is the Figure 17 metric: the fraction of data-chip cell
// writes that are useful (non-correction) work. Corrections, in-line
// rewrites and edge heals consume endurance without storing new data.
func (r Result) DataChipLifetime() float64 {
	useful := r.Dev.CellWrites() - r.Dev.CorrectionResetPulses
	overhead := r.Dev.CorrectionResetPulses + r.WD.RewritePulses + r.WD.EdgeHealPulses
	total := float64(useful) + float64(overhead)
	if total == 0 {
		return 1
	}
	return float64(useful) / total
}

// ECPChipLifetime is the Figure 18 metric. Without WD, the ECP chip sees
// roughly a tenth of the data chip's cell-change rate (§6.7); LazyCorrection
// adds 10 ECP-chip cell writes per parked error.
func (r Result) ECPChipLifetime() float64 {
	base := float64(r.Dev.CellWrites()) / 10
	extra := float64(r.ECP.ECPBitWrites)
	if base+extra == 0 {
		return 1
	}
	return base / (base + extra)
}

// mutator synthesises write-back payloads; live generators and the replay
// Mutator both satisfy it. Payloads are drawn (consuming the per-core RNG in
// program order, on the orchestrator goroutine) separately from their
// application to the line's latest content (on whichever goroutine owns the
// bank).
type mutator interface {
	DrawMutation() workload.Mutation
}

// corePending is the per-core event state. mod is the owning module index of
// a multi-module run (always 0 on the classic path).
type corePending struct {
	id     int
	mod    int
	time   uint64
	stream trace.Stream
	mut    mutator
	as     *vm.AddressSpace
	refs   int
	instrs uint64
}

// coreHeap orders cores by next event time.
type coreHeap []*corePending

func (h coreHeap) Len() int { return len(h) }
func (h coreHeap) Less(i, j int) bool {
	return h[i].time < h[j].time || (h[i].time == h[j].time && h[i].id < h[j].id)
}
func (h coreHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *coreHeap) Push(x any)   { *h = append(*h, x.(*corePending)) }
func (h *coreHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run executes one simulation.
func Run(cfg Config) (Result, error) {
	cfg = cfg.normalized()
	if err := cfg.Scheme.Validate(); err != nil {
		return Result{}, err
	}
	if !cfg.Topology.IsDefault() {
		return runMulti(cfg)
	}
	root := rng.New(cfg.Seed)

	dev, err := pcm.NewDevice(pcm.Config{
		Pages:    cfg.MemPages,
		FillSeed: root.SplitLabeled("fill").Uint64(),
	})
	if err != nil {
		return Result{}, err
	}
	allocator, err := alloc.New(cfg.MemPages, cfg.RegionPages)
	if err != nil {
		return Result{}, err
	}
	// Per-bank RNG streams: the root's "mc" child seeds one labeled stream
	// per bank, so a bank's stochastic disturbance draws depend only on
	// (seed, bank, that bank's op sequence) — never on global call order —
	// which is what makes results shard-count invariant.
	bankRngs := root.SplitLabeled("mc").SplitLabeledSeq("bank", pcm.NumBanks)

	shards := cfg.Shards
	if shards > pcm.NumBanks {
		shards = pcm.NumBanks
	}
	var mirrors []*tagMirror
	resolve := func(bank int) mc.RegionResolver { return allocator }
	if shards > 1 {
		mirrors = make([]*tagMirror, shards)
		for s := range mirrors {
			mirrors[s] = newTagMirror(allocator)
		}
		resolve = func(bank int) mc.RegionResolver { return mirrors[bank%shards] }
	}
	p, err := newBankPlane(cfg, dev, func() mc.Config { return cfg.Scheme.MCConfig(cfg.WriteQueueCap) }, resolve, bankRngs)
	if err != nil {
		return Result{}, err
	}
	var exec bankExec
	if shards > 1 {
		se := newShardExec(p, mirrors, cfg)
		allocator.OnOwnerChange = se.ownerChange
		exec = se
	} else {
		exec = newInlineExec(p, cfg.CheckIntegrity)
	}
	defer exec.close() // idempotent; joins shard goroutines on error paths

	type coreSrc struct {
		stream trace.Stream
		mut    mutator
	}
	var srcs []coreSrc
	if len(cfg.Streams) > 0 {
		wseed := root.SplitLabeled("mutator").Uint64()
		for i, s := range cfg.Streams {
			srcs = append(srcs, coreSrc{
				stream: s,
				mut:    workload.NewMutator(cfg.MutateChunkProb, wseed+uint64(i)*0x9e3779b97f4a7c15),
			})
		}
	} else {
		gens, err := cfg.Mix.Generators(root.SplitLabeled("workload").Uint64())
		if err != nil {
			return Result{}, err
		}
		for _, g := range gens {
			srcs = append(srcs, coreSrc{stream: g, mut: g})
		}
	}

	if len(cfg.CoreTags) > 0 && len(cfg.CoreTags) != len(srcs) {
		return Result{}, fmt.Errorf("sim: %d CoreTags for %d cores", len(cfg.CoreTags), len(srcs))
	}
	h := make(coreHeap, 0, len(srcs))
	cores := make([]*corePending, len(srcs))
	for i, src := range srcs {
		tag := cfg.Scheme.Tag
		if len(cfg.CoreTags) > 0 {
			tag = cfg.CoreTags[i]
		}
		as, err := vm.NewAddressSpace(allocator, tag, 0)
		if err != nil {
			return Result{}, err
		}
		cores[i] = &corePending{id: i, stream: src.stream, mut: src.mut, as: as}
		h = append(h, cores[i])
	}
	heap.Init(&h)

	mixName := cfg.Mix.Name
	if len(cfg.Streams) > 0 {
		mixName = "trace-replay"
	}
	var wl *weargap.IntraRow
	if cfg.WearLevelPsi > 0 {
		wl, err = weargap.NewIntraRow(cfg.WearLevelPsi)
		if err != nil {
			return Result{}, err
		}
	}
	// remap applies the wear-leveling rotation; identity when disabled.
	// The shadow map is keyed by logical address so integrity tracks lines
	// across rotations.
	remap := func(a pcm.LineAddr) pcm.LineAddr {
		if wl == nil {
			return a
		}
		return wl.MapAddr(a)
	}
	res := Result{Scheme: cfg.Scheme.Name, Mix: mixName}

	// sumCounters gathers the orchestrator-side snapshot contribution.
	sumCounters := func(now uint64) simCounters {
		sc := simCounters{cycles: now}
		for _, c := range cores {
			sc.instructions += c.instrs
			sc.tlbMisses += c.as.TLB.Misses
			sc.pageFaults += c.as.Faults
		}
		if wl != nil {
			sc.wearMoves = wl.Moves
		}
		return sc
	}
	snapshotting := cfg.SnapshotInterval > 0 && cfg.OnSnapshot != nil
	nextSnap := cfg.SnapshotInterval

	ckpt := runState{
		cfg: cfg, p: p, exec: exec, allocator: allocator, mirrors: mirrors,
		cores: cores, h: &h, wl: wl, nextSnap: nextSnap,
	}
	checkpointing := cfg.CheckpointEvery > 0 && cfg.CheckpointPath != ""
	if checkpointing || cfg.ResumeFrom != "" {
		// All controllers share one scheme config; checking bank 0 covers
		// every bank.
		if err := p.ctrls[0].CheckpointSupported(); err != nil {
			return Result{}, fmt.Errorf("%w: %v", ErrCheckpointUnsupported, err)
		}
	}
	if cfg.ResumeFrom != "" {
		active, err := ckpt.restoreCheckpoint(cfg.ResumeFrom)
		if err != nil {
			return Result{}, err
		}
		h = h[:0]
		for _, c := range cores {
			if active[c.id] {
				h = append(h, c)
			}
		}
		// (time, id) totally orders cores, so the rebuilt heap dispatches
		// in exactly the order the checkpointing run would have.
		heap.Init(&h)
		nextSnap = ckpt.nextSnap
	}

	for h.Len() > 0 {
		c := h[0]
		rec, ok := c.stream.Next()
		if !ok {
			heap.Pop(&h) // replayed trace exhausted
			continue
		}
		// Non-memory instructions: 1 cycle each on the in-order core.
		c.time += uint64(rec.Gap)
		c.instrs += uint64(rec.Gap) + 1
		if rec.Kind == trace.Read {
			// Lookahead: the next op is a blocking read, but which bank it
			// hits is only known after translation. Publish in-flight batches
			// now so workers drain backlog while the TLB/page tables resolve.
			exec.hintRead()
		}
		logical, err := translate(c, rec, wl != nil)
		if err != nil {
			return Result{}, fmt.Errorf("core %d: %w", c.id, err)
		}
		addr := remap(logical)
		if rec.Kind == trace.Read {
			done, _, err := exec.read(c.time, addr, logical)
			if err != nil {
				return Result{}, err
			}
			c.time = done // blocking load
		} else {
			m := c.mut.DrawMutation()
			exec.write(c.time, addr, logical, m)
			c.time++
			if wl != nil {
				if from, to, moved := wl.NoteWrite(addr); moved {
					// Start-Gap copy, routed through the controller so it
					// forwards from queued writes and undergoes VnC.
					exec.copyLine(c.time, from, to)
				}
			}
		}
		c.refs++
		if c.refs >= cfg.RefsPerCore {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
		if snapshotting && c.time >= nextSnap {
			// Quiesce the shards so the plane state is exactly the inline
			// state at this point in program order, then snapshot it.
			exec.barrier()
			cfg.OnSnapshot(p.assembleSnapshot(sumCounters(c.time)))
			for nextSnap <= c.time {
				nextSnap += cfg.SnapshotInterval
			}
		}
		ckpt.totalRefs++
		if checkpointing && ckpt.totalRefs%uint64(cfg.CheckpointEvery) == 0 {
			exec.barrier()
			ckpt.nextSnap = nextSnap
			if err := writeCheckpoint(cfg.CheckpointPath, ckpt.encodeCheckpoint()); err != nil {
				return Result{}, err
			}
		}
	}
	exec.close()
	if se, ok := exec.(*shardExec); ok {
		res.ExecMetrics = se.execMetrics()
	}

	var maxEnd uint64
	var cpiSum float64
	for _, c := range cores {
		maxEnd = max(maxEnd, c.time)
		if c.instrs > 0 {
			cpiSum += float64(c.time) / float64(c.instrs)
		}
		res.Instructions += c.instrs
		res.TLBMisses += c.as.TLB.Misses
		res.PageFaults += c.as.Faults
	}
	end := p.flushAll(maxEnd)
	if cfg.CheckIntegrity {
		for _, sh := range exec.shadows() {
			for logical, want := range sh {
				if got := p.ctrlFor(remap(logical)).PeekData(remap(logical)); got != want {
					return Result{}, fmt.Errorf("sim: integrity violation: line %d corrupted after flush (WD escaped VnC)", logical)
				}
			}
		}
	}
	if wl != nil {
		res.WearMoves = wl.Moves
	}
	res.Cycles = end
	if len(cores) > 0 {
		res.CPI = cpiSum / float64(len(cores))
	}
	res.MC, res.Dev, res.ECP, res.WD = p.mergedStats()
	if p.collecting() {
		res.Metrics = p.assembleSnapshot(simCounters{
			cycles:       res.Cycles,
			instructions: res.Instructions,
			tlbMisses:    res.TLBMisses,
			pageFaults:   res.PageFaults,
			wearMoves:    res.WearMoves,
		})
		if cfg.OnSnapshot != nil {
			cfg.OnSnapshot(res.Metrics)
		}
	}
	res.Heatmap = p.hm.Snapshot()
	return res, nil
}

// translate maps a trace record's virtual line to its physical line (before
// any wear-leveling rotation). Under wear leveling each row reserves its
// last slot as the rolling spare, so the 64th line of each page folds onto
// the remaining 63 (the 1.6% capacity cost of the scheme).
func translate(c *corePending, rec trace.Record, wearLeveled bool) (pcm.LineAddr, error) {
	vpage := rec.Line / pcm.LinesPerPage
	slot := int(rec.Line % pcm.LinesPerPage)
	if wearLeveled && slot == pcm.LinesPerPage-1 {
		slot = int(rec.Line % (pcm.LinesPerPage - 1))
	}
	tr, _, err := c.as.Translate(vpage)
	if err != nil {
		return 0, err
	}
	return pcm.LineOf(tr.Frame, slot), nil
}
