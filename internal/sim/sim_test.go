package sim

import (
	"testing"

	"sdpcm/internal/alloc"
	"sdpcm/internal/core"
	"sdpcm/internal/workload"
)

// quickCfg returns a small-but-meaningful run configuration.
func quickCfg(scheme core.Scheme, bench string) Config {
	return Config{
		Scheme:      scheme,
		Mix:         workload.HomogeneousMix(bench, 4),
		RefsPerCore: 4000,
		MemPages:    1 << 16, // 256 MB
		RegionPages: 1024,
		Seed:        7,
	}
}

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunProducesSaneResult(t *testing.T) {
	r := run(t, quickCfg(core.Baseline(), "lbm"))
	if r.Cycles == 0 || r.Instructions == 0 || r.CPI <= 0 {
		t.Fatalf("result = %+v", r)
	}
	if r.MC.DemandReads == 0 || r.MC.WriteOps == 0 {
		t.Fatalf("no memory traffic: %+v", r.MC)
	}
	if r.PageFaults == 0 || r.TLBMisses == 0 {
		t.Fatal("no VM activity recorded")
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, quickCfg(core.LazyCPreRead(6), "mcf"))
	b := run(t, quickCfg(core.LazyCPreRead(6), "mcf"))
	if a.Cycles != b.Cycles || a.MC != b.MC || a.WD != b.WD {
		t.Fatal("simulation must be deterministic under a fixed seed")
	}
	c := run(t, Config{
		Scheme:      core.LazyCPreRead(6),
		Mix:         workload.HomogeneousMix("mcf", 4),
		RefsPerCore: 4000,
		MemPages:    1 << 16,
		RegionPages: 1024,
		Seed:        8,
	})
	if a.Cycles == c.Cycles {
		t.Log("different seeds produced identical cycles (suspicious but possible)")
	}
}

func TestSchemeOrderingOnWriteHeavyMix(t *testing.T) {
	// The paper's headline ordering on a memory/write-intensive workload:
	// DIN (no VnC) fastest; baseline slowest; LazyC in between;
	// (1:2)-Alloc eliminates VnC and approaches DIN.
	din := run(t, quickCfg(core.DIN(), "mcf"))
	base := run(t, quickCfg(core.Baseline(), "mcf"))
	lazy := run(t, quickCfg(core.LazyC(6), "mcf"))
	alloc12 := run(t, quickCfg(core.NMAlloc(alloc.Tag12), "mcf"))

	if !(din.CPI < base.CPI) {
		t.Errorf("DIN CPI %v must beat baseline %v", din.CPI, base.CPI)
	}
	if !(lazy.CPI < base.CPI) {
		t.Errorf("LazyC CPI %v must beat baseline %v", lazy.CPI, base.CPI)
	}
	if !(alloc12.CPI < base.CPI) {
		t.Errorf("(1:2) CPI %v must beat baseline %v", alloc12.CPI, base.CPI)
	}
	// (1:2) needs no verification at all: its VnC activity must be ~zero
	// away from region boundaries.
	if alloc12.MC.CorrectionWrites > base.MC.CorrectionWrites/10 {
		t.Errorf("(1:2) corrections = %d vs baseline %d",
			alloc12.MC.CorrectionWrites, base.MC.CorrectionWrites)
	}
}

func TestLazyCReducesCorrectionsFig12(t *testing.T) {
	base := run(t, quickCfg(core.Baseline(), "lbm"))
	lazy := run(t, quickCfg(core.LazyC(6), "lbm"))
	if base.CorrectionsPerWrite() < 0.5 {
		t.Errorf("baseline corrections/write = %v, expected ~1.8 (Fig 12 ECP-0)",
			base.CorrectionsPerWrite())
	}
	if lazy.CorrectionsPerWrite() > base.CorrectionsPerWrite()/4 {
		t.Errorf("ECP-6 corrections/write = %v vs baseline %v: LazyC must slash them",
			lazy.CorrectionsPerWrite(), base.CorrectionsPerWrite())
	}
}

func TestFig4Shape(t *testing.T) {
	r := run(t, quickCfg(core.Baseline(), "lbm"))
	wl := r.WordLineErrorsPerWrite()
	bl := r.BitLineErrorsPerAdjacentLine()
	if wl <= 0 || bl <= 0 {
		t.Fatalf("no WD observed: wl=%v bl=%v", wl, bl)
	}
	// Fig 4: word-line errors well mitigated (avg ~0.4), bit-line errors
	// per adjacent line much larger (avg ~2).
	if wl >= bl {
		t.Errorf("word-line errors per write (%v) must be below bit-line per line (%v)", wl, bl)
	}
	if wl > 2.0 {
		t.Errorf("word-line errors per write = %v, want < 2 with DIN", wl)
	}
	if r.WD.MaxBitLinePerLine < 2 {
		t.Errorf("max bit-line errors per line = %d, expected multi-bit bursts", r.WD.MaxBitLinePerLine)
	}
}

func TestLifetimeMetrics(t *testing.T) {
	r := run(t, quickCfg(core.LazyC(6), "lbm"))
	dl := r.DataChipLifetime()
	el := r.ECPChipLifetime()
	if dl <= 0.9 || dl > 1.0 {
		t.Errorf("data chip lifetime = %v, want slightly below 1 (Fig 17)", dl)
	}
	if el <= 0 || el >= 1.0 {
		t.Errorf("ECP chip lifetime = %v, want in (0,1) (Fig 18)", el)
	}
	if el >= dl {
		t.Errorf("ECP chip (%v) must degrade more than data chips (%v)", el, dl)
	}
}

func TestWDFreeSchemeSeesNoErrors(t *testing.T) {
	r := run(t, quickCfg(core.WDFree(), "lbm"))
	if r.WD.BitLineFlips != 0 || r.WD.InLineErrors != 0 || r.WD.EdgeErrors != 0 {
		t.Fatalf("prototype layout disturbed cells: %+v", r.WD)
	}
	if r.MC.CorrectionWrites != 0 || r.MC.VerifyReads != 0 {
		t.Fatalf("prototype layout ran VnC: %+v", r.MC)
	}
}

func TestAllWorkloadsRun(t *testing.T) {
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := quickCfg(core.LazyC(6), name)
			cfg.RefsPerCore = 1500
			r := run(t, cfg)
			if r.Cycles == 0 {
				t.Fatal("no cycles simulated")
			}
		})
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Mix: workload.MixSpec{Name: "lbm"}}.normalized()
	if c.MemPages != 1<<21 || c.RegionPages != 16384 || c.RefsPerCore != 100000 {
		t.Fatalf("defaults = %+v", c)
	}
	if len(c.Mix.Cores) != 8 {
		t.Fatalf("default mix cores = %d, want 8", len(c.Mix.Cores))
	}
}

func TestInvalidSchemeRejected(t *testing.T) {
	cfg := quickCfg(core.Scheme{}, "lbm")
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid scheme must be rejected")
	}
}

func TestInvalidBenchmarkRejected(t *testing.T) {
	cfg := quickCfg(core.Baseline(), "nope")
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown benchmark must be rejected")
	}
}
