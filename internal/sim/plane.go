package sim

import (
	"sdpcm/internal/alloc"
	"sdpcm/internal/ecp"
	"sdpcm/internal/mc"
	"sdpcm/internal/metrics"
	"sdpcm/internal/pcm"
	"sdpcm/internal/rng"
	"sdpcm/internal/wd"
)

// bankPlane is the per-bank decomposition of a run's memory-system state:
// one mc.Controller per PCM bank, each with its own ECP table, policy
// instances, disturbance engine (on a labeled per-bank RNG stream) and — when
// collection is on — its own metrics registry and event ring. The device and
// heatmap are shared, but their mutable state is bank-sharded internally
// (per-bank stat counters and storage arenas; bank-major heatmap cells), so
// controllers driving disjoint banks never write the same memory.
//
// The decomposition is exact, not approximate: banks are serially-busy
// independent resources and write disturbance only couples physically
// adjacent rows within one bank (rows r±1 of the same bank), so per-bank
// state machines fed the same per-bank op sequences produce identical state
// regardless of how banks are grouped onto goroutines. Aggregate results are
// folded in fixed bank order 0..Banks-1. One plane covers one module; a
// multi-module topology builds one plane per module over that module's
// device geometry.
type bankPlane struct {
	dev   *pcm.Device
	geo   pcm.Geometry
	ctrls []*mc.Controller
	regs  []*metrics.Registry // nil entries when collection is off
	hm    *wd.Heatmap         // nil when disabled; shared, bank-disjoint cells

	traceCap int
}

// newBankPlane builds the per-bank controllers over the device's bank
// geometry. mcCfg produces a fresh controller configuration per bank (policy
// values are stateful and must not be shared); bankRngs must hold one labeled
// stream per bank (module root "mc" → "bank-<b>"); resolve supplies each
// bank's RegionResolver — the live allocator for single-goroutine execution,
// a versioned tag mirror for shard goroutines.
func newBankPlane(cfg Config, dev *pcm.Device, mcCfg func() mc.Config, resolve func(bank int) mc.RegionResolver, bankRngs []*rng.Rand) (*bankPlane, error) {
	p := &bankPlane{
		dev:      dev,
		geo:      dev.Geometry(),
		ctrls:    make([]*mc.Controller, dev.Banks()),
		regs:     make([]*metrics.Registry, dev.Banks()),
		traceCap: cfg.TraceEvents,
	}
	if cfg.HeatmapRegions > 0 {
		p.hm = wd.NewHeatmapGeo(cfg.HeatmapRegions, dev.RowsPerBank, dev.Geometry())
	}
	collect := cfg.CollectMetrics || cfg.TraceEvents > 0 || cfg.SnapshotInterval > 0
	for b := range p.ctrls {
		ctrl, err := mc.New(mcCfg(), dev, resolve(b), bankRngs[b])
		if err != nil {
			return nil, err
		}
		if collect {
			reg := metrics.New()
			reg.EnableTrace(cfg.TraceEvents)
			ctrl.Instrument(reg)
			p.regs[b] = reg
		}
		if p.hm != nil {
			ctrl.InstrumentHeatmap(p.hm)
		}
		p.ctrls[b] = ctrl
	}
	return p, nil
}

// bankOf returns the bank a line address belongs to under the plane's
// geometry.
func (p *bankPlane) bankOf(a pcm.LineAddr) int { return p.geo.Locate(a).Bank }

// ctrlFor returns the controller owning a line address.
func (p *bankPlane) ctrlFor(a pcm.LineAddr) *mc.Controller { return p.ctrls[p.bankOf(a)] }

// collecting reports whether metric registries are attached.
func (p *bankPlane) collecting() bool { return p.regs[0] != nil }

// mergedStats folds the per-bank module counters in bank order. Only valid
// when no shard goroutine is active (quiesced or joined).
func (p *bankPlane) mergedStats() (mcS mc.Stats, devS pcm.Stats, ecpS ecp.Stats, wdS wd.Stats) {
	for b := range p.ctrls {
		mcS.Add(p.ctrls[b].Stats)
		ecpS.Add(p.ctrls[b].ECP().Stats)
		wdS.Add(p.ctrls[b].Engine().Stats)
	}
	devS = p.dev.Stats()
	return
}

// simCounters is the orchestrator-side contribution to a snapshot.
type simCounters struct {
	cycles       uint64
	instructions uint64
	tlbMisses    uint64
	pageFaults   uint64
	wearMoves    uint64
}

// assembleSnapshot builds a metrics snapshot from the quiesced plane: module
// stats are rendered into a scratch registry, merged with every bank
// registry's histograms, and the per-bank event-ring tails are combined into
// one canonical bounded tail. The result is a pure function of per-bank
// state, so it is byte-identical across shard counts.
func (p *bankPlane) assembleSnapshot(sc simCounters) *metrics.Snapshot {
	tmp := metrics.New()
	mcS, devS, ecpS, wdS := p.mergedStats()
	mcS.Publish(tmp)
	devS.Publish(tmp)
	ecpS.Publish(tmp)
	wdS.Publish(tmp)
	tmp.Counter("sim.instructions").Add(sc.instructions)
	tmp.Counter("sim.tlb_misses").Add(sc.tlbMisses)
	tmp.Counter("sim.page_faults").Add(sc.pageFaults)
	tmp.Counter("sim.wear_moves").Add(sc.wearMoves)
	tmp.Gauge("sim.cycles").Set(sc.cycles)
	s := tmp.Snapshot()
	var tails [][]metrics.Event
	var dropped []uint64
	for b := range p.regs {
		bs := p.regs[b].Snapshot()
		if p.traceCap > 0 {
			tails = append(tails, bs.Events)
			dropped = append(dropped, bs.EventsDropped)
		}
		s = s.Merge(bs)
	}
	if p.traceCap > 0 {
		s.Events, s.EventsDropped = metrics.MergeEventTails(p.traceCap, tails, dropped)
	} else {
		s.Events, s.EventsDropped = nil, 0
	}
	return s
}

// flushAll drains every controller completely and returns the cycle all work
// finishes, combining per-bank controllers exactly as one controller would:
// queue work ends at the max over banks, and the policies' volatile drain
// buffers are conservatively serialised after it (summed, as the single
// controller's DrainFlush summed its banks).
func (p *bankPlane) flushAll(now uint64) uint64 {
	var end, drain uint64
	end = now
	for b := range p.ctrls {
		e, d := p.ctrls[b].FlushParts(now)
		end = max(end, e)
		drain += d
	}
	return end + drain
}

// tagMirror is a RegionResolver fed by in-band ownership updates: the
// orchestrator broadcasts every allocator owner-map mutation into each
// shard's op stream, so a shard resolving a page's (n:m) tag sees exactly
// the allocator state at the moment the op was issued — which is when the
// live allocator would have been consulted on one goroutine.
type tagMirror struct {
	regionPages int
	stripPages  int
	strips      int
	owner       map[int]alloc.Tag
}

func newTagMirror(a *alloc.Allocator) *tagMirror {
	return &tagMirror{
		regionPages: a.RegionPages(),
		stripPages:  a.StripPages(),
		strips:      a.StripsPerRegion(),
		owner:       make(map[int]alloc.Tag),
	}
}

func (m *tagMirror) RegionTag(p pcm.PageAddr) alloc.Tag {
	if t, ok := m.owner[int(p)/m.regionPages*m.regionPages]; ok {
		return t
	}
	return alloc.Tag11
}

func (m *tagMirror) StripIndexInRegion(p pcm.PageAddr) int {
	return (int(p) % m.regionPages) / m.stripPages
}

func (m *tagMirror) StripsPerRegion() int { return m.strips }

func (m *tagMirror) apply(regionStart int, t alloc.Tag, present bool) {
	if present {
		m.owner[regionStart] = t
	} else {
		delete(m.owner, regionStart)
	}
}
