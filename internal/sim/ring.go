package sim

import (
	"sync/atomic"

	"sdpcm/internal/alloc"
	"sdpcm/internal/pcm"
	"sdpcm/internal/workload"
)

// Sharded-executor transport tuning. The ring capacity bounds how far a
// shard may lag the orchestrator (the conservative window of DESIGN.md §8):
// the orchestrator stalls rather than let a shard fall further behind,
// keeping memory bounded without affecting results (order per bank, not
// timing, determines state). windowCeil < ringCap guarantees that whenever
// the ring is full at least one full batch is already published, so a
// stalled producer always has a consumer making progress toward freeing
// slots.
const (
	ringCap  = 1024 // slots per shard ring; must be a power of two
	ringMask = ringCap - 1
	// minBatch seeds the adaptive window after every demand read;
	// windowDefault caps its growth unless Config.BatchWindow overrides.
	minBatch      = 16
	windowDefault = 256
	windowCeil    = ringCap / 2
	// headChunk bounds how many ops the consumer applies between head
	// publications, so a producer stalled on a full ring resumes promptly.
	headChunk = 64
)

// packTag encodes an ownerChange payload into the ring's aux word:
// region<<11 | N<<6 | M<<1 | present. alloc.MaxM is 16, so N and M fit in
// five bits each; region (a page index) takes the rest.
func packTag(region int, t alloc.Tag, present bool) uint64 {
	v := uint64(region)<<11 | uint64(t.N)<<6 | uint64(t.M)<<1
	if present {
		v |= 1
	}
	return v
}

func unpackTag(v uint64) (region int, t alloc.Tag, present bool) {
	return int(v >> 11), alloc.Tag{N: int(v >> 6 & 31), M: int(v >> 1 & 31)}, v&1 != 0
}

// opRing is a single-producer/single-consumer bounded ring carrying one
// shard's op stream as flat struct-of-arrays slots — no per-batch
// allocation, no slice headers crossing goroutines, and hot control words
// padded onto their own cache lines.
//
// Index protocol: head and tail are free-running uint64 slot counters
// (wrapping masked with ringMask on access). The producer owns tail and
// writes slots in [tail, tail+n) before publishing them with a single
// tail.Store; the consumer owns head and applies slots in [head, tail)
// before releasing them with head.Store. Go's sequentially consistent
// atomics make the slot writes happen-before the consumer's reads (publish
// via tail) and the consumer's reads happen-before slot reuse (release via
// head).
//
// Park protocol: blocking is the slow path. A side about to block sets its
// flag (parked/prodWait), re-checks the index it is waiting on, and only
// then sleeps on its channel; the opposite side signals the channel
// (non-blocking, capacity 1) after its store when it observes the flag.
// The store-flag-then-recheck ordering closes the sleep/wake race; stale
// channel tokens only cause a spurious loop iteration.
type opRing struct {
	_    [64]byte
	head atomic.Uint64 // consumer: first slot not yet applied
	_    [56]byte
	tail atomic.Uint64 // producer: first slot not yet published
	_    [56]byte

	parked   atomic.Bool // consumer is (about to be) blocked on doorbell
	prodWait atomic.Bool // producer is (about to be) blocked on space
	closed   atomic.Bool
	_        [61]byte

	doorbell chan struct{} // producer → consumer wakeup
	space    chan struct{} // consumer → producer wakeup

	kind    [ringCap]opKind
	now     [ringCap]uint64
	addr    [ringCap]pcm.LineAddr // target line (read/write), copy destination
	aux     [ringCap]uint64       // copy source (opCopy) or packed tag (opTag)
	logical [ringCap]pcm.LineAddr // pre-wear-leveling address keying the shadow
	mut     [ringCap]workload.Mutation
}

func newOpRing() *opRing {
	return &opRing{
		doorbell: make(chan struct{}, 1),
		space:    make(chan struct{}, 1),
	}
}

// wakeConsumer delivers a doorbell token if the consumer is parked (or about
// to park — it re-checks tail after setting the flag, so a token sent here
// is never required, only sufficient).
func (r *opRing) wakeConsumer() {
	if r.parked.Load() {
		select {
		case r.doorbell <- struct{}{}:
		default:
		}
	}
}

// wakeProducer delivers a space token if the producer is stalled on a full
// ring.
func (r *opRing) wakeProducer() {
	if r.prodWait.Load() {
		select {
		case r.space <- struct{}{}:
		default:
		}
	}
}
