package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"testing"

	"sdpcm/internal/alloc"
	"sdpcm/internal/core"
	"sdpcm/internal/metrics"
	"sdpcm/internal/trace"
	"sdpcm/internal/workload"
)

// fullFingerprint extends fingerprint with the heatmap, so the shard
// contract — byte-identical stats, metrics snapshot, event trace AND
// heatmap — is pinned by one hash.
func fullFingerprint(t *testing.T, r Result) string {
	t.Helper()
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", fingerprint(t, r))
	if r.Heatmap != nil {
		b, err := json.Marshal(r.Heatmap)
		if err != nil {
			t.Fatal(err)
		}
		h.Write(b)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestShardDeterminismMatrix is the executor contract: the same Config
// produces a byte-identical Result — statistics, metrics snapshot, event
// trace tail, heatmap — at every shard count and GOMAXPROCS. Run under
// -race in CI to double as the executor's data-race check.
func TestShardDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix sweep is not short")
	}
	cfg := quickCfg(core.AllThree(6, alloc.Tag23), "mcf")
	cfg.RefsPerCore = 2000
	cfg.CollectMetrics = true
	cfg.TraceEvents = 32
	cfg.HeatmapRegions = 8
	cfg.CheckIntegrity = true
	cfg.WearLevelPsi = 64

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var want string
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, shards := range []int{1, 2, 4, 8, 16} {
			c := cfg
			c.Shards = shards
			got := fullFingerprint(t, run(t, c))
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Errorf("GOMAXPROCS=%d Shards=%d: fingerprint %s != %s", procs, shards, got, want)
			}
		}
	}
}

// TestShardsClamped: shard counts above the bank count behave like 16.
func TestShardsClamped(t *testing.T) {
	cfg := quickCfg(core.Baseline(), "lbm")
	cfg.RefsPerCore = 500
	a := cfg
	a.Shards = 64
	b := cfg
	b.Shards = 16
	if fullFingerprint(t, run(t, a)) != fullFingerprint(t, run(t, b)) {
		t.Fatal("Shards above pcm.NumBanks must clamp to the bank count")
	}
}

// TestShardedRunErrorJoinsWorkers: a run that fails mid-flight (here: the
// allocator runs out of memory during translation) must join its shard
// goroutines on the way out — no leaks, no deadlock.
func TestShardedRunErrorJoinsWorkers(t *testing.T) {
	cfg := quickCfg(core.Baseline(), "mcf")
	cfg.Shards = 4
	cfg.MemPages = 1 << 12 // too small for 4 mcf footprints → allocator OOM
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected allocation failure")
	}
	// The deferred close joined the workers; a second run must be clean.
	cfg.MemPages = 1 << 16
	run(t, cfg)
}

// TestCPIEmptyReplayStreams is the Result.CPI divide-by-zero regression: a
// replay whose streams are all empty must report CPI 0, not NaN, so JSON
// output stays valid.
func TestCPIEmptyReplayStreams(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cfg := Config{
			Scheme:      core.Baseline(),
			Streams:     []trace.Stream{trace.NewSliceStream(nil), trace.NewSliceStream(nil)},
			RefsPerCore: 100,
			MemPages:    1 << 16,
			RegionPages: 1024,
			Seed:        3,
			Shards:      shards,
		}
		r := run(t, cfg)
		if math.IsNaN(r.CPI) || r.CPI != 0 {
			t.Fatalf("shards=%d: CPI = %v for empty replay, want 0", shards, r.CPI)
		}
		if r.Instructions != 0 || r.MC.WriteOps != 0 {
			t.Fatalf("shards=%d: empty replay did work: %+v", shards, r)
		}
	}
}

// TestShardedTraceReplay covers the replay Mutator path (pre-drawn
// mutations) under sharding.
func TestShardedTraceReplay(t *testing.T) {
	spec, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenerator(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	recs := workload.Capture(g, 3000)
	mk := func(shards int) Result {
		cfg := Config{
			Scheme:         core.LazyC(6),
			Streams:        []trace.Stream{trace.NewSliceStream(recs)},
			RefsPerCore:    len(recs),
			MemPages:       1 << 16,
			RegionPages:    1024,
			Seed:           13,
			Shards:         shards,
			CollectMetrics: true,
		}
		return run(t, cfg)
	}
	if fullFingerprint(t, mk(1)) != fullFingerprint(t, mk(8)) {
		t.Fatal("trace replay diverged between 1 and 8 shards")
	}
}

// TestShardedSnapshotsMatchInline: mid-run snapshots are taken behind a
// shard barrier, so their content must be byte-identical to the inline
// executor's snapshots at the same simulated points.
func TestShardedSnapshotsMatchInline(t *testing.T) {
	capture := func(shards int) [][]byte {
		var snaps [][]byte
		cfg := quickCfg(core.LazyC(6), "mcf")
		cfg.RefsPerCore = 2000
		cfg.Shards = shards
		cfg.SnapshotInterval = 50000
		cfg.OnSnapshot = func(s *metrics.Snapshot) {
			var buf bytes.Buffer
			if err := s.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			snaps = append(snaps, buf.Bytes())
		}
		run(t, cfg)
		return snaps
	}
	inline, sharded := capture(1), capture(8)
	if len(inline) < 2 {
		t.Fatalf("only %d snapshots captured", len(inline))
	}
	if len(inline) != len(sharded) {
		t.Fatalf("snapshot count diverged: %d inline, %d sharded", len(inline), len(sharded))
	}
	for i := range inline {
		if !bytes.Equal(inline[i], sharded[i]) {
			t.Fatalf("snapshot %d diverged between inline and 8 shards", i)
		}
	}
}
