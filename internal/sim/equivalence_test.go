package sim

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdpcm/internal/core"
	"sdpcm/internal/ecp"
	"sdpcm/internal/mc"
	"sdpcm/internal/metrics"
	"sdpcm/internal/pcm"
	"sdpcm/internal/wd"
	"sdpcm/internal/workload"
)

var updateEquivalence = flag.Bool("update-equivalence", false,
	"rewrite testdata/equivalence.golden from the current simulator")

// equivalenceFixture is the pinned simulator behaviour: one fingerprint per
// Figure 11 scheme × benchmark, covering the full Result (controller,
// device, ECP and WD statistics, cycle counts, CPI) plus the rendered
// metrics snapshot. The same hash must hold at every Config.Shards value —
// the sweep cross-checks the sharded executor against the inline one before
// pinning. Any refactor of the write path must reproduce these
// byte-for-byte; refresh intentional simulator changes with
//
//	go test ./internal/sim -run TestWritePathEquivalence -update-equivalence
//
// Last regenerated for the bank-sharded executor: per-run RNG became
// per-bank labeled streams (root → "mc" → "bank-<b>"), a sanctioned
// one-time stochastic change.
const equivalenceFixture = "testdata/equivalence.golden"

func equivalencePoints() []struct {
	scheme core.Scheme
	bench  string
} {
	var pts []struct {
		scheme core.Scheme
		bench  string
	}
	for _, s := range core.Figure11Roster() {
		for _, bench := range []string{"lbm", "mcf"} {
			pts = append(pts, struct {
				scheme core.Scheme
				bench  string
			}{s, bench})
		}
	}
	return pts
}

// flatResult mirrors Result's classic single-DIMM fields in declaration
// order, so its %+v rendering is byte-identical to the Result rendering the
// fixture hashes were pinned against. Modules (populated only under a
// multi-module topology, always empty here) is deliberately absent.
type flatResult struct {
	Scheme       string
	Mix          string
	Cycles       uint64
	Instructions uint64
	CPI          float64

	MC  mc.Stats
	Dev pcm.Stats
	ECP ecp.Stats
	WD  wd.Stats

	TLBMisses  uint64
	PageFaults uint64
	WearMoves  uint64

	Metrics *metrics.Snapshot
	Heatmap *wd.HeatmapSnapshot
}

// fingerprint renders every observable field of a Result into a stable hash:
// the flat statistics via %+v (Metrics and Heatmap pointers excluded), the
// metrics snapshot via its deterministic JSON export.
func fingerprint(t *testing.T, r Result) string {
	t.Helper()
	flat := flatResult{
		Scheme: r.Scheme, Mix: r.Mix, Cycles: r.Cycles,
		Instructions: r.Instructions, CPI: r.CPI,
		MC: r.MC, Dev: r.Dev, ECP: r.ECP, WD: r.WD,
		TLBMisses: r.TLBMisses, PageFaults: r.PageFaults, WearMoves: r.WearMoves,
	}
	h := sha256.New()
	fmt.Fprintf(h, "%+v\n", flat)
	if r.Metrics != nil {
		var buf bytes.Buffer
		if err := r.Metrics.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		h.Write(buf.Bytes())
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func TestWritePathEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is not short")
	}
	var out strings.Builder
	for _, pt := range equivalencePoints() {
		cfg := Config{
			Scheme:         pt.scheme,
			Mix:            workload.HomogeneousMix(pt.bench, 4),
			RefsPerCore:    4000,
			MemPages:       1 << 16,
			RegionPages:    1024,
			WriteQueueCap:  8,
			Seed:           42,
			CollectMetrics: true,
		}
		r := run(t, cfg)
		fp := fingerprint(t, r)
		// The sharded executor must land on the same fingerprint: the fixture
		// pins one hash per point that holds at every shard count.
		sharded := cfg
		sharded.Shards = 8
		if sfp := fingerprint(t, run(t, sharded)); sfp != fp {
			t.Errorf("%s|%s: Shards=8 fingerprint %s != inline %s",
				pt.scheme.Name, pt.bench, sfp, fp)
		}
		fmt.Fprintf(&out, "%s|%s %s\n", pt.scheme.Name, pt.bench, fp)
	}
	got := out.String()
	if *updateEquivalence {
		if err := os.MkdirAll(filepath.Dir(equivalenceFixture), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(equivalenceFixture, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(equivalenceFixture)
	if err != nil {
		t.Fatalf("%v (generate with -update-equivalence)", err)
	}
	if got == string(want) {
		return
	}
	// Report the drifted points by name, not just a hash mismatch.
	wantLines := strings.Split(strings.TrimSpace(string(want)), "\n")
	gotLines := strings.Split(strings.TrimSpace(got), "\n")
	if len(wantLines) != len(gotLines) {
		t.Fatalf("fixture has %d points, run produced %d", len(wantLines), len(gotLines))
	}
	for i := range wantLines {
		if wantLines[i] != gotLines[i] {
			t.Errorf("behaviour drift at %s (fixture %s)",
				strings.SplitN(gotLines[i], " ", 2)[0], wantLines[i])
		}
	}
}
