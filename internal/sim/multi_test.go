package sim

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sdpcm/internal/core"
	"sdpcm/internal/snap"
	"sdpcm/internal/topo"
	"sdpcm/internal/workload"
)

// multiCfg is the canonical two-module run: a near VnC DIMM plus a far
// CXL-latency LazyC module, with every optional subsystem on so the whole
// state surface is exercised.
func multiCfg() Config {
	return Config{
		Scheme:         core.Baseline(),
		Mix:            workload.HomogeneousMix("mcf", 4),
		RefsPerCore:    2000,
		MemPages:       1 << 16,
		RegionPages:    1024,
		WriteQueueCap:  8,
		Seed:           7,
		Topology:       topo.Demo2(),
		CollectMetrics: true,
		TraceEvents:    32,
		HeatmapRegions: 8,
		CheckIntegrity: true,
	}
}

// multiFingerprint extends fullFingerprint with the per-module results —
// the field the flat fingerprint deliberately ignores.
func multiFingerprint(t *testing.T, r Result) string {
	t.Helper()
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%+v\n", fullFingerprint(t, r), r.Modules)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestTopologyDefaultIsClassicPath: a nil spec and topo.Default() route to
// the identical single-DIMM simulation — same Result, no Modules breakdown.
func TestTopologyDefaultIsClassicPath(t *testing.T) {
	base := quickCfg(core.LazyC(6), "mcf")
	withDefault := base
	withDefault.Topology = topo.Default()
	a, b := run(t, base), run(t, withDefault)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Topology=Default() diverged from Topology=nil")
	}
	if len(a.Modules) != 0 {
		t.Fatalf("classic run grew a module breakdown: %+v", a.Modules)
	}
}

// TestMultiModuleRun drives the two-module demo end to end and checks the
// topology semantics hold: both modules see traffic, each reports its own
// scheme, the far module's link latency is echoed, the heatmap stacks both
// modules' banks, and the global stats are the module sums.
func TestMultiModuleRun(t *testing.T) {
	r := run(t, multiCfg())
	if len(r.Modules) != 2 {
		t.Fatalf("Modules = %+v, want 2 entries", r.Modules)
	}
	near, far := r.Modules[0], r.Modules[1]
	if near.Name != "near" || near.Scheme != "baseline" { // "vnc" aliases the baseline scheme
		t.Fatalf("near module = %+v", near)
	}
	if far.Name != "far" || !strings.HasPrefix(far.Scheme, "LazyC") || far.LinkCycles != 600 {
		t.Fatalf("far module = %+v", far)
	}
	if near.MC.WriteOps == 0 || far.MC.WriteOps == 0 {
		t.Fatalf("a module saw no writes: near %d, far %d", near.MC.WriteOps, far.MC.WriteOps)
	}
	if got := near.MC.WriteOps + far.MC.WriteOps; got != r.MC.WriteOps {
		t.Fatalf("module write ops %d do not sum to the global %d", got, r.MC.WriteOps)
	}
	// VnC corrects eagerly, LazyC parks: the per-write correction rates must
	// reflect each module's own scheme.
	if !(near.CorrectionsPerWrite() > far.CorrectionsPerWrite()) {
		t.Fatalf("VnC module corr/write %f must exceed LazyC's %f",
			near.CorrectionsPerWrite(), far.CorrectionsPerWrite())
	}
	if r.Heatmap == nil || r.Heatmap.Banks != near.Banks+far.Banks {
		t.Fatalf("heatmap = %+v, want %d stacked banks", r.Heatmap, near.Banks+far.Banks)
	}
	if r.Metrics == nil {
		t.Fatal("metrics snapshot missing")
	}
}

// TestMultiModuleShardDeterminism is the executor contract extended to
// topologies: byte-identical results at every shard count, including counts
// above the smaller module's bank width (clamped per module).
func TestMultiModuleShardDeterminism(t *testing.T) {
	base := multiCfg()
	want := multiFingerprint(t, run(t, base))
	for _, shards := range []int{2, 4, 16} {
		cfg := base
		cfg.Shards = shards
		if got := multiFingerprint(t, run(t, cfg)); got != want {
			t.Errorf("Shards=%d fingerprint %s != inline %s", shards, got, want)
		}
	}
}

// TestMultiCheckpointResume: a two-module run resumed from a mid-run
// checkpoint is byte-identical to the uninterrupted run, across shard
// counts on both sides of the interruption.
func TestMultiCheckpointResume(t *testing.T) {
	base := multiCfg()
	want := multiFingerprint(t, run(t, base))

	ckptPath := filepath.Join(t.TempDir(), "multi.ckpt")
	w := base
	w.CheckpointPath = ckptPath
	w.CheckpointEvery = 4101 // fires once, at ~51% of the 8000 total refs
	if got := multiFingerprint(t, run(t, w)); got != want {
		t.Errorf("checkpointing perturbed the run: %s != %s", got, want)
	}
	for _, shards := range []int{1, 4} {
		r := base
		r.Shards = shards
		r.ResumeFrom = ckptPath
		if got := multiFingerprint(t, run(t, r)); got != want {
			t.Errorf("resumeShards=%d: resumed fingerprint %s != %s", shards, got, want)
		}
	}
}

// TestMultiCheckpointTopologyMismatch: a multi-module checkpoint encodes
// the canonical topology in its identity and refuses any other layout.
func TestMultiCheckpointTopologyMismatch(t *testing.T) {
	ckptPath := filepath.Join(t.TempDir(), "multi.ckpt")
	w := multiCfg()
	w.CheckpointPath = ckptPath
	w.CheckpointEvery = 4101
	run(t, w)

	r := multiCfg()
	r.Topology = &topo.Spec{Modules: []topo.Module{
		{Name: "near", Scheme: "vnc"},
		{Name: "far", Scheme: "lazyc", ECPEntries: 6, LinkCycles: 900}, // different link
	}}
	r.ResumeFrom = ckptPath
	_, err := Run(r)
	if !errors.Is(err, ErrResume) {
		t.Fatalf("resume under a different topology: err = %v, want ErrResume", err)
	}
	if !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("error does not explain the mismatch: %v", err)
	}
}

// TestMultiCheckpointRejectsV1File: feeding a classic single-DIMM (v1)
// checkpoint to a topology run fails with the typed version error — the
// multi container bumped the snap version precisely so the two formats can
// never be confused.
func TestMultiCheckpointRejectsV1File(t *testing.T) {
	cfg := multiCfg()
	cfg.ResumeFrom = fixturePath // the committed checkpoint_v1.bin golden
	_, err := Run(cfg)
	if !errors.Is(err, ErrResume) {
		t.Fatalf("err = %v, want ErrResume", err)
	}
	var ve *snap.VersionError
	if !errors.As(err, &ve) || ve.Got != checkpointVersion {
		t.Fatalf("err = %v, want *snap.VersionError with Got=%d", err, checkpointVersion)
	}
}

// TestMultiRejectsWearLeveling: intra-row wear leveling is a single-DIMM
// feature; a topology run must refuse it loudly instead of ignoring it.
func TestMultiRejectsWearLeveling(t *testing.T) {
	cfg := multiCfg()
	cfg.WearLevelPsi = 64
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "wear leveling") {
		t.Fatalf("err = %v, want a wear-leveling rejection", err)
	}
}

// TestMultiRejectsBadSpec: spec validation runs before any module is built.
func TestMultiRejectsBadSpec(t *testing.T) {
	cfg := multiCfg()
	cfg.Topology = &topo.Spec{Modules: []topo.Module{{Name: "m", Scheme: "nope"}}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown module scheme must fail")
	}
}
