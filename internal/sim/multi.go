package sim

import (
	"container/heap"
	"fmt"
	"os"
	"slices"

	"sdpcm/internal/alloc"
	"sdpcm/internal/core"
	"sdpcm/internal/ecp"
	"sdpcm/internal/mc"
	"sdpcm/internal/metrics"
	"sdpcm/internal/pcm"
	"sdpcm/internal/rng"
	"sdpcm/internal/snap"
	"sdpcm/internal/topo"
	"sdpcm/internal/trace"
	"sdpcm/internal/vm"
	"sdpcm/internal/wd"
	"sdpcm/internal/workload"
)

// ModuleResult is one module's share of a multi-module run.
type ModuleResult struct {
	// Name, Scheme, Banks, Pages and LinkCycles echo the resolved topology
	// placement (Scheme is the run scheme's name when the module inherited
	// it).
	Name       string
	Scheme     string
	Banks      int
	Pages      int
	LinkCycles int

	MC  mc.Stats
	Dev pcm.Stats
	ECP ecp.Stats
	WD  wd.Stats
}

// CorrectionsPerWrite is the Figure 12 metric restricted to one module.
func (m ModuleResult) CorrectionsPerWrite() float64 {
	if m.MC.WriteOps == 0 {
		return 0
	}
	return float64(m.MC.CorrectionWrites) / float64(m.MC.WriteOps)
}

// moduleRun bundles one module's live machinery: its own device, buddy
// allocator (strip width = the module's bank count), per-bank controllers
// and executor. Addresses handed to a module's executor are module-local —
// the address-range router assigns each core to one module and its address
// space allocates module-local frames, so no global translation exists on
// the hot path.
type moduleRun struct {
	pl      topo.Placement
	scheme  core.Scheme
	link    uint64
	dev     *pcm.Device
	alloc   *alloc.Allocator
	p       *bankPlane
	exec    bankExec
	mirrors []*tagMirror
}

// moduleTiming builds the module's device timing: the Table 2 defaults with
// any per-module overrides applied.
func moduleTiming(m topo.Module) pcm.Timing {
	t := pcm.DefaultTiming
	if m.ReadCycles > 0 {
		t.ReadCycles = m.ReadCycles
	}
	if m.SetCycles > 0 {
		t.SetCycles = m.SetCycles
	}
	if m.ResetCycles > 0 {
		t.ResetCycles = m.ResetCycles
	}
	if m.ParallelBits > 0 {
		t.ParallelBits = m.ParallelBits
	}
	return t
}

// schemeKnown is the topo.Spec.Validate lookup backed by the live scheme
// registry.
func schemeKnown(name string) bool {
	_, err := core.ByName(name, 0)
	return err == nil
}

// newModuleRun constructs module i of the topology. sub must be the module's
// labeled RNG subtree (root "module-<i>"): its "fill" child seeds the
// device background and its "mc" child seeds the per-bank streams, exactly
// mirroring the single-module label order beneath the module root.
func newModuleRun(cfg Config, i int, pl topo.Placement, sub *rng.Rand) (*moduleRun, error) {
	scheme := cfg.Scheme
	if pl.Scheme != "" {
		s, err := core.ByName(pl.Scheme, pl.ECPEntries)
		if err != nil {
			return nil, fmt.Errorf("sim: module %s: %w", pl.Name, err)
		}
		scheme = s
	}
	if err := scheme.Validate(); err != nil {
		return nil, fmt.Errorf("sim: module %s: %w", pl.Name, err)
	}
	timing := moduleTiming(pl.Module)
	dev, err := pcm.NewDevice(pcm.Config{
		Pages:    pl.Pages,
		Banks:    pl.Banks,
		Timing:   timing,
		FillSeed: sub.SplitLabeled("fill").Uint64(),
	})
	if err != nil {
		return nil, fmt.Errorf("sim: module %s: %w", pl.Name, err)
	}
	allocator, err := alloc.NewWithStrip(pl.Pages, pl.RegionPages, pl.Banks)
	if err != nil {
		return nil, fmt.Errorf("sim: module %s: %w", pl.Name, err)
	}
	bankRngs := sub.SplitLabeled("mc").SplitLabeledSeq("bank", pl.Banks)

	shards := cfg.Shards
	if shards > pl.Banks {
		shards = pl.Banks
	}
	m := &moduleRun{pl: pl, scheme: scheme, link: uint64(pl.LinkCycles), dev: dev, alloc: allocator}
	resolve := func(bank int) mc.RegionResolver { return allocator }
	if shards > 1 {
		m.mirrors = make([]*tagMirror, shards)
		for s := range m.mirrors {
			m.mirrors[s] = newTagMirror(allocator)
		}
		resolve = func(bank int) mc.RegionResolver { return m.mirrors[bank%shards] }
	}
	mcCfg := func() mc.Config {
		c := scheme.MCConfig(cfg.WriteQueueCap)
		c.Timing = timing
		if pl.WordLineRate > 0 {
			c.Rates.WordLine = pl.WordLineRate
		}
		if pl.BitLineRate > 0 {
			c.Rates.BitLine = pl.BitLineRate
		}
		return c
	}
	m.p, err = newBankPlane(cfg, dev, mcCfg, resolve, bankRngs)
	if err != nil {
		return nil, fmt.Errorf("sim: module %s: %w", pl.Name, err)
	}
	if shards > 1 {
		se := newShardExec(m.p, m.mirrors, cfg)
		allocator.OnOwnerChange = se.ownerChange
		m.exec = se
	} else {
		m.exec = newInlineExec(m.p, cfg.CheckIntegrity)
	}
	return m, nil
}

// runMulti is the multi-module variant of Run: one moduleRun per topology
// entry, cores assigned round-robin (core i → module i mod M), link latency
// charged on every request and response of a CXL-attached module. RNG label
// order is fixed — "module-<i>" subtrees in module order, then the shared
// "mutator"/"workload" stream — so results depend only on (seed, topology,
// workload), never on scheduling.
func runMulti(cfg Config) (Result, error) {
	spec := cfg.Topology
	if err := spec.Validate(schemeKnown); err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	if cfg.WearLevelPsi > 0 {
		return Result{}, fmt.Errorf("sim: intra-row wear leveling is not supported under a multi-module topology")
	}
	placements, err := spec.Resolve(cfg.MemPages, cfg.RegionPages)
	if err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}

	root := rng.New(cfg.Seed)
	mods := make([]*moduleRun, len(placements))
	for i, pl := range placements {
		m, err := newModuleRun(cfg, i, pl, root.SplitLabeled(fmt.Sprintf("module-%d", i)))
		if err != nil {
			for _, built := range mods[:i] {
				built.exec.close()
			}
			return Result{}, err
		}
		mods[i] = m
	}
	defer func() {
		for _, m := range mods {
			m.exec.close() // idempotent; joins shard goroutines on error paths
		}
	}()

	type coreSrc struct {
		stream trace.Stream
		mut    mutator
	}
	var srcs []coreSrc
	if len(cfg.Streams) > 0 {
		wseed := root.SplitLabeled("mutator").Uint64()
		for i, s := range cfg.Streams {
			srcs = append(srcs, coreSrc{
				stream: s,
				mut:    workload.NewMutator(cfg.MutateChunkProb, wseed+uint64(i)*0x9e3779b97f4a7c15),
			})
		}
	} else {
		gens, err := cfg.Mix.Generators(root.SplitLabeled("workload").Uint64())
		if err != nil {
			return Result{}, err
		}
		for _, g := range gens {
			srcs = append(srcs, coreSrc{stream: g, mut: g})
		}
	}
	if len(cfg.CoreTags) > 0 && len(cfg.CoreTags) != len(srcs) {
		return Result{}, fmt.Errorf("sim: %d CoreTags for %d cores", len(cfg.CoreTags), len(srcs))
	}

	h := make(coreHeap, 0, len(srcs))
	cores := make([]*corePending, len(srcs))
	for i, src := range srcs {
		mod := i % len(mods)
		tag := mods[mod].scheme.Tag
		if len(cfg.CoreTags) > 0 {
			tag = cfg.CoreTags[i]
		}
		as, err := vm.NewAddressSpace(mods[mod].alloc, tag, 0)
		if err != nil {
			return Result{}, err
		}
		cores[i] = &corePending{id: i, mod: mod, stream: src.stream, mut: src.mut, as: as}
		h = append(h, cores[i])
	}
	heap.Init(&h)

	mixName := cfg.Mix.Name
	if len(cfg.Streams) > 0 {
		mixName = "trace-replay"
	}
	res := Result{Scheme: cfg.Scheme.Name, Mix: mixName}

	sumCounters := func(now uint64) simCounters {
		sc := simCounters{cycles: now}
		for _, c := range cores {
			sc.instructions += c.instrs
			sc.tlbMisses += c.as.TLB.Misses
			sc.pageFaults += c.as.Faults
		}
		return sc
	}
	barrierAll := func() {
		for _, m := range mods {
			m.exec.barrier()
		}
	}
	snapshotting := cfg.SnapshotInterval > 0 && cfg.OnSnapshot != nil
	nextSnap := cfg.SnapshotInterval

	ckpt := multiState{cfg: cfg, spec: spec, mods: mods, cores: cores, h: &h, nextSnap: nextSnap}
	checkpointing := cfg.CheckpointEvery > 0 && cfg.CheckpointPath != ""
	if checkpointing || cfg.ResumeFrom != "" {
		for _, m := range mods {
			if err := m.p.ctrls[0].CheckpointSupported(); err != nil {
				return Result{}, fmt.Errorf("%w: module %s: %v", ErrCheckpointUnsupported, m.pl.Name, err)
			}
		}
	}
	if cfg.ResumeFrom != "" {
		active, err := ckpt.restoreCheckpoint(cfg.ResumeFrom)
		if err != nil {
			return Result{}, err
		}
		h = h[:0]
		for _, c := range cores {
			if active[c.id] {
				h = append(h, c)
			}
		}
		heap.Init(&h)
		nextSnap = ckpt.nextSnap
	}

	for h.Len() > 0 {
		c := h[0]
		rec, ok := c.stream.Next()
		if !ok {
			heap.Pop(&h) // replayed trace exhausted
			continue
		}
		c.time += uint64(rec.Gap)
		c.instrs += uint64(rec.Gap) + 1
		m := mods[c.mod]
		if rec.Kind == trace.Read {
			// Lookahead: this module is about to field a blocking read;
			// publish its in-flight batches so workers drain backlog while
			// translation resolves the bank.
			m.exec.hintRead()
		}
		addr, err := translate(c, rec, false)
		if err != nil {
			return Result{}, fmt.Errorf("core %d: %w", c.id, err)
		}
		if rec.Kind == trace.Read {
			// The request crosses the link before the module sees it and
			// the data crosses back: both legs charge the module's link
			// latency on the blocking load.
			done, _, err := m.exec.read(c.time+m.link, addr, addr)
			if err != nil {
				return Result{}, err
			}
			c.time = done + m.link
		} else {
			mut := c.mut.DrawMutation()
			m.exec.write(c.time+m.link, addr, addr, mut)
			c.time++ // posted write: the core only pays the issue cycle
		}
		c.refs++
		if c.refs >= cfg.RefsPerCore {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
		if snapshotting && c.time >= nextSnap {
			barrierAll()
			cfg.OnSnapshot(assembleMultiSnapshot(mods, cfg.TraceEvents, sumCounters(c.time)))
			for nextSnap <= c.time {
				nextSnap += cfg.SnapshotInterval
			}
		}
		ckpt.totalRefs++
		if checkpointing && ckpt.totalRefs%uint64(cfg.CheckpointEvery) == 0 {
			barrierAll()
			ckpt.nextSnap = nextSnap
			if err := writeCheckpoint(cfg.CheckpointPath, ckpt.encodeCheckpoint()); err != nil {
				return Result{}, err
			}
		}
	}
	for _, m := range mods {
		m.exec.close()
		if se, ok := m.exec.(*shardExec); ok {
			if sm := se.execMetrics(); sm != nil {
				res.ExecMetrics = res.ExecMetrics.Merge(sm)
			}
		}
	}

	var maxEnd uint64
	var cpiSum float64
	for _, c := range cores {
		maxEnd = max(maxEnd, c.time)
		if c.instrs > 0 {
			cpiSum += float64(c.time) / float64(c.instrs)
		}
		res.Instructions += c.instrs
		res.TLBMisses += c.as.TLB.Misses
		res.PageFaults += c.as.Faults
	}
	var end uint64
	for _, m := range mods {
		end = max(end, m.p.flushAll(maxEnd))
	}
	if cfg.CheckIntegrity {
		for _, m := range mods {
			for _, sh := range m.exec.shadows() {
				for logical, want := range sh {
					if got := m.p.ctrlFor(logical).PeekData(logical); got != want {
						return Result{}, fmt.Errorf("sim: integrity violation: module %s line %d corrupted after flush (WD escaped VnC)", m.pl.Name, logical)
					}
				}
			}
		}
	}
	res.Cycles = end
	if len(cores) > 0 {
		res.CPI = cpiSum / float64(len(cores))
	}
	res.Modules = make([]ModuleResult, len(mods))
	for i, m := range mods {
		mr := ModuleResult{
			Name:       m.pl.Name,
			Scheme:     m.scheme.Name,
			Banks:      m.pl.Banks,
			Pages:      m.pl.Pages,
			LinkCycles: m.pl.LinkCycles,
		}
		mr.MC, mr.Dev, mr.ECP, mr.WD = m.p.mergedStats()
		res.Modules[i] = mr
		res.MC.Add(mr.MC)
		res.Dev.Add(mr.Dev)
		res.ECP.Add(mr.ECP)
		res.WD.Add(mr.WD)
	}
	if mods[0].p.collecting() {
		res.Metrics = assembleMultiSnapshot(mods, cfg.TraceEvents, simCounters{
			cycles:       res.Cycles,
			instructions: res.Instructions,
			tlbMisses:    res.TLBMisses,
			pageFaults:   res.PageFaults,
		})
		if cfg.OnSnapshot != nil {
			cfg.OnSnapshot(res.Metrics)
		}
	}
	res.Heatmap = stackHeatmaps(mods)
	return res, nil
}

// stackHeatmaps concatenates the per-module heatmaps bank-major in module
// order: global bank b is module m's bank b - sum(banks of modules before
// m). Nil when heatmaps are disabled.
func stackHeatmaps(mods []*moduleRun) *wd.HeatmapSnapshot {
	var out *wd.HeatmapSnapshot
	for _, m := range mods {
		s := m.p.hm.Snapshot()
		if s == nil {
			continue
		}
		if out == nil {
			out = &wd.HeatmapSnapshot{}
		}
		out.Banks += s.Banks
		if s.Regions > out.Regions {
			out.Regions = s.Regions
		}
		out.Cells = append(out.Cells, s.Cells...)
	}
	return out
}

// assembleMultiSnapshot is bankPlane.assembleSnapshot generalized over
// modules: module stats are summed and rendered once, then every module's
// per-bank registries merge in module-major, bank-minor order, and the
// event-ring tails combine into one canonical bounded tail. Pure function of
// per-bank state — byte-identical across shard counts.
func assembleMultiSnapshot(mods []*moduleRun, traceCap int, sc simCounters) *metrics.Snapshot {
	tmp := metrics.New()
	var mcS mc.Stats
	var devS pcm.Stats
	var ecpS ecp.Stats
	var wdS wd.Stats
	for _, m := range mods {
		a, b, c, d := m.p.mergedStats()
		mcS.Add(a)
		devS.Add(b)
		ecpS.Add(c)
		wdS.Add(d)
	}
	mcS.Publish(tmp)
	devS.Publish(tmp)
	ecpS.Publish(tmp)
	wdS.Publish(tmp)
	tmp.Counter("sim.instructions").Add(sc.instructions)
	tmp.Counter("sim.tlb_misses").Add(sc.tlbMisses)
	tmp.Counter("sim.page_faults").Add(sc.pageFaults)
	tmp.Counter("sim.wear_moves").Add(sc.wearMoves)
	tmp.Gauge("sim.cycles").Set(sc.cycles)
	s := tmp.Snapshot()
	var tails [][]metrics.Event
	var dropped []uint64
	for _, m := range mods {
		for b := range m.p.regs {
			bs := m.p.regs[b].Snapshot()
			if traceCap > 0 {
				tails = append(tails, bs.Events)
				dropped = append(dropped, bs.EventsDropped)
			}
			s = s.Merge(bs)
		}
	}
	if traceCap > 0 {
		s.Events, s.EventsDropped = metrics.MergeEventTails(traceCap, tails, dropped)
	} else {
		s.Events, s.EventsDropped = nil, 0
	}
	return s
}

// multiCheckpointVersion is the on-disk format of multi-module checkpoints.
// The classic single-DIMM path keeps writing checkpointVersion files, so old
// checkpoints stay loadable; a version mismatch between the two containers
// surfaces as a snap.VersionError wrapped in ErrResume.
const multiCheckpointVersion = 2

// multiState is runState's multi-module counterpart. Encode and restore run
// only with every module executor quiesced.
type multiState struct {
	cfg   Config
	spec  *topo.Spec
	mods  []*moduleRun
	cores []*corePending
	h     *coreHeap

	totalRefs uint64
	nextSnap  uint64
}

// identity extends the single-module identity with the canonical topology,
// so a checkpoint can never resume under a different module layout.
func (s *multiState) identity() string {
	return s.cfg.checkpointIdentity(len(s.cores)) + " topo=" + s.spec.Canon()
}

// encodeCheckpoint serializes the complete multi-module simulator state:
// the shared core states first, then each module's device, controllers,
// heatmap, allocator, registries and integrity shadow in module order.
func (s *multiState) encodeCheckpoint() []byte {
	e := snap.NewEncoder(multiCheckpointVersion)
	e.Begin("sim.multi")
	e.String(s.identity())
	e.U64(s.totalRefs)
	e.U64(s.nextSnap)

	active := make([]bool, len(s.cores))
	for _, c := range *s.h {
		active[c.id] = true
	}
	replay := len(s.cfg.Streams) > 0
	e.Uvarint(uint64(len(s.cores)))
	for i, c := range s.cores {
		e.Bool(active[i])
		e.U64(c.time)
		e.Uvarint(uint64(c.refs))
		e.U64(c.instrs)
		if replay {
			c.mut.(*workload.Mutator).EncodeState(e)
		} else {
			c.mut.(*workload.Generator).EncodeState(e)
		}
		c.as.EncodeState(e)
	}

	e.Uvarint(uint64(len(s.mods)))
	for _, m := range s.mods {
		m.dev.EncodeState(e)
		for b := range m.p.ctrls {
			m.p.ctrls[b].EncodeState(e)
		}
		m.p.hm.EncodeState(e)
		m.alloc.EncodeState(e)
		for b := range m.p.regs {
			m.p.regs[b].EncodeState(e) // nil-safe: disabled registries encode as absent
		}
		e.Bool(s.cfg.CheckIntegrity)
		if s.cfg.CheckIntegrity {
			merged := make(map[pcm.LineAddr]pcm.Line)
			for _, sh := range m.exec.shadows() {
				for a, l := range sh {
					merged[a] = l
				}
			}
			addrs := make([]pcm.LineAddr, 0, len(merged))
			for a := range merged {
				addrs = append(addrs, a)
			}
			slices.Sort(addrs)
			e.Uvarint(uint64(len(addrs)))
			for _, a := range addrs {
				e.U64(uint64(a))
				pcm.EncodeLine(e, merged[a])
			}
		}
	}
	e.End()
	return e.Finish()
}

// restoreCheckpoint loads a multi-module checkpoint into the freshly
// constructed run and returns each core's heap-membership flag.
func (s *multiState) restoreCheckpoint(path string) ([]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, resumeErr(err)
	}
	d, err := snap.NewDecoder(data, multiCheckpointVersion)
	if err != nil {
		return nil, resumeErr(err)
	}
	d.Begin("sim.multi")
	if id := d.String(); d.Err() == nil && id != s.identity() {
		return nil, resumeErr(fmt.Errorf("checkpoint belongs to a different configuration:\n  theirs: %s\n  ours:   %s",
			id, s.identity()))
	}
	s.totalRefs = d.U64()
	s.nextSnap = d.U64()

	if n := d.Uvarint(); d.Err() == nil && n != uint64(len(s.cores)) {
		return nil, resumeErr(fmt.Errorf("checkpoint has %d cores, this run has %d", n, len(s.cores)))
	}
	active := make([]bool, len(s.cores))
	replay := len(s.cfg.Streams) > 0
	for i, c := range s.cores {
		active[i] = d.Bool()
		c.time = d.U64()
		c.refs = int(d.Uvarint())
		c.instrs = d.U64()
		if replay {
			err = c.mut.(*workload.Mutator).DecodeState(d)
		} else {
			err = c.mut.(*workload.Generator).DecodeState(d)
		}
		if err != nil {
			return nil, resumeErr(err)
		}
		if err := c.as.DecodeState(d); err != nil {
			return nil, resumeErr(err)
		}
	}

	if n := d.Uvarint(); d.Err() == nil && n != uint64(len(s.mods)) {
		return nil, resumeErr(fmt.Errorf("checkpoint has %d modules, this run has %d", n, len(s.mods)))
	}
	for _, m := range s.mods {
		if err := m.dev.DecodeState(d); err != nil {
			return nil, resumeErr(err)
		}
		for b := range m.p.ctrls {
			if err := m.p.ctrls[b].DecodeState(d); err != nil {
				return nil, resumeErr(err)
			}
		}
		if err := m.p.hm.DecodeState(d); err != nil {
			return nil, resumeErr(err)
		}
		if err := m.alloc.DecodeState(d); err != nil {
			return nil, resumeErr(err)
		}
		for b := range m.p.regs {
			if err := m.p.regs[b].DecodeState(d); err != nil {
				return nil, resumeErr(err)
			}
		}
		hasShadow := d.Bool()
		if d.Err() == nil && hasShadow != s.cfg.CheckIntegrity {
			return nil, resumeErr(fmt.Errorf("checkpoint integrity-shadow presence %t does not match this run's %t", hasShadow, s.cfg.CheckIntegrity))
		}
		if hasShadow {
			n := d.Uvarint()
			for i := uint64(0); i < n && d.Err() == nil; i++ {
				a := pcm.LineAddr(d.U64())
				m.exec.restoreShadow(a, pcm.DecodeLine(d))
			}
		}
	}
	d.End()
	if err := d.Close(); err != nil {
		return nil, resumeErr(err)
	}

	// Re-sync each module's shard tag mirrors with its restored region
	// ownership — DecodeState deliberately does not replay OnOwnerChange.
	for _, m := range s.mods {
		for _, mir := range m.mirrors {
			for r := 0; r < m.pl.Pages; r += m.pl.RegionPages {
				if t := m.alloc.RegionTag(pcm.PageAddr(r)); t != alloc.Tag11 {
					mir.apply(r, t, true)
				}
			}
		}
	}

	if replay {
		for _, c := range s.cores {
			if err := fastForward(c.stream, c.refs); err != nil {
				return nil, resumeErr(fmt.Errorf("core %d: %w", c.id, err))
			}
		}
	}
	return active, nil
}
