package sim

import (
	"encoding/json"
	"testing"

	"sdpcm/internal/core"
)

// metricsCfg is quickCfg with collection (and optionally tracing) enabled.
func metricsCfg(scheme core.Scheme, bench string, traceEvents int) Config {
	cfg := quickCfg(scheme, bench)
	cfg.CollectMetrics = true
	cfg.TraceEvents = traceEvents
	return cfg
}

func TestMetricsDisabledByDefault(t *testing.T) {
	r := run(t, quickCfg(core.LazyC(6), "lbm"))
	if r.Metrics != nil {
		t.Fatal("Metrics must be nil when collection is off")
	}
}

func TestMetricsSnapshotMatchesStats(t *testing.T) {
	r := run(t, metricsCfg(core.LazyCPreRead(6), "mcf", 0))
	if r.Metrics == nil {
		t.Fatal("no snapshot despite CollectMetrics")
	}
	s := r.Metrics
	// The snapshot's published counters must agree with the Result's own
	// Stats structs — one source of truth, two views.
	checks := []struct {
		name string
		want uint64
	}{
		{"mc.write_ops", r.MC.WriteOps},
		{"mc.demand_reads", r.MC.DemandReads},
		{"mc.lazy_records", r.MC.LazyRecords},
		{"wd.writes_observed", r.WD.WritesObserved},
		{"ecp.wd_recorded", r.ECP.WDRecorded},
		{"pcm.writes", r.Dev.Writes},
		{"sim.instructions", r.Instructions},
	}
	for _, c := range checks {
		if got := s.Counter(c.name); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
	if got := s.Gauge("sim.cycles"); got != r.Cycles {
		t.Errorf("sim.cycles = %d, want %d", got, r.Cycles)
	}
	// The new distributions must have seen real traffic.
	if hp, ok := s.Histogram("mc.read_latency"); !ok || hp.Count == 0 {
		t.Error("mc.read_latency histogram empty")
	}
	if hp, ok := s.Histogram("mc.queue_depth_at_enqueue"); !ok || hp.Count == 0 {
		t.Error("mc.queue_depth_at_enqueue histogram empty")
	}
}

func TestMetricsDeterministic(t *testing.T) {
	// Same config, same seed: the snapshots must be byte-identical JSON,
	// including the event tail (TraceEvents implies collection).
	cfg := metricsCfg(core.LazyCPreRead(6), "mcf", 0)
	cfg.CollectMetrics = false
	cfg.TraceEvents = 256
	a := run(t, cfg)
	b := run(t, cfg)
	if a.Metrics == nil || b.Metrics == nil {
		t.Fatal("TraceEvents alone should enable collection")
	}
	ja, err := json.Marshal(a.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	jb, _ := json.Marshal(b.Metrics)
	if string(ja) != string(jb) {
		t.Fatalf("snapshots differ between identical runs:\n%s\n%s", ja, jb)
	}
	if !a.Metrics.Equal(b.Metrics) {
		t.Fatal("Equal() disagrees with JSON identity")
	}
	if len(a.Metrics.Events) == 0 {
		t.Fatal("no events traced on a write-heavy LazyC+PreRead run")
	}
}

func TestTraceEventsBounded(t *testing.T) {
	cfg := metricsCfg(core.LazyCPreRead(6), "mcf", 32)
	r := run(t, cfg)
	if n := len(r.Metrics.Events); n > 32 {
		t.Fatalf("trace kept %d events, cap 32", n)
	}
	if r.Metrics.EventsDropped == 0 {
		t.Fatal("expected drops with a 32-event ring on a full run")
	}
	// Seq strictly increases within the kept tail.
	evs := r.Metrics.Events
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("event order broken at %d: %+v -> %+v", i, evs[i-1], evs[i])
		}
	}
}
