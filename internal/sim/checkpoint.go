package sim

import (
	"errors"
	"fmt"
	"os"
	"slices"

	"sdpcm/internal/alloc"
	"sdpcm/internal/pcm"
	"sdpcm/internal/snap"
	"sdpcm/internal/trace"
	"sdpcm/internal/weargap"
	"sdpcm/internal/workload"
)

// checkpointVersion is the on-disk format version. Bump it whenever any
// module's EncodeState layout changes; old files then fail with a
// snap.VersionError instead of decoding garbage.
const checkpointVersion = 1

var (
	// ErrResume marks a failure to load or validate a resume checkpoint.
	// The run can always be restarted cold instead — the sweep runner does
	// exactly that — so callers should treat it as "checkpoint unusable",
	// not "configuration broken".
	ErrResume = errors.New("sim: checkpoint resume failed")
	// ErrCheckpointUnsupported marks a configuration whose state cannot be
	// captured exactly: an opaque correction policy or word-line codec that
	// does not declare its state through mc.PolicyState / the codec state
	// surface. Checkpointing such a run would silently drop state and break
	// the identical-resume contract, so it is refused up front.
	ErrCheckpointUnsupported = errors.New("sim: configuration cannot be checkpointed")
)

// checkpointIdentity renders every behavior-affecting Config field into a
// canonical string stored in (and verified against) each checkpoint, so a
// file can never silently resume a different run. Shards is deliberately
// absent: results are shard-count invariant, and so are checkpoints — a
// Shards=1 checkpoint resumes under Shards=4 and vice versa.
func (c Config) checkpointIdentity(cores int) string {
	s := c.Scheme
	return fmt.Sprintf(
		"scheme=%s layout=%v lazy=%t preread=%t cancel=%t ecp=%d tag=%v noverify=%t nocorrect=%t enc=%q policy=%q hardfn=%t "+
			"mix=%s mixcores=%v streams=%d mutate=%g refs=%d mem=%d region=%d wq=%d seed=%d coretags=%v psi=%d "+
			"metrics=%t trace=%d heat=%d snap=%d integrity=%t cores=%d",
		s.Name, s.Layout, s.LazyCorrection, s.PreRead, s.WriteCancel, s.ECPEntries, s.Tag,
		s.NoVerifyCharge, s.NoCorrectCharge, s.Encoding, s.PolicyKey, s.HardErrorFn != nil,
		c.Mix.Name, c.Mix.Cores, len(c.Streams), c.MutateChunkProb, c.RefsPerCore, c.MemPages,
		c.RegionPages, c.WriteQueueCap, c.Seed, c.CoreTags, c.WearLevelPsi,
		c.CollectMetrics, c.TraceEvents, c.HeatmapRegions, c.SnapshotInterval, c.CheckIntegrity, cores)
}

// runState bundles the live structures of one Run invocation so the
// checkpoint encoder and the resume restorer see the same picture. The
// orchestrator owns it; encode and restore are only called with the
// executor quiesced (post-barrier, or before the main loop), when per-bank
// state is exactly the inline state at this point in program order.
type runState struct {
	cfg       Config
	p         *bankPlane
	exec      bankExec
	allocator *alloc.Allocator
	mirrors   []*tagMirror
	cores     []*corePending
	h         *coreHeap
	wl        *weargap.IntraRow

	// totalRefs counts processed references in program order — one per
	// heap dispatch, identical across shard counts — and triggers
	// checkpoints at Config.CheckpointEvery boundaries.
	totalRefs uint64
	nextSnap  uint64
}

// encodeCheckpoint serializes the complete simulator state. Call only with
// the executor quiesced.
func (s *runState) encodeCheckpoint() []byte {
	e := snap.NewEncoder(checkpointVersion)
	e.Begin("sim.run")
	e.String(s.cfg.checkpointIdentity(len(s.cores)))
	e.U64(s.totalRefs)
	e.U64(s.nextSnap)

	active := make([]bool, len(s.cores))
	for _, c := range *s.h {
		active[c.id] = true
	}
	replay := len(s.cfg.Streams) > 0
	e.Uvarint(uint64(len(s.cores)))
	for i, c := range s.cores {
		e.Bool(active[i])
		e.U64(c.time)
		e.Uvarint(uint64(c.refs))
		e.U64(c.instrs)
		if replay {
			// Replayed streams are fast-forwarded by record count on
			// resume; only the write-back mutator carries RNG state.
			c.mut.(*workload.Mutator).EncodeState(e)
		} else {
			c.mut.(*workload.Generator).EncodeState(e)
		}
		c.as.EncodeState(e)
	}

	s.p.dev.EncodeState(e)
	for b := range s.p.ctrls {
		s.p.ctrls[b].EncodeState(e)
	}
	s.p.hm.EncodeState(e)
	s.allocator.EncodeState(e)
	e.Bool(s.wl != nil)
	if s.wl != nil {
		s.wl.EncodeState(e)
	}
	for b := range s.p.regs {
		s.p.regs[b].EncodeState(e) // nil-safe: disabled registries encode as absent
	}

	e.Bool(s.cfg.CheckIntegrity)
	if s.cfg.CheckIntegrity {
		merged := make(map[pcm.LineAddr]pcm.Line)
		for _, sh := range s.exec.shadows() {
			for a, l := range sh {
				merged[a] = l
			}
		}
		addrs := make([]pcm.LineAddr, 0, len(merged))
		for a := range merged {
			addrs = append(addrs, a)
		}
		slices.Sort(addrs)
		e.Uvarint(uint64(len(addrs)))
		for _, a := range addrs {
			e.U64(uint64(a))
			pcm.EncodeLine(e, merged[a])
		}
	}
	e.End()
	return e.Finish()
}

// writeCheckpoint publishes a checkpoint atomically: a kill at any instant
// leaves either the previous complete file or the new one, never a torn
// write, because the content lands under a temporary name first and the
// rename is atomic on POSIX filesystems.
func writeCheckpoint(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("sim: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("sim: publishing checkpoint: %w", err)
	}
	return nil
}

func resumeErr(err error) error { return fmt.Errorf("%w: %w", ErrResume, err) }

// restoreCheckpoint loads a checkpoint into the freshly constructed run and
// returns each core's heap-membership flag. Setup (seeding, construction,
// instrument registration) has already re-run deterministically from
// Config, so only mutable state is overwritten here. All failures wrap
// ErrResume; the caller can fall back to a cold start.
func (s *runState) restoreCheckpoint(path string) ([]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, resumeErr(err)
	}
	d, err := snap.NewDecoder(data, checkpointVersion)
	if err != nil {
		return nil, resumeErr(err)
	}
	d.Begin("sim.run")
	if id := d.String(); d.Err() == nil && id != s.cfg.checkpointIdentity(len(s.cores)) {
		return nil, resumeErr(fmt.Errorf("checkpoint belongs to a different configuration:\n  theirs: %s\n  ours:   %s",
			id, s.cfg.checkpointIdentity(len(s.cores))))
	}
	s.totalRefs = d.U64()
	s.nextSnap = d.U64()

	if n := d.Uvarint(); d.Err() == nil && n != uint64(len(s.cores)) {
		return nil, resumeErr(fmt.Errorf("checkpoint has %d cores, this run has %d", n, len(s.cores)))
	}
	active := make([]bool, len(s.cores))
	replay := len(s.cfg.Streams) > 0
	for i, c := range s.cores {
		active[i] = d.Bool()
		c.time = d.U64()
		c.refs = int(d.Uvarint())
		c.instrs = d.U64()
		if replay {
			err = c.mut.(*workload.Mutator).DecodeState(d)
		} else {
			err = c.mut.(*workload.Generator).DecodeState(d)
		}
		if err != nil {
			return nil, resumeErr(err)
		}
		if err := c.as.DecodeState(d); err != nil {
			return nil, resumeErr(err)
		}
	}

	if err := s.p.dev.DecodeState(d); err != nil {
		return nil, resumeErr(err)
	}
	for b := range s.p.ctrls {
		if err := s.p.ctrls[b].DecodeState(d); err != nil {
			return nil, resumeErr(err)
		}
	}
	if err := s.p.hm.DecodeState(d); err != nil {
		return nil, resumeErr(err)
	}
	if err := s.allocator.DecodeState(d); err != nil {
		return nil, resumeErr(err)
	}
	hasWL := d.Bool()
	if d.Err() == nil && hasWL != (s.wl != nil) {
		return nil, resumeErr(fmt.Errorf("checkpoint wear-leveling presence %t does not match this run's %t", hasWL, s.wl != nil))
	}
	if hasWL {
		if err := s.wl.DecodeState(d); err != nil {
			return nil, resumeErr(err)
		}
	}
	for b := range s.p.regs {
		if err := s.p.regs[b].DecodeState(d); err != nil {
			return nil, resumeErr(err)
		}
	}

	hasShadow := d.Bool()
	if d.Err() == nil && hasShadow != s.cfg.CheckIntegrity {
		return nil, resumeErr(fmt.Errorf("checkpoint integrity-shadow presence %t does not match this run's %t", hasShadow, s.cfg.CheckIntegrity))
	}
	if hasShadow {
		// Direct worker-map writes are safe here: restore runs before the
		// main loop posts any batch, and the first channel send orders
		// these writes before all worker reads.
		n := d.Uvarint()
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			a := pcm.LineAddr(d.U64())
			s.exec.restoreShadow(a, pcm.DecodeLine(d))
		}
	}
	d.End()
	if err := d.Close(); err != nil {
		return nil, resumeErr(err)
	}

	// Re-sync the shard tag mirrors with the restored region ownership —
	// DecodeState deliberately does not replay OnOwnerChange events.
	for _, m := range s.mirrors {
		for r := 0; r < s.cfg.MemPages; r += s.cfg.RegionPages {
			if t := s.allocator.RegionTag(pcm.PageAddr(r)); t != alloc.Tag11 {
				m.apply(r, t, true)
			}
		}
	}

	// Caller-provided trace streams carry no serializable state; their
	// position is exactly the number of records this core consumed.
	if replay {
		for _, c := range s.cores {
			if err := fastForward(c.stream, c.refs); err != nil {
				return nil, resumeErr(fmt.Errorf("core %d: %w", c.id, err))
			}
		}
	}
	return active, nil
}

// skipper is the optional fast-path for stream fast-forwarding; the
// trace.StreamReader and trace.SliceStream implement it.
type skipper interface {
	Skip(n int) (int, error)
}

func fastForward(s trace.Stream, n int) error {
	if n == 0 {
		return nil
	}
	if sk, ok := s.(skipper); ok {
		m, err := sk.Skip(n)
		if err != nil {
			return err
		}
		if m != n {
			return fmt.Errorf("sim: stream ended after %d of %d replayed records", m, n)
		}
		return nil
	}
	for i := 0; i < n; i++ {
		if _, ok := s.Next(); !ok {
			return fmt.Errorf("sim: stream ended after %d of %d replayed records", i, n)
		}
	}
	return nil
}
