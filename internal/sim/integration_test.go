package sim

import (
	"testing"

	"sdpcm/internal/alloc"
	"sdpcm/internal/core"
	"sdpcm/internal/trace"
	"sdpcm/internal/workload"
)

// Integration tests: cross-component invariants of full-system runs.

func TestEncodingAblation(t *testing.T) {
	// DIN encoding must manifest fewer word-line errors than raw storage;
	// Flip-N-Write must program fewer cells than either.
	results := map[string]Result{}
	for _, enc := range []string{"din", "fnw", "none"} {
		s := core.LazyC(6)
		s.Encoding = enc
		r := run(t, quickCfg(s, "lbm"))
		results[enc] = r
	}
	wl := func(e string) float64 { return results[e].WordLineErrorsPerWrite() }
	cells := func(e string) float64 {
		return float64(results[e].Dev.CellWrites()) / float64(results[e].MC.WriteOps)
	}
	if wl("din") >= wl("none") {
		t.Errorf("DIN wl-errors %v must beat raw %v", wl("din"), wl("none"))
	}
	if cells("fnw") >= cells("none") {
		t.Errorf("FNW cells/write %v must beat raw %v", cells("fnw"), cells("none"))
	}
}

func TestVerifyReadsMatchAllocatorExpectation(t *testing.T) {
	// Steady-state verification reads per write op should track the
	// allocator's analytic expectation (2 reads per verified neighbour:
	// pre + post), modulo region boundaries and row edges.
	for _, tc := range []struct {
		tag  alloc.Tag
		want float64 // expected verified neighbours per write
	}{
		{alloc.Tag11, 2.0},
		{alloc.Tag23, 1.0},
		{alloc.Tag34, 4.0 / 3.0},
	} {
		s := core.NMAlloc(tc.tag)
		if tc.tag == alloc.Tag11 {
			s = core.Baseline()
		}
		r := run(t, quickCfg(s, "lbm"))
		got := float64(r.MC.VerifyReads) / float64(r.MC.WriteOps) / 2
		if got < tc.want*0.85 || got > tc.want*1.15 {
			t.Errorf("%v: verified neighbours per write = %v, want ~%v",
				tc.tag, got, tc.want)
		}
	}
}

func TestPreReadActivityOnlyWhenEnabled(t *testing.T) {
	off := run(t, quickCfg(core.LazyC(6), "lbm"))
	if off.MC.PreReadsIssued != 0 || off.MC.PreReadsForwarded != 0 {
		t.Fatal("PreRead activity without the scheme enabled")
	}
	on := run(t, quickCfg(core.LazyCPreRead(6), "lbm"))
	if on.MC.PreReadsIssued == 0 {
		t.Fatal("PreRead scheme never issued a preread")
	}
	if on.MC.PreReadHits == 0 {
		t.Fatal("PreRead never paid off (no write op found both buffers ready)")
	}
}

func TestWriteCancellationPreemptions(t *testing.T) {
	// A small queue on a bursty (sequential) workload forces full-queue
	// drains, which is when cancellation matters.
	cfg := quickCfg(core.WC(), "lbm")
	cfg.WriteQueueCap = 8
	wc := run(t, cfg)
	if wc.MC.Drains == 0 {
		t.Skip("no drains triggered at this scale; nothing to preempt")
	}
	if wc.MC.ReadPreemptions == 0 {
		t.Fatal("write cancellation never preempted a drain despite bursty drains")
	}
	cfg = quickCfg(core.Baseline(), "lbm")
	cfg.WriteQueueCap = 8
	base := run(t, cfg)
	if base.MC.ReadPreemptions != 0 {
		t.Fatal("baseline must not record preemptions")
	}
}

func TestQueueSizeMonotonicityForIntensiveMix(t *testing.T) {
	// For a write-intensive mix, shrinking the queue to 8 must not *help*:
	// more frequent bursty drains.
	cfg := quickCfg(core.LazyCPreRead(6), "mcf")
	cfg.WriteQueueCap = 8
	q8 := run(t, cfg)
	cfg.WriteQueueCap = 32
	q32 := run(t, cfg)
	if q32.CPI > q8.CPI*1.05 {
		t.Errorf("wq32 CPI %v significantly worse than wq8 %v", q32.CPI, q8.CPI)
	}
}

func TestAgingDegradesGracefully(t *testing.T) {
	fresh := core.LazyC(6)
	aged := core.LazyC(6)
	aged.HardErrorFn = core.HardErrorModel(1.0)
	rFresh := run(t, quickCfg(fresh, "lbm"))
	rAged := run(t, quickCfg(aged, "lbm"))
	// Aged DIMM does more corrections (fewer free entries)...
	if rAged.CorrectionsPerWrite() < rFresh.CorrectionsPerWrite() {
		t.Errorf("aged corrections %v below fresh %v",
			rAged.CorrectionsPerWrite(), rFresh.CorrectionsPerWrite())
	}
	// ...but the slowdown stays modest (Fig 14's point).
	if rAged.CPI > rFresh.CPI*1.25 {
		t.Errorf("aged CPI %v blew up vs fresh %v", rAged.CPI, rFresh.CPI)
	}
}

func TestFrameAssignmentsRespectMarking(t *testing.T) {
	// Under (1:2), the workload's pages land only in even strips, so
	// VnC activity away from region boundaries must be ~zero.
	r := run(t, quickCfg(core.NMAlloc(alloc.Tag12), "gemsFDTD"))
	perOp := float64(r.MC.VerifyReads) / float64(r.MC.WriteOps)
	if perOp > 0.2 {
		t.Errorf("(1:2) verify reads per op = %v, want near zero", perOp)
	}
	// Region-boundary strips always verify one side (§4.4), so a small
	// residual of corrections remains — but no more than a few percent.
	if r.MC.CorrectionWrites > r.MC.WriteOps/25 {
		t.Errorf("(1:2) corrections = %d for %d ops", r.MC.CorrectionWrites, r.MC.WriteOps)
	}
}

func TestHeterogeneousMix(t *testing.T) {
	// Cores running different benchmarks share banks and the allocator.
	cfg := Config{
		Scheme:      core.LazyC(6),
		Mix:         workload.MixSpec{Name: "mixed", Cores: []string{"mcf", "lbm", "wrf", "stream"}},
		RefsPerCore: 3000,
		MemPages:    1 << 16,
		RegionPages: 1024,
		Seed:        13,
	}
	r := run(t, cfg)
	if r.Mix != "mixed" || r.Cycles == 0 {
		t.Fatalf("result = %+v", r)
	}
	if r.PageFaults == 0 {
		t.Fatal("no demand paging in mixed run")
	}
}

func TestCorrectionsScaleWithVolatility(t *testing.T) {
	// gemsFDTD (low bit-change rate) must trigger fewer corrections per
	// write than mcf under basic VnC (§6.4's gemsFDTD remark).
	gems := run(t, quickCfg(core.Baseline(), "gemsFDTD"))
	mcf := run(t, quickCfg(core.Baseline(), "mcf"))
	if gems.CorrectionsPerWrite() >= mcf.CorrectionsPerWrite() {
		t.Errorf("gemsFDTD corrections %v >= mcf %v",
			gems.CorrectionsPerWrite(), mcf.CorrectionsPerWrite())
	}
}

func TestECPAbsorbsWithoutCorrections(t *testing.T) {
	r := run(t, quickCfg(core.LazyC(12), "lbm"))
	if r.MC.LazyRecords == 0 {
		t.Fatal("LazyC(12) never recorded an error batch")
	}
	if r.CorrectionsPerWrite() > 0.05 {
		t.Errorf("LazyC(12) corrections per write = %v, want ~0", r.CorrectionsPerWrite())
	}
}

func TestWDFreeAndDensityConsistency(t *testing.T) {
	// The three layouts must order by CPI: prototype == DIN <= baseline
	// (no VnC on the first two; identical timing).
	din := run(t, quickCfg(core.DIN(), "lbm"))
	proto := run(t, quickCfg(core.WDFree(), "lbm"))
	base := run(t, quickCfg(core.Baseline(), "lbm"))
	if proto.CPI > base.CPI || din.CPI > base.CPI {
		t.Errorf("WD-free layouts slower than baseline: %v %v vs %v",
			proto.CPI, din.CPI, base.CPI)
	}
	// DIN and prototype differ only in in-line rewrite pulses; their CPI
	// should be close.
	ratio := din.CPI / proto.CPI
	if ratio < 0.9 || ratio > 1.15 {
		t.Errorf("DIN/prototype CPI ratio = %v, want ~1", ratio)
	}
}

func TestTraceReplayMode(t *testing.T) {
	// Capture a generator's stream into records, replay them, and confirm
	// the simulator consumes them faithfully.
	spec, err := workload.ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenerator(spec, 77)
	if err != nil {
		t.Fatal(err)
	}
	recs := workload.Capture(g, 5000)
	streams := []trace.Stream{
		trace.NewSliceStream(recs),
		trace.NewSliceStream(recs), // two cores replaying the same trace
	}
	r, err := Run(Config{
		Scheme:      core.LazyC(6),
		Streams:     streams,
		RefsPerCore: 1 << 30, // streams exhaust first
		MemPages:    1 << 16,
		RegionPages: 1024,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mix != "trace-replay" {
		t.Fatalf("mix label = %q", r.Mix)
	}
	total := r.MC.DemandReads + r.MC.ForwardedReads + r.MC.WriteRequests
	if total != 2*5000 {
		t.Fatalf("replayed %d refs, want 10000", total)
	}
	if r.MC.WriteOps == 0 || r.CPI <= 0 {
		t.Fatalf("replay produced no activity: %+v", r.MC)
	}
}

func TestTraceReplayDeterminism(t *testing.T) {
	spec, _ := workload.ByName("mcf")
	g, _ := workload.NewGenerator(spec, 3)
	recs := workload.Capture(g, 2000)
	runOnce := func() Result {
		r, err := Run(Config{
			Scheme:      core.Baseline(),
			Streams:     []trace.Stream{trace.NewSliceStream(recs)},
			MemPages:    1 << 16,
			RegionPages: 1024,
			Seed:        9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := runOnce(), runOnce()
	if a.Cycles != b.Cycles || a.MC != b.MC {
		t.Fatal("trace replay must be deterministic")
	}
}

func TestEndToEndIntegrityAllSchemes(t *testing.T) {
	// The system-level statement of the paper's reliability claim: under
	// every scheme, with disturbance constantly flipping real bits, the
	// memory system never returns corrupted data.
	schemes := []core.Scheme{
		core.Baseline(),
		core.LazyC(6),
		core.LazyC(0), // LazyC degenerate: every batch overflows
		core.LazyCPreRead(6),
		core.AllThree(6, alloc.Tag23),
		core.NMAlloc(alloc.Tag12),
		core.WCLazyC(6),
		core.DIN(),
	}
	for _, s := range schemes {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			cfg := quickCfg(s, "mcf") // highest volatility + write rate
			cfg.CheckIntegrity = true
			cfg.RefsPerCore = 3000
			if _, err := Run(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestIntegrityCheckedUnderAging(t *testing.T) {
	s := core.LazyC(6)
	s.HardErrorFn = core.HardErrorModel(1.0)
	cfg := quickCfg(s, "lbm")
	cfg.CheckIntegrity = true
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWearLevelingIntegrity(t *testing.T) {
	// Start-Gap rotation must never lose or corrupt data, even with
	// disturbance active and copies racing queued writes.
	cfg := quickCfg(core.LazyC(6), "lbm")
	cfg.WearLevelPsi = 20 // rotate aggressively
	cfg.CheckIntegrity = true
	r := run(t, cfg)
	if r.WearMoves == 0 {
		t.Fatal("wear leveling never moved the gap")
	}
}

func TestWearLevelingCostIsModest(t *testing.T) {
	base := run(t, quickCfg(core.LazyC(6), "lbm"))
	cfg := quickCfg(core.LazyC(6), "lbm")
	cfg.WearLevelPsi = 100 // the original paper's period
	wlr := run(t, cfg)
	if wlr.WearMoves == 0 {
		t.Fatal("no gap movements at psi=100")
	}
	// ~1% extra writes at psi=100: CPI must stay close.
	if wlr.CPI > base.CPI*1.10 {
		t.Errorf("wear leveling CPI %v vs %v: cost too high", wlr.CPI, base.CPI)
	}
}

func TestPerCoreAllocatorTags(t *testing.T) {
	// §4.4's usage model: one high-priority write-intensive core requests
	// (1:2) allocation; the rest run under the default allocator. The
	// memory controller must skip VnC only for the (1:2) core's pages.
	mixed := Config{
		Scheme:      core.LazyC(6),
		Mix:         workload.MixSpec{Name: "priority-mix", Cores: []string{"mcf", "lbm", "lbm", "lbm"}},
		CoreTags:    []alloc.Tag{alloc.Tag12, alloc.Tag11, alloc.Tag11, alloc.Tag11},
		RefsPerCore: 3000,
		MemPages:    1 << 16,
		RegionPages: 1024,
		Seed:        21,
	}
	r := run(t, mixed)
	// With only some cores under (1:2), verification happens but less than
	// a uniform (1:1) run.
	uniform := mixed
	uniform.CoreTags = nil
	u := run(t, uniform)
	if r.MC.VerifyReads >= u.MC.VerifyReads {
		t.Errorf("per-core (1:2) verify reads %d must undercut uniform %d",
			r.MC.VerifyReads, u.MC.VerifyReads)
	}
	if r.MC.VerifyReads == 0 {
		t.Error("the (1:1) cores must still verify")
	}
	// Mismatched tag count is rejected.
	bad := mixed
	bad.CoreTags = bad.CoreTags[:2]
	if _, err := Run(bad); err == nil {
		t.Error("mismatched CoreTags length must be rejected")
	}
	// Integrity still holds with mixed tags.
	mixed.CheckIntegrity = true
	run(t, mixed)
}
