package sim

import (
	"testing"

	"sdpcm/internal/core"
	"sdpcm/internal/metrics"
	"sdpcm/internal/wd"
)

func TestSnapshotIntervalPublishesMidRun(t *testing.T) {
	cfg := quickCfg(core.LazyCPreRead(6), "mcf")
	cfg.SnapshotInterval = 20000
	var snaps []*metrics.Snapshot
	cfg.OnSnapshot = func(s *metrics.Snapshot) { snaps = append(snaps, s) }
	r := run(t, cfg)
	if r.Metrics == nil {
		t.Fatal("SnapshotInterval alone should enable collection")
	}
	// At least one mid-run publication plus the final one.
	if len(snaps) < 2 {
		t.Fatalf("got %d snapshots, want >= 2 (mid-run + final)", len(snaps))
	}
	final := snaps[len(snaps)-1]
	if !final.Equal(r.Metrics) {
		t.Fatal("last publication must be the final snapshot")
	}
	// Cumulative counters must be monotone across publications and strictly
	// below the final value mid-run (the run makes steady write traffic).
	var prev uint64
	for i, s := range snaps {
		w := s.Counter("mc.write_ops")
		if w < prev {
			t.Fatalf("mc.write_ops went backwards at snapshot %d: %d -> %d", i, prev, w)
		}
		prev = w
	}
	if first := snaps[0].Counter("mc.write_ops"); first >= final.Counter("mc.write_ops") {
		t.Fatalf("first snapshot write_ops %d not below final %d", first, final.Counter("mc.write_ops"))
	}
	// Mid-run snapshots carry the live cycle gauge.
	if snaps[0].Gauge("sim.cycles") == 0 {
		t.Fatal("mid-run snapshot missing sim.cycles")
	}
	if snaps[0].Gauge("sim.cycles") >= final.Gauge("sim.cycles") {
		t.Fatal("mid-run cycle gauge should precede the final one")
	}
}

func TestSnapshotIntervalDoesNotPerturbResults(t *testing.T) {
	base := run(t, quickCfg(core.LazyCPreRead(6), "mcf"))
	cfg := quickCfg(core.LazyCPreRead(6), "mcf")
	cfg.SnapshotInterval = 10000
	cfg.OnSnapshot = func(*metrics.Snapshot) {}
	obs := run(t, cfg)
	if base.Cycles != obs.Cycles || base.MC != obs.MC || base.WD != obs.WD {
		t.Fatal("mid-run snapshotting must not change simulation results")
	}
}

func TestHeatmapCollected(t *testing.T) {
	cfg := quickCfg(core.LazyCPreRead(6), "mcf")
	cfg.HeatmapRegions = 8
	r := run(t, cfg)
	h := r.Heatmap
	if h == nil {
		t.Fatal("HeatmapRegions set but Result.Heatmap nil")
	}
	if h.Regions != 8 || len(h.Cells) != h.Banks {
		t.Fatalf("bad heatmap shape: banks=%d regions=%d rows=%d", h.Banks, h.Regions, len(h.Cells))
	}
	// A write-heavy LazyC+PreRead run must actually disturb something.
	if h.Total(func(c wd.HeatCell) uint64 { return c.Injected }) == 0 {
		t.Fatal("no injected bit-line flips recorded in the heatmap")
	}
	if h.Total(func(c wd.HeatCell) uint64 { return c.Flushed }) == 0 {
		t.Fatal("no flushed cells recorded in the heatmap")
	}
	// The heatmap must agree with the engine's own injected-flip counter.
	if got, want := h.Total(func(c wd.HeatCell) uint64 { return c.Injected }), r.WD.BitLineFlips; got != want {
		t.Fatalf("heatmap injected = %d, WD.BitLineFlips = %d", got, want)
	}
}

func TestHeatmapDisabledByDefault(t *testing.T) {
	r := run(t, quickCfg(core.LazyCPreRead(6), "mcf"))
	if r.Heatmap != nil {
		t.Fatal("heatmap must be nil unless HeatmapRegions is set")
	}
}
