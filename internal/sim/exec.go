package sim

import (
	"fmt"
	"sync"

	"sdpcm/internal/alloc"
	"sdpcm/internal/pcm"
	"sdpcm/internal/workload"
)

// bankExec executes memory-system operations against the bank plane. The
// orchestrator (core model, address translation, wear leveling, mutation
// drawing) issues ops in global program order; an executor must apply the
// ops touching any one bank in exactly that order. Two implementations:
// inlineExec applies every op at issue time on the calling goroutine
// (Config.Shards <= 1); shardExec batches ops to per-shard-group goroutines
// under a conservative bounded-lag window (cores couple shards only through
// blocking reads, which rendezvous, and posted writes, which may lag).
type bankExec interface {
	// read performs a blocking demand read and returns its completion time
	// and data. logical keys the integrity shadow; err reports a shadow
	// mismatch, surfaced in program order.
	read(now uint64, addr, logical pcm.LineAddr) (uint64, pcm.Line, error)
	// write posts a write of the pre-drawn mutation applied to the line's
	// latest queued-or-stored content.
	write(now uint64, addr, logical pcm.LineAddr, m workload.Mutation)
	// copyLine posts a Start-Gap line copy (same bank: Start-Gap rotates
	// slots within a row).
	copyLine(now uint64, from, to pcm.LineAddr)
	// ownerChange broadcasts an allocator region-ownership mutation, ordered
	// before every op issued after it.
	ownerChange(regionStart int, t alloc.Tag, present bool)
	// barrier blocks until every posted op has been applied, so the plane
	// can be snapshotted consistently.
	barrier()
	// close flushes and joins; the plane may be accessed directly after.
	close()
	// shadows returns the integrity shadow maps (post-close; nil entries
	// when integrity checking is off).
	shadows() []map[pcm.LineAddr]pcm.Line
	// restoreShadow seeds one integrity-shadow entry during a checkpoint
	// resume. Must only be called before any op has been posted: the first
	// batch publication orders these writes before all worker reads.
	restoreShadow(logical pcm.LineAddr, data pcm.Line)
}

func integrityReadErr(logical pcm.LineAddr) error {
	return fmt.Errorf("sim: integrity violation: read of line %d returned corrupted data", logical)
}

// inlineExec runs the per-bank-decomposed plane on the calling goroutine.
// The live allocator is each controller's RegionResolver: ops execute at
// issue time, when mirror state and allocator state would coincide anyway.
type inlineExec struct {
	p      *bankPlane
	shadow map[pcm.LineAddr]pcm.Line
}

func newInlineExec(p *bankPlane, integrity bool) *inlineExec {
	e := &inlineExec{p: p}
	if integrity {
		e.shadow = make(map[pcm.LineAddr]pcm.Line)
	}
	return e
}

func (e *inlineExec) read(now uint64, addr, logical pcm.LineAddr) (uint64, pcm.Line, error) {
	done, data := e.p.ctrlFor(addr).Read(now, addr)
	if e.shadow != nil {
		if want, ok := e.shadow[logical]; ok && data != want {
			return done, data, integrityReadErr(logical)
		}
	}
	return done, data, nil
}

func (e *inlineExec) write(now uint64, addr, logical pcm.LineAddr, m workload.Mutation) {
	ctrl := e.p.ctrlFor(addr)
	data := pcm.Line(m.Apply([8]uint64(ctrl.LatestData(addr))))
	ctrl.Write(now, addr, data)
	if e.shadow != nil {
		e.shadow[logical] = data
	}
}

func (e *inlineExec) copyLine(now uint64, from, to pcm.LineAddr) {
	ctrl := e.p.ctrlFor(to)
	ctrl.Write(now, to, ctrl.LatestData(from))
}

func (e *inlineExec) ownerChange(int, alloc.Tag, bool) {} // live allocator resolves
func (e *inlineExec) barrier()                         {}
func (e *inlineExec) close()                           {}

func (e *inlineExec) shadows() []map[pcm.LineAddr]pcm.Line {
	return []map[pcm.LineAddr]pcm.Line{e.shadow}
}

func (e *inlineExec) restoreShadow(logical pcm.LineAddr, data pcm.Line) {
	if e.shadow != nil {
		e.shadow[logical] = data
	}
}

// Sharded execution tuning. opBatch bounds how many posted ops accumulate
// before a shard's batch is published; inFlightBatches bounds how far a
// shard may lag the orchestrator (the conservative window): the orchestrator
// blocks rather than let a shard fall further behind, keeping memory bounded
// without affecting results (order per bank, not timing, determines state).
const (
	opBatch         = 64
	inFlightBatches = 4
	freeBufDepth    = 8
)

type opKind uint8

const (
	opWrite opKind = iota
	opRead
	opCopy
	opTag
	opBarrier
)

// op is one element of a shard's ordered work stream.
type op struct {
	kind    opKind
	now     uint64
	addr    pcm.LineAddr // target line (read/write), copy destination
	from    pcm.LineAddr // copy source
	logical pcm.LineAddr // pre-wear-leveling address keying the shadow
	m       workload.Mutation

	region  int // opTag payload
	tag     alloc.Tag
	present bool
}

// readReply is the rendezvous payload for opRead and opBarrier.
type readReply struct {
	done uint64
	data pcm.Line
	err  error
}

// shardWorker owns one shard group's banks: bank b belongs to shard
// b % numShards. Exactly one goroutine applies its op stream, so each bank's
// controller sees its ops in posted order — global program order restricted
// to that bank — and per-bank state evolves identically to inline execution.
type shardWorker struct {
	in      chan []op
	replies chan readReply // cap 1: at most one outstanding read/barrier
	freeBuf chan []op
	pending []op
	shadow  map[pcm.LineAddr]pcm.Line
	mirror  *tagMirror
}

// shardExec partitions the plane's banks over numShards worker goroutines.
type shardExec struct {
	p      *bankPlane
	shards []*shardWorker
	wg     sync.WaitGroup
	closed bool
}

// newShardExec starts the workers. mirrors[s] must be the RegionResolver the
// plane's shard-s controllers were built with.
func newShardExec(p *bankPlane, mirrors []*tagMirror, integrity bool) *shardExec {
	e := &shardExec{p: p, shards: make([]*shardWorker, len(mirrors))}
	for s := range e.shards {
		w := &shardWorker{
			in:      make(chan []op, inFlightBatches),
			replies: make(chan readReply, 1),
			freeBuf: make(chan []op, freeBufDepth),
			pending: make([]op, 0, opBatch),
			mirror:  mirrors[s],
		}
		if integrity {
			w.shadow = make(map[pcm.LineAddr]pcm.Line)
		}
		e.shards[s] = w
		e.wg.Add(1)
		go w.loop(p, &e.wg)
	}
	return e
}

func (w *shardWorker) loop(p *bankPlane, wg *sync.WaitGroup) {
	defer wg.Done()
	for batch := range w.in {
		for i := range batch {
			o := &batch[i]
			switch o.kind {
			case opWrite:
				ctrl := p.ctrlFor(o.addr)
				data := pcm.Line(o.m.Apply([8]uint64(ctrl.LatestData(o.addr))))
				ctrl.Write(o.now, o.addr, data)
				if w.shadow != nil {
					w.shadow[o.logical] = data
				}
			case opRead:
				ctrl := p.ctrlFor(o.addr)
				done, data := ctrl.Read(o.now, o.addr)
				var err error
				if w.shadow != nil {
					if want, ok := w.shadow[o.logical]; ok && data != want {
						err = integrityReadErr(o.logical)
					}
				}
				w.replies <- readReply{done: done, data: data, err: err}
			case opCopy:
				ctrl := p.ctrlFor(o.addr)
				ctrl.Write(o.now, o.addr, ctrl.LatestData(o.from))
			case opTag:
				w.mirror.apply(o.region, o.tag, o.present)
			case opBarrier:
				w.replies <- readReply{}
			}
		}
		select {
		case w.freeBuf <- batch[:0]:
		default: // ring full; let the GC take it
		}
	}
}

func (e *shardExec) shardFor(a pcm.LineAddr) *shardWorker {
	return e.shards[e.p.bankOf(a)%len(e.shards)]
}

// flush publishes a shard's pending ops and hands the orchestrator a fresh
// (usually recycled) accumulation buffer.
func (e *shardExec) flush(w *shardWorker) {
	if len(w.pending) == 0 {
		return
	}
	w.in <- w.pending
	select {
	case w.pending = <-w.freeBuf:
	default:
		w.pending = make([]op, 0, opBatch)
	}
}

func (e *shardExec) post(w *shardWorker, o op) {
	w.pending = append(w.pending, o)
	if len(w.pending) >= opBatch {
		e.flush(w)
	}
}

func (e *shardExec) read(now uint64, addr, logical pcm.LineAddr) (uint64, pcm.Line, error) {
	w := e.shardFor(addr)
	w.pending = append(w.pending, op{kind: opRead, now: now, addr: addr, logical: logical})
	e.flush(w)
	r := <-w.replies
	return r.done, r.data, r.err
}

func (e *shardExec) write(now uint64, addr, logical pcm.LineAddr, m workload.Mutation) {
	e.post(e.shardFor(addr), op{kind: opWrite, now: now, addr: addr, logical: logical, m: m})
}

func (e *shardExec) copyLine(now uint64, from, to pcm.LineAddr) {
	// Start-Gap rotates a line within its row: from and to share a bank, so
	// the copy is a single-shard op and LatestData(from) at application time
	// sees exactly the bank state an inline copy would.
	e.post(e.shardFor(to), op{kind: opCopy, now: now, addr: to, from: from})
}

func (e *shardExec) ownerChange(regionStart int, t alloc.Tag, present bool) {
	// A marking region spans whole pages across every bank, so ownership
	// updates are broadcast: each shard's mirror applies them in-band, ahead
	// of any op issued after the allocator mutated.
	for _, w := range e.shards {
		e.post(w, op{kind: opTag, region: regionStart, tag: t, present: present})
	}
}

func (e *shardExec) barrier() {
	for _, w := range e.shards {
		w.pending = append(w.pending, op{kind: opBarrier})
		e.flush(w)
	}
	for _, w := range e.shards {
		<-w.replies
	}
}

func (e *shardExec) close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, w := range e.shards {
		e.flush(w)
		close(w.in)
	}
	e.wg.Wait()
}

func (e *shardExec) shadows() []map[pcm.LineAddr]pcm.Line {
	out := make([]map[pcm.LineAddr]pcm.Line, len(e.shards))
	for i, w := range e.shards {
		out[i] = w.shadow
	}
	return out
}

func (e *shardExec) restoreShadow(logical pcm.LineAddr, data pcm.Line) {
	// The shadow is keyed by logical (pre-wear-leveling) address; wear
	// leveling rotates a line within its row, so logical and remapped
	// addresses share a bank and the owning shard is bank(logical) % N.
	w := e.shardFor(logical)
	if w.shadow != nil {
		w.shadow[logical] = data
	}
}
