package sim

import (
	"fmt"
	"runtime"
	"sync"

	"sdpcm/internal/alloc"
	"sdpcm/internal/metrics"
	"sdpcm/internal/pcm"
	"sdpcm/internal/workload"
)

// bankExec executes memory-system operations against the bank plane. The
// orchestrator (core model, address translation, wear leveling, mutation
// drawing) issues ops in global program order; an executor must apply the
// ops touching any one bank in exactly that order. Two implementations:
// inlineExec applies every op at issue time on the calling goroutine
// (Config.Shards <= 1); shardExec streams ops to per-shard-group goroutines
// through SPSC rings under a conservative bounded-lag window (cores couple
// shards only through blocking reads, which rendezvous, and posted writes,
// which may lag).
type bankExec interface {
	// read performs a blocking demand read and returns its completion time
	// and data. logical keys the integrity shadow; err reports a shadow
	// mismatch, surfaced in program order.
	read(now uint64, addr, logical pcm.LineAddr) (uint64, pcm.Line, error)
	// write posts a write of the pre-drawn mutation applied to the line's
	// latest queued-or-stored content.
	write(now uint64, addr, logical pcm.LineAddr, m workload.Mutation)
	// copyLine posts a Start-Gap line copy (same bank: Start-Gap rotates
	// slots within a row).
	copyLine(now uint64, from, to pcm.LineAddr)
	// ownerChange broadcasts an allocator region-ownership mutation, ordered
	// before every op issued after it.
	ownerChange(regionStart int, t alloc.Tag, present bool)
	// hintRead tells the executor the next op will be a blocking read whose
	// bank is not yet known (address translation still pending), so it can
	// publish in-flight batches early and overlap their application with the
	// translation. Purely a latency hint: it never changes op order.
	hintRead()
	// barrier blocks until every posted op has been applied, so the plane
	// can be snapshotted consistently.
	barrier()
	// close flushes and joins; the plane may be accessed directly after.
	close()
	// shadows returns the integrity shadow maps (post-close; nil entries
	// when integrity checking is off).
	shadows() []map[pcm.LineAddr]pcm.Line
	// restoreShadow seeds one integrity-shadow entry during a checkpoint
	// resume. Must only be called before any op has been posted: the first
	// batch publication orders these writes before all worker reads.
	restoreShadow(logical pcm.LineAddr, data pcm.Line)
}

func integrityReadErr(logical pcm.LineAddr) error {
	return fmt.Errorf("sim: integrity violation: read of line %d returned corrupted data", logical)
}

// inlineExec runs the per-bank-decomposed plane on the calling goroutine.
// The live allocator is each controller's RegionResolver: ops execute at
// issue time, when mirror state and allocator state would coincide anyway.
type inlineExec struct {
	p      *bankPlane
	shadow map[pcm.LineAddr]pcm.Line
}

func newInlineExec(p *bankPlane, integrity bool) *inlineExec {
	e := &inlineExec{p: p}
	if integrity {
		e.shadow = make(map[pcm.LineAddr]pcm.Line)
	}
	return e
}

func (e *inlineExec) read(now uint64, addr, logical pcm.LineAddr) (uint64, pcm.Line, error) {
	done, data := e.p.ctrlFor(addr).Read(now, addr)
	if e.shadow != nil {
		if want, ok := e.shadow[logical]; ok && data != want {
			return done, data, integrityReadErr(logical)
		}
	}
	return done, data, nil
}

func (e *inlineExec) write(now uint64, addr, logical pcm.LineAddr, m workload.Mutation) {
	ctrl := e.p.ctrlFor(addr)
	data := pcm.Line(m.Apply([8]uint64(ctrl.LatestData(addr))))
	ctrl.Write(now, addr, data)
	if e.shadow != nil {
		e.shadow[logical] = data
	}
}

func (e *inlineExec) copyLine(now uint64, from, to pcm.LineAddr) {
	ctrl := e.p.ctrlFor(to)
	ctrl.Write(now, to, ctrl.LatestData(from))
}

func (e *inlineExec) ownerChange(int, alloc.Tag, bool) {} // live allocator resolves
func (e *inlineExec) hintRead()                        {}
func (e *inlineExec) barrier()                         {}
func (e *inlineExec) close()                           {}

func (e *inlineExec) shadows() []map[pcm.LineAddr]pcm.Line {
	return []map[pcm.LineAddr]pcm.Line{e.shadow}
}

func (e *inlineExec) restoreShadow(logical pcm.LineAddr, data pcm.Line) {
	if e.shadow != nil {
		e.shadow[logical] = data
	}
}

type opKind uint8

const (
	opWrite opKind = iota
	opRead
	opCopy
	opTag
	opBarrier
)

// readReply is the rendezvous payload for opRead and opBarrier.
type readReply struct {
	done uint64
	data pcm.Line
	err  error
}

// shardWorker owns one shard group's banks: bank b belongs to shard
// b % numShards. Exactly one goroutine applies its op stream, so each bank's
// controller sees its ops in posted order — global program order restricted
// to that bank — and per-bank state evolves identically to inline execution.
//
// The producer-side fields (ptail/ppub/cachedHead/window) are touched only
// by the orchestrator; the consumer-side fields only by the worker
// goroutine. They are split across a pad so the two goroutines never share
// a cache line through this struct.
type shardWorker struct {
	ring    *opRing
	replies chan readReply // cap 1: at most one outstanding read/barrier
	shadow  map[pcm.LineAddr]pcm.Line
	mirror  *tagMirror

	// Producer side (orchestrator goroutine only). Slots in [ppub, ptail)
	// are filled but not yet published; the consumer may not look at them,
	// which is what makes steal-on-read safe.
	ptail      uint64
	ppub       uint64
	cachedHead uint64 // last observed ring.head; refreshed only when full
	window     uint64 // current adaptive batch window

	_ [64]byte

	// Consumer side (worker goroutine only).
	chead      uint64
	cachedTail uint64 // last observed ring.tail; refreshed when drained
	parks      uint64 // times the worker slept on the doorbell
	spans      uint64 // contiguous published spans consumed
	spanOps    uint64 // total ops across those spans
	spanMax    uint64 // largest single span
}

// shardExec partitions the plane's banks over numShards worker goroutines.
// The orchestrator accumulates ops per shard directly into that shard's
// ring, publishing a batch when the adaptive window fills, when a demand
// read needs the shard's backlog applied, or when hintRead announces an
// imminent read. Reads and barriers keep the channel rendezvous as the
// slow-path fallback; a read whose shard has fully caught up skips the
// round-trip entirely and executes inline on the orchestrator
// (steal-on-read).
type shardExec struct {
	p      *bankPlane
	shards []*shardWorker
	wg     sync.WaitGroup
	closed bool
	// eager gates hintRead: with more than one scheduling core, publishing
	// early overlaps worker progress with address translation; on a single
	// core the worker cannot run concurrently anyway and the read-time
	// steal path is strictly cheaper.
	eager  bool
	maxWin uint64

	barrierPending []*shardWorker // scratch, reused across barriers

	// Executor-behaviour instruments. These measure scheduling (batch sizes,
	// stalls, parks, steals) — timing-dependent by nature — so they live in
	// their own registry, exported as Result.ExecMetrics, never in the
	// deterministic Result.Metrics snapshot. All handles are nil-safe when
	// collection is off.
	reg        *metrics.Registry
	mBatches   *metrics.Counter   // ring publications
	mOps       *metrics.Counter   // ops published through rings
	mWinFull   *metrics.Counter   // publications forced by a full window
	mReadCut   *metrics.Counter   // publications forced by a demand read
	mHints     *metrics.Counter   // publications forced by read lookahead
	mInline    *metrics.Counter   // reads served inline (shard caught up)
	mRendez    *metrics.Counter   // reads served via channel rendezvous
	mSteals    *metrics.Counter   // steal-on-read backlog takeovers
	mStolenOps *metrics.Counter   // unpublished ops applied by the producer
	mStalls    *metrics.Counter   // producer stalls on a full ring
	mBarSkips  *metrics.Counter   // barrier legs satisfied without rendezvous
	mOccupancy *metrics.Histogram // batch size at publication
}

var batchBounds = []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// newShardExec starts the workers. mirrors[s] must be the RegionResolver the
// plane's shard-s controllers were built with.
func newShardExec(p *bankPlane, mirrors []*tagMirror, cfg Config) *shardExec {
	maxWin := uint64(windowDefault)
	if cfg.BatchWindow > 0 {
		maxWin = uint64(cfg.BatchWindow)
	}
	if maxWin > windowCeil {
		maxWin = windowCeil
	}
	e := &shardExec{
		p:              p,
		shards:         make([]*shardWorker, len(mirrors)),
		eager:          runtime.GOMAXPROCS(0) > 1,
		maxWin:         maxWin,
		barrierPending: make([]*shardWorker, 0, len(mirrors)),
	}
	if cfg.CollectMetrics || cfg.TraceEvents > 0 || cfg.SnapshotInterval > 0 {
		e.reg = metrics.New()
		e.mBatches = e.reg.Counter("exec.batches_published")
		e.mOps = e.reg.Counter("exec.ops_published")
		e.mWinFull = e.reg.Counter("exec.publish_window_full")
		e.mReadCut = e.reg.Counter("exec.publish_read_cut")
		e.mHints = e.reg.Counter("exec.publish_read_hint")
		e.mInline = e.reg.Counter("exec.reads_inline")
		e.mRendez = e.reg.Counter("exec.reads_rendezvous")
		e.mSteals = e.reg.Counter("exec.read_steals")
		e.mStolenOps = e.reg.Counter("exec.read_stolen_ops")
		e.mStalls = e.reg.Counter("exec.ring_stalls")
		e.mBarSkips = e.reg.Counter("exec.barrier_skips")
		e.mOccupancy = e.reg.Histogram("exec.batch_occupancy", batchBounds)
		e.reg.Gauge("exec.shards").Set(uint64(len(mirrors)))
		e.reg.Gauge("exec.batch_window_max").Set(maxWin)
		e.reg.Gauge("exec.ring_cap").Set(ringCap)
	}
	startWin := min(uint64(minBatch), maxWin)
	for s := range e.shards {
		w := &shardWorker{
			ring:    newOpRing(),
			replies: make(chan readReply, 1),
			mirror:  mirrors[s],
			window:  startWin,
		}
		if cfg.CheckIntegrity {
			w.shadow = make(map[pcm.LineAddr]pcm.Line)
		}
		e.shards[s] = w
		e.wg.Add(1)
		go w.loop(p, &e.wg)
	}
	return e
}

// apply executes the op in ring slot i against the plane. Called by the
// worker for published slots and by the orchestrator for stolen
// (never-published) slots — never both for the same slot.
func (w *shardWorker) apply(p *bankPlane, i uint64) {
	r := w.ring
	switch r.kind[i] {
	case opWrite:
		ctrl := p.ctrlFor(r.addr[i])
		data := pcm.Line(r.mut[i].Apply([8]uint64(ctrl.LatestData(r.addr[i]))))
		ctrl.Write(r.now[i], r.addr[i], data)
		if w.shadow != nil {
			w.shadow[r.logical[i]] = data
		}
	case opRead:
		ctrl := p.ctrlFor(r.addr[i])
		done, data := ctrl.Read(r.now[i], r.addr[i])
		var err error
		if w.shadow != nil {
			if want, ok := w.shadow[r.logical[i]]; ok && data != want {
				err = integrityReadErr(r.logical[i])
			}
		}
		w.replies <- readReply{done: done, data: data, err: err}
	case opCopy:
		ctrl := p.ctrlFor(r.addr[i])
		ctrl.Write(r.now[i], r.addr[i], ctrl.LatestData(pcm.LineAddr(r.aux[i])))
	case opTag:
		region, tag, present := unpackTag(r.aux[i])
		w.mirror.apply(region, tag, present)
	case opBarrier:
		w.replies <- readReply{}
	}
}

func (w *shardWorker) loop(p *bankPlane, wg *sync.WaitGroup) {
	defer wg.Done()
	r := w.ring
	for {
		t := w.cachedTail
		if t == w.chead {
			t = r.tail.Load()
			w.cachedTail = t
		}
		if t == w.chead {
			// Drained. Park: set the flag, re-check (the producer may have
			// published between our load and the flag store), then sleep.
			if r.closed.Load() && r.tail.Load() == w.chead {
				return
			}
			w.parks++
			r.parked.Store(true)
			if r.tail.Load() != w.chead || r.closed.Load() {
				r.parked.Store(false)
				continue
			}
			<-r.doorbell
			r.parked.Store(false)
			continue
		}
		n := t - w.chead
		w.spans++
		w.spanOps += n
		if n > w.spanMax {
			w.spanMax = n
		}
		for w.chead != t {
			limit := t
			if limit-w.chead > headChunk {
				limit = w.chead + headChunk
			}
			for w.chead != limit {
				w.apply(p, w.chead&ringMask)
				w.chead++
			}
			r.head.Store(w.chead)
			r.wakeProducer()
		}
	}
}

func (e *shardExec) shardFor(a pcm.LineAddr) *shardWorker {
	return e.shards[e.p.bankOf(a)%len(e.shards)]
}

// grab returns the masked index of the next free slot in w's ring, stalling
// until one exists. The caller fills the slot and then advances ptail.
func (e *shardExec) grab(w *shardWorker) uint64 {
	if w.ptail-w.cachedHead >= ringCap {
		w.cachedHead = w.ring.head.Load()
		if w.ptail-w.cachedHead >= ringCap {
			e.stall(w)
		}
	}
	return w.ptail & ringMask
}

// stall blocks the orchestrator until the consumer frees a slot — the
// bounded-lag window in action. Publishing first guarantees the consumer
// has work (windowCeil < ringCap, so a full ring always holds published
// backlog once flushed).
func (e *shardExec) stall(w *shardWorker) {
	e.publish(w)
	r := w.ring
	for {
		e.mStalls.Inc()
		r.prodWait.Store(true)
		w.cachedHead = r.head.Load()
		if w.ptail-w.cachedHead < ringCap {
			r.prodWait.Store(false)
			return
		}
		<-r.space
		r.prodWait.Store(false)
		w.cachedHead = r.head.Load()
		if w.ptail-w.cachedHead < ringCap {
			return
		}
	}
}

// publish releases w's filled-but-unpublished slots to the consumer.
func (e *shardExec) publish(w *shardWorker) {
	n := w.ptail - w.ppub
	if n == 0 {
		return
	}
	e.mBatches.Inc()
	e.mOps.Add(n)
	e.mOccupancy.Observe(n)
	w.ppub = w.ptail
	w.ring.tail.Store(w.ptail)
	w.ring.wakeConsumer()
}

// advance commits the just-filled slot and publishes when the adaptive
// window fills. While no read is pending the window doubles on every full
// publication (up to maxWin), amortizing synchronization over long posted-
// write runs; every demand read resets it to minBatch so post-read ops
// reach the worker quickly while the core is still catching up.
func (e *shardExec) advance(w *shardWorker) {
	w.ptail++
	if w.ptail-w.ppub >= w.window {
		e.mWinFull.Inc()
		e.publish(w)
		if w.window < e.maxWin {
			w.window <<= 1
		}
	}
}

// caughtUp reports whether w's consumer has applied every published op.
// While it holds, the orchestrator may touch w's bank state directly: the
// consumer only runs ops it has observed via a tail publication, and the
// producer publishes nothing while operating inline.
func (w *shardWorker) caughtUp() bool {
	return w.ring.head.Load() == w.ppub
}

// stealPending applies w's unpublished backlog on the orchestrator
// goroutine and withdraws it from the ring — pure producer-local
// bookkeeping, since the consumer never saw the slots. Caller must have
// verified caughtUp. The backlog contains only writes, copies and tag
// updates: reads and barriers always publish immediately, so apply cannot
// block on the replies channel here.
func (e *shardExec) stealPending(w *shardWorker) {
	n := w.ptail - w.ppub
	if n == 0 {
		return
	}
	e.mSteals.Inc()
	e.mStolenOps.Add(n)
	for i := w.ppub; i != w.ptail; i++ {
		w.apply(e.p, i&ringMask)
	}
	w.ptail = w.ppub
}

func (e *shardExec) read(now uint64, addr, logical pcm.LineAddr) (uint64, pcm.Line, error) {
	w := e.shardFor(addr)
	if w.caughtUp() {
		// Fast path: the shard is idle and owes us nothing. Apply our own
		// unpublished ops in order, then run the read right here — no
		// publication, no wakeup, no rendezvous. Dominant on a single
		// scheduling core, frequent on read-heavy phases everywhere.
		e.stealPending(w)
		w.window = minBatch
		e.mInline.Inc()
		done, data := e.p.ctrlFor(addr).Read(now, addr)
		var err error
		if w.shadow != nil {
			if want, ok := w.shadow[logical]; ok && data != want {
				err = integrityReadErr(logical)
			}
		}
		return done, data, err
	}
	i := e.grab(w)
	r := w.ring
	r.kind[i] = opRead
	r.now[i] = now
	r.addr[i] = addr
	r.logical[i] = logical
	w.ptail++
	e.mReadCut.Inc()
	e.publish(w)
	w.window = minBatch
	e.mRendez.Inc()
	rep := <-w.replies
	return rep.done, rep.data, rep.err
}

func (e *shardExec) write(now uint64, addr, logical pcm.LineAddr, m workload.Mutation) {
	w := e.shardFor(addr)
	i := e.grab(w)
	r := w.ring
	r.kind[i] = opWrite
	r.now[i] = now
	r.addr[i] = addr
	r.logical[i] = logical
	r.mut[i] = m
	e.advance(w)
}

func (e *shardExec) copyLine(now uint64, from, to pcm.LineAddr) {
	// Start-Gap rotates a line within its row: from and to share a bank, so
	// the copy is a single-shard op and LatestData(from) at application time
	// sees exactly the bank state an inline copy would.
	w := e.shardFor(to)
	i := e.grab(w)
	r := w.ring
	r.kind[i] = opCopy
	r.now[i] = now
	r.addr[i] = to
	r.aux[i] = uint64(from)
	e.advance(w)
}

func (e *shardExec) ownerChange(regionStart int, t alloc.Tag, present bool) {
	// A marking region spans whole pages across every bank, so ownership
	// updates are broadcast: each shard's mirror applies them in-band, ahead
	// of any op issued after the allocator mutated.
	aux := packTag(regionStart, t, present)
	for _, w := range e.shards {
		i := e.grab(w)
		r := w.ring
		r.kind[i] = opTag
		r.aux[i] = aux
		e.advance(w)
	}
}

func (e *shardExec) hintRead() {
	if !e.eager {
		return
	}
	// The next op is a blocking read but its bank is still being resolved:
	// hand every shard its backlog now so application overlaps translation.
	// Publication order is irrelevant — shards are independent streams.
	for _, w := range e.shards {
		if w.ptail != w.ppub {
			e.mHints.Inc()
			e.publish(w)
		}
	}
}

func (e *shardExec) barrier() {
	pending := e.barrierPending[:0]
	for _, w := range e.shards {
		if w.caughtUp() {
			// The consumer is drained; take over any unpublished tail ops
			// and this shard is quiesced without a round-trip.
			e.stealPending(w)
			e.mBarSkips.Inc()
			continue
		}
		i := e.grab(w)
		w.ring.kind[i] = opBarrier
		w.ptail++
		e.publish(w)
		pending = append(pending, w)
	}
	// Collect after posting all legs so shards quiesce concurrently.
	for _, w := range pending {
		<-w.replies
	}
	e.barrierPending = pending[:0]
}

func (e *shardExec) close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, w := range e.shards {
		e.publish(w)
		w.ring.closed.Store(true)
		// Unconditional doorbell: the worker may be between its tail
		// re-check and the channel receive.
		select {
		case w.ring.doorbell <- struct{}{}:
		default:
		}
	}
	e.wg.Wait()
}

// execMetrics exports the executor-behaviour snapshot, folding in the
// consumer-side tallies. Call once, after close (the workers have joined,
// so their plain-field tallies are safely visible).
func (e *shardExec) execMetrics() *metrics.Snapshot {
	if e.reg == nil {
		return nil
	}
	var parks, spans, spanOps, spanMax uint64
	for _, w := range e.shards {
		parks += w.parks
		spans += w.spans
		spanOps += w.spanOps
		if w.spanMax > spanMax {
			spanMax = w.spanMax
		}
	}
	e.reg.Counter("exec.worker_parks").Add(parks)
	e.reg.Counter("exec.spans_consumed").Add(spans)
	e.reg.Counter("exec.span_ops").Add(spanOps)
	e.reg.Gauge("exec.span_ops_max").Set(spanMax)
	return e.reg.Snapshot()
}

func (e *shardExec) shadows() []map[pcm.LineAddr]pcm.Line {
	out := make([]map[pcm.LineAddr]pcm.Line, len(e.shards))
	for i, w := range e.shards {
		out[i] = w.shadow
	}
	return out
}

func (e *shardExec) restoreShadow(logical pcm.LineAddr, data pcm.Line) {
	// The shadow is keyed by logical (pre-wear-leveling) address; wear
	// leveling rotates a line within its row, so logical and remapped
	// addresses share a bank and the owning shard is bank(logical) % N.
	w := e.shardFor(logical)
	if w.shadow != nil {
		w.shadow[logical] = data
	}
}
