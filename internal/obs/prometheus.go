package obs

import (
	"fmt"
	"io"
	"strings"

	"sdpcm/internal/metrics"
)

// MetricPrefix namespaces every exported series, per the Prometheus naming
// convention (<namespace>_<subsystem>_<name>).
const MetricPrefix = "sdpcm_"

// promName sanitizes an instrument name into a legal Prometheus metric name:
// the registry's dotted hierarchy ("mc.read_latency") flattens to
// underscores, and any other illegal rune is replaced the same way.
func promName(name string) string {
	var b strings.Builder
	b.WriteString(MetricPrefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Label is one Prometheus label pair attached to every series of a
// rendered snapshot — the sweep service scopes each job's metrics with
// {job="<id>"} this way.
type Label struct {
	Name  string
	Value string
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// labelSet renders the shared prefix of a label list: `job="x",tenant="y"`.
func labelSet(labels []Label) string {
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, promName(l.Name)[len(MetricPrefix):], escapeLabelValue(l.Value))
	}
	return b.String()
}

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4): counters as `<name>_total`, gauges
// bare, histograms as cumulative `_bucket{le=...}` series plus `_sum` and
// `_count`. The snapshot's name-sorted ordering carries through, so equal
// snapshots render byte-identically. A nil snapshot renders nothing (an
// empty exposition is valid).
//
// The `_total` counter suffix is not only idiomatic — it also keeps the raw
// counter `mc.read_latency_sum` from colliding with the `_sum` series of the
// `mc.read_latency` histogram.
func WritePrometheus(w io.Writer, s *metrics.Snapshot) error {
	return WritePrometheusLabeled(w, s, nil)
}

// WritePrometheusLabeled is WritePrometheus with a label set attached to
// every series (histogram buckets merge the labels with their `le`). Label
// names are sanitized like metric names; values are escaped. An empty label
// list renders identically to WritePrometheus.
func WritePrometheusLabeled(w io.Writer, s *metrics.Snapshot, labels []Label) error {
	if s == nil {
		return nil
	}
	set := labelSet(labels)
	brace := ""
	if set != "" {
		brace = "{" + set + "}"
	}
	for _, c := range s.Counters {
		name := promName(c.Name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n", name, name, brace, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %d\n", name, name, brace, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		sep := set
		if sep != "" {
			sep += ","
		}
		var cum uint64
		for i, n := range h.Counts {
			cum += n
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%d", h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, sep, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n", name, brace, h.Sum, name, brace, h.Count); err != nil {
			return err
		}
	}
	return nil
}
