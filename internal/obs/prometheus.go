package obs

import (
	"fmt"
	"io"
	"strings"

	"sdpcm/internal/metrics"
)

// MetricPrefix namespaces every exported series, per the Prometheus naming
// convention (<namespace>_<subsystem>_<name>).
const MetricPrefix = "sdpcm_"

// promName sanitizes an instrument name into a legal Prometheus metric name:
// the registry's dotted hierarchy ("mc.read_latency") flattens to
// underscores, and any other illegal rune is replaced the same way.
func promName(name string) string {
	var b strings.Builder
	b.WriteString(MetricPrefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4): counters as `<name>_total`, gauges
// bare, histograms as cumulative `_bucket{le=...}` series plus `_sum` and
// `_count`. The snapshot's name-sorted ordering carries through, so equal
// snapshots render byte-identically. A nil snapshot renders nothing (an
// empty exposition is valid).
//
// The `_total` counter suffix is not only idiomatic — it also keeps the raw
// counter `mc.read_latency_sum` from colliding with the `_sum` series of the
// `mc.read_latency` histogram.
func WritePrometheus(w io.Writer, s *metrics.Snapshot) error {
	if s == nil {
		return nil
	}
	for _, c := range s.Counters {
		name := promName(c.Name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum uint64
		for i, n := range h.Counts {
			cum += n
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%d", h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.Count); err != nil {
			return err
		}
	}
	return nil
}
