package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sdpcm/internal/metrics"
	"sdpcm/internal/runner"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServerEndpoints(t *testing.T) {
	s, ts := testServer(t)

	r := metrics.New()
	r.Counter("mc.write_ops").Add(7)
	tr := r.EnableTrace(8)
	tr.Emit(100, metrics.EvWDParked, 93, 2, 4)
	tr.Emit(200, metrics.EvWDFlushed, 93, 2, 1)
	s.SetSnapshot(r.Snapshot())
	s.Progress().Begin("fig11")
	s.Progress().PointDone(runner.PointEvent{Total: 4})

	code, body, hdr := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics -> %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "sdpcm_mc_write_ops_total 7") {
		t.Fatalf("/metrics body missing counter:\n%s", body)
	}

	code, body, hdr = get(t, ts.URL+"/progress")
	if code != http.StatusOK || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("/progress -> %d %q", code, hdr.Get("Content-Type"))
	}
	var ps ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &ps); err != nil {
		t.Fatalf("/progress not JSON: %v", err)
	}
	if ps.PointsDone != 1 || len(ps.Experiments) != 1 || ps.Experiments[0].Name != "fig11" {
		t.Fatalf("/progress = %+v", ps)
	}

	code, body, _ = get(t, ts.URL+"/events")
	if code != http.StatusOK {
		t.Fatalf("/events -> %d", code)
	}
	var ep eventsPayload
	if err := json.Unmarshal([]byte(body), &ep); err != nil {
		t.Fatalf("/events not JSON: %v", err)
	}
	if len(ep.Events) != 2 {
		t.Fatalf("/events returned %d events, want 2", len(ep.Events))
	}

	// ?n= keeps the newest tail and accounts for the trim in Dropped.
	code, body, _ = get(t, ts.URL+"/events?n=1")
	if code != http.StatusOK {
		t.Fatalf("/events?n=1 -> %d", code)
	}
	if err := json.Unmarshal([]byte(body), &ep); err != nil {
		t.Fatal(err)
	}
	if len(ep.Events) != 1 || ep.Events[0].Kind != metrics.EvWDFlushed || ep.Dropped != 1 {
		t.Fatalf("/events?n=1 = %+v", ep)
	}

	if code, _, _ := get(t, ts.URL+"/events?n=bogus"); code != http.StatusBadRequest {
		t.Fatalf("/events?n=bogus -> %d, want 400", code)
	}
	if code, _, _ := get(t, ts.URL+"/"); code != http.StatusOK {
		t.Fatalf("/ -> %d", code)
	}
	if code, _, _ := get(t, ts.URL+"/nope"); code != http.StatusNotFound {
		t.Fatalf("/nope -> %d, want 404", code)
	}
	if code, _, _ := get(t, ts.URL+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline -> %d", code)
	}
}

func TestServerBeforeFirstSnapshot(t *testing.T) {
	_, ts := testServer(t)
	code, body, _ := get(t, ts.URL+"/metrics")
	if code != http.StatusOK || body != "" {
		t.Fatalf("empty /metrics -> %d %q", code, body)
	}
	code, body, _ = get(t, ts.URL+"/events")
	if code != http.StatusOK {
		t.Fatalf("empty /events -> %d", code)
	}
	var ep eventsPayload
	if err := json.Unmarshal([]byte(body), &ep); err != nil {
		t.Fatal(err)
	}
	if ep.Events == nil {
		t.Fatal("/events must serve an empty array, not null")
	}
}

func TestServerStartClose(t *testing.T) {
	s := NewServer()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	code, _, _ := get(t, "http://"+addr+"/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress over real listener -> %d", code)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/progress"); err == nil {
		t.Fatal("server still serving after Close")
	}
}
