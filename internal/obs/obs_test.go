package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sdpcm/internal/metrics"
	"sdpcm/internal/runner"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServerEndpoints(t *testing.T) {
	s, ts := testServer(t)

	r := metrics.New()
	r.Counter("mc.write_ops").Add(7)
	tr := r.EnableTrace(8)
	tr.Emit(100, metrics.EvWDParked, 93, 2, 4)
	tr.Emit(200, metrics.EvWDFlushed, 93, 2, 1)
	s.SetSnapshot(r.Snapshot())
	s.Progress().Begin("fig11")
	s.Progress().PointDone(runner.PointEvent{Total: 4})

	code, body, hdr := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics -> %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "sdpcm_mc_write_ops_total 7") {
		t.Fatalf("/metrics body missing counter:\n%s", body)
	}

	code, body, hdr = get(t, ts.URL+"/progress")
	if code != http.StatusOK || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("/progress -> %d %q", code, hdr.Get("Content-Type"))
	}
	var ps ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &ps); err != nil {
		t.Fatalf("/progress not JSON: %v", err)
	}
	if ps.PointsDone != 1 || len(ps.Experiments) != 1 || ps.Experiments[0].Name != "fig11" {
		t.Fatalf("/progress = %+v", ps)
	}

	code, body, _ = get(t, ts.URL+"/events")
	if code != http.StatusOK {
		t.Fatalf("/events -> %d", code)
	}
	var ep EventsPayload
	if err := json.Unmarshal([]byte(body), &ep); err != nil {
		t.Fatalf("/events not JSON: %v", err)
	}
	if len(ep.Events) != 2 || ep.Dropped != 0 || ep.Truncated != 0 {
		t.Fatalf("/events = %+v, want 2 events, 0 dropped, 0 truncated", ep)
	}

	// ?n= keeps the newest tail; the trim is client-requested truncation,
	// never ring overflow, and the two counts stay separate.
	code, body, _ = get(t, ts.URL+"/events?n=1")
	if code != http.StatusOK {
		t.Fatalf("/events?n=1 -> %d", code)
	}
	if err := json.Unmarshal([]byte(body), &ep); err != nil {
		t.Fatal(err)
	}
	if len(ep.Events) != 1 || ep.Events[0].Kind != metrics.EvWDFlushed {
		t.Fatalf("/events?n=1 = %+v", ep)
	}
	if ep.Dropped != 0 || ep.Truncated != 1 {
		t.Fatalf("/events?n=1 dropped=%d truncated=%d, want 0 and 1", ep.Dropped, ep.Truncated)
	}

	if code, _, _ := get(t, ts.URL+"/events?n=bogus"); code != http.StatusBadRequest {
		t.Fatalf("/events?n=bogus -> %d, want 400", code)
	}
	if code, _, _ := get(t, ts.URL+"/"); code != http.StatusOK {
		t.Fatalf("/ -> %d", code)
	}
	if code, _, _ := get(t, ts.URL+"/nope"); code != http.StatusNotFound {
		t.Fatalf("/nope -> %d, want 404", code)
	}
	if code, _, _ := get(t, ts.URL+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline -> %d", code)
	}
}

func TestServerBeforeFirstSnapshot(t *testing.T) {
	_, ts := testServer(t)
	code, body, _ := get(t, ts.URL+"/metrics")
	if code != http.StatusOK || body != "" {
		t.Fatalf("empty /metrics -> %d %q", code, body)
	}
	code, body, _ = get(t, ts.URL+"/events")
	if code != http.StatusOK {
		t.Fatalf("empty /events -> %d", code)
	}
	var ep EventsPayload
	if err := json.Unmarshal([]byte(body), &ep); err != nil {
		t.Fatal(err)
	}
	if ep.Events == nil {
		t.Fatal("/events must serve an empty array, not null")
	}
}

// TestRingOverflowStaysDropped: events lost to the bounded ring surface as
// Dropped even when the client also truncates with ?n=.
func TestRingOverflowStaysDropped(t *testing.T) {
	s, ts := testServer(t)
	r := metrics.New()
	tr := r.EnableTrace(2) // capacity 2: the first emit gets overwritten
	tr.Emit(1, metrics.EvWDParked, 1, 0, 0)
	tr.Emit(2, metrics.EvWDParked, 2, 0, 0)
	tr.Emit(3, metrics.EvWDFlushed, 3, 0, 0)
	s.SetSnapshot(r.Snapshot())

	code, body, _ := get(t, ts.URL+"/events?n=1")
	if code != http.StatusOK {
		t.Fatalf("/events?n=1 -> %d", code)
	}
	var ep EventsPayload
	if err := json.Unmarshal([]byte(body), &ep); err != nil {
		t.Fatal(err)
	}
	if ep.Dropped != 1 || ep.Truncated != 1 || len(ep.Events) != 1 {
		t.Fatalf("overflow+trim = %+v, want dropped=1 truncated=1 events=1", ep)
	}
}

func TestServerStartClose(t *testing.T) {
	s := NewServer()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	code, _, _ := get(t, "http://"+addr+"/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress over real listener -> %d", code)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/progress"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

// TestCloseDrainsInFlightRequest pins the graceful-drain contract: a
// /metrics request already in the handler when Close is called completes
// with its full body instead of being dropped mid-response.
func TestCloseDrainsInFlightRequest(t *testing.T) {
	s := NewServer()
	r := metrics.New()
	r.Counter("mc.write_ops").Add(42)
	s.SetSnapshot(r.Snapshot())

	entered := make(chan struct{})
	release := make(chan struct{})
	s.metricsGate = func() {
		close(entered)
		<-release
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	type reply struct {
		code int
		body string
		err  error
	}
	got := make(chan reply, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			got <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- reply{code: resp.StatusCode, body: string(body), err: err}
	}()

	<-entered // the request is in the handler, response unwritten
	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()

	// Close must wait for the in-flight handler, not kill it: the request
	// must still be unanswered while the gate is held.
	select {
	case r := <-got:
		t.Fatalf("request finished before the handler was released: %+v", r)
	case <-closed:
		t.Fatal("Close returned while a request was in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	r2 := <-got
	if r2.err != nil {
		t.Fatalf("in-flight request dropped during shutdown: %v", r2.err)
	}
	if r2.code != http.StatusOK || !strings.Contains(r2.body, "sdpcm_mc_write_ops_total 42") {
		t.Fatalf("in-flight request -> %d %q", r2.code, r2.body)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close = %v", err)
	}
}

// TestCloseHardStopAfterTimeout: a handler stuck past ShutdownTimeout must
// not wedge Close forever — the hard-stop fallback kicks in.
func TestCloseHardStopAfterTimeout(t *testing.T) {
	s := NewServer()
	s.ShutdownTimeout = 50 * time.Millisecond
	release := make(chan struct{})
	defer close(release)
	entered := make(chan struct{})
	s.metricsGate = func() {
		close(entered)
		<-release
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go http.Get("http://" + addr + "/metrics") //nolint:errcheck // dropped by design
	<-entered
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung past ShutdownTimeout")
	}
}
