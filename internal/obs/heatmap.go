package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"sdpcm/internal/wd"
)

// WriteHeatmapJSON writes the heatmap as indented JSON ("null" when the
// heatmap was disabled).
func WriteHeatmapJSON(w io.Writer, s *wd.HeatmapSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteHeatmapTable renders the heatmap as fixed-width ASCII tables — one
// per accumulated quantity, banks down, line-regions across — so the
// bit-line clustering the paper's µTrench model predicts (§2.2) is directly
// inspectable from a terminal. Deterministic for a given snapshot.
func WriteHeatmapTable(w io.Writer, s *wd.HeatmapSnapshot) error {
	if s == nil {
		_, err := fmt.Fprintln(w, "(heatmap disabled)")
		return err
	}
	if _, err := fmt.Fprintf(w, "WD spatial heatmap: %d banks x %d line-regions (banks down, regions across)\n",
		s.Banks, s.Regions); err != nil {
		return err
	}
	sections := []struct {
		title string
		cell  func(wd.HeatCell) uint64
	}{
		{"injected bit-line flips", func(c wd.HeatCell) uint64 { return c.Injected }},
		{"parked errors (LazyCorrection)", func(c wd.HeatCell) uint64 { return c.Parked }},
		{"flushed cells (correction writes)", func(c wd.HeatCell) uint64 { return c.Flushed }},
		{"max cascade depth", func(c wd.HeatCell) uint64 { return c.CascadeMax }},
	}
	for _, sec := range sections {
		if err := writeHeatSection(w, s, sec.title, sec.cell); err != nil {
			return err
		}
	}
	corrections := s.Total(func(c wd.HeatCell) uint64 { return c.Corrections })
	cascadeSum := s.Total(func(c wd.HeatCell) uint64 { return c.CascadeSum })
	mean := 0.0
	if corrections > 0 {
		mean = float64(cascadeSum) / float64(corrections)
	}
	_, err := fmt.Fprintf(w, "corrections %d, mean cascade depth %.3f\n", corrections, mean)
	return err
}

func writeHeatSection(w io.Writer, s *wd.HeatmapSnapshot, title string, cell func(wd.HeatCell) uint64) error {
	if _, err := fmt.Fprintf(w, "\n%s (total %d)\n", title, s.Total(cell)); err != nil {
		return err
	}
	// One column width fits the largest value (and the region header).
	width := 4
	for _, row := range s.Cells {
		for _, c := range row {
			if n := len(fmt.Sprintf("%d", cell(c))); n+1 > width {
				width = n + 1
			}
		}
	}
	if _, err := fmt.Fprintf(w, "bank"); err != nil {
		return err
	}
	for r := 0; r < s.Regions; r++ {
		if _, err := fmt.Fprintf(w, "%*d", width, r); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for b, row := range s.Cells {
		if _, err := fmt.Fprintf(w, "%4d", b); err != nil {
			return err
		}
		for _, c := range row {
			if _, err := fmt.Fprintf(w, "%*d", width, cell(c)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
