package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"sdpcm/internal/pcm"
	"sdpcm/internal/wd"
)

func sampleHeatmap() *wd.HeatmapSnapshot {
	h := wd.NewHeatmap(4, 64)
	h.RecordInjected(pcm.AddrOf(pcm.Loc{Bank: 0, Row: 0, Slot: 0}), 12)
	h.RecordInjected(pcm.AddrOf(pcm.Loc{Bank: 3, Row: 48, Slot: 5}), 3)
	h.RecordParked(pcm.AddrOf(pcm.Loc{Bank: 3, Row: 48, Slot: 5}), 2)
	h.RecordCorrection(pcm.AddrOf(pcm.Loc{Bank: 1, Row: 16, Slot: 9}), 4, 2)
	return h.Snapshot()
}

func TestWriteHeatmapTable(t *testing.T) {
	var b strings.Builder
	if err := WriteHeatmapTable(&b, sampleHeatmap()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"16 banks x 4 line-regions",
		"injected bit-line flips (total 15)",
		"parked errors (LazyCorrection) (total 2)",
		"flushed cells (correction writes) (total 4)",
		"max cascade depth (total 2)",
		"corrections 1, mean cascade depth 2.000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Bank 3, row 48 of 64 → region 3: its injected count sits in the last
	// column of bank 3's line.
	var bank3 string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "   3") {
			bank3 = line
			break
		}
	}
	if f := strings.Fields(bank3); len(f) != 5 || f[4] != "3" {
		t.Fatalf("bank 3 injected row = %q", bank3)
	}
}

func TestWriteHeatmapTableNil(t *testing.T) {
	var b strings.Builder
	if err := WriteHeatmapTable(&b, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "heatmap disabled") {
		t.Fatalf("nil table = %q", b.String())
	}
}

func TestWriteHeatmapJSONRoundTrip(t *testing.T) {
	s := sampleHeatmap()
	var b strings.Builder
	if err := WriteHeatmapJSON(&b, s); err != nil {
		t.Fatal(err)
	}
	var back wd.HeatmapSnapshot
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Banks != s.Banks || back.Regions != s.Regions {
		t.Fatalf("round trip changed shape: %+v", back)
	}
	if got := back.Total(func(c wd.HeatCell) uint64 { return c.Injected }); got != 15 {
		t.Fatalf("round-trip injected = %d", got)
	}
}
