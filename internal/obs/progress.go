package obs

import (
	"sync"
	"time"

	"sdpcm/internal/runner"
)

// ewmaAlpha weights the newest inter-point interval in the rate estimate:
// high enough to track a sweep speeding up as cache hits kick in, low
// enough that one slow point does not swing the ETA.
const ewmaAlpha = 0.2

// ExperimentProgress is one experiment's (or anonymous sweep's) tally.
type ExperimentProgress struct {
	Name string `json:"name"`
	// Total is the point count of the experiment's largest Run call — an
	// upper bound on what remains when a figure issues several sweeps.
	Total int `json:"total"`
	// Done counts completed points (Cached + Stored + Errored included).
	Done    int `json:"done"`
	Cached  int `json:"cached"`
	Stored  int `json:"stored"`
	Errored int `json:"errored"`
}

// ProgressSnapshot is the /progress JSON payload.
type ProgressSnapshot struct {
	// Experiments lists every section in Begin order; the last entry is the
	// one currently executing.
	Experiments []ExperimentProgress `json:"experiments"`
	// PointsDone / PointsCached / PointsStored / PointsErrored tally the
	// whole invocation; Stored counts points answered by the durable result
	// store without simulating.
	PointsDone    int `json:"points_done"`
	PointsCached  int `json:"points_cached"`
	PointsStored  int `json:"points_stored"`
	PointsErrored int `json:"points_errored"`
	// RatePerSec is the EWMA point completion rate.
	RatePerSec float64 `json:"rate_per_sec"`
	// ETASeconds estimates time to finish the current experiment section
	// (remaining points / rate); 0 when idle or unknown.
	ETASeconds float64 `json:"eta_seconds"`
	// ElapsedSeconds is wall time since the tracker saw its first event (or
	// Begin call).
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// Progress is a live sweep tracker: it implements runner.Observer, so
// wiring it into ExperimentOptions.Observer (or a Runner directly) feeds it
// one event per completed point, and its Snapshot serves the /progress
// endpoint. Safe for concurrent use — the Runner serializes observer calls,
// but HTTP readers arrive on their own goroutines.
type Progress struct {
	mu       sync.Mutex
	now      func() time.Time // test hook; time.Now when nil
	start    time.Time
	lastDone time.Time
	rate     float64 // EWMA points/sec
	done     int
	cached   int
	stored   int
	errored  int
	exps     []ExperimentProgress
}

// NewProgress builds an empty tracker.
func NewProgress() *Progress { return &Progress{} }

func (p *Progress) clock() time.Time {
	if p.now != nil {
		return p.now()
	}
	return time.Now()
}

// Begin opens a new experiment section; subsequent point completions tally
// against it. Without a Begin call, events fall into an anonymous "sweep"
// section.
func (p *Progress) Begin(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.start.IsZero() {
		p.start = p.clock()
	}
	p.exps = append(p.exps, ExperimentProgress{Name: name})
}

// PointDone implements runner.Observer.
func (p *Progress) PointDone(ev runner.PointEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.clock()
	if p.start.IsZero() {
		p.start = t
	}
	if len(p.exps) == 0 {
		p.exps = append(p.exps, ExperimentProgress{Name: "sweep"})
	}
	cur := &p.exps[len(p.exps)-1]
	if ev.Total > cur.Total {
		cur.Total = ev.Total
	}
	cur.Done++
	p.done++
	if ev.Cached {
		cur.Cached++
		p.cached++
	}
	if ev.Stored {
		cur.Stored++
		p.stored++
	}
	if ev.Err != nil {
		cur.Errored++
		p.errored++
	}
	// EWMA over inter-completion intervals. Cached points land in bursts;
	// the floor keeps a zero interval from producing an infinite rate.
	ref := p.lastDone
	if ref.IsZero() {
		ref = p.start
	}
	dt := t.Sub(ref).Seconds()
	if dt < 1e-6 {
		dt = 1e-6
	}
	inst := 1 / dt
	if p.rate == 0 {
		p.rate = inst
	} else {
		p.rate = ewmaAlpha*inst + (1-ewmaAlpha)*p.rate
	}
	p.lastDone = t
}

// Snapshot exports the tracker state.
func (p *Progress) Snapshot() ProgressSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ProgressSnapshot{
		Experiments:   append([]ExperimentProgress(nil), p.exps...),
		PointsDone:    p.done,
		PointsCached:  p.cached,
		PointsStored:  p.stored,
		PointsErrored: p.errored,
		RatePerSec:    p.rate,
	}
	if !p.start.IsZero() {
		s.ElapsedSeconds = p.clock().Sub(p.start).Seconds()
	}
	if n := len(p.exps); n > 0 && p.rate > 0 {
		if remaining := p.exps[n-1].Total - p.exps[n-1].Done; remaining > 0 {
			s.ETASeconds = float64(remaining) / p.rate
		}
	}
	return s
}
