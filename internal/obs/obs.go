// Package obs is the live observability plane over the metrics registry
// (internal/metrics) and the sweep runner (internal/runner): an HTTP server
// exposing Prometheus-format metrics, sweep progress, the event-trace tail
// and net/http/pprof while a simulation or sweep is in flight, plus offline
// exporters — Perfetto/Chrome trace-event timelines from the typed event
// ring, and ASCII/JSON renderings of the WD spatial heatmap.
//
// Everything here is pull-based and zero-cost when unused: producers hand
// the server immutable snapshots (sim.Config.OnSnapshot, or a sweep
// observer), and HTTP handlers render whatever snapshot is current. Nothing
// in this package touches the simulator's hot path.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"sdpcm/internal/metrics"
)

// Server serves the live observability endpoints:
//
//	/metrics       Prometheus text exposition of the current snapshot
//	/progress      sweep progress JSON (points done/cached/errored, rate, ETA)
//	/events        most recent event-ring records as JSON (?n= limits)
//	/debug/pprof/  the standard Go profiling endpoints
//
// Producers publish with SetSnapshot (which sim.Config.OnSnapshot can point
// at directly) and by feeding the Progress tracker; handlers read under a
// lock, so publication and serving never race. The zero value is not usable;
// construct with NewServer.
type Server struct {
	// ShutdownTimeout bounds how long Close waits for in-flight requests
	// before falling back to a hard stop (0 picks a 5s default). Set it
	// before Start.
	ShutdownTimeout time.Duration

	mu   sync.RWMutex
	snap *metrics.Snapshot
	prog *Progress
	srv  *http.Server
	ln   net.Listener

	// metricsGate, when non-nil, runs at the top of the /metrics handler —
	// a test hook for holding a request in flight across a Close call.
	metricsGate func()
}

// NewServer builds a server with an empty snapshot and a fresh Progress
// tracker.
func NewServer() *Server {
	return &Server{prog: NewProgress()}
}

// SetSnapshot publishes a snapshot; the snapshot must not be mutated after
// the call. The signature matches sim.Config.OnSnapshot, so a simulation
// publishes mid-run state with `cfg.OnSnapshot = srv.SetSnapshot`.
func (s *Server) SetSnapshot(sn *metrics.Snapshot) {
	s.mu.Lock()
	s.snap = sn
	s.mu.Unlock()
}

// Snapshot returns the most recently published snapshot (nil before the
// first publication).
func (s *Server) Snapshot() *metrics.Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snap
}

// Progress returns the server's sweep tracker, for wiring into a runner
// observer chain.
func (s *Server) Progress() *Progress { return s.prog }

// Handler returns the observability mux (usable under httptest or a custom
// server).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start binds addr (":0" picks a free port) and serves in a background
// goroutine, returning the bound address. Close shuts the listener down.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return ln.Addr().String(), nil
}

// Close stops a started server gracefully; a no-op otherwise. It drains:
// the listener closes immediately (no new connections), but requests
// already in flight — a Prometheus scrape mid-render, say — get up to
// ShutdownTimeout to complete before the hard stop drops whatever is left.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	timeout := s.ShutdownTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		// Timed out (or the context machinery failed): fall back to the
		// hard stop so Close never hangs on a stuck connection.
		return s.srv.Close()
	}
	return nil
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, "sdpcm observability\n\n/metrics\n/progress\n/events\n/debug/pprof/\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.metricsGate != nil {
		s.metricsGate()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := WritePrometheus(w, s.Snapshot()); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.prog.Snapshot()) //nolint:errcheck // best effort over HTTP
}

// EventsPayload is the /events JSON shape. Dropped counts events the
// bounded ring overwrote before export (data lost at the producer);
// Truncated counts events the client itself trimmed with ?n= (data still
// in the snapshot, just not in this response). Conflating the two would
// make a tight tail request look like ring overflow.
type EventsPayload struct {
	Events    []metrics.Event `json:"events"`
	Dropped   uint64          `json:"dropped"`
	Truncated uint64          `json:"truncated"`
}

// EventsTail builds the /events payload from a snapshot: the newest n
// events (n < 0 keeps them all), the ring's overflow count, and how many
// the limit trimmed. Shared by the one-process plane and the sweep
// service's per-job events view.
func EventsTail(sn *metrics.Snapshot, n int) EventsPayload {
	payload := EventsPayload{}
	if sn != nil {
		payload.Events = sn.Events
		payload.Dropped = sn.EventsDropped
	}
	if n >= 0 && n < len(payload.Events) {
		payload.Truncated = uint64(len(payload.Events) - n)
		payload.Events = payload.Events[len(payload.Events)-n:]
	}
	if payload.Events == nil {
		payload.Events = []metrics.Event{}
	}
	return payload
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	n := -1
	if nStr := r.URL.Query().Get("n"); nStr != "" {
		var err error
		n, err = strconv.Atoi(nStr)
		if err != nil || n < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(EventsTail(s.Snapshot(), n)) //nolint:errcheck // best effort over HTTP
}
