// Package obs is the live observability plane over the metrics registry
// (internal/metrics) and the sweep runner (internal/runner): an HTTP server
// exposing Prometheus-format metrics, sweep progress, the event-trace tail
// and net/http/pprof while a simulation or sweep is in flight, plus offline
// exporters — Perfetto/Chrome trace-event timelines from the typed event
// ring, and ASCII/JSON renderings of the WD spatial heatmap.
//
// Everything here is pull-based and zero-cost when unused: producers hand
// the server immutable snapshots (sim.Config.OnSnapshot, or a sweep
// observer), and HTTP handlers render whatever snapshot is current. Nothing
// in this package touches the simulator's hot path.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"

	"sdpcm/internal/metrics"
)

// Server serves the live observability endpoints:
//
//	/metrics       Prometheus text exposition of the current snapshot
//	/progress      sweep progress JSON (points done/cached/errored, rate, ETA)
//	/events        most recent event-ring records as JSON (?n= limits)
//	/debug/pprof/  the standard Go profiling endpoints
//
// Producers publish with SetSnapshot (which sim.Config.OnSnapshot can point
// at directly) and by feeding the Progress tracker; handlers read under a
// lock, so publication and serving never race. The zero value is not usable;
// construct with NewServer.
type Server struct {
	mu   sync.RWMutex
	snap *metrics.Snapshot
	prog *Progress
	srv  *http.Server
	ln   net.Listener
}

// NewServer builds a server with an empty snapshot and a fresh Progress
// tracker.
func NewServer() *Server {
	return &Server{prog: NewProgress()}
}

// SetSnapshot publishes a snapshot; the snapshot must not be mutated after
// the call. The signature matches sim.Config.OnSnapshot, so a simulation
// publishes mid-run state with `cfg.OnSnapshot = srv.SetSnapshot`.
func (s *Server) SetSnapshot(sn *metrics.Snapshot) {
	s.mu.Lock()
	s.snap = sn
	s.mu.Unlock()
}

// Snapshot returns the most recently published snapshot (nil before the
// first publication).
func (s *Server) Snapshot() *metrics.Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snap
}

// Progress returns the server's sweep tracker, for wiring into a runner
// observer chain.
func (s *Server) Progress() *Progress { return s.prog }

// Handler returns the observability mux (usable under httptest or a custom
// server).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start binds addr (":0" picks a free port) and serves in a background
// goroutine, returning the bound address. Close shuts the listener down.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return ln.Addr().String(), nil
}

// Close stops a started server; a no-op otherwise.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, "sdpcm observability\n\n/metrics\n/progress\n/events\n/debug/pprof/\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := WritePrometheus(w, s.Snapshot()); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.prog.Snapshot()) //nolint:errcheck // best effort over HTTP
}

// eventsPayload is the /events JSON shape.
type eventsPayload struct {
	Events  []metrics.Event `json:"events"`
	Dropped uint64          `json:"dropped"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sn := s.Snapshot()
	payload := eventsPayload{}
	if sn != nil {
		payload.Events = sn.Events
		payload.Dropped = sn.EventsDropped
	}
	if nStr := r.URL.Query().Get("n"); nStr != "" {
		n, err := strconv.Atoi(nStr)
		if err != nil || n < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		if n < len(payload.Events) {
			payload.Dropped += uint64(len(payload.Events) - n)
			payload.Events = payload.Events[len(payload.Events)-n:]
		}
	}
	if payload.Events == nil {
		payload.Events = []metrics.Event{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(payload) //nolint:errcheck // best effort over HTTP
}
