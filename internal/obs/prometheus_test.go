package obs

import (
	"bufio"
	"strconv"
	"strings"
	"testing"

	"sdpcm/internal/metrics"
)

// parseExposition reads a Prometheus text exposition back into a value map
// (series name with labels -> value) and a type map (metric name -> type).
func parseExposition(t *testing.T, text string) (map[string]uint64, map[string]string) {
	t.Helper()
	values := map[string]uint64{}
	types := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// "<series> <value>": the series may carry a {le="..."} label.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseUint(line[i+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		series := line[:i]
		if _, dup := values[series]; dup {
			t.Fatalf("duplicate series %q", series)
		}
		values[series] = v
	}
	return values, types
}

func TestWritePrometheusParseBack(t *testing.T) {
	r := metrics.New()
	r.Counter("mc.write_ops").Add(42)
	r.Counter("mc.read_latency_sum").Add(777) // the would-be collision case
	r.Gauge("sim.cycles").Set(123456)
	h := r.Histogram("mc.read_latency", []uint64{10, 100})
	for _, v := range []uint64{5, 50, 500} {
		h.Observe(v)
	}
	s := r.Snapshot()

	var b strings.Builder
	if err := WritePrometheus(&b, s); err != nil {
		t.Fatal(err)
	}
	values, types := parseExposition(t, b.String())

	checks := map[string]uint64{
		"sdpcm_mc_write_ops_total":                  42,
		"sdpcm_mc_read_latency_sum_total":           777,
		"sdpcm_sim_cycles":                          123456,
		"sdpcm_mc_read_latency_bucket{le=\"10\"}":   1,
		"sdpcm_mc_read_latency_bucket{le=\"100\"}":  2,
		"sdpcm_mc_read_latency_bucket{le=\"+Inf\"}": 3,
		"sdpcm_mc_read_latency_sum":                 555,
		"sdpcm_mc_read_latency_count":               3,
	}
	for series, want := range checks {
		if got, ok := values[series]; !ok || got != want {
			t.Errorf("%s = %d (present=%t), want %d", series, got, ok, want)
		}
	}
	wantTypes := map[string]string{
		"sdpcm_mc_write_ops_total":        "counter",
		"sdpcm_mc_read_latency_sum_total": "counter",
		"sdpcm_sim_cycles":                "gauge",
		"sdpcm_mc_read_latency":           "histogram",
	}
	for name, want := range wantTypes {
		if got := types[name]; got != want {
			t.Errorf("TYPE %s = %q, want %q", name, got, want)
		}
	}
	// The raw counter must not have produced a series that shadows the
	// histogram's _sum (the collision the _total suffix exists to avoid).
	if values["sdpcm_mc_read_latency_sum"] != 555 {
		t.Error("histogram _sum series corrupted by the raw *_sum counter")
	}
}

func TestWritePrometheusNilAndDeterminism(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil snapshot rendered %q", b.String())
	}
	r := metrics.New()
	r.Counter("b.second").Inc()
	r.Counter("a.first").Inc()
	var x, y strings.Builder
	WritePrometheus(&x, r.Snapshot())
	WritePrometheus(&y, r.Snapshot())
	if x.String() != y.String() {
		t.Fatal("equal snapshots rendered differently")
	}
	if strings.Index(x.String(), "sdpcm_a_first") > strings.Index(x.String(), "sdpcm_b_second") {
		t.Fatal("exposition lost the snapshot's name-sorted order")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"mc.write_ops": "sdpcm_mc_write_ops",
		"wd-rate":      "sdpcm_wd_rate",
		"a b":          "sdpcm_a_b",
		"ok_name:sub":  "sdpcm_ok_name:sub",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusLabeled: every series carries the label set, histogram
// buckets merge it with le, and values escape correctly.
func TestWritePrometheusLabeled(t *testing.T) {
	r := metrics.New()
	r.Counter("mc.write_ops").Add(42)
	r.Gauge("sim.cycles").Set(9)
	h := r.Histogram("mc.read_latency", []uint64{10})
	h.Observe(5)
	h.Observe(50)

	var b strings.Builder
	if err := WritePrometheusLabeled(&b, r.Snapshot(), []Label{{Name: "job", Value: "job-1"}}); err != nil {
		t.Fatal(err)
	}
	values, types := parseExposition(t, b.String())

	want := map[string]uint64{
		`sdpcm_mc_write_ops_total{job="job-1"}`:               42,
		`sdpcm_sim_cycles{job="job-1"}`:                       9,
		`sdpcm_mc_read_latency_bucket{job="job-1",le="10"}`:   1,
		`sdpcm_mc_read_latency_bucket{job="job-1",le="+Inf"}`: 2,
		`sdpcm_mc_read_latency_sum{job="job-1"}`:              55,
		`sdpcm_mc_read_latency_count{job="job-1"}`:            2,
	}
	for series, v := range want {
		if values[series] != v {
			t.Errorf("%s = %d, want %d\nexposition:\n%s", series, values[series], v, b.String())
		}
	}
	if types["sdpcm_mc_read_latency"] != "histogram" {
		t.Errorf("histogram TYPE missing: %v", types)
	}

	// Unlabeled rendering must be byte-identical to WritePrometheus.
	var plain, labeled strings.Builder
	sn := r.Snapshot()
	if err := WritePrometheus(&plain, sn); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheusLabeled(&labeled, sn, nil); err != nil {
		t.Fatal(err)
	}
	if plain.String() != labeled.String() {
		t.Error("nil-label rendering diverged from WritePrometheus")
	}
}

// TestLabelEscaping: quotes, backslashes and newlines in label values must
// not corrupt the exposition.
func TestLabelEscaping(t *testing.T) {
	r := metrics.New()
	r.Counter("x").Add(1)
	var b strings.Builder
	if err := WritePrometheusLabeled(&b, r.Snapshot(), []Label{{Name: "job", Value: "a\"b\\c\nd"}}); err != nil {
		t.Fatal(err)
	}
	want := `sdpcm_x_total{job="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped series missing:\n%s\nwant substring %q", b.String(), want)
	}
}
