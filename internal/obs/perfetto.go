package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"sdpcm/internal/metrics"
	"sdpcm/internal/pcm"
)

// traceEvent is one record of the Chrome trace-event JSON format, the
// subset Perfetto's trace-processor ingests. Timestamps are in microseconds
// by convention; we write simulated cycles directly, so 1 cycle renders as
// 1 µs in ui.perfetto.dev.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// perfettoCat groups event kinds into Perfetto categories.
func perfettoCat(k metrics.EventKind) string {
	switch k {
	case metrics.EvWDInjected, metrics.EvWDDetected, metrics.EvWDParked,
		metrics.EvWDFlushed, metrics.EvCascadeStep:
		return "wd"
	case metrics.EvPreReadIssued, metrics.EvPreReadForwarded,
		metrics.EvPreReadHit, metrics.EvPreReadCanceled:
		return "preread"
	default:
		return "queue"
	}
}

// perfettoArgs labels the kind-specific A/B payload (mirrors Event.String).
func perfettoArgs(e metrics.Event) map[string]any {
	args := map[string]any{"line": e.Addr, "seq": e.Seq}
	switch e.Kind {
	case metrics.EvWDInjected:
		args["flips"] = e.A
	case metrics.EvWDDetected:
		args["errors"], args["depth"] = e.A, e.B
	case metrics.EvWDParked:
		args["errors"], args["occupied"] = e.A, e.B
	case metrics.EvWDFlushed:
		args["corrected"], args["depth"] = e.A, e.B
	case metrics.EvCascadeStep:
		args["next_depth"] = e.A
	case metrics.EvPreReadIssued, metrics.EvPreReadForwarded, metrics.EvPreReadCanceled:
		args["entry"] = e.A
	case metrics.EvWriteCancel:
		args["queued"] = e.A
	case metrics.EvQueueEnqueue, metrics.EvQueueStall:
		args["depth"] = e.A
	case metrics.EvQueueDrain:
		args["residency"] = e.A
	}
	return args
}

// WritePerfetto converts an event-trace tail into Chrome trace-event JSON
// loadable in ui.perfetto.dev: one track (thread) per PCM bank, with
// queue-drain and bursty-drain rendered as duration slices spanning each
// write's queue residency, and the WD / PreRead / queue decision points as
// thread-scoped instants. Output is deterministic for a given event slice
// (one JSON object per line), so small sims can pin it as a golden file.
func WritePerfetto(w io.Writer, events []metrics.Event) error {
	if _, err := fmt.Fprintf(w, "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n"); err != nil {
		return err
	}
	first := true
	emit := func(te traceEvent) error {
		b, err := json.Marshal(te)
		if err != nil {
			return err
		}
		sep := ",\n"
		if first {
			sep = ""
			first = false
		}
		_, err = fmt.Fprintf(w, "%s%s", sep, b)
		return err
	}
	// Metadata first: name every bank track so the timeline reads as the
	// DIMM's bank layout even before any event lands there.
	if err := emit(traceEvent{Name: "process_name", Ph: "M",
		Args: map[string]any{"name": "sdpcm"}}); err != nil {
		return err
	}
	for b := 0; b < pcm.NumBanks; b++ {
		if err := emit(traceEvent{Name: "thread_name", Ph: "M", Tid: b,
			Args: map[string]any{"name": fmt.Sprintf("bank %02d", b)}}); err != nil {
			return err
		}
		if err := emit(traceEvent{Name: "thread_sort_index", Ph: "M", Tid: b,
			Args: map[string]any{"sort_index": b}}); err != nil {
			return err
		}
	}
	for _, e := range events {
		bank := pcm.Locate(pcm.LineAddr(e.Addr)).Bank
		switch e.Kind {
		case metrics.EvQueueDrain:
			// The slice spans the write's life in the queue: enqueue
			// (Time - residency) to drain execution start (Time).
			name := "queue-drain"
			if e.B == 1 {
				name = "bursty-drain"
			}
			ts := e.Time - e.A // residency <= Time by construction
			if err := emit(traceEvent{Name: name, Cat: "queue", Ph: "X",
				Ts: ts, Dur: e.A, Tid: bank, Args: perfettoArgs(e)}); err != nil {
				return err
			}
		default:
			if err := emit(traceEvent{Name: e.Kind.String(), Cat: perfettoCat(e.Kind),
				Ph: "i", Ts: e.Time, Tid: bank, S: "t", Args: perfettoArgs(e)}); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "\n]}\n")
	return err
}
