package obs

import (
	"errors"
	"testing"
	"time"

	"sdpcm/internal/runner"
)

// fakeClock returns a fixed time until tick advances it, so Snapshot reads
// never perturb the inter-completion intervals the EWMA measures.
type fakeClock struct {
	t time.Time
}

func (c *fakeClock) now() time.Time       { return c.t }
func (c *fakeClock) tick(d time.Duration) { c.t = c.t.Add(d) }

func newTestProgress() (*Progress, *fakeClock) {
	c := &fakeClock{t: time.Unix(1000, 0)}
	p := NewProgress()
	p.now = c.now
	return p, c
}

func TestProgressCounts(t *testing.T) {
	p, c := newTestProgress()
	p.Begin("fig11")
	for i := 0; i < 5; i++ {
		c.tick(time.Second)
		ev := runner.PointEvent{Index: i, Total: 5}
		switch i {
		case 1, 2:
			ev.Cached = true
		case 4:
			ev.Err = errors.New("boom")
		}
		p.PointDone(ev)
	}
	s := p.Snapshot()
	if s.PointsDone != 5 || s.PointsCached != 2 || s.PointsErrored != 1 {
		t.Fatalf("totals = %+v", s)
	}
	if len(s.Experiments) != 1 {
		t.Fatalf("experiments = %+v", s.Experiments)
	}
	e := s.Experiments[0]
	if e.Name != "fig11" || e.Total != 5 || e.Done != 5 || e.Cached != 2 || e.Errored != 1 {
		t.Fatalf("experiment = %+v", e)
	}
	if s.ElapsedSeconds != 5 {
		t.Fatalf("elapsed = %v, want 5", s.ElapsedSeconds)
	}
}

func TestProgressAnonymousSection(t *testing.T) {
	p, c := newTestProgress()
	c.tick(time.Second)
	p.PointDone(runner.PointEvent{Total: 3})
	s := p.Snapshot()
	if len(s.Experiments) != 1 || s.Experiments[0].Name != "sweep" {
		t.Fatalf("expected an anonymous sweep section, got %+v", s.Experiments)
	}
}

func TestProgressRateAndETA(t *testing.T) {
	// One point per second: the EWMA must converge to 1/s and the ETA must
	// fall monotonically as the section drains at a constant pace.
	p, c := newTestProgress()
	p.Begin("fig12")
	var lastETA float64
	for i := 0; i < 20; i++ {
		c.tick(time.Second)
		p.PointDone(runner.PointEvent{Index: i, Total: 40})
		s := p.Snapshot()
		if s.RatePerSec <= 0 {
			t.Fatalf("rate = %v after %d points", s.RatePerSec, i+1)
		}
		if i > 0 && s.ETASeconds >= lastETA {
			t.Fatalf("ETA not monotone at point %d: %v -> %v", i, lastETA, s.ETASeconds)
		}
		lastETA = s.ETASeconds
	}
	s := p.Snapshot()
	if s.RatePerSec < 0.99 || s.RatePerSec > 1.01 {
		t.Fatalf("EWMA rate = %v, want ~1/s", s.RatePerSec)
	}
	// 20 of 40 points remain at 1/s.
	if s.ETASeconds < 19 || s.ETASeconds > 21 {
		t.Fatalf("ETA = %vs, want ~20s", s.ETASeconds)
	}
}

func TestProgressCachedBurstDoesNotBlowUpRate(t *testing.T) {
	// Cached points complete back-to-back with ~zero interval; the dt floor
	// must keep the rate finite.
	p, c := newTestProgress()
	p.Begin("fig13")
	c.tick(time.Second)
	for i := 0; i < 10; i++ {
		p.PointDone(runner.PointEvent{Index: i, Total: 10, Cached: true})
	}
	s := p.Snapshot()
	if s.RatePerSec <= 0 || s.RatePerSec != s.RatePerSec { // NaN check
		t.Fatalf("rate = %v", s.RatePerSec)
	}
}

func TestProgressETAZeroWhenSectionDone(t *testing.T) {
	p, c := newTestProgress()
	p.Begin("fig13")
	for i := 0; i < 3; i++ {
		c.tick(time.Second)
		p.PointDone(runner.PointEvent{Index: i, Total: 3})
	}
	if eta := p.Snapshot().ETASeconds; eta != 0 {
		t.Fatalf("ETA = %v after the section finished, want 0", eta)
	}
}

func TestProgressNewSectionResetsETA(t *testing.T) {
	p, c := newTestProgress()
	p.Begin("a")
	c.tick(time.Second)
	p.PointDone(runner.PointEvent{Total: 100})
	if p.Snapshot().ETASeconds == 0 {
		t.Fatal("mid-section ETA should be positive")
	}
	p.Begin("b")
	// The new, empty section has no Total yet, so nothing remains to estimate.
	if eta := p.Snapshot().ETASeconds; eta != 0 {
		t.Fatalf("fresh section ETA = %v, want 0", eta)
	}
}
