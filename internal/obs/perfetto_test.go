package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sdpcm/internal/metrics"
	"sdpcm/internal/pcm"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenEvents is a fixed tail covering every event kind, with addresses
// spread over several banks (page = addr/64, bank = page mod 16).
func goldenEvents() []metrics.Event {
	mk := func(seq, time uint64, k metrics.EventKind, addr, a, b uint64) metrics.Event {
		return metrics.Event{Seq: seq, Time: time, Kind: k, Addr: addr, A: a, B: b}
	}
	return []metrics.Event{
		mk(1, 100, metrics.EvQueueEnqueue, 0, 3, 0),
		mk(2, 150, metrics.EvWDInjected, 64, 2, 0),
		mk(3, 200, metrics.EvWDDetected, 64, 2, 1),
		mk(4, 240, metrics.EvWDParked, 128, 1, 4),
		mk(5, 300, metrics.EvQueueDrain, 0, 200, 0), // slice 100..300
		mk(6, 320, metrics.EvCascadeStep, 128, 1, 0),
		mk(7, 350, metrics.EvWDFlushed, 128, 3, 1),
		mk(8, 400, metrics.EvPreReadIssued, 192, 7, 0),
		mk(9, 420, metrics.EvPreReadForwarded, 192, 7, 0),
		mk(10, 440, metrics.EvPreReadCanceled, 256, 2, 0),
		mk(11, 460, metrics.EvPreReadHit, 192, 0, 0),
		mk(12, 500, metrics.EvWriteCancel, 320, 5, 0),
		mk(13, 540, metrics.EvQueueStall, 384, 32, 0),
		mk(14, 600, metrics.EvQueueDrain, 64, 50, 1), // bursty slice 550..600
	}
}

func TestWritePerfettoGolden(t *testing.T) {
	var b bytes.Buffer
	if err := WritePerfetto(&b, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "perfetto_golden.json")
	if *update {
		if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create it)", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("perfetto output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", b.Bytes(), want)
	}
}

// perfettoFile mirrors the JSON shape for parse-back checks.
type perfettoFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

func TestWritePerfettoStructure(t *testing.T) {
	events := goldenEvents()
	var b bytes.Buffer
	if err := WritePerfetto(&b, events); err != nil {
		t.Fatal(err)
	}
	var f perfettoFile
	if err := json.Unmarshal(b.Bytes(), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// Metadata: one process name, one thread_name + one thread_sort_index
	// per bank — the "one track per bank" acceptance criterion.
	threadNames := map[int]bool{}
	var meta, data int
	for _, te := range f.TraceEvents {
		if te.Ph == "M" {
			meta++
			if te.Name == "thread_name" {
				threadNames[te.Tid] = true
			}
			continue
		}
		data++
	}
	if len(threadNames) != pcm.NumBanks {
		t.Fatalf("%d named bank tracks, want %d", len(threadNames), pcm.NumBanks)
	}
	if meta != 1+2*pcm.NumBanks {
		t.Fatalf("metadata records = %d, want %d", meta, 1+2*pcm.NumBanks)
	}
	if data != len(events) {
		t.Fatalf("data records = %d, want %d", data, len(events))
	}
	// Queue drains become duration slices spanning the queue residency;
	// everything else is a thread-scoped instant on its line's bank track.
	for i, te := range f.TraceEvents[meta:] {
		e := events[i]
		wantBank := pcm.Locate(pcm.LineAddr(e.Addr)).Bank
		if te.Tid != wantBank {
			t.Errorf("event %d on tid %d, want bank %d", i, te.Tid, wantBank)
		}
		if e.Kind == metrics.EvQueueDrain {
			if te.Ph != "X" || te.Ts != e.Time-e.A || te.Dur != e.A {
				t.Errorf("drain %d rendered %+v, want X slice [%d, %d)", i, te, e.Time-e.A, e.Time)
			}
			wantName := "queue-drain"
			if e.B == 1 {
				wantName = "bursty-drain"
			}
			if te.Name != wantName {
				t.Errorf("drain %d named %q, want %q", i, te.Name, wantName)
			}
		} else if te.Ph != "i" || te.S != "t" || te.Ts != e.Time {
			t.Errorf("instant %d rendered %+v", i, te)
		}
	}
}

func TestWritePerfettoEmpty(t *testing.T) {
	var b bytes.Buffer
	if err := WritePerfetto(&b, nil); err != nil {
		t.Fatal(err)
	}
	var f perfettoFile
	if err := json.Unmarshal(b.Bytes(), &f); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) != 1+2*pcm.NumBanks {
		t.Fatalf("empty trace should still name every bank track, got %d records", len(f.TraceEvents))
	}
}
