package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds the CLI-facing structured logger: mode "text" or "json"
// renders slog records to w; "" discards them (the legacy plain-stderr
// output stays the default, so scripts parsing it keep working). Any other
// mode is an error.
func NewLogger(mode string, w io.Writer) (*slog.Logger, error) {
	switch mode {
	case "":
		return slog.New(slog.NewTextHandler(io.Discard, nil)), nil
	case "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log mode %q (want text or json)", mode)
	}
}
