// Package alloc implements the WD-aware buddy page allocator of §4.4:
// (n:m)-Alloc. An (n:m) allocator uses n out of every m consecutive device
// strips and marks the rest "no-use" — never allocated to any process — so
// that writes to lines whose bit-line neighbours fall in no-use strips can
// skip verification entirely.
//
// The design mirrors the paper's integration with a buddy system:
//
//   - one free-block-list-array per allocator tag; Free-(1:1) owns all
//     memory initially;
//   - an (n:m) allocator (n≠m) acquires naturally aligned marking regions
//     ("superblocks", 64 MB in the paper) from Free-(1:1), marks their
//     no-use strips, and carves user blocks from the rest;
//   - blocks of 32+ pages may contain internal no-use strips (internal
//     fragments); single-strip (16-page) no-use blocks are never linked to
//     free lists — they become external fragments reclaimed when their buddy
//     is freed, automatically re-forming the 32-page block;
//   - fully coalesced superblocks are returned to Free-(1:1) to reduce
//     fragmentation.
package alloc

import (
	"fmt"

	"sdpcm/internal/pcm"
)

// StripPages is the number of pages in one device strip (one row across all
// banks, §4.1).
const StripPages = pcm.NumBanks

// StripOrder is the buddy order of a single strip (2^4 = 16 pages).
const StripOrder = 4

// MaxM bounds the m of any allocator tag; the page-table tag field is 4
// bits, supporting 16 distinct allocators (§6.2).
const MaxM = 16

// Tag identifies an (n:m) allocator: n of every m consecutive strips hold
// data. Tag{1,1} is the default allocator that uses every strip.
type Tag struct {
	N, M int
}

// Common tags from the evaluation.
var (
	Tag11 = Tag{1, 1}
	Tag12 = Tag{1, 2}
	Tag23 = Tag{2, 3}
	Tag34 = Tag{3, 4}
)

// Valid reports whether the tag is well-formed.
func (t Tag) Valid() bool { return t.N >= 1 && t.N <= t.M && t.M <= MaxM }

// String implements fmt.Stringer.
func (t Tag) String() string { return fmt.Sprintf("(%d:%d)", t.N, t.M) }

// StripInUse reports whether strip index s (within a marking region) stores
// data under this allocator. Following the paper's (2:3) example — "a (2:3)
// allocator marks the 2nd strip of each 3-strip group" — each m-group keeps
// its first strip and its last n-1 strips, marking indices 1..m-n as no-use.
func (t Tag) StripInUse(s int) bool {
	r := s % t.M
	return r == 0 || r > t.M-t.N
}

// UsableStripsPer returns how many of `strips` consecutive strips (starting
// at stripOffset within the marking region) are in use.
func (t Tag) UsableStripsPer(stripOffset, strips int) int {
	if t.N == t.M {
		return strips
	}
	n := 0
	for s := stripOffset; s < stripOffset+strips; s++ {
		if t.StripInUse(s) {
			n++
		}
	}
	return n
}

// VerifyNeighbors decides, for a write landing in strip s of a marking
// region with stripsPerRegion strips, which bit-line neighbours need VnC
// (§4.4): a neighbour in a no-use strip holds no data and is skipped. To
// stay safe across region boundaries the first strip always verifies its
// top neighbour and the last strip always verifies its below neighbour.
func (t Tag) VerifyNeighbors(s, stripsPerRegion int) (top, below bool) {
	top = s == 0 || t.StripInUse(s-1)
	below = s == stripsPerRegion-1 || t.StripInUse(s+1)
	return
}

// ExpectedVerifiesPerWrite returns the steady-state average number of
// adjacent lines a write must verify under this allocator (ignoring region
// boundaries): the capacity/performance trade-off knob of §6.6.
func (t Tag) ExpectedVerifiesPerWrite() float64 {
	if !t.Valid() {
		return 0
	}
	total, used := 0, 0
	for s := 0; s < t.M; s++ {
		if !t.StripInUse(s) {
			continue
		}
		used++
		if t.StripInUse((s - 1 + t.M) % t.M) {
			total++
		}
		if t.StripInUse((s + 1) % t.M) {
			total++
		}
	}
	if used == 0 {
		return 0
	}
	return float64(total) / float64(used)
}

// CapacityFraction returns the share of strips that store data (n/m).
func (t Tag) CapacityFraction() float64 { return float64(t.N) / float64(t.M) }
