package alloc

import (
	"testing"
	"testing/quick"

	"sdpcm/internal/pcm"
)

// small allocator for tests: 8 regions of 128 pages (8 strips each).
func newTestAlloc(t *testing.T) *Allocator {
	t.Helper()
	a, err := New(1024, 128)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	if _, err := New(100, 128); err == nil {
		t.Error("totalPages not multiple of region must be rejected")
	}
	if _, err := New(1024, 100); err == nil {
		t.Error("non-power-of-two region must be rejected")
	}
	if _, err := New(1024, 16); err == nil {
		t.Error("single-strip region must be rejected")
	}
	if _, err := New(0, 128); err == nil {
		t.Error("zero pages must be rejected")
	}
}

func TestSimpleAllocFree(t *testing.T) {
	a := newTestAlloc(t)
	b, err := a.Alloc(16, Tag11)
	if err != nil {
		t.Fatal(err)
	}
	if b.Pages() != 16 || b.Tag != Tag11 {
		t.Fatalf("block = %+v", b)
	}
	if len(a.Usable(b)) != 16 {
		t.Fatal("(1:1) block must be fully usable")
	}
	if !a.Conserved() {
		t.Fatal("page conservation violated after alloc")
	}
	if err := a.Free(b); err != nil {
		t.Fatal(err)
	}
	if !a.Conserved() {
		t.Fatal("page conservation violated after free")
	}
	// After freeing everything, all memory must coalesce back into
	// Free-(1:1).
	st := a.Snapshot()
	if st.FreePages[Tag11] != 1024 || st.AllocatedPages != 0 {
		t.Fatalf("post-free stats = %+v", st)
	}
}

func TestAllocAlignment(t *testing.T) {
	a := newTestAlloc(t)
	for _, req := range []int{1, 2, 3, 7, 16, 33, 128} {
		b, err := a.Alloc(req, Tag11)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", req, err)
		}
		if int(b.Start)%(1<<b.Order) != 0 {
			t.Fatalf("block %+v not naturally aligned", b)
		}
		if b.Pages() < req {
			t.Fatalf("block %+v smaller than request %d", b, req)
		}
	}
}

func TestDoubleFreeRejected(t *testing.T) {
	a := newTestAlloc(t)
	b, _ := a.Alloc(16, Tag11)
	if err := a.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(b); err == nil {
		t.Fatal("double free must be rejected")
	}
	if err := a.Free(Block{Start: 512, Order: 3, Tag: Tag11}); err == nil {
		t.Fatal("freeing never-allocated block must be rejected")
	}
}

func TestBadRequests(t *testing.T) {
	a := newTestAlloc(t)
	if _, err := a.Alloc(0, Tag11); err == nil {
		t.Error("zero-page request must be rejected")
	}
	if _, err := a.Alloc(10, Tag{0, 3}); err == nil {
		t.Error("invalid tag must be rejected")
	}
	if _, err := a.Alloc(4096, Tag11); err != ErrOutOfMemory {
		t.Error("oversized request must return ErrOutOfMemory")
	}
}

func TestOutOfMemory(t *testing.T) {
	a := newTestAlloc(t)
	var blocks []Block
	for {
		b, err := a.Alloc(128, Tag11)
		if err != nil {
			break
		}
		blocks = append(blocks, b)
	}
	if len(blocks) != 8 {
		t.Fatalf("allocated %d regions, want 8", len(blocks))
	}
	if _, err := a.Alloc(1, Tag11); err != ErrOutOfMemory {
		t.Fatal("exhausted allocator must return ErrOutOfMemory")
	}
	for _, b := range blocks {
		if err := a.Free(b); err != nil {
			t.Fatal(err)
		}
	}
	if st := a.Snapshot(); st.FreePages[Tag11] != 1024 {
		t.Fatalf("memory not fully recovered: %+v", st)
	}
}

func TestNMPaperExample(t *testing.T) {
	// §4.4: a 32-page request under (1:2) allocates a 64-page block with 32
	// usable pages.
	a := newTestAlloc(t)
	b, err := a.Alloc(32, Tag12)
	if err != nil {
		t.Fatal(err)
	}
	if b.Pages() != 64 {
		t.Fatalf("(1:2) 32-page request got %d pages, want 64", b.Pages())
	}
	usable := a.Usable(b)
	if len(usable) != 32 {
		t.Fatalf("usable pages = %d, want 32", len(usable))
	}
	// Usable pages must all be in in-use strips (even strip indices).
	for _, p := range usable {
		if a.StripIndexInRegion(p)%2 != 0 {
			t.Fatalf("page %d in a no-use strip", p)
		}
	}
	if !a.Conserved() {
		t.Fatal("conservation violated")
	}
}

func TestNM16PageAdjustment(t *testing.T) {
	// "requests asking for 16 pages always have their sizes adjusted to 32
	// pages" under any n≠m allocator.
	a := newTestAlloc(t)
	b, err := a.Alloc(16, Tag12)
	if err != nil {
		t.Fatal(err)
	}
	if b.Pages() < 32 {
		t.Fatalf("16-page (1:2) request got %d pages, want >= 32", b.Pages())
	}
	if len(a.Usable(b)) < 16 {
		t.Fatal("must still deliver 16 usable pages")
	}
}

func TestNMSubStripRequest(t *testing.T) {
	// An 8-page request is serviced from an in-use strip without size
	// adjustment.
	a := newTestAlloc(t)
	b, err := a.Alloc(8, Tag12)
	if err != nil {
		t.Fatal(err)
	}
	if b.Pages() != 8 {
		t.Fatalf("8-page (1:2) request got %d pages, want 8", b.Pages())
	}
	usable := a.Usable(b)
	if len(usable) != 8 {
		t.Fatalf("usable = %d, want 8", len(usable))
	}
	if a.StripIndexInRegion(usable[0])%2 != 0 {
		t.Fatal("sub-strip block must sit inside an in-use strip")
	}
}

func TestRegionOwnershipAndPageInUse(t *testing.T) {
	a := newTestAlloc(t)
	b, _ := a.Alloc(32, Tag12)
	region := int(b.Start) / 128 * 128
	if got := a.RegionTag(pcm.PageAddr(region)); got != Tag12 {
		t.Fatalf("region tag = %v, want (1:2)", got)
	}
	// Pages in odd strips of the owned region are not in use.
	if a.PageInUse(pcm.PageAddr(region + 16)) {
		t.Fatal("page in marked strip must be no-use")
	}
	if !a.PageInUse(pcm.PageAddr(region)) {
		t.Fatal("page in in-use strip must be usable")
	}
	// Unowned regions default to (1:1).
	var other pcm.PageAddr
	for r := 0; r < 1024; r += 128 {
		if r != region {
			other = pcm.PageAddr(r)
			break
		}
	}
	if a.RegionTag(other) != Tag11 || !a.PageInUse(other) {
		t.Fatal("unowned region must behave as (1:1)")
	}
}

func TestRegionReturnedWhenFullyFree(t *testing.T) {
	a := newTestAlloc(t)
	b, _ := a.Alloc(32, Tag12)
	if a.Snapshot().OwnedRegions[Tag12] != 1 {
		t.Fatal("(1:2) must own one region")
	}
	if err := a.Free(b); err != nil {
		t.Fatal(err)
	}
	st := a.Snapshot()
	if st.OwnedRegions[Tag12] != 0 {
		t.Fatalf("fully-freed region must return to (1:1): %+v", st)
	}
	if st.FreePages[Tag11] != 1024 {
		t.Fatalf("all pages must be back in Free-(1:1): %+v", st)
	}
	if st.FragmentPages != 0 {
		t.Fatal("no fragments may survive full reclamation")
	}
}

func TestFragmentReclamation(t *testing.T) {
	// Allocate two 8-page blocks under (1:2) (same in-use strip), free
	// them: the no-use buddy strip must be reclaimed into a 32-page block,
	// per §4.4 "freeing a 16-page block in (1:2)-Alloc automatically forms
	// a 32-page block after reclaiming its no-use buddy".
	a := newTestAlloc(t)
	b1, err := a.Alloc(8, Tag12)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := a.Alloc(8, Tag12)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Conserved() {
		t.Fatal("conservation violated with live fragments")
	}
	if err := a.Free(b1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(b2); err != nil {
		t.Fatal(err)
	}
	st := a.Snapshot()
	if st.FragmentPages != 0 {
		t.Fatalf("fragments not reclaimed: %+v", st)
	}
	if st.OwnedRegions[Tag12] != 0 {
		t.Fatalf("region not returned: %+v", st)
	}
}

func TestUsablePagesDisjointAcrossBlocks(t *testing.T) {
	a := newTestAlloc(t)
	seen := map[pcm.PageAddr]bool{}
	tags := []Tag{Tag11, Tag12, Tag23, Tag34}
	var blocks []Block
	for i := 0; ; i++ {
		b, err := a.Alloc(1+(i%20), tags[i%len(tags)])
		if err != nil {
			break
		}
		blocks = append(blocks, b)
		for _, p := range a.Usable(b) {
			if seen[p] {
				t.Fatalf("page %d handed out twice", p)
			}
			seen[p] = true
		}
	}
	if len(blocks) == 0 {
		t.Fatal("no allocations succeeded")
	}
	if !a.Conserved() {
		t.Fatal("conservation violated")
	}
}

func TestDMARanges(t *testing.T) {
	a := newTestAlloc(t)
	b, _ := a.Alloc(32, Tag12)
	ranges, err := a.DMARanges(b)
	if err != nil {
		t.Fatal(err)
	}
	// 64-page (1:2) block = 4 strips, 2 usable: two 16-page runs.
	if len(ranges) != 2 {
		t.Fatalf("ranges = %v, want 2 runs", ranges)
	}
	for _, r := range ranges {
		if r[1]-r[0]+1 != StripPages {
			t.Fatalf("run %v is not one strip", r)
		}
	}
	// (2:3) DMA unsupported per §4.4.
	b23, err := a.Alloc(32, Tag23)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.DMARanges(b23); err == nil {
		t.Fatal("(2:3) DMA must be rejected")
	}
	// (1:1) DMA: single contiguous run.
	b11, _ := a.Alloc(16, Tag11)
	ranges, err = a.DMARanges(b11)
	if err != nil || len(ranges) != 1 {
		t.Fatalf("(1:1) DMA ranges = %v, %v", ranges, err)
	}
}

func TestConservationProperty(t *testing.T) {
	// Random interleavings of alloc/free across tags preserve conservation
	// and never double-allocate.
	if err := quick.Check(func(ops []uint16) bool {
		a, err := New(2048, 128)
		if err != nil {
			return false
		}
		tags := []Tag{Tag11, Tag12, Tag23, Tag34}
		var live []Block
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				req := int(op%70) + 1
				b, err := a.Alloc(req, tags[int(op/4)%len(tags)])
				if err == nil {
					if len(a.Usable(b)) < req {
						return false // short allocation
					}
					live = append(live, b)
				}
			} else {
				i := int(op/3) % len(live)
				if a.Free(live[i]) != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			if !a.Conserved() {
				return false
			}
		}
		for _, b := range live {
			if a.Free(b) != nil {
				return false
			}
		}
		st := a.Snapshot()
		return a.Conserved() && st.AllocatedPages == 0 && st.FreePages[Tag11] == 2048
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocUnderPressureMixedTags(t *testing.T) {
	// (n:m) allocators must be able to grab additional regions from (1:1)
	// as they grow.
	a := newTestAlloc(t)
	var blocks []Block
	for i := 0; i < 6; i++ {
		b, err := a.Alloc(64, Tag12) // each needs a 128-page region
		if err != nil {
			break
		}
		blocks = append(blocks, b)
	}
	if len(blocks) < 4 {
		t.Fatalf("only %d (1:2) region-sized allocations succeeded", len(blocks))
	}
	st := a.Snapshot()
	if st.OwnedRegions[Tag12] != len(blocks) {
		t.Fatalf("owned regions = %d, want %d", st.OwnedRegions[Tag12], len(blocks))
	}
}

func TestAcquisitionFailureReclaimsRegions(t *testing.T) {
	// A request whose usable-page requirement cannot be met by any single
	// aligned block must fail cleanly AND hand acquired-but-unused regions
	// back to Free-(1:1).
	a := newTestAlloc(t) // 8 regions x 128 pages (8 strips each)
	// (2:3) usable per 128-page region: strips {0,2,3,5,6} = 5 of 8 -> 80
	// pages. Ask for 81..: adjusted order fits one region but its usable
	// falls short; escalation acquires more until OOM of aligned blocks.
	b, err := a.Alloc(81, Tag23)
	if err == nil {
		// If a larger aligned block satisfied it, that's fine too — verify
		// the delivery instead.
		if len(a.Usable(b)) < 81 {
			t.Fatalf("short allocation: %d usable", len(a.Usable(b)))
		}
		return
	}
	st := a.Snapshot()
	if st.OwnedRegions[Tag23] != 0 {
		t.Fatalf("failed acquisition left %d regions owned", st.OwnedRegions[Tag23])
	}
	if st.FreePages[Tag11] != 1024 {
		t.Fatalf("memory not reclaimed after failure: %+v", st)
	}
	if !a.Conserved() {
		t.Fatal("conservation violated after failed acquisition")
	}
}

func TestUsableOrderedAndInBlock(t *testing.T) {
	a := newTestAlloc(t)
	b, err := a.Alloc(40, Tag34)
	if err != nil {
		t.Fatal(err)
	}
	us := a.Usable(b)
	for i, p := range us {
		if i > 0 && us[i-1] >= p {
			t.Fatal("usable pages not strictly ascending")
		}
		if p < b.Start || int(p) >= int(b.Start)+b.Pages() {
			t.Fatalf("usable page %d outside block %+v", p, b)
		}
	}
}

func TestSnapshotCountsOwnedRegions(t *testing.T) {
	a := newTestAlloc(t)
	b1, _ := a.Alloc(32, Tag12)
	b2, _ := a.Alloc(32, Tag23)
	st := a.Snapshot()
	if st.OwnedRegions[Tag12] != 1 || st.OwnedRegions[Tag23] != 1 {
		t.Fatalf("owned regions = %+v", st.OwnedRegions)
	}
	a.Free(b1)
	a.Free(b2)
	st = a.Snapshot()
	if len(st.OwnedRegions) != 0 && (st.OwnedRegions[Tag12] != 0 || st.OwnedRegions[Tag23] != 0) {
		t.Fatalf("regions survive frees: %+v", st.OwnedRegions)
	}
}
