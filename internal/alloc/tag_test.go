package alloc

import (
	"math"
	"testing"
)

func TestTagValid(t *testing.T) {
	for _, tag := range []Tag{Tag11, Tag12, Tag23, Tag34, {4, 5}, {16, 16}} {
		if !tag.Valid() {
			t.Errorf("%v must be valid", tag)
		}
	}
	for _, tag := range []Tag{{0, 1}, {2, 1}, {1, 17}, {-1, 2}, {0, 0}} {
		if tag.Valid() {
			t.Errorf("%v must be invalid", tag)
		}
	}
}

func TestStripInUsePaperExamples(t *testing.T) {
	// §4.4: a (2:3) allocator marks the 2nd strip of each 3-strip group.
	for s := 0; s < 12; s++ {
		want := s%3 != 1
		if got := Tag23.StripInUse(s); got != want {
			t.Errorf("(2:3) strip %d in-use = %v, want %v", s, got, want)
		}
	}
	// (1:2) uses every other strip.
	for s := 0; s < 12; s++ {
		want := s%2 == 0
		if got := Tag12.StripInUse(s); got != want {
			t.Errorf("(1:2) strip %d in-use = %v, want %v", s, got, want)
		}
	}
	// (1:1) uses everything.
	for s := 0; s < 5; s++ {
		if !Tag11.StripInUse(s) {
			t.Errorf("(1:1) strip %d must be in use", s)
		}
	}
}

func TestStripInUseDensity(t *testing.T) {
	// Exactly n of every m strips must be in use for all valid tags.
	for m := 1; m <= MaxM; m++ {
		for n := 1; n <= m; n++ {
			tag := Tag{n, m}
			used := 0
			for s := 0; s < m; s++ {
				if tag.StripInUse(s) {
					used++
				}
			}
			if used != n {
				t.Errorf("%v: %d of %d strips in use, want %d", tag, used, m, n)
			}
		}
	}
}

func TestVerifyNeighborsPaperRules(t *testing.T) {
	const strips = 1024
	// (2:3): mod 0 verifies top only; mod 2 verifies below only.
	top, below := Tag23.VerifyNeighbors(3, strips) // 3 mod 3 == 0
	if !top || below {
		t.Errorf("(2:3) strip≡0: top=%v below=%v, want top only", top, below)
	}
	top, below = Tag23.VerifyNeighbors(5, strips) // 5 mod 3 == 2
	if top || !below {
		t.Errorf("(2:3) strip≡2: top=%v below=%v, want below only", top, below)
	}
	// (1:2): interior strips verify nothing.
	top, below = Tag12.VerifyNeighbors(4, strips)
	if top || below {
		t.Errorf("(1:2) interior: top=%v below=%v, want neither", top, below)
	}
	// (1:1): everything verified.
	top, below = Tag11.VerifyNeighbors(10, strips)
	if !top || !below {
		t.Errorf("(1:1): top=%v below=%v, want both", top, below)
	}
}

func TestVerifyNeighborsBoundaries(t *testing.T) {
	const strips = 512
	// First strip of a region always verifies its top neighbour; last strip
	// always verifies below (§4.4 reliability rule).
	if top, _ := Tag12.VerifyNeighbors(0, strips); !top {
		t.Error("first strip must verify top")
	}
	if _, below := Tag12.VerifyNeighbors(strips-1, strips); !below {
		t.Error("last strip must verify below")
	}
}

func TestExpectedVerifiesPerWrite(t *testing.T) {
	cases := []struct {
		tag  Tag
		want float64
	}{
		{Tag11, 2.0},
		{Tag12, 0.0},
		{Tag23, 1.0},
		{Tag34, 4.0 / 3.0},
	}
	for _, c := range cases {
		if got := c.tag.ExpectedVerifiesPerWrite(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v: expected verifies = %v, want %v", c.tag, got, c.want)
		}
	}
}

func TestVerifiesMonotoneInRatio(t *testing.T) {
	// §6.6: from 1:2 to 2:3 to 3:4 to 1:1 the verification load increases
	// monotonically.
	seq := []Tag{Tag12, Tag23, Tag34, Tag11}
	prev := -1.0
	for _, tag := range seq {
		v := tag.ExpectedVerifiesPerWrite()
		if v <= prev {
			t.Fatalf("verify load not increasing at %v: %v <= %v", tag, v, prev)
		}
		prev = v
	}
}

func TestCapacityFraction(t *testing.T) {
	if Tag12.CapacityFraction() != 0.5 || Tag11.CapacityFraction() != 1.0 {
		t.Error("capacity fractions wrong")
	}
	if math.Abs(Tag23.CapacityFraction()-2.0/3.0) > 1e-12 {
		t.Error("(2:3) capacity fraction wrong")
	}
}

func TestTagString(t *testing.T) {
	if Tag23.String() != "(2:3)" {
		t.Errorf("String = %q", Tag23.String())
	}
}
