package alloc

import (
	"errors"
	"fmt"
	"sort"

	"sdpcm/internal/pcm"
)

// ErrOutOfMemory is returned when no block can satisfy a request.
var ErrOutOfMemory = errors.New("alloc: out of memory")

// Block is an allocation: a naturally aligned, power-of-two-page region
// owned by one allocator tag. Under an (n:m) tag with n≠m, some pages of
// the block may lie in no-use strips; Allocator.Usable enumerates the data
// pages.
type Block struct {
	Start pcm.PageAddr
	Order int
	Tag   Tag
}

// Pages returns the block's total page span.
func (b Block) Pages() int { return 1 << b.Order }

// Stats summarises allocator state.
type Stats struct {
	TotalPages     int
	FreePages      map[Tag]int // free-list pages per tag (incl. internal no-use)
	AllocatedPages int         // pages inside live blocks (incl. internal no-use)
	FragmentPages  int         // external no-use fragments awaiting reclaim
	OwnedRegions   map[Tag]int // marking regions currently owned per (n:m) tag
}

// Allocator is the WD-aware buddy system.
type Allocator struct {
	totalPages  int
	regionPages int // marking-region span ("64MB" in the paper)
	regionOrder int
	stripPages  int // device strip width in pages (the module's bank count)
	stripOrder  int
	maxOrder    int

	free      map[Tag][][]int // free[tag][order] = sorted block starts
	fragments map[Tag]map[int]bool
	allocated map[int]Block
	owner     map[int]Tag // region start -> (n:m) tag owning it

	// OnOwnerChange, when set, observes every owner-map mutation: a region
	// acquired by an (n:m) tag (present=true) or returned to Free-(1:1)
	// (present=false, t=Tag11). The sharded simulator uses it to version
	// region-tag updates into per-shard mirrors in program order.
	OnOwnerChange func(regionStart int, t Tag, present bool)
}

// New builds an allocator over totalPages of physical memory with the given
// marking-region size. totalPages must be a positive multiple of
// regionPages; regionPages must be a power of two and at least two strips
// (so marking is meaningful).
func New(totalPages, regionPages int) (*Allocator, error) {
	return NewWithStrip(totalPages, regionPages, StripPages)
}

// NewWithStrip builds an allocator whose device strip is stripPages wide —
// the bank count of the module it allocates for. New uses the default
// 16-bank strip; multi-module topologies size each module's allocator to
// its own geometry.
func NewWithStrip(totalPages, regionPages, stripPages int) (*Allocator, error) {
	if stripPages < 1 || stripPages&(stripPages-1) != 0 {
		return nil, fmt.Errorf("alloc: stripPages %d must be a power of two", stripPages)
	}
	if regionPages < 2*stripPages || regionPages&(regionPages-1) != 0 {
		return nil, fmt.Errorf("alloc: regionPages %d must be a power of two >= %d", regionPages, 2*stripPages)
	}
	if totalPages <= 0 || totalPages%regionPages != 0 {
		return nil, fmt.Errorf("alloc: totalPages %d must be a positive multiple of regionPages %d", totalPages, regionPages)
	}
	a := &Allocator{
		totalPages:  totalPages,
		regionPages: regionPages,
		regionOrder: log2(regionPages),
		stripPages:  stripPages,
		stripOrder:  log2(stripPages),
		maxOrder:    log2ceil(totalPages),
		free:        make(map[Tag][][]int),
		fragments:   make(map[Tag]map[int]bool),
		allocated:   make(map[int]Block),
		owner:       make(map[int]Tag),
	}
	// Seed Free-(1:1) with region-order blocks; insertion coalesces upward.
	for s := 0; s < totalPages; s += regionPages {
		a.insert(Tag11, s, a.regionOrder)
	}
	return a, nil
}

// RegionPages returns the marking-region span in pages.
func (a *Allocator) RegionPages() int { return a.regionPages }

// StripPages returns the device strip width in pages.
func (a *Allocator) StripPages() int { return a.stripPages }

// StripsPerRegion returns the number of strips in one marking region.
func (a *Allocator) StripsPerRegion() int { return a.regionPages / a.stripPages }

func log2(x int) int {
	n := 0
	for 1<<n < x {
		n++
	}
	return n
}

func log2ceil(x int) int { return log2(x) }

// lists returns (lazily creating) the free-list array of a tag.
func (a *Allocator) lists(t Tag) [][]int {
	l := a.free[t]
	if l == nil {
		l = make([][]int, a.maxOrder+1)
		a.free[t] = l
	}
	return l
}

// frags returns (lazily creating) the external-fragment set of a tag.
func (a *Allocator) frags(t Tag) map[int]bool {
	f := a.fragments[t]
	if f == nil {
		f = make(map[int]bool)
		a.fragments[t] = f
	}
	return f
}

// usablePages counts the data pages of block [start, start+2^order) under
// tag marking.
func (a *Allocator) usablePages(t Tag, start, order int) int {
	if t.N == t.M {
		return 1 << order
	}
	span := 1 << order
	if order <= a.stripOrder {
		// Within one strip: all or nothing.
		if t.StripInUse(a.stripIndex(start)) {
			return span
		}
		return 0
	}
	firstStrip := a.stripIndex(start)
	return t.UsableStripsPer(firstStrip, span/a.stripPages) * a.stripPages
}

// stripIndex returns the strip index of a page within its marking region.
func (a *Allocator) stripIndex(page int) int {
	return (page % a.regionPages) / a.stripPages
}

// StripIndexInRegion exposes stripIndex for the memory controller, which
// needs the written page's strip position to apply Tag.VerifyNeighbors.
func (a *Allocator) StripIndexInRegion(p pcm.PageAddr) int { return a.stripIndex(int(p)) }

// PageInUse reports whether a physical page may hold data: pages inside a
// region owned by an (n:m) allocator follow its marking; everything else is
// usable.
func (a *Allocator) PageInUse(p pcm.PageAddr) bool {
	t, ok := a.owner[int(p)/a.regionPages*a.regionPages]
	if !ok {
		return true
	}
	return t.StripInUse(a.stripIndex(int(p)))
}

// RegionTag returns the (n:m) tag owning the page's marking region, or
// Tag11 when the region is unowned.
func (a *Allocator) RegionTag(p pcm.PageAddr) Tag {
	if t, ok := a.owner[int(p)/a.regionPages*a.regionPages]; ok {
		return t
	}
	return Tag11
}

// removeFromList deletes start from the tag's order list; reports success.
func (a *Allocator) removeFromList(t Tag, order, start int) bool {
	l := a.lists(t)[order]
	i := sort.SearchInts(l, start)
	if i < len(l) && l[i] == start {
		a.lists(t)[order] = append(l[:i], l[i+1:]...)
		return true
	}
	return false
}

func (a *Allocator) pushToList(t Tag, order, start int) {
	l := a.lists(t)[order]
	i := sort.SearchInts(l, start)
	l = append(l, 0)
	copy(l[i+1:], l[i:])
	l[i] = start
	a.lists(t)[order] = l
}

// insert frees a block into a tag's lists with buddy coalescing. Order-4
// no-use strips coalesce through the fragment set; a fully re-formed region
// owned by an (n:m) tag is handed back to Free-(1:1) (§4.4 "return its 64MB
// or bigger blocks to (1:1)-Alloc").
func (a *Allocator) insert(t Tag, start, order int) {
	for {
		if t != Tag11 && order >= a.regionOrder {
			// The block covers whole marking regions: return them to
			// Free-(1:1) and keep coalescing there.
			for r := start; r < start+(1<<order); r += a.regionPages {
				delete(a.owner, r)
				if a.OnOwnerChange != nil {
					a.OnOwnerChange(r, Tag11, false)
				}
			}
			t = Tag11
		}
		if order >= a.maxOrder {
			break
		}
		buddy := start ^ (1 << order)
		if buddy >= a.totalPages {
			break
		}
		if order == a.stripOrder && t.N != t.M && a.frags(t)[buddy] {
			delete(a.frags(t), buddy)
		} else if !a.removeFromList(t, order, buddy) {
			break
		}
		if buddy < start {
			start = buddy
		}
		order++
	}
	a.pushToList(t, order, start)
}

// take removes and returns a block of at least `order` whose usable pages
// cover `request`, splitting greedily. It does not acquire new regions.
func (a *Allocator) take(t Tag, order, request int) (int, int, bool) {
	for o := order; o <= a.maxOrder; o++ {
		for _, start := range a.lists(t)[o] {
			if a.usablePages(t, start, o) >= request {
				a.removeFromList(t, o, start)
				s, fo := a.splitTo(t, start, o, order, request)
				return s, fo, true
			}
		}
	}
	return 0, 0, false
}

// splitTo splits a block down toward targetOrder while a half still covers
// the request; the untaken half is linked (or becomes a no-use fragment at
// strip order). Returns the final block.
func (a *Allocator) splitTo(t Tag, start, order, targetOrder, request int) (int, int) {
	for order > targetOrder {
		half := 1 << (order - 1)
		lo, hi := start, start+half
		loU, hiU := a.usablePages(t, lo, order-1), a.usablePages(t, hi, order-1)
		var keep, other, otherU int
		switch {
		case loU >= request && (hiU < request || loU <= hiU):
			keep, other, otherU = lo, hi, hiU
		case hiU >= request:
			keep, other, otherU = hi, lo, loU
		default:
			// Neither half alone covers the request: stop here.
			return start, order
		}
		a.release(t, other, order-1, otherU)
		start, order = keep, order-1
	}
	return start, order
}

// release links a split-off half to the free lists, or parks a no-use strip
// as an external fragment.
func (a *Allocator) release(t Tag, start, order, usable int) {
	if t.N != t.M && order == a.stripOrder && usable == 0 {
		a.frags(t)[start] = true
		return
	}
	if t.N != t.M && order < a.stripOrder {
		// Sub-strip blocks only exist inside in-use strips; a no-use one
		// would be a bug upstream.
		if usable == 0 {
			panic("alloc: no-use sub-strip block escaped marking")
		}
	}
	a.insert(t, start, order)
}

// Alloc returns a block whose usable pages number at least `pages`. For
// n≠m tags, requests of a strip or more are size-adjusted the way §4.4
// describes (a 32-page request under (1:2) allocates a 64-page block).
func (a *Allocator) Alloc(pages int, t Tag) (Block, error) {
	if !t.Valid() {
		return Block{}, fmt.Errorf("alloc: invalid tag %v", t)
	}
	if pages <= 0 {
		return Block{}, fmt.Errorf("alloc: non-positive request %d", pages)
	}
	order := log2ceil(pages)
	if t.N != t.M && pages >= a.stripPages {
		// Strip-sized and larger requests are size-adjusted for the
		// capacity lost to no-use strips (§4.4: a 16-page request under a
		// n≠m allocator is always adjusted to 32 pages). Sub-strip requests
		// are serviced directly from in-use strips.
		adjusted := (pages*t.M + t.N - 1) / t.N
		order = log2ceil(adjusted)
	}
	if order > a.maxOrder {
		return Block{}, ErrOutOfMemory
	}
	start, gotOrder, ok := a.take(t, order, pages)
	if !ok && t.N != t.M {
		// Acquire marking regions from Free-(1:1) and retry, growing the
		// acquisition when alignment makes a single block's usable pages
		// fall short of the request.
		acq := order
		if acq < a.regionOrder {
			acq = a.regionOrder
		}
		for ; !ok && acq <= a.maxOrder; acq++ {
			rStart, rOrder, got := a.take(Tag11, acq, 1<<acq)
			if !got {
				continue
			}
			for r := rStart; r < rStart+(1<<rOrder); r += a.regionPages {
				a.owner[r] = t
				if a.OnOwnerChange != nil {
					a.OnOwnerChange(r, t, true)
				}
			}
			// Push directly: insert would hand the region-sized block
			// straight back to Free-(1:1).
			a.pushToList(t, rOrder, rStart)
			start, gotOrder, ok = a.take(t, order, pages)
		}
		if !ok {
			a.reclaimRegions(t)
			return Block{}, ErrOutOfMemory
		}
	}
	if !ok {
		return Block{}, ErrOutOfMemory
	}
	b := Block{Start: pcm.PageAddr(start), Order: gotOrder, Tag: t}
	a.allocated[start] = b
	return b, nil
}

// Free returns a block to its allocator. Freeing an unknown or mismatched
// block is an error.
func (a *Allocator) Free(b Block) error {
	got, ok := a.allocated[int(b.Start)]
	if !ok {
		return fmt.Errorf("alloc: freeing unallocated block at %d", b.Start)
	}
	if got != b {
		return fmt.Errorf("alloc: block mismatch at %d: allocated %+v, freeing %+v", b.Start, got, b)
	}
	delete(a.allocated, int(b.Start))
	a.insert(b.Tag, int(b.Start), b.Order)
	return nil
}

// reclaimRegions hands any fully-free region-sized blocks of a tag back to
// Free-(1:1); called when an over-eager acquisition could not satisfy its
// request.
func (a *Allocator) reclaimRegions(t Tag) {
	for o := a.regionOrder; o <= a.maxOrder; o++ {
		starts := append([]int(nil), a.lists(t)[o]...)
		for _, s := range starts {
			if a.removeFromList(t, o, s) {
				a.insert(t, s, o)
			}
		}
	}
}

// Usable enumerates the data pages of a block in ascending order.
func (a *Allocator) Usable(b Block) []pcm.PageAddr {
	out := make([]pcm.PageAddr, 0, 1<<b.Order)
	for p := int(b.Start); p < int(b.Start)+(1<<b.Order); p++ {
		if b.Tag.N == b.Tag.M || b.Tag.StripInUse(a.stripIndex(p)) {
			out = append(out, pcm.PageAddr(p))
		}
	}
	return out
}

// DMARanges returns the physically contiguous usable page runs of a block,
// for DMA engines that must skip no-use strips. Per §4.4, only (1:1) and
// (1:2) allocations support DMA.
func (a *Allocator) DMARanges(b Block) ([][2]pcm.PageAddr, error) {
	if b.Tag != Tag11 && b.Tag != Tag12 {
		return nil, fmt.Errorf("alloc: DMA supports only (1:1) and (1:2), got %v", b.Tag)
	}
	usable := a.Usable(b)
	var out [][2]pcm.PageAddr
	for i := 0; i < len(usable); {
		j := i
		for j+1 < len(usable) && usable[j+1] == usable[j]+1 {
			j++
		}
		out = append(out, [2]pcm.PageAddr{usable[i], usable[j]})
		i = j + 1
	}
	return out, nil
}

// Snapshot computes current statistics.
func (a *Allocator) Snapshot() Stats {
	st := Stats{
		TotalPages:   a.totalPages,
		FreePages:    make(map[Tag]int),
		OwnedRegions: make(map[Tag]int),
	}
	for t, lists := range a.free {
		for o, l := range lists {
			st.FreePages[t] += len(l) << o
		}
	}
	for _, f := range a.fragments {
		st.FragmentPages += len(f) * a.stripPages
	}
	for _, b := range a.allocated {
		st.AllocatedPages += b.Pages()
	}
	for _, t := range a.owner {
		st.OwnedRegions[t]++
	}
	return st
}

// checkConservation verifies the fundamental invariant: every page is in
// exactly one of {free lists, fragments, allocated blocks}. Exposed for
// tests via Conserved.
func (a *Allocator) Conserved() bool {
	st := a.Snapshot()
	sum := st.AllocatedPages + st.FragmentPages
	for _, f := range st.FreePages {
		sum += f
	}
	return sum == st.TotalPages
}
