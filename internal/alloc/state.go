package alloc

import (
	"fmt"
	"slices"

	"sdpcm/internal/pcm"
	"sdpcm/internal/snap"
)

// sortedTags returns the keys of a tag-keyed map ordered by (M, N), giving
// the encoder a deterministic traversal independent of map iteration order.
func sortedTags[V any](m map[Tag]V) []Tag {
	tags := make([]Tag, 0, len(m))
	for t := range m {
		tags = append(tags, t)
	}
	slices.SortFunc(tags, func(a, b Tag) int {
		if a.M != b.M {
			return a.M - b.M
		}
		return a.N - b.N
	})
	return tags
}

func sortedInts[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// EncodeState serializes the allocator's mutable state: free lists,
// external fragments, live blocks and region ownership. Geometry
// (totalPages, regionPages) is a construction parameter and is validated on
// decode rather than restored.
func (a *Allocator) EncodeState(e *snap.Encoder) {
	e.Begin("alloc.allocator")
	e.Int(a.totalPages)
	e.Int(a.regionPages)

	freeTags := sortedTags(a.free)
	e.Uvarint(uint64(len(freeTags)))
	for _, t := range freeTags {
		e.Int(t.N)
		e.Int(t.M)
		lists := a.free[t]
		e.Uvarint(uint64(len(lists)))
		for _, l := range lists {
			e.Uvarint(uint64(len(l)))
			for _, s := range l {
				e.Int(s) // kept sorted by pushToList
			}
		}
	}

	fragTags := sortedTags(a.fragments)
	e.Uvarint(uint64(len(fragTags)))
	for _, t := range fragTags {
		e.Int(t.N)
		e.Int(t.M)
		starts := sortedInts(a.fragments[t])
		e.Uvarint(uint64(len(starts)))
		for _, s := range starts {
			e.Int(s)
		}
	}

	allocStarts := sortedInts(a.allocated)
	e.Uvarint(uint64(len(allocStarts)))
	for _, s := range allocStarts {
		b := a.allocated[s]
		e.Int(int(b.Start))
		e.Int(b.Order)
		e.Int(b.Tag.N)
		e.Int(b.Tag.M)
	}

	ownerStarts := sortedInts(a.owner)
	e.Uvarint(uint64(len(ownerStarts)))
	for _, s := range ownerStarts {
		t := a.owner[s]
		e.Int(s)
		e.Int(t.N)
		e.Int(t.M)
	}
	e.End()
}

// DecodeState restores state written by EncodeState into an allocator
// freshly built with the same geometry. OnOwnerChange is deliberately not
// fired: the caller restores any owner mirrors itself from the same
// checkpoint, so replaying ownership events would double-apply them.
func (a *Allocator) DecodeState(d *snap.Decoder) error {
	d.Begin("alloc.allocator")
	if tp, rp := d.Int(), d.Int(); d.Err() == nil && (tp != a.totalPages || rp != a.regionPages) {
		return fmt.Errorf("alloc: checkpoint geometry %d/%d pages does not match this run's %d/%d",
			tp, rp, a.totalPages, a.regionPages)
	}

	a.free = make(map[Tag][][]int)
	nt := d.Uvarint()
	for i := uint64(0); i < nt && d.Err() == nil; i++ {
		t := Tag{N: d.Int(), M: d.Int()}
		no := d.Uvarint()
		lists := make([][]int, no)
		for o := uint64(0); o < no && d.Err() == nil; o++ {
			ns := d.Uvarint()
			if ns == 0 {
				continue
			}
			l := make([]int, 0, ns)
			for j := uint64(0); j < ns && d.Err() == nil; j++ {
				l = append(l, d.Int())
			}
			lists[o] = l
		}
		a.free[t] = lists
	}

	a.fragments = make(map[Tag]map[int]bool)
	nt = d.Uvarint()
	for i := uint64(0); i < nt && d.Err() == nil; i++ {
		t := Tag{N: d.Int(), M: d.Int()}
		ns := d.Uvarint()
		f := make(map[int]bool, ns)
		for j := uint64(0); j < ns && d.Err() == nil; j++ {
			f[d.Int()] = true
		}
		a.fragments[t] = f
	}

	na := d.Uvarint()
	a.allocated = make(map[int]Block, na)
	for i := uint64(0); i < na && d.Err() == nil; i++ {
		b := Block{Start: pcm.PageAddr(d.Int()), Order: d.Int(), Tag: Tag{N: d.Int(), M: d.Int()}}
		a.allocated[int(b.Start)] = b
	}

	no := d.Uvarint()
	a.owner = make(map[int]Tag, no)
	for i := uint64(0); i < no && d.Err() == nil; i++ {
		s := d.Int()
		a.owner[s] = Tag{N: d.Int(), M: d.Int()}
	}
	d.End()
	return d.Err()
}
