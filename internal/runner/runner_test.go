package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"sdpcm/internal/alloc"
	"sdpcm/internal/core"
	"sdpcm/internal/mc"
	"sdpcm/internal/pcm"
	"sdpcm/internal/sim"
	"sdpcm/internal/trace"
	"sdpcm/internal/workload"
)

func testBase() Base {
	return Base{RefsPerCore: 800, Cores: 2, MemPages: 1 << 14, RegionPages: 256, Seed: 7}
}

// testSpecs is a small grid with deliberate duplicates (two baseline/lbm
// points) and distinct knobs.
func testSpecs() []Spec {
	return []Spec{
		{Scheme: core.Baseline(), Bench: "lbm"},
		{Scheme: core.LazyC(6), Bench: "lbm"},
		{Scheme: core.Baseline(), Bench: "mcf"},
		{Scheme: core.Baseline(), Bench: "lbm", Tag: "dup"},
		{Scheme: core.LazyCPreRead(6), Bench: "mcf", QueueCap: 16},
		{Scheme: core.LazyC(6), Bench: "lbm", Overrides: Overrides{HardErrorLifetime: 0.5}},
	}
}

// TestDeterminism asserts the tentpole guarantee: the same grid run with 1
// worker and with many workers, and with the cache on and off, produces
// identical sim.Result values.
func TestDeterminism(t *testing.T) {
	base := testBase()
	specs := testSpecs()
	var ref []sim.Result
	for _, r := range []*Runner{
		{Workers: 1},
		{Workers: 8},
		{Workers: 1, NoCache: true},
		{Workers: 8, NoCache: true},
	} {
		res, err := r.Run(base, specs)
		if err != nil {
			t.Fatalf("Workers=%d NoCache=%t: %v", r.Workers, r.NoCache, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for i := range res {
			if !reflect.DeepEqual(res[i], ref[i]) {
				t.Errorf("Workers=%d NoCache=%t: point %d diverged:\n got %+v\nwant %+v",
					r.Workers, r.NoCache, i, res[i], ref[i])
			}
		}
	}
}

func TestCacheDedup(t *testing.T) {
	r := &Runner{Workers: 4}
	specs := testSpecs()
	res, err := r.Run(testBase(), specs)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Points != len(specs) {
		t.Errorf("Points = %d, want %d", st.Points, len(specs))
	}
	if st.SimRuns != len(specs)-1 || st.CacheHits != 1 {
		t.Errorf("SimRuns = %d, CacheHits = %d; want %d and 1 (one duplicate point)",
			st.SimRuns, st.CacheHits, len(specs)-1)
	}
	if !reflect.DeepEqual(res[0], res[3]) {
		t.Error("duplicate specs returned different results")
	}
	// A second Run of the same grid is served entirely from the cache.
	res2, err := r.Run(testBase(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Stats(); got.SimRuns != st.SimRuns {
		t.Errorf("re-run simulated %d new points, want 0", got.SimRuns-st.SimRuns)
	}
	for i := range res2 {
		if !reflect.DeepEqual(res2[i], res[i]) {
			t.Errorf("cached point %d differs from original", i)
		}
	}
}

func TestNoCacheRunsEveryPoint(t *testing.T) {
	r := &Runner{Workers: 2, NoCache: true}
	specs := testSpecs()
	if _, err := r.Run(testBase(), specs); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.SimRuns != len(specs) || st.CacheHits != 0 {
		t.Errorf("NoCache stats = %+v, want %d runs and 0 hits", st, len(specs))
	}
}

// TestKeyDistinct asserts that configs differing in any semantic knob never
// collide: every pair of distinct variants must get a distinct key.
func TestKeyDistinct(t *testing.T) {
	base := sim.Config{
		Scheme:      core.Baseline(),
		Mix:         workload.HomogeneousMix("lbm", 4),
		RefsPerCore: 1000,
		MemPages:    1 << 14,
		RegionPages: 256,
		Seed:        1,
	}
	type variant struct {
		name string
		cfg  sim.Config
		life float64
	}
	mutate := func(name string, f func(*sim.Config)) variant {
		c := base
		f(&c)
		return variant{name: name, cfg: c}
	}
	variants := []variant{
		{name: "base", cfg: base},
		mutate("scheme", func(c *sim.Config) { c.Scheme = core.LazyC(6) }),
		mutate("lazy-flag", func(c *sim.Config) { c.Scheme.LazyCorrection = true }),
		mutate("no-correct", func(c *sim.Config) { c.Scheme.NoCorrectCharge = true }),
		mutate("no-verify", func(c *sim.Config) { c.Scheme.NoVerifyCharge = true }),
		mutate("encoding", func(c *sim.Config) { c.Scheme.Encoding = "fnw" }),
		mutate("ecp", func(c *sim.Config) { c.Scheme.ECPEntries = 6 }),
		mutate("alloc-tag", func(c *sim.Config) { c.Scheme.Tag = alloc.Tag23 }),
		mutate("layout", func(c *sim.Config) { c.Scheme = core.WDFree() }),
		mutate("bench", func(c *sim.Config) { c.Mix = workload.HomogeneousMix("mcf", 4) }),
		mutate("cores", func(c *sim.Config) { c.Mix = workload.HomogeneousMix("lbm", 8) }),
		mutate("refs", func(c *sim.Config) { c.RefsPerCore = 2000 }),
		mutate("mem", func(c *sim.Config) { c.MemPages = 1 << 15 }),
		mutate("region", func(c *sim.Config) { c.RegionPages = 512 }),
		mutate("queue", func(c *sim.Config) { c.WriteQueueCap = 16 }),
		mutate("seed", func(c *sim.Config) { c.Seed = 2 }),
		mutate("psi", func(c *sim.Config) { c.WearLevelPsi = 100 }),
		mutate("integrity", func(c *sim.Config) { c.CheckIntegrity = true }),
		mutate("coretags", func(c *sim.Config) { c.CoreTags = []alloc.Tag{alloc.Tag11, alloc.Tag12, alloc.Tag11, alloc.Tag11} }),
		mutate("policykey", func(c *sim.Config) { c.Scheme.PolicyKey = "imdb:8" }),
		{name: "hardlife", cfg: base, life: 0.5},
		{name: "hardlife-2", cfg: base, life: 1.0},
	}
	keys := map[string]string{}
	for _, v := range variants {
		k, ok := Key(v.cfg, v.life)
		if !ok {
			t.Fatalf("%s: unexpectedly uncacheable", v.name)
		}
		if prev, dup := keys[k]; dup {
			t.Errorf("key collision between %q and %q: %s", prev, v.name, k)
		}
		keys[k] = v.name
	}
	// Equal configs must share a key.
	k1, _ := Key(base, 0)
	k2, _ := Key(base, 0)
	if k1 != k2 {
		t.Error("identical configs got different keys")
	}
}

func TestKeyUncacheable(t *testing.T) {
	cfg := sim.Config{Scheme: core.Baseline(), Streams: []trace.Stream{trace.NewSliceStream(nil)}}
	if _, ok := Key(cfg, 0); ok {
		t.Error("trace-replay config must not be cacheable")
	}
	cfg = sim.Config{Scheme: core.LazyC(6)}
	cfg.Scheme.HardErrorFn = core.HardErrorModel(0.5)
	if _, ok := Key(cfg, 0); ok {
		t.Error("opaque HardErrorFn must not be cacheable")
	}
	if _, ok := Key(cfg, 0.5); !ok {
		t.Error("HardErrorFn declared via lifetime override must be cacheable")
	}
	cfg = sim.Config{Scheme: core.Baseline()}
	cfg.Scheme.Policy = func(*mc.Config) {}
	if _, ok := Key(cfg, 0); ok {
		t.Error("Policy hook without a PolicyKey must not be cacheable")
	}
	cfg.Scheme.PolicyKey = "test:1"
	if _, ok := Key(cfg, 0); !ok {
		t.Error("Policy hook with a declared PolicyKey must be cacheable")
	}
}

func TestGridExpand(t *testing.T) {
	g := Grid{
		Schemes:    []core.Scheme{core.Baseline(), core.LazyC(6)},
		Benchmarks: []string{"lbm", "mcf"},
		QueueCaps:  []int{8, 16},
		Tag:        "sweep",
	}
	specs := g.Expand()
	if len(specs) != 8 {
		t.Fatalf("expanded %d specs, want 8", len(specs))
	}
	// Benchmark-major order, then scheme, then queue cap.
	want := Spec{Scheme: core.Baseline(), Bench: "lbm", QueueCap: 16, Tag: "sweep"}
	if got := specs[1]; got.Bench != want.Bench || got.QueueCap != want.QueueCap ||
		got.Scheme.Name != want.Scheme.Name || got.Tag != "sweep" {
		t.Errorf("specs[1] = %+v, want %+v", got, want)
	}
	if specs[4].Bench != "mcf" {
		t.Errorf("specs[4].Bench = %q, want mcf", specs[4].Bench)
	}
}

func TestObserverEvents(t *testing.T) {
	var mu sync.Mutex
	events := map[int]PointEvent{}
	r := &Runner{
		Workers: 4,
		Observer: ObserverFunc(func(ev PointEvent) {
			// The runner serializes observer calls; the mutex only guards
			// against the test goroutine reading early.
			mu.Lock()
			events[ev.Index] = ev
			mu.Unlock()
		}),
	}
	specs := testSpecs()
	if _, err := r.Run(testBase(), specs); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != len(specs) {
		t.Fatalf("observed %d events, want %d", len(events), len(specs))
	}
	cached := 0
	for i, ev := range events {
		if ev.Total != len(specs) {
			t.Errorf("event %d Total = %d", i, ev.Total)
		}
		if ev.Err != nil {
			t.Errorf("event %d unexpected error: %v", i, ev.Err)
		}
		if ev.Wall < 0 || ev.Wall > time.Minute {
			t.Errorf("event %d implausible wall time %v", i, ev.Wall)
		}
		if ev.Cached {
			cached++
		}
	}
	if cached != 1 {
		t.Errorf("observed %d cached points, want 1", cached)
	}
}

func TestRunErrorIsDeterministic(t *testing.T) {
	bad := Spec{Scheme: core.Scheme{}, Bench: "lbm"} // no name/layout: invalid
	specs := []Spec{
		{Scheme: core.Baseline(), Bench: "lbm"},
		bad,
		{Scheme: core.Baseline(), Bench: "mcf"},
	}
	r := &Runner{Workers: 4}
	_, err := r.Run(testBase(), specs)
	if err == nil {
		t.Fatal("invalid spec must fail the run")
	}
	want := fmt.Sprintf("%v", err)
	for i := 0; i < 3; i++ {
		_, err2 := (&Runner{Workers: 4}).Run(testBase(), specs)
		if err2 == nil || fmt.Sprintf("%v", err2) != want {
			t.Fatalf("error not deterministic: %v vs %v", err2, err)
		}
	}
}

// checkpointSpec is a single sweep point whose total reference count (800
// refs × 2 cores = 1600) lets an interval of 801 fire exactly one mid-run
// checkpoint that is never overwritten.
const ckptInterval = 801

// TestCheckpointSweepUnperturbed: a checkpointing sweep produces the same
// results as a plain one, and deletes every checkpoint on completion.
func TestCheckpointSweepUnperturbed(t *testing.T) {
	base := testBase()
	specs := testSpecs()
	plain, err := (&Runner{Workers: 4}).Run(base, specs)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	r := &Runner{Workers: 4, CheckpointDir: dir, CheckpointEvery: ckptInterval}
	res, err := r.Run(base, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if !reflect.DeepEqual(res[i], plain[i]) {
			t.Errorf("point %d diverged under checkpointing", i)
		}
	}
	left, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("completed sweep left checkpoints behind: %v", left)
	}
}

// TestCheckpointSweepResume models a killed sweep: a mid-run checkpoint is
// left in the directory (written by a direct sim.Run, the same file a killed
// owner goroutine would leave), and a fresh Runner pointed at the directory
// must resume the point to the exact cold-run result, then clean up.
func TestCheckpointSweepResume(t *testing.T) {
	base := testBase()
	sp := Spec{Scheme: core.LazyC(6), Bench: "mcf"}
	cold, err := (&Runner{Workers: 1}).Run(base, []Spec{sp})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	r := &Runner{Workers: 1, CheckpointDir: dir, CheckpointEvery: ckptInterval}
	cfg := sp.Resolve(base)
	key, ok := Key(cfg, 0)
	if !ok {
		t.Fatal("spec unexpectedly uncacheable")
	}
	path := r.checkpointPath(key)
	cfg.CheckpointPath = path
	cfg.CheckpointEvery = ckptInterval
	if _, err := sim.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no mid-run checkpoint written: %v", err)
	}

	res, err := r.Run(base, []Spec{sp})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res[0], cold[0]) {
		t.Errorf("resumed point diverged from cold run")
	}
	if st := r.Stats(); st.SimRuns != 1 {
		t.Errorf("resumed sweep ran %d simulations, want 1", st.SimRuns)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("checkpoint not cleaned up after success: %v", err)
	}
}

// TestCheckpointCorruptFallsBackCold: an unreadable checkpoint must not fail
// the sweep — the point restarts cold and still matches.
func TestCheckpointCorruptFallsBackCold(t *testing.T) {
	base := testBase()
	sp := Spec{Scheme: core.Baseline(), Bench: "lbm"}
	cold, err := (&Runner{Workers: 1}).Run(base, []Spec{sp})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	r := &Runner{Workers: 1, CheckpointDir: dir, CheckpointEvery: ckptInterval}
	cfg := sp.Resolve(base)
	key, _ := Key(cfg, 0)
	path := r.checkpointPath(key)
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(base, []Spec{sp})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res[0], cold[0]) {
		t.Errorf("cold fallback diverged")
	}
	if st := r.Stats(); st.SimRuns != 2 {
		t.Errorf("fallback ran %d simulations, want 2 (failed resume + cold)", st.SimRuns)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt checkpoint not removed: %v", err)
	}
}

// mapStore is an in-memory MemoStore for tests: a map guarded by a mutex,
// with counters for Load/Store traffic.
type mapStore struct {
	mu     sync.Mutex
	m      map[string]sim.Result
	loads  int
	stores int
}

func newMapStore() *mapStore { return &mapStore{m: map[string]sim.Result{}} }

func (s *mapStore) Load(key string) (sim.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loads++
	res, ok := s.m[key]
	return res, ok
}

func (s *mapStore) Store(key string, res sim.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stores++
	s.m[key] = res
	return nil
}

// TestMemoStoreRoundTrip pins the durable-tier contract: a fresh Runner
// sharing the store of a completed sweep answers the identical sweep with
// zero sim.Run calls, and the results are identical values.
func TestMemoStoreRoundTrip(t *testing.T) {
	store := newMapStore()
	base := testBase()
	specs := testSpecs()

	first := &Runner{Workers: 4, Store: store}
	want, err := first.Run(base, specs)
	if err != nil {
		t.Fatal(err)
	}
	if st := first.Stats(); st.StoreHits != 0 || st.SimRuns != len(specs)-1 {
		t.Fatalf("cold run stats = %+v", st)
	}
	if store.stores != len(specs)-1 {
		t.Fatalf("cold run persisted %d entries, want %d", store.stores, len(specs)-1)
	}

	// A new Runner = a new process: the in-memory cache is empty, so every
	// unique point must be answered by the store.
	second := &Runner{Workers: 4, Store: store}
	var events []PointEvent
	second.Observer = ObserverFunc(func(ev PointEvent) { events = append(events, ev) })
	got, err := second.Run(base, specs)
	if err != nil {
		t.Fatal(err)
	}
	st := second.Stats()
	if st.SimRuns != 0 {
		t.Errorf("warm run simulated %d points, want 0", st.SimRuns)
	}
	if st.StoreHits != len(specs)-1 || st.CacheHits != 1 {
		t.Errorf("warm run StoreHits = %d, CacheHits = %d; want %d and 1",
			st.StoreHits, st.CacheHits, len(specs)-1)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("point %d diverged through the store:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	stored := 0
	for _, ev := range events {
		if ev.Err != nil {
			t.Fatalf("warm point errored: %v", ev.Err)
		}
		if ev.Stored {
			stored++
		}
	}
	if stored != len(specs)-1 {
		t.Errorf("%d events marked Stored, want %d", stored, len(specs)-1)
	}
}

// TestMemoStoreSkipsUncacheable: points without a canonical key must bypass
// the store entirely.
func TestMemoStoreSkipsUncacheable(t *testing.T) {
	store := newMapStore()
	r := &Runner{Workers: 1, Store: store}
	sc := core.Baseline()
	sc.HardErrorFn = func(pcm.LineAddr) int { return 0 } // opaque: unkeyable
	if _, err := r.Run(testBase(), []Spec{{Scheme: sc, Bench: "lbm"}}); err != nil {
		t.Fatal(err)
	}
	if store.loads != 0 || store.stores != 0 {
		t.Errorf("uncacheable point touched the store: %d loads, %d stores", store.loads, store.stores)
	}
}

// TestRunContextCanceled: a canceled context fails queued points fast with
// ctx.Err() and never runs their simulations.
func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Runner{Workers: 1}
	_, err := r.RunContext(ctx, testBase(), testSpecs(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := r.Stats(); st.SimRuns != 0 {
		t.Errorf("canceled run simulated %d points", st.SimRuns)
	}
}

// TestCanceledOwnerDoesNotPoisonCache: after a canceled RunContext, the
// same Runner must still simulate the points on a live context instead of
// serving the cancellation error from the memo cache.
func TestCanceledOwnerDoesNotPoisonCache(t *testing.T) {
	r := &Runner{Workers: 2}
	base := testBase()
	specs := testSpecs()[:2]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunContext(ctx, base, specs, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	res, err := r.RunContext(context.Background(), base, specs, nil)
	if err != nil {
		t.Fatalf("retry after cancel: %v", err)
	}
	if len(res) != len(specs) || res[0].Cycles == 0 {
		t.Fatalf("retry returned empty results: %+v", res)
	}
}

// TestRunContextPerCallObserver: the per-call observer wins over the Runner
// field, so concurrent jobs sharing one Runner get their own event streams.
func TestRunContextPerCallObserver(t *testing.T) {
	var viaField, viaCall int
	r := &Runner{Workers: 2, Observer: ObserverFunc(func(PointEvent) { viaField++ })}
	obs := ObserverFunc(func(PointEvent) { viaCall++ })
	specs := testSpecs()[:2]
	if _, err := r.RunContext(context.Background(), testBase(), specs, obs); err != nil {
		t.Fatal(err)
	}
	if viaCall != len(specs) || viaField != 0 {
		t.Errorf("observer calls: per-call %d (want %d), field %d (want 0)", viaCall, len(specs), viaField)
	}
	if _, err := r.Run(testBase(), specs); err != nil {
		t.Fatal(err)
	}
	if viaField != len(specs) {
		t.Errorf("Run fell back to field observer %d times, want %d", viaField, len(specs))
	}
}
