// Package runner is the declarative sweep executor behind the experiment
// harness. The paper's evaluation (§6) is a grid of scheme × benchmark ×
// knob points; instead of each figure hand-rolling a sequential loop of
// sim.Run calls, a figure declares its points as a list of Specs (usually
// expanded from a Grid), hands them to a Runner, and assembles the returned
// results into its table.
//
// The Runner executes points on a bounded pool of worker goroutines.
// Because every point's sim.Config — including its seed — is fully resolved
// from (Base, Spec) before dispatch and sim.Run is a pure function of its
// config, results are bit-identical to a sequential run regardless of worker
// count or completion order.
//
// A Runner also memoizes results by a canonical encoding of the resolved
// config (see Key): points shared between figures — e.g. the per-benchmark
// baseline re-run today by Fig4, Fig5, Fig11, Fig12 ... — simulate once per
// Runner, with concurrent duplicates coalesced onto a single execution.
package runner

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"sdpcm/internal/core"
	"sdpcm/internal/sim"
	"sdpcm/internal/topo"
	"sdpcm/internal/workload"
)

// Base holds the sweep-wide simulation parameters shared by every point of
// a grid: everything about the run that is not the design point itself.
// Zero fields fall back to the sim package defaults (Cores to 8).
type Base struct {
	RefsPerCore int
	Cores       int
	MemPages    int
	RegionPages int
	Seed        uint64
	// CollectMetrics / TraceEvents enable the observability layer on every
	// point: each sim.Result carries a Metrics snapshot (and event tail).
	// Both are part of the cache key, so metric-collecting and plain sweeps
	// memoize separately.
	CollectMetrics bool
	TraceEvents    int
	// HeatmapRegions enables the WD spatial heatmap on every point (per
	// bank × line-region accumulation in sim.Result.Heatmap). Part of the
	// cache key, like the other observability toggles.
	HeatmapRegions int
	// Shards selects the intra-run bank-sharded executor for every point
	// (see sim.Config.Shards; <=1 runs single-goroutine). Deliberately NOT
	// part of the cache key: the executor contract is a byte-identical
	// Result at every shard count, so points differing only in Shards are
	// the same point.
	Shards int
	// BatchWindow caps the sharded executor's adaptive batch window (see
	// sim.Config.BatchWindow; 0 = default). Like Shards it is NOT part of
	// the cache key: it changes wall-clock speed, never the Result.
	BatchWindow int
	// Topology, when non-default, runs every point on the multi-module
	// simulator (see sim.Config.Topology). Part of the cache key via its
	// canonical rendering; nil keeps old keys (and stored results) valid.
	Topology *topo.Spec
}

func (b Base) normalized() Base {
	if b.Cores <= 0 {
		b.Cores = 8
	}
	return b
}

// Overrides carries the per-point knobs beyond (scheme, benchmark, queue
// cap). Each field is declarative — a value, not a function — so the cache
// can key on it.
type Overrides struct {
	// HardErrorLifetime models device aging (Fig. 14): the resolved scheme
	// gets HardErrorFn = core.HardErrorModel(HardErrorLifetime). 0 = pristine.
	HardErrorLifetime float64
	// WearLevelPsi enables intra-row Start-Gap wear leveling (0 disables).
	WearLevelPsi int
}

// Spec names one simulation point of a sweep: the design point, the
// workload, the write-queue capacity and any per-point overrides. Tag is a
// free-form label carried through to observers and table assembly (figures
// typically set it to the point's column label or role).
type Spec struct {
	Scheme    core.Scheme
	Bench     string
	QueueCap  int
	Tag       string
	Overrides Overrides
}

// Resolve expands the spec into the full simulation config it names.
func (s Spec) Resolve(b Base) sim.Config {
	b = b.normalized()
	sc := s.Scheme
	if s.Overrides.HardErrorLifetime > 0 {
		sc.HardErrorFn = core.HardErrorModel(s.Overrides.HardErrorLifetime)
	}
	return sim.Config{
		Scheme:         sc,
		Mix:            workload.HomogeneousMix(s.Bench, b.Cores),
		RefsPerCore:    b.RefsPerCore,
		MemPages:       b.MemPages,
		RegionPages:    b.RegionPages,
		WriteQueueCap:  s.QueueCap,
		WearLevelPsi:   s.Overrides.WearLevelPsi,
		Seed:           b.Seed,
		CollectMetrics: b.CollectMetrics,
		TraceEvents:    b.TraceEvents,
		HeatmapRegions: b.HeatmapRegions,
		Shards:         b.Shards,
		BatchWindow:    b.BatchWindow,
		Topology:       b.Topology,
	}
}

// Grid declares a sweep as the cross product of its axes. Empty QueueCaps
// and Lifetimes collapse to {0} (the Table 2 default queue and a pristine
// DIMM), so the common scheme × benchmark grid needs only two axes.
type Grid struct {
	Schemes    []core.Scheme
	Benchmarks []string
	QueueCaps  []int
	Lifetimes  []float64
	// Tag is copied to every expanded Spec.
	Tag string
}

// Expand lists the grid's points benchmark-major (benchmark outer, then
// scheme, queue cap, lifetime), mirroring the paper's per-figure loops.
func (g Grid) Expand() []Spec {
	qs := g.QueueCaps
	if len(qs) == 0 {
		qs = []int{0}
	}
	ls := g.Lifetimes
	if len(ls) == 0 {
		ls = []float64{0}
	}
	specs := make([]Spec, 0, len(g.Benchmarks)*len(g.Schemes)*len(qs)*len(ls))
	for _, b := range g.Benchmarks {
		for _, s := range g.Schemes {
			for _, q := range qs {
				for _, l := range ls {
					specs = append(specs, Spec{
						Scheme:    s,
						Bench:     b,
						QueueCap:  q,
						Tag:       g.Tag,
						Overrides: Overrides{HardErrorLifetime: l},
					})
				}
			}
		}
	}
	return specs
}

// Stats is a snapshot of a Runner's counters.
type Stats struct {
	// Points is the number of specs executed through Run.
	Points int
	// SimRuns is the number of actual sim.Run invocations.
	SimRuns int
	// CacheHits counts points served from the in-memory memo cache,
	// including points coalesced onto a concurrently executing duplicate.
	CacheHits int
	// StoreHits counts points answered by the durable MemoStore instead of
	// sim.Run — cache hits that survived from an earlier process or job.
	StoreHits int
}

// Runner executes sweep points on a bounded worker pool, memoizing results
// by resolved config. The zero value is ready to use: GOMAXPROCS workers,
// cache enabled, no observer. A Runner must not be copied after first use;
// Run may be called concurrently and sequentially-reused — the cache spans
// all calls, which is how sdpcm-bench -exp all deduplicates points shared
// between figures.
type Runner struct {
	// Workers bounds concurrent sim.Run executions (<=0: GOMAXPROCS).
	Workers int
	// NoCache disables memoization (every point simulates).
	NoCache bool
	// Observer, when non-nil, receives one event per completed point.
	// Calls are serialized by the Runner.
	Observer Observer
	// CheckpointDir, together with CheckpointEvery, makes long sweeps
	// resumable: every cacheable point periodically publishes a
	// sim-state checkpoint named by the sha256 of its cache key. A killed
	// sweep restarted with the same directory resumes each in-flight point
	// from its last checkpoint (the resume contract guarantees an
	// identical Result); completed points delete their file. Unreadable or
	// stale checkpoints fall back to a cold start. Uncacheable points
	// (unkeyable configs) never checkpoint.
	CheckpointDir string
	// CheckpointEvery is the per-point checkpoint interval in processed
	// references (see sim.Config.CheckpointEvery).
	CheckpointEvery int
	// Store, when non-nil, is the durable tier under the in-memory memo
	// cache: owned points consult it before simulating and persist their
	// result after a cold run, so the cache spans processes and users. See
	// MemoStore for the contract.
	Store MemoStore

	mu    sync.Mutex
	cache map[string]*entry
	stats Stats

	obsMu sync.Mutex

	semOnce sync.Once
	sem     chan struct{}
}

// entry is one memoized point; done closes when res/err are final.
type entry struct {
	done chan struct{}
	res  sim.Result
	err  error
	// evicted marks an entry removed from the cache because its owner was
	// canceled before producing a result: waiters from still-live contexts
	// re-claim the key instead of inheriting the cancellation error.
	evicted bool
}

// Stats returns a snapshot of the runner's counters.
func (r *Runner) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// claim returns the cache entry for key and whether the caller owns it
// (owner must run the simulation and close entry.done).
func (r *Runner) claim(key string) (*entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.cache[key]; ok {
		return e, false
	}
	if r.cache == nil {
		r.cache = make(map[string]*entry)
	}
	e := &entry{done: make(chan struct{})}
	r.cache[key] = e
	return e, true
}

// evict removes a canceled owner's entry so the key can be claimed again;
// the evicted flag is published to waiters by the subsequent close of
// entry.done.
func (r *Runner) evict(key string, e *entry) {
	r.mu.Lock()
	if r.cache[key] == e {
		delete(r.cache, key)
	}
	e.evicted = true
	r.mu.Unlock()
}

func (r *Runner) countHit(stored bool) {
	r.mu.Lock()
	if stored {
		r.stats.StoreHits++
	} else {
		r.stats.CacheHits++
	}
	r.mu.Unlock()
}

// exec runs one simulation under the worker-pool semaphore. Cancellation is
// cooperative at point granularity: a canceled context aborts the wait for
// a worker slot, but a sim.Run already in flight always completes.
func (r *Runner) exec(ctx context.Context, cfg sim.Config) (sim.Result, error) {
	r.semOnce.Do(func() {
		w := r.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		r.sem = make(chan struct{}, w)
	})
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		return sim.Result{}, ctx.Err()
	}
	defer func() { <-r.sem }()
	// The select above is a race when both cases are ready; re-check so a
	// canceled context never starts a fresh simulation.
	if err := ctx.Err(); err != nil {
		return sim.Result{}, err
	}
	r.mu.Lock()
	r.stats.SimRuns++
	r.mu.Unlock()
	return sim.Run(cfg)
}

// checkpointPath names a point's checkpoint file inside CheckpointDir: the
// cache key is canonical for the resolved config, so its hash is stable
// across processes — which is what lets a restarted sweep find the file.
func (r *Runner) checkpointPath(key string) string {
	return filepath.Join(r.CheckpointDir, fmt.Sprintf("%x.ckpt", sha256.Sum256([]byte(key))))
}

// execPoint runs one owned cacheable point, wiring the checkpoint life
// cycle around exec: resume from an existing file, fall back to a cold
// start when the file is unusable, delete it once the point completes.
func (r *Runner) execPoint(ctx context.Context, cfg sim.Config, key string) (sim.Result, error) {
	if r.CheckpointDir == "" || r.CheckpointEvery <= 0 {
		return r.exec(ctx, cfg)
	}
	if err := os.MkdirAll(r.CheckpointDir, 0o755); err != nil {
		// Checkpointing is best-effort; an unusable directory must not
		// fail the sweep.
		return r.exec(ctx, cfg)
	}
	path := r.checkpointPath(key)
	cfg.CheckpointPath = path
	cfg.CheckpointEvery = r.CheckpointEvery
	if _, err := os.Stat(path); err == nil {
		cfg.ResumeFrom = path
	}
	res, err := r.exec(ctx, cfg)
	switch {
	case errors.Is(err, sim.ErrResume):
		// Stale, corrupt or mismatched checkpoint: discard it and run cold.
		os.Remove(path)
		cfg.ResumeFrom = ""
		res, err = r.exec(ctx, cfg)
	case errors.Is(err, sim.ErrCheckpointUnsupported):
		cfg.CheckpointPath, cfg.CheckpointEvery, cfg.ResumeFrom = "", 0, ""
		res, err = r.exec(ctx, cfg)
	}
	if err == nil {
		os.Remove(path)
	}
	return res, err
}

// execOwned runs one owned cacheable point: the durable store is consulted
// first, and a successful cold simulation is persisted back. The returned
// bool reports a store hit.
func (r *Runner) execOwned(ctx context.Context, cfg sim.Config, key string) (sim.Result, bool, error) {
	if r.Store != nil {
		if res, ok := r.Store.Load(key); ok {
			r.countHit(true)
			return res, true, nil
		}
	}
	res, err := r.execPoint(ctx, cfg, key)
	if err == nil && r.Store != nil {
		// Best-effort: a full disk or unwritable store must not fail a
		// sweep that already holds its result.
		r.Store.Store(key, res) //nolint:errcheck
	}
	return res, false, err
}

// point executes one spec: uncacheable specs simulate directly; cacheable
// specs go through the two-tier cache with duplicate coalescing. Waiters
// whose owner was canceled re-claim the key rather than inheriting the
// owner's cancellation error.
func (r *Runner) point(ctx context.Context, cfg sim.Config, sp Spec) (res sim.Result, cached, stored bool, err error) {
	key, cacheable := Key(cfg, sp.Overrides.HardErrorLifetime)
	if !cacheable || r.NoCache {
		res, err = r.exec(ctx, cfg)
		return res, false, false, err
	}
	for {
		e, owner := r.claim(key)
		if owner {
			res, stored, err = r.execOwned(ctx, cfg, key)
			if err != nil && ctx.Err() != nil {
				// A canceled owner must not poison the shared cache: evict
				// before closing done so the next claimant simulates.
				r.evict(key, e)
			}
			e.res, e.err = res, err
			close(e.done)
			return res, false, stored, err
		}
		select {
		case <-e.done:
			if e.evicted && ctx.Err() == nil {
				continue
			}
			r.countHit(false)
			return e.res, true, false, e.err
		case <-ctx.Done():
			return sim.Result{}, false, false, ctx.Err()
		}
	}
}

// Run executes every spec and returns the results in spec order. On
// failure it returns the error of the lowest-index failing spec, so error
// reporting is as deterministic as the results themselves. It is
// RunContext with a background context and the Runner's own Observer.
func (r *Runner) Run(base Base, specs []Spec) ([]sim.Result, error) {
	return r.RunContext(context.Background(), base, specs, nil)
}

// RunContext is Run with cooperative cancellation and a per-call observer —
// the shape a multi-tenant sweep service needs, where one shared Runner
// (one memo cache, one worker pool, one durable store) executes many
// concurrent jobs that each want their own progress events and cancel
// switch.
//
// Cancellation is at sweep-point granularity: once ctx is done, points not
// yet simulating return ctx.Err() immediately (including points waiting for
// a worker slot or for a duplicate), while a sim.Run already in flight
// completes — and, being cacheable, still lands in the cache for the next
// submission. A canceled point never poisons the shared memo cache: its
// entry is evicted so concurrent duplicates from live contexts re-claim and
// simulate.
//
// obs receives this call's per-point completion events; nil falls back to
// the Runner's Observer field. Calls to either are serialized Runner-wide.
//
// Only the actual simulations occupy worker slots; points waiting on a
// concurrently executing duplicate (or served from the cache) do not, so a
// single worker can never deadlock against its own duplicates.
func (r *Runner) RunContext(ctx context.Context, base Base, specs []Spec, obs Observer) ([]sim.Result, error) {
	if obs == nil {
		obs = r.Observer
	}
	results := make([]sim.Result, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, sp Spec) {
			defer wg.Done()
			start := time.Now()
			cfg := sp.Resolve(base)
			var cached, stored bool
			results[i], cached, stored, errs[i] = r.point(ctx, cfg, sp)
			ev := PointEvent{
				Index:  i,
				Total:  len(specs),
				Spec:   sp,
				Wall:   time.Since(start),
				Cached: cached,
				Stored: stored,
				Err:    errs[i],
			}
			if errs[i] == nil {
				res := results[i]
				ev.Result = &res
			}
			r.observe(obs, ev)
		}(i, sp)
	}
	wg.Wait()
	r.mu.Lock()
	r.stats.Points += len(specs)
	r.mu.Unlock()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func (r *Runner) observe(obs Observer, ev PointEvent) {
	if obs == nil {
		return
	}
	r.obsMu.Lock()
	defer r.obsMu.Unlock()
	obs.PointDone(ev)
}
