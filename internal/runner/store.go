package runner

import "sdpcm/internal/sim"

// MemoStore is a durable second tier under the Runner's in-memory memo
// cache. The Runner consults it exactly where it would otherwise simulate:
// when a point's canonical config key (see Key) misses the in-memory map,
// the owning goroutine asks the store before calling sim.Run, and persists
// the result after a successful cold execution.
//
// Because the key is a canonical encoding of the resolved config, a store
// shared between processes — or between the jobs of a long-running sweep
// service — answers repeated submissions without simulating at all: the
// cache outlives the process that populated it.
//
// Implementations must be safe for concurrent use; the Runner calls Load
// and Store from many worker goroutines at once. A Load must only report a
// hit for a result that was stored completely and intact — a partial or
// corrupt entry is a miss, never an error (the Runner's fallback is simply
// to simulate). Store failures are likewise non-fatal: the Runner treats
// the durable tier as best-effort and ignores the returned error, which
// exists so implementations can surface diagnostics to their own callers.
type MemoStore interface {
	// Load returns the result stored under a canonical config key, and
	// whether the lookup hit. A miss (false) triggers a simulation.
	Load(key string) (sim.Result, bool)
	// Store persists a freshly simulated result under its key. The result
	// must round-trip: a later Load must return a value that renders
	// byte-identically in every table and export.
	Store(key string, res sim.Result) error
}
