package runner

import (
	"fmt"
	"strings"

	"sdpcm/internal/sim"
)

// Key returns the canonical encoding of a resolved simulation config, and
// whether the config is cacheable at all. Two configs share a key exactly
// when sim.Run is guaranteed to return the same Result for both: every
// semantic field is encoded, strings are quoted so labels cannot collide
// with the field grammar, and list fields carry their length.
//
// Configs that cannot be named declaratively are not cacheable: trace-replay
// streams (the stream is stateful and unnamed) and hard-error functions not
// declared through Overrides.HardErrorLifetime (an opaque func pointer says
// nothing about its behaviour).
//
// Config.Shards is intentionally NOT encoded: the sharded executor's
// contract (pinned by TestShardDeterminismMatrix and the equivalence
// fixture) is a byte-identical Result at every shard count, so two configs
// differing only in Shards name the same simulation.
func Key(cfg sim.Config, hardErrorLifetime float64) (string, bool) {
	if len(cfg.Streams) > 0 {
		return "", false
	}
	if cfg.Scheme.HardErrorFn != nil && hardErrorLifetime <= 0 {
		return "", false
	}
	if cfg.Scheme.Policy != nil && cfg.Scheme.PolicyKey == "" {
		// A Policy hook without a declared PolicyKey is as opaque as an
		// undeclared HardErrorFn: no cache identity, no memoization.
		return "", false
	}
	if cfg.OnSnapshot != nil {
		// A snapshot callback is a live side effect: serving a memoized
		// result would silently skip every mid-run publication.
		return "", false
	}
	var b strings.Builder
	s := cfg.Scheme
	fmt.Fprintf(&b, "scheme=%q|layout=%q:%d:%d|lazy=%t|preread=%t|wc=%t|ecp=%d|tag=%d:%d|",
		s.Name, s.Layout.Name, s.Layout.WordLinePitchF, s.Layout.BitLinePitchF,
		s.LazyCorrection, s.PreRead, s.WriteCancel, s.ECPEntries, s.Tag.N, s.Tag.M)
	fmt.Fprintf(&b, "policykey=%q|", s.PolicyKey)
	fmt.Fprintf(&b, "noverify=%t|nocorrect=%t|enc=%q|hardlife=%g|",
		s.NoVerifyCharge, s.NoCorrectCharge, s.Encoding, hardErrorLifetime)
	fmt.Fprintf(&b, "mix=%q/%d", cfg.Mix.Name, len(cfg.Mix.Cores))
	for _, c := range cfg.Mix.Cores {
		fmt.Fprintf(&b, ",%q", c)
	}
	fmt.Fprintf(&b, "|refs=%d|mem=%d|region=%d|wq=%d|seed=%d|psi=%d|mutate=%g|integrity=%t|",
		cfg.RefsPerCore, cfg.MemPages, cfg.RegionPages, cfg.WriteQueueCap,
		cfg.Seed, cfg.WearLevelPsi, cfg.MutateChunkProb, cfg.CheckIntegrity)
	fmt.Fprintf(&b, "metrics=%t|trace=%d|heat=%d|snap=%d|",
		cfg.CollectMetrics, cfg.TraceEvents, cfg.HeatmapRegions, cfg.SnapshotInterval)
	fmt.Fprintf(&b, "coretags=%d", len(cfg.CoreTags))
	for _, t := range cfg.CoreTags {
		fmt.Fprintf(&b, ",%d:%d", t.N, t.M)
	}
	// The topology segment is appended only for non-default specs, so every
	// key (and durable store entry) minted before the topology layer existed
	// stays valid.
	if !cfg.Topology.IsDefault() {
		fmt.Fprintf(&b, "|topo=%q", cfg.Topology.Canon())
	}
	return b.String(), true
}
