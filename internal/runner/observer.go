package runner

import (
	"fmt"
	"io"
	"time"

	"sdpcm/internal/sim"
)

// PointEvent describes one completed sweep point.
type PointEvent struct {
	// Index/Total locate the point within its Run call's spec list.
	Index, Total int
	Spec         Spec
	// Wall is the point's wall time, including any wait for a concurrently
	// executing duplicate.
	Wall time.Duration
	// Cached marks a point served from the in-memory memo cache (or
	// coalesced onto a concurrently executing duplicate); Stored marks one
	// answered by the durable MemoStore without a sim.Run call.
	Cached bool
	Stored bool
	Err    error
	// Result is the point's simulation outcome (nil on error). Cached
	// points carry the memoized result, so per-point metrics snapshots flow
	// through the cache to every observer.
	Result *sim.Result
}

// Observer receives per-point completion events from a Runner. The Runner
// serializes calls, so implementations need no locking of their own.
type Observer interface {
	PointDone(PointEvent)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(PointEvent)

// PointDone implements Observer.
func (f ObserverFunc) PointDone(ev PointEvent) { f(ev) }

// Progress returns an observer streaming one line per completed point to w
// — the sdpcm-bench -progress view.
func Progress(w io.Writer) Observer {
	return ObserverFunc(func(ev PointEvent) {
		status := "run"
		switch {
		case ev.Err != nil:
			status = "err"
		case ev.Cached:
			status = "hit"
		case ev.Stored:
			status = "dsk"
		}
		knobs := ""
		if ev.Spec.QueueCap != 0 {
			knobs += fmt.Sprintf(" wq=%d", ev.Spec.QueueCap)
		}
		if l := ev.Spec.Overrides.HardErrorLifetime; l > 0 {
			knobs += fmt.Sprintf(" life=%g", l)
		}
		fmt.Fprintf(w, "[%3d/%3d] %-3s %-22s %-10s%s %v\n",
			ev.Index+1, ev.Total, status, ev.Spec.Scheme.Name, ev.Spec.Bench,
			knobs, ev.Wall.Round(time.Millisecond))
	})
}

// Multi fans each event out to every observer in order.
func Multi(obs ...Observer) Observer {
	return ObserverFunc(func(ev PointEvent) {
		for _, o := range obs {
			if o != nil {
				o.PointDone(ev)
			}
		}
	})
}
