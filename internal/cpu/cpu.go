// Package cpu models the processor front end used for trace capture: an
// in-order, single-issue core issuing CPU-level memory accesses through the
// Table 2 cache hierarchy. What filters through to main memory — annotated
// with the instruction distance between misses — is exactly the kind of
// trace the paper captured with PIN (§5.2), and what the simulator replays.
package cpu

import (
	"fmt"

	"sdpcm/internal/cache"
	"sdpcm/internal/trace"
	"sdpcm/internal/workload"
)

// CaptureConfig parameterises one capture run.
type CaptureConfig struct {
	// Spec is the CPU-level behaviour model: its RPKI/WPKI are interpreted
	// as *CPU access* rates (accesses per thousand instructions), of which
	// the hierarchy filters out the hits.
	Spec workload.Spec
	// MemoryRefs is the number of main-memory references to capture (the
	// paper captured 10M per application).
	MemoryRefs int
	// WarmupRefs is the number of leading memory references discarded while
	// the caches warm up (the paper skips initialisation and warms caches).
	WarmupRefs int
	// Seed drives the access stream.
	Seed uint64
	// Hierarchy overrides the cache hierarchy (nil selects the Table 2
	// configuration). Useful for tests and scaled-down captures.
	Hierarchy *cache.Hierarchy
}

// CaptureResult is a captured trace plus its filtering statistics.
type CaptureResult struct {
	Records []trace.Record
	// CPUAccesses and Instructions are the totals consumed upstream.
	CPUAccesses  uint64
	Instructions uint64
	// L1, L2, L3 expose the hierarchy's hit statistics.
	L1, L2, L3 cache.Stats
}

// Capture runs the core model until MemoryRefs main-memory references have
// been recorded.
func Capture(cfg CaptureConfig) (CaptureResult, error) {
	if cfg.MemoryRefs <= 0 {
		return CaptureResult{}, fmt.Errorf("cpu: MemoryRefs must be positive")
	}
	gen, err := workload.NewGenerator(cfg.Spec, cfg.Seed)
	if err != nil {
		return CaptureResult{}, err
	}
	h := cfg.Hierarchy
	if h == nil {
		h, err = cache.NewTable2Hierarchy()
		if err != nil {
			return CaptureResult{}, err
		}
	}
	res := CaptureResult{Records: make([]trace.Record, 0, cfg.MemoryRefs)}
	var sinceLast uint64 // instructions since the last captured reference
	warmupLeft := cfg.WarmupRefs

	emit := func(line uint64, kind trace.Kind) {
		if warmupLeft > 0 {
			warmupLeft--
			sinceLast = 0
			return
		}
		gap := sinceLast
		if gap > uint64(^uint32(0)) {
			gap = uint64(^uint32(0))
		}
		res.Records = append(res.Records, trace.Record{Kind: kind, Line: line, Gap: uint32(gap)})
		sinceLast = 0
	}

	for len(res.Records) < cfg.MemoryRefs {
		rec, _ := gen.Next()
		res.CPUAccesses++
		res.Instructions += uint64(rec.Gap) + 1
		sinceLast += uint64(rec.Gap) + 1
		out := h.Access(rec.Line, rec.Kind == trace.Write)
		// Dirty evictions reach memory as writes.
		for _, wb := range out.MemWritebacks {
			emit(wb, trace.Write)
			if len(res.Records) >= cfg.MemoryRefs {
				break
			}
		}
		if out.MemReads > 0 && len(res.Records) < cfg.MemoryRefs {
			emit(rec.Line, trace.Read)
		}
	}
	res.L1, res.L2, res.L3 = h.L1.Stats, h.L2.Stats, h.L3.Stats
	return res, nil
}
