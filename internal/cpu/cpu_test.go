package cpu

import (
	"testing"

	"sdpcm/internal/cache"
	"sdpcm/internal/trace"
	"sdpcm/internal/workload"
)

// smallHierarchy returns a scaled-down hierarchy so write-backs appear
// within short captures.
func smallHierarchy(t *testing.T) *cache.Hierarchy {
	t.Helper()
	l1, err := cache.New("L1", 4<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := cache.New("L2", 32<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	l3, err := cache.New("L3", 256<<10, 8)
	if err != nil {
		t.Fatal(err)
	}
	return &cache.Hierarchy{L1: l1, L2: l2, L3: l3, L1Hit: 1, L2Hit: 12, L3Hit: 200}
}

func captureSpec() workload.Spec {
	// A CPU-level behaviour model: high access rate, modest footprint so
	// the hierarchy filters meaningfully but still misses.
	return workload.Spec{
		Name: "capture-test", RPKI: 120, WPKI: 60, FootprintPages: 60000,
		SeqProb: 0.3, HotProb: 0.5, HotFrac: 0.02, WriteChunkChange: 0.1,
	}
}

func TestCaptureProducesRequestedRefs(t *testing.T) {
	res, err := Capture(CaptureConfig{Spec: captureSpec(), MemoryRefs: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2000 {
		t.Fatalf("captured %d records, want 2000", len(res.Records))
	}
	if res.CPUAccesses == 0 || res.Instructions == 0 {
		t.Fatal("no upstream activity recorded")
	}
}

func TestCaptureFilters(t *testing.T) {
	res, err := Capture(CaptureConfig{Spec: captureSpec(), MemoryRefs: 3000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The hierarchy must absorb a large share of CPU accesses: memory refs
	// well below CPU accesses, and L1 must have real hits.
	if uint64(len(res.Records)) >= res.CPUAccesses {
		t.Fatalf("no filtering: %d refs from %d accesses", len(res.Records), res.CPUAccesses)
	}
	if res.L1.Hits == 0 {
		t.Fatal("L1 never hit")
	}
	// Captured memory intensity (RPKI+WPKI of the trace) must be below the
	// CPU access intensity.
	st := trace.Summarize(res.Records)
	cpuPKI := captureSpec().RPKI + captureSpec().WPKI
	if st.RPKI()+st.WPKI() >= cpuPKI {
		t.Fatalf("trace intensity %.1f not filtered below CPU intensity %.1f",
			st.RPKI()+st.WPKI(), cpuPKI)
	}
}

func TestCaptureContainsWritebacks(t *testing.T) {
	res, err := Capture(CaptureConfig{
		Spec: captureSpec(), MemoryRefs: 5000, Seed: 3,
		Hierarchy: smallHierarchy(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Summarize(res.Records)
	if st.Writes == 0 {
		t.Fatal("capture produced no write-backs")
	}
	if st.Reads == 0 {
		t.Fatal("capture produced no demand reads")
	}
}

func TestCaptureWarmup(t *testing.T) {
	a, err := Capture(CaptureConfig{Spec: captureSpec(), MemoryRefs: 500, WarmupRefs: 500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Capture(CaptureConfig{Spec: captureSpec(), MemoryRefs: 500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Warmup must change what gets captured (the cold-miss burst is gone).
	same := 0
	for i := range a.Records {
		if a.Records[i] == b.Records[i] {
			same++
		}
	}
	if same == len(a.Records) {
		t.Fatal("warmup had no effect on the captured stream")
	}
}

func TestCaptureDeterminism(t *testing.T) {
	run := func() []trace.Record {
		res, err := Capture(CaptureConfig{Spec: captureSpec(), MemoryRefs: 1000, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res.Records
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("capture not deterministic at record %d", i)
		}
	}
}

func TestCaptureValidation(t *testing.T) {
	if _, err := Capture(CaptureConfig{Spec: captureSpec(), MemoryRefs: 0}); err == nil {
		t.Fatal("zero MemoryRefs must be rejected")
	}
	bad := captureSpec()
	bad.FootprintPages = 0
	if _, err := Capture(CaptureConfig{Spec: bad, MemoryRefs: 10}); err == nil {
		t.Fatal("invalid spec must be rejected")
	}
}
