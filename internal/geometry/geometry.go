// Package geometry models PCM cell-array layout and the capacity / chip-area
// arithmetic of SD-PCM §6.1 and Figure 1.
//
// All linear dimensions are expressed in units of the feature size F (20 nm
// for every experiment in the paper). A cell layout is characterised by its
// pitch along the word-line and along the bit-line; the minimal diode-switch
// cell is 2F x 2F = 4F². Write disturbance is suppressed physically by
// enlarging a pitch (thermal band), at the price of array density:
//
//	super dense (SD-PCM): 2F x 2F = 4F²   — WD along both axes
//	DIN-enhanced:         2F x 4F = 8F²   — WD along word-lines only
//	prototype chip [8]:   3F x 4F = 12F²  — WD-free
package geometry

import "fmt"

// FeatureSizeNM is the technology node used throughout the paper.
const FeatureSizeNM = 20

// CellArrayFraction is the fraction of total chip area occupied by cell
// arrays in the 20nm prototype chip [8]; the rest is periphery.
const CellArrayFraction = 0.466

// Layout describes a PCM cell array layout by its cell pitch, in feature
// sizes, along the word-line (horizontal) and bit-line (vertical) directions.
type Layout struct {
	Name string
	// WordLinePitchF is the centre-to-centre distance between two cells on
	// the same word-line, in units of F.
	WordLinePitchF int
	// BitLinePitchF is the centre-to-centre distance between two cells on
	// the same bit-line, in units of F.
	BitLinePitchF int
}

// Standard layouts discussed in the paper (Figure 1).
var (
	// SuperDense is the ideal 4F² diode-switch layout targeted by SD-PCM.
	SuperDense = Layout{Name: "super-dense", WordLinePitchF: 2, BitLinePitchF: 2}
	// DINEnhanced shrinks word-line spacing only (8F²), per [10].
	DINEnhanced = Layout{Name: "din-enhanced", WordLinePitchF: 2, BitLinePitchF: 4}
	// Prototype is the WD-free low density prototype chip layout (12F²) [8].
	Prototype = Layout{Name: "prototype", WordLinePitchF: 3, BitLinePitchF: 4}
)

// CellAreaF2 returns the area of one cell in units of F².
func (l Layout) CellAreaF2() int {
	return l.WordLinePitchF * l.BitLinePitchF
}

// InterCellSpaceNM returns the extra inter-cell space beyond the minimal 2F
// pitch, in nanometres, along the word-line and bit-line directions.
func (l Layout) InterCellSpaceNM() (wordLine, bitLine int) {
	return (l.WordLinePitchF - 2) * FeatureSizeNM, (l.BitLinePitchF - 2) * FeatureSizeNM
}

// DensityRelativeTo returns how many cells of layout l fit in the area of
// one cell of layout other (capacity ratio for equal array area).
func (l Layout) DensityRelativeTo(other Layout) float64 {
	return float64(other.CellAreaF2()) / float64(l.CellAreaF2())
}

// String implements fmt.Stringer.
func (l Layout) String() string {
	return fmt.Sprintf("%s (%dF²/cell)", l.Name, l.CellAreaF2())
}

// Valid reports whether the layout has physically meaningful pitches.
func (l Layout) Valid() bool {
	return l.WordLinePitchF >= 2 && l.BitLinePitchF >= 2
}

// DIMMConfig describes the chip composition of one PCM rank as in Figure 6:
// eight data chips plus one ECP chip on a 72-bit bus.
type DIMMConfig struct {
	DataChips int // number of data chips per rank (8 in the paper)
	ECPChips  int // number of ECP chips per rank (1 in the paper)
}

// PaperDIMM is the x72 organisation used throughout the evaluation.
var PaperDIMM = DIMMConfig{DataChips: 8, ECPChips: 1}

// CapacityComparison captures the §6.1 equal-cell-array-area comparison
// between SD-PCM and the DIN-enhanced design.
type CapacityComparison struct {
	// SDPCMCapacityGB and DINCapacityGB are the usable data capacities when
	// both designs are granted the same total cell-array silicon area.
	SDPCMCapacityGB float64
	DINCapacityGB   float64
	// ImprovementFraction is (SDPCM-DIN)/DIN, the headline 80%.
	ImprovementFraction float64
}

// CompareCapacity reproduces the §6.1 analysis for a memory of
// sdpcmCapacityGB (4 GB in the paper) built as cfg.
//
// SD-PCM data chips use the super dense (4F²) layout; its single ECP chip is
// low density (8F²) and therefore needs twice the array area of a data chip
// to cover every data row. DIN uses 8F² for data and ECP alike. Holding the
// *total* cell-array area of the two designs equal, DIN's capacity follows.
func CompareCapacity(sdpcmCapacityGB float64, cfg DIMMConfig) CapacityComparison {
	d := float64(cfg.DataChips)
	e := float64(cfg.ECPChips)
	// Let A be the array area of one super dense data chip holding
	// sdpcmCapacityGB/d. The low density ECP chip covering the same row
	// count needs 2A per chip. Total SD-PCM array area:
	total := d + 2*e // in units of A
	// DIN splits the same total area across (d data + e ECP) chips of equal
	// per-chip area a = total/(d+e); each data chip is 8F² so holds half the
	// bits per area of a super dense chip.
	perChipArea := total / (d + e)
	perDataChipCapacity := perChipArea / 2 * (sdpcmCapacityGB / d)
	din := d * perDataChipCapacity
	return CapacityComparison{
		SDPCMCapacityGB:     sdpcmCapacityGB,
		DINCapacityGB:       din,
		ImprovementFraction: (sdpcmCapacityGB - din) / din,
	}
}

// ChipSizeReductionSameChips reproduces the first §6.1 chip-count argument:
// building the same capacity from identical-size chips, DIN needs twice the
// data chips (8F² vs 4F²) and proportionally more ECP chips. The return value
// is the fractional reduction in total chip count (a proxy for board area).
func ChipSizeReductionSameChips(cfg DIMMConfig) float64 {
	dinChips := float64(2*cfg.DataChips + 2*cfg.ECPChips)
	sdChips := float64(cfg.DataChips + 2*cfg.ECPChips)
	return (dinChips - sdChips) / dinChips
}

// ChipSizeReductionBigChips reproduces the second §6.1 argument: DIN built
// from "big" low density chips (8 data + 1 ECP) versus SD-PCM built from 8
// "small" super dense data chips plus 1 big ECP chip. A small chip shrinks
// only its cell array (half the area), so its total size is
// periphery + array/2 = (1-CellArrayFraction) + CellArrayFraction/2 of a big
// chip. The paper's 20% figure is (0.77*8+1)/(8+1) ≈ 0.80.
func ChipSizeReductionBigChips(cfg DIMMConfig) float64 {
	small := (1 - CellArrayFraction) + CellArrayFraction/2
	d := float64(cfg.DataChips)
	e := float64(cfg.ECPChips)
	return 1 - (small*d+e)/(d+e)
}

// ArrayDensityImprovementToChipReduction converts a cell-array density
// improvement into whole-chip size reduction given the array area fraction,
// e.g. DIN's 33% array improvement is a 15.4% chip reduction (§3.1).
func ArrayDensityImprovementToChipReduction(arrayImprovement float64) float64 {
	// New array area = old/(1+improvement); chip = periphery + array.
	newChip := (1 - CellArrayFraction) + CellArrayFraction/(1+arrayImprovement)
	return 1 - newChip
}
