package geometry

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestCellAreas(t *testing.T) {
	cases := []struct {
		l    Layout
		want int
	}{
		{SuperDense, 4},
		{DINEnhanced, 8},
		{Prototype, 12},
	}
	for _, c := range cases {
		if got := c.l.CellAreaF2(); got != c.want {
			t.Errorf("%s: area %dF², want %dF²", c.l.Name, got, c.want)
		}
	}
}

func TestInterCellSpace(t *testing.T) {
	// Prototype chip adds 20nm along word-lines and 40nm along bit-lines
	// at F=20nm (§1, §3.1).
	w, b := Prototype.InterCellSpaceNM()
	if w != 20 || b != 40 {
		t.Fatalf("prototype spacing = (%d,%d)nm, want (20,40)", w, b)
	}
	w, b = SuperDense.InterCellSpaceNM()
	if w != 0 || b != 0 {
		t.Fatalf("super dense spacing = (%d,%d)nm, want (0,0)", w, b)
	}
	w, b = DINEnhanced.InterCellSpaceNM()
	if w != 0 || b != 40 {
		t.Fatalf("DIN spacing = (%d,%d)nm, want (0,40)", w, b)
	}
}

func TestDensityRatios(t *testing.T) {
	// Prototype achieves only 33% of ideal capacity (§1).
	if got := Prototype.DensityRelativeTo(SuperDense); !approx(got, 1.0/3.0, 1e-9) {
		t.Errorf("prototype vs ideal density = %v, want 1/3", got)
	}
	// DIN doubles density over... DIN is half of ideal (§3.1: 50% loss).
	if got := DINEnhanced.DensityRelativeTo(SuperDense); !approx(got, 0.5, 1e-9) {
		t.Errorf("DIN vs ideal density = %v, want 0.5", got)
	}
	// DIN is a 33% capacity increase over the prototype.
	rel := DINEnhanced.DensityRelativeTo(Prototype)
	if !approx(rel, 1.5, 1e-9) {
		t.Errorf("DIN vs prototype density = %v, want 1.5", rel)
	}
}

func TestDensityRelativeToSelf(t *testing.T) {
	if err := quick.Check(func(w, b uint8) bool {
		l := Layout{WordLinePitchF: int(w%6) + 2, BitLinePitchF: int(b%6) + 2}
		return approx(l.DensityRelativeTo(l), 1, 1e-12)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDensityReciprocal(t *testing.T) {
	if err := quick.Check(func(w1, b1, w2, b2 uint8) bool {
		a := Layout{WordLinePitchF: int(w1%6) + 2, BitLinePitchF: int(b1%6) + 2}
		c := Layout{WordLinePitchF: int(w2%6) + 2, BitLinePitchF: int(b2%6) + 2}
		return approx(a.DensityRelativeTo(c)*c.DensityRelativeTo(a), 1, 1e-12)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareCapacityHeadline(t *testing.T) {
	// §6.1: 4GB SD-PCM vs 2.22GB DIN for equal total cell array area; 80%.
	c := CompareCapacity(4, PaperDIMM)
	if !approx(c.DINCapacityGB, 2.222, 0.01) {
		t.Errorf("DIN capacity = %vGB, want ~2.22GB", c.DINCapacityGB)
	}
	if !approx(c.ImprovementFraction, 0.80, 0.01) {
		t.Errorf("capacity improvement = %v, want ~0.80", c.ImprovementFraction)
	}
}

func TestCompareCapacityScales(t *testing.T) {
	// The improvement fraction must be independent of the absolute capacity.
	a := CompareCapacity(4, PaperDIMM)
	b := CompareCapacity(16, PaperDIMM)
	if !approx(a.ImprovementFraction, b.ImprovementFraction, 1e-9) {
		t.Errorf("improvement depends on capacity: %v vs %v",
			a.ImprovementFraction, b.ImprovementFraction)
	}
}

func TestChipSizeReductionBigChips(t *testing.T) {
	// §6.1: (0.77*8+1)/(8+1) => ~20% reduction.
	got := ChipSizeReductionBigChips(PaperDIMM)
	if !approx(got, 0.20, 0.015) {
		t.Errorf("big-chip reduction = %v, want ~0.20", got)
	}
}

func TestChipSizeReductionSameChips(t *testing.T) {
	// §6.1: 16+2 chips vs 8+2 chips. The paper quotes ~38%; the raw chip
	// count ratio gives (18-10)/18 ≈ 44%. We assert the count arithmetic and
	// document the delta in EXPERIMENTS.md.
	got := ChipSizeReductionSameChips(PaperDIMM)
	if !approx(got, (18.0-10.0)/18.0, 1e-9) {
		t.Errorf("same-chip reduction = %v, want %v", got, 8.0/18.0)
	}
}

func TestArrayToChipReduction(t *testing.T) {
	// §3.1: DIN's 33% array density improvement is a 15.4% chip reduction.
	got := ArrayDensityImprovementToChipReduction(1.0 / 3.0)
	if !approx(got, 0.1165, 0.002) {
		// 0.466 - 0.466/(4/3) = 0.466*(1-0.75) = 0.1165. The paper quotes
		// 15.4%, implying a slightly different area fraction; the shape
		// (array gain shrinks when diluted by periphery) is what matters.
		t.Errorf("chip reduction = %v, want ~0.117", got)
	}
	if ArrayDensityImprovementToChipReduction(0) != 0 {
		t.Error("zero array improvement must give zero chip reduction")
	}
}

func TestLayoutValid(t *testing.T) {
	if !SuperDense.Valid() || !DINEnhanced.Valid() || !Prototype.Valid() {
		t.Fatal("standard layouts must be valid")
	}
	if (Layout{WordLinePitchF: 1, BitLinePitchF: 2}).Valid() {
		t.Fatal("sub-2F pitch must be invalid")
	}
}

func TestLayoutString(t *testing.T) {
	if got := SuperDense.String(); got != "super-dense (4F²/cell)" {
		t.Errorf("String() = %q", got)
	}
}
