// Package cache implements the processor-side cache hierarchy of Table 2:
// per-core private L1 (32 KB) and L2 (2 MB), and a private 32 MB DRAM L3,
// all with 64 B lines, LRU replacement and write-back/write-allocate policy.
//
// The headline experiments replay main-memory-level traces (as the paper
// replays PIN-captured main-memory references), so the hierarchy's role
// there is its hit latencies only; the full filtering model is used by the
// sdpcm-trace capture mode, which turns CPU-level access streams into
// main-memory traces the way PIN + the cache model did for the authors.
package cache

import "fmt"

// Cache is one set-associative, write-back, write-allocate cache level.
type Cache struct {
	name     string
	sets     int
	assoc    int
	setShift uint

	// ways[set*assoc+way]; LRU order kept by per-line stamp.
	tags   []uint64
	valid  []bool
	dirty  []bool
	stamps []uint64
	clock  uint64

	Stats Stats
}

// Stats counts cache activity.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64 // dirty evictions pushed to the next level
}

// MissRate returns misses/accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// New builds a cache of the given total size in bytes with 64 B lines.
// Size must be a power-of-two multiple of assoc*64.
func New(name string, sizeBytes, assoc int) (*Cache, error) {
	if assoc <= 0 || sizeBytes <= 0 {
		return nil, fmt.Errorf("cache %s: size and associativity must be positive", name)
	}
	lines := sizeBytes / 64
	if lines*64 != sizeBytes || lines%assoc != 0 {
		return nil, fmt.Errorf("cache %s: size %dB not divisible into %d-way 64B sets", name, sizeBytes, assoc)
	}
	sets := lines / assoc
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d not a power of two", name, sets)
	}
	shift := uint(0)
	for 1<<shift < sets {
		shift++
	}
	return &Cache{
		name:     name,
		sets:     sets,
		assoc:    assoc,
		setShift: shift,
		tags:     make([]uint64, lines),
		valid:    make([]bool, lines),
		dirty:    make([]bool, lines),
		stamps:   make([]uint64, lines),
	}, nil
}

// Result of one cache access.
type Result struct {
	Hit bool
	// Writeback holds the victim line address when a dirty line was evicted.
	Writeback    uint64
	HasWriteback bool
}

// Access looks up line (a 64 B-granular address), allocating on miss.
// write marks the line dirty.
func (c *Cache) Access(line uint64, write bool) Result {
	c.Stats.Accesses++
	c.clock++
	set := int(line & (uint64(c.sets) - 1))
	tag := line >> c.setShift
	base := set * c.assoc
	// Hit?
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.Stats.Hits++
			c.stamps[i] = c.clock
			if write {
				c.dirty[i] = true
			}
			return Result{Hit: true}
		}
	}
	// Miss: pick invalid way or LRU victim.
	c.Stats.Misses++
	victim := base
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if !c.valid[i] {
			victim = i
			break
		}
		if c.stamps[i] < c.stamps[victim] {
			victim = i
		}
	}
	res := Result{}
	if c.valid[victim] && c.dirty[victim] {
		res.Writeback = c.tags[victim]<<c.setShift | uint64(set)
		res.HasWriteback = true
		c.Stats.Writebacks++
	}
	c.tags[victim] = tag
	c.valid[victim] = true
	c.dirty[victim] = write
	c.stamps[victim] = c.clock
	return res
}

// Contains reports whether the line is currently resident (no LRU update).
func (c *Cache) Contains(line uint64) bool {
	set := int(line & (uint64(c.sets) - 1))
	tag := line >> c.setShift
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			return true
		}
	}
	return false
}

// Lines returns the cache capacity in lines.
func (c *Cache) Lines() int { return c.sets * c.assoc }

// Hierarchy chains L1 → L2 → L3 for one core, per Table 2.
type Hierarchy struct {
	L1, L2, L3 *Cache
	// Latencies in cycles for a hit at each level (L1 hits are folded into
	// the 1-cycle instruction cost; L3 is the 50 ns DRAM cache = 200 cycles).
	L1Hit, L2Hit, L3Hit int
}

// NewTable2Hierarchy builds the paper's per-core hierarchy.
func NewTable2Hierarchy() (*Hierarchy, error) {
	l1, err := New("L1", 32<<10, 4)
	if err != nil {
		return nil, err
	}
	l2, err := New("L2", 2<<20, 4)
	if err != nil {
		return nil, err
	}
	l3, err := New("L3", 32<<20, 8)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{L1: l1, L2: l2, L3: l3, L1Hit: 1, L2Hit: 12, L3Hit: 200}, nil
}

// Outcome describes where an access was serviced and what reached memory.
type Outcome struct {
	// Level is 1..3 for cache hits, 4 for main memory.
	Level int
	// HitCycles is the latency of the servicing level (memory latency is
	// the memory controller's business and excluded).
	HitCycles int
	// MemReads is 1 when the miss reached main memory.
	MemReads int
	// MemWritebacks lists dirty lines evicted to main memory.
	MemWritebacks []uint64
}

// Access runs one CPU access through the hierarchy.
func (h *Hierarchy) Access(line uint64, write bool) Outcome {
	out := Outcome{}
	if r := h.L1.Access(line, write); r.Hit {
		return Outcome{Level: 1, HitCycles: h.L1Hit}
	} else if r.HasWriteback {
		// L1 victim goes to L2 (dirty fill).
		if r2 := h.L2.Access(r.Writeback, true); !r2.Hit && r2.HasWriteback {
			if r3 := h.L3.Access(r2.Writeback, true); !r3.Hit && r3.HasWriteback {
				out.MemWritebacks = append(out.MemWritebacks, r3.Writeback)
			}
		}
	}
	if r := h.L2.Access(line, false); r.Hit {
		out.Level, out.HitCycles = 2, h.L2Hit
		return out
	} else if r.HasWriteback {
		if r3 := h.L3.Access(r.Writeback, true); !r3.Hit && r3.HasWriteback {
			out.MemWritebacks = append(out.MemWritebacks, r3.Writeback)
		}
	}
	if r := h.L3.Access(line, false); r.Hit {
		out.Level, out.HitCycles = 3, h.L3Hit
		return out
	} else if r.HasWriteback {
		out.MemWritebacks = append(out.MemWritebacks, r.Writeback)
	}
	out.Level = 4
	out.HitCycles = h.L3Hit // traversal cost before memory
	out.MemReads = 1
	return out
}
