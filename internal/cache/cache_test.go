package cache

import (
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, name string, size, assoc int) *Cache {
	t.Helper()
	c, err := New(name, size, assoc)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New("bad", 0, 4); err == nil {
		t.Error("zero size must be rejected")
	}
	if _, err := New("bad", 1024, 0); err == nil {
		t.Error("zero assoc must be rejected")
	}
	if _, err := New("bad", 100, 4); err == nil {
		t.Error("non-64B-multiple size must be rejected")
	}
	if _, err := New("bad", 3*64*4, 4); err == nil {
		t.Error("non-power-of-two set count must be rejected")
	}
	c := mustCache(t, "ok", 32<<10, 4)
	if c.Lines() != 512 {
		t.Errorf("32KB cache has %d lines, want 512", c.Lines())
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := mustCache(t, "c", 4096, 4)
	if r := c.Access(7, false); r.Hit {
		t.Fatal("cold access must miss")
	}
	if r := c.Access(7, false); !r.Hit {
		t.Fatal("second access must hit")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-ish: 2-way, fill a set with 2 lines, touch the first,
	// insert a third: the second (LRU) must be evicted.
	c := mustCache(t, "c", 2*64*4, 2) // 4 sets, 2 ways
	const set = 1
	a := uint64(set)     // tag 0
	b := uint64(set + 4) // tag 1, same set
	d := uint64(set + 8) // tag 2, same set
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is MRU
	c.Access(d, false) // evicts b
	if !c.Contains(a) || !c.Contains(d) {
		t.Fatal("a and d must be resident")
	}
	if c.Contains(b) {
		t.Fatal("b must have been evicted (LRU)")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := mustCache(t, "c", 64*2, 2) // 1 set, 2 ways
	c.Access(0, true)               // dirty
	c.Access(1, false)              // clean
	r := c.Access(2, false)         // evicts line 0 (LRU, dirty)
	if !r.HasWriteback || r.Writeback != 0 {
		t.Fatalf("expected writeback of line 0, got %+v", r)
	}
	r = c.Access(3, false) // evicts line 1 (clean)
	if r.HasWriteback {
		t.Fatal("clean eviction must not write back")
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats.Writebacks)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := mustCache(t, "c", 64*2, 2)
	c.Access(0, false) // clean fill
	c.Access(0, true)  // write hit: now dirty
	c.Access(1, false)
	r := c.Access(2, false) // evicts 0
	if !r.HasWriteback {
		t.Fatal("write-hit line must be written back on eviction")
	}
}

func TestInclusionOfWorkingSet(t *testing.T) {
	// A working set smaller than the cache must stop missing entirely.
	c := mustCache(t, "c", 32<<10, 4)
	for pass := 0; pass < 3; pass++ {
		for line := uint64(0); line < 256; line++ {
			c.Access(line, false)
		}
	}
	// Last two passes must be all hits.
	if c.Stats.Misses != 256 {
		t.Fatalf("misses = %d, want 256 (cold only)", c.Stats.Misses)
	}
}

func TestMissRate(t *testing.T) {
	c := mustCache(t, "c", 4096, 4)
	if c.Stats.MissRate() != 0 {
		t.Fatal("empty cache must report 0 miss rate")
	}
	c.Access(1, false)
	c.Access(1, false)
	if got := c.Stats.MissRate(); got != 0.5 {
		t.Fatalf("miss rate = %v, want 0.5", got)
	}
}

func TestWritebackAddressRoundTrip(t *testing.T) {
	// Property: the writeback address always equals the originally inserted
	// line address.
	if err := quick.Check(func(lines []uint64) bool {
		c, err := New("p", 64*8, 2) // 4 sets, 2 ways: evicts often
		if err != nil {
			return false
		}
		inserted := map[uint64]bool{}
		for _, l := range lines {
			l %= 1 << 20
			r := c.Access(l, true)
			inserted[l] = true
			if r.HasWriteback && !inserted[r.Writeback] {
				return false // wrote back a line never inserted
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h, err := NewTable2Hierarchy()
	if err != nil {
		t.Fatal(err)
	}
	o := h.Access(42, false)
	if o.Level != 4 || o.MemReads != 1 {
		t.Fatalf("cold access = %+v, want memory", o)
	}
	o = h.Access(42, false)
	if o.Level != 1 || o.HitCycles != h.L1Hit {
		t.Fatalf("second access = %+v, want L1 hit", o)
	}
}

func TestHierarchyFiltersTraffic(t *testing.T) {
	h, err := NewTable2Hierarchy()
	if err != nil {
		t.Fatal(err)
	}
	memReads := 0
	// Loop over a small working set: only cold misses reach memory.
	for pass := 0; pass < 5; pass++ {
		for line := uint64(0); line < 100; line++ {
			o := h.Access(line, pass == 0)
			memReads += o.MemReads
		}
	}
	if memReads != 100 {
		t.Fatalf("memory reads = %d, want 100 cold misses", memReads)
	}
}

func TestHierarchyWritebackReachesMemory(t *testing.T) {
	// Dirty a huge streaming footprint so L3 must eventually evict dirty
	// lines to memory.
	h, err := NewTable2Hierarchy()
	if err != nil {
		t.Fatal(err)
	}
	var wbs int
	for line := uint64(0); line < 2<<20; line++ {
		o := h.Access(line, true)
		wbs += len(o.MemWritebacks)
	}
	if wbs == 0 {
		t.Fatal("streaming dirty footprint must produce memory writebacks")
	}
}
