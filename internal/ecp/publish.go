package ecp

import "sdpcm/internal/metrics"

// Publish exports the table counters into reg under the "ecp." prefix.
// Called once at end of run; a nil registry is a no-op.
func (s Stats) Publish(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("ecp.wd_recorded").Add(s.WDRecorded)
	reg.Counter("ecp.wd_duplicates").Add(s.WDDuplicates)
	reg.Counter("ecp.overflows").Add(s.Overflows)
	reg.Counter("ecp.cleared_by_write").Add(s.ClearedByWrite)
	reg.Counter("ecp.cleared_by_correct").Add(s.ClearedByCorrect)
	reg.Counter("ecp.bit_writes").Add(s.ECPBitWrites)
}
