package ecp

import (
	"testing"
	"testing/quick"

	"sdpcm/internal/pcm"
)

func mustNew(t *testing.T, n int) *Table {
	t.Helper()
	tab, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Fatal("negative N must be rejected")
	}
	if tab := mustNew(t, 0); tab.N != 0 {
		t.Fatal("ECP-0 must be constructible (baseline VnC)")
	}
}

func TestRecordWithinCapacity(t *testing.T) {
	tab := mustNew(t, 6)
	if !tab.RecordWD(1, []int{3, 100, 511}) {
		t.Fatal("3 errors must fit in ECP-6")
	}
	if tab.Recorded(1) != 3 || tab.Free(1) != 3 {
		t.Fatalf("recorded=%d free=%d", tab.Recorded(1), tab.Free(1))
	}
	if got := tab.WDBits(1); len(got) != 3 || got[0] != 3 || got[1] != 100 || got[2] != 511 {
		t.Fatalf("WDBits = %v", got)
	}
}

func TestOverflowIsAllOrNothing(t *testing.T) {
	tab := mustNew(t, 4)
	if !tab.RecordWD(1, []int{1, 2, 3}) {
		t.Fatal("3 must fit in ECP-4")
	}
	// 2 more would make 5 > 4: reject and record nothing new.
	if tab.RecordWD(1, []int{10, 11}) {
		t.Fatal("overflow must be reported")
	}
	if tab.Recorded(1) != 3 {
		t.Fatalf("overflow must not partially record; got %d", tab.Recorded(1))
	}
	if tab.Stats.Overflows != 1 {
		t.Fatalf("overflow stat = %d", tab.Stats.Overflows)
	}
}

func TestECP0AlwaysOverflows(t *testing.T) {
	tab := mustNew(t, 0)
	if tab.RecordWD(1, []int{0}) {
		t.Fatal("ECP-0 must reject every record")
	}
	if tab.RecordWD(2, nil) != true {
		t.Fatal("empty record must succeed even on ECP-0")
	}
}

func TestDuplicateDetectionsAreFree(t *testing.T) {
	tab := mustNew(t, 2)
	if !tab.RecordWD(1, []int{5, 6}) {
		t.Fatal("fill ECP-2")
	}
	// Same cells detected again: covered, must succeed without growth.
	if !tab.RecordWD(1, []int{5, 6}) {
		t.Fatal("already-recorded cells must not overflow")
	}
	if tab.Recorded(1) != 2 {
		t.Fatalf("recorded = %d", tab.Recorded(1))
	}
	if tab.Stats.WDDuplicates != 2 {
		t.Fatalf("duplicates = %d", tab.Stats.WDDuplicates)
	}
	// Duplicates within one batch also dedupe.
	tab2 := mustNew(t, 1)
	if !tab2.RecordWD(1, []int{7, 7, 7}) {
		t.Fatal("intra-batch duplicates must collapse to one entry")
	}
	if tab2.Recorded(1) != 1 {
		t.Fatalf("recorded = %d", tab2.Recorded(1))
	}
}

func TestHardErrorsHavePriority(t *testing.T) {
	tab := mustNew(t, 6)
	tab.SetHardErrors(1, 4)
	if tab.Free(1) != 2 {
		t.Fatalf("free = %d, want 2", tab.Free(1))
	}
	if !tab.RecordWD(1, []int{1, 2}) {
		t.Fatal("2 WD errors must fit beside 4 hard errors")
	}
	if tab.RecordWD(1, []int{3}) {
		t.Fatal("5th error must overflow ECP-6 with 4 hard")
	}
	// Raising hard errors evicts WD entries beyond the new capacity.
	tab.SetHardErrors(1, 5)
	if tab.Recorded(1) != 6 || len(tab.WDBits(1)) != 1 {
		t.Fatalf("recorded=%d wd=%v", tab.Recorded(1), tab.WDBits(1))
	}
	// Clamping.
	tab.SetHardErrors(1, 99)
	if tab.HardErrors(1) != 6 || len(tab.WDBits(1)) != 0 {
		t.Fatalf("hard=%d wd=%v", tab.HardErrors(1), tab.WDBits(1))
	}
	tab.SetHardErrors(1, -3)
	if tab.HardErrors(1) != 0 {
		t.Fatal("negative hard errors must clamp to 0")
	}
}

func TestClearWD(t *testing.T) {
	tab := mustNew(t, 6)
	tab.SetHardErrors(1, 2)
	tab.RecordWD(1, []int{9, 10, 11})
	if n := tab.ClearWD(1, false); n != 3 {
		t.Fatalf("cleared %d, want 3", n)
	}
	if tab.Recorded(1) != 2 {
		t.Fatal("hard errors must survive ClearWD")
	}
	if tab.Stats.ClearedByWrite != 3 || tab.Stats.ClearedByCorrect != 0 {
		t.Fatalf("stats = %+v", tab.Stats)
	}
	tab.RecordWD(1, []int{4})
	tab.ClearWD(1, true)
	if tab.Stats.ClearedByCorrect != 1 {
		t.Fatalf("stats = %+v", tab.Stats)
	}
	if tab.ClearWD(99, false) != 0 {
		t.Fatal("clearing an untouched line must be a no-op")
	}
}

func TestCorrectionMaskAndCorrectRead(t *testing.T) {
	tab := mustNew(t, 6)
	tab.RecordWD(1, []int{0, 64, 300})
	m := tab.CorrectionMask(1)
	if m.PopCount() != 3 || m.Bit(0) != 1 || m.Bit(64) != 1 || m.Bit(300) != 1 {
		t.Fatalf("mask = %v", m.Bits())
	}
	var raw pcm.Line
	raw.SetBit(0, 1)   // disturbed cell reads 1
	raw.SetBit(64, 1)  // disturbed
	raw.SetBit(200, 1) // legitimately crystalline
	fixed := tab.CorrectRead(1, raw)
	if fixed.Bit(0) != 0 || fixed.Bit(64) != 0 || fixed.Bit(300) != 0 {
		t.Fatal("recorded cells must read as 0")
	}
	if fixed.Bit(200) != 1 {
		t.Fatal("unrecorded cells must pass through")
	}
	// Lines without entries pass through untouched.
	if tab.CorrectRead(2, raw) != raw {
		t.Fatal("untracked line must be unmodified")
	}
}

func TestECPWearAccounting(t *testing.T) {
	tab := mustNew(t, 6)
	tab.RecordWD(1, []int{1, 2})
	// 2 entries x 10 bits each (§6.7: 9-bit address + 1-bit value).
	if tab.Stats.ECPBitWrites != 2*BitsPerEntry {
		t.Fatalf("ECP bit writes = %d, want %d", tab.Stats.ECPBitWrites, 2*BitsPerEntry)
	}
	tab.ClearWD(1, false)
	// Invalidation writes one bit per entry.
	if tab.Stats.ECPBitWrites != 2*BitsPerEntry+2 {
		t.Fatalf("ECP bit writes after clear = %d", tab.Stats.ECPBitWrites)
	}
}

func TestRecordWDOutOfRangePanics(t *testing.T) {
	tab := mustNew(t, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range cell")
		}
	}()
	tab.RecordWD(1, []int{pcm.LineBits})
}

func TestInvariantRecordedNeverExceedsN(t *testing.T) {
	// Property: under arbitrary interleavings of record/clear/set-hard, the
	// occupied entry count never exceeds N and Free is its complement.
	tab := mustNew(t, 4)
	if err := quick.Check(func(ops []uint16) bool {
		for _, op := range ops {
			a := pcm.LineAddr(op % 8)
			switch (op / 8) % 3 {
			case 0:
				tab.RecordWD(a, []int{int(op % 512), int((op * 7) % 512)})
			case 1:
				tab.ClearWD(a, op%2 == 0)
			case 2:
				tab.SetHardErrors(a, int(op%6))
			}
			if tab.Recorded(a) > tab.N || tab.Free(a) != tab.N-tab.Recorded(a) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWDBitsNoDuplicates(t *testing.T) {
	tab := mustNew(t, 16)
	tab.RecordWD(1, []int{1, 2, 3})
	tab.RecordWD(1, []int{2, 3, 4})
	bits := tab.WDBits(1)
	seen := map[int]bool{}
	for _, b := range bits {
		if seen[b] {
			t.Fatalf("duplicate recorded bit %d in %v", b, bits)
		}
		seen[b] = true
	}
	if len(bits) != 4 {
		t.Fatalf("WDBits = %v, want 4 distinct", bits)
	}
}

func TestHardFnLazyPopulation(t *testing.T) {
	tab := mustNew(t, 6)
	tab.HardFn = func(a pcm.LineAddr) int { return int(a) } // addr-dependent
	if tab.HardErrors(0) != 0 || tab.HardErrors(3) != 3 {
		t.Fatalf("hard errors = %d/%d", tab.HardErrors(0), tab.HardErrors(3))
	}
	// Clamped to N.
	if tab.HardErrors(99) != 6 {
		t.Fatalf("hard errors = %d, want clamp to 6", tab.HardErrors(99))
	}
	// Recorded reflects lazily populated hard errors.
	if tab.Recorded(4) != 4 || tab.Free(4) != 2 {
		t.Fatalf("recorded=%d free=%d", tab.Recorded(4), tab.Free(4))
	}
	// Records beyond free entries overflow.
	if tab.RecordWD(4, []int{1, 2, 3}) {
		t.Fatal("3 WD errors must not fit beside 4 hard errors in ECP-6")
	}
}
