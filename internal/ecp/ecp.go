// Package ecp implements Error-Correcting Pointers (ECP [28]) as used by
// SD-PCM's LazyCorrection (§4.2).
//
// Each protected 64 B line owns N pointer entries; an entry names one cell
// (9-bit address within the 512-cell line) and stores its correct value
// (1 bit). ECP was designed for hard (stuck-at) errors; SD-PCM additionally
// parks freshly detected write-disturbance errors in whatever entries hard
// errors have not consumed. A disturbed cell's true value is always '0'
// (only idle amorphous cells are vulnerable), so reads return corrected data
// by forcing recorded cells to zero, and a deferred correction write simply
// RESETs them.
//
// Entry policy (§4.2): hard errors have allocation priority. A normal write
// to a line rewrites its data and therefore clears the line's accumulated WD
// entries for free; hard-error entries persist for the lifetime of the cell.
//
// The ECP pointers themselves live in a *low density* (8F², WD-free along
// both axes) ECP chip, so recording an entry never triggers further
// verification; it does, however, wear the ECP chip — each recorded WD error
// writes AddressBits+1 = 10 cells there (§6.7), which this package accounts.
package ecp

import (
	"fmt"

	"sdpcm/internal/metrics"
	"sdpcm/internal/pcm"
)

// AddressBits is the width of one pointer (log2 of cells per line).
const AddressBits = 9

// BitsPerEntry is the ECP-chip cells written when recording one entry:
// the pointer plus the correct-value bit.
const BitsPerEntry = AddressBits + 1

// DefaultEntries is the paper's default ECP-6 configuration.
const DefaultEntries = 6

// Stats aggregates ECP activity across all lines.
type Stats struct {
	WDRecorded       uint64 // WD errors newly parked in entries
	WDDuplicates     uint64 // WD detections already covered by an entry
	Overflows        uint64 // record attempts that exceeded free entries
	ClearedByWrite   uint64 // WD entries released by a normal data write
	ClearedByCorrect uint64 // WD entries released by a correction write
	ECPBitWrites     uint64 // cells programmed in the ECP chip (wear proxy)
}

// Add accumulates another Stats value; all fields are additive, so per-bank
// table shards merge commutatively.
func (s *Stats) Add(o Stats) {
	s.WDRecorded += o.WDRecorded
	s.WDDuplicates += o.WDDuplicates
	s.Overflows += o.Overflows
	s.ClearedByWrite += o.ClearedByWrite
	s.ClearedByCorrect += o.ClearedByCorrect
	s.ECPBitWrites += o.ECPBitWrites
}

// lineState is the per-line entry bookkeeping. WD entries are kept as an
// ordered slice of cell indices; hard errors are abstract (only their count
// matters to entry pressure — their addresses never change).
type lineState struct {
	hard int
	wd   []uint16
	// seen holds every cell index ever recorded on this line. The ECP chip
	// uses differential write too: re-recording a pointer whose bits are
	// still in the (invalidated) entry from an earlier round only rewrites
	// the valid bit, not the full 10-bit entry.
	seen []uint16
}

// Table is the ECP state for one DIMM: N entries per line, sparse over the
// address space.
type Table struct {
	// N is the number of entries per line (ECP-N). N == 0 disables ECP:
	// every record attempt overflows, degenerating to basic VnC.
	N int

	// HardFn, when set, supplies the number of entries pre-consumed by hard
	// errors for a line the first time its state is touched (clamped to
	// [0,N]). It models device aging for the lifetime experiments (§6.4
	// Fig. 14): as the DIMM wears out, hard errors crowd out LazyCorrection.
	HardFn func(pcm.LineAddr) int

	Stats Stats

	lines map[pcm.LineAddr]*lineState

	// scratch backs RecordWD's dedup pass; reused across calls so the
	// steady-state record path allocates nothing. RecordWD is not reentrant.
	scratch []uint16

	// Occupancy histograms (nil when uninstrumented): entries in use after
	// each successful park and at each correction-write flush — the entry
	// pressure LazyCorrection's X+Y<=N rule lives or dies by.
	parkOcc, flushOcc *metrics.Histogram
}

// New creates an ECP-N table. N must be non-negative.
func New(n int) (*Table, error) {
	if n < 0 {
		return nil, fmt.Errorf("ecp: negative entry count %d", n)
	}
	return &Table{N: n, lines: make(map[pcm.LineAddr]*lineState)}, nil
}

func (t *Table) state(a pcm.LineAddr) *lineState {
	s := t.lines[a]
	if s == nil {
		s = &lineState{}
		if t.HardFn != nil {
			h := t.HardFn(a)
			if h < 0 {
				h = 0
			}
			if h > t.N {
				h = t.N
			}
			s.hard = h
		}
		t.lines[a] = s
	}
	return s
}

// Instrument attaches occupancy histograms to the table. A nil registry
// leaves the table uninstrumented (the zero-cost default).
func (t *Table) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	bounds := []uint64{0, 1, 2, 3, 4, 6, 8, 12, 16}
	t.parkOcc = reg.Histogram("ecp.occupancy_at_park", bounds)
	t.flushOcc = reg.Histogram("ecp.occupancy_at_flush", bounds)
}

// HardErrors returns the number of entries consumed by hard errors on a line.
func (t *Table) HardErrors(a pcm.LineAddr) int {
	return t.state(a).hard
}

// SetHardErrors pins n entries of the line for hard errors (clamped to
// [0, N]). Existing WD entries that no longer fit are dropped as if a
// correction had cleared them; the caller is responsible for actually
// correcting the array if it cares (lifetime experiments do not, they only
// model entry pressure).
func (t *Table) SetHardErrors(a pcm.LineAddr, n int) {
	if n < 0 {
		n = 0
	}
	if n > t.N {
		n = t.N
	}
	s := t.state(a)
	s.hard = n
	if free := t.N - s.hard; len(s.wd) > free {
		s.wd = s.wd[:free]
	}
}

// Recorded returns the total occupied entries (hard + WD) of a line.
func (t *Table) Recorded(a pcm.LineAddr) int {
	s := t.state(a)
	return s.hard + len(s.wd)
}

// Free returns the number of unoccupied entries of a line.
func (t *Table) Free(a pcm.LineAddr) int { return t.N - t.Recorded(a) }

// WDBits returns the cell indices of the line's recorded WD errors,
// ascending insertion order. The slice is a copy.
func (t *Table) WDBits(a pcm.LineAddr) []int {
	s := t.lines[a]
	if s == nil || len(s.wd) == 0 {
		return nil
	}
	out := make([]int, len(s.wd))
	for i, b := range s.wd {
		out[i] = int(b)
	}
	return out
}

// RecordWD tries to park newly detected disturbed cells (bit indices within
// the line) into free entries. Detections already covered by an entry are
// deduplicated and always succeed. If the remaining new cells do not all
// fit, nothing new is recorded and ok is false: the caller must fall back to
// an immediate correction write (LazyCorrection's X+Y>N case).
func (t *Table) RecordWD(a pcm.LineAddr, cells []int) (ok bool) {
	if len(cells) == 0 {
		return true
	}
	s := t.state(a)
	fresh := t.scratch[:0]
	for _, c := range cells {
		if c < 0 || c >= pcm.LineBits {
			panic(fmt.Sprintf("ecp: cell index %d out of range", c))
		}
		if s.has(uint16(c)) || containsU16(fresh, uint16(c)) {
			t.Stats.WDDuplicates++
			continue
		}
		fresh = append(fresh, uint16(c))
	}
	t.scratch = fresh[:0]
	if len(fresh) == 0 {
		return true
	}
	if s.hard+len(s.wd)+len(fresh) > t.N {
		t.Stats.Overflows++
		return false
	}
	s.wd = append(s.wd, fresh...)
	t.Stats.WDRecorded += uint64(len(fresh))
	t.parkOcc.Observe(uint64(s.hard + len(s.wd)))
	for _, c := range fresh {
		if containsU16(s.seen, c) {
			// Pointer bits unchanged from a previous round: only the valid
			// bit flips (differential write in the ECP chip).
			t.Stats.ECPBitWrites++
			continue
		}
		t.Stats.ECPBitWrites += BitsPerEntry
		if len(s.seen) < pcm.LineBits {
			s.seen = append(s.seen, c)
		}
	}
	return true
}

// ClearWD releases all WD entries of a line and returns how many were held.
// byCorrection attributes the release for statistics: true when an explicit
// correction write cleared the cells, false when a normal data write
// superseded them (§4.2 "a normal write operation clears the accumulated WD
// errors in ECP").
func (t *Table) ClearWD(a pcm.LineAddr, byCorrection bool) int {
	s := t.lines[a]
	if s == nil || len(s.wd) == 0 {
		return 0
	}
	n := len(s.wd)
	s.wd = s.wd[:0]
	if byCorrection {
		t.Stats.ClearedByCorrect += uint64(n)
		t.flushOcc.Observe(uint64(s.hard + n))
	} else {
		t.Stats.ClearedByWrite += uint64(n)
	}
	// Invalidating entries writes their valid bits in the ECP chip.
	t.Stats.ECPBitWrites += uint64(n)
	return n
}

// CorrectionMask returns a mask of the line's recorded WD cells; applying
// RESET to exactly these cells (forcing them to '0') heals the line.
func (t *Table) CorrectionMask(a pcm.LineAddr) pcm.Mask {
	var m pcm.Mask
	if s := t.lines[a]; s != nil {
		for _, b := range s.wd {
			m.SetBit(int(b))
		}
	}
	return m
}

// CorrectRead returns the ECP-corrected view of raw line data: every
// recorded WD cell is forced to its true value '0'. Hard-error cells are
// abstract in this model and left untouched.
func (t *Table) CorrectRead(a pcm.LineAddr, raw pcm.Line) pcm.Line {
	s := t.lines[a]
	if s == nil || len(s.wd) == 0 {
		return raw
	}
	for _, b := range s.wd {
		raw.SetBit(int(b), 0)
	}
	return raw
}

func (s *lineState) has(c uint16) bool { return containsU16(s.wd, c) }

func containsU16(xs []uint16, c uint16) bool {
	for _, x := range xs {
		if x == c {
			return true
		}
	}
	return false
}
