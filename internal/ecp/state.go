package ecp

import (
	"slices"

	"sdpcm/internal/pcm"
	"sdpcm/internal/snap"
)

// EncodeState serializes the table's mutable state: the counters and every
// line's entry bookkeeping, in ascending address order so the encoding is
// deterministic. N, HardFn and the instruments are construction parameters.
func (t *Table) EncodeState(e *snap.Encoder) {
	e.Begin("ecp.table")
	e.U64(t.Stats.WDRecorded)
	e.U64(t.Stats.WDDuplicates)
	e.U64(t.Stats.Overflows)
	e.U64(t.Stats.ClearedByWrite)
	e.U64(t.Stats.ClearedByCorrect)
	e.U64(t.Stats.ECPBitWrites)
	addrs := make([]pcm.LineAddr, 0, len(t.lines))
	for a := range t.lines {
		addrs = append(addrs, a)
	}
	slices.Sort(addrs)
	e.Uvarint(uint64(len(addrs)))
	for _, a := range addrs {
		s := t.lines[a]
		e.U64(uint64(a))
		e.Int(s.hard)
		e.Uvarint(uint64(len(s.wd)))
		for _, c := range s.wd {
			e.Uvarint(uint64(c))
		}
		e.Uvarint(uint64(len(s.seen)))
		for _, c := range s.seen {
			e.Uvarint(uint64(c))
		}
	}
	e.End()
}

// DecodeState restores state written by EncodeState into a freshly
// constructed table of the same configuration.
func (t *Table) DecodeState(d *snap.Decoder) error {
	d.Begin("ecp.table")
	t.Stats.WDRecorded = d.U64()
	t.Stats.WDDuplicates = d.U64()
	t.Stats.Overflows = d.U64()
	t.Stats.ClearedByWrite = d.U64()
	t.Stats.ClearedByCorrect = d.U64()
	t.Stats.ECPBitWrites = d.U64()
	t.lines = make(map[pcm.LineAddr]*lineState)
	n := d.Uvarint()
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		a := pcm.LineAddr(d.U64())
		s := &lineState{hard: d.Int()}
		if k := d.Uvarint(); k > 0 {
			s.wd = make([]uint16, k)
			for j := range s.wd {
				s.wd[j] = uint16(d.Uvarint())
			}
		}
		if k := d.Uvarint(); k > 0 {
			s.seen = make([]uint16, k)
			for j := range s.seen {
				s.seen[j] = uint16(d.Uvarint())
			}
		}
		t.lines[a] = s
	}
	d.End()
	return d.Err()
}
