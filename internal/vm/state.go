package vm

import (
	"fmt"
	"slices"

	"sdpcm/internal/alloc"
	"sdpcm/internal/pcm"
	"sdpcm/internal/snap"
)

// EncodeState serializes the address space's mutable state: the page table
// (in ascending virtual-page order), the TLB arrays and clock, the
// demand-paging pool and block list, and the fault counter. The allocator
// reference, tag and chunk size are construction parameters.
func (as *AddressSpace) EncodeState(e *snap.Encoder) {
	e.Begin("vm.addrspace")

	vpages := make([]uint64, 0, len(as.PT.entries))
	for v := range as.PT.entries {
		vpages = append(vpages, v)
	}
	slices.Sort(vpages)
	e.Uvarint(uint64(len(vpages)))
	for _, v := range vpages {
		tr := as.PT.entries[v]
		e.U64(v)
		e.U64(uint64(tr.Frame))
		e.Int(tr.Tag.N)
		e.Int(tr.Tag.M)
	}

	t := as.TLB
	e.Int(t.sets)
	e.Int(t.assoc)
	for i := range t.vpage {
		e.U64(t.vpage[i])
		e.U64(uint64(t.data[i].Frame))
		e.Int(t.data[i].Tag.N)
		e.Int(t.data[i].Tag.M)
		e.Bool(t.valid[i])
		e.U64(t.stamp[i])
	}
	e.U64(t.clock)
	e.U64(t.Hits)
	e.U64(t.Misses)

	e.Uvarint(uint64(len(as.pool)))
	for _, p := range as.pool {
		e.U64(uint64(p))
	}
	e.Uvarint(uint64(len(as.blocks)))
	for _, b := range as.blocks {
		e.U64(uint64(b.Start))
		e.Int(b.Order)
		e.Int(b.Tag.N)
		e.Int(b.Tag.M)
	}
	e.U64(as.Faults)
	e.End()
}

// DecodeState restores state written by EncodeState into an address space
// freshly constructed with the same tag and chunk size.
func (as *AddressSpace) DecodeState(d *snap.Decoder) error {
	d.Begin("vm.addrspace")

	n := d.Uvarint()
	as.PT = &PageTable{entries: make(map[uint64]Translation, n)}
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		v := d.U64()
		tr := Translation{Frame: pcm.PageAddr(d.U64()), Tag: alloc.Tag{N: d.Int(), M: d.Int()}}
		as.PT.entries[v] = tr
	}

	t := as.TLB
	if sets, assoc := d.Int(), d.Int(); d.Err() == nil && (sets != t.sets || assoc != t.assoc) {
		return fmt.Errorf("vm: checkpoint TLB geometry %d/%d does not match this run's %d/%d",
			sets, assoc, t.sets, t.assoc)
	}
	for i := range t.vpage {
		t.vpage[i] = d.U64()
		t.data[i] = Translation{Frame: pcm.PageAddr(d.U64()), Tag: alloc.Tag{N: d.Int(), M: d.Int()}}
		t.valid[i] = d.Bool()
		t.stamp[i] = d.U64()
	}
	t.clock = d.U64()
	t.Hits = d.U64()
	t.Misses = d.U64()

	np := d.Uvarint()
	as.pool = make([]pcm.PageAddr, 0, np)
	for i := uint64(0); i < np && d.Err() == nil; i++ {
		as.pool = append(as.pool, pcm.PageAddr(d.U64()))
	}
	nb := d.Uvarint()
	as.blocks = make([]alloc.Block, 0, nb)
	for i := uint64(0); i < nb && d.Err() == nil; i++ {
		as.blocks = append(as.blocks, alloc.Block{
			Start: pcm.PageAddr(d.U64()),
			Order: d.Int(),
			Tag:   alloc.Tag{N: d.Int(), M: d.Int()},
		})
	}
	as.Faults = d.U64()
	d.End()
	return d.Err()
}
