// Package vm implements the OS-side plumbing of (n:m)-Alloc (§4.4, Fig. 9):
// per-process page tables whose entries carry the allocator tag, a TLB that
// caches translations (tag included), and demand paging backed by the
// WD-aware buddy allocator. The tag travels virtual address → page table →
// TLB → memory controller, which uses it to decide which bit-line
// neighbours of a write need verification.
package vm

import (
	"fmt"

	"sdpcm/internal/alloc"
	"sdpcm/internal/pcm"
)

// Translation is one page-table / TLB entry payload.
type Translation struct {
	Frame pcm.PageAddr
	Tag   alloc.Tag
}

// PageTable maps a process's virtual pages to physical frames.
type PageTable struct {
	entries map[uint64]Translation
}

// NewPageTable returns an empty table.
func NewPageTable() *PageTable {
	return &PageTable{entries: make(map[uint64]Translation)}
}

// Lookup returns the translation of a virtual page.
func (pt *PageTable) Lookup(vpage uint64) (Translation, bool) {
	t, ok := pt.entries[vpage]
	return t, ok
}

// Map installs a translation.
func (pt *PageTable) Map(vpage uint64, tr Translation) {
	pt.entries[vpage] = tr
}

// Len returns the number of mapped pages.
func (pt *PageTable) Len() int { return len(pt.entries) }

// TLB is a small set-associative translation cache. Each entry carries the
// (n:m) allocator tag so the memory controller receives it with every
// request (Fig. 9).
type TLB struct {
	sets  int
	assoc int

	vpage []uint64
	data  []Translation
	valid []bool
	stamp []uint64
	clock uint64

	Hits, Misses uint64
}

// NewTLB builds a TLB with the given entry count and associativity; entries
// must be a power-of-two multiple of assoc.
func NewTLB(entries, assoc int) (*TLB, error) {
	if entries <= 0 || assoc <= 0 || entries%assoc != 0 {
		return nil, fmt.Errorf("vm: bad TLB geometry %d/%d", entries, assoc)
	}
	sets := entries / assoc
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("vm: TLB set count %d not a power of two", sets)
	}
	return &TLB{
		sets:  sets,
		assoc: assoc,
		vpage: make([]uint64, entries),
		data:  make([]Translation, entries),
		valid: make([]bool, entries),
		stamp: make([]uint64, entries),
	}, nil
}

// Lookup probes the TLB.
func (t *TLB) Lookup(vpage uint64) (Translation, bool) {
	t.clock++
	base := int(vpage%uint64(t.sets)) * t.assoc
	for w := 0; w < t.assoc; w++ {
		i := base + w
		if t.valid[i] && t.vpage[i] == vpage {
			t.Hits++
			t.stamp[i] = t.clock
			return t.data[i], true
		}
	}
	t.Misses++
	return Translation{}, false
}

// Insert fills the TLB after a page-table walk, evicting LRU.
func (t *TLB) Insert(vpage uint64, tr Translation) {
	t.clock++
	base := int(vpage%uint64(t.sets)) * t.assoc
	victim := base
	for w := 0; w < t.assoc; w++ {
		i := base + w
		if !t.valid[i] {
			victim = i
			break
		}
		if t.stamp[i] < t.stamp[victim] {
			victim = i
		}
	}
	t.vpage[victim] = vpage
	t.data[victim] = tr
	t.valid[victim] = true
	t.stamp[victim] = t.clock
}

// AddressSpace is one process: a page table, a TLB, and demand paging from
// the shared buddy allocator under the process's allocator tag. Per §5.3 we
// assume one application uses one (n:m) allocator for all of its memory.
type AddressSpace struct {
	PT  *PageTable
	TLB *TLB

	allocator *alloc.Allocator
	tag       alloc.Tag
	chunk     int // pages requested per demand-paging refill

	pool   []pcm.PageAddr
	blocks []alloc.Block

	// Faults counts demand-paging events (first touches).
	Faults uint64
}

// NewAddressSpace builds a process address space. chunkPages is the growth
// granularity of demand paging (a strip's worth by default when 0).
func NewAddressSpace(a *alloc.Allocator, tag alloc.Tag, chunkPages int) (*AddressSpace, error) {
	if !tag.Valid() {
		return nil, fmt.Errorf("vm: invalid tag %v", tag)
	}
	if chunkPages <= 0 {
		chunkPages = a.StripPages()
	}
	tlb, err := NewTLB(64, 4)
	if err != nil {
		return nil, err
	}
	return &AddressSpace{
		PT:        NewPageTable(),
		TLB:       tlb,
		allocator: a,
		tag:       tag,
		chunk:     chunkPages,
	}, nil
}

// Tag returns the process's allocator tag.
func (as *AddressSpace) Tag() alloc.Tag { return as.tag }

// Translate resolves a virtual page, faulting in a fresh frame on first
// touch. tlbHit reports whether the TLB already held the translation.
func (as *AddressSpace) Translate(vpage uint64) (Translation, bool, error) {
	if tr, ok := as.TLB.Lookup(vpage); ok {
		return tr, true, nil
	}
	tr, ok := as.PT.Lookup(vpage)
	if !ok {
		frame, err := as.fault()
		if err != nil {
			return Translation{}, false, err
		}
		tr = Translation{Frame: frame, Tag: as.tag}
		as.PT.Map(vpage, tr)
	}
	as.TLB.Insert(vpage, tr)
	return tr, false, nil
}

// fault services a demand-paging miss from the pool, refilling it from the
// buddy allocator as needed.
func (as *AddressSpace) fault() (pcm.PageAddr, error) {
	as.Faults++
	if len(as.pool) == 0 {
		b, err := as.allocator.Alloc(as.chunk, as.tag)
		if err != nil {
			return 0, fmt.Errorf("vm: demand paging: %w", err)
		}
		as.blocks = append(as.blocks, b)
		as.pool = as.allocator.Usable(b)
	}
	frame := as.pool[0]
	as.pool = as.pool[1:]
	return frame, nil
}

// MappedPages returns the number of resident pages.
func (as *AddressSpace) MappedPages() int { return as.PT.Len() }

// Release frees every block the address space holds (process exit).
func (as *AddressSpace) Release() error {
	for _, b := range as.blocks {
		if err := as.allocator.Free(b); err != nil {
			return err
		}
	}
	as.blocks = nil
	as.pool = nil
	as.PT = NewPageTable()
	return nil
}
