package vm

import (
	"testing"

	"sdpcm/internal/alloc"
	"sdpcm/internal/pcm"
)

func newAlloc(t *testing.T) *alloc.Allocator {
	t.Helper()
	a, err := alloc.New(2048, 128)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestTranslateDemandPaging(t *testing.T) {
	a := newAlloc(t)
	as, err := NewAddressSpace(a, alloc.Tag11, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr1, hit, err := as.Translate(100)
	if err != nil || hit {
		t.Fatalf("first touch: hit=%v err=%v", hit, err)
	}
	// Same page translates identically and now hits the TLB.
	tr2, hit, err := as.Translate(100)
	if err != nil || !hit || tr1 != tr2 {
		t.Fatalf("second touch: tr=%+v/%+v hit=%v err=%v", tr1, tr2, hit, err)
	}
	if as.Faults != 1 || as.MappedPages() != 1 {
		t.Fatalf("faults=%d mapped=%d", as.Faults, as.MappedPages())
	}
}

func TestDistinctVPagesGetDistinctFrames(t *testing.T) {
	a := newAlloc(t)
	as, _ := NewAddressSpace(a, alloc.Tag11, 0)
	seen := map[pcm.PageAddr]bool{}
	for v := uint64(0); v < 200; v++ {
		tr, _, err := as.Translate(v)
		if err != nil {
			t.Fatal(err)
		}
		if seen[tr.Frame] {
			t.Fatalf("frame %d mapped twice", tr.Frame)
		}
		seen[tr.Frame] = true
	}
}

func TestTagTravelsWithTranslation(t *testing.T) {
	a := newAlloc(t)
	as, _ := NewAddressSpace(a, alloc.Tag23, 0)
	tr, _, err := as.Translate(5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Tag != alloc.Tag23 {
		t.Fatalf("translation tag = %v, want (2:3)", tr.Tag)
	}
	// The frame must be in an in-use strip of a (2:3)-owned region.
	if !a.PageInUse(tr.Frame) {
		t.Fatal("frame is in a no-use strip")
	}
	if a.RegionTag(tr.Frame) != alloc.Tag23 {
		t.Fatal("frame's region not owned by (2:3)")
	}
}

func TestNMFramesAvoidNoUseStrips(t *testing.T) {
	a := newAlloc(t)
	as, _ := NewAddressSpace(a, alloc.Tag12, 0)
	for v := uint64(0); v < 300; v++ {
		tr, _, err := as.Translate(v)
		if err != nil {
			t.Fatal(err)
		}
		if a.StripIndexInRegion(tr.Frame)%2 != 0 {
			t.Fatalf("vpage %d mapped to no-use strip frame %d", v, tr.Frame)
		}
	}
}

func TestInvalidTagRejected(t *testing.T) {
	a := newAlloc(t)
	if _, err := NewAddressSpace(a, alloc.Tag{N: 0, M: 2}, 0); err == nil {
		t.Fatal("invalid tag must be rejected")
	}
}

func TestOutOfMemoryPropagates(t *testing.T) {
	a := newAlloc(t)
	as, _ := NewAddressSpace(a, alloc.Tag11, 128)
	var err error
	for v := uint64(0); v < 3000; v++ {
		if _, _, err = as.Translate(v); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("exhausting memory must surface an error")
	}
}

func TestRelease(t *testing.T) {
	a := newAlloc(t)
	as, _ := NewAddressSpace(a, alloc.Tag12, 0)
	for v := uint64(0); v < 100; v++ {
		if _, _, err := as.Translate(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := as.Release(); err != nil {
		t.Fatal(err)
	}
	st := a.Snapshot()
	if st.AllocatedPages != 0 {
		t.Fatalf("release left %d pages allocated", st.AllocatedPages)
	}
	if st.FreePages[alloc.Tag11] != 2048 {
		t.Fatalf("memory not recovered: %+v", st)
	}
	if as.MappedPages() != 0 {
		t.Fatal("page table not cleared")
	}
}

func TestTLBGeometryValidation(t *testing.T) {
	if _, err := NewTLB(0, 4); err == nil {
		t.Error("zero entries must be rejected")
	}
	if _, err := NewTLB(63, 4); err == nil {
		t.Error("entries not multiple of assoc must be rejected")
	}
	if _, err := NewTLB(24, 4); err == nil {
		t.Error("non-power-of-two sets must be rejected")
	}
}

func TestTLBLRU(t *testing.T) {
	tlb, err := NewTLB(4, 4) // one set, 4 ways
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 4; v++ {
		tlb.Insert(v, Translation{Frame: pcm.PageAddr(v)})
	}
	tlb.Lookup(0) // 0 is MRU
	tlb.Insert(9, Translation{Frame: 9})
	if _, ok := tlb.Lookup(0); !ok {
		t.Fatal("MRU entry must survive")
	}
	if _, ok := tlb.Lookup(1); ok {
		t.Fatal("LRU entry must have been evicted")
	}
}

func TestTLBStats(t *testing.T) {
	a := newAlloc(t)
	as, _ := NewAddressSpace(a, alloc.Tag11, 0)
	for i := 0; i < 10; i++ {
		as.Translate(7)
	}
	if as.TLB.Hits != 9 || as.TLB.Misses != 1 {
		t.Fatalf("TLB stats = %d/%d, want 9/1", as.TLB.Hits, as.TLB.Misses)
	}
}
