package snap

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	e := NewEncoder(1)
	e.Begin("outer")
	e.Uvarint(42)
	e.Varint(-7)
	e.Int(123456)
	e.U64(0xdeadbeefcafef00d)
	e.Bool(true)
	e.Bool(false)
	e.String("hello")
	e.Bytes([]byte{1, 2, 3})
	e.Begin("inner")
	e.Uvarint(7)
	e.End()
	e.End()
	data := e.Finish()

	d, err := NewDecoder(data, 1)
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	d.Begin("outer")
	if got := d.Uvarint(); got != 42 {
		t.Errorf("Uvarint = %d, want 42", got)
	}
	if got := d.Varint(); got != -7 {
		t.Errorf("Varint = %d, want -7", got)
	}
	if got := d.Int(); got != 123456 {
		t.Errorf("Int = %d, want 123456", got)
	}
	if got := d.U64(); got != 0xdeadbeefcafef00d {
		t.Errorf("U64 = %#x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Errorf("Bool round trip failed")
	}
	if got := d.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := d.Bytes(); string(got) != "\x01\x02\x03" {
		t.Errorf("Bytes = %v", got)
	}
	d.Begin("inner")
	if got := d.Uvarint(); got != 7 {
		t.Errorf("inner Uvarint = %d", got)
	}
	d.End()
	d.End()
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestVersionMismatch(t *testing.T) {
	data := NewEncoder(2).Finish()
	_, err := NewDecoder(data, 1)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("err = %v, want *VersionError", err)
	}
	if ve.Got != 2 || ve.Want != 1 {
		t.Errorf("VersionError = %+v", ve)
	}
	if !strings.Contains(err.Error(), "unsupported checkpoint version 2") {
		t.Errorf("message %q lacks version phrase", err.Error())
	}
}

func TestBadMagic(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("SD"), []byte("XXXX\x01\x00\x00\x00")} {
		if _, err := NewDecoder(data, 1); err == nil {
			t.Errorf("NewDecoder(%q) succeeded, want error", data)
		}
	}
}

// Every truncation of a valid snapshot must decode to an error, never panic.
func TestTruncationsError(t *testing.T) {
	e := NewEncoder(1)
	e.Begin("s")
	e.Uvarint(300)
	e.U64(7)
	e.String("abc")
	e.Bool(true)
	e.End()
	full := e.Finish()
	for n := headerLen; n < len(full); n++ {
		d, err := NewDecoder(full[:n], 1)
		if err != nil {
			continue // header itself truncated
		}
		d.Begin("s")
		d.Uvarint()
		d.U64()
		_ = d.String()
		d.Bool()
		d.End()
		if d.Close() == nil {
			t.Errorf("truncation to %d bytes decoded cleanly", n)
		}
	}
}

func TestSectionNameMismatch(t *testing.T) {
	e := NewEncoder(1)
	e.Begin("alpha")
	e.End()
	d, err := NewDecoder(e.Finish(), 1)
	if err != nil {
		t.Fatal(err)
	}
	d.Begin("beta")
	if d.Err() == nil || !strings.Contains(d.Err().Error(), `"alpha"`) {
		t.Errorf("Err = %v, want section-name mismatch naming alpha", d.Err())
	}
}

func TestLeftoverBytesRejected(t *testing.T) {
	e := NewEncoder(1)
	e.Begin("s")
	e.U64(1)
	e.U64(2)
	e.End()
	d, err := NewDecoder(e.Finish(), 1)
	if err != nil {
		t.Fatal(err)
	}
	d.Begin("s")
	d.U64() // reader consumes less than the writer wrote
	d.End()
	if err := d.Close(); err == nil || !strings.Contains(err.Error(), "unconsumed") {
		t.Errorf("Close = %v, want unconsumed-bytes error", err)
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	e := NewEncoder(1)
	e.Begin("s")
	e.End()
	data := append(e.Finish(), 0xff)
	d, err := NewDecoder(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.Begin("s")
	d.End()
	if err := d.Close(); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("Close = %v, want trailing-bytes error", err)
	}
}

func TestCorruptBool(t *testing.T) {
	e := NewEncoder(1)
	e.Begin("s")
	e.Bool(true)
	e.End()
	data := e.Finish()
	data[len(data)-1] = 0x7f // the bool byte is the section's last byte
	d, err := NewDecoder(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.Begin("s")
	d.Bool()
	if d.Err() == nil {
		t.Error("corrupt bool byte decoded cleanly")
	}
}

// A section length that overruns the file must be rejected up front, so the
// payload reads that follow cannot index out of range.
func TestOverrunningSectionLength(t *testing.T) {
	e := NewEncoder(1)
	e.Begin("s")
	e.U64(9)
	e.End()
	data := e.Finish()
	// The section length word sits right after the name "s" (uvarint 1 + 's').
	binary.LittleEndian.PutUint64(data[headerLen+2:], 1<<40)
	d, err := NewDecoder(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.Begin("s")
	if d.Err() == nil || !strings.Contains(d.Err().Error(), "overruns") {
		t.Errorf("Err = %v, want overrun error", d.Err())
	}
}

func TestStickyError(t *testing.T) {
	d, err := NewDecoder(NewEncoder(1).Finish(), 1)
	if err != nil {
		t.Fatal(err)
	}
	d.U64() // fails: no payload
	first := d.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	d.Uvarint()
	_ = d.String()
	if d.Err() != first {
		t.Errorf("later reads replaced the first error: %v", d.Err())
	}
}
