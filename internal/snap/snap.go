// Package snap is the versioned, self-describing binary container behind
// simulator checkpoints. A snapshot file is
//
//	"SDPC" | version u32 LE | sections...
//
// where each section is a length-framed, named byte range:
//
//	name string | payload length u64 LE | payload
//
// Sections nest, so a reader that only understands the outer structure can
// still walk (and report) the file, and a decoder for one subsystem fails
// loudly — with the section name — instead of silently misreading a
// neighbour's bytes. Primitives are uvarint/zig-zag varint for counts and
// fixed 64-bit little-endian words for raw state.
//
// Decoding never panics: every read is bounds-checked against both the file
// and the enclosing section, the first failure is recorded and all later
// reads become no-ops (the sticky-error style of bufio.Scanner), and Close
// rejects trailing garbage. A version mismatch is a typed *VersionError so
// callers can distinguish "old format" from "corrupt file".
//
// The package is a leaf: it imports only the standard library, so any layer
// of the simulator may depend on it without bending the import DAG.
package snap

import (
	"encoding/binary"
	"fmt"
)

// magic identifies a snapshot file; it never changes across versions.
const magic = "SDPC"

// headerLen is magic plus the fixed 32-bit version word.
const headerLen = len(magic) + 4

// VersionError reports a snapshot whose format version the running binary
// does not support.
type VersionError struct {
	Got, Want uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("unsupported checkpoint version %d (want %d)", e.Got, e.Want)
}

// Encoder builds a snapshot byte stream. Methods never fail; malformed use
// (unbalanced Begin/End) is a programming error caught by Finish.
type Encoder struct {
	buf  []byte
	open []int // offsets of section length words awaiting End
}

// NewEncoder starts a snapshot of the given format version.
func NewEncoder(version uint32) *Encoder {
	e := &Encoder{buf: make([]byte, 0, 1<<16)}
	e.buf = append(e.buf, magic...)
	e.buf = binary.LittleEndian.AppendUint32(e.buf, version)
	return e
}

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a zig-zag signed varint.
func (e *Encoder) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Int appends a signed machine int as a varint.
func (e *Encoder) Int(v int) { e.Varint(int64(v)) }

// U64 appends a fixed 8-byte little-endian word.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// Bool appends one byte, 0 or 1.
func (e *Encoder) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

// Bytes appends a length-prefixed byte slice.
func (e *Encoder) Bytes(p []byte) {
	e.Uvarint(uint64(len(p)))
	e.buf = append(e.buf, p...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Begin opens a named section; its length is patched in by End.
func (e *Encoder) Begin(name string) {
	e.String(name)
	e.open = append(e.open, len(e.buf))
	e.buf = append(e.buf, make([]byte, 8)...)
}

// End closes the innermost open section.
func (e *Encoder) End() {
	if len(e.open) == 0 {
		panic("snap: End without Begin")
	}
	at := e.open[len(e.open)-1]
	e.open = e.open[:len(e.open)-1]
	binary.LittleEndian.PutUint64(e.buf[at:at+8], uint64(len(e.buf)-at-8))
}

// Finish returns the completed snapshot bytes.
func (e *Encoder) Finish() []byte {
	if len(e.open) != 0 {
		panic(fmt.Sprintf("snap: Finish with %d unclosed sections", len(e.open)))
	}
	return e.buf
}

// Decoder reads a snapshot byte stream with a sticky first error: after a
// failure every read returns the zero value, so call sites decode straight
// through and check Err (or Close) once.
type Decoder struct {
	data []byte
	pos  int
	ends []int // enclosing section end offsets, innermost last
	err  error
}

// NewDecoder validates the header and positions a decoder at the first
// section. A mismatched version yields a *VersionError.
func NewDecoder(data []byte, wantVersion uint32) (*Decoder, error) {
	if len(data) < headerLen || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("snap: bad magic: not a checkpoint file")
	}
	v := binary.LittleEndian.Uint32(data[len(magic):headerLen])
	if v != wantVersion {
		return nil, &VersionError{Got: v, Want: wantVersion}
	}
	return &Decoder{data: data, pos: headerLen}, nil
}

// Err returns the first decoding failure, or nil.
func (d *Decoder) Err() error { return d.err }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snap: "+format, args...)
	}
}

// limit is the end of the readable range: the innermost section, or the file.
func (d *Decoder) limit() int {
	if n := len(d.ends); n > 0 {
		return d.ends[n-1]
	}
	return len(d.data)
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:d.limit()])
	if n <= 0 {
		d.fail("truncated or malformed uvarint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

// Varint reads a zig-zag signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.pos:d.limit()])
	if n <= 0 {
		d.fail("truncated or malformed varint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

// Int reads a signed machine int.
func (d *Decoder) Int() int { return int(d.Varint()) }

// U64 reads a fixed 8-byte little-endian word.
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.limit()-d.pos < 8 {
		d.fail("truncated u64 at offset %d", d.pos)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data[d.pos:])
	d.pos += 8
	return v
}

// Bool reads one byte that must be 0 or 1.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.limit()-d.pos < 1 {
		d.fail("truncated bool at offset %d", d.pos)
		return false
	}
	b := d.data[d.pos]
	d.pos++
	if b > 1 {
		d.fail("corrupt bool byte 0x%02x at offset %d", b, d.pos-1)
		return false
	}
	return b == 1
}

// Bytes reads a length-prefixed byte slice (aliasing the snapshot buffer).
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.limit()-d.pos) {
		d.fail("byte slice of %d overruns section at offset %d", n, d.pos)
		return nil
	}
	p := d.data[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return p
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes()) }

// Begin enters the next section, which must carry the given name.
func (d *Decoder) Begin(name string) {
	got := d.String()
	if d.err != nil {
		return
	}
	if got != name {
		d.fail("section %q where %q was expected", got, name)
		return
	}
	n := d.U64()
	if d.err != nil {
		return
	}
	if n > uint64(d.limit()-d.pos) {
		d.fail("section %q length %d overruns its container", name, n)
		return
	}
	d.ends = append(d.ends, d.pos+int(n))
}

// End leaves the innermost section, rejecting unconsumed payload — a
// length/content mismatch means the writer and reader disagree on the
// format, which must surface as an error, not as silently skipped state.
func (d *Decoder) End() {
	if d.err != nil {
		return
	}
	if len(d.ends) == 0 {
		d.fail("End without Begin")
		return
	}
	end := d.ends[len(d.ends)-1]
	if d.pos != end {
		d.fail("section has %d unconsumed bytes", end-d.pos)
		return
	}
	d.ends = d.ends[:len(d.ends)-1]
}

// Close finishes decoding: every section must be closed and every byte of
// the file consumed.
func (d *Decoder) Close() error {
	if d.err != nil {
		return d.err
	}
	if len(d.ends) != 0 {
		d.fail("%d sections left open", len(d.ends))
		return d.err
	}
	if d.pos != len(d.data) {
		d.fail("%d trailing bytes after the last section", len(d.data)-d.pos)
	}
	return d.err
}
