// Package prof wires the standard runtime/pprof file profiles into a CLI:
// one call after flag parsing starts the CPU profile, the returned stop
// function finishes it and writes the allocation profile. See EXPERIMENTS.md
// ("Profiling the simulator") for the analysis workflow.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the values of a command's -cpuprofile/-memprofile flags.
// Empty strings disable the corresponding profile.
type Flags struct {
	CPU string
	Mem string
}

// Start begins CPU profiling when requested and returns a stop function
// that finishes the CPU profile and writes the allocation profile. Call
// stop exactly once, on every path that ends the process — profiles are
// useless unless flushed.
func Start(f Flags) (stop func() error, err error) {
	var cpu *os.File
	if f.CPU != "" {
		cpu, err = os.Create(f.CPU)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, err
		}
	}
	return func() error {
		var err error
		if cpu != nil {
			pprof.StopCPUProfile()
			err = cpu.Close()
		}
		if f.Mem != "" {
			mf, merr := os.Create(f.Mem)
			if merr != nil {
				if err == nil {
					err = merr
				}
				return err
			}
			runtime.GC() // materialize up-to-date allocation statistics
			werr := pprof.Lookup("allocs").WriteTo(mf, 0)
			if cerr := mf.Close(); werr == nil {
				werr = cerr
			}
			if err == nil {
				err = werr
			}
		}
		return err
	}, nil
}
