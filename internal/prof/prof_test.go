package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(Flags{CPU: cpu, Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	// Allocate a little so the allocation profile has samples to record.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartDisabled(t *testing.T) {
	stop, err := Start(Flags{})
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Errorf("no-op stop: %v", err)
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(Flags{CPU: filepath.Join(t.TempDir(), "no", "such", "dir", "x")}); err == nil {
		t.Fatal("want error for uncreatable CPU profile path")
	}
}
