package wd

import (
	"sdpcm/internal/pcm"
)

// HeatCell is one bank × line-region bucket of the WD spatial heatmap.
type HeatCell struct {
	// Injected counts persistent bit-line flips applied to lines of this
	// region (the EvWDInjected quantity).
	Injected uint64 `json:"injected"`
	// Parked counts disturbed cells absorbed by LazyCorrection into free
	// ECP entries of lines in this region.
	Parked uint64 `json:"parked"`
	// Flushed counts disturbed cells RESET by correction writes here.
	Flushed uint64 `json:"flushed"`
	// CascadeSum / CascadeMax record the cascade depth of correction writes
	// landing in this region (sum over corrections, and the worst seen).
	CascadeSum uint64 `json:"cascade_sum"`
	// Corrections counts correction writes in this region (the CascadeSum
	// denominator).
	Corrections uint64 `json:"corrections"`
	CascadeMax  uint64 `json:"cascade_max"`
}

func (c *HeatCell) add(o HeatCell) {
	c.Injected += o.Injected
	c.Parked += o.Parked
	c.Flushed += o.Flushed
	c.CascadeSum += o.CascadeSum
	c.Corrections += o.Corrections
	if o.CascadeMax > c.CascadeMax {
		c.CascadeMax = o.CascadeMax
	}
}

// Heatmap accumulates WD activity per bank × line-region, exposing the
// spatial structure of disturbance that scalar counters flatten: which
// banks absorb the bit-line flips the µTrench model predicts, where
// LazyCorrection parks cluster, and how deep cascades run per region.
//
// A region is a contiguous band of device rows: region = row·R/rowsPerBank,
// so R regions tile each bank's row space evenly. A nil *Heatmap is the
// disabled form — every Record method is a no-op, so instrumented code pays
// one nil check when the heatmap is off.
//
// Like the metrics registry, a Heatmap belongs to one single-goroutine
// simulation run and must not be shared across concurrently executing runs.
type Heatmap struct {
	regions     int
	rowsPerBank int
	banks       int
	geo         pcm.Geometry
	cells       []HeatCell // bank-major: cells[bank*regions+region]
}

// NewHeatmap builds a heatmap with the given regions per bank over the
// default 16-bank DIMM layout. Returns nil (the disabled form) when regions
// or rowsPerBank is not positive.
func NewHeatmap(regions, rowsPerBank int) *Heatmap {
	return NewHeatmapGeo(regions, rowsPerBank, pcm.DefaultGeometry)
}

// NewHeatmapGeo builds a heatmap over an explicit bank layout (per-module
// heatmaps of a multi-module topology).
func NewHeatmapGeo(regions, rowsPerBank int, geo pcm.Geometry) *Heatmap {
	if regions <= 0 || rowsPerBank <= 0 {
		return nil
	}
	if regions > rowsPerBank {
		regions = rowsPerBank
	}
	return &Heatmap{
		regions:     regions,
		rowsPerBank: rowsPerBank,
		banks:       geo.Banks(),
		geo:         geo,
		cells:       make([]HeatCell, geo.Banks()*regions),
	}
}

// cell locates the accumulation bucket for a line address.
func (h *Heatmap) cell(a pcm.LineAddr) *HeatCell {
	loc := h.geo.Locate(a)
	region := loc.Row * h.regions / h.rowsPerBank
	if region >= h.regions { // row beyond the sized device; clamp
		region = h.regions - 1
	}
	return &h.cells[loc.Bank*h.regions+region]
}

// RecordInjected notes n persistent bit-line flips applied to line a.
func (h *Heatmap) RecordInjected(a pcm.LineAddr, n int) {
	if h == nil || n <= 0 {
		return
	}
	h.cell(a).Injected += uint64(n)
}

// RecordParked notes n disturbed cells parked in line a's ECP entries.
func (h *Heatmap) RecordParked(a pcm.LineAddr, n int) {
	if h == nil || n <= 0 {
		return
	}
	h.cell(a).Parked += uint64(n)
}

// RecordCorrection notes a correction write that RESET n disturbed cells of
// line a at the given cascade depth.
func (h *Heatmap) RecordCorrection(a pcm.LineAddr, n, depth int) {
	if h == nil {
		return
	}
	c := h.cell(a)
	c.Flushed += uint64(n)
	c.CascadeSum += uint64(depth)
	c.Corrections++
	if uint64(depth) > c.CascadeMax {
		c.CascadeMax = uint64(depth)
	}
}

// Snapshot exports the heatmap. Returns nil on a nil heatmap.
func (h *Heatmap) Snapshot() *HeatmapSnapshot {
	if h == nil {
		return nil
	}
	s := &HeatmapSnapshot{
		Banks:   h.banks,
		Regions: h.regions,
		Cells:   make([][]HeatCell, h.banks),
	}
	for b := 0; b < h.banks; b++ {
		s.Cells[b] = append([]HeatCell(nil), h.cells[b*h.regions:(b+1)*h.regions]...)
	}
	return s
}

// HeatmapSnapshot is an exported heatmap: Cells[bank][region], both indices
// dense. The zero value is empty; a nil snapshot (heatmap disabled) is
// accepted by Merge and the obs renderers.
type HeatmapSnapshot struct {
	Banks   int          `json:"banks"`
	Regions int          `json:"regions"`
	Cells   [][]HeatCell `json:"cells"`
}

// Merge folds another snapshot into an aggregate, cell by cell. Addition is
// commutative, so a merge over a set of snapshots is deterministic
// regardless of arrival order — the property the parallel sweep aggregator
// relies on. Merging snapshots of different shapes keeps the receiver
// unchanged (sweeps share one device sizing, so shapes always match there).
func (s *HeatmapSnapshot) Merge(o *HeatmapSnapshot) *HeatmapSnapshot {
	if o == nil {
		return s
	}
	if s == nil {
		s = &HeatmapSnapshot{Banks: o.Banks, Regions: o.Regions}
		for _, row := range o.Cells {
			s.Cells = append(s.Cells, append([]HeatCell(nil), row...))
		}
		return s
	}
	if s.Banks != o.Banks || s.Regions != o.Regions {
		return s
	}
	for b := range s.Cells {
		for r := range s.Cells[b] {
			s.Cells[b][r].add(o.Cells[b][r])
		}
	}
	return s
}

// Total sums a projection over every cell.
func (s *HeatmapSnapshot) Total(f func(HeatCell) uint64) uint64 {
	if s == nil {
		return 0
	}
	var t uint64
	for _, row := range s.Cells {
		for _, c := range row {
			t += f(c)
		}
	}
	return t
}
