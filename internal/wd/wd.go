// Package wd is the write-disturbance engine: it converts the RESET pulse
// map of each line write into manifested bit errors, following the
// vulnerability rules of §2.2.1:
//
//   - only RESET pulses disturb (SET heat is 4x lower and ignorable);
//   - only *idle* cells can be disturbed (a cell programmed by this write is
//     re-annealed by its own pulse);
//   - only amorphous ('0') cells are vulnerable — a disturbed cell partially
//     crystallises and its stored 0 reads as 1.
//
// Three disturbance surfaces are modelled per write:
//
//  1. In-line word-line WD. Victims inside the written line are caught by
//     the write circuit's program-and-verify loop (the DIN "checks and
//     rewrites"): each flip is rewritten with a fresh RESET pulse, which can
//     itself disturb, so the loop iterates until quiescent. These errors
//     never escape the write operation; they cost rewrite pulses (wear) and
//     are the word-line errors Figure 4(a) counts.
//  2. Cross-line word-line WD. A RESET on the first/last cell of a chip
//     segment can disturb the edge cell of the horizontally adjacent line in
//     the same row. The row-internal verify heals them in place (counted,
//     plus one heal pulse of wear; no timing event — identical across all
//     compared schemes).
//  3. Bit-line WD. Every RESET pulse threatens the same cell position of the
//     two vertically adjacent lines (same bank, rows r±1 — pages ±16). These
//     flips are applied to the array and are NOT healed here: detecting and
//     correcting them is exactly the VnC / LazyCorrection machinery of the
//     memory controller (§3.2, §4.2). Figure 4(b) counts them.
package wd

import (
	"sdpcm/internal/din"
	"sdpcm/internal/metrics"
	"sdpcm/internal/pcm"
	"sdpcm/internal/rng"
	"sdpcm/internal/thermal"
)

// Stats aggregates engine activity.
type Stats struct {
	WritesObserved uint64
	// InLineErrors are manifested word-line flips inside the written line.
	InLineErrors uint64
	// EdgeErrors are manifested word-line flips in horizontally adjacent
	// lines of the same row.
	EdgeErrors uint64
	// RewritePulses are RESET pulses spent re-annealing in-line flips.
	RewritePulses uint64
	// EdgeHealPulses are RESET pulses spent healing edge flips.
	EdgeHealPulses uint64
	// BitLineFlips are persistent disturbance errors applied to vertically
	// adjacent lines (the errors VnC must find).
	BitLineFlips uint64
	// MaxWordLinePerWrite and MaxBitLinePerLine track the worst single
	// write observed (the "max" bars of Figure 4).
	MaxWordLinePerWrite int
	MaxBitLinePerLine   int
}

// Add accumulates another Stats value: counters sum, worst-case fields take
// the max. Order-independent, so per-bank engine shards merge commutatively.
func (s *Stats) Add(o Stats) {
	s.WritesObserved += o.WritesObserved
	s.InLineErrors += o.InLineErrors
	s.EdgeErrors += o.EdgeErrors
	s.RewritePulses += o.RewritePulses
	s.EdgeHealPulses += o.EdgeHealPulses
	s.BitLineFlips += o.BitLineFlips
	s.MaxWordLinePerWrite = max(s.MaxWordLinePerWrite, o.MaxWordLinePerWrite)
	s.MaxBitLinePerLine = max(s.MaxBitLinePerLine, o.MaxBitLinePerLine)
}

// Engine injects disturbance for one DIMM. Not safe for concurrent use.
type Engine struct {
	Rates thermal.Rates
	Stats Stats

	// Now is the simulated cycle trace events are stamped with; the memory
	// controller sets it to the write op's start time before OnWrite.
	Now uint64

	rnd *rng.Rand
	tr  *metrics.Trace
	hm  *Heatmap
}

// New builds an engine with the given per-axis disturbance probabilities.
func New(rates thermal.Rates, rnd *rng.Rand) *Engine {
	return &Engine{Rates: rates, rnd: rnd}
}

// Instrument attaches an event trace; injected bit-line errors are emitted
// as EvWDInjected events. A nil trace leaves the engine silent.
func (e *Engine) Instrument(tr *metrics.Trace) { e.tr = tr }

// InstrumentHeatmap attaches a spatial heatmap; injected bit-line flips are
// accumulated per bank × line-region. A nil heatmap leaves the engine
// unchanged (the disabled form records nothing).
func (e *Engine) InstrumentHeatmap(h *Heatmap) { e.hm = h }

// Outcome reports the disturbance consequences of one line write.
type Outcome struct {
	// WordLineErrors is the number of manifested word-line errors
	// (in-line + edge), the Figure 4(a) quantity.
	WordLineErrors int
	// RewritePulses is the extra RESET pulse count spent fixing them.
	RewritePulses int
	// FinalReset is the effective aggressor map after rewrites — the pulse
	// map whose edges threaten neighbours.
	FinalReset pcm.Mask
	// Above / Below are the persistent flips applied to the bit-line
	// neighbours (zero masks when the neighbour does not exist or no flips
	// occurred). The Figure 4(b) quantity is AboveCount+BelowCount.
	Above, Below           pcm.Mask
	AboveCount, BelowCount int
}

// sample returns the subset of mask whose bits each flip with probability p.
// The visit order (ascending bit index) fixes the RNG consumption order and
// is part of the repository's determinism contract: golden tables and
// equivalence fingerprints depend on it. The allocation-free visitor keeps
// this — the hottest per-write loop — off the heap entirely.
func (e *Engine) sample(mask pcm.Mask, p float64) pcm.Mask {
	var out pcm.Mask
	if p <= 0 || !mask.Any() {
		return out
	}
	mask.VisitBits(func(b int) bool {
		if e.rnd.Bernoulli(p) {
			out.SetBit(b)
		}
		return true
	})
	return out
}

// OnWrite injects the disturbance of writing line a: old and new are the
// stored images before/after, reset and set the differential pulse maps.
// The device must already hold the new image; bit-line flips are applied to
// it in place.
func (e *Engine) OnWrite(dev *pcm.Device, a pcm.LineAddr, old, new pcm.Line, reset, set pcm.Mask) Outcome {
	e.Stats.WritesObserved++
	out := Outcome{}

	// --- 1. In-line word-line WD with verify-and-rewrite loop. ---
	pulsed := reset.Or(set) // cells programmed so far (not idle)
	agg := reset            // this round's disturbing pulses
	finalReset := reset
	for agg.Any() {
		vuln := din.Vulnerable(agg, old, new).AndNot(pulsed)
		flips := e.sample(vuln, e.Rates.WordLine)
		if !flips.Any() {
			break
		}
		n := flips.PopCount()
		out.WordLineErrors += n
		out.RewritePulses += n
		e.Stats.InLineErrors += uint64(n)
		e.Stats.RewritePulses += uint64(n)
		pulsed = pulsed.Or(flips)
		finalReset = finalReset.Or(flips)
		agg = flips
	}
	out.FinalReset = finalReset

	// --- 2. Cross-line word-line WD at chip-segment edges. ---
	if e.Rates.WordLine > 0 {
		edges := din.Edges(finalReset)
		slot := a.Slot()
		if slot > 0 {
			n := e.edgeFlips(dev, a-1, edges.LeftAggressor, din.SegmentBits-1)
			out.WordLineErrors += n
		}
		if slot < pcm.LinesPerPage-1 {
			n := e.edgeFlips(dev, a+1, edges.RightAggressor, 0)
			out.WordLineErrors += n
		}
	}

	// --- 3. Bit-line WD on vertically adjacent lines. ---
	if e.Rates.BitLine > 0 {
		above, below, okA, okB := dev.Geometry().AdjacentLines(a, dev.RowsPerBank)
		if okA {
			out.Above, out.AboveCount = e.bitLineFlips(dev, above, finalReset)
		}
		if okB {
			out.Below, out.BelowCount = e.bitLineFlips(dev, below, finalReset)
		}
	}
	if out.WordLineErrors > e.Stats.MaxWordLinePerWrite {
		e.Stats.MaxWordLinePerWrite = out.WordLineErrors
	}
	if out.AboveCount > e.Stats.MaxBitLinePerLine {
		e.Stats.MaxBitLinePerLine = out.AboveCount
	}
	if out.BelowCount > e.Stats.MaxBitLinePerLine {
		e.Stats.MaxBitLinePerLine = out.BelowCount
	}
	return out
}

// edgeFlips disturbs the edge cells of a horizontally adjacent line. For
// each chip segment with an aggressor, the victim is the neighbour line's
// cell at offsetInSeg of that segment; it flips if amorphous. Flips are
// healed in place (net array change: none) and counted.
func (e *Engine) edgeFlips(dev *pcm.Device, neighbour pcm.LineAddr, aggressor [pcm.LineBits / din.SegmentBits]bool, offsetInSeg int) int {
	content := dev.Peek(neighbour)
	n := 0
	for seg, agg := range aggressor {
		if !agg {
			continue
		}
		bit := seg*din.SegmentBits + offsetInSeg
		if content.Bit(bit) == 0 && e.rnd.Bernoulli(e.Rates.WordLine) {
			n++
		}
	}
	if n > 0 {
		e.Stats.EdgeErrors += uint64(n)
		e.Stats.EdgeHealPulses += uint64(n)
	}
	return n
}

// bitLineFlips disturbs a vertically adjacent line: every aggressor RESET
// position whose counterpart cell is amorphous flips with the bit-line rate.
// The flips persist in the array until VnC corrects them.
func (e *Engine) bitLineFlips(dev *pcm.Device, neighbour pcm.LineAddr, aggressors pcm.Mask) (pcm.Mask, int) {
	content := dev.Peek(neighbour)
	var vulnerable pcm.Mask
	for i := range aggressors {
		vulnerable[i] = aggressors[i] & ^content[i]
	}
	flips := e.sample(vulnerable, e.Rates.BitLine)
	n := flips.PopCount()
	if n > 0 {
		dev.Disturb(neighbour, flips)
		e.Stats.BitLineFlips += uint64(n)
		e.hm.RecordInjected(neighbour, n)
		if e.tr != nil {
			e.tr.Emit(e.Now, metrics.EvWDInjected, uint64(neighbour), uint64(n), 0)
		}
	}
	return flips, n
}
