package wd

import "sdpcm/internal/metrics"

// Publish exports the engine counters into reg under the "wd." prefix.
// Called once at end of run; a nil registry is a no-op.
func (s Stats) Publish(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("wd.writes_observed").Add(s.WritesObserved)
	reg.Counter("wd.inline_errors").Add(s.InLineErrors)
	reg.Counter("wd.edge_errors").Add(s.EdgeErrors)
	reg.Counter("wd.rewrite_pulses").Add(s.RewritePulses)
	reg.Counter("wd.edge_heal_pulses").Add(s.EdgeHealPulses)
	reg.Counter("wd.bitline_flips").Add(s.BitLineFlips)
	reg.Gauge("wd.max_wordline_per_write").Set(uint64(s.MaxWordLinePerWrite))
	reg.Gauge("wd.max_bitline_per_line").Set(uint64(s.MaxBitLinePerLine))
}
