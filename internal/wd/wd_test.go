package wd

import (
	"testing"

	"sdpcm/internal/pcm"
	"sdpcm/internal/rng"
	"sdpcm/internal/thermal"
)

func newDev(t *testing.T, zero bool) *pcm.Device {
	t.Helper()
	d, err := pcm.NewDevice(pcm.Config{Pages: 16 * 4, FillSeed: 3, ZeroFill: zero})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

var denseRates = thermal.RatesFor(2, 2, 20)

// writeAndDisturb performs a device write and runs the engine on it.
func writeAndDisturb(e *Engine, dev *pcm.Device, a pcm.LineAddr, data pcm.Line) Outcome {
	old := dev.Peek(a)
	res := dev.Write(a, data, pcm.NormalWrite)
	return e.OnWrite(dev, a, old, data, res.Reset, res.Set)
}

func TestNoRatesNoErrors(t *testing.T) {
	dev := newDev(t, false)
	e := New(thermal.Rates{}, rng.New(1))
	// Page in the middle so both neighbours exist.
	a := pcm.LineOf(32, 5)
	var data pcm.Line // all zero over random background: many RESETs
	out := writeAndDisturb(e, dev, a, data)
	if out.WordLineErrors != 0 || out.AboveCount != 0 || out.BelowCount != 0 {
		t.Fatalf("WD-free rates produced errors: %+v", out)
	}
}

func TestSetOnlyWriteDisturbsNothing(t *testing.T) {
	dev := newDev(t, true) // all amorphous
	e := New(denseRates, rng.New(2))
	var ones pcm.Line
	for i := range ones {
		ones[i] = ^uint64(0)
	}
	a := pcm.LineOf(32, 0)
	out := writeAndDisturb(e, dev, a, ones) // pure SET write
	if out.WordLineErrors != 0 || out.AboveCount != 0 || out.BelowCount != 0 {
		t.Fatalf("SET-only write disturbed cells: %+v", out)
	}
	if out.FinalReset.Any() {
		t.Fatal("SET-only write must have an empty aggressor map")
	}
}

func TestBitLineFlipsRate(t *testing.T) {
	// Write a full-RESET line over an all-ones line; neighbours all zero:
	// every one of the 512 neighbour cells is vulnerable, each flips with
	// p=11.5%. Repeat and check the empirical rate.
	var totalVuln, totalFlips int
	e := New(thermal.Rates{BitLine: denseRates.BitLine}, rng.New(3))
	for trial := 0; trial < 60; trial++ {
		dev := newDev(t, true)
		a := pcm.LineOf(32, 1)
		var ones pcm.Line
		for i := range ones {
			ones[i] = ^uint64(0)
		}
		dev.Write(a, ones, pcm.NormalWrite) // prime: all crystalline
		out := writeAndDisturb(e, dev, a, pcm.Line{})
		totalVuln += 2 * pcm.LineBits // both neighbours fully vulnerable
		totalFlips += out.AboveCount + out.BelowCount
	}
	rate := float64(totalFlips) / float64(totalVuln)
	if rate < 0.095 || rate > 0.135 {
		t.Fatalf("empirical bit-line flip rate %v, want ~0.115", rate)
	}
}

func TestBitLineFlipsPersistInArray(t *testing.T) {
	dev := newDev(t, true)
	e := New(thermal.Rates{BitLine: 1.0}, rng.New(4)) // deterministic flips
	a := pcm.LineOf(32, 2)
	above, below, okA, okB := pcm.AdjacentLines(a, dev.RowsPerBank)
	if !okA || !okB {
		t.Fatal("test line must have both neighbours")
	}
	var ones pcm.Line
	ones[0] = 0xff
	dev.Write(a, ones, pcm.NormalWrite)
	out := writeAndDisturb(e, dev, a, pcm.Line{}) // 8 RESET pulses
	if out.AboveCount != 8 || out.BelowCount != 8 {
		t.Fatalf("flip counts = %d/%d, want 8/8", out.AboveCount, out.BelowCount)
	}
	if dev.Peek(above)[0] != 0xff || dev.Peek(below)[0] != 0xff {
		t.Fatal("flips must persist in the array until corrected")
	}
}

func TestBitLineOnlyVulnerableCellsFlip(t *testing.T) {
	dev := newDev(t, true)
	e := New(thermal.Rates{BitLine: 1.0}, rng.New(5))
	a := pcm.LineOf(32, 3)
	above, _, _, _ := pcm.AdjacentLines(a, dev.RowsPerBank)
	// Neighbour holds 1s at positions 0..3 (crystalline: invulnerable).
	var n pcm.Line
	n[0] = 0xf
	dev.Write(above, n, pcm.NormalWrite)
	// Write RESET pulses at positions 0..7 of a.
	var ones pcm.Line
	ones[0] = 0xff
	dev.Write(a, ones, pcm.NormalWrite)
	out := writeAndDisturb(e, dev, a, pcm.Line{})
	if out.AboveCount != 4 {
		t.Fatalf("above flips = %d, want 4 (only amorphous cells)", out.AboveCount)
	}
	if out.Above.Bit(0) != 0 || out.Above.Bit(4) != 1 {
		t.Fatalf("flip mask = %v", out.Above.Bits())
	}
}

func TestRowBoundariesHaveOneNeighbour(t *testing.T) {
	dev := newDev(t, true)
	e := New(thermal.Rates{BitLine: 1.0}, rng.New(6))
	// Row 0 (pages 0..15): no above neighbour.
	a := pcm.LineOf(0, 0)
	var ones pcm.Line
	ones[0] = 0xff
	dev.Write(a, ones, pcm.NormalWrite)
	out := writeAndDisturb(e, dev, a, pcm.Line{})
	if out.AboveCount != 0 {
		t.Fatal("row 0 must have no above flips")
	}
	if out.BelowCount != 8 {
		t.Fatalf("below flips = %d, want 8", out.BelowCount)
	}
}

func TestInLineRewriteLoopCounts(t *testing.T) {
	// With word-line rate 1.0 and a run of idle zeros next to a RESET, the
	// rewrite loop must walk the whole run: flip, rewrite, flip next...
	dev := newDev(t, true)
	e := New(thermal.Rates{WordLine: 1.0}, rng.New(7))
	a := pcm.LineOf(32, 4)
	var prime pcm.Line
	prime[0] = 1 << 10 // one crystalline cell at bit 10
	dev.Write(a, prime, pcm.NormalWrite)
	out := writeAndDisturb(e, dev, a, pcm.Line{}) // RESET bit 10
	// Bits 9 and 11 flip and are rewritten; then 8 and 12; ... the cascade
	// covers the rest of segment 0 (63 other cells). Once it reaches the
	// segment edges, those rewrite pulses also disturb the edge cells of
	// slots 3 and 5 (2 more manifested word-line errors).
	if e.Stats.InLineErrors != 63 {
		t.Fatalf("cascade flipped %d in-line cells, want 63", e.Stats.InLineErrors)
	}
	if out.WordLineErrors != 65 {
		t.Fatalf("manifested word-line errors = %d, want 63 in-line + 2 edge", out.WordLineErrors)
	}
	if out.RewritePulses != 63 {
		t.Fatalf("rewrite pulses = %d", out.RewritePulses)
	}
	// The final image must still be correct (all zero).
	if dev.Peek(a) != (pcm.Line{}) {
		t.Fatal("verify-rewrite must leave the line correct")
	}
}

func TestInLineLoopTerminatesAtModeratedRate(t *testing.T) {
	dev := newDev(t, false)
	e := New(denseRates, rng.New(8))
	for i := 0; i < 200; i++ {
		a := pcm.LineOf(pcm.PageAddr(16+i%32), i%64)
		var data pcm.Line
		for w := range data {
			data[w] = uint64(i) * 0x9e3779b97f4a7c15 >> (uint(w) % 8)
		}
		writeAndDisturb(e, dev, a, data)
	}
	// Statistical sanity: with p≈10%, manifested word-line errors should be
	// modest — far below one per aggressor — and the engine must terminate
	// (reaching here proves it).
	if e.Stats.InLineErrors == 0 && e.Stats.EdgeErrors == 0 {
		t.Log("no word-line errors manifested in 200 writes (possible but unusual)")
	}
	perWrite := float64(e.Stats.InLineErrors) / float64(e.Stats.WritesObserved)
	if perWrite > 20 {
		t.Fatalf("in-line errors per write = %v, runaway cascade", perWrite)
	}
}

func TestEdgeErrorsCounted(t *testing.T) {
	dev := newDev(t, true)
	e := New(thermal.Rates{WordLine: 1.0}, rng.New(9))
	a := pcm.LineOf(32, 5) // slots 4 and 6 exist
	// Prime line with crystalline cells at every segment edge so RESETs
	// fire there.
	var prime pcm.Line
	for seg := 0; seg < 8; seg++ {
		prime.SetBit(seg*64, 1)
		prime.SetBit(seg*64+63, 1)
	}
	dev.Write(a, prime, pcm.NormalWrite)
	out := writeAndDisturb(e, dev, a, pcm.Line{})
	// 8 left edges threaten slot 4's right edge cells (all amorphous) and 8
	// right edges threaten slot 6's left edge cells; rate 1.0 flips all 16.
	// In-line victims also cascade; edge errors are at least 16 of total.
	if e.Stats.EdgeErrors != 16 {
		t.Fatalf("edge errors = %d, want 16", e.Stats.EdgeErrors)
	}
	if out.WordLineErrors < 16 {
		t.Fatalf("word-line errors = %d, want >= 16", out.WordLineErrors)
	}
}

func TestSlotBoundariesNoEdgeNeighbour(t *testing.T) {
	dev := newDev(t, true)
	e := New(thermal.Rates{WordLine: 1.0}, rng.New(10))
	a := pcm.LineOf(32, 0) // slot 0: no left neighbour
	// Prime everything crystalline so the single RESET at bit 0 cannot
	// cascade (idle crystalline cells are invulnerable).
	var prime pcm.Line
	for i := range prime {
		prime[i] = ^uint64(0)
	}
	dev.Write(a, prime, pcm.NormalWrite)
	target := prime
	target.SetBit(0, 0) // exactly one RESET, at segment 0's left edge
	before := e.Stats.EdgeErrors
	writeAndDisturb(e, dev, a, target)
	if e.Stats.EdgeErrors != before {
		t.Fatal("slot 0 left edge must not disturb a non-existent neighbour")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() Stats {
		dev, _ := pcm.NewDevice(pcm.Config{Pages: 64, FillSeed: 3})
		e := New(denseRates, rng.New(42))
		for i := 0; i < 100; i++ {
			a := pcm.LineOf(pcm.PageAddr(16+i%32), i%64)
			var data pcm.Line
			data[i%8] = uint64(i) * 0xdeadbeef
			old := dev.Peek(a)
			res := dev.Write(a, data, pcm.NormalWrite)
			e.OnWrite(dev, a, old, data, res.Reset, res.Set)
		}
		return e.Stats
	}
	if run() != run() {
		t.Fatal("engine must be deterministic under a fixed seed")
	}
}

func TestFig4ShapeAtDefaults(t *testing.T) {
	// Smoke-check the Figure 4 shape: with realistic data, bit-line errors
	// per adjacent line are on the order of a couple per write, word-line
	// errors well below one.
	dev := newDev(t, false)
	e := New(denseRates, rng.New(11))
	rnd := rng.New(99)
	const writes = 2000
	for i := 0; i < writes; i++ {
		a := pcm.LineOf(pcm.PageAddr(16+rnd.Intn(32)), rnd.Intn(64))
		old := dev.Peek(a)
		// Realistic write: mutate a fraction of the words.
		data := old
		for w := range data {
			if rnd.Bernoulli(0.5) {
				data[w] = rnd.Uint64()
			}
		}
		res := dev.Write(a, data, pcm.NormalWrite)
		e.OnWrite(dev, a, old, data, res.Reset, res.Set)
	}
	wlPerWrite := float64(e.Stats.InLineErrors+e.Stats.EdgeErrors) / writes
	blPerNeighbour := float64(e.Stats.BitLineFlips) / (2 * writes)
	if wlPerWrite > 3 {
		t.Errorf("word-line errors per write = %v, want < 3 (paper: ~0.4)", wlPerWrite)
	}
	if blPerNeighbour < 0.5 || blPerNeighbour > 15 {
		t.Errorf("bit-line errors per neighbour = %v, want O(1)-O(10) (paper: ~2)", blPerNeighbour)
	}
	if wlPerWrite >= blPerNeighbour {
		t.Errorf("word-line (%v) must be rarer than bit-line (%v)", wlPerWrite, blPerNeighbour)
	}
}
