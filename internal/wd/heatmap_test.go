package wd

import (
	"reflect"
	"testing"

	"sdpcm/internal/pcm"
)

func TestHeatmapNilForms(t *testing.T) {
	if NewHeatmap(0, 64) != nil || NewHeatmap(8, 0) != nil || NewHeatmap(-1, 64) != nil {
		t.Fatal("non-positive shapes must yield the disabled (nil) heatmap")
	}
	var h *Heatmap
	// All recorders must be nil-safe no-ops.
	h.RecordInjected(0, 3)
	h.RecordParked(0, 2)
	h.RecordCorrection(0, 1, 4)
	if h.Snapshot() != nil {
		t.Fatal("nil heatmap must snapshot to nil")
	}
}

func TestHeatmapRegionsClampedToRows(t *testing.T) {
	h := NewHeatmap(1000, 8)
	s := h.Snapshot()
	if s.Regions != 8 {
		t.Fatalf("regions = %d, want clamp to rowsPerBank 8", s.Regions)
	}
}

func TestHeatmapRecordAndSnapshot(t *testing.T) {
	// One region per row keeps the geometry transparent.
	rows := 4
	h := NewHeatmap(rows, rows)
	a := pcm.LineAddr(5)
	loc := pcm.Locate(a)
	h.RecordInjected(a, 3)
	h.RecordParked(a, 2)
	h.RecordCorrection(a, 4, 2)
	h.RecordCorrection(a, 1, 5)
	s := h.Snapshot()
	if s.Banks != pcm.NumBanks || s.Regions != rows {
		t.Fatalf("shape = %dx%d", s.Banks, s.Regions)
	}
	c := s.Cells[loc.Bank][loc.Row] // region == row here
	want := HeatCell{Injected: 3, Parked: 2, Flushed: 5, CascadeSum: 7, Corrections: 2, CascadeMax: 5}
	if c != want {
		t.Fatalf("cell = %+v, want %+v", c, want)
	}
	// Everything else stays zero.
	var total HeatCell
	for _, row := range s.Cells {
		for _, cc := range row {
			total.add(cc)
		}
	}
	if total != want {
		t.Fatalf("stray accumulation: total = %+v", total)
	}
	// Zero and negative counts are ignored.
	h.RecordInjected(a, 0)
	h.RecordParked(a, -1)
	if got := h.Snapshot().Cells[loc.Bank][loc.Row]; got != want {
		t.Fatalf("no-op records changed the cell: %+v", got)
	}
}

func TestHeatmapSnapshotIsACopy(t *testing.T) {
	h := NewHeatmap(2, 64)
	h.RecordInjected(0, 1)
	s := h.Snapshot()
	h.RecordInjected(0, 100)
	if s.Total(func(c HeatCell) uint64 { return c.Injected }) != 1 {
		t.Fatal("snapshot aliased live heatmap storage")
	}
}

func TestHeatmapMerge(t *testing.T) {
	mk := func(addr pcm.LineAddr, n int) *HeatmapSnapshot {
		h := NewHeatmap(4, 64)
		h.RecordInjected(addr, n)
		h.RecordCorrection(addr, n, n)
		return h.Snapshot()
	}
	a, b := mk(3, 2), mk(77, 5)
	// Merge is commutative, so both orders agree.
	ab := mk(3, 2).Merge(b)
	ba := mk(77, 5).Merge(a)
	if !reflect.DeepEqual(ab, ba) {
		t.Fatalf("merge not commutative:\n%+v\n%+v", ab, ba)
	}
	if got := ab.Total(func(c HeatCell) uint64 { return c.Injected }); got != 7 {
		t.Fatalf("merged injected = %d, want 7", got)
	}
	if got := ab.Total(func(c HeatCell) uint64 { return c.CascadeMax }); got < 5 {
		t.Fatalf("merged cascade max lost the larger value: %d", got)
	}

	// Nil handling: nil receiver adopts a deep copy; nil argument is a no-op.
	var nilSnap *HeatmapSnapshot
	adopted := nilSnap.Merge(a)
	if !reflect.DeepEqual(adopted, a) {
		t.Fatal("nil.Merge(a) must equal a")
	}
	adopted.Cells[0][0].Injected += 9
	if reflect.DeepEqual(adopted, a) {
		t.Fatal("nil.Merge(a) aliased a's cells")
	}
	if got := a.Merge(nil); got != a {
		t.Fatal("a.Merge(nil) must return the receiver")
	}

	// Shape mismatch keeps the receiver unchanged.
	other := &HeatmapSnapshot{Banks: 1, Regions: 1, Cells: [][]HeatCell{{{Injected: 99}}}}
	before := a.Total(func(c HeatCell) uint64 { return c.Injected })
	if after := a.Merge(other).Total(func(c HeatCell) uint64 { return c.Injected }); after != before {
		t.Fatalf("shape-mismatched merge changed the receiver: %d -> %d", before, after)
	}
}
