package wd

import (
	"testing"

	"sdpcm/internal/pcm"
	"sdpcm/internal/rng"
)

// BenchmarkWDInject measures the full per-write disturbance injection —
// in-line verify-and-rewrite sampling, segment-edge flips and bit-line
// victim flips — on a warmed dense device. Pinned in the benchstat CI gate.
func BenchmarkWDInject(b *testing.B) {
	dev, err := pcm.NewDevice(pcm.Config{Pages: 64, FillSeed: 3})
	if err != nil {
		b.Fatal(err)
	}
	e := New(denseRates, rng.New(7))
	const n = 1024
	addrs := make([]pcm.LineAddr, n)
	datas := make([]pcm.Line, n)
	r := rng.New(5)
	for i := range addrs {
		addrs[i] = pcm.LineOf(pcm.PageAddr(16+r.Intn(32)), r.Intn(pcm.LinesPerPage))
		for w := range datas[i] {
			datas[i][w] = r.Uint64()
		}
	}
	// Warm-up pass materializes every chunk the loop will touch.
	for i := range addrs {
		writeAndDisturb(e, dev, addrs[i], datas[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % n
		old := dev.Peek(addrs[j])
		res := dev.Write(addrs[j], datas[j], pcm.NormalWrite)
		e.OnWrite(dev, addrs[j], old, datas[j], res.Reset, res.Set)
	}
}

// TestOnWriteAllocFree pins the WD sample path at zero allocations: the
// Bernoulli sampling over pulse maps runs through the allocation-free
// mask visitor.
func TestOnWriteAllocFree(t *testing.T) {
	dev, err := pcm.NewDevice(pcm.Config{Pages: 64, FillSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := New(denseRates, rng.New(7))
	a := pcm.LineOf(32, 5)
	var img [2]pcm.Line
	img[1] = pcm.Line{^uint64(0), 0, ^uint64(0), 0, ^uint64(0), 0, ^uint64(0), 0}
	// Warm up: materialize the written line's and both victims' chunks.
	writeAndDisturb(e, dev, a, img[0])
	writeAndDisturb(e, dev, a, img[1])
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		i++
		writeAndDisturb(e, dev, a, img[i%2])
	}); n != 0 {
		t.Errorf("OnWrite allocates %v/run", n)
	}
}
