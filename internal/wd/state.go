package wd

import (
	"fmt"

	"sdpcm/internal/snap"
)

// EncodeState serializes the engine's mutable state: counters, the event
// timestamp and the RNG stream position. Rates and the trace/heatmap
// instruments are construction parameters.
func (e *Engine) EncodeState(enc *snap.Encoder) {
	enc.Begin("wd.engine")
	enc.U64(e.Stats.WritesObserved)
	enc.U64(e.Stats.InLineErrors)
	enc.U64(e.Stats.EdgeErrors)
	enc.U64(e.Stats.RewritePulses)
	enc.U64(e.Stats.EdgeHealPulses)
	enc.U64(e.Stats.BitLineFlips)
	enc.Int(e.Stats.MaxWordLinePerWrite)
	enc.Int(e.Stats.MaxBitLinePerLine)
	enc.U64(e.Now)
	for _, w := range e.rnd.State() {
		enc.U64(w)
	}
	enc.End()
}

// DecodeState restores state written by EncodeState.
func (e *Engine) DecodeState(d *snap.Decoder) error {
	d.Begin("wd.engine")
	e.Stats.WritesObserved = d.U64()
	e.Stats.InLineErrors = d.U64()
	e.Stats.EdgeErrors = d.U64()
	e.Stats.RewritePulses = d.U64()
	e.Stats.EdgeHealPulses = d.U64()
	e.Stats.BitLineFlips = d.U64()
	e.Stats.MaxWordLinePerWrite = d.Int()
	e.Stats.MaxBitLinePerLine = d.Int()
	e.Now = d.U64()
	var s [4]uint64
	for i := range s {
		s[i] = d.U64()
	}
	e.rnd.SetState(s)
	d.End()
	return d.Err()
}

// EncodeState serializes the heatmap cells. Nil-safe: the disabled form
// encodes a zero cell count, matching the disabled form on decode.
func (h *Heatmap) EncodeState(e *snap.Encoder) {
	e.Begin("wd.heatmap")
	if h == nil {
		e.Uvarint(0)
		e.End()
		return
	}
	e.Uvarint(uint64(len(h.cells)))
	for i := range h.cells {
		c := &h.cells[i]
		e.U64(c.Injected)
		e.U64(c.Parked)
		e.U64(c.Flushed)
		e.U64(c.CascadeSum)
		e.U64(c.Corrections)
		e.U64(c.CascadeMax)
	}
	e.End()
}

// DecodeState restores heatmap cells written by EncodeState. The receiver's
// shape (from construction) must match the checkpoint's cell count; a nil
// receiver accepts only the disabled (zero-cell) form.
func (h *Heatmap) DecodeState(d *snap.Decoder) error {
	d.Begin("wd.heatmap")
	n := d.Uvarint()
	want := 0
	if h != nil {
		want = len(h.cells)
	}
	if d.Err() != nil {
		return d.Err()
	}
	if n != uint64(want) {
		return fmt.Errorf("wd: checkpoint heatmap has %d cells, this run expects %d", n, want)
	}
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		c := &h.cells[i]
		c.Injected = d.U64()
		c.Parked = d.U64()
		c.Flushed = d.U64()
		c.CascadeSum = d.U64()
		c.Corrections = d.U64()
		c.CascadeMax = d.U64()
	}
	d.End()
	return d.Err()
}
