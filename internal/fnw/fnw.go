// Package fnw implements Flip-N-Write (Cho & Lee, MICRO'09 [7]), the
// classic PCM write-reduction encoding, as an alternative word-line codec
// for ablation studies: for every 16-cell group, if updating it in place
// would program more than half the cells, the group is stored inverted.
//
// Flip-N-Write halves the worst-case programmed-cell count, which both
// extends endurance and — relevant to SD-PCM — fires fewer RESET pulses,
// so it also reduces write disturbance pressure. Unlike the DIN-style codec
// (internal/din) it is oblivious to *which* cells sit next to aggressors,
// so it leaves more word-line-vulnerable patterns behind; the ablation
// benchmarks quantify that difference.
package fnw

import "sdpcm/internal/pcm"

// GroupBits matches the DIN codec granularity: one flip bit per 16 cells
// (6.25% overhead).
const GroupBits = 16

// GroupsPerLine is the number of flip bits per line.
const GroupsPerLine = pcm.LineBits / GroupBits

// Stats aggregates codec activity.
type Stats struct {
	Encodes       uint64
	GroupsFlipped uint64 // groups stored inverted
	BitsSaved     uint64 // programmed cells avoided vs identity coding
}

// Codec is a Flip-N-Write encoder. A nil *Codec is the identity transform.
type Codec struct {
	Stats Stats

	aux map[pcm.LineAddr]uint32 // bit g set = group g stored inverted
}

// NewCodec returns an enabled codec.
func NewCodec() *Codec {
	return &Codec{aux: make(map[pcm.LineAddr]uint32)}
}

func groupWordShift(g int) (word int, shift uint) {
	return g * GroupBits / 64, uint(g * GroupBits % 64)
}

// Decode maps a stored image back to data.
func (c *Codec) Decode(a pcm.LineAddr, stored pcm.Line) pcm.Line {
	if c == nil {
		return stored
	}
	auxBits := c.aux[a]
	if auxBits == 0 {
		return stored
	}
	out := stored
	for g := 0; g < GroupsPerLine; g++ {
		if auxBits&(1<<uint(g)) != 0 {
			w, s := groupWordShift(g)
			out[w] ^= uint64(0xffff) << s
		}
	}
	return out
}

// Encode chooses, per group, the polarity that programs fewer cells.
func (c *Codec) Encode(a pcm.LineAddr, data, stored pcm.Line) pcm.Line {
	if c == nil {
		return data
	}
	var newAux uint32
	out := data
	for g := 0; g < GroupsPerLine; g++ {
		w, s := groupWordShift(g)
		oldBits := uint16(stored[w] >> s)
		plain := uint16(data[w] >> s)
		dPlain := popcount16(oldBits ^ plain)
		dInv := GroupBits - dPlain // distance to the inverted codeword
		choose := plain
		if dInv < dPlain {
			choose = ^plain
			newAux |= 1 << uint(g)
			c.Stats.GroupsFlipped++
			c.Stats.BitsSaved += uint64(dPlain - dInv)
		}
		out[w] = (out[w] &^ (uint64(0xffff) << s)) | uint64(choose)<<s
	}
	c.aux[a] = newAux
	c.Stats.Encodes++
	return out
}

// Forget drops the codec's aux state for a line.
func (c *Codec) Forget(a pcm.LineAddr) {
	if c != nil {
		delete(c.aux, a)
	}
}

// AuxBits exposes a line's current flip word for inspection/testing.
func (c *Codec) AuxBits(a pcm.LineAddr) uint32 {
	if c == nil {
		return 0
	}
	return c.aux[a]
}

func popcount16(x uint16) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
