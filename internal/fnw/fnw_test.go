package fnw

import (
	"testing"
	"testing/quick"

	"sdpcm/internal/pcm"
)

func TestRoundTrip(t *testing.T) {
	c := NewCodec()
	if err := quick.Check(func(d, s [8]uint64) bool {
		data, stored := pcm.Line(d), pcm.Line(s)
		a := pcm.LineAddr(d[0] % 500)
		img := c.Encode(a, data, stored)
		return c.Decode(a, img) == data
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialRoundTrip(t *testing.T) {
	c := NewCodec()
	var stored pcm.Line
	for i := 0; i < 40; i++ {
		var data pcm.Line
		for w := range data {
			data[w] = uint64(i)*0x9e3779b97f4a7c15 ^ uint64(w)<<i
		}
		stored = c.Encode(9, data, stored)
		if c.Decode(9, stored) != data {
			t.Fatalf("roundtrip failed at write %d", i)
		}
	}
}

func TestHalvesWorstCaseProgramming(t *testing.T) {
	// Property: the chosen codeword never programs more than half of any
	// group — Flip-N-Write's defining guarantee.
	c := NewCodec()
	if err := quick.Check(func(d, s [8]uint64) bool {
		data, stored := pcm.Line(d), pcm.Line(s)
		img := c.Encode(2, data, stored)
		reset, set := pcm.DiffMasks(stored, img)
		changed := reset.Or(set)
		for g := 0; g < GroupsPerLine; g++ {
			w, sh := g*GroupBits/64, uint(g*GroupBits%64)
			n := popcount16(uint16(changed[w] >> sh))
			if n > GroupBits/2 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReducesProgrammedCells(t *testing.T) {
	// Writing the complement of the stored image must cost ~0 programmed
	// cells (every group flips).
	c := NewCodec()
	var stored pcm.Line
	for w := range stored {
		stored[w] = 0xdeadbeefcafebabe
	}
	// Prime the codec state so aux starts at identity.
	img := c.Encode(1, stored, pcm.Line{})
	var comp pcm.Line
	for w := range comp {
		comp[w] = ^stored[w]
	}
	img2 := c.Encode(1, comp, img)
	reset, set := pcm.DiffMasks(img, img2)
	if got := reset.PopCount() + set.PopCount(); got != 0 {
		t.Fatalf("complement write programmed %d cells, want 0", got)
	}
	if c.Stats.GroupsFlipped == 0 {
		t.Fatal("some groups must have been stored inverted along the way")
	}
}

func TestNilCodecIdentity(t *testing.T) {
	var c *Codec
	var d pcm.Line
	d[0] = 42
	if c.Encode(1, d, pcm.Line{}) != d || c.Decode(1, d) != d {
		t.Fatal("nil codec must be identity")
	}
	c.Forget(1)
	if c.AuxBits(1) != 0 {
		t.Fatal("nil codec aux must be zero")
	}
}

func TestStats(t *testing.T) {
	c := NewCodec()
	var stored pcm.Line
	var data pcm.Line
	for w := range data {
		data[w] = ^uint64(0) // all ones over all zeros: every group flips
	}
	c.Encode(3, data, stored)
	if c.Stats.GroupsFlipped != GroupsPerLine {
		t.Fatalf("GroupsFlipped = %d, want %d", c.Stats.GroupsFlipped, GroupsPerLine)
	}
	if c.Stats.BitsSaved != uint64(pcm.LineBits) {
		t.Fatalf("BitsSaved = %d, want %d", c.Stats.BitsSaved, pcm.LineBits)
	}
}

func TestForget(t *testing.T) {
	c := NewCodec()
	var data pcm.Line
	for w := range data {
		data[w] = ^uint64(0)
	}
	c.Encode(5, data, pcm.Line{})
	if c.AuxBits(5) == 0 {
		t.Fatal("expected flipped groups")
	}
	c.Forget(5)
	if c.AuxBits(5) != 0 {
		t.Fatal("Forget must drop aux state")
	}
}
