package fnw

import (
	"fmt"
	"slices"

	"sdpcm/internal/pcm"
	"sdpcm/internal/snap"
)

// EncodeState serializes the codec's counters and per-line flip bits in
// ascending address order. Nil-safe: the identity form encodes as absent.
func (c *Codec) EncodeState(e *snap.Encoder) {
	e.Begin("fnw.codec")
	e.Bool(c != nil)
	if c != nil {
		e.U64(c.Stats.Encodes)
		e.U64(c.Stats.GroupsFlipped)
		e.U64(c.Stats.BitsSaved)
		addrs := make([]pcm.LineAddr, 0, len(c.aux))
		for a := range c.aux {
			addrs = append(addrs, a)
		}
		slices.Sort(addrs)
		e.Uvarint(uint64(len(addrs)))
		for _, a := range addrs {
			e.U64(uint64(a))
			e.Uvarint(uint64(c.aux[a]))
		}
	}
	e.End()
}

// DecodeState restores state written by EncodeState. The receiver's
// presence (nil or not, fixed by the scheme) must match the checkpoint's.
func (c *Codec) DecodeState(d *snap.Decoder) error {
	d.Begin("fnw.codec")
	present := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if present != (c != nil) {
		return fmt.Errorf("fnw: checkpoint codec presence %t does not match this run's %t", present, c != nil)
	}
	if present {
		c.Stats.Encodes = d.U64()
		c.Stats.GroupsFlipped = d.U64()
		c.Stats.BitsSaved = d.U64()
		n := d.Uvarint()
		c.aux = make(map[pcm.LineAddr]uint32, n)
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			a := pcm.LineAddr(d.U64())
			c.aux[a] = uint32(d.Uvarint())
		}
	}
	d.End()
	return d.Err()
}
