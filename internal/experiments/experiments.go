// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each Figure function runs the required simulations and
// returns a stats.Table whose rows/columns mirror the published plot; the
// sdpcm-bench binary and the repository's bench_test.go both drive these.
//
// Absolute cycle counts depend on the synthetic workloads, so the tables are
// to be read the way the paper's figures are: normalised ratios, orderings
// and knees, not raw numbers. EXPERIMENTS.md records paper-vs-measured for
// each.
package experiments

import (
	"fmt"

	"sdpcm/internal/alloc"
	"sdpcm/internal/core"
	"sdpcm/internal/geometry"
	"sdpcm/internal/sim"
	"sdpcm/internal/stats"
	"sdpcm/internal/thermal"
	"sdpcm/internal/workload"
)

// Options scales the experiment harness.
type Options struct {
	// RefsPerCore per simulation (default 6000 — fast, shape-preserving;
	// the paper used 10M).
	RefsPerCore int
	// Cores in the CMP (default 8 as in Table 2).
	Cores int
	// MemPages / RegionPages size the DIMM (defaults 2^17 pages = 512 MB
	// with 4 MB marking regions; the paper's 8 GB / 64 MB sizing works too,
	// just slower to allocate).
	MemPages    int
	RegionPages int
	// Benchmarks to sweep (default: all of Table 3).
	Benchmarks []string
	// Seed for reproducibility.
	Seed uint64
}

func (o Options) normalized() Options {
	if o.RefsPerCore <= 0 {
		o.RefsPerCore = 6000
	}
	if o.Cores <= 0 {
		o.Cores = 8
	}
	if o.MemPages <= 0 {
		o.MemPages = 1 << 17
	}
	if o.RegionPages <= 0 {
		o.RegionPages = 1024
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = workload.Names()
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// run executes one simulation under the options.
func (o Options) run(s core.Scheme, bench string, queueCap int) (sim.Result, error) {
	return sim.Run(sim.Config{
		Scheme:        s,
		Mix:           workload.HomogeneousMix(bench, o.Cores),
		RefsPerCore:   o.RefsPerCore,
		MemPages:      o.MemPages,
		RegionPages:   o.RegionPages,
		WriteQueueCap: queueCap,
		Seed:          o.Seed,
	})
}

// Table1 regenerates the disturbance-probability table (§2.2.2).
func Table1() *stats.Table {
	t := stats.NewTable("Table 1: disturbance probability for 4F² cells (20nm)",
		"temp(C)", "error-rate")
	for _, row := range thermal.Table1() {
		t.Set(row.Axis.String(), "temp(C)", row.TempRiseC)
		t.Set(row.Axis.String(), "error-rate", row.ErrorRate)
	}
	return t
}

// Capacity regenerates the §6.1 capacity and chip-size analysis.
func Capacity() *stats.Table {
	t := stats.NewTable("§6.1: capacity gain of SD-PCM over DIN", "value")
	t.SetFormat("%12.3f")
	cmp := geometry.CompareCapacity(4, geometry.PaperDIMM)
	t.Set("SD-PCM capacity (GB)", "value", cmp.SDPCMCapacityGB)
	t.Set("DIN capacity (GB, equal array area)", "value", cmp.DINCapacityGB)
	t.Set("capacity improvement", "value", cmp.ImprovementFraction)
	t.Set("chip-count reduction (same-size chips)", "value",
		geometry.ChipSizeReductionSameChips(geometry.PaperDIMM))
	t.Set("chip-size reduction (big low-density chips)", "value",
		geometry.ChipSizeReductionBigChips(geometry.PaperDIMM))
	t.Set("cell density 4F² vs 8F²", "value",
		geometry.SuperDense.DensityRelativeTo(geometry.DINEnhanced))
	t.Set("cell density 4F² vs 12F²", "value",
		geometry.SuperDense.DensityRelativeTo(geometry.Prototype))
	return t
}

// Fig4 regenerates Figure 4: manifested WD errors per write, within the
// word-line (a) and in one adjacent line along the bit-line (b), on super
// dense PCM with DIN word-line mitigation and differential write.
func Fig4(o Options) (*stats.Table, error) {
	o = o.normalized()
	t := stats.NewTable("Figure 4: WD errors when writing a PCM line (4F²)",
		"wl-avg", "wl-max", "bl-avg/line", "bl-max/line")
	for _, b := range o.Benchmarks {
		r, err := o.run(core.Baseline(), b, 0)
		if err != nil {
			return nil, err
		}
		t.Set(b, "wl-avg", r.WordLineErrorsPerWrite())
		t.Set(b, "wl-max", float64(r.WD.MaxWordLinePerWrite))
		t.Set(b, "bl-avg/line", r.BitLineErrorsPerAdjacentLine())
		t.Set(b, "bl-max/line", float64(r.WD.MaxBitLinePerLine))
	}
	t.AddGeoMeanRow()
	return t, nil
}

// Fig5 regenerates Figure 5: the runtime overhead of basic VnC, decomposed
// into verification and correction, relative to a WD-free reference.
// Columns are normalised execution time (higher = slower).
func Fig5(o Options) (*stats.Table, error) {
	o = o.normalized()
	t := stats.NewTable("Figure 5: VnC overhead at runtime (normalised exec. time)",
		"no-VnC", "verify-only", "verify+correct")
	verifyOnly := core.Baseline()
	verifyOnly.NoCorrectCharge = true
	for _, b := range o.Benchmarks {
		ref, err := o.run(core.WDFree(), b, 0)
		if err != nil {
			return nil, err
		}
		vo, err := o.run(verifyOnly, b, 0)
		if err != nil {
			return nil, err
		}
		full, err := o.run(core.Baseline(), b, 0)
		if err != nil {
			return nil, err
		}
		t.Set(b, "no-VnC", 1.0)
		t.Set(b, "verify-only", vo.CPI/ref.CPI)
		t.Set(b, "verify+correct", full.CPI/ref.CPI)
	}
	t.AddGeoMeanRow()
	return t, nil
}

// Fig11 regenerates the headline scheme comparison: speedup normalised to
// the basic-VnC baseline (bigger is better), per benchmark plus gmean.
func Fig11(o Options) (*stats.Table, error) {
	o = o.normalized()
	roster := core.Figure11Roster()
	cols := make([]string, len(roster))
	for i, s := range roster {
		cols[i] = s.Name
	}
	t := stats.NewTable("Figure 11: system performance (normalised to baseline)", cols...)
	for _, b := range o.Benchmarks {
		base, err := o.run(core.Baseline(), b, 0)
		if err != nil {
			return nil, err
		}
		for _, s := range roster {
			var cpi float64
			if s.Name == "baseline" {
				cpi = base.CPI
			} else {
				r, err := o.run(s, b, 0)
				if err != nil {
					return nil, err
				}
				cpi = r.CPI
			}
			t.Set(b, s.Name, stats.Speedup(base.CPI, cpi))
		}
	}
	t.AddGeoMeanRow()
	return t, nil
}

// ECPSweep is the entry counts of §6.4.
var ECPSweep = []int{0, 2, 4, 6, 8, 12}

// Fig12 regenerates Figure 12: correction operations per write under
// LazyCorrection with varying ECP entries.
func Fig12(o Options) (*stats.Table, error) {
	o = o.normalized()
	cols := make([]string, len(ECPSweep))
	for i, n := range ECPSweep {
		cols[i] = fmt.Sprintf("ECP-%d", n)
	}
	t := stats.NewTable("Figure 12: corrections per write vs ECP entries", cols...)
	for _, b := range o.Benchmarks {
		for _, n := range ECPSweep {
			s := core.LazyC(n)
			if n == 0 {
				s = core.Baseline() // ECP-0 == basic VnC
			}
			r, err := o.run(s, b, 0)
			if err != nil {
				return nil, err
			}
			t.Set(b, fmt.Sprintf("ECP-%d", n), r.CorrectionsPerWrite())
		}
	}
	// Arithmetic mean row (the paper's "average" bar); corrections can be
	// zero, which a geomean would drop.
	for _, col := range cols {
		var vals []float64
		for _, b := range o.Benchmarks {
			vals = append(vals, t.Get(b, col))
		}
		t.Set("average", col, stats.Mean(vals))
	}
	return t, nil
}

// Fig13 regenerates Figure 13: performance vs ECP entries, normalised to
// baseline.
func Fig13(o Options) (*stats.Table, error) {
	o = o.normalized()
	cols := make([]string, len(ECPSweep))
	for i, n := range ECPSweep {
		cols[i] = fmt.Sprintf("ECP-%d", n)
	}
	t := stats.NewTable("Figure 13: normalised performance vs ECP entries", cols...)
	for _, b := range o.Benchmarks {
		base, err := o.run(core.Baseline(), b, 0)
		if err != nil {
			return nil, err
		}
		for _, n := range ECPSweep {
			s := core.LazyC(n)
			if n == 0 {
				s = core.Baseline()
			}
			r, err := o.run(s, b, 0)
			if err != nil {
				return nil, err
			}
			t.Set(b, fmt.Sprintf("ECP-%d", n), stats.Speedup(base.CPI, r.CPI))
		}
	}
	t.AddGeoMeanRow()
	return t, nil
}

// LifetimeSweep is the DIMM-age fractions of Figure 14.
var LifetimeSweep = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}

// Fig14 regenerates Figure 14: performance degradation of LazyC (ECP-6) as
// hard errors consume ECP entries over the DIMM lifetime. Values are
// speedup relative to the pristine DIMM (1.0 at 0% lifetime).
func Fig14(o Options) (*stats.Table, error) {
	o = o.normalized()
	t := stats.NewTable("Figure 14: performance over DIMM lifetime (LazyC ECP-6)",
		"normalised-perf")
	t.SetFormat("%16.5f")
	var freshCPI float64
	for _, f := range LifetimeSweep {
		var cpis []float64
		for _, b := range o.Benchmarks {
			s := core.LazyC(core.DefaultECPEntries)
			s.HardErrorFn = core.HardErrorModel(f)
			r, err := o.run(s, b, 0)
			if err != nil {
				return nil, err
			}
			cpis = append(cpis, r.CPI)
		}
		cpi := stats.GeoMean(cpis)
		if f == 0 {
			freshCPI = cpi
		}
		t.Set(fmt.Sprintf("%.0f%% lifetime", f*100), "normalised-perf",
			stats.Speedup(freshCPI, cpi))
	}
	return t, nil
}

// QueueSweep is the write-queue sizes of Figure 15.
var QueueSweep = []int{8, 16, 32, 64}

// Fig15 regenerates Figure 15: LazyC+PreRead performance vs write-queue
// size, normalised to baseline (queue 32).
func Fig15(o Options) (*stats.Table, error) {
	o = o.normalized()
	cols := make([]string, len(QueueSweep))
	for i, q := range QueueSweep {
		cols[i] = fmt.Sprintf("wq-%d", q)
	}
	t := stats.NewTable("Figure 15: LazyC+PreRead vs write queue size (normalised to baseline)", cols...)
	for _, b := range o.Benchmarks {
		base, err := o.run(core.Baseline(), b, 0)
		if err != nil {
			return nil, err
		}
		for _, q := range QueueSweep {
			r, err := o.run(core.LazyCPreRead(core.DefaultECPEntries), b, q)
			if err != nil {
				return nil, err
			}
			t.Set(b, fmt.Sprintf("wq-%d", q), stats.Speedup(base.CPI, r.CPI))
		}
	}
	t.AddGeoMeanRow()
	return t, nil
}

// NMSweep is the allocator roster of Figure 16.
var NMSweep = []alloc.Tag{alloc.Tag12, alloc.Tag23, alloc.Tag34, alloc.Tag11}

// Fig16 regenerates Figure 16: performance of (n:m) allocators on basic
// VnC, normalised to baseline ((1:1)).
func Fig16(o Options) (*stats.Table, error) {
	o = o.normalized()
	cols := make([]string, len(NMSweep))
	for i, tag := range NMSweep {
		cols[i] = tag.String()
	}
	t := stats.NewTable("Figure 16: performance of (n:m) allocators (normalised to baseline)", cols...)
	for _, b := range o.Benchmarks {
		base, err := o.run(core.Baseline(), b, 0)
		if err != nil {
			return nil, err
		}
		for _, tag := range NMSweep {
			s := core.NMAlloc(tag)
			if tag == alloc.Tag11 {
				s = core.Baseline()
			}
			r, err := o.run(s, b, 0)
			if err != nil {
				return nil, err
			}
			t.Set(b, tag.String(), stats.Speedup(base.CPI, r.CPI))
		}
	}
	t.AddGeoMeanRow()
	return t, nil
}

// Fig17 regenerates Figure 17: normalised data-chip lifetime under LazyC.
func Fig17(o Options) (*stats.Table, error) {
	o = o.normalized()
	t := stats.NewTable("Figure 17: normalised data-chip lifetime", "lifetime")
	t.SetFormat("%12.5f")
	for _, b := range o.Benchmarks {
		r, err := o.run(core.LazyC(core.DefaultECPEntries), b, 0)
		if err != nil {
			return nil, err
		}
		t.Set(b, "lifetime", r.DataChipLifetime())
	}
	t.AddGeoMeanRow()
	return t, nil
}

// Fig18 regenerates Figure 18: normalised ECP-chip lifetime under LazyC.
func Fig18(o Options) (*stats.Table, error) {
	o = o.normalized()
	t := stats.NewTable("Figure 18: normalised ECP-chip lifetime", "lifetime")
	t.SetFormat("%12.5f")
	for _, b := range o.Benchmarks {
		r, err := o.run(core.LazyC(core.DefaultECPEntries), b, 0)
		if err != nil {
			return nil, err
		}
		t.Set(b, "lifetime", r.ECPChipLifetime())
	}
	t.AddGeoMeanRow()
	return t, nil
}

// Fig19 regenerates Figure 19: integrating write cancellation, normalised
// to the VnC baseline.
func Fig19(o Options) (*stats.Table, error) {
	o = o.normalized()
	roster := []core.Scheme{
		core.Baseline(),
		core.WC(),
		core.LazyC(core.DefaultECPEntries),
		core.WCLazyC(core.DefaultECPEntries),
	}
	cols := make([]string, len(roster))
	for i, s := range roster {
		cols[i] = s.Name
	}
	t := stats.NewTable("Figure 19: write cancellation integration (normalised to baseline)", cols...)
	for _, b := range o.Benchmarks {
		base, err := o.run(core.Baseline(), b, 0)
		if err != nil {
			return nil, err
		}
		for _, s := range roster {
			var cpi float64
			if s.Name == "baseline" {
				cpi = base.CPI
			} else {
				r, err := o.run(s, b, 0)
				if err != nil {
					return nil, err
				}
				cpi = r.CPI
			}
			t.Set(b, s.Name, stats.Speedup(base.CPI, cpi))
		}
	}
	t.AddGeoMeanRow()
	return t, nil
}

// Overhead regenerates the §6.2 hardware-cost analysis.
func Overhead() *stats.Table {
	t := stats.NewTable("§6.2: design overhead", "value")
	t.SetFormat("%12.1f")
	// PreRead: two flag bits and two 64B buffers per write-queue entry, 32
	// entries, 2 buffers: (64B+2b)*32*2 ≈ 4KB (paper's arithmetic).
	prBits := (64*8 + 2) * 32 * 2
	t.Set("PreRead buffer bits per bank", "value", float64(prBits))
	t.Set("PreRead buffer KB per bank", "value", float64(prBits)/8/1024)
	t.Set("(n:m) page-table tag bits", "value", 4) // 16 allocators
	t.Set("ECP entries per 64B line", "value", float64(core.DefaultECPEntries))
	t.Set("ECP bits per entry", "value", 10)
	t.Set("DIN aux bits per 64B line", "value", 32)
	return t
}
