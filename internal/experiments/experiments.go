// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each Figure function declares its grid of simulation
// points (scheme × benchmark × knob), hands the grid to the sweep executor
// (internal/runner) and assembles the results into a stats.Table whose
// rows/columns mirror the published plot; the sdpcm-bench binary and the
// repository's bench_test.go both drive these.
//
// Execution is parallel and memoized: independent points run on a bounded
// worker pool with bit-identical results regardless of worker count, and
// points shared between figures (the per-benchmark baseline, most notably)
// simulate once per executor. Pass a shared Exec in Options to span the
// memo cache across figures, as sdpcm-bench -exp all does.
//
// Absolute cycle counts depend on the synthetic workloads, so the tables are
// to be read the way the paper's figures are: normalised ratios, orderings
// and knees, not raw numbers. EXPERIMENTS.md records paper-vs-measured for
// each.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"sdpcm/internal/alloc"
	"sdpcm/internal/core"
	"sdpcm/internal/geometry"
	"sdpcm/internal/runner"
	"sdpcm/internal/sim"
	"sdpcm/internal/stats"
	"sdpcm/internal/thermal"
	"sdpcm/internal/topo"
	"sdpcm/internal/workload"
)

// Options scales the experiment harness.
type Options struct {
	// RefsPerCore per simulation (default 6000 — fast, shape-preserving;
	// the paper used 10M).
	RefsPerCore int
	// Cores in the CMP (default 8 as in Table 2).
	Cores int
	// MemPages / RegionPages size the DIMM (defaults 2^17 pages = 512 MB
	// with 4 MB marking regions; the paper's 8 GB / 64 MB sizing works too,
	// just slower to allocate).
	MemPages    int
	RegionPages int
	// Benchmarks to sweep (default: all of Table 3).
	Benchmarks []string
	// Schemes overrides the scheme roster of the figures that take one
	// (Fig11, Fig19), as registry names resolved through core.ByName at
	// DefaultECPEntries. The baseline is prepended when absent — every
	// figure normalises to it. Empty keeps each figure's published roster.
	Schemes []string
	// Seed for reproducibility.
	Seed uint64
	// CollectMetrics enables the observability layer on every simulation
	// point: each result carries a deterministic metrics snapshot
	// (sim.Result.Metrics), visible to Observers via PointEvent.Result.
	CollectMetrics bool
	// TraceEvents additionally keeps the last N typed events per point.
	TraceEvents int
	// HeatmapRegions enables the WD spatial heatmap on every point: each
	// result carries a per bank × line-region accumulation of injected
	// flips, parked errors and cascade activity (sim.Result.Heatmap).
	HeatmapRegions int
	// Shards selects the intra-run bank-sharded executor for every point
	// (<=1 single-goroutine; results are byte-identical at any value). Use
	// it when a run is dominated by a few large points; Parallel is the
	// better lever when a sweep has many independent points.
	Shards int
	// BatchWindow caps the sharded executor's adaptive batch window (0 =
	// default; see sim.Config.BatchWindow). Tuning only — never results.
	BatchWindow int
	// Topology, when non-default, runs every simulation point on the
	// multi-module simulator described by the spec (see sim.Config.Topology).
	// Nil keeps the classic single-DIMM behaviour and cache keys.
	Topology *topo.Spec
	// Parallel bounds concurrent simulations (0 = GOMAXPROCS, 1 =
	// sequential). Results are identical either way.
	Parallel int
	// NoCache disables point memoization.
	NoCache bool
	// CheckpointDir, with CheckpointEvery, makes long sweeps resumable:
	// each cacheable point periodically writes a sim-state checkpoint into
	// the directory, and a killed sweep restarted with the same options
	// resumes every in-flight point from its last checkpoint with an
	// identical result (see runner.Runner.CheckpointDir).
	CheckpointDir string
	// CheckpointEvery is the per-point checkpoint interval in processed
	// references (0 disables checkpointing).
	CheckpointEvery int
	// Store is the durable tier under the executor's in-memory memo cache:
	// points whose canonical key is present are answered from it without
	// simulating, and cold points persist their result back — the cache
	// spans processes and users (see runner.MemoStore).
	Store runner.MemoStore
	// Observer receives per-point completion events. It is passed per
	// figure call, so several jobs sharing one Exec each keep their own
	// event stream.
	Observer runner.Observer
	// Ctx cancels an in-flight figure at sweep-point granularity: once
	// done, points not yet simulating fail fast with Ctx.Err() while
	// in-flight simulations complete (and still land in the cache). Nil
	// means never canceled.
	Ctx context.Context
	// Exec, when set, executes every point and wins over
	// Parallel/NoCache/Store. Sharing one executor across several figure
	// calls spans the memo cache across them, so points common to multiple
	// figures simulate once (the sdpcm-bench -exp all path, and the sweep
	// service's shared simulation farm).
	Exec *runner.Runner
}

func (o Options) normalized() Options {
	if o.RefsPerCore <= 0 {
		o.RefsPerCore = 6000
	}
	if o.Cores <= 0 {
		o.Cores = 8
	}
	if o.MemPages <= 0 {
		o.MemPages = 1 << 17
	}
	if o.RegionPages <= 0 {
		o.RegionPages = 1024
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = workload.Names()
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// base extracts the sweep-wide simulation parameters.
func (o Options) base() runner.Base {
	return runner.Base{
		RefsPerCore:    o.RefsPerCore,
		Cores:          o.Cores,
		MemPages:       o.MemPages,
		RegionPages:    o.RegionPages,
		Seed:           o.Seed,
		CollectMetrics: o.CollectMetrics,
		TraceEvents:    o.TraceEvents,
		HeatmapRegions: o.HeatmapRegions,
		Shards:         o.Shards,
		BatchWindow:    o.BatchWindow,
		Topology:       o.Topology,
	}
}

// exec returns the executor for one figure: the shared one when set, else a
// fresh per-figure executor built from the options.
func (o Options) exec() *runner.Runner {
	if o.Exec != nil {
		return o.Exec
	}
	return NewRunner(o)
}

// run executes one figure's specs through the executor, threading the
// options' context and per-call observer.
func (o Options) run(specs []runner.Spec) ([]sim.Result, error) {
	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return o.exec().RunContext(ctx, o.base(), specs, o.Observer)
}

// NewRunner builds a sweep executor from the options. Callers running
// several figures in one process assign it to Options.Exec so the memo
// cache deduplicates points across figures.
func NewRunner(o Options) *runner.Runner {
	return &runner.Runner{
		Workers:         o.Parallel,
		NoCache:         o.NoCache,
		Observer:        o.Observer,
		Store:           o.Store,
		CheckpointDir:   o.CheckpointDir,
		CheckpointEvery: o.CheckpointEvery,
	}
}

// roster resolves Options.Schemes through the scheme registry, keeping
// def (the figure's published roster) when no override is set. The
// baseline is prepended when the override omits it: the figures report
// speedup normalised to basic VnC.
func (o Options) roster(def []core.Scheme) ([]core.Scheme, error) {
	if len(o.Schemes) == 0 {
		return def, nil
	}
	out := make([]core.Scheme, 0, len(o.Schemes)+1)
	haveBase := false
	for _, name := range o.Schemes {
		s, err := core.ByName(name, core.DefaultECPEntries)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w (registered: %s)",
				err, strings.Join(core.Names(), "|"))
		}
		if s.Name == core.Baseline().Name {
			haveBase = true
		}
		out = append(out, s)
	}
	if !haveBase {
		out = append([]core.Scheme{core.Baseline()}, out...)
	}
	return out, nil
}

// rosterSpecs declares a scheme-roster × benchmark grid, tagging each point
// with its scheme name (the figure's column label).
func rosterSpecs(benches []string, roster []core.Scheme) []runner.Spec {
	specs := make([]runner.Spec, 0, len(benches)*len(roster))
	for _, b := range benches {
		for _, s := range roster {
			specs = append(specs, runner.Spec{Scheme: s, Bench: b, Tag: s.Name})
		}
	}
	return specs
}

// lookup indexes a sweep's results by (benchmark, tag) for table assembly.
func lookup(specs []runner.Spec, res []sim.Result) func(bench, tag string) sim.Result {
	m := make(map[[2]string]sim.Result, len(specs))
	for i, sp := range specs {
		m[[2]string{sp.Bench, sp.Tag}] = res[i]
	}
	return func(bench, tag string) sim.Result { return m[[2]string{bench, tag}] }
}

// Table1 regenerates the disturbance-probability table (§2.2.2).
func Table1() *stats.Table {
	t := stats.NewTable("Table 1: disturbance probability for 4F² cells (20nm)",
		"temp(C)", "error-rate")
	for _, row := range thermal.Table1() {
		t.Set(row.Axis.String(), "temp(C)", row.TempRiseC)
		t.Set(row.Axis.String(), "error-rate", row.ErrorRate)
	}
	return t
}

// Capacity regenerates the §6.1 capacity and chip-size analysis.
func Capacity() *stats.Table {
	t := stats.NewTable("§6.1: capacity gain of SD-PCM over DIN", "value")
	t.SetFormat("%12.3f")
	cmp := geometry.CompareCapacity(4, geometry.PaperDIMM)
	t.Set("SD-PCM capacity (GB)", "value", cmp.SDPCMCapacityGB)
	t.Set("DIN capacity (GB, equal array area)", "value", cmp.DINCapacityGB)
	t.Set("capacity improvement", "value", cmp.ImprovementFraction)
	t.Set("chip-count reduction (same-size chips)", "value",
		geometry.ChipSizeReductionSameChips(geometry.PaperDIMM))
	t.Set("chip-size reduction (big low-density chips)", "value",
		geometry.ChipSizeReductionBigChips(geometry.PaperDIMM))
	t.Set("cell density 4F² vs 8F²", "value",
		geometry.SuperDense.DensityRelativeTo(geometry.DINEnhanced))
	t.Set("cell density 4F² vs 12F²", "value",
		geometry.SuperDense.DensityRelativeTo(geometry.Prototype))
	return t
}

// Fig4 regenerates Figure 4: manifested WD errors per write, within the
// word-line (a) and in one adjacent line along the bit-line (b), on super
// dense PCM with DIN word-line mitigation and differential write.
func Fig4(o Options) (*stats.Table, error) {
	o = o.normalized()
	specs := runner.Grid{
		Schemes:    []core.Scheme{core.Baseline()},
		Benchmarks: o.Benchmarks,
	}.Expand()
	res, err := o.run(specs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 4: WD errors when writing a PCM line (4F²)",
		"wl-avg", "wl-max", "bl-avg/line", "bl-max/line")
	for i, sp := range specs {
		r := res[i]
		t.Set(sp.Bench, "wl-avg", r.WordLineErrorsPerWrite())
		t.Set(sp.Bench, "wl-max", float64(r.WD.MaxWordLinePerWrite))
		t.Set(sp.Bench, "bl-avg/line", r.BitLineErrorsPerAdjacentLine())
		t.Set(sp.Bench, "bl-max/line", float64(r.WD.MaxBitLinePerLine))
	}
	t.AddGeoMeanRow()
	return t, nil
}

// Fig5 regenerates Figure 5: the runtime overhead of basic VnC, decomposed
// into verification and correction, relative to a WD-free reference.
// Columns are normalised execution time (higher = slower).
func Fig5(o Options) (*stats.Table, error) {
	o = o.normalized()
	verifyOnly := core.Baseline()
	verifyOnly.NoCorrectCharge = true
	var specs []runner.Spec
	for _, b := range o.Benchmarks {
		specs = append(specs,
			runner.Spec{Scheme: core.WDFree(), Bench: b, Tag: "ref"},
			runner.Spec{Scheme: verifyOnly, Bench: b, Tag: "verify-only"},
			runner.Spec{Scheme: core.Baseline(), Bench: b, Tag: "full"})
	}
	res, err := o.run(specs)
	if err != nil {
		return nil, err
	}
	get := lookup(specs, res)
	t := stats.NewTable("Figure 5: VnC overhead at runtime (normalised exec. time)",
		"no-VnC", "verify-only", "verify+correct")
	for _, b := range o.Benchmarks {
		ref := get(b, "ref")
		t.Set(b, "no-VnC", 1.0)
		t.Set(b, "verify-only", get(b, "verify-only").CPI/ref.CPI)
		t.Set(b, "verify+correct", get(b, "full").CPI/ref.CPI)
	}
	t.AddGeoMeanRow()
	return t, nil
}

// Fig11 regenerates the headline scheme comparison: speedup normalised to
// the basic-VnC baseline (bigger is better), per benchmark plus gmean.
func Fig11(o Options) (*stats.Table, error) {
	o = o.normalized()
	roster, err := o.roster(core.Figure11Roster())
	if err != nil {
		return nil, err
	}
	specs := rosterSpecs(o.Benchmarks, roster)
	res, err := o.run(specs)
	if err != nil {
		return nil, err
	}
	get := lookup(specs, res)
	cols := make([]string, len(roster))
	for i, s := range roster {
		cols[i] = s.Name
	}
	t := stats.NewTable("Figure 11: system performance (normalised to baseline)", cols...)
	for _, b := range o.Benchmarks {
		base := get(b, "baseline")
		for _, s := range roster {
			t.Set(b, s.Name, stats.Speedup(base.CPI, get(b, s.Name).CPI))
		}
	}
	t.AddGeoMeanRow()
	return t, nil
}

// ECPSweep is the entry counts of §6.4.
var ECPSweep = []int{0, 2, 4, 6, 8, 12}

// ecpSpecs declares the §6.4 grid: LazyCorrection per ECP provisioning
// (ECP-0 degenerates to basic VnC) × benchmark, tagged by column label.
func ecpSpecs(benches []string) []runner.Spec {
	var specs []runner.Spec
	for _, b := range benches {
		for _, n := range ECPSweep {
			s := core.LazyC(n)
			if n == 0 {
				s = core.Baseline() // ECP-0 == basic VnC
			}
			specs = append(specs, runner.Spec{
				Scheme: s, Bench: b, Tag: fmt.Sprintf("ECP-%d", n),
			})
		}
	}
	return specs
}

// ecpCols returns the Figure 12/13 column labels.
func ecpCols() []string {
	cols := make([]string, len(ECPSweep))
	for i, n := range ECPSweep {
		cols[i] = fmt.Sprintf("ECP-%d", n)
	}
	return cols
}

// Fig12 regenerates Figure 12: correction operations per write under
// LazyCorrection with varying ECP entries.
func Fig12(o Options) (*stats.Table, error) {
	o = o.normalized()
	specs := ecpSpecs(o.Benchmarks)
	res, err := o.run(specs)
	if err != nil {
		return nil, err
	}
	cols := ecpCols()
	t := stats.NewTable("Figure 12: corrections per write vs ECP entries", cols...)
	for i, sp := range specs {
		t.Set(sp.Bench, sp.Tag, res[i].CorrectionsPerWrite())
	}
	// Arithmetic mean row (the paper's "average" bar); corrections can be
	// zero, which a geomean would drop.
	for _, col := range cols {
		var vals []float64
		for _, b := range o.Benchmarks {
			vals = append(vals, t.Get(b, col))
		}
		t.Set("average", col, stats.Mean(vals))
	}
	return t, nil
}

// Fig13 regenerates Figure 13: performance vs ECP entries, normalised to
// baseline (which is exactly the ECP-0 point).
func Fig13(o Options) (*stats.Table, error) {
	o = o.normalized()
	specs := ecpSpecs(o.Benchmarks)
	res, err := o.run(specs)
	if err != nil {
		return nil, err
	}
	get := lookup(specs, res)
	t := stats.NewTable("Figure 13: normalised performance vs ECP entries", ecpCols()...)
	for _, b := range o.Benchmarks {
		base := get(b, "ECP-0")
		for _, n := range ECPSweep {
			tag := fmt.Sprintf("ECP-%d", n)
			t.Set(b, tag, stats.Speedup(base.CPI, get(b, tag).CPI))
		}
	}
	t.AddGeoMeanRow()
	return t, nil
}

// LifetimeSweep is the DIMM-age fractions of Figure 14.
var LifetimeSweep = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}

// Fig14 regenerates Figure 14: performance degradation of LazyC (ECP-6) as
// hard errors consume ECP entries over the DIMM lifetime. Values are
// speedup relative to the pristine DIMM (1.0 at 0% lifetime).
func Fig14(o Options) (*stats.Table, error) {
	o = o.normalized()
	lifeTag := func(f float64) string { return fmt.Sprintf("life-%g", f) }
	var specs []runner.Spec
	for _, b := range o.Benchmarks {
		for _, f := range LifetimeSweep {
			specs = append(specs, runner.Spec{
				Scheme:    core.LazyC(core.DefaultECPEntries),
				Bench:     b,
				Tag:       lifeTag(f),
				Overrides: runner.Overrides{HardErrorLifetime: f},
			})
		}
	}
	res, err := o.run(specs)
	if err != nil {
		return nil, err
	}
	get := lookup(specs, res)
	t := stats.NewTable("Figure 14: performance over DIMM lifetime (LazyC ECP-6)",
		"normalised-perf")
	t.SetFormat("%16.5f")
	var freshCPI float64
	for _, f := range LifetimeSweep {
		var cpis []float64
		for _, b := range o.Benchmarks {
			cpis = append(cpis, get(b, lifeTag(f)).CPI)
		}
		cpi := stats.GeoMean(cpis)
		if f == 0 {
			freshCPI = cpi
		}
		t.Set(fmt.Sprintf("%.0f%% lifetime", f*100), "normalised-perf",
			stats.Speedup(freshCPI, cpi))
	}
	return t, nil
}

// QueueSweep is the write-queue sizes of Figure 15.
var QueueSweep = []int{8, 16, 32, 64}

// Fig15 regenerates Figure 15: LazyC+PreRead performance vs write-queue
// size, normalised to baseline (queue 32).
func Fig15(o Options) (*stats.Table, error) {
	o = o.normalized()
	wqTag := func(q int) string { return fmt.Sprintf("wq-%d", q) }
	var specs []runner.Spec
	for _, b := range o.Benchmarks {
		specs = append(specs, runner.Spec{Scheme: core.Baseline(), Bench: b, Tag: "baseline"})
		for _, q := range QueueSweep {
			specs = append(specs, runner.Spec{
				Scheme: core.LazyCPreRead(core.DefaultECPEntries), Bench: b,
				QueueCap: q, Tag: wqTag(q),
			})
		}
	}
	res, err := o.run(specs)
	if err != nil {
		return nil, err
	}
	get := lookup(specs, res)
	cols := make([]string, len(QueueSweep))
	for i, q := range QueueSweep {
		cols[i] = wqTag(q)
	}
	t := stats.NewTable("Figure 15: LazyC+PreRead vs write queue size (normalised to baseline)", cols...)
	for _, b := range o.Benchmarks {
		base := get(b, "baseline")
		for _, q := range QueueSweep {
			t.Set(b, wqTag(q), stats.Speedup(base.CPI, get(b, wqTag(q)).CPI))
		}
	}
	t.AddGeoMeanRow()
	return t, nil
}

// NMSweep is the allocator roster of Figure 16.
var NMSweep = []alloc.Tag{alloc.Tag12, alloc.Tag23, alloc.Tag34, alloc.Tag11}

// Fig16 regenerates Figure 16: performance of (n:m) allocators on basic
// VnC, normalised to baseline ((1:1)).
func Fig16(o Options) (*stats.Table, error) {
	o = o.normalized()
	var specs []runner.Spec
	for _, b := range o.Benchmarks {
		for _, tag := range NMSweep {
			s := core.NMAlloc(tag)
			if tag == alloc.Tag11 {
				s = core.Baseline()
			}
			specs = append(specs, runner.Spec{Scheme: s, Bench: b, Tag: tag.String()})
		}
	}
	res, err := o.run(specs)
	if err != nil {
		return nil, err
	}
	get := lookup(specs, res)
	cols := make([]string, len(NMSweep))
	for i, tag := range NMSweep {
		cols[i] = tag.String()
	}
	t := stats.NewTable("Figure 16: performance of (n:m) allocators (normalised to baseline)", cols...)
	for _, b := range o.Benchmarks {
		base := get(b, alloc.Tag11.String())
		for _, tag := range NMSweep {
			t.Set(b, tag.String(), stats.Speedup(base.CPI, get(b, tag.String()).CPI))
		}
	}
	t.AddGeoMeanRow()
	return t, nil
}

// lifetimeTable is the shared shape of Figures 17 and 18: LazyC (ECP-6) per
// benchmark, reduced to a single lifetime metric.
func lifetimeTable(o Options, title string, metric func(sim.Result) float64) (*stats.Table, error) {
	specs := runner.Grid{
		Schemes:    []core.Scheme{core.LazyC(core.DefaultECPEntries)},
		Benchmarks: o.Benchmarks,
	}.Expand()
	res, err := o.run(specs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(title, "lifetime")
	t.SetFormat("%12.5f")
	for i, sp := range specs {
		t.Set(sp.Bench, "lifetime", metric(res[i]))
	}
	t.AddGeoMeanRow()
	return t, nil
}

// Fig17 regenerates Figure 17: normalised data-chip lifetime under LazyC.
func Fig17(o Options) (*stats.Table, error) {
	return lifetimeTable(o.normalized(), "Figure 17: normalised data-chip lifetime",
		sim.Result.DataChipLifetime)
}

// Fig18 regenerates Figure 18: normalised ECP-chip lifetime under LazyC.
func Fig18(o Options) (*stats.Table, error) {
	return lifetimeTable(o.normalized(), "Figure 18: normalised ECP-chip lifetime",
		sim.Result.ECPChipLifetime)
}

// Fig19 regenerates Figure 19: integrating write cancellation, normalised
// to the VnC baseline.
func Fig19(o Options) (*stats.Table, error) {
	o = o.normalized()
	roster, err := o.roster([]core.Scheme{
		core.Baseline(),
		core.WC(),
		core.LazyC(core.DefaultECPEntries),
		core.WCLazyC(core.DefaultECPEntries),
	})
	if err != nil {
		return nil, err
	}
	specs := rosterSpecs(o.Benchmarks, roster)
	res, err := o.run(specs)
	if err != nil {
		return nil, err
	}
	get := lookup(specs, res)
	cols := make([]string, len(roster))
	for i, s := range roster {
		cols[i] = s.Name
	}
	t := stats.NewTable("Figure 19: write cancellation integration (normalised to baseline)", cols...)
	for _, b := range o.Benchmarks {
		base := get(b, "baseline")
		for _, s := range roster {
			t.Set(b, s.Name, stats.Speedup(base.CPI, get(b, s.Name).CPI))
		}
	}
	t.AddGeoMeanRow()
	return t, nil
}

// Experiment is one named entry of the evaluation. The registry gives the
// bench CLI's -exp flag and the sweep service's job API a single source of
// truth for what can run and under what name. Static entries (Table1,
// Capacity, Overhead) are closed-form: they simulate nothing and ignore
// the options' sweep knobs.
type Experiment struct {
	Name   string
	Static bool
	Run    func(Options) (*stats.Table, error)
}

// staticExp wraps a closed-form table generator as a registry entry.
func staticExp(name string, f func() *stats.Table) Experiment {
	return Experiment{Name: name, Static: true,
		Run: func(Options) (*stats.Table, error) { return f(), nil }}
}

// Registry lists every experiment in presentation order — the order
// `sdpcm-bench -exp all` prints them.
func Registry() []Experiment {
	return []Experiment{
		staticExp("table1", Table1),
		staticExp("capacity", Capacity),
		{Name: "fig4", Run: Fig4},
		{Name: "fig5", Run: Fig5},
		{Name: "fig11", Run: Fig11},
		{Name: "fig12", Run: Fig12},
		{Name: "fig13", Run: Fig13},
		{Name: "fig14", Run: Fig14},
		{Name: "fig15", Run: Fig15},
		{Name: "fig16", Run: Fig16},
		{Name: "fig17", Run: Fig17},
		{Name: "fig18", Run: Fig18},
		{Name: "fig19", Run: Fig19},
		staticExp("overhead", Overhead),
		{Name: "fig-topo2", Run: FigTopo2},
	}
}

// ExperimentNames returns the registry's names in order.
func ExperimentNames() []string {
	reg := Registry()
	names := make([]string, len(reg))
	for i, e := range reg {
		names[i] = e.Name
	}
	return names
}

// ByName resolves one registry entry.
func ByName(name string) (Experiment, error) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (registered: %s)",
		name, strings.Join(ExperimentNames(), "|"))
}

// FigTopo2 demonstrates the declarative topology layer on the two-module
// demo spec (topo.Demo2): a "near" DIMM running basic VnC next to a "far"
// CXL-attached module (600-cycle link) running LazyCorrection with ECP-6.
// Cores alternate between modules, so each benchmark splits its footprint
// across both; the table reports whole-system CPI plus each module's write
// volume and corrections-per-write — the far module parks WD errors lazily
// while the near one corrects eagerly.
func FigTopo2(o Options) (*stats.Table, error) {
	o = o.normalized()
	if o.Topology.IsDefault() {
		o.Topology = topo.Demo2()
	}
	specs := runner.Grid{
		Schemes:    []core.Scheme{core.Baseline()},
		Benchmarks: o.Benchmarks,
	}.Expand()
	res, err := o.run(specs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Topology demo: near DIMM (VnC) + far CXL module (LazyC, ECP-6)",
		"cpi", "near-writes", "near-corr/wr", "far-writes", "far-corr/wr")
	for i, sp := range specs {
		r := res[i]
		t.Set(sp.Bench, "cpi", r.CPI)
		for _, m := range r.Modules {
			t.Set(sp.Bench, m.Name+"-writes", float64(m.MC.WriteOps))
			t.Set(sp.Bench, m.Name+"-corr/wr", m.CorrectionsPerWrite())
		}
	}
	t.AddGeoMeanRow()
	return t, nil
}

// Overhead regenerates the §6.2 hardware-cost analysis.
func Overhead() *stats.Table {
	t := stats.NewTable("§6.2: design overhead", "value")
	t.SetFormat("%12.1f")
	// PreRead: two flag bits and two 64B buffers per write-queue entry, 32
	// entries, 2 buffers: (64B+2b)*32*2 ≈ 4KB (paper's arithmetic).
	prBits := (64*8 + 2) * 32 * 2
	t.Set("PreRead buffer bits per bank", "value", float64(prBits))
	t.Set("PreRead buffer KB per bank", "value", float64(prBits)/8/1024)
	t.Set("(n:m) page-table tag bits", "value", 4) // 16 allocators
	t.Set("ECP entries per 64B line", "value", float64(core.DefaultECPEntries))
	t.Set("ECP bits per entry", "value", 10)
	t.Set("DIN aux bits per 64B line", "value", 32)
	return t
}
