package experiments

import (
	"math"
	"strings"
	"testing"

	"sdpcm/internal/workload"
)

// fast options: three representative benchmarks, short traces. The
// assertions below check the paper's *shapes* — orderings, knees,
// monotonicity — which are stable at this scale.
func fastOpts() Options {
	return Options{
		RefsPerCore: 3000,
		Cores:       4,
		MemPages:    1 << 16,
		RegionPages: 1024,
		Benchmarks:  []string{"gemsFDTD", "lbm", "mcf"},
		Seed:        11,
	}
}

func TestTable1(t *testing.T) {
	tb := Table1()
	if !approx(tb.Get("word-line", "temp(C)"), 310, 0.1) ||
		!approx(tb.Get("bit-line", "temp(C)"), 320, 0.1) {
		t.Fatalf("temperatures wrong:\n%s", tb)
	}
	if !approx(tb.Get("word-line", "error-rate"), 0.099, 1e-3) ||
		!approx(tb.Get("bit-line", "error-rate"), 0.115, 1e-3) {
		t.Fatalf("error rates wrong:\n%s", tb)
	}
}

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestCapacity(t *testing.T) {
	tb := Capacity()
	if !approx(tb.Get("capacity improvement", "value"), 0.80, 0.01) {
		t.Fatalf("capacity improvement:\n%s", tb)
	}
	if !approx(tb.Get("DIN capacity (GB, equal array area)", "value"), 2.22, 0.01) {
		t.Fatalf("DIN capacity:\n%s", tb)
	}
}

func TestFig4Shape(t *testing.T) {
	tb, err := Fig4(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range fastOpts().Benchmarks {
		wl := tb.Get(b, "wl-avg")
		bl := tb.Get(b, "bl-avg/line")
		if wl <= 0 || bl <= 0 {
			t.Fatalf("%s: zero WD error rates\n%s", b, tb)
		}
		// Word-line errors are well mitigated; bit-line errors dominate.
		if wl >= bl {
			t.Errorf("%s: wl-avg %v >= bl-avg %v", b, wl, bl)
		}
		if tb.Get(b, "bl-max/line") < 2 {
			t.Errorf("%s: max bit-line errors < 2", b)
		}
	}
	// gemsFDTD changes fewer bits per write → fewer errors than lbm/mcf.
	if tb.Get("gemsFDTD", "bl-avg/line") >= tb.Get("mcf", "bl-avg/line") {
		t.Errorf("gemsFDTD must have fewer bit-line errors than mcf\n%s", tb)
	}
}

func TestFig5Shape(t *testing.T) {
	tb, err := Fig5(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range fastOpts().Benchmarks {
		nv := tb.Get(b, "no-VnC")
		vo := tb.Get(b, "verify-only")
		vc := tb.Get(b, "verify+correct")
		// Both components add overhead; the composition is the worst.
		if !(nv < vo && vo < vc) {
			t.Errorf("%s: ordering broken: %v %v %v", b, nv, vo, vc)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	tb, err := Fig11(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	g := func(col string) float64 { return tb.Get("gmean", col) }
	// Every mitigation beats baseline; DIN is the ceiling; (1:2)
	// approaches it; composites beat their parts.
	if !(g("DIN") > 1.1) {
		t.Errorf("DIN gmean %v must be well above baseline", g("DIN"))
	}
	if !(g("LazyC(ECP-6)") > 1.05) {
		t.Errorf("LazyC gmean %v must beat baseline", g("LazyC(ECP-6)"))
	}
	if !(g("LazyC+PreRead") >= g("LazyC(ECP-6)")*0.98) {
		t.Errorf("LazyC+PreRead %v must not lose to LazyC %v",
			g("LazyC+PreRead"), g("LazyC(ECP-6)"))
	}
	if !(g("LazyC+(2:3)") > g("LazyC(ECP-6)")) {
		t.Errorf("LazyC+(2:3) %v must beat LazyC %v", g("LazyC+(2:3)"), g("LazyC(ECP-6)"))
	}
	if !(g("LazyC+PreRead+(2:3)") >= g("LazyC+(2:3)")*0.95) {
		t.Errorf("all-three %v must not lose to LazyC+(2:3) %v",
			g("LazyC+PreRead+(2:3)"), g("LazyC+(2:3)"))
	}
	// (1:2) eliminates VnC: within ~12% of DIN.
	if g("(1:2)-Alloc") < g("DIN")*0.88 {
		t.Errorf("(1:2) %v must approach DIN %v", g("(1:2)-Alloc"), g("DIN"))
	}
}

func TestFig12Shape(t *testing.T) {
	tb, err := Fig12(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// ECP-0 averages near the paper's 1.8 corrections/write; monotone
	// decreasing; ECP-6 near zero.
	e0 := tb.Get("average", "ECP-0")
	if e0 < 1.0 || e0 > 2.6 {
		t.Errorf("ECP-0 corrections/write = %v, paper ~1.8", e0)
	}
	prev := math.Inf(1)
	for _, n := range ECPSweep {
		v := tb.Get("average", colECP(n))
		if v > prev+1e-9 {
			t.Errorf("corrections not monotone at ECP-%d: %v > %v", n, v, prev)
		}
		prev = v
	}
	if e6 := tb.Get("average", "ECP-6"); e6 > e0/5 {
		t.Errorf("ECP-6 corrections = %v, must be far below ECP-0 %v", e6, e0)
	}
}

func colECP(n int) string {
	switch n {
	case 0:
		return "ECP-0"
	case 2:
		return "ECP-2"
	case 4:
		return "ECP-4"
	case 6:
		return "ECP-6"
	case 8:
		return "ECP-8"
	default:
		return "ECP-12"
	}
}

func TestFig13Shape(t *testing.T) {
	tb, err := Fig13(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Performance grows with ECP entries and saturates: the ECP-6 knee.
	e0 := tb.Get("gmean", "ECP-0")
	e6 := tb.Get("gmean", "ECP-6")
	e12 := tb.Get("gmean", "ECP-12")
	if !(e6 > e0) {
		t.Errorf("ECP-6 %v must beat ECP-0 %v", e6, e0)
	}
	if gain, tail := e6-e0, e12-e6; tail > gain/2 {
		t.Errorf("no knee: 0→6 gain %v, 6→12 gain %v", gain, tail)
	}
}

func TestFig14Shape(t *testing.T) {
	o := fastOpts()
	o.Benchmarks = []string{"lbm"}
	tb, err := Fig14(o)
	if err != nil {
		t.Fatal(err)
	}
	// Degradation over lifetime is small (paper: ~0.2%) and the fresh DIMM
	// is the reference.
	if v := tb.Get("0% lifetime", "normalised-perf"); v != 1.0 {
		t.Errorf("fresh DIMM perf = %v, want 1.0", v)
	}
	if v := tb.Get("100% lifetime", "normalised-perf"); v < 0.85 || v > 1.02 {
		t.Errorf("end-of-life perf = %v, want small degradation", v)
	}
}

func TestFig15Shape(t *testing.T) {
	tb, err := Fig15(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Bigger queues must not hurt much; 32 is sufficient (64 adds little).
	q8 := tb.Get("gmean", "wq-8")
	q32 := tb.Get("gmean", "wq-32")
	q64 := tb.Get("gmean", "wq-64")
	if q32 < q8*0.95 {
		t.Errorf("wq-32 %v much worse than wq-8 %v", q32, q8)
	}
	if math.Abs(q64-q32) > 0.15*q32 {
		t.Errorf("wq-64 %v far from wq-32 %v: 32 should be sufficient", q64, q32)
	}
}

func TestFig16Shape(t *testing.T) {
	tb, err := Fig16(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// §6.6: performance increases monotonically from 1:1 (baseline)
	// through 3:4, 2:3, to 1:2.
	g11 := tb.Get("gmean", "(1:1)")
	g34 := tb.Get("gmean", "(3:4)")
	g23 := tb.Get("gmean", "(2:3)")
	g12 := tb.Get("gmean", "(1:2)")
	if !(g12 > g23 && g23 > g34 && g34 > g11*0.99) {
		t.Errorf("(n:m) monotonicity broken: 1:2=%v 2:3=%v 3:4=%v 1:1=%v",
			g12, g23, g34, g11)
	}
}

func TestFig17And18Shape(t *testing.T) {
	o := fastOpts()
	t17, err := Fig17(o)
	if err != nil {
		t.Fatal(err)
	}
	t18, err := Fig18(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range o.Benchmarks {
		dl := t17.Get(b, "lifetime")
		el := t18.Get(b, "lifetime")
		// Data chips degrade barely; the ECP chip visibly more (Fig 17 vs 18).
		if dl < 0.95 || dl > 1.0 {
			t.Errorf("%s: data chip lifetime %v out of expected band", b, dl)
		}
		if el >= dl {
			t.Errorf("%s: ECP chip %v must degrade more than data %v", b, el, dl)
		}
		if el <= 0.1 {
			t.Errorf("%s: ECP chip lifetime %v implausibly low", b, el)
		}
	}
}

func TestFig19Shape(t *testing.T) {
	tb, err := Fig19(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// §6.8: WC improves VnC but not significantly; LazyC beats WC;
	// WC+LazyC is the best of the four.
	base := tb.Get("gmean", "baseline")
	wc := tb.Get("gmean", "WC")
	lazy := tb.Get("gmean", "LazyC(ECP-6)")
	both := tb.Get("gmean", "WC+LazyC")
	if !(wc >= base) {
		t.Errorf("WC %v must not lose to baseline %v", wc, base)
	}
	if !(lazy > wc) {
		t.Errorf("LazyC %v must beat WC alone %v", lazy, wc)
	}
	if !(both >= lazy) {
		t.Errorf("WC+LazyC %v must not lose to LazyC %v", both, lazy)
	}
}

func TestFigTopo2Shape(t *testing.T) {
	tb, err := FigTopo2(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Cores split round-robin across the two modules, so both must see
	// substantial write traffic; the eager-VnC near module corrects inline
	// on every disturbed write while the LazyC far module parks disturbances
	// in ECP, so their correction rates must sit orders apart.
	nearW := tb.Get("gmean", "near-writes")
	farW := tb.Get("gmean", "far-writes")
	if nearW == 0 || farW == 0 {
		t.Fatalf("a module saw no writes: near %v, far %v", nearW, farW)
	}
	nearC := tb.Get("gmean", "near-corr/wr")
	farC := tb.Get("gmean", "far-corr/wr")
	if !(nearC > 10*farC) {
		t.Errorf("VnC module corr/wr %v must dwarf LazyC's %v", nearC, farC)
	}
}

func TestOverheadTable(t *testing.T) {
	tb := Overhead()
	// §6.2: ~4KB of PreRead buffering per bank.
	if kb := tb.Get("PreRead buffer KB per bank", "value"); kb < 3.9 || kb > 4.1 {
		t.Errorf("PreRead buffer = %vKB, paper says ~4KB", kb)
	}
	if tb.Get("(n:m) page-table tag bits", "value") != 4 {
		t.Error("tag bits must be 4")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.normalized()
	if o.RefsPerCore != 6000 || o.Cores != 8 || len(o.Benchmarks) != len(workload.Names()) {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestTablesRenderable(t *testing.T) {
	tb := Table1()
	if !strings.Contains(tb.String(), "Table 1") {
		t.Fatal("table must render with title")
	}
}

// TestRegistry pins the experiment name vocabulary shared by the bench CLI
// and the sweep service, and that static entries run without simulating.
func TestRegistry(t *testing.T) {
	want := []string{"table1", "capacity", "fig4", "fig5", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"overhead", "fig-topo2"}
	got := ExperimentNames()
	if len(got) != len(want) {
		t.Fatalf("ExperimentNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExperimentNames()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	e, err := ByName("table1")
	if err != nil || !e.Static {
		t.Fatalf("ByName(table1) = %+v, %v; want a static entry", e, err)
	}
	tb, err := e.Run(Options{})
	if err != nil || tb == nil {
		t.Fatalf("static run = %v, %v", tb, err)
	}
	if e, err := ByName("fig11"); err != nil || e.Static {
		t.Fatalf("ByName(fig11) = %+v, %v; want a sweep entry", e, err)
	}
	if _, err := ByName("fig99"); err == nil {
		t.Fatal("ByName(fig99) should error")
	}
}
