package experiments

import (
	"reflect"
	"testing"

	"sdpcm/internal/runner"
	"sdpcm/internal/wd"
)

// collectHeatmaps merges every point's heatmap the way sdpcm-bench's
// aggregator does.
type collectHeatmaps struct {
	merged *wd.HeatmapSnapshot
	points int
}

func (c *collectHeatmaps) PointDone(ev runner.PointEvent) {
	c.points++
	if ev.Err == nil && ev.Result != nil {
		c.merged = c.merged.Merge(ev.Result.Heatmap)
	}
}

// TestHeatmapDeterministicAcrossParallel is the acceptance check for the
// sweep-level heatmap: the merged aggregate must be bit-identical whether
// the points run sequentially or on four workers (merge commutativity plus
// per-point determinism).
func TestHeatmapDeterministicAcrossParallel(t *testing.T) {
	run := func(parallel int) *wd.HeatmapSnapshot {
		o := fastOpts()
		o.Benchmarks = []string{"lbm", "mcf"}
		o.HeatmapRegions = 8
		o.Parallel = parallel
		c := &collectHeatmaps{}
		o.Observer = c
		if _, err := Fig12(o); err != nil {
			t.Fatal(err)
		}
		if c.points == 0 {
			t.Fatal("observer saw no points")
		}
		if c.merged == nil {
			t.Fatal("no heatmaps collected despite HeatmapRegions")
		}
		return c.merged
	}
	seq := run(1)
	par := run(4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("merged heatmap differs between -parallel 1 and 4")
	}
	if seq.Total(func(c wd.HeatCell) uint64 { return c.Injected }) == 0 {
		t.Fatal("sweep recorded no injected flips")
	}
}

// TestHeatmapFlowsThroughCache checks that cached points still deliver their
// heatmap to observers (the memoized Result carries it).
func TestHeatmapFlowsThroughCache(t *testing.T) {
	o := fastOpts()
	o.Benchmarks = []string{"lbm"}
	o.HeatmapRegions = 4
	ex := NewRunner(o)
	o.Exec = ex
	c := &collectHeatmaps{}

	// First pass simulates; run it without the observer.
	if _, err := Fig12(o); err != nil {
		t.Fatal(err)
	}
	// Second identical pass is served from the memo cache; attach the
	// observer to the shared executor (the per-call Options.Observer is
	// nil, so the executor's own observer receives the events).
	ex.Observer = c
	if _, err := Fig12(o); err != nil {
		t.Fatal(err)
	}
	if c.points == 0 || c.merged == nil {
		t.Fatalf("cached pass delivered %d points, merged=%v", c.points, c.merged)
	}
	st := ex.Stats()
	if st.CacheHits == 0 {
		t.Fatal("second pass should have hit the cache")
	}
}
