package imdb

import (
	"sdpcm/internal/pcm"
	"sdpcm/internal/snap"
)

// EncodePolicyState serializes the barrier's victim buffers and counters,
// implementing mc.PolicyState so runs using the barrier scheme checkpoint
// and resume exactly. Capacity is a construction parameter, and bypass is
// transient within one correction — both always false/fixed at the
// checkpoint barrier.
func (w *Barrier) EncodePolicyState(e *snap.Encoder) {
	e.Begin("imdb.barrier")
	e.U64(w.Evictions)
	e.U64(w.Coalesced)
	for b := range w.banks {
		e.Uvarint(uint64(len(w.banks[b])))
		for _, en := range w.banks[b] {
			e.U64(uint64(en.addr))
			pcm.EncodeLine(e, pcm.Line(en.mask))
		}
	}
	e.End()
}

// DecodePolicyState restores state written by EncodePolicyState.
func (w *Barrier) DecodePolicyState(d *snap.Decoder) error {
	d.Begin("imdb.barrier")
	w.Evictions = d.U64()
	w.Coalesced = d.U64()
	for b := range w.banks {
		n := d.Uvarint()
		w.banks[b] = nil
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			addr := pcm.LineAddr(d.U64())
			mask := pcm.Mask(pcm.DecodeLine(d))
			w.banks[b] = append(w.banks[b], entry{addr: addr, mask: mask})
		}
	}
	d.End()
	return d.Err()
}
