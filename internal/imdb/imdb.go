// Package imdb implements an in-module disturbance barrier: a small
// per-bank victim buffer inside the memory module that absorbs the
// disturbed-neighbour rewrites VnC would otherwise issue on the critical
// path. Where LazyCorrection (§4.2) parks errors per line in ECP entries,
// the barrier pools a few repair records per bank and writes them back
// only on eviction or flush.
//
// The package is the worked example of the pluggable write-path policy
// architecture: it implements mc.CorrectionPolicy (plus the optional
// ReadOverrider, WriteObserver and Drainer extensions) and registers a
// scheme with internal/core — no controller-core file knows it exists.
package imdb

import (
	"fmt"

	"sdpcm/internal/alloc"
	"sdpcm/internal/core"
	"sdpcm/internal/geometry"
	"sdpcm/internal/mc"
	"sdpcm/internal/pcm"
)

// DefaultBufferPerBank is the barrier's per-bank victim-buffer capacity.
// Eight records per bank is SRAM on the module's buffer chip, far below
// the per-line ECP provisioning it replaces.
const DefaultBufferPerBank = 8

// entry is one buffered repair: the disturbed line and the accumulated
// mask of spuriously SET cells awaiting a clearing rewrite.
type entry struct {
	addr pcm.LineAddr
	mask pcm.Mask
}

// Barrier is the buffering correction policy. It is controller state: build
// a fresh Barrier per controller (the Scheme's Policy hook does) and never
// share one across concurrent runs.
type Barrier struct {
	banks [pcm.NumBanks][]entry
	cap   int
	// bypass disables absorption while the barrier itself corrects
	// (evictions and the flush drain): the cascades those rewrites trigger
	// resolve eagerly, so recursion stays depth-bounded and the buffer only
	// ever shrinks while draining.
	bypass bool

	// Evictions and Coalesced are observability counters (the controller's
	// Stats only see absorbed batches as LazyRecords).
	Evictions uint64
	Coalesced uint64
}

// New returns an empty barrier with the given per-bank capacity
// (<= 0 selects DefaultBufferPerBank).
func New(bufPerBank int) *Barrier {
	if bufPerBank <= 0 {
		bufPerBank = DefaultBufferPerBank
	}
	return &Barrier{cap: bufPerBank}
}

// Buffered returns the total number of repair records currently held.
func (w *Barrier) Buffered() int {
	n := 0
	for i := range w.banks {
		n += len(w.banks[i])
	}
	return n
}

// Absorb claims a detected error batch into the bank's victim buffer.
// Repairs for a line already buffered coalesce by OR-ing masks — WD flips
// are spurious SETs and the eventual correction clears the union, so
// accumulation is order-independent (the same property ECP parking relies
// on). A full buffer evicts its oldest record through the standard
// correction path and reports that rewrite's cycles.
func (w *Barrier) Absorb(ctx mc.PolicyContext, addr pcm.LineAddr, flips pcm.Mask, newBits []int, depth int) (int, bool) {
	if w.bypass {
		return 0, false
	}
	bk := &w.banks[pcm.Locate(addr).Bank]
	for i := range *bk {
		if (*bk)[i].addr == addr {
			(*bk)[i].mask = (*bk)[i].mask.Or(flips)
			w.Coalesced++
			return 0, true
		}
	}
	cycles := 0
	if len(*bk) >= w.cap {
		victim := (*bk)[0]
		*bk = append((*bk)[:0], (*bk)[1:]...)
		cycles = w.correct(ctx, victim, depth)
		w.Evictions++
	}
	*bk = append(*bk, entry{addr: addr, mask: flips})
	return cycles, true
}

// correct writes one buffered repair back under bypass, so the rewrite's
// own cascade resolves eagerly instead of re-entering the buffer.
func (w *Barrier) correct(ctx mc.PolicyContext, e entry, depth int) int {
	w.bypass = true
	defer func() { w.bypass = false }()
	return ctx.Correct(e.addr, e.mask, depth)
}

// OverrideRead masks buffered (not yet applied) repairs out of read data:
// the module knows which cells of the line are spuriously SET and clears
// them on the way out, exactly as a pending correction would.
func (w *Barrier) OverrideRead(a pcm.LineAddr, line pcm.Line) pcm.Line {
	bk := w.banks[pcm.Locate(a).Bank]
	for i := range bk {
		if bk[i].addr == a {
			for j := range line {
				line[j] &^= bk[i].mask[j]
			}
			return line
		}
	}
	return line
}

// ObserveWrite drops the buffered repair for a line about to be
// reprogrammed: the fresh write supersedes the stale mask (the rule that
// releases parked ECP entries for free, §4.2).
func (w *Barrier) ObserveWrite(a pcm.LineAddr) {
	bk := &w.banks[pcm.Locate(a).Bank]
	for i := range *bk {
		if (*bk)[i].addr == a {
			*bk = append((*bk)[:i], (*bk)[i+1:]...)
			return
		}
	}
}

// DrainFlush writes every buffered repair back (the buffer is volatile
// module state) and returns the bank cycles consumed. Runs under bypass,
// so the loop strictly empties the buffer.
func (w *Barrier) DrainFlush(ctx mc.PolicyContext) int {
	cycles := 0
	for b := range w.banks {
		for len(w.banks[b]) > 0 {
			victim := w.banks[b][0]
			w.banks[b] = w.banks[b][1:]
			cycles += w.correct(ctx, victim, 0)
		}
		w.banks[b] = nil
	}
	return cycles
}

// Scheme returns the IMDB design point: super dense 4F² VnC with the
// barrier as correction policy. The Policy hook installs a fresh Barrier
// per controller build; PolicyKey keeps runner memoization sound.
func Scheme(ecpEntries, bufPerBank int) core.Scheme {
	if bufPerBank <= 0 {
		bufPerBank = DefaultBufferPerBank
	}
	return core.Scheme{
		Name:       "IMDB",
		Layout:     geometry.SuperDense,
		ECPEntries: ecpEntries,
		Tag:        alloc.Tag11,
		Policy: func(cfg *mc.Config) {
			cfg.Correction = New(bufPerBank)
		},
		PolicyKey: fmt.Sprintf("imdb:%d", bufPerBank),
	}
}

func init() {
	core.Register("imdb", []string{"barrier"}, func(ecp int) core.Scheme {
		return Scheme(ecp, DefaultBufferPerBank)
	})
}
