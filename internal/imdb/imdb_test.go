package imdb

import (
	"testing"

	"sdpcm/internal/core"
	"sdpcm/internal/mc"
	"sdpcm/internal/pcm"
	"sdpcm/internal/sim"
	"sdpcm/internal/workload"
)

// The barrier must satisfy the correction-policy interface plus every
// optional extension the controller probes for.
var (
	_ mc.CorrectionPolicy = (*Barrier)(nil)
	_ mc.ReadOverrider    = (*Barrier)(nil)
	_ mc.WriteObserver    = (*Barrier)(nil)
	_ mc.Drainer          = (*Barrier)(nil)
)

func maskOf(bits ...int) pcm.Mask {
	var m pcm.Mask
	for _, b := range bits {
		m[b/64] |= 1 << (b % 64)
	}
	return m
}

// Absorption and coalescing never touch the controller, so a zero
// PolicyContext suffices while the buffer has room.
func TestAbsorbCoalesces(t *testing.T) {
	w := New(4)
	a := pcm.LineOf(5, 3)
	if cyc, ok := w.Absorb(mc.PolicyContext{}, a, maskOf(1, 2), []int{1, 2}, 0); !ok || cyc != 0 {
		t.Fatalf("first absorb = (%d, %v)", cyc, ok)
	}
	if cyc, ok := w.Absorb(mc.PolicyContext{}, a, maskOf(2, 7), []int{2, 7}, 0); !ok || cyc != 0 {
		t.Fatalf("coalescing absorb = (%d, %v)", cyc, ok)
	}
	if w.Buffered() != 1 {
		t.Fatalf("buffered = %d, want 1 (same line coalesces)", w.Buffered())
	}
	if w.Coalesced != 1 {
		t.Fatalf("coalesced = %d", w.Coalesced)
	}
	var line pcm.Line
	for i := range line {
		line[i] = ^uint64(0)
	}
	got := w.OverrideRead(a, line)
	want := maskOf(1, 2, 7)
	for i := range got {
		if got[i] != ^uint64(0)&^want[i] {
			t.Fatalf("override word %d = %#x", i, got[i])
		}
	}
	// Other lines pass through untouched.
	other := w.OverrideRead(pcm.LineOf(5, 4), line)
	if other != line {
		t.Fatal("override mutated an unbuffered line")
	}
}

func TestObserveWriteDropsEntry(t *testing.T) {
	w := New(4)
	a := pcm.LineOf(9, 0)
	w.Absorb(mc.PolicyContext{}, a, maskOf(3), []int{3}, 0)
	w.ObserveWrite(a)
	if w.Buffered() != 0 {
		t.Fatalf("buffered = %d after superseding write", w.Buffered())
	}
	// Dropping an un-buffered line is a no-op.
	w.ObserveWrite(a)
}

func TestBufferFillsAcrossBanks(t *testing.T) {
	w := New(2)
	// Pages i land in bank i%NumBanks: same-bank lines share one buffer.
	for i := 0; i < 2; i++ {
		w.Absorb(mc.PolicyContext{}, pcm.LineOf(pcm.PageAddr(i*pcm.NumBanks), 0), maskOf(i), []int{i}, 0)
	}
	if w.Buffered() != 2 {
		t.Fatalf("buffered = %d", w.Buffered())
	}
	// A different bank has its own empty buffer.
	w.Absorb(mc.PolicyContext{}, pcm.LineOf(1, 0), maskOf(0), []int{0}, 0)
	if w.Buffered() != 3 {
		t.Fatalf("buffered = %d", w.Buffered())
	}
}

// A full sim run with a tiny buffer forces evictions and flush drains;
// CheckIntegrity proves no disturbance error escapes the barrier — reads
// see corrected data while repairs are buffered, and the final drain
// leaves the array clean.
func TestBarrierIntegrityUnderLoad(t *testing.T) {
	w := New(1) // every second same-bank victim evicts
	s := Scheme(0, 1)
	s.Policy = func(cfg *mc.Config) { cfg.Correction = w }
	res, err := sim.Run(sim.Config{
		Scheme:         s,
		Mix:            workload.HomogeneousMix("mcf", 4),
		RefsPerCore:    4000,
		MemPages:       1 << 16,
		RegionPages:    1024,
		WriteQueueCap:  8,
		Seed:           42,
		CheckIntegrity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MC.LazyRecords == 0 {
		t.Fatal("barrier absorbed nothing; workload too gentle for the test")
	}
	if w.Evictions == 0 {
		t.Fatal("single-entry buffer never evicted; eviction path untested")
	}
	if w.Buffered() != 0 {
		t.Fatalf("%d repairs still buffered after flush", w.Buffered())
	}
}

// The registered scheme must resolve by name and alias and run end-to-end.
func TestRegisteredScheme(t *testing.T) {
	for _, name := range []string{"imdb", "barrier", "IMDB"} {
		s, err := core.ByName(name, 0)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Name != "IMDB" || s.PolicyKey != "imdb:8" || s.Policy == nil {
			t.Fatalf("ByName(%q) = %+v", name, s)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	found := false
	for _, n := range core.Names() {
		if n == "imdb" {
			found = true
		}
	}
	if !found {
		t.Fatalf("imdb missing from Names() = %v", core.Names())
	}
}
