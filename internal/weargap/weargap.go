// Package weargap implements Start-Gap wear leveling (Qureshi et al.,
// MICRO'09 [20]), the line-level remapping scheme the paper's related work
// discusses (§7) and whose intra-row variant SD-PCM supports among data
// chips (§6.7).
//
// Start-Gap keeps one spare ("gap") line per region and two registers,
// Start and Gap. Every psi writes, the line just above the gap moves into
// the gap and the gap pointer walks down one slot; when the gap has walked
// the whole region, Start advances by one, completing a full rotation. The
// effect is a slowly rotating logical→physical mapping that spreads hot
// lines over the whole region at a cost of one extra line per region and
// one extra line-copy per psi writes.
//
// Relevance to SD-PCM: rotation changes which physical lines are bit-line
// neighbours of a hot line over time, so persistent aggressor/victim pairs
// dissolve — but it also means a no-use strip's isolation guarantee under
// (n:m)-Alloc would be violated if rotation crossed strip boundaries. The
// paper's design therefore confines wear leveling to *intra-row* rotation
// among data chips; this package provides the general region form plus the
// WD-safe intra-row variant, with the remapping algebra fully tested.
package weargap

import (
	"fmt"

	"sdpcm/internal/pcm"
)

// Leveler is a Start-Gap remapper over a region of n logical lines backed
// by n+1 physical slots.
type Leveler struct {
	n    int // logical lines
	psi  int // writes between gap movements
	wcnt int // writes since the last movement

	start int // rotation offset (0..n)
	gap   int // physical slot currently unused (0..n)

	// Moves counts gap movements (each is one line copy: read + write).
	Moves uint64
	// Rotations counts completed full rotations of the region.
	Rotations uint64
}

// New builds a leveler for n logical lines with gap period psi (the
// original paper uses psi=100).
func New(n, psi int) (*Leveler, error) {
	if n <= 0 {
		return nil, fmt.Errorf("weargap: region size %d must be positive", n)
	}
	if psi <= 0 {
		return nil, fmt.Errorf("weargap: psi %d must be positive", psi)
	}
	return &Leveler{n: n, psi: psi, gap: n}, nil
}

// Lines returns the logical region size.
func (l *Leveler) Lines() int { return l.n }

// Slots returns the physical slot count (Lines + 1 spare).
func (l *Leveler) Slots() int { return l.n + 1 }

// Map translates a logical line (0..n-1) to its physical slot (0..n).
// The algebra is the MICRO'09 formulation: PA = (LA + Start) mod N, then
// skip the gap slot (PA >= Gap shifts down by one).
func (l *Leveler) Map(logical int) int {
	if logical < 0 || logical >= l.n {
		panic(fmt.Sprintf("weargap: logical line %d out of range [0,%d)", logical, l.n))
	}
	p := (logical + l.start) % l.n
	if p >= l.gap {
		p++
	}
	return p
}

// GapSlot returns the currently unused physical slot.
func (l *Leveler) GapSlot() int { return l.gap }

// OnWrite notifies the leveler of one line write. When the write counter
// reaches psi, the gap moves one slot down and the physical copy described
// by the returned move must be performed by the caller (reading From and
// writing its content to To — the gap's old position). moved is false when
// no movement happened this write.
type Move struct {
	From, To int // physical slots
}

// OnWrite advances the write counter and possibly moves the gap.
func (l *Leveler) OnWrite() (Move, bool) {
	l.wcnt++
	if l.wcnt < l.psi {
		return Move{}, false
	}
	l.wcnt = 0
	return l.MoveGap(), true
}

// MoveGap advances the gap one step unconditionally and returns the line
// copy to perform. Every movement (including the wrap from slot 0 back to
// slot N) copies one line: the content of the gap's new position moves into
// its old position.
func (l *Leveler) MoveGap() Move {
	l.Moves++
	oldGap := l.gap
	newGap := l.gap - 1
	if newGap < 0 {
		newGap = l.n
	}
	l.gap = newGap
	if l.gap == l.n {
		// The gap completed a full cycle: rotation advances by one.
		l.start = (l.start + 1) % l.n
		l.Rotations++
	}
	return Move{From: newGap, To: oldGap}
}

// IntraRow is the WD-safe variant used by SD-PCM (§6.7): each device row's
// 64 lines rotate independently, so remapping never crosses a strip (or
// row) boundary and the (n:m) no-use isolation guarantee is preserved. All
// rows share one write counter (a single hardware register); the row being
// written when the counter fires is the one whose gap advances.
type IntraRow struct {
	psi  int
	wcnt int // shared write counter (one register in hardware)
	rows map[int]*Leveler

	// Moves aggregates gap-movement copies across all rows.
	Moves uint64
}

// NewIntraRow builds the intra-row wear-leveling layer.
func NewIntraRow(psi int) (*IntraRow, error) {
	if psi <= 0 {
		return nil, fmt.Errorf("weargap: psi %d must be positive", psi)
	}
	return &IntraRow{psi: psi, rows: make(map[int]*Leveler)}, nil
}

// rowKey identifies a device row globally.
func rowKey(loc pcm.Loc) int { return loc.Bank*1<<28 + loc.Row }

func (w *IntraRow) leveler(loc pcm.Loc) *Leveler {
	k := rowKey(loc)
	l := w.rows[k]
	if l == nil {
		// 64 logical slots per row would need a 65th spare; rows have
		// exactly 64, so the intra-row variant levels 63 logical lines
		// over 64 slots (one slot of each row is the rolling spare, a
		// 1/64 = 1.6% capacity cost).
		l, _ = New(pcm.LinesPerPage-1, w.psi)
		w.rows[k] = l
	}
	return l
}

// MapAddr translates a logical line address to its physical line address
// under the current rotation of its row.
func (w *IntraRow) MapAddr(a pcm.LineAddr) pcm.LineAddr {
	loc := pcm.Locate(a)
	if loc.Slot >= pcm.LinesPerPage-1 {
		// The last logical slot is reserved as spare capacity and never
		// allocated; identity-map defensively.
		return a
	}
	l := w.leveler(loc)
	loc.Slot = l.Map(loc.Slot)
	return pcm.AddrOf(loc)
}

// OnWrite notifies the layer of a write to the (logical) address and
// performs any due gap movement on the device.
func (w *IntraRow) OnWrite(dev *pcm.Device, a pcm.LineAddr) {
	from, to, ok := w.NoteWrite(a)
	if !ok {
		return
	}
	content := dev.Peek(from)
	dev.Write(to, content, pcm.NormalWrite)
}

// NoteWrite advances the row's write counter and, when a gap movement is
// due, returns the physical copy (from → to) the caller must perform —
// through whatever data path it owns (the system simulator routes it
// through the memory controller so the copy stays coherent with queued
// writes and is itself subject to VnC).
// The write counter is shared across rows (a single hardware register);
// every psi writes, the gap of the row currently being written advances,
// so hot rows — the ones that need leveling — rotate fastest.
func (w *IntraRow) NoteWrite(a pcm.LineAddr) (from, to pcm.LineAddr, moved bool) {
	w.wcnt++
	if w.wcnt < w.psi {
		return 0, 0, false
	}
	w.wcnt = 0
	loc := pcm.Locate(a)
	mv := w.leveler(loc).MoveGap()
	w.Moves++
	f, t := loc, loc
	f.Slot, t.Slot = mv.From, mv.To
	return pcm.AddrOf(f), pcm.AddrOf(t), true
}

// UsableSlots returns the number of allocatable line slots per row under
// intra-row leveling.
func (w *IntraRow) UsableSlots() int { return pcm.LinesPerPage - 1 }
