package weargap

import (
	"slices"

	"sdpcm/internal/pcm"
	"sdpcm/internal/snap"
)

// EncodeState serializes the intra-row layer: the shared write counter, the
// aggregate move count and every instantiated row leveler in ascending
// row-key order. psi is a construction parameter.
func (w *IntraRow) EncodeState(e *snap.Encoder) {
	e.Begin("weargap.intrarow")
	e.Int(w.wcnt)
	e.U64(w.Moves)
	keys := make([]int, 0, len(w.rows))
	for k := range w.rows {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		l := w.rows[k]
		e.Int(k)
		e.Int(l.wcnt)
		e.Int(l.start)
		e.Int(l.gap)
		e.U64(l.Moves)
		e.U64(l.Rotations)
	}
	e.End()
}

// DecodeState restores state written by EncodeState into a layer freshly
// built with the same psi; row levelers are re-instantiated on demand.
func (w *IntraRow) DecodeState(d *snap.Decoder) error {
	d.Begin("weargap.intrarow")
	w.wcnt = d.Int()
	w.Moves = d.U64()
	n := d.Uvarint()
	w.rows = make(map[int]*Leveler, n)
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		k := d.Int()
		l, err := New(pcm.LinesPerPage-1, w.psi) // same shape leveler() builds
		if err != nil {
			return err
		}
		l.wcnt = d.Int()
		l.start = d.Int()
		l.gap = d.Int()
		l.Moves = d.U64()
		l.Rotations = d.U64()
		w.rows[k] = l
	}
	d.End()
	return d.Err()
}
