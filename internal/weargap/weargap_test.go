package weargap

import (
	"testing"
	"testing/quick"

	"sdpcm/internal/pcm"
)

func mustNew(t *testing.T, n, psi int) *Leveler {
	t.Helper()
	l, err := New(n, psi)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10); err == nil {
		t.Error("zero region must be rejected")
	}
	if _, err := New(10, 0); err == nil {
		t.Error("zero psi must be rejected")
	}
}

func TestInitialMappingIsIdentity(t *testing.T) {
	l := mustNew(t, 16, 100)
	for i := 0; i < 16; i++ {
		if l.Map(i) != i {
			t.Fatalf("fresh leveler Map(%d) = %d", i, l.Map(i))
		}
	}
	if l.GapSlot() != 16 {
		t.Fatalf("gap = %d, want 16 (spare at the end)", l.GapSlot())
	}
}

func TestMappingIsAlwaysBijective(t *testing.T) {
	// Property: at every point of the rotation, Map is injective and never
	// targets the gap slot.
	l := mustNew(t, 17, 3)
	check := func() {
		t.Helper()
		seen := map[int]bool{}
		for i := 0; i < l.Lines(); i++ {
			p := l.Map(i)
			if p == l.GapSlot() {
				t.Fatalf("Map(%d) = gap slot %d", i, p)
			}
			if p < 0 || p >= l.Slots() {
				t.Fatalf("Map(%d) = %d out of range", i, p)
			}
			if seen[p] {
				t.Fatalf("Map not injective at slot %d", p)
			}
			seen[p] = true
		}
	}
	check()
	// Drive several full rotations.
	for w := 0; w < 3*18*3+5; w++ {
		l.OnWrite()
		check()
	}
	if l.Rotations == 0 {
		t.Fatal("expected at least one completed rotation step")
	}
}

func TestGapWalksAndWraps(t *testing.T) {
	l := mustNew(t, 4, 1)              // every write moves the gap
	wantGap := []int{3, 2, 1, 0, 4, 3} // walks down, wraps to n
	for i, want := range wantGap {
		l.OnWrite()
		if l.GapSlot() != want {
			t.Fatalf("after %d writes gap = %d, want %d", i+1, l.GapSlot(), want)
		}
	}
}

func TestMoveDescribesCopy(t *testing.T) {
	l := mustNew(t, 4, 1)
	mv, ok := l.OnWrite()
	if !ok {
		t.Fatal("psi=1 must move on first write")
	}
	// First movement: line in slot 3 moves into the spare slot 4.
	if mv.From != 3 || mv.To != 4 {
		t.Fatalf("move = %+v, want {3 4}", mv)
	}
	// Walking down and the wrap step all copy.
	for i := 0; i < 3; i++ {
		if _, ok := l.OnWrite(); !ok {
			t.Fatal("expected moves while walking down")
		}
	}
	mv, ok = l.OnWrite() // gap was 0: wraps to slot 4, copying 4 -> 0
	if !ok || mv.From != 4 || mv.To != 0 {
		t.Fatalf("wrap move = %+v ok=%v, want {4 0} true", mv, ok)
	}
}

func TestRotationSpreadsHotLine(t *testing.T) {
	// Writing one hot logical line forever must visit every physical slot:
	// the whole point of wear leveling.
	l := mustNew(t, 8, 2)
	visited := map[int]bool{}
	for w := 0; w < 8*9*2*4; w++ {
		visited[l.Map(3)] = true
		l.OnWrite()
	}
	if len(visited) != l.Slots() {
		t.Fatalf("hot line visited %d of %d slots", len(visited), l.Slots())
	}
}

func TestMapPanicsOutOfRange(t *testing.T) {
	l := mustNew(t, 8, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Map(8)
}

func TestMapPropertyRandomDrive(t *testing.T) {
	if err := quick.Check(func(nRaw, psiRaw, writes uint8) bool {
		n := int(nRaw%60) + 2
		psi := int(psiRaw%9) + 1
		l, err := New(n, psi)
		if err != nil {
			return false
		}
		for w := 0; w < int(writes); w++ {
			l.OnWrite()
		}
		seen := map[int]bool{}
		for i := 0; i < n; i++ {
			p := l.Map(i)
			if p == l.GapSlot() || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- intra-row variant ---

func TestIntraRowValidation(t *testing.T) {
	if _, err := NewIntraRow(0); err == nil {
		t.Fatal("zero psi must be rejected")
	}
}

func TestIntraRowStaysInRow(t *testing.T) {
	w, err := NewIntraRow(3)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := pcm.NewDevice(pcm.Config{Pages: 64, FillSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Drive writes and check every mapping stays within the row (same
	// bank, same row) — the WD-safety property.
	for i := 0; i < 2000; i++ {
		a := pcm.LineOf(pcm.PageAddr(i%48), i%w.UsableSlots())
		phys := w.MapAddr(a)
		lLoc, pLoc := pcm.Locate(a), pcm.Locate(phys)
		if lLoc.Bank != pLoc.Bank || lLoc.Row != pLoc.Row {
			t.Fatalf("remap crossed row boundary: %+v -> %+v", lLoc, pLoc)
		}
		w.OnWrite(dev, a)
	}
	if w.Moves == 0 {
		t.Fatal("no gap movements happened")
	}
}

func TestIntraRowPreservesData(t *testing.T) {
	// Write through the mapping, rotate a lot, read through the mapping:
	// logical content must survive the physical copies.
	w, err := NewIntraRow(2)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := pcm.NewDevice(pcm.Config{Pages: 16, ZeroFill: true})
	if err != nil {
		t.Fatal(err)
	}
	logical := pcm.LineOf(5, 7)
	var data pcm.Line
	data[0] = 0xfeedface

	writeThrough := func(d pcm.Line) {
		dev.Write(w.MapAddr(logical), d, pcm.NormalWrite)
		w.OnWrite(dev, logical)
	}
	readThrough := func() pcm.Line { return dev.Peek(w.MapAddr(logical)) }

	writeThrough(data)
	// Rotate the row with writes to other lines of the same row.
	for i := 0; i < 500; i++ {
		other := pcm.LineOf(5, i%w.UsableSlots())
		if other == logical {
			continue
		}
		dev.Write(w.MapAddr(other), pcm.Line{}, pcm.NormalWrite)
		w.OnWrite(dev, other)
	}
	if got := readThrough(); got != data {
		t.Fatalf("data lost across rotation: %v", got[0])
	}
}

func TestIntraRowDeterministic(t *testing.T) {
	run := func() uint64 {
		w, _ := NewIntraRow(3)
		dev, _ := pcm.NewDevice(pcm.Config{Pages: 32, FillSeed: 2})
		for i := 0; i < 1000; i++ {
			a := pcm.LineOf(pcm.PageAddr(i%32), (i*7)%w.UsableSlots())
			dev.Write(w.MapAddr(a), pcm.Line{uint64(i)}, pcm.NormalWrite)
			w.OnWrite(dev, a)
		}
		return w.Moves
	}
	if run() != run() {
		t.Fatal("intra-row leveling must be deterministic")
	}
}

func TestUsableSlots(t *testing.T) {
	w, _ := NewIntraRow(3)
	if w.UsableSlots() != 63 {
		t.Fatalf("usable slots = %d, want 63 (one spare per row)", w.UsableSlots())
	}
}
