package serve

import (
	"os"
	"testing"
	"time"

	"sdpcm/internal/sim"
)

// fillStore writes n entries and spreads their mtimes one minute apart,
// oldest first, so prune order is fully determined. Returns the keys in
// write (= age) order.
func fillStore(t *testing.T, s *DiskStore, n int, base time.Time) []string {
	t.Helper()
	keys := make([]string, n)
	for i := range keys {
		keys[i] = "key-" + string(rune('a'+i))
		if err := s.Store(keys[i], sim.Result{Scheme: keys[i]}); err != nil {
			t.Fatal(err)
		}
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(s.path(keys[i]), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

func TestPruneMaxBytesOldestFirst(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	keys := fillStore(t, s, 4, base)
	info, err := os.Stat(s.path(keys[0]))
	if err != nil {
		t.Fatal(err)
	}
	// Budget for exactly two entries: the two oldest must go.
	s.ConfigureGC(GCPolicy{MaxBytes: 2 * info.Size()})
	removed, freed, err := s.Prune(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 || freed != 2*info.Size() {
		t.Fatalf("Prune removed %d entries / %d bytes, want 2 / %d", removed, freed, 2*info.Size())
	}
	for i, key := range keys {
		_, ok := s.Load(key)
		if wantOK := i >= 2; ok != wantOK {
			t.Errorf("after prune, Load(%s) = %t, want %t", key, ok, wantOK)
		}
	}
	if st := s.Stats(); st.Pruned != 2 {
		t.Fatalf("Stats.Pruned = %d, want 2", st.Pruned)
	}
	// A second pass under the same policy is a no-op: the store already fits.
	if removed, _, err := s.Prune(time.Now()); err != nil || removed != 0 {
		t.Fatalf("second Prune = %d, %v; want 0, nil", removed, err)
	}
}

func TestPruneMaxAge(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	keys := fillStore(t, s, 3, base)
	// Entries sit at -60, -59 and -58 minutes; a 59m30s limit expires only
	// the first.
	s.ConfigureGC(GCPolicy{MaxAge: 59*time.Minute + 30*time.Second})
	removed, _, err := s.Prune(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("Prune removed %d entries, want 1", removed)
	}
	if _, ok := s.Load(keys[0]); ok {
		t.Fatal("expired entry survived the prune")
	}
	if _, ok := s.Load(keys[2]); !ok {
		t.Fatal("fresh entry was pruned")
	}
}

func TestPruneDisabledPolicyIsNoop(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := fillStore(t, s, 2, time.Now().Add(-time.Hour))
	removed, freed, err := s.Prune(time.Now())
	if err != nil || removed != 0 || freed != 0 {
		t.Fatalf("Prune with zero policy = %d, %d, %v; want all zero", removed, freed, err)
	}
	for _, key := range keys {
		if _, ok := s.Load(key); !ok {
			t.Fatalf("entry %s vanished under a disabled policy", key)
		}
	}
}

// TestPruneSparesTempFiles: an in-flight write's temp file is never a GC
// candidate — only published ".json" entries are.
func TestPruneSparesTempFiles(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tmp, err := os.CreateTemp(s.Dir(), ".entry-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	tmp.Close()
	old := time.Now().Add(-24 * time.Hour)
	if err := os.Chtimes(tmp.Name(), old, old); err != nil {
		t.Fatal(err)
	}
	s.ConfigureGC(GCPolicy{MaxBytes: 1, MaxAge: time.Minute})
	if _, _, err := s.Prune(time.Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp.Name()); err != nil {
		t.Fatalf("temp file was pruned: %v", err)
	}
}

func TestStartGCPrunesOnTimer(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 2, time.Now().Add(-time.Hour))
	s.ConfigureGC(GCPolicy{MaxAge: time.Minute})
	stop := s.StartGC(10 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Pruned < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("GC loop pruned %d entries, want 2", s.Stats().Pruned)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // idempotent
}
