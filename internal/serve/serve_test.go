package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// smallSpec is a one-point job: fig4 over a single benchmark at a tiny
// sweep scale.
func smallSpec() JobSpec {
	return JobSpec{
		Experiment:  "fig4",
		RefsPerCore: 800,
		Cores:       2,
		MemMB:       64,
		RegionPages: 256,
		Benchmarks:  []string{"lbm"},
		Seed:        7,
	}
}

func newTestServer(t *testing.T, cfg ManagerConfig) (*Manager, *httptest.Server) {
	t.Helper()
	m := NewManager(cfg)
	t.Cleanup(m.Close)
	ts := httptest.NewServer(NewServer(m, nil).Handler())
	t.Cleanup(ts.Close)
	return m, ts
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish", j.ID)
	}
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func submit(t *testing.T, ts *httptest.Server, spec JobSpec) JobStatus {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit -> %d %s", resp.StatusCode, raw)
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestJobLifecycleEndToEnd drives one job through the HTTP API: submit,
// poll to done, fetch the table, progress, events and the job-labeled
// Prometheus exposition.
func TestJobLifecycleEndToEnd(t *testing.T) {
	m, ts := newTestServer(t, ManagerConfig{})
	st := submit(t, ts, smallSpec())
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job state = %s", st.State)
	}
	j, err := m.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)

	code, body := getBody(t, ts.URL+"/api/v1/jobs/"+st.ID)
	if code != http.StatusOK {
		t.Fatalf("status -> %d", code)
	}
	var got JobStatus
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone || got.Points == 0 || got.SimRuns == 0 {
		t.Fatalf("status = %+v", got)
	}
	if got.Started == nil || got.Finished == nil {
		t.Fatalf("timestamps missing: %+v", got)
	}

	code, table := getBody(t, ts.URL+"/api/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK || !strings.HasPrefix(table, "== Figure 4") {
		t.Fatalf("result -> %d %q", code, table)
	}
	if !strings.HasSuffix(table, "\n") {
		t.Fatal("result table must end with a newline")
	}

	code, body = getBody(t, ts.URL+"/api/v1/jobs/"+st.ID+"/progress")
	if code != http.StatusOK || !strings.Contains(body, `"points_done": 1`) {
		t.Fatalf("progress -> %d %s", code, body)
	}

	code, body = getBody(t, ts.URL+"/api/v1/jobs/"+st.ID+"/events")
	if code != http.StatusOK || !strings.Contains(body, `"events"`) {
		t.Fatalf("events -> %d %s", code, body)
	}

	code, body = getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics -> %d", code)
	}
	if !strings.Contains(body, `{job="`+st.ID+`"}`) {
		t.Fatalf("/metrics missing job-labeled series:\n%s", body)
	}
	for _, want := range []string{"sdpcm_build_info{", "sdpcm_serve_uptime_seconds",
		`sdpcm_serve_jobs{state="done"} 1`, "sdpcm_serve_sim_runs_total"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = getBody(t, ts.URL+"/api/v1/jobs")
	if code != http.StatusOK || !strings.Contains(body, st.ID) {
		t.Fatalf("list -> %d %s", code, body)
	}
	if code, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatal("healthz not ok")
	}
	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatal("readyz not ok")
	}
	if code, _ := getBody(t, ts.URL+"/api/v1/jobs/nope"); code != http.StatusNotFound {
		t.Fatal("unknown job must 404")
	}
	code, body = getBody(t, ts.URL+"/api/v1/experiments")
	if code != http.StatusOK || !strings.Contains(body, `"fig11"`) {
		t.Fatalf("experiments -> %d %s", code, body)
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, ManagerConfig{})
	for name, body := range map[string]string{
		"unknown experiment": `{"experiment":"fig99"}`,
		"unknown benchmark":  `{"experiment":"fig4","benchmarks":["nope"]}`,
		"unknown field":      `{"experiment":"fig4","bogus":1}`,
		"not json":           `{`,
	} {
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s -> %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestResultNotReady: fetching a result before the job finishes answers
// 409, not a broken table.
func TestResultNotReady(t *testing.T) {
	// Hold the only slot so the job is still queued when the GET arrives.
	m, ts := newTestServer(t, ManagerConfig{MaxJobs: 1})
	m.sem <- struct{}{}
	queued := submit(t, ts, smallSpec())
	code, body := getBody(t, ts.URL+"/api/v1/jobs/"+queued.ID+"/result")
	if code != http.StatusConflict {
		t.Fatalf("result of unfinished job -> %d %s", code, body)
	}
	<-m.sem
	j, err := m.Get(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
}

// TestSecondSubmissionServedFromDisk is the tentpole's cross-process
// proof: a fresh manager (fresh in-memory cache, fresh executor) sharing
// the first manager's store directory answers an identical job with zero
// simulations, and the fetched table is byte-identical.
func TestSecondSubmissionServedFromDisk(t *testing.T) {
	dir := t.TempDir()
	store1, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1, ts1 := newTestServer(t, ManagerConfig{Store: store1})
	st1 := submit(t, ts1, smallSpec())
	j1, err := m1.Get(st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	_, table1 := getBody(t, ts1.URL+"/api/v1/jobs/"+st1.ID+"/result")
	cold := j1.Status()
	if cold.SimRuns == 0 || cold.StoreHits != 0 {
		t.Fatalf("cold job = %+v", cold)
	}

	store2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2, ts2 := newTestServer(t, ManagerConfig{Store: store2})
	st2 := submit(t, ts2, smallSpec())
	j2, err := m2.Get(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	warm := j2.Status()
	if warm.State != StateDone {
		t.Fatalf("warm job = %+v", warm)
	}
	if warm.SimRuns != 0 || warm.StoreHits != warm.Points {
		t.Fatalf("warm job simulated: %+v", warm)
	}
	if es := m2.ExecStats(); es.SimRuns != 0 {
		t.Fatalf("warm executor ran %d simulations", es.SimRuns)
	}
	_, table2 := getBody(t, ts2.URL+"/api/v1/jobs/"+st2.ID+"/result")
	if table1 != table2 {
		t.Fatalf("store-served table differs:\n%q\nvs\n%q", table1, table2)
	}
}

// TestSSEStream reads a job's live stream to the end: at least one point
// event and a final done status must arrive, then the stream closes.
func TestSSEStream(t *testing.T) {
	_, ts := newTestServer(t, ManagerConfig{})
	st := submit(t, ts, smallSpec())
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	var events []string
	var lastData string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			events = append(events, strings.TrimPrefix(line, "event: "))
		}
		if strings.HasPrefix(line, "data: ") {
			lastData = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	var sawPoint bool
	for _, e := range events {
		if e == "point" {
			sawPoint = true
		}
	}
	if !sawPoint || len(events) < 2 || events[len(events)-1] != "status" {
		t.Fatalf("stream events = %v", events)
	}
	var final JobStatus
	if err := json.Unmarshal([]byte(lastData), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("final streamed status = %+v", final)
	}
}

// TestCancel: a canceled job reaches the canceled state and its result
// stays unavailable.
func TestCancel(t *testing.T) {
	m, ts := newTestServer(t, ManagerConfig{MaxJobs: 1})
	// Hold the manager's only slot so the submitted job stays queued until
	// the cancel lands — no race against a fast sweep.
	m.sem <- struct{}{}
	queued := submit(t, ts, smallSpec())
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+queued.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel -> %d", resp.StatusCode)
	}
	j, err := m.Get(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if s := j.State(); s != StateCanceled {
		t.Fatalf("canceled job state = %s", s)
	}
	if code, _ := getBody(t, ts.URL+"/api/v1/jobs/"+queued.ID+"/result"); code != http.StatusConflict {
		t.Fatal("canceled job must not serve a result")
	}
	// Release the slot: a fresh submission must still run to completion.
	<-m.sem
	after := submit(t, ts, smallSpec())
	ja, err := m.Get(after.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ja)
	if s := ja.State(); s != StateDone {
		t.Fatalf("post-cancel job state = %s", s)
	}
}

// TestDrain: draining rejects new submissions (readyz flips to 503), waits
// for in-flight jobs, and leaves them completed.
func TestDrain(t *testing.T) {
	m, ts := newTestServer(t, ManagerConfig{})
	st := submit(t, ts, smallSpec())
	if err := m.Drain(context.Background()); err != nil {
		t.Fatalf("Drain = %v", err)
	}
	j, err := m.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if s := j.State(); s != StateDone {
		t.Fatalf("drained job state = %s", s)
	}
	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatal("readyz must 503 while draining")
	}
	body, _ := json.Marshal(smallSpec())
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining -> %d", resp.StatusCode)
	}
}
