package serve

import (
	"net/http"
	"strings"
	"testing"

	"sdpcm/internal/topo"
)

// TestTopologyJob drives a multi-module job through the HTTP API: the
// topology field round-trips the submission JSON, the sweep runs on the
// described modules, and the rendered table is served like any other job's.
func TestTopologyJob(t *testing.T) {
	m, ts := newTestServer(t, ManagerConfig{})
	spec := smallSpec()
	spec.Topology = topo.Demo2()
	st := submit(t, ts, spec)
	j, err := m.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if s := j.State(); s != StateDone {
		t.Fatalf("topology job state = %s", s)
	}
	code, table := getBody(t, ts.URL+"/api/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK || !strings.HasPrefix(table, "== Figure 4") {
		t.Fatalf("result -> %d %q", code, table)
	}
}

// TestTopologyJobValidation: a malformed topology is a 400 at submission,
// not a failed job.
func TestTopologyJobValidation(t *testing.T) {
	_, ts := newTestServer(t, ManagerConfig{})
	for name, body := range map[string]string{
		"unknown scheme": `{"experiment":"fig4","topology":{"modules":[{"name":"m","scheme":"nope"}]}}`,
		"duplicate name": `{"experiment":"fig4","topology":{"modules":[{"name":"m"},{"name":"m"}]}}`,
	} {
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s -> %d, want 400", name, resp.StatusCode)
		}
	}
}
