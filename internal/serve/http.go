package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"sdpcm/internal/experiments"
	"sdpcm/internal/obs"
)

// Server is the sweep service's HTTP front end:
//
//	POST   /api/v1/jobs              submit a sweep (JobSpec JSON) -> 202 + status
//	GET    /api/v1/jobs              list jobs
//	GET    /api/v1/jobs/{id}         one job's status
//	GET    /api/v1/jobs/{id}/result  the rendered result table (text; 200 when done)
//	GET    /api/v1/jobs/{id}/heatmap merged WD spatial heatmap JSON
//	GET    /api/v1/jobs/{id}/progress live progress JSON (points done/cached/stored, rate, ETA)
//	GET    /api/v1/jobs/{id}/events  typed-event tail JSON (?n= limits)
//	GET    /api/v1/jobs/{id}/stream  live SSE: point completions + progress + final status
//	POST   /api/v1/jobs/{id}/cancel  cooperative cancel (also DELETE /api/v1/jobs/{id})
//	GET    /api/v1/experiments       the experiment registry
//	GET    /metrics                  Prometheus exposition: per-job series ({job="..."}) + self metrics
//	GET    /healthz                  liveness (always 200 while serving)
//	GET    /readyz                   readiness (503 once draining)
type Server struct {
	// ShutdownTimeout bounds how long Close waits for in-flight requests
	// (0: 5s), mirroring obs.Server.
	ShutdownTimeout time.Duration

	mgr    *Manager
	logger *slog.Logger
	srv    *http.Server
	ln     net.Listener
}

// NewServer wraps a manager; logger nil discards request-level records.
func NewServer(m *Manager, logger *slog.Logger) *Server {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Server{mgr: m, logger: logger}
}

// Manager returns the underlying job manager.
func (s *Server) Manager() *Manager { return s.mgr }

// Handler returns the service mux (usable under httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /api/v1/experiments", s.handleExperiments)
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.withJob(s.handleStatus))
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.withJob(s.handleResult))
	mux.HandleFunc("GET /api/v1/jobs/{id}/heatmap", s.withJob(s.handleHeatmap))
	mux.HandleFunc("GET /api/v1/jobs/{id}/progress", s.withJob(s.handleProgress))
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.withJob(s.handleEvents))
	mux.HandleFunc("GET /api/v1/jobs/{id}/stream", s.withJob(s.handleStream))
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.withJob(s.handleCancel))
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.withJob(s.handleCancel))
	mux.HandleFunc("GET /", s.handleIndex)
	return mux
}

// Start binds addr (":0" picks a free port) and serves in the background.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return ln.Addr().String(), nil
}

// Close drains the HTTP side like obs.Server.Close: no new connections,
// in-flight requests get up to ShutdownTimeout, then a hard stop.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	timeout := s.ShutdownTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort over HTTP
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// withJob resolves the {id} path segment before invoking h.
func (s *Server) withJob(h func(http.ResponseWriter, *http.Request, *Job)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, err := s.mgr.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		h(w, r, j)
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, "sdpcm sweep service\n\n"+
		"POST /api/v1/jobs\nGET /api/v1/jobs\nGET /api/v1/jobs/{id}\n"+
		"GET /api/v1/jobs/{id}/result\nGET /api/v1/jobs/{id}/heatmap\n"+
		"GET /api/v1/jobs/{id}/progress\nGET /api/v1/jobs/{id}/events\n"+
		"GET /api/v1/jobs/{id}/stream\nPOST /api/v1/jobs/{id}/cancel\n"+
		"GET /api/v1/experiments\nGET /metrics\nGET /healthz\nGET /readyz\n")
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n") //nolint:errcheck
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.mgr.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ready\n") //nolint:errcheck
}

// experimentInfo is one registry entry in the /api/v1/experiments listing.
type experimentInfo struct {
	Name string `json:"name"`
	// Static entries are closed-form tables; they ignore sweep knobs.
	Static bool `json:"static"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	reg := experiments.Registry()
	out := make([]experimentInfo, len(reg))
	for i, e := range reg {
		out[i] = experimentInfo{Name: e.Name, Static: e.Static}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	j, err := s.mgr.Submit(spec)
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.logger.Info("submitted", "job", j.ID, "experiment", spec.Experiment,
		"remote", r.RemoteAddr)
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.mgr.List()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request, j *Job) {
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, _ *http.Request, j *Job) {
	table, ok := j.Table()
	if !ok {
		st := j.Status()
		if st.Error != "" {
			writeError(w, http.StatusConflict, fmt.Errorf("job %s %s: %s", j.ID, st.State, st.Error))
			return
		}
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s, result not ready", j.ID, st.State))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, table) //nolint:errcheck // best effort over HTTP
}

func (s *Server) handleHeatmap(w http.ResponseWriter, _ *http.Request, j *Job) {
	w.Header().Set("Content-Type", "application/json")
	if err := obs.WriteHeatmapJSON(w, j.Heatmap()); err != nil {
		s.logger.Warn("heatmap render failed", "job", j.ID, "error", err)
	}
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request, j *Job) {
	writeJSON(w, http.StatusOK, j.Progress())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	n := -1
	if nStr := r.URL.Query().Get("n"); nStr != "" {
		var err error
		n, err = strconv.Atoi(nStr)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, errors.New("bad n"))
			return
		}
	}
	writeJSON(w, http.StatusOK, obs.EventsTail(j.MetricsSnapshot(), n))
}

func (s *Server) handleCancel(w http.ResponseWriter, _ *http.Request, j *Job) {
	j.Cancel()
	s.logger.Info("cancel requested", "job", j.ID)
	writeJSON(w, http.StatusAccepted, j.Status())
}

// sseEvent writes one Server-Sent Event with a JSON payload.
func sseEvent(w io.Writer, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

// handleStream serves the live SSE view of one job: an initial status
// event, a replay of completed points, then live point completions and
// periodic progress, ending with the final status once the job reaches a
// terminal state.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request, j *Job) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	replay, ch, unsubscribe := j.Subscribe()
	defer unsubscribe()
	if err := sseEvent(w, "status", j.Status()); err != nil {
		return
	}
	for _, rec := range replay {
		if err := sseEvent(w, "point", rec); err != nil {
			return
		}
	}
	flusher.Flush()

	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case rec, open := <-ch:
			if !open {
				// Terminal state: emit the final status and end the stream.
				sseEvent(w, "status", j.Status()) //nolint:errcheck
				flusher.Flush()
				return
			}
			if err := sseEvent(w, "point", rec); err != nil {
				return
			}
			flusher.Flush()
		case <-ticker.C:
			if err := sseEvent(w, "progress", j.Progress()); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleMetrics renders the multi-tenant exposition: every job's merged
// snapshot under {job="<id>"}, then the service's own build/uptime/job/
// store/executor series.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, j := range s.mgr.List() {
		sn := j.MetricsSnapshot()
		if sn == nil {
			continue
		}
		if err := obs.WritePrometheusLabeled(w, sn, []obs.Label{{Name: "job", Value: j.ID}}); err != nil {
			return
		}
	}
	s.writeSelfMetrics(w)
}

// buildInfo resolves the binary's version identifiers once.
func buildInfo() (goVersion, revision string) {
	goVersion, revision = "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		goVersion = bi.GoVersion
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				revision = kv.Value
			}
		}
	}
	return goVersion, revision
}

func (s *Server) writeSelfMetrics(w io.Writer) {
	goVersion, revision := buildInfo()
	fmt.Fprintf(w, "# TYPE sdpcm_build_info gauge\n"+
		"sdpcm_build_info{go_version=%q,revision=%q} 1\n", goVersion, revision)
	fmt.Fprintf(w, "# TYPE sdpcm_serve_uptime_seconds gauge\n"+
		"sdpcm_serve_uptime_seconds %.3f\n", s.mgr.Uptime().Seconds())
	fmt.Fprint(w, "# TYPE sdpcm_serve_jobs gauge\n")
	counts := s.mgr.JobCounts()
	for _, st := range []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		fmt.Fprintf(w, "sdpcm_serve_jobs{state=%q} %d\n", st, counts[st])
	}
	es := s.mgr.ExecStats()
	fmt.Fprintf(w, "# TYPE sdpcm_serve_points_total counter\nsdpcm_serve_points_total %d\n", es.Points)
	fmt.Fprintf(w, "# TYPE sdpcm_serve_sim_runs_total counter\nsdpcm_serve_sim_runs_total %d\n", es.SimRuns)
	fmt.Fprintf(w, "# TYPE sdpcm_serve_cache_hits_total counter\nsdpcm_serve_cache_hits_total %d\n", es.CacheHits)
	fmt.Fprintf(w, "# TYPE sdpcm_serve_store_hits_total counter\nsdpcm_serve_store_hits_total %d\n", es.StoreHits)
	if st := s.mgr.Store(); st != nil {
		ss := st.Stats()
		fmt.Fprintf(w, "# TYPE sdpcm_serve_store_reads_total counter\n"+
			"sdpcm_serve_store_reads_total{outcome=\"hit\"} %d\n"+
			"sdpcm_serve_store_reads_total{outcome=\"miss\"} %d\n"+
			"sdpcm_serve_store_reads_total{outcome=\"corrupt\"} %d\n",
			ss.Hits, ss.Misses, ss.Corrupt)
		fmt.Fprintf(w, "# TYPE sdpcm_serve_store_writes_total counter\nsdpcm_serve_store_writes_total %d\n", ss.Writes)
	}
}
