package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"sdpcm/internal/core"
	"sdpcm/internal/runner"
	"sdpcm/internal/sim"
)

// smallBase is a fast, deterministic sweep scale for store tests.
func smallBase() runner.Base {
	return runner.Base{RefsPerCore: 800, Cores: 2, MemPages: 1 << 14, RegionPages: 256, Seed: 7}
}

func smallSpecs() []runner.Spec {
	return []runner.Spec{
		{Scheme: core.Baseline(), Bench: "lbm", Tag: "a"},
		{Scheme: core.LazyC(4), Bench: "lbm", Tag: "b"},
	}
}

// entryFiles lists the store's persisted entries.
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := &runner.Runner{Store: s}
	res, err := r.Run(smallBase(), smallSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(entryFiles(t, dir)); got != len(smallSpecs()) {
		t.Fatalf("store holds %d entries, want %d", got, len(smallSpecs()))
	}

	// A fresh process (fresh runner, same directory) answers every point
	// from disk: zero simulations.
	s2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r2 := &runner.Runner{Store: s2}
	res2, err := r2.Run(smallBase(), smallSpecs())
	if err != nil {
		t.Fatal(err)
	}
	st := r2.Stats()
	if st.SimRuns != 0 || st.StoreHits != len(smallSpecs()) {
		t.Fatalf("warm run: SimRuns=%d StoreHits=%d, want 0 and %d", st.SimRuns, st.StoreHits, len(smallSpecs()))
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatal("store round trip changed the results")
	}
	ss := s2.Stats()
	if ss.Hits != uint64(len(smallSpecs())) || ss.Corrupt != 0 {
		t.Fatalf("store stats = %+v", ss)
	}
}

// TestDiskStoreCorruptEntryReSimulated: every flavour of on-disk damage —
// truncation, garbage, a flipped checksum, a version bump — must read as a
// miss, and the runner must quietly re-simulate and repair the entry.
func TestDiskStoreCorruptEntryReSimulated(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	specs := smallSpecs()[:1]
	r := &runner.Runner{Store: s}
	want, err := r.Run(smallBase(), specs)
	if err != nil {
		t.Fatal(err)
	}
	files := entryFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("entries = %v", files)
	}
	entry := files[0]
	pristine, err := os.ReadFile(entry)
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string]func(t *testing.T){
		"truncated": func(t *testing.T) {
			if err := os.WriteFile(entry, pristine[:len(pristine)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"garbage": func(t *testing.T) {
			if err := os.WriteFile(entry, []byte("{not json"), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"checksum": func(t *testing.T) {
			var env envelope
			if err := json.Unmarshal(pristine, &env); err != nil {
				t.Fatal(err)
			}
			env.Result = json.RawMessage(`{"CPI": 0.001}`) // tampered result, stale checksum
			data, err := json.Marshal(env)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(entry, data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"version": func(t *testing.T) {
			var env envelope
			if err := json.Unmarshal(pristine, &env); err != nil {
				t.Fatal(err)
			}
			env.Version = storeVersion + 1
			data, err := json.Marshal(env)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(entry, data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			corrupt(t)
			s2, err := OpenDiskStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			r2 := &runner.Runner{Store: s2}
			got, err := r2.Run(smallBase(), specs)
			if err != nil {
				t.Fatal(err)
			}
			st := r2.Stats()
			if st.SimRuns != 1 || st.StoreHits != 0 {
				t.Fatalf("corrupt entry: SimRuns=%d StoreHits=%d, want 1 and 0", st.SimRuns, st.StoreHits)
			}
			if ss := s2.Stats(); ss.Corrupt != 1 {
				t.Fatalf("Corrupt = %d, want 1", ss.Corrupt)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatal("re-simulated result differs from the original")
			}
			// The re-simulation repaired the entry in place.
			repaired, err := os.ReadFile(entry)
			if err != nil {
				t.Fatal(err)
			}
			if string(repaired) != string(pristine) {
				t.Fatal("repaired entry differs from the pristine bytes")
			}
		})
	}
}

// TestDiskStoreConcurrent hammers one store from many goroutines mixing
// loads, stores and corrupt reads; run under -race this pins the
// concurrency contract.
func TestDiskStoreConcurrent(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Result{CPI: 3.25}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("key-%d", i%10)
				if err := s.Store(key, res); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Load(key); !ok || got.CPI != res.CPI {
					t.Errorf("Load(%s) = %+v, %v", key, got, ok)
					return
				}
				s.Load(fmt.Sprintf("absent-%d-%d", g, i))
			}
		}(g)
	}
	wg.Wait()
	if ss := s.Stats(); ss.Writes == 0 || ss.Hits == 0 || ss.Misses == 0 {
		t.Fatalf("stats = %+v", ss)
	}
}
