package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"sdpcm/internal/core"
	"sdpcm/internal/experiments"
	"sdpcm/internal/metrics"
	"sdpcm/internal/obs"
	"sdpcm/internal/runner"
	"sdpcm/internal/topo"
	"sdpcm/internal/wd"
	"sdpcm/internal/workload"
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// ErrDraining rejects submissions once the manager has begun shutting down.
var ErrDraining = errors.New("serve: draining, not accepting new jobs")

// ErrNoSuchJob reports an unknown job ID.
var ErrNoSuchJob = errors.New("serve: no such job")

// jobEventLogCap bounds the per-job point-event replay log backing the SSE
// stream; a sweep longer than this replays only its newest tail.
const jobEventLogCap = 512

// jobEventRingCap bounds the per-job typed-event ring backing the /events
// view (the per-point tails concatenate here; overflow counts as dropped).
const jobEventRingCap = 1024

// JobSpec is the POST /api/v1/jobs request body: which experiment to run
// and the sweep-scale knobs, mirroring sdpcm-bench's flags. Zero values
// pick the experiment harness defaults. Metrics collection is always on —
// it does not perturb results, and every job gets /metrics for free.
type JobSpec struct {
	// Experiment names a registry entry (fig11, table1, ... — see
	// GET /api/v1/experiments).
	Experiment  string   `json:"experiment"`
	RefsPerCore int      `json:"refs_per_core,omitempty"`
	Cores       int      `json:"cores,omitempty"`
	MemMB       int      `json:"mem_mb,omitempty"`
	RegionPages int      `json:"region_pages,omitempty"`
	Benchmarks  []string `json:"benchmarks,omitempty"`
	Schemes     []string `json:"schemes,omitempty"`
	Seed        uint64   `json:"seed,omitempty"`
	Shards      int      `json:"shards,omitempty"`
	// TraceEvents keeps the last N controller events per point, feeding the
	// job's /events view.
	TraceEvents int `json:"trace_events,omitempty"`
	// HeatmapRegions enables the WD spatial heatmap (per bank ×
	// line-region), served at the job's /heatmap endpoint.
	HeatmapRegions int `json:"heatmap_regions,omitempty"`
	// Topology, when set, runs every point of the job on the multi-module
	// simulator described by the spec (see sim.Config.Topology). Omitted or
	// default keeps the classic single-DIMM behaviour.
	Topology *topo.Spec `json:"topology,omitempty"`
}

// Validate rejects a spec the run would reject anyway, so submission
// errors surface as HTTP 400 instead of a failed job.
func (s JobSpec) Validate() error {
	if _, err := experiments.ByName(s.Experiment); err != nil {
		return err
	}
	for _, b := range s.Benchmarks {
		if _, err := workload.ByName(b); err != nil {
			return err
		}
	}
	if !s.Topology.IsDefault() {
		if err := s.Topology.Validate(func(name string) bool {
			_, err := core.ByName(name, 0)
			return err == nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// options maps the spec onto the experiment harness.
func (s JobSpec) options() experiments.Options {
	return experiments.Options{
		RefsPerCore:    s.RefsPerCore,
		Cores:          s.Cores,
		MemPages:       s.MemMB * 256, // 4KB pages
		RegionPages:    s.RegionPages,
		Benchmarks:     s.Benchmarks,
		Schemes:        s.Schemes,
		Seed:           s.Seed,
		Shards:         s.Shards,
		CollectMetrics: true,
		TraceEvents:    s.TraceEvents,
		HeatmapRegions: s.HeatmapRegions,
		Topology:       s.Topology,
	}
}

// PointRecord is one completed sweep point as seen on a job's SSE stream
// (event: point) and in its replay log.
type PointRecord struct {
	Seq    int     `json:"seq"`
	Scheme string  `json:"scheme"`
	Bench  string  `json:"bench"`
	Tag    string  `json:"tag,omitempty"`
	Cached bool    `json:"cached"`
	Stored bool    `json:"stored"`
	WallMS float64 `json:"wall_ms"`
	Err    string  `json:"error,omitempty"`
	Done   int     `json:"done"`
	Total  int     `json:"total"`
}

// JobStatus is the job-API JSON view of one job.
type JobStatus struct {
	ID       string               `json:"id"`
	State    JobState             `json:"state"`
	Spec     JobSpec              `json:"spec"`
	Error    string               `json:"error,omitempty"`
	Created  time.Time            `json:"created"`
	Started  *time.Time           `json:"started,omitempty"`
	Finished *time.Time           `json:"finished,omitempty"`
	Progress obs.ProgressSnapshot `json:"progress"`
	// Points/SimRuns/CacheHits/StoreHits decompose where the job's results
	// came from: fresh simulation, the in-memory memo cache, or the durable
	// on-disk store.
	Points    int `json:"points"`
	SimRuns   int `json:"sim_runs"`
	CacheHits int `json:"cache_hits"`
	StoreHits int `json:"store_hits"`
}

// Job is one submitted sweep. It implements runner.Observer: the executor
// feeds it one event per completed point, which it folds into the job's
// progress tracker, merged metrics aggregate, heatmap, typed-event ring
// and SSE replay log.
type Job struct {
	ID   string
	Spec JobSpec

	prog   *obs.Progress
	ctx    context.Context
	cancel context.CancelFunc
	// done closes when the job reaches a terminal state.
	done chan struct{}

	mu        sync.Mutex
	state     JobState
	err       string
	created   time.Time
	started   time.Time
	finished  time.Time
	table     string
	merged    *metrics.Snapshot
	heat      *wd.HeatmapSnapshot
	evRing    []metrics.Event
	evDropped uint64
	points    int
	simRuns   int
	cacheHits int
	storeHits int
	seq       int
	log       []PointRecord
	subs      map[chan PointRecord]struct{}
}

// PointDone implements runner.Observer. The executor serializes calls.
func (j *Job) PointDone(ev runner.PointEvent) {
	j.prog.PointDone(ev)
	j.mu.Lock()
	defer j.mu.Unlock()
	j.points++
	switch {
	case ev.Err != nil:
	case ev.Stored:
		j.storeHits++
	case ev.Cached:
		j.cacheHits++
	default:
		j.simRuns++
	}
	if ev.Err == nil && ev.Result != nil {
		j.heat = j.heat.Merge(ev.Result.Heatmap)
		if ev.Result.Metrics != nil {
			j.merged = j.merged.Merge(ev.Result.Metrics)
			j.appendEvents(ev.Result.Metrics)
		}
	}
	j.seq++
	rec := PointRecord{
		Seq:    j.seq,
		Scheme: ev.Spec.Scheme.Name,
		Bench:  ev.Spec.Bench,
		Tag:    ev.Spec.Tag,
		Cached: ev.Cached,
		Stored: ev.Stored,
		WallMS: float64(ev.Wall) / float64(time.Millisecond),
		Done:   j.seq,
		Total:  ev.Total,
	}
	if ev.Err != nil {
		rec.Err = ev.Err.Error()
	}
	if len(j.log) >= jobEventLogCap {
		j.log = j.log[1:]
	}
	j.log = append(j.log, rec)
	for ch := range j.subs {
		select {
		case ch <- rec:
		default: // slow subscriber: it drops this record, never blocks the sweep
		}
	}
}

// appendEvents folds a point's typed-event tail into the job ring.
// Caller holds j.mu.
func (j *Job) appendEvents(m *metrics.Snapshot) {
	j.evDropped += m.EventsDropped
	j.evRing = append(j.evRing, m.Events...)
	if over := len(j.evRing) - jobEventRingCap; over > 0 {
		j.evDropped += uint64(over)
		j.evRing = append(j.evRing[:0:0], j.evRing[over:]...)
	}
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.ID,
		State:     j.state,
		Spec:      j.Spec,
		Error:     j.err,
		Created:   j.created,
		Progress:  j.prog.Snapshot(),
		Points:    j.points,
		SimRuns:   j.simRuns,
		CacheHits: j.cacheHits,
		StoreHits: j.storeHits,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// Table returns the rendered result table; ok is false until the job is
// done.
func (j *Job) Table() (string, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.table, j.state == StateDone
}

// Heatmap returns the merged WD heatmap (nil when not enabled or no point
// has finished yet).
func (j *Job) Heatmap() *wd.HeatmapSnapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.heat
}

// MetricsSnapshot returns the job's merged metrics aggregate plus the
// typed-event ring, shaped for obs.WritePrometheusLabeled / obs.EventsTail.
func (j *Job) MetricsSnapshot() *metrics.Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.merged == nil && len(j.evRing) == 0 && j.evDropped == 0 {
		return nil
	}
	sn := &metrics.Snapshot{}
	if j.merged != nil {
		cp := *j.merged
		sn = &cp
	}
	sn.Events = append([]metrics.Event(nil), j.evRing...)
	sn.EventsDropped = j.evDropped
	return sn
}

// Progress returns the job's live progress snapshot.
func (j *Job) Progress() obs.ProgressSnapshot { return j.prog.Snapshot() }

// Done exposes the terminal-state signal (closed when the job finishes).
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current lifecycle phase.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Cancel requests cooperative cancellation: queued jobs never start,
// running jobs stop at the next sweep-point boundary (in-flight
// simulations complete and still populate the caches).
func (j *Job) Cancel() { j.cancel() }

// Subscribe registers a live listener: it returns a replay of the point
// log so far and a channel carrying subsequent records. The channel closes
// when the job finishes. unsubscribe must be called when the listener goes
// away.
func (j *Job) Subscribe() (replay []PointRecord, ch chan PointRecord, unsubscribe func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([]PointRecord(nil), j.log...)
	ch = make(chan PointRecord, 64)
	if j.state == StateDone || j.state == StateFailed || j.state == StateCanceled {
		close(ch)
		return replay, ch, func() {}
	}
	if j.subs == nil {
		j.subs = make(map[chan PointRecord]struct{})
	}
	j.subs[ch] = struct{}{}
	return replay, ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, live := j.subs[ch]; live {
			delete(j.subs, ch)
			close(ch)
		}
	}
}

// finish moves the job to its terminal state and releases subscribers.
func (j *Job) finish(state JobState, table string, err error) {
	j.mu.Lock()
	j.state = state
	j.table = table
	j.finished = time.Now()
	if err != nil {
		j.err = err.Error()
	}
	for ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	j.mu.Unlock()
	close(j.done)
}

// ManagerConfig configures a job manager.
type ManagerConfig struct {
	// Store is the durable result tier (nil: in-memory memoization only).
	Store *DiskStore
	// MaxJobs bounds concurrently running jobs (<=0: 2). Queued jobs start
	// in submission order as slots free up.
	MaxJobs int
	// Workers bounds concurrent simulations across all jobs (<=0:
	// GOMAXPROCS) — the shared executor's worker pool.
	Workers int
	// Logger receives job lifecycle records; nil discards them.
	Logger *slog.Logger
}

// Manager owns the shared sweep executor and the job table. All jobs run
// through one runner.Runner, so its in-memory memo cache spans jobs, and
// the optional DiskStore underneath spans processes.
type Manager struct {
	exec   *runner.Runner
	store  *DiskStore
	logger *slog.Logger
	sem    chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	start  time.Time

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int
	draining bool
}

// NewManager builds a manager with a fresh shared executor.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 2
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	exec := &runner.Runner{Workers: cfg.Workers}
	if cfg.Store != nil {
		// Assign only a live store: a typed-nil *DiskStore inside the
		// interface would read as non-nil to the runner.
		exec.Store = cfg.Store
	}
	return &Manager{
		exec:   exec,
		store:  cfg.Store,
		logger: logger,
		sem:    make(chan struct{}, cfg.MaxJobs),
		ctx:    ctx,
		cancel: cancel,
		start:  time.Now(),
		jobs:   make(map[string]*Job),
	}
}

// Store returns the durable result store (nil when running without one).
func (m *Manager) Store() *DiskStore { return m.store }

// ExecStats snapshots the shared executor's counters.
func (m *Manager) ExecStats() runner.Stats { return m.exec.Stats() }

// Uptime reports time since the manager was built.
func (m *Manager) Uptime() time.Duration { return time.Since(m.start) }

// Draining reports whether the manager has stopped accepting jobs.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Submit validates the spec, enqueues a job and starts it as soon as a
// slot frees up. The returned job is already visible to Get/List.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	m.nextID++
	id := fmt.Sprintf("job-%d", m.nextID)
	ctx, cancel := context.WithCancel(m.ctx)
	j := &Job{
		ID:      id,
		Spec:    spec,
		prog:    obs.NewProgress(),
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   StateQueued,
		created: time.Now(),
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.wg.Add(1)
	m.mu.Unlock()
	m.logger.Info("job submitted", "job", id, "experiment", spec.Experiment)
	go m.runJob(j)
	return j, nil
}

// runJob is one job's lifecycle goroutine: wait for a slot, run the
// experiment through the shared executor, finalize.
func (m *Manager) runJob(j *Job) {
	defer m.wg.Done()
	select {
	case m.sem <- struct{}{}:
		defer func() { <-m.sem }()
	case <-j.ctx.Done():
		j.finish(StateCanceled, "", j.ctx.Err())
		m.logger.Info("job canceled before start", "job", j.ID)
		return
	}
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	m.logger.Info("job started", "job", j.ID, "experiment", j.Spec.Experiment)

	exp, err := experiments.ByName(j.Spec.Experiment)
	if err != nil {
		// Unreachable after Validate, but never let a registry drift panic.
		j.finish(StateFailed, "", err)
		return
	}
	opts := j.Spec.options()
	opts.Exec = m.exec
	opts.Ctx = j.ctx
	opts.Observer = j
	j.prog.Begin(j.Spec.Experiment)
	start := time.Now()
	tb, err := exp.Run(opts)
	wall := time.Since(start)
	switch {
	case err != nil && j.ctx.Err() != nil:
		j.finish(StateCanceled, "", context.Canceled)
		m.logger.Info("job canceled", "job", j.ID, "wall", wall)
	case err != nil:
		j.finish(StateFailed, "", err)
		m.logger.Error("job failed", "job", j.ID, "error", err, "wall", wall)
	default:
		// The golden tables are the rendered table plus a trailing newline;
		// serving exactly that keeps fetched results byte-comparable.
		j.finish(StateDone, tb.String()+"\n", nil)
		st := j.Status()
		m.logger.Info("job done", "job", j.ID, "wall", wall,
			"points", st.Points, "sim_runs", st.SimRuns,
			"cache_hits", st.CacheHits, "store_hits", st.StoreHits)
	}
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNoSuchJob
	}
	return j, nil
}

// List returns every job in submission order.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// JobCounts tallies jobs by state (the self-metrics feed).
func (m *Manager) JobCounts() map[JobState]int {
	counts := make(map[JobState]int, 5)
	for _, j := range m.List() {
		counts[j.State()]++
	}
	return counts
}

// Drain stops accepting submissions and waits for every job to finish.
// When ctx expires first, remaining jobs are canceled cooperatively and
// Drain waits for them to reach a terminal state (in-flight simulations
// complete; queued work never starts).
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	m.logger.Info("draining", "jobs", len(m.List()))
	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.logger.Warn("drain deadline hit, canceling remaining jobs")
		m.cancel()
		<-done
		return ctx.Err()
	}
}

// Close cancels everything and waits; for tests and hard shutdown.
func (m *Manager) Close() {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	m.cancel()
	m.wg.Wait()
}
