package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// GCPolicy bounds a DiskStore's disk footprint. A zero field disables that
// bound; the zero policy disables garbage collection entirely.
type GCPolicy struct {
	// MaxBytes, when positive, caps the total size of entry files. When the
	// store exceeds it, the oldest entries (by modification time) are removed
	// until the total fits.
	MaxBytes int64
	// MaxAge, when positive, expires entries whose modification time is
	// older than MaxAge at prune time, regardless of total size.
	MaxAge time.Duration
}

func (p GCPolicy) enabled() bool { return p.MaxBytes > 0 || p.MaxAge > 0 }

// ConfigureGC installs the store's retention policy. It only records the
// policy; call Prune (or StartGC) to apply it.
func (s *DiskStore) ConfigureGC(p GCPolicy) { s.gc = p }

// gcEntry is one candidate file during a prune pass.
type gcEntry struct {
	path  string
	size  int64
	mtime time.Time
}

// Prune applies the configured policy once: expired entries go first, then
// oldest entries until the size cap holds. Only regular "*.json" entry files
// are considered — temp files from in-flight writes are left alone (their
// rename is what publishes an entry). Returns the number of entries removed
// and the bytes they occupied. Concurrent readers losing a race to a removal
// see an ordinary miss and re-simulate, so pruning is always safe.
func (s *DiskStore) Prune(now time.Time) (removed int, freed int64, err error) {
	if !s.gc.enabled() {
		return 0, 0, nil
	}
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, 0, fmt.Errorf("serve: prune result store: %w", err)
	}
	var entries []gcEntry
	var total int64
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with a concurrent removal
		}
		entries = append(entries, gcEntry{
			path:  filepath.Join(s.dir, de.Name()),
			size:  info.Size(),
			mtime: info.ModTime(),
		})
		total += info.Size()
	}
	// Oldest first; ties broken by name so a prune pass is deterministic.
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].path < entries[j].path
	})
	for _, e := range entries {
		expired := s.gc.MaxAge > 0 && now.Sub(e.mtime) > s.gc.MaxAge
		oversize := s.gc.MaxBytes > 0 && total > s.gc.MaxBytes
		if !expired && !oversize {
			// Sorted oldest-first: every later entry is younger (not expired)
			// and total only shrinks on removal (not oversize either).
			break
		}
		if err := os.Remove(e.path); err != nil {
			if os.IsNotExist(err) {
				total -= e.size
				continue
			}
			return removed, freed, fmt.Errorf("serve: prune result store: %w", err)
		}
		removed++
		freed += e.size
		total -= e.size
		s.pruned.Add(1)
	}
	return removed, freed, nil
}

// StartGC runs Prune now and then once per interval until the returned stop
// function is called. Stop is idempotent and waits for an in-flight pass to
// finish.
func (s *DiskStore) StartGC(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			s.Prune(time.Now())
			select {
			case <-done:
				return
			case <-t.C:
			}
		}
	}()
	var once bool
	return func() {
		if !once {
			once = true
			close(done)
			<-finished
		}
	}
}
