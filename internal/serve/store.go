// Package serve grows the observability plane into a multi-tenant sweep
// service: a REST/JSON job API (submit an experiment sweep, watch its
// progress live, fetch the rendered table) over the existing sweep executor
// (internal/runner), with a durable on-disk result store underneath so
// identical submissions — across jobs, processes and users — are answered
// from disk instead of re-simulating.
//
// The package layers strictly on top of internal/runner, internal/
// experiments and internal/obs; nothing below may import it (enforced by
// scripts/archcheck.go).
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"sdpcm/internal/sim"
)

// storeVersion is bumped whenever the envelope layout or the semantics of
// persisted results change incompatibly; entries with another version are
// treated as misses and re-simulated.
const storeVersion = 1

// envelope is the on-disk entry format: the full canonical runner key (the
// filename only carries its hash), an integrity checksum over the result
// bytes, and the result itself as raw JSON.
type envelope struct {
	Version int             `json:"version"`
	Key     string          `json:"key"`
	SHA256  string          `json:"sha256"`
	Result  json.RawMessage `json:"result"`
}

// StoreStats is a snapshot of a DiskStore's traffic counters.
type StoreStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Writes  uint64 `json:"writes"`
	Corrupt uint64 `json:"corrupt"`
	Pruned  uint64 `json:"pruned"`
}

// DiskStore is a durable runner.MemoStore: one JSON file per simulation
// point, named by the SHA-256 of the canonical runner key. Writes are
// atomic (temp file + rename), so a crash mid-write never leaves a
// half-entry under the final name; reads verify version, key and checksum,
// and treat any mismatch as a miss — a corrupt or truncated entry costs a
// re-simulation, never a wrong result. Safe for concurrent use from many
// goroutines and many processes sharing the directory.
type DiskStore struct {
	dir string
	gc  GCPolicy

	hits, misses, writes, corrupt, pruned atomic.Uint64
}

// OpenDiskStore opens (creating if needed) a result store rooted at dir.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: open result store: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

// Stats snapshots the traffic counters.
func (s *DiskStore) Stats() StoreStats {
	return StoreStats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Writes:  s.writes.Load(),
		Corrupt: s.corrupt.Load(),
		Pruned:  s.pruned.Load(),
	}
}

// path maps a runner key to its entry file. Hashing keeps the filename
// short and filesystem-safe regardless of what the canonical key encodes.
func (s *DiskStore) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".json")
}

// Load implements runner.MemoStore. Any defect — unreadable file, bad
// JSON, version or key mismatch, checksum failure — counts as a miss (and
// as Corrupt when the file existed but failed verification).
func (s *DiskStore) Load(key string) (sim.Result, bool) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		return sim.Result{}, false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		s.miss(true)
		return sim.Result{}, false
	}
	if env.Version != storeVersion || env.Key != key {
		// A hash collision between distinct keys lands here too: the stored
		// full key disagrees, so the entry is simply not ours.
		s.miss(env.Version != storeVersion)
		return sim.Result{}, false
	}
	sum := sha256.Sum256(env.Result)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		s.miss(true)
		return sim.Result{}, false
	}
	var res sim.Result
	if err := json.Unmarshal(env.Result, &res); err != nil {
		s.miss(true)
		return sim.Result{}, false
	}
	s.hits.Add(1)
	return res, true
}

func (s *DiskStore) miss(corrupt bool) {
	s.misses.Add(1)
	if corrupt {
		s.corrupt.Add(1)
	}
}

// Store implements runner.MemoStore: marshal, checksum, write to a temp
// file in the same directory and rename over the final name. Concurrent
// writers of the same key race benignly — both write identical bytes (the
// simulator is deterministic) and rename is atomic.
func (s *DiskStore) Store(key string, res sim.Result) error {
	body, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("serve: encode result: %w", err)
	}
	sum := sha256.Sum256(body)
	data, err := json.Marshal(envelope{
		Version: storeVersion,
		Key:     key,
		SHA256:  hex.EncodeToString(sum[:]),
		Result:  body,
	})
	if err != nil {
		return fmt.Errorf("serve: encode entry: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".entry-*.tmp")
	if err != nil {
		return fmt.Errorf("serve: store result: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), s.path(key))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store result: %w", werr)
	}
	s.writes.Add(1)
	return nil
}
