package serve

import (
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

var updateHeatmap = flag.Bool("update-heatmap", false,
	"rewrite testdata/heatmap.golden from the current simulator")

// TestHeatmapGolden pins the /heatmap endpoint byte-for-byte: a completed
// registry experiment serves the same merged WD spatial heatmap JSON at
// every worker count, and that JSON matches the checked-in fixture. A drift
// here means either the simulator's disturbance behaviour or the JSON
// rendering changed; refresh intentional changes with
//
//	go test ./internal/serve -run TestHeatmapGolden -update-heatmap
func TestHeatmapGolden(t *testing.T) {
	spec := smallSpec()
	spec.HeatmapRegions = 8

	var bodies []string
	for _, workers := range []int{1, 4} {
		m, ts := newTestServer(t, ManagerConfig{Workers: workers})
		st := submit(t, ts, spec)
		j, err := m.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		code, body := getBody(t, ts.URL+"/api/v1/jobs/"+st.ID+"/heatmap")
		if code != http.StatusOK {
			t.Fatalf("heatmap (workers=%d) -> %d %s", workers, code, body)
		}
		bodies = append(bodies, body)
	}
	if bodies[0] != bodies[1] {
		t.Fatalf("heatmap differs across worker counts:\n%s\nvs\n%s", bodies[0], bodies[1])
	}

	const fixture = "testdata/heatmap.golden"
	if *updateHeatmap {
		if err := os.MkdirAll(filepath.Dir(fixture), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fixture, []byte(bodies[0]), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatalf("%v (generate with -update-heatmap)", err)
	}
	if bodies[0] != string(want) {
		t.Fatalf("heatmap drifted from fixture:\ngot  %s\nwant %s", bodies[0], want)
	}
}
