// Package trace defines the memory-reference trace format the simulator
// consumes — the stand-in for the paper's PIN-captured SPEC2006/STREAM
// traces (§5.2): sequences of main-memory line references, each annotated
// with the instruction gap since the previous reference so the in-order core
// model can account CPI.
//
// Traces can be held in memory, streamed from generators (internal/
// workload), or serialised to a compact varint binary format for the
// sdpcm-trace tool.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Kind distinguishes reads from writes.
type Kind uint8

const (
	// Read is a demand load miss reaching main memory.
	Read Kind = iota
	// Write is a dirty write-back reaching main memory.
	Write
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Read:
		return "R"
	case Write:
		return "W"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one main-memory reference.
type Record struct {
	Kind Kind
	// Line is the virtual line index within the owning process's address
	// space (page = Line/64, slot = Line%64). The simulator maps it to a
	// physical line through the per-process page table.
	Line uint64
	// Gap is the number of non-memory instructions executed since the
	// previous record of the same core.
	Gap uint32
}

// Magic and version of the binary trace container.
var magic = [4]byte{'S', 'D', 'P', '1'}

// Writer serialises records to a stream.
type Writer struct {
	w     *bufio.Writer
	n     uint64
	began bool
}

// NewWriter wraps w. The header is emitted lazily on the first Append.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Append writes one record.
func (t *Writer) Append(r Record) error {
	if !t.began {
		if _, err := t.w.Write(magic[:]); err != nil {
			return err
		}
		t.began = true
	}
	var buf [3 * binary.MaxVarintLen64]byte
	n := 0
	// Kind is folded into the low bit of the line field.
	n += binary.PutUvarint(buf[n:], r.Line<<1|uint64(r.Kind&1))
	n += binary.PutUvarint(buf[n:], uint64(r.Gap))
	if _, err := t.w.Write(buf[:n]); err != nil {
		return err
	}
	t.n++
	return nil
}

// Count returns the number of records appended so far.
func (t *Writer) Count() uint64 { return t.n }

// Flush commits buffered output. It must be called before the underlying
// writer is closed; an empty trace still gets a header.
func (t *Writer) Flush() error {
	if !t.began {
		if _, err := t.w.Write(magic[:]); err != nil {
			return err
		}
		t.began = true
	}
	return t.w.Flush()
}

// Reader deserialises records from a stream.
type Reader struct {
	r      *bufio.Reader
	header bool
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// NewReaderSize wraps r with an explicit buffer size (bufio rounds tiny
// sizes up to its minimum).
func NewReaderSize(r io.Reader, size int) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, size)}
}

// ErrBadMagic is returned when the stream is not a trace file.
var ErrBadMagic = errors.New("trace: bad magic, not a trace stream")

// Next returns the next record, or io.EOF at clean end of stream.
func (t *Reader) Next() (Record, error) {
	if !t.header {
		var m [4]byte
		if _, err := io.ReadFull(t.r, m[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				return Record{}, ErrBadMagic
			}
			return Record{}, err
		}
		if m != magic {
			return Record{}, ErrBadMagic
		}
		t.header = true
	}
	lineKind, err := binary.ReadUvarint(t.r)
	if err != nil {
		if err == io.ErrUnexpectedEOF {
			return Record{}, io.ErrUnexpectedEOF
		}
		return Record{}, err
	}
	gap, err := binary.ReadUvarint(t.r)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Record{}, err
	}
	if gap > uint64(^uint32(0)) {
		return Record{}, fmt.Errorf("trace: gap %d overflows uint32", gap)
	}
	return Record{
		Kind: Kind(lineKind & 1),
		Line: lineKind >> 1,
		Gap:  uint32(gap),
	}, nil
}

// ReadAll drains the reader into a slice.
func ReadAll(r io.Reader) ([]Record, error) {
	tr := NewReader(r)
	var out []Record
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// WriteAll serialises a slice of records.
func WriteAll(w io.Writer, recs []Record) error {
	tw := NewWriter(w)
	for _, r := range recs {
		if err := tw.Append(r); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// Stream is the interface the simulator pulls references from; both replayed
// traces and live workload generators implement it.
type Stream interface {
	// Next returns the next reference. ok is false when the stream is
	// exhausted (generators never exhaust).
	Next() (Record, bool)
}

// SliceStream replays an in-memory record slice.
type SliceStream struct {
	recs []Record
	pos  int
}

// NewSliceStream wraps recs.
func NewSliceStream(recs []Record) *SliceStream { return &SliceStream{recs: recs} }

// Next implements Stream.
func (s *SliceStream) Next() (Record, bool) {
	if s.pos >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

// Stats summarises a trace.
type Stats struct {
	Records uint64
	Reads   uint64
	Writes  uint64
	Instrs  uint64 // total instructions including gaps and the refs themselves
	Pages   int    // distinct virtual pages touched
}

// RPKI returns reads per thousand instructions.
func (s Stats) RPKI() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.Reads) / float64(s.Instrs) * 1000
}

// WPKI returns writes per thousand instructions.
func (s Stats) WPKI() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.Writes) / float64(s.Instrs) * 1000
}

// Summarize scans records and computes aggregate statistics.
func Summarize(recs []Record) Stats {
	var st Stats
	pages := make(map[uint64]struct{})
	for _, r := range recs {
		st.Records++
		if r.Kind == Read {
			st.Reads++
		} else {
			st.Writes++
		}
		st.Instrs += uint64(r.Gap) + 1
		pages[r.Line/64] = struct{}{}
	}
	st.Pages = len(pages)
	return st
}
