package trace

import "io"

// StreamReader iterates a binary trace through a bounded buffer,
// implementing Stream without materialising the file the way ReadAll does —
// a billion-reference trace replays in constant memory. Decode failures are
// latched: Next reports exhaustion and Err explains why.
type StreamReader struct {
	r   *Reader
	err error
	n   uint64
}

// NewStreamReader wraps r with the default buffer size.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{r: NewReader(r)}
}

// NewStreamReaderSize wraps r with an explicit decode-buffer size (minimum
// sizes are rounded up by bufio); useful to bound memory when replaying many
// traces at once, and in tests to force records to straddle refills.
func NewStreamReaderSize(r io.Reader, size int) *StreamReader {
	return &StreamReader{r: NewReaderSize(r, size)}
}

// Next implements Stream. It returns ok=false at clean end of trace and on
// decode errors alike; Err distinguishes the two.
func (s *StreamReader) Next() (Record, bool) {
	if s.err != nil {
		return Record{}, false
	}
	rec, err := s.r.Next()
	if err != nil {
		if err != io.EOF {
			s.err = err
		}
		return Record{}, false
	}
	s.n++
	return rec, true
}

// Err returns the first decode failure (bad magic, truncated varint, an
// underlying read error), or nil after a clean end of trace.
func (s *StreamReader) Err() error { return s.err }

// Count returns the number of records decoded so far.
func (s *StreamReader) Count() uint64 { return s.n }

// Skip consumes up to n records and returns how many were skipped; fewer
// than n means the trace ended (Err nil) or decoding failed (Err set). The
// simulator uses it to fast-forward replayed streams on checkpoint resume.
func (s *StreamReader) Skip(n int) (int, error) {
	for i := 0; i < n; i++ {
		if _, ok := s.Next(); !ok {
			return i, s.err
		}
	}
	return n, nil
}

// Skip advances the slice cursor by up to n records, mirroring
// StreamReader.Skip for in-memory replays.
func (s *SliceStream) Skip(n int) (int, error) {
	if avail := len(s.recs) - s.pos; n > avail {
		s.pos = len(s.recs)
		return avail, nil
	}
	s.pos += n
	return n, nil
}
