package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: Read, Line: 0, Gap: 0},
		{Kind: Write, Line: 12345678, Gap: 42},
		{Kind: Read, Line: 1 << 40, Gap: ^uint32(0)},
		{Kind: Write, Line: 7, Gap: 1},
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(lines []uint64, gaps []uint32, kinds []bool) bool {
		n := len(lines)
		if len(gaps) < n {
			n = len(gaps)
		}
		if len(kinds) < n {
			n = len(kinds)
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			k := Read
			if kinds[i] {
				k = Write
			}
			recs[i] = Record{Kind: k, Line: lines[i] >> 1, Gap: gaps[i]}
		}
		var buf bytes.Buffer
		if err := WriteAll(&buf, recs); err != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty trace: %v, %d records", err, len(got))
	}
}

func TestBadMagic(t *testing.T) {
	_, err := ReadAll(bytes.NewBufferString("not a trace"))
	if err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	// Too-short stream is also bad magic, not EOF.
	_, err = ReadAll(bytes.NewBufferString("SD"))
	if err != ErrBadMagic {
		t.Fatalf("short stream err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, []Record{{Kind: Write, Line: 1 << 50, Gap: 99}}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop mid-record (after magic, inside the varints).
	_, err := ReadAll(bytes.NewReader(full[:len(full)-1]))
	if err == nil || err == io.EOF {
		t.Fatalf("truncated stream err = %v, want an error", err)
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 5; i++ {
		if err := w.Append(Record{Line: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 5 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestSliceStream(t *testing.T) {
	s := NewSliceStream([]Record{{Line: 1}, {Line: 2}})
	r1, ok := s.Next()
	if !ok || r1.Line != 1 {
		t.Fatal("first record wrong")
	}
	if r2, ok := s.Next(); !ok || r2.Line != 2 {
		t.Fatal("second record wrong")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted stream must return ok=false")
	}
}

func TestSummarize(t *testing.T) {
	recs := []Record{
		{Kind: Read, Line: 0, Gap: 9},    // page 0
		{Kind: Write, Line: 63, Gap: 9},  // page 0
		{Kind: Read, Line: 64, Gap: 9},   // page 1
		{Kind: Write, Line: 640, Gap: 9}, // page 10
	}
	st := Summarize(recs)
	if st.Records != 4 || st.Reads != 2 || st.Writes != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Instrs != 40 {
		t.Fatalf("instrs = %d, want 40", st.Instrs)
	}
	if st.Pages != 3 {
		t.Fatalf("pages = %d, want 3", st.Pages)
	}
	// 2 reads per 40 instructions = 50 RPKI.
	if st.RPKI() != 50 || st.WPKI() != 50 {
		t.Fatalf("RPKI/WPKI = %v/%v", st.RPKI(), st.WPKI())
	}
	empty := Summarize(nil)
	if empty.RPKI() != 0 || empty.WPKI() != 0 {
		t.Fatal("empty trace must have zero xPKI")
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatal("kind strings wrong")
	}
	if Kind(7).String() != "Kind(7)" {
		t.Fatal("unknown kind string wrong")
	}
}
