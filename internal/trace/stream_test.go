package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/iotest"
)

// bigTrace builds a trace whose encoding is much larger than the reader's
// buffer, with multi-byte varints (large line indices and gaps) so records
// straddle buffer refills at many alignments.
func bigTrace(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Kind: Kind(i & 1),
			Line: uint64(i) * 0x1_0000_0001,
			Gap:  uint32(i*7919) % 100000,
		}
	}
	return recs
}

func encode(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamReaderEquivalence: streaming through a buffer far smaller than
// the trace yields exactly the records ReadAll materialises.
func TestStreamReaderEquivalence(t *testing.T) {
	recs := bigTrace(5000)
	data := encode(t, recs)
	if len(data) < 16*1024 {
		t.Fatalf("trace too small (%d bytes) to exercise refills", len(data))
	}
	want, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	s := NewStreamReaderSize(bytes.NewReader(data), 64)
	for i, w := range want {
		got, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended at record %d of %d: %v", i, len(want), s.Err())
		}
		if got != w {
			t.Fatalf("record %d = %+v, want %+v", i, got, w)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream yielded records past the end")
	}
	if s.Err() != nil {
		t.Fatalf("clean end reported error: %v", s.Err())
	}
	if s.Count() != uint64(len(want)) {
		t.Fatalf("Count = %d, want %d", s.Count(), len(want))
	}
}

// TestStreamReaderSlowReader: one-byte reads (the worst short-read pattern)
// must not corrupt varint reassembly.
func TestStreamReaderSlowReader(t *testing.T) {
	recs := bigTrace(300)
	data := encode(t, recs)
	s := NewStreamReader(iotest.OneByteReader(bytes.NewReader(data)))
	for i, w := range recs {
		got, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended at record %d: %v", i, s.Err())
		}
		if got != w {
			t.Fatalf("record %d = %+v, want %+v", i, got, w)
		}
	}
	if _, ok := s.Next(); ok || s.Err() != nil {
		t.Fatalf("end of slow stream: ok=%t err=%v", ok, s.Err())
	}
}

// TestStreamReaderTruncated: every proper prefix of a trace either decodes
// cleanly to fewer records (a cut between records) or latches a truncation
// error — never a panic, never a fabricated record.
func TestStreamReaderTruncated(t *testing.T) {
	recs := bigTrace(20)
	data := encode(t, recs)
	for cut := len(magic); cut < len(data); cut++ {
		s := NewStreamReader(bytes.NewReader(data[:cut]))
		n := 0
		for {
			got, ok := s.Next()
			if !ok {
				break
			}
			if got != recs[n] {
				t.Fatalf("cut=%d: record %d = %+v, want %+v", cut, n, got, recs[n])
			}
			n++
		}
		if err := s.Err(); err == nil {
			// A clean stop is only legal exactly between records.
			if encoded := encode(t, recs[:n]); len(encoded) != cut {
				t.Fatalf("cut=%d: silent stop after %d records (inter-record boundary is %d)", cut, n, len(encoded))
			}
		} else if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut=%d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestStreamReaderZeroLength: a header-only trace is a valid empty stream.
func TestStreamReaderZeroLength(t *testing.T) {
	data := encode(t, nil)
	s := NewStreamReader(bytes.NewReader(data))
	if _, ok := s.Next(); ok {
		t.Fatal("empty trace yielded a record")
	}
	if s.Err() != nil {
		t.Fatalf("empty trace reported error: %v", s.Err())
	}
}

// TestStreamReaderBadMagic: garbage input latches ErrBadMagic.
func TestStreamReaderBadMagic(t *testing.T) {
	s := NewStreamReader(bytes.NewReader([]byte("NOPE then some bytes")))
	if _, ok := s.Next(); ok {
		t.Fatal("bad magic yielded a record")
	}
	if !errors.Is(s.Err(), ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", s.Err())
	}
}

// TestStreamReaderSkip: Skip fast-forwards exactly n records and reports
// short skips at end of trace.
func TestStreamReaderSkip(t *testing.T) {
	recs := bigTrace(100)
	data := encode(t, recs)
	s := NewStreamReaderSize(bytes.NewReader(data), 64)
	if n, err := s.Skip(40); n != 40 || err != nil {
		t.Fatalf("Skip(40) = %d, %v", n, err)
	}
	got, ok := s.Next()
	if !ok || got != recs[40] {
		t.Fatalf("after skip: %+v ok=%t, want %+v", got, ok, recs[40])
	}
	if n, err := s.Skip(1000); n != len(recs)-41 || err != nil {
		t.Fatalf("Skip past end = %d, %v; want %d", n, err, len(recs)-41)
	}
}

// TestSliceStreamSkip mirrors StreamReader.Skip semantics in memory.
func TestSliceStreamSkip(t *testing.T) {
	recs := bigTrace(10)
	s := NewSliceStream(recs)
	if n, err := s.Skip(4); n != 4 || err != nil {
		t.Fatalf("Skip(4) = %d, %v", n, err)
	}
	got, ok := s.Next()
	if !ok || got != recs[4] {
		t.Fatalf("after skip: %+v, want %+v", got, recs[4])
	}
	if n, err := s.Skip(99); n != 5 || err != nil {
		t.Fatalf("Skip past end = %d, %v; want 5", n, err)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted slice stream yielded a record")
	}
}
