package sdpcm_test

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"

	"sdpcm"
)

func TestPublicQuickstartFlow(t *testing.T) {
	cfg := sdpcm.SimConfig{
		Mix:         sdpcm.HomogeneousMix("lbm", 4),
		RefsPerCore: 2500,
		MemPages:    1 << 16,
		RegionPages: 1024,
		Seed:        5,
	}
	cfg.Scheme = sdpcm.Baseline()
	base, err := sdpcm.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scheme = sdpcm.LazyCPreRead(sdpcm.DefaultECPEntries)
	sd, err := sdpcm.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := sdpcm.Speedup(base, sd); s <= 1.0 {
		t.Fatalf("SD-PCM speedup = %v, must beat baseline", s)
	}
}

func TestPublicBenchmarksList(t *testing.T) {
	names := sdpcm.Benchmarks()
	if len(names) != 9 {
		t.Fatalf("Benchmarks() = %v, want the 9 Table 3 apps", names)
	}
	spec, err := sdpcm.WorkloadByName("mcf")
	if err != nil || spec.WPKI != 20.47 {
		t.Fatalf("WorkloadByName(mcf) = %+v, %v", spec, err)
	}
}

func TestPublicDisturbanceRates(t *testing.T) {
	wl, bl := sdpcm.DisturbanceRates(sdpcm.SuperDense)
	if math.Abs(wl-0.099) > 1e-3 || math.Abs(bl-0.115) > 1e-3 {
		t.Fatalf("super dense rates = %v/%v", wl, bl)
	}
	if _, bl := sdpcm.DisturbanceRates(sdpcm.DINEnhanced); bl != 0 {
		t.Fatal("DIN layout must be bit-line WD-free")
	}
	if wl, _ := sdpcm.DisturbanceRatesAt(2, 2, 54); wl > 0.001 {
		t.Fatal("54nm must be effectively WD-free")
	}
}

func TestPublicCapacityComparison(t *testing.T) {
	_, din, imp := sdpcm.CapacityComparison(4)
	if math.Abs(din-2.222) > 0.01 || math.Abs(imp-0.80) > 0.01 {
		t.Fatalf("capacity comparison = %v GB, %v", din, imp)
	}
}

func TestPublicSchemeComposition(t *testing.T) {
	s := sdpcm.AllThree(6, sdpcm.Tag23)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.CapacityFraction() <= sdpcm.DIN().CapacityFraction() {
		t.Fatal("LazyC+PreRead+(2:3) must out-capacity DIN")
	}
	// Custom composition through exported fields.
	custom := sdpcm.Baseline()
	custom.Name = "custom"
	custom.PreRead = true
	custom.Tag = sdpcm.Tag34
	if err := custom.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicExperimentTables(t *testing.T) {
	tb := sdpcm.Table1()
	if len(tb.Rows()) != 2 {
		t.Fatal("Table1 must have two rows")
	}
	o := sdpcm.ExperimentOptions{
		RefsPerCore: 800, Cores: 2, MemPages: 1 << 15, RegionPages: 512,
		Benchmarks: []string{"lbm"}, Seed: 1,
	}
	fig, err := sdpcm.Fig12(o)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Get("lbm", "ECP-0") <= 0 {
		t.Fatalf("Fig12 produced no corrections:\n%s", fig)
	}
}

// TestPublicSweepRunner drives the declarative sweep executor through the
// facade: a grid shared across two figure calls deduplicates points, a
// parallel run matches a sequential one byte-for-byte, and the observer
// sees every point.
func TestPublicSweepRunner(t *testing.T) {
	o := sdpcm.ExperimentOptions{
		RefsPerCore: 800, Cores: 2, MemPages: 1 << 15, RegionPages: 512,
		Benchmarks: []string{"lbm"}, Seed: 1,
	}
	events := 0
	o.Observer = sdpcm.SweepObserverFunc(func(sdpcm.SweepEvent) { events++ })
	o.Exec = sdpcm.NewSweepRunner(o)
	// Fig12 and Fig13 declare the same ECP grid: the second figure must be
	// served entirely from the shared cache.
	t12, err := sdpcm.Fig12(o)
	if err != nil {
		t.Fatal(err)
	}
	after12 := o.Exec.Stats()
	t13, err := sdpcm.Fig13(o)
	if err != nil {
		t.Fatal(err)
	}
	st := o.Exec.Stats()
	if st.SimRuns != after12.SimRuns {
		t.Errorf("Fig13 simulated %d new points after Fig12, want 0", st.SimRuns-after12.SimRuns)
	}
	if events != st.Points {
		t.Errorf("observer saw %d events for %d points", events, st.Points)
	}
	// A sequential uncached executor reproduces both tables byte-for-byte.
	seq := o
	seq.Parallel = 1
	seq.NoCache = true
	seq.Observer = nil
	seq.Exec = nil
	s12, err := sdpcm.Fig12(seq)
	if err != nil {
		t.Fatal(err)
	}
	s13, err := sdpcm.Fig13(seq)
	if err != nil {
		t.Fatal(err)
	}
	if t12.String() != s12.String() || t13.String() != s13.String() {
		t.Error("parallel cached tables differ from sequential uncached tables")
	}
}

// TestPublicMetricsSurviveMemoCache runs the same figure twice through one
// shared executor with metrics collection on: the rerun is served entirely
// from the memo cache, yet every cached point still carries the identical
// metrics snapshot it was first simulated with.
func TestPublicMetricsSurviveMemoCache(t *testing.T) {
	o := sdpcm.ExperimentOptions{
		RefsPerCore: 800, Cores: 2, MemPages: 1 << 15, RegionPages: 512,
		Benchmarks: []string{"lbm"}, Seed: 1,
		CollectMetrics: true,
	}
	key := func(ev sdpcm.SweepEvent) string {
		return fmt.Sprintf("%s/%s/ecp%d", ev.Spec.Scheme.Name, ev.Spec.Bench, ev.Spec.Scheme.ECPEntries)
	}
	first := map[string]*sdpcm.MetricsSnapshot{}
	collect := func(into map[string]*sdpcm.MetricsSnapshot, wantCached bool) sdpcm.SweepObserver {
		return sdpcm.SweepObserverFunc(func(ev sdpcm.SweepEvent) {
			if ev.Err != nil {
				t.Errorf("point %s failed: %v", key(ev), ev.Err)
				return
			}
			if ev.Cached != wantCached {
				t.Errorf("point %s cached=%v, want %v", key(ev), ev.Cached, wantCached)
			}
			if ev.Result == nil || ev.Result.Metrics == nil {
				t.Errorf("point %s missing metrics snapshot (cached=%v)", key(ev), ev.Cached)
				return
			}
			into[key(ev)] = ev.Result.Metrics
		})
	}
	o.Observer = collect(first, false)
	o.Exec = sdpcm.NewSweepRunner(o)
	if _, err := sdpcm.Fig12(o); err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("no points observed")
	}
	second := map[string]*sdpcm.MetricsSnapshot{}
	// Options.Observer is per figure call and wins over the shared
	// executor's own observer — several jobs can share one Exec and still
	// keep separate event streams.
	o.Observer = collect(second, true)
	if _, err := sdpcm.Fig12(o); err != nil {
		t.Fatal(err)
	}
	if len(second) != len(first) {
		t.Fatalf("rerun observed %d points, want %d", len(second), len(first))
	}
	for key, snap := range first {
		if !snap.Equal(second[key]) {
			t.Errorf("cached snapshot for %s differs from the original", key)
		}
	}
}

// TestPublicSchemeRegistry exercises the registry surface: every listed
// name resolves to a valid scheme, and the imdb plugin — registered via
// the facade's blank import, never a controller edit — runs end to end.
func TestPublicSchemeRegistry(t *testing.T) {
	names := sdpcm.SchemeNames()
	if len(names) < 14 {
		t.Fatalf("SchemeNames() = %v, want the 13 built-ins plus imdb", names)
	}
	for _, n := range names {
		s, err := sdpcm.SchemeByName(n, 0)
		if err != nil {
			t.Fatalf("SchemeByName(%q): %v", n, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := sdpcm.SchemeByName("imdb", 0); err != nil {
		t.Fatalf("imdb plugin not registered: %v", err)
	}
	s, _ := sdpcm.SchemeByName("imdb", 0)
	res, err := sdpcm.Run(sdpcm.SimConfig{
		Scheme:         s,
		Mix:            sdpcm.HomogeneousMix("mcf", 4),
		RefsPerCore:    2500,
		MemPages:       1 << 16,
		RegionPages:    1024,
		Seed:           5,
		CheckIntegrity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MC.LazyRecords == 0 {
		t.Fatal("imdb barrier absorbed nothing")
	}
}

var updateReadme = flag.Bool("update-readme", false, "rewrite README.md's registry-generated scheme table")

// TestReadmeSchemeTable keeps README.md's scheme table in sync with the
// live registry. Regenerate with:
//
//	go test -run TestReadmeSchemeTable -update-readme
func TestReadmeSchemeTable(t *testing.T) {
	const begin, end = "<!-- schemes:begin -->", "<!-- schemes:end -->"
	var b strings.Builder
	b.WriteString(begin + "\n")
	b.WriteString("| registry name | aliases | scheme |\n|---|---|---|\n")
	for _, n := range sdpcm.SchemeNames() {
		s, err := sdpcm.SchemeByName(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		aliases := strings.Join(sdpcm.SchemeAliases(n), ", ")
		fmt.Fprintf(&b, "| `%s` | %s | %s |\n", n, aliases, s.Name)
	}
	b.WriteString(end)
	want := b.String()

	raw, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	readme := string(raw)
	i := strings.Index(readme, begin)
	j := strings.Index(readme, end)
	if i < 0 || j < i {
		t.Fatalf("README.md lacks the %s/%s markers", begin, end)
	}
	got := readme[i : j+len(end)]
	if got == want {
		return
	}
	if !*updateReadme {
		t.Fatalf("README.md scheme table is stale; regenerate with:\n\tgo test -run TestReadmeSchemeTable -update-readme\nwant:\n%s\ngot:\n%s", want, got)
	}
	if err := os.WriteFile("README.md", []byte(readme[:i]+want+readme[j+len(end):]), 0o644); err != nil {
		t.Fatal(err)
	}
}
