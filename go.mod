module sdpcm

go 1.22
