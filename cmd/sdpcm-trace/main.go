// Command sdpcm-trace generates, captures and inspects main-memory
// reference traces — the stand-in for the paper's PIN-based methodology
// (§5.2).
//
// Subcommands:
//
//	gen     -bench lbm -refs 100000 -o lbm.trc     # memory-level generator
//	capture -bench lbm -refs 100000 -o lbm.trc     # CPU-level stream filtered
//	                                               # through the Table 2 caches
//	info    lbm.trc                                # summary statistics
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"sdpcm/internal/cpu"
	"sdpcm/internal/obs"
	"sdpcm/internal/trace"
	"sdpcm/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usagef("missing subcommand")
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "capture":
		capture(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		usagef("unknown subcommand %q", os.Args[1])
	}
}

// usagef reports a usage error: one line naming the problem, one line of
// usage, exit status 2 (distinct from runtime failures, which exit 1).
func usagef(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sdpcm-trace: %s\n", fmt.Sprintf(format, args...))
	fmt.Fprintln(os.Stderr, "usage: sdpcm-trace gen|capture|info [flags]")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// mustLogger resolves the shared -log flag (” = no structured output,
// matching the other sdpcm commands); an unknown mode is a usage error.
func mustLogger(mode string) *slog.Logger {
	logger, err := obs.NewLogger(mode, os.Stderr)
	if err != nil {
		usagef("%v (usage: -log text|json)", err)
	}
	return logger
}

// benchSpec resolves a -bench name, exiting 2 with the known vocabulary on a
// miss (a misspelled benchmark is a usage error, not a runtime failure).
func benchSpec(bench string) workload.Spec {
	spec, err := workload.ByName(bench)
	if err != nil {
		usagef("%v (known: %s)", err, strings.Join(workload.Names(), "|"))
	}
	return spec
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	bench := fs.String("bench", "lbm", "Table 3 benchmark")
	refs := fs.Int("refs", 100000, "references to generate")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("o", "", "output file (default <bench>.trc)")
	logMode := fs.String("log", "", "structured logging to stderr: 'text' or 'json'")
	fs.Parse(args)
	logger := mustLogger(*logMode)
	if *refs <= 0 {
		usagef("gen: -refs must be positive (got %d)", *refs)
	}
	spec := benchSpec(*bench)
	g, err := workload.NewGenerator(spec, *seed)
	if err != nil {
		fail(err)
	}
	recs := workload.Capture(g, *refs)
	path := orDefault(*out, *bench+".trc")
	writeTrace(path, recs)
	logger.Info("trace generated", "bench", *bench, "refs", len(recs), "path", path)
}

func capture(args []string) {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	bench := fs.String("bench", "lbm", "Table 3 benchmark (behaviour template)")
	refs := fs.Int("refs", 100000, "memory references to capture")
	warmup := fs.Int("warmup", 10000, "leading memory references to discard")
	scale := fs.Float64("cpu-scale", 20, "CPU access intensity multiplier over the memory-level RPKI/WPKI")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("o", "", "output file (default <bench>-cap.trc)")
	logMode := fs.String("log", "", "structured logging to stderr: 'text' or 'json'")
	fs.Parse(args)
	logger := mustLogger(*logMode)
	if *refs <= 0 {
		usagef("capture: -refs must be positive (got %d)", *refs)
	}
	spec := benchSpec(*bench)
	// Reinterpret the spec at CPU level: the caches will filter it back
	// down toward the memory-level rates.
	spec.RPKI *= *scale
	spec.WPKI *= *scale
	res, err := cpu.Capture(cpu.CaptureConfig{
		Spec: spec, MemoryRefs: *refs, WarmupRefs: *warmup, Seed: *seed,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("captured %d refs from %d CPU accesses (%d instructions)\n",
		len(res.Records), res.CPUAccesses, res.Instructions)
	fmt.Printf("L1 miss %.4f  L2 miss %.4f  L3 miss %.4f\n",
		res.L1.MissRate(), res.L2.MissRate(), res.L3.MissRate())
	path := orDefault(*out, *bench+"-cap.trc")
	writeTrace(path, res.Records)
	logger.Info("trace captured", "bench", *bench, "refs", len(res.Records),
		"cpu_accesses", res.CPUAccesses, "path", path)
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	logMode := fs.String("log", "", "structured logging to stderr: 'text' or 'json'")
	fs.Parse(args)
	logger := mustLogger(*logMode)
	if fs.NArg() != 1 {
		usagef("info: expected exactly one trace file, got %d args", fs.NArg())
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fail(err)
	}
	defer f.Close()
	recs, err := trace.ReadAll(f)
	if err != nil {
		fail(err)
	}
	st := trace.Summarize(recs)
	fmt.Printf("records       %d (%d reads, %d writes)\n", st.Records, st.Reads, st.Writes)
	fmt.Printf("instructions  %d\n", st.Instrs)
	fmt.Printf("RPKI / WPKI   %.2f / %.2f\n", st.RPKI(), st.WPKI())
	fmt.Printf("pages touched %d\n", st.Pages)
	logger.Info("trace inspected", "path", fs.Arg(0), "records", st.Records, "pages", st.Pages)
}

func orDefault(v, d string) string {
	if v == "" {
		return d
	}
	return v
}

func writeTrace(path string, recs []trace.Record) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := trace.WriteAll(f, recs); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	st := trace.Summarize(recs)
	fmt.Printf("wrote %s: %d records, RPKI %.2f, WPKI %.2f, %d pages\n",
		path, st.Records, st.RPKI(), st.WPKI(), st.Pages)
}
