// Command sdpcm-sim runs one SD-PCM simulation and prints a detailed report:
// CPI, speedup against the basic-VnC baseline, controller and device
// statistics, and the derived disturbance/lifetime metrics.
//
// Usage:
//
//	sdpcm-sim -scheme lazyc+preread -bench mcf -refs 50000
//	sdpcm-sim -scheme 1:2 -bench lbm
//	sdpcm-sim -scheme lazyc -ecp 8 -bench stream -queue 64
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"sdpcm"
	"sdpcm/internal/obs"
	"sdpcm/internal/pcm"
	"sdpcm/internal/prof"
	"sdpcm/internal/topo"
)

// maxShardsFlag bounds what -shards accepts: anything beyond the bank count
// is already clamped by the simulator, but values this far out are always a
// typo and deserve a usage error rather than a silent clamp.
const maxShardsFlag = 1024

// resolveShards maps the -shards flag to a concrete shard count: 0 picks
// min(banks, GOMAXPROCS) — no point spawning more workers than cores or more
// shards than banks. Results are byte-identical at every value.
func resolveShards(n int) (int, error) {
	if n < 0 || n > maxShardsFlag {
		return 0, fmt.Errorf("-shards %d out of range (usage: -shards 0..%d, 0 = min(banks, GOMAXPROCS))", n, maxShardsFlag)
	}
	if n == 0 {
		return min(pcm.NumBanks, runtime.GOMAXPROCS(0)), nil
	}
	return n, nil
}

func main() { os.Exit(run()) }

// run is main's body; it returns the exit code instead of calling os.Exit so
// deferred cleanups (profile flushing, the observability server) run on every
// path.
func run() int {
	var (
		scheme    = flag.String("scheme", "lazyc+preread", "scheme: "+strings.Join(sdpcm.SchemeNames(), "|"))
		bench     = flag.String("bench", "lbm", "Table 3 benchmark name")
		refs      = flag.Int("refs", 20000, "main-memory references per core")
		cores     = flag.Int("cores", 8, "cores")
		ecp       = flag.Int("ecp", sdpcm.DefaultECPEntries, "ECP entries per line for LazyC schemes")
		queue     = flag.Int("queue", 32, "write queue entries per bank")
		seed      = flag.Uint64("seed", 42, "random seed")
		shards    = flag.Int("shards", 0, "bank-shard worker goroutines per run (0 = min(banks, GOMAXPROCS), 1 = single-goroutine; results are byte-identical)")
		batchWin  = flag.Int("batch-window", 0, "cap the sharded executor's adaptive batch window in ops (0 = default; tuning only, results unchanged)")
		topoFile  = flag.String("topology", "", "JSON topology spec file: run on the multi-module memory it describes instead of the single default DIMM (see DESIGN.md §9)")
		noBase    = flag.Bool("no-baseline", false, "skip the baseline comparison run")
		traces    = flag.String("trace", "", "comma-separated trace files to replay (one per core) instead of -bench")
		metricf   = flag.String("metrics", "", "append the run's metrics snapshot: 'json' or 'table'")
		trEv      = flag.Int("trace-events", 0, "keep the last N controller events in the metrics snapshot")
		listen    = flag.String("listen", "", "serve live /metrics, /progress, /events and /debug/pprof on this address (e.g. :8080) while the run is in flight")
		snapEv    = flag.Uint64("snapshot-interval", 0, "publish a mid-run metrics snapshot every N simulated cycles (default 1M when -listen is set)")
		perfOut   = flag.String("perfetto", "", "write the event-trace tail as Perfetto/Chrome trace-event JSON to this file (implies -trace-events when unset)")
		heatTab   = flag.Bool("heatmap", false, "append the WD spatial heatmap (per-bank x line-region) as an ASCII table")
		heatOut   = flag.String("heatmap-json", "", "write the WD spatial heatmap as JSON to this file")
		heatReg   = flag.Int("heatmap-regions", 16, "line-regions per bank in the WD heatmap")
		ckptPath  = flag.String("checkpoint", "", "periodically write a resumable sim-state checkpoint to this file (atomic replace; requires -checkpoint-every)")
		ckptEvery = flag.Int("checkpoint-every", 0, "checkpoint interval in processed references (0 disables)")
		resume    = flag.Bool("resume", false, "resume from the -checkpoint file when it exists; the resumed run's result is byte-identical to an uninterrupted one")
		logMode   = flag.String("log", "", "structured logging to stderr: 'text' or 'json' (default: legacy plain output only)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memProf   = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	logger, err := obs.NewLogger(*logMode, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdpcm-sim: %v\n", err)
		return 2
	}

	stopProf, err := prof.Start(prof.Flags{CPU: *cpuProf, Mem: *memProf})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdpcm-sim: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "sdpcm-sim: %v\n", err)
		}
	}()

	s, err := sdpcm.SchemeByName(*scheme, *ecp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdpcm-sim: %v (usage: -scheme %s)\n",
			err, strings.Join(sdpcm.SchemeNames(), "|"))
		return 2
	}
	if *metricf != "" && *metricf != "json" && *metricf != "table" {
		fmt.Fprintf(os.Stderr, "sdpcm-sim: unknown -metrics format %q (usage: -metrics json|table)\n", *metricf)
		return 2
	}
	if *traces == "" {
		if _, err := sdpcm.WorkloadByName(*bench); err != nil {
			fmt.Fprintf(os.Stderr, "sdpcm-sim: %v (usage: -bench %s)\n", err, strings.Join(sdpcm.Benchmarks(), "|"))
			return 2
		}
	}
	if *perfOut != "" && *trEv <= 0 {
		*trEv = 65536 // the timeline needs events; keep a generous tail
	}
	nshards, err := resolveShards(*shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdpcm-sim: %v\n", err)
		return 2
	}
	if *batchWin < 0 {
		fmt.Fprintf(os.Stderr, "sdpcm-sim: -batch-window %d out of range (usage: -batch-window N, N >= 0)\n", *batchWin)
		return 2
	}
	cfg := sdpcm.SimConfig{
		Scheme:         s,
		Mix:            sdpcm.HomogeneousMix(*bench, *cores),
		RefsPerCore:    *refs,
		WriteQueueCap:  *queue,
		MemPages:       1 << 17,
		RegionPages:    1024,
		Seed:           *seed,
		Shards:         nshards,
		BatchWindow:    *batchWin,
		CollectMetrics: *metricf != "" || *listen != "",
		TraceEvents:    *trEv,
	}
	if *heatTab || *heatOut != "" {
		cfg.HeatmapRegions = *heatReg
	}
	if *topoFile != "" {
		spec, err := topo.Load(*topoFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdpcm-sim: %v (usage: -topology spec.json; see DESIGN.md §9)\n", err)
			return 2
		}
		cfg.Topology = spec
	}
	var srv *sdpcm.ObsServer
	if *listen != "" {
		srv = sdpcm.NewObsServer()
		addr, err := srv.Start(*listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdpcm-sim: %v\n", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: listening on http://%s\n", addr)
		cfg.OnSnapshot = srv.SetSnapshot
		cfg.SnapshotInterval = *snapEv
		if cfg.SnapshotInterval == 0 {
			cfg.SnapshotInterval = 1 << 20
		}
	}
	if *traces != "" {
		streams, err := sdpcm.LoadTraceStreams(strings.Split(*traces, ",")...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		cfg.Streams = streams
		cfg.Mix = sdpcm.MixSpec{}
		cfg.RefsPerCore = 1 << 40 // streams exhaust on their own
	}
	if *resume && *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "sdpcm-sim: -resume requires -checkpoint to name the file")
		return 2
	}
	if *ckptPath != "" && *ckptEvery > 0 {
		cfg.CheckpointPath = *ckptPath
		cfg.CheckpointEvery = *ckptEvery
	}
	if *resume {
		if _, err := os.Stat(*ckptPath); err == nil {
			cfg.ResumeFrom = *ckptPath
			fmt.Fprintf(os.Stderr, "resuming from %s\n", *ckptPath)
		} else {
			fmt.Fprintf(os.Stderr, "no checkpoint at %s, starting cold\n", *ckptPath)
		}
	}
	logger.Info("run starting", "scheme", s.Name, "bench", *bench,
		"refs_per_core", cfg.RefsPerCore, "cores", *cores, "shards", cfg.Shards)
	res, err := sdpcm.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	logger.Info("run complete", "scheme", res.Scheme, "bench", *bench,
		"cycles", res.Cycles, "cpi", res.CPI)
	if srv != nil && res.ExecMetrics != nil {
		// Mid-run snapshots stay deterministic (byte-identical at every shard
		// count); the final served snapshot folds in the executor-behaviour
		// counters so they reach Prometheus scrapes.
		srv.SetSnapshot(res.Metrics.Combine(res.ExecMetrics))
	}

	fmt.Printf("scheme        %s\n", res.Scheme)
	fmt.Printf("workload      %s x %d cores\n", res.Mix, len(cfg.Mix.Cores)+len(cfg.Streams))
	fmt.Printf("shards        %d\n", cfg.Shards)
	fmt.Printf("cycles        %d\n", res.Cycles)
	fmt.Printf("instructions  %d\n", res.Instructions)
	fmt.Printf("CPI           %.3f\n", res.CPI)
	if *topoFile != "" && !*noBase {
		// Per-module scheme overrides would make a "baseline" rerun compare a
		// topology against itself; the comparison only names single-DIMM runs.
		*noBase = true
		fmt.Printf("speedup       n/a (baseline comparison is single-DIMM only; -topology set)\n")
	}
	if !*noBase {
		baseCfg := cfg
		baseCfg.Scheme = sdpcm.Baseline()
		// The comparison run is internal bookkeeping: don't publish its
		// snapshots or accumulate its heatmap over the main run's outputs.
		baseCfg.OnSnapshot = nil
		baseCfg.SnapshotInterval = 0
		baseCfg.HeatmapRegions = 0
		// Nor does the comparison run checkpoint or resume: its state is not
		// the main run's state.
		baseCfg.CheckpointPath = ""
		baseCfg.CheckpointEvery = 0
		baseCfg.ResumeFrom = ""
		base, err := sdpcm.Run(baseCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("speedup       %.3f (vs basic VnC baseline, CPI %.3f)\n",
			sdpcm.Speedup(base, res), base.CPI)
	}
	fmt.Println()
	fmt.Printf("memory        %d reads (%d forwarded), %d writes (%d coalesced)\n",
		res.MC.DemandReads, res.MC.ForwardedReads, res.MC.WriteRequests, res.MC.Coalesced)
	fmt.Printf("write ops     %d (%d bursty drains; %d burst ops, %d background ops)\n",
		res.MC.WriteOps, res.MC.Drains, res.MC.BurstOps, res.MC.BackgroundOps)
	fmt.Printf("VnC           %d verify reads, %d cascade reads, %d corrections (%.3f/write), %d lazy records\n",
		res.MC.VerifyReads, res.MC.CascadeReads, res.MC.CorrectionWrites,
		res.CorrectionsPerWrite(), res.MC.LazyRecords)
	fmt.Printf("PreRead       %d issued, %d forwarded, %d canceled, %d full hits\n",
		res.MC.PreReadsIssued, res.MC.PreReadsForwarded, res.MC.PreReadsCanceled, res.MC.PreReadHits)
	fmt.Printf("disturbance   %.3f word-line errors/write, %.3f bit-line errors/adjacent line (max %d)\n",
		res.WordLineErrorsPerWrite(), res.BitLineErrorsPerAdjacentLine(), res.WD.MaxBitLinePerLine)
	fmt.Printf("lifetime      data chips %.5f, ECP chip %.5f (normalised)\n",
		res.DataChipLifetime(), res.ECPChipLifetime())
	fmt.Printf("VM            %d page faults, %d TLB misses\n", res.PageFaults, res.TLBMisses)
	if len(res.Modules) > 0 {
		fmt.Println()
		for _, m := range res.Modules {
			fmt.Printf("module %-8s %s, %d banks, %d pages, link %d cycles: %d write ops, %.3f corrections/write\n",
				m.Name, m.Scheme, m.Banks, m.Pages, m.LinkCycles, m.MC.WriteOps, m.CorrectionsPerWrite())
		}
	}

	if res.Metrics != nil && *metricf != "" {
		fmt.Println()
		// Executor-behaviour counters (sharded runs only) render alongside
		// the deterministic snapshot; the events tail stays the run's own.
		snap := res.Metrics.Combine(res.ExecMetrics)
		var err error
		if *metricf == "json" {
			err = snap.WriteJSON(os.Stdout)
		} else {
			err = snap.WriteTable(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if *perfOut != "" {
		if err := writeFileWith(*perfOut, func(w io.Writer) error {
			var events []sdpcm.MetricsEvent
			if res.Metrics != nil {
				events = res.Metrics.Events
			}
			return sdpcm.WritePerfetto(w, events)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "sdpcm-sim: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote Perfetto timeline to %s (open in ui.perfetto.dev)\n", *perfOut)
	}
	if *heatTab {
		fmt.Println()
		if err := sdpcm.WriteHeatmapTable(os.Stdout, res.Heatmap); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if *heatOut != "" {
		if err := writeFileWith(*heatOut, func(w io.Writer) error {
			return sdpcm.WriteHeatmapJSON(w, res.Heatmap)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "sdpcm-sim: %v\n", err)
			return 1
		}
	}
	return 0
}

// writeFileWith creates path, streams fill into it and surfaces the first
// error, including Close (the write matters — it's the command's output).
func writeFileWith(path string, fill func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = fill(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
