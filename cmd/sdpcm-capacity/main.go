// Command sdpcm-capacity prints the geometry-side results of the paper
// without running any simulation: the Table 1 disturbance probabilities,
// the Figure 1 layout summary, the §6.1 capacity/chip-size analysis and the
// §6.2 hardware-overhead accounting.
//
// Usage:
//
//	sdpcm-capacity -gb 4
//	sdpcm-capacity -gb 16 -log json
package main

import (
	"flag"
	"fmt"
	"os"

	"sdpcm"
	"sdpcm/internal/obs"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		capacityGB = flag.Float64("gb", 4, "memory capacity to analyse (GB)")
		logMode    = flag.String("log", "", "structured logging to stderr: 'text' or 'json' (default: plain output only)")
	)
	flag.Parse()

	logger, err := obs.NewLogger(*logMode, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdpcm-capacity: %v (usage: -log text|json)\n", err)
		return 2
	}
	if *capacityGB <= 0 {
		fmt.Fprintf(os.Stderr, "sdpcm-capacity: -gb must be positive, got %g (usage: -gb 4)\n", *capacityGB)
		return 2
	}

	fmt.Println(sdpcm.Table1())

	fmt.Println("== Figure 1: cell layouts ==")
	for _, layout := range []struct {
		l interface {
			CellAreaF2() int
			InterCellSpaceNM() (int, int)
			String() string
		}
		wl, bl float64
	}{
		{l: sdpcm.SuperDense},
		{l: sdpcm.DINEnhanced},
		{l: sdpcm.Prototype},
	} {
		w, b := layout.l.InterCellSpaceNM()
		fmt.Printf("  %-28s extra spacing %2dnm(WL) / %2dnm(BL)\n", layout.l.String(), w, b)
	}
	wlSD, blSD := sdpcm.DisturbanceRates(sdpcm.SuperDense)
	wlDIN, blDIN := sdpcm.DisturbanceRates(sdpcm.DINEnhanced)
	wlP, blP := sdpcm.DisturbanceRates(sdpcm.Prototype)
	fmt.Printf("  WD rates: super-dense %.3f/%.3f, DIN %.3f/%.3f, prototype %.3f/%.3f (WL/BL)\n\n",
		wlSD, blSD, wlDIN, blDIN, wlP, blP)

	sd, din, imp := sdpcm.CapacityComparison(*capacityGB)
	fmt.Printf("== §6.1: %.0f GB SD-PCM vs DIN at equal cell-array area ==\n", *capacityGB)
	fmt.Printf("  SD-PCM usable capacity: %.2f GB\n", sd)
	fmt.Printf("  DIN usable capacity:    %.2f GB\n", din)
	fmt.Printf("  capacity improvement:   %.0f%%\n\n", imp*100)

	fmt.Println(sdpcm.Capacity())
	fmt.Println(sdpcm.Overhead())

	logger.Info("capacity analysis done", "gb", *capacityGB,
		"sdpcm_gb", sd, "din_gb", din, "improvement", imp)
	return 0
}
