package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"sdpcm"
	"sdpcm/internal/pcm"
)

// calibrateReps repeats each configuration and keeps the fastest time —
// minimum, not mean, because scheduling noise only ever adds time.
const calibrateReps = 3

// runCalibrate times the BenchmarkSimRunSharded workload (the heaviest
// scheme, mcf on 8 cores) across a shard-count × batch-window grid on this
// host and prints the fastest configuration as ready-to-paste flags. The
// sweep is wall-clock tuning only: every cell computes the identical Result.
func runCalibrate(refs int, seed uint64) int {
	shardAxis := []int{1, 2, 4, 8, pcm.NumBanks}
	windowAxis := []int{16, 64, 256, 512}

	cfg := sdpcm.SimConfig{
		Scheme:      sdpcm.AllThree(6, sdpcm.Tag23),
		Mix:         sdpcm.HomogeneousMix("mcf", 8),
		RefsPerCore: refs,
		MemPages:    1 << 16,
		RegionPages: 1024,
		Seed:        seed,
	}
	fmt.Fprintf(os.Stderr, "calibrate: %d refs/core x 8 cores, GOMAXPROCS=%d, %d reps per cell (best kept)\n",
		refs, runtime.GOMAXPROCS(0), calibrateReps)

	// Warm up once so first-cell costs (page faults, heap growth) don't
	// masquerade as a slow configuration.
	if _, err := sdpcm.Run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sdpcm-bench: calibrate: %v\n", err)
		return 1
	}

	fmt.Printf("%-8s", "shards")
	for _, w := range windowAxis {
		fmt.Printf(" %12s", fmt.Sprintf("win=%d", w))
	}
	fmt.Println()

	type point struct {
		shards, window int
		best           time.Duration
	}
	var fastest *point
	for _, s := range shardAxis {
		fmt.Printf("%-8d", s)
		for _, w := range windowAxis {
			c := cfg
			c.Shards = s
			c.BatchWindow = w
			best := time.Duration(0)
			for r := 0; r < calibrateReps; r++ {
				t0 := time.Now()
				if _, err := sdpcm.Run(c); err != nil {
					fmt.Fprintf(os.Stderr, "sdpcm-bench: calibrate: %v\n", err)
					return 1
				}
				if d := time.Since(t0); best == 0 || d < best {
					best = d
				}
			}
			fmt.Printf(" %12s", best.Round(time.Millisecond))
			if fastest == nil || best < fastest.best {
				fastest = &point{shards: s, window: w, best: best}
			}
			// Inline execution ignores the window; one column tells all.
			if s <= 1 {
				for range windowAxis[1:] {
					fmt.Printf(" %12s", "-")
				}
				break
			}
		}
		fmt.Println()
	}
	fmt.Printf("\ncalibrate: best -shards %d -batch-window %d (%v)\n",
		fastest.shards, fastest.window, fastest.best.Round(time.Millisecond))
	return 0
}
