// Command sdpcm-bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	sdpcm-bench -exp all                  # every experiment
//	sdpcm-bench -exp fig11 -refs 100000   # the headline comparison, bigger
//	sdpcm-bench -exp fig12,fig13 -benchmarks lbm,mcf
//	sdpcm-bench -exp all -parallel 8 -progress
//
// Every experiment prints a fixed-width table (on stdout) whose rows and
// columns mirror the published figure; see EXPERIMENTS.md for
// paper-vs-measured commentary. Timing and progress go to stderr.
//
// All experiments share one sweep executor: independent simulation points
// run on -parallel workers and points shared between figures (e.g. the
// per-benchmark baseline) simulate once per invocation. Results are
// bit-identical to a sequential run regardless of -parallel.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"sdpcm"
	"sdpcm/internal/obs"
	"sdpcm/internal/pcm"
	"sdpcm/internal/prof"
	"sdpcm/internal/serve"
	"sdpcm/internal/topo"
)

// maxShardsFlag bounds what -shards accepts: anything beyond the bank count
// is already clamped by the simulator, but values this far out are always a
// typo and deserve a usage error rather than a silent clamp.
const maxShardsFlag = 1024

// resolveShards maps the -shards flag to a concrete shard count: 0 picks
// min(banks, GOMAXPROCS) — no point spawning more workers than cores or more
// shards than banks. Results are byte-identical at every value.
func resolveShards(n int) (int, error) {
	if n < 0 || n > maxShardsFlag {
		return 0, fmt.Errorf("-shards %d out of range (usage: -shards 0..%d, 0 = min(banks, GOMAXPROCS))", n, maxShardsFlag)
	}
	if n == 0 {
		return min(pcm.NumBanks, runtime.GOMAXPROCS(0)), nil
	}
	return n, nil
}

// shardsString renders the resolved shard count for the stderr summary. A
// multi-module topology clamps the global request per module (a module never
// runs more shards than it has banks), so the line reports each module's
// effective count, not just what was asked for.
func shardsString(opts sdpcm.ExperimentOptions) string {
	if opts.Topology.IsDefault() {
		return fmt.Sprintf("shards=%d", opts.Shards)
	}
	placements, err := opts.Topology.Resolve(opts.MemPages, opts.RegionPages)
	if err != nil {
		return fmt.Sprintf("shards=%d", opts.Shards)
	}
	parts := make([]string, len(placements))
	for i, pl := range placements {
		n := min(opts.Shards, pl.Banks)
		parts[i] = fmt.Sprintf("%s=%d", pl.Name, n)
	}
	return fmt.Sprintf("shards=%d (%s)", opts.Shards, strings.Join(parts, ", "))
}

// experiments is the shared evaluation registry — the same list the sweep
// service resolves job names against, so the -exp vocabulary and the job
// API never drift apart.
var experiments = sdpcm.Experiments()

// tally accumulates sweep-point events for one experiment's summary line.
type tally struct {
	points, cached int
	simWall        time.Duration
}

func (t *tally) PointDone(ev sdpcm.SweepEvent) {
	t.points++
	if ev.Cached {
		t.cached++
	} else {
		t.simWall += ev.Wall
	}
}

// aggregator folds every completed point's metrics snapshot (and, when
// enabled, its WD heatmap) into one cross-sweep aggregate. Merging is
// commutative (counters and histogram buckets sum, gauges keep the max,
// heatmap cells sum), so the aggregate is deterministic regardless of worker
// count or completion order.
type aggregator struct {
	merged *sdpcm.MetricsSnapshot
	heat   *sdpcm.HeatmapSnapshot
	// publish, when set, receives a copy of the running aggregate after each
	// point — the live /metrics feed. The copy is shallow: Merge builds fresh
	// slices for the next aggregate, so a published snapshot is never written
	// again.
	publish func(*sdpcm.MetricsSnapshot)
}

func (a *aggregator) PointDone(ev sdpcm.SweepEvent) {
	if ev.Err != nil || ev.Result == nil {
		return
	}
	a.heat = a.heat.Merge(ev.Result.Heatmap)
	if ev.Result.Metrics == nil {
		return
	}
	a.merged = a.merged.Merge(ev.Result.Metrics)
	if a.publish != nil && a.merged != nil {
		cp := *a.merged
		a.publish(&cp)
	}
}

func (t *tally) reset() tally {
	out := *t
	*t = tally{}
	return out
}

func main() { os.Exit(run()) }

// run is main's body; it returns the exit code instead of calling os.Exit so
// deferred cleanups (profile flushing, the observability server) run on every
// path.
func run() int {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment list, or 'all'")
		refs      = flag.Int("refs", 6000, "main-memory references per core per run (paper: 10M)")
		cores     = flag.Int("cores", 8, "cores in the CMP")
		seed      = flag.Uint64("seed", 42, "root random seed")
		bench     = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all of Table 3)")
		schemes   = flag.String("schemes", "", "comma-separated scheme roster override for fig11/fig19 (registry names; default: the published roster)")
		memMB     = flag.Int("mem-mb", 512, "simulated PCM capacity in MB")
		region    = flag.Int("region-pages", 1024, "(n:m) marking-region size in pages (paper: 16384 = 64MB)")
		parallel  = flag.Int("parallel", 0, "concurrent simulations (0 = all cores, 1 = sequential; results are identical)")
		shards    = flag.Int("shards", 1, "bank-shard worker goroutines inside each simulation (0 = min(banks, GOMAXPROCS), 1 = single-goroutine; results are byte-identical)")
		batchWin  = flag.Int("batch-window", 0, "cap the sharded executor's adaptive batch window in ops (0 = default; tuning only, results unchanged)")
		calibrate = flag.Bool("calibrate", false, "sweep shard count and batch window on this host, print the timing table and the fastest configuration, then exit")
		progress  = flag.Bool("progress", false, "stream one line per completed simulation point to stderr")
		noCache   = flag.Bool("no-cache", false, "disable result memoization (re-simulate points shared between figures)")
		metricf   = flag.String("metrics", "", "emit the aggregated metrics snapshot after the tables: 'json' or 'table'")
		trEv      = flag.Int("trace-events", 0, "keep the last N controller events per simulation point")
		benchOut  = flag.String("bench-json", "", "write a machine-readable run record (wall time, sims, cache hits, metrics) to this file")
		listen    = flag.String("listen", "", "serve live /metrics, /progress, /events and /debug/pprof on this address (e.g. :8080) while the sweep runs")
		heatTab   = flag.Bool("heatmap", false, "append the merged WD spatial heatmap (per-bank x line-region) as an ASCII table")
		heatOut   = flag.String("heatmap-json", "", "write the merged WD spatial heatmap as JSON to this file")
		heatReg   = flag.Int("heatmap-regions", 16, "line-regions per bank in the WD heatmap")
		ckptDir   = flag.String("checkpoint-dir", "", "directory of per-point resumable checkpoints: a killed sweep rerun with the same flags resumes every in-flight point (requires -checkpoint-every)")
		ckptEvery = flag.Int("checkpoint-every", 0, "per-point checkpoint interval in processed references (0 disables)")
		storeDir  = flag.String("result-store", "", "durable result-store directory: cacheable points are answered from it and persisted back, so identical sweeps across invocations (or via sdpcm-serve) skip simulation")
		storeMaxB = flag.Int64("store-max-bytes", 0, "prune the -result-store down to this many bytes at startup, oldest entries first (0 = unbounded)")
		storeAge  = flag.Duration("store-max-age", 0, "prune -result-store entries older than this at startup (e.g. 720h; 0 = keep forever)")
		topoFile  = flag.String("topology", "", "JSON topology spec file: run every point on the multi-module simulator it describes (see DESIGN.md §9)")
		logMode   = flag.String("log", "", "structured logging to stderr: 'text' or 'json' (default: legacy plain output only)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memProf   = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	logger, err := obs.NewLogger(*logMode, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdpcm-bench: %v\n", err)
		return 2
	}

	stopProf, err := prof.Start(prof.Flags{CPU: *cpuProf, Mem: *memProf})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdpcm-bench: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "sdpcm-bench: %v\n", err)
		}
	}()

	if *metricf != "" && *metricf != "json" && *metricf != "table" {
		fmt.Fprintf(os.Stderr, "sdpcm-bench: unknown -metrics format %q (usage: -metrics json|table)\n", *metricf)
		return 2
	}
	nshards, err := resolveShards(*shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdpcm-bench: %v\n", err)
		return 2
	}
	if *batchWin < 0 {
		fmt.Fprintf(os.Stderr, "sdpcm-bench: -batch-window %d out of range (usage: -batch-window N, N >= 0)\n", *batchWin)
		return 2
	}
	if *calibrate {
		return runCalibrate(*refs, *seed)
	}
	opts := sdpcm.ExperimentOptions{
		RefsPerCore:     *refs,
		Cores:           *cores,
		Seed:            *seed,
		MemPages:        *memMB * 256, // 4KB pages
		RegionPages:     *region,
		Parallel:        *parallel,
		Shards:          nshards,
		BatchWindow:     *batchWin,
		NoCache:         *noCache,
		CollectMetrics:  *metricf != "" || *benchOut != "" || *listen != "",
		TraceEvents:     *trEv,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
	}
	if *heatTab || *heatOut != "" {
		opts.HeatmapRegions = *heatReg
	}
	if *storeDir != "" {
		store, err := serve.OpenDiskStore(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdpcm-bench: %v\n", err)
			return 1
		}
		store.ConfigureGC(serve.GCPolicy{MaxBytes: *storeMaxB, MaxAge: *storeAge})
		if n, freed, err := store.Prune(time.Now()); err != nil {
			fmt.Fprintf(os.Stderr, "sdpcm-bench: %v\n", err)
			return 1
		} else if n > 0 {
			logger.Info("result store pruned", "entries", n, "bytes_freed", freed)
		}
		opts.Store = store
	} else if *storeMaxB > 0 || *storeAge > 0 {
		fmt.Fprintf(os.Stderr, "sdpcm-bench: -store-max-bytes/-store-max-age require -result-store (usage: -result-store DIR -store-max-bytes N)\n")
		return 2
	}
	if *topoFile != "" {
		spec, err := topo.Load(*topoFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdpcm-bench: %v (usage: -topology spec.json; see DESIGN.md §9)\n", err)
			return 2
		}
		opts.Topology = spec
	}
	if *bench != "" {
		known := map[string]bool{}
		for _, b := range sdpcm.Benchmarks() {
			known[b] = true
		}
		for _, b := range strings.Split(*bench, ",") {
			b = strings.TrimSpace(b)
			if !known[b] {
				fmt.Fprintf(os.Stderr, "sdpcm-bench: unknown benchmark %q (usage: -benchmarks %s)\n",
					b, strings.Join(sdpcm.Benchmarks(), ","))
				return 2
			}
			opts.Benchmarks = append(opts.Benchmarks, b)
		}
	}
	if *schemes != "" {
		for _, s := range strings.Split(*schemes, ",") {
			s = strings.TrimSpace(s)
			if _, err := sdpcm.SchemeByName(s, 0); err != nil {
				fmt.Fprintf(os.Stderr, "sdpcm-bench: %v (usage: -schemes %s)\n",
					err, strings.Join(sdpcm.SchemeNames(), "|"))
				return 2
			}
			opts.Schemes = append(opts.Schemes, s)
		}
	}
	counts := &tally{}
	agg := &aggregator{}
	observers := []sdpcm.SweepObserver{counts, agg}
	if *progress {
		observers = append(observers, sdpcm.SweepProgress(os.Stderr))
	}
	var tracker *sdpcm.ObsProgress
	if *listen != "" {
		srv := sdpcm.NewObsServer()
		addr, err := srv.Start(*listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdpcm-bench: %v\n", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: listening on http://%s\n", addr)
		agg.publish = srv.SetSnapshot
		tracker = srv.Progress()
		observers = append(observers, tracker)
	}
	opts.Observer = sdpcm.SweepMulti(observers...)
	// One executor for the whole invocation: its memo cache spans
	// experiments, so points shared between figures simulate once.
	opts.Exec = sdpcm.NewSweepRunner(opts)

	want := map[string]bool{}
	runAll := *exp == "all"
	if !runAll {
		for _, e := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}
	knownExp := map[string]bool{}
	names := make([]string, 0, len(experiments))
	for _, e := range experiments {
		knownExp[e.Name] = true
		names = append(names, e.Name)
	}
	for name := range want {
		if !knownExp[name] {
			fmt.Fprintf(os.Stderr, "sdpcm-bench: unknown experiment %q (usage: -exp all or -exp %s)\n",
				name, strings.Join(names, ","))
			return 2
		}
	}

	start := time.Now()
	ranExps := make([]string, 0, len(experiments))
	for _, e := range experiments {
		if !runAll && !want[e.Name] {
			continue
		}
		ranExps = append(ranExps, e.Name)
		if tracker != nil {
			tracker.Begin(e.Name)
		}
		expStart := time.Now()
		tb, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
			return 1
		}
		fmt.Println(tb)
		fmt.Println()
		c := counts.reset()
		if c.points > 0 {
			fmt.Fprintf(os.Stderr, "(%s completed in %v: %d points, %d simulated, %d cache hits, %s)\n",
				e.Name, time.Since(expStart).Round(time.Millisecond),
				c.points, c.points-c.cached, c.cached, heapString())
		} else {
			fmt.Fprintf(os.Stderr, "(%s completed in %v, %s)\n",
				e.Name, time.Since(expStart).Round(time.Millisecond), heapString())
		}
		logger.Info("experiment done", "exp", e.Name,
			"wall", time.Since(expStart).Round(time.Millisecond),
			"points", c.points, "cache_hits", c.cached)
	}
	st := opts.Exec.Stats()
	if st.Points > 0 {
		fmt.Fprintf(os.Stderr, "total: %d points, %d simulated, %d cache hits, %v wall (parallel=%d, %s), %s\n",
			st.Points, st.SimRuns, st.CacheHits,
			time.Since(start).Round(time.Millisecond), *parallel, shardsString(opts), heapString())
		logger.Info("sweep done", "experiments", len(ranExps),
			"points", st.Points, "sim_runs", st.SimRuns,
			"cache_hits", st.CacheHits, "store_hits", st.StoreHits,
			"wall", time.Since(start).Round(time.Millisecond))
	}
	if *metricf != "" {
		var err error
		if *metricf == "json" {
			err = agg.merged.WriteJSON(os.Stdout)
		} else {
			err = agg.merged.WriteTable(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if *heatTab {
		fmt.Println()
		if err := sdpcm.WriteHeatmapTable(os.Stdout, agg.heat); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if *heatOut != "" {
		f, err := os.Create(*heatOut)
		if err == nil {
			err = sdpcm.WriteHeatmapJSON(f, agg.heat)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdpcm-bench: %v\n", err)
			return 1
		}
	}
	if *benchOut != "" {
		if err := writeBenchRecord(*benchOut, ranExps, st, time.Since(start), agg.merged); err != nil {
			fmt.Fprintf(os.Stderr, "sdpcm-bench: %v\n", err)
			return 1
		}
	}
	return 0
}

// heapString summarises the process heap for the stderr stats lines: live
// bytes after the experiment, and the OS-claimed heap high-water mark — the
// figure that catches a memory regression long before the machine swaps.
func heapString() string {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return fmt.Sprintf("heap %.1f MB live / %.1f MB peak",
		float64(m.HeapAlloc)/(1<<20), float64(m.HeapSys)/(1<<20))
}

// benchRecord is the machine-readable run summary emitted by -bench-json —
// one point on the repository's performance trajectory (the CI bench-smoke
// job archives these as build artifacts).
type benchRecord struct {
	Experiments []string               `json:"experiments"`
	Points      int                    `json:"points"`
	SimRuns     int                    `json:"sim_runs"`
	CacheHits   int                    `json:"cache_hits"`
	WallSeconds float64                `json:"wall_seconds"`
	Metrics     *sdpcm.MetricsSnapshot `json:"metrics,omitempty"`
}

func writeBenchRecord(path string, exps []string, st sdpcm.SweepStats, wall time.Duration, m *sdpcm.MetricsSnapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(benchRecord{
		Experiments: exps,
		Points:      st.Points,
		SimRuns:     st.SimRuns,
		CacheHits:   st.CacheHits,
		WallSeconds: wall.Seconds(),
		Metrics:     m,
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
