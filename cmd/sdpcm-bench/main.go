// Command sdpcm-bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	sdpcm-bench -exp all                  # every experiment
//	sdpcm-bench -exp fig11 -refs 100000   # the headline comparison, bigger
//	sdpcm-bench -exp fig12,fig13 -benchmarks lbm,mcf
//
// Every experiment prints a fixed-width table whose rows/columns mirror the
// published figure; see EXPERIMENTS.md for paper-vs-measured commentary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sdpcm"
)

type runner func(sdpcm.ExperimentOptions) (*sdpcm.ResultTable, error)

func static(f func() *sdpcm.ResultTable) runner {
	return func(sdpcm.ExperimentOptions) (*sdpcm.ResultTable, error) { return f(), nil }
}

var experiments = []struct {
	name string
	run  runner
}{
	{"table1", static(sdpcm.Table1)},
	{"capacity", static(sdpcm.Capacity)},
	{"fig4", sdpcm.Fig4},
	{"fig5", sdpcm.Fig5},
	{"fig11", sdpcm.Fig11},
	{"fig12", sdpcm.Fig12},
	{"fig13", sdpcm.Fig13},
	{"fig14", sdpcm.Fig14},
	{"fig15", sdpcm.Fig15},
	{"fig16", sdpcm.Fig16},
	{"fig17", sdpcm.Fig17},
	{"fig18", sdpcm.Fig18},
	{"fig19", sdpcm.Fig19},
	{"overhead", static(sdpcm.Overhead)},
}

func main() {
	var (
		exp    = flag.String("exp", "all", "comma-separated experiment list, or 'all'")
		refs   = flag.Int("refs", 6000, "main-memory references per core per run (paper: 10M)")
		cores  = flag.Int("cores", 8, "cores in the CMP")
		seed   = flag.Uint64("seed", 42, "root random seed")
		bench  = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all of Table 3)")
		memMB  = flag.Int("mem-mb", 512, "simulated PCM capacity in MB")
		region = flag.Int("region-pages", 1024, "(n:m) marking-region size in pages (paper: 16384 = 64MB)")
	)
	flag.Parse()

	opts := sdpcm.ExperimentOptions{
		RefsPerCore: *refs,
		Cores:       *cores,
		Seed:        *seed,
		MemPages:    *memMB * 256, // 4KB pages
		RegionPages: *region,
	}
	if *bench != "" {
		opts.Benchmarks = strings.Split(*bench, ",")
	}

	want := map[string]bool{}
	runAll := *exp == "all"
	if !runAll {
		for _, e := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}
	known := map[string]bool{}
	for _, e := range experiments {
		known[e.name] = true
	}
	for name := range want {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available:", name)
			for _, e := range experiments {
				fmt.Fprintf(os.Stderr, " %s", e.name)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
	}

	for _, e := range experiments {
		if !runAll && !want[e.name] {
			continue
		}
		start := time.Now()
		tb, err := e.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(tb)
		fmt.Printf("(%s completed in %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
}
