// Command sdpcm-bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	sdpcm-bench -exp all                  # every experiment
//	sdpcm-bench -exp fig11 -refs 100000   # the headline comparison, bigger
//	sdpcm-bench -exp fig12,fig13 -benchmarks lbm,mcf
//	sdpcm-bench -exp all -parallel 8 -progress
//
// Every experiment prints a fixed-width table (on stdout) whose rows and
// columns mirror the published figure; see EXPERIMENTS.md for
// paper-vs-measured commentary. Timing and progress go to stderr.
//
// All experiments share one sweep executor: independent simulation points
// run on -parallel workers and points shared between figures (e.g. the
// per-benchmark baseline) simulate once per invocation. Results are
// bit-identical to a sequential run regardless of -parallel.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sdpcm"
)

type runner func(sdpcm.ExperimentOptions) (*sdpcm.ResultTable, error)

func static(f func() *sdpcm.ResultTable) runner {
	return func(sdpcm.ExperimentOptions) (*sdpcm.ResultTable, error) { return f(), nil }
}

var experiments = []struct {
	name string
	run  runner
}{
	{"table1", static(sdpcm.Table1)},
	{"capacity", static(sdpcm.Capacity)},
	{"fig4", sdpcm.Fig4},
	{"fig5", sdpcm.Fig5},
	{"fig11", sdpcm.Fig11},
	{"fig12", sdpcm.Fig12},
	{"fig13", sdpcm.Fig13},
	{"fig14", sdpcm.Fig14},
	{"fig15", sdpcm.Fig15},
	{"fig16", sdpcm.Fig16},
	{"fig17", sdpcm.Fig17},
	{"fig18", sdpcm.Fig18},
	{"fig19", sdpcm.Fig19},
	{"overhead", static(sdpcm.Overhead)},
}

// tally accumulates sweep-point events for one experiment's summary line.
type tally struct {
	points, cached int
	simWall        time.Duration
}

func (t *tally) PointDone(ev sdpcm.SweepEvent) {
	t.points++
	if ev.Cached {
		t.cached++
	} else {
		t.simWall += ev.Wall
	}
}

func (t *tally) reset() tally {
	out := *t
	*t = tally{}
	return out
}

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment list, or 'all'")
		refs     = flag.Int("refs", 6000, "main-memory references per core per run (paper: 10M)")
		cores    = flag.Int("cores", 8, "cores in the CMP")
		seed     = flag.Uint64("seed", 42, "root random seed")
		bench    = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all of Table 3)")
		memMB    = flag.Int("mem-mb", 512, "simulated PCM capacity in MB")
		region   = flag.Int("region-pages", 1024, "(n:m) marking-region size in pages (paper: 16384 = 64MB)")
		parallel = flag.Int("parallel", 0, "concurrent simulations (0 = all cores, 1 = sequential; results are identical)")
		progress = flag.Bool("progress", false, "stream one line per completed simulation point to stderr")
		noCache  = flag.Bool("no-cache", false, "disable result memoization (re-simulate points shared between figures)")
	)
	flag.Parse()

	opts := sdpcm.ExperimentOptions{
		RefsPerCore: *refs,
		Cores:       *cores,
		Seed:        *seed,
		MemPages:    *memMB * 256, // 4KB pages
		RegionPages: *region,
		Parallel:    *parallel,
		NoCache:     *noCache,
	}
	if *bench != "" {
		opts.Benchmarks = strings.Split(*bench, ",")
	}
	counts := &tally{}
	if *progress {
		opts.Observer = sdpcm.SweepMulti(counts, sdpcm.SweepProgress(os.Stderr))
	} else {
		opts.Observer = counts
	}
	// One executor for the whole invocation: its memo cache spans
	// experiments, so points shared between figures simulate once.
	opts.Exec = sdpcm.NewSweepRunner(opts)

	want := map[string]bool{}
	runAll := *exp == "all"
	if !runAll {
		for _, e := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}
	known := map[string]bool{}
	for _, e := range experiments {
		known[e.name] = true
	}
	for name := range want {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available:", name)
			for _, e := range experiments {
				fmt.Fprintf(os.Stderr, " %s", e.name)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
	}

	start := time.Now()
	for _, e := range experiments {
		if !runAll && !want[e.name] {
			continue
		}
		expStart := time.Now()
		tb, err := e.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(tb)
		fmt.Println()
		c := counts.reset()
		if c.points > 0 {
			fmt.Fprintf(os.Stderr, "(%s completed in %v: %d points, %d simulated, %d cache hits)\n",
				e.name, time.Since(expStart).Round(time.Millisecond),
				c.points, c.points-c.cached, c.cached)
		} else {
			fmt.Fprintf(os.Stderr, "(%s completed in %v)\n",
				e.name, time.Since(expStart).Round(time.Millisecond))
		}
	}
	st := opts.Exec.Stats()
	if st.Points > 0 {
		fmt.Fprintf(os.Stderr, "total: %d points, %d simulated, %d cache hits, %v wall (parallel=%d)\n",
			st.Points, st.SimRuns, st.CacheHits,
			time.Since(start).Round(time.Millisecond), *parallel)
	}
}
