// Command sdpcm-serve is the multi-tenant sweep service: a REST/JSON job
// API over the experiment harness, with live per-job observability and a
// durable on-disk result store shared across jobs, processes and users.
//
// Usage:
//
//	sdpcm-serve -listen :8344 -store ./sdpcm-results
//	curl -d '{"experiment":"fig11","refs_per_core":2000}' localhost:8344/api/v1/jobs
//	curl localhost:8344/api/v1/jobs/job-1/stream        # live SSE
//	curl localhost:8344/api/v1/jobs/job-1/result        # rendered table
//	curl localhost:8344/metrics                         # per-job Prometheus series
//
// Identical sweep points are answered from the durable store instead of
// re-simulating: resubmitting a finished sweep costs disk reads, not CPU.
// SIGTERM/SIGINT drain gracefully — no new jobs, running jobs finish (up
// to -drain-timeout, then cooperative cancel), in-flight HTTP completes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sdpcm/internal/obs"
	"sdpcm/internal/serve"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		listen       = flag.String("listen", ":8344", "HTTP listen address (host:port; :0 picks a free port)")
		storeDir     = flag.String("store", "sdpcm-results", "durable result-store directory ('' disables persistence; in-memory memoization only)")
		storeMaxB    = flag.Int64("store-max-bytes", 0, "prune the result store down to this many bytes, oldest entries first (0 = unbounded)")
		storeAge     = flag.Duration("store-max-age", 0, "prune result-store entries older than this (e.g. 720h; 0 = keep forever)")
		gcInterval   = flag.Duration("store-gc-interval", 10*time.Minute, "how often the result-store retention policy is re-applied while serving")
		maxJobs      = flag.Int("max-jobs", 2, "concurrently running jobs; further submissions queue in order")
		workers      = flag.Int("workers", 0, "concurrent simulations across all jobs (0 = all cores)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for running jobs before canceling them cooperatively")
		logMode      = flag.String("log", "text", "structured log format on stderr: 'text' or 'json'")
	)
	flag.Parse()

	logger, err := obs.NewLogger(*logMode, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdpcm-serve: %v\n", err)
		return 2
	}
	var store *serve.DiskStore
	if *storeDir != "" {
		store, err = serve.OpenDiskStore(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdpcm-serve: %v\n", err)
			return 1
		}
		if *storeMaxB > 0 || *storeAge > 0 {
			store.ConfigureGC(serve.GCPolicy{MaxBytes: *storeMaxB, MaxAge: *storeAge})
			if n, freed, err := store.Prune(time.Now()); err != nil {
				fmt.Fprintf(os.Stderr, "sdpcm-serve: %v\n", err)
				return 1
			} else if n > 0 {
				logger.Info("result store pruned", "entries", n, "bytes_freed", freed)
			}
			stopGC := store.StartGC(*gcInterval)
			defer stopGC()
		}
	} else if *storeMaxB > 0 || *storeAge > 0 {
		fmt.Fprintf(os.Stderr, "sdpcm-serve: -store-max-bytes/-store-max-age require -store (usage: -store DIR -store-max-bytes N)\n")
		return 2
	}
	mgr := serve.NewManager(serve.ManagerConfig{
		Store:   store,
		MaxJobs: *maxJobs,
		Workers: *workers,
		Logger:  logger,
	})
	srv := serve.NewServer(mgr, logger)
	addr, err := srv.Start(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdpcm-serve: %v\n", err)
		return 1
	}
	// The plain line is the machine-parseable startup handshake (scripts
	// watch for it); the slog record carries the structured context.
	fmt.Fprintf(os.Stderr, "serve: listening on http://%s\n", addr)
	logger.Info("listening", "addr", addr, "store", *storeDir, "max_jobs", *maxJobs)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	logger.Info("shutdown signal received, draining", "timeout", *drainTimeout)

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := mgr.Drain(dctx); err != nil {
		logger.Warn("drain deadline hit; remaining jobs were canceled", "error", err)
	}
	if err := srv.Close(); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	logger.Info("drained, exiting")
	return 0
}
