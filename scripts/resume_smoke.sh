#!/usr/bin/env bash
# Kill-and-resume smoke test (the CI resume-determinism job and
# `make resume-smoke`).
#
# The checkpoint/resume contract: a run killed mid-flight (SIGKILL — no
# cleanup, the checkpoint must already be durable) and resumed from its last
# checkpoint prints a report byte-identical to the uninterrupted run. This
# script enforces it end-to-end through the sdpcm-sim binary, at Shards=1 and
# Shards=4, with a plain and a -race build:
#
#   1. run to completion                          -> full.txt
#   2. run with -checkpoint, SIGKILL once the
#      checkpoint file appears (~50% of the run)
#   3. rerun with -resume                         -> resumed.txt
#   4. diff full.txt resumed.txt (byte-for-byte)
#
# The checkpoint interval is >50% of the run so the file is written exactly
# once and never overwritten — the resume always starts from mid-run state.
set -euo pipefail
cd "$(dirname "$0")/.."

REFS=40000
CORES=4
TOTAL=$((REFS * CORES))
EVERY=$((TOTAL / 2 + 1))
FLAGS=(-scheme all -bench mcf -refs "$REFS" -cores "$CORES" \
  -seed 9 -no-baseline -metrics json)

tmp="$(mktemp -d)"
cleanup() {
  [ -n "${SIM_PID:-}" ] && kill -9 "$SIM_PID" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/sdpcm-sim" ./cmd/sdpcm-sim
go build -race -o "$tmp/sdpcm-sim-race" ./cmd/sdpcm-sim

for mode in plain race; do
  bin="$tmp/sdpcm-sim"
  [ "$mode" = race ] && bin="$tmp/sdpcm-sim-race"
  for shards in 1 4; do
    echo "== $mode shards=$shards"
    ckpt="$tmp/$mode-$shards.ckpt"

    "$bin" "${FLAGS[@]}" -shards "$shards" >"$tmp/full.txt"

    "$bin" "${FLAGS[@]}" -shards "$shards" \
      -checkpoint "$ckpt" -checkpoint-every "$EVERY" >/dev/null &
    SIM_PID=$!
    # The checkpoint is published by atomic rename, so existence implies a
    # complete, loadable file. Kill the instant it appears.
    while [ ! -f "$ckpt" ]; do
      if ! kill -0 "$SIM_PID" 2>/dev/null; then
        break # finished before we could kill it; the checkpoint remains
      fi
      sleep 0.02
    done
    if [ ! -f "$ckpt" ]; then
      echo "run exited without writing a checkpoint" >&2
      exit 1
    fi
    kill -9 "$SIM_PID" 2>/dev/null || true
    wait "$SIM_PID" 2>/dev/null || true
    SIM_PID=""

    "$bin" "${FLAGS[@]}" -shards "$shards" \
      -checkpoint "$ckpt" -checkpoint-every "$EVERY" -resume \
      >"$tmp/resumed.txt" 2>"$tmp/resumed.err"
    grep -q "resuming from" "$tmp/resumed.err" || {
      echo "resumed run did not pick up the checkpoint:" >&2
      cat "$tmp/resumed.err" >&2
      exit 1
    }
    if ! diff -u "$tmp/full.txt" "$tmp/resumed.txt"; then
      echo "resume diverged ($mode, shards=$shards)" >&2
      exit 1
    fi
  done
done
echo "resume smoke OK: killed-and-resumed output byte-identical (plain+race, shards 1 and 4)"
