// Command archcheck asserts the package import DAG and the mutual
// independence of the controller's policy files. The pluggable write-path
// architecture only stays pluggable if the dependency arrows keep pointing
// one way: the controller core (internal/mc) must not know about the
// layers above it, the scheme layer (internal/core) must not know about
// the harness, and the policy implementations must not reach into each
// other. `make lint` (and the CI lint job) runs this on every build.
//
// Usage: go run ./scripts/archcheck.go [repo-root]
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// forbiddenImports maps a package directory to import prefixes its non-test
// files must not pull in. Arrows point up the stack only:
//
//	cmd, facade → serve → experiments, runner, obs → sim → core, imdb, topo → mc → device models
var forbiddenImports = map[string][]string{
	// The topology layer is a pure description: it names modules, schemes and
	// geometry as data, and must never reach into the machinery that
	// interprets it — not the simulator, not the scheme registry (scheme names
	// stay strings, resolved by the consumer), not the harness.
	"internal/topo": {
		"sdpcm/internal/core",
		"sdpcm/internal/mc",
		"sdpcm/internal/sim",
		"sdpcm/internal/experiments",
		"sdpcm/internal/runner",
		"sdpcm/internal/obs",
		"sdpcm/internal/serve",
		"sdpcm/internal/imdb",
	},
	// The controller core is beneath the scheme/sim/harness layers; a policy
	// interface that imported its own assembler would be circular by design.
	"internal/mc": {
		"sdpcm/internal/core",
		"sdpcm/internal/topo",
		"sdpcm/internal/sim",
		"sdpcm/internal/experiments",
		"sdpcm/internal/runner",
		"sdpcm/internal/obs",
		"sdpcm/internal/serve",
		"sdpcm/internal/imdb",
	},
	// The scheme layer assembles controller configs; it must not depend on
	// who runs them, nor on any plugin (plugins import core, never the
	// reverse — that is what keeps the registry open).
	"internal/core": {
		"sdpcm/internal/topo",
		"sdpcm/internal/sim",
		"sdpcm/internal/experiments",
		"sdpcm/internal/runner",
		"sdpcm/internal/obs",
		"sdpcm/internal/serve",
		"sdpcm/internal/imdb",
	},
	// A plugin sits beside core: it may use mc and core, not the harness.
	"internal/imdb": {
		"sdpcm/internal/topo",
		"sdpcm/internal/sim",
		"sdpcm/internal/experiments",
		"sdpcm/internal/runner",
		"sdpcm/internal/obs",
		"sdpcm/internal/serve",
	},
	// The simulator drives the controller; the harness drives the simulator.
	"internal/sim": {
		"sdpcm/internal/experiments",
		"sdpcm/internal/runner",
		"sdpcm/internal/obs",
		"sdpcm/internal/serve",
	},
	// The sweep service composes the harness layers; none of them may know
	// it exists — jobs, the HTTP surface and the durable store stay an
	// optional shell over experiments/runner/obs, never a dependency of them.
	"internal/experiments": {
		"sdpcm/internal/serve",
	},
	"internal/runner": {
		"sdpcm/internal/serve",
	},
	"internal/obs": {
		"sdpcm/internal/serve",
	},
}

// policyFiles are internal/mc's policy implementations. Each must build
// against the controller core only: referencing a top-level name declared
// in a sibling policy file couples two policies that are supposed to be
// independently replaceable.
var policyFiles = []string{"correction.go", "preread.go", "cancel.go"}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var violations []string
	violations = append(violations, checkImports(root)...)
	violations = append(violations, checkPolicyIndependence(root)...)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "archcheck: "+v)
		}
		os.Exit(1)
	}
}

// checkImports parses the import clauses of every non-test file in the
// constrained packages and reports forbidden edges.
func checkImports(root string) []string {
	var out []string
	dirs := make([]string, 0, len(forbiddenImports))
	for d := range forbiddenImports {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		banned := forbiddenImports[dir]
		for _, path := range goFiles(root, dir, false) {
			f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
			if err != nil {
				out = append(out, err.Error())
				continue
			}
			for _, imp := range f.Imports {
				target, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				for _, b := range banned {
					if target == b || strings.HasPrefix(target, b+"/") {
						out = append(out, fmt.Sprintf("%s imports %s (forbidden: %s must stay below it)",
							rel(root, path), target, dir))
					}
				}
			}
		}
	}
	return out
}

// checkPolicyIndependence parses internal/mc's policy files and reports any
// use in one of a top-level identifier declared in another.
func checkPolicyIndependence(root string) []string {
	fset := token.NewFileSet()
	parsed := map[string]*ast.File{}
	declared := map[string]map[string]bool{} // file → top-level names
	for _, name := range policyFiles {
		path := filepath.Join(root, "internal/mc", name)
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return []string{err.Error()}
		}
		parsed[name] = f
		declared[name] = topLevelNames(f)
	}
	var out []string
	for _, user := range policyFiles {
		// The union of names declared by the sibling policy files.
		foreign := map[string]string{} // name → declaring file
		for _, other := range policyFiles {
			if other == user {
				continue
			}
			for n := range declared[other] {
				foreign[n] = other
			}
		}
		for _, ref := range identUses(parsed[user]) {
			if owner, hit := foreign[ref.Name]; hit && !declared[user][ref.Name] {
				out = append(out, fmt.Sprintf("internal/mc/%s references %q declared in %s (policy files must be independent)",
					user, ref.Name, owner))
			}
		}
	}
	return out
}

// topLevelNames collects a file's package-scope declarations: plain
// functions (not methods), types, vars and consts.
func topLevelNames(f *ast.File) map[string]bool {
	names := map[string]bool{}
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			if d.Recv == nil {
				names[d.Name.Name] = true
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					names[s.Name.Name] = true
				case *ast.ValueSpec:
					for _, n := range s.Names {
						names[n.Name] = true
					}
				}
			}
		}
	}
	delete(names, "_") // the blank identifier is never a reference target
	return names
}

// identUses walks a file and returns the identifiers used as plain
// references: selector fields/methods and composite-literal keys are
// skipped (they resolve against a type, not the package scope).
func identUses(f *ast.File) []*ast.Ident {
	skip := map[*ast.Ident]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			skip[n.Sel] = true
		case *ast.KeyValueExpr:
			if k, ok := n.Key.(*ast.Ident); ok {
				skip[k] = true
			}
		}
		return true
	})
	var out []*ast.Ident
	ast.Inspect(f, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !skip[id] {
			out = append(out, id)
		}
		return true
	})
	return out
}

// goFiles lists a directory's .go files, excluding tests unless asked.
func goFiles(root, dir string, tests bool) []string {
	entries, err := os.ReadDir(filepath.Join(root, dir))
	if err != nil {
		fmt.Fprintf(os.Stderr, "archcheck: %v\n", err)
		os.Exit(1)
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, filepath.Join(root, dir, name))
	}
	sort.Strings(out)
	return out
}

func rel(root, path string) string {
	if r, err := filepath.Rel(root, path); err == nil {
		return r
	}
	return path
}
