#!/usr/bin/env bash
# Sweep-service smoke test (the CI serve-smoke step and `make serve-smoke`).
#
# End-to-end proof of the sdpcm-serve contract across two server processes
# sharing one durable store directory:
#
#   1. Cold server: submit fig11 at the golden scale, follow the SSE stream
#      (point events + terminal status), check the per-job Prometheus
#      series on /metrics, and byte-compare the fetched result table
#      against testdata/golden/fig11.txt.
#   2. SIGTERM must drain cleanly: exit status 0.
#   3. Warm server on the same -store dir: the identical submission must
#      finish with sim_runs == 0 and store_hits == points — every sweep
#      point answered from disk — and serve a byte-identical table.
#   4. SIGTERM with a job still running (fresh store, nothing cached) must
#      drain it to completion and still exit 0.
#
# The server prints "serve: listening on http://ADDR" to stderr, so the
# script needs no free-port guessing.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
cleanup() {
  [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/sdpcm-serve" ./cmd/sdpcm-serve

store="$tmp/store"
start_server() { # $1 = stderr log file
  "$tmp/sdpcm-serve" -listen 127.0.0.1:0 -store "$store" -log text \
    2>"$1" &
  SERVE_PID=$!
  addr=""
  for _ in $(seq 1 100); do
    addr="$(sed -n 's|^serve: listening on http://||p' "$1" | head -1)"
    [ -n "$addr" ] && break
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
      echo "sdpcm-serve exited before listening:" >&2
      cat "$1" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "sdpcm-serve never printed its listen address" >&2
    exit 1
  fi
}

# The golden fig11 sweep: same knobs as scripts/golden.sh, so the served
# table must match testdata/golden/fig11.txt byte-for-byte (the golden file
# carries one extra trailing newline from the generator's spacer Println).
spec='{"experiment":"fig11","refs_per_core":2000,"cores":4,"mem_mb":128,"region_pages":256,"benchmarks":["gemsFDTD","lbm","mcf"],"seed":42}'

submit() { # prints the job id
  curl -fsS -X POST -d "$spec" "http://$addr/api/v1/jobs" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])'
}

wait_done() { # $1 = job id, $2 = status file to fill
  for _ in $(seq 1 600); do
    curl -fsS "http://$addr/api/v1/jobs/$1" >"$2"
    state="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["state"])' "$2")"
    case "$state" in
      done) return 0 ;;
      failed | canceled)
        echo "job $1 ended in state $state:" >&2
        cat "$2" >&2
        exit 1
        ;;
    esac
    sleep 0.5
  done
  echo "job $1 never finished" >&2
  exit 1
}

stop_server() { # SIGTERM must drain to exit 0
  kill -TERM "$SERVE_PID"
  rc=0
  wait "$SERVE_PID" || rc=$?
  SERVE_PID=""
  if [ "$rc" -ne 0 ]; then
    echo "sdpcm-serve exited $rc on SIGTERM (want clean drain)" >&2
    exit 1
  fi
}

### Pass 1: cold store — the job simulates, streams, and persists.
start_server "$tmp/stderr1.txt"
echo "cold server at http://$addr"

job="$(submit)"
curl -fsSN "http://$addr/api/v1/jobs/$job/stream" >"$tmp/sse.txt" &
SSE_PID=$!
wait_done "$job" "$tmp/status1.json"
wait "$SSE_PID" || { echo "SSE stream did not close cleanly" >&2; exit 1; }

# The stream must carry per-point events and a terminal done status.
grep -q '^event: point$' "$tmp/sse.txt" || {
  echo "SSE stream carried no point events:" >&2
  cat "$tmp/sse.txt" >&2
  exit 1
}
grep '^event: status$' -A1 "$tmp/sse.txt" | grep -q '"state":"done"' || {
  echo "SSE stream never reported state done:" >&2
  cat "$tmp/sse.txt" >&2
  exit 1
}

# The cold run must have actually simulated.
python3 - "$tmp/status1.json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["points"] > 0, s
assert s["sim_runs"] > 0, ("cold run answered from a supposedly empty store", s)
EOF

# /metrics: job-labeled sweep series plus the service self-metrics.
curl -fsS "http://$addr/metrics" >"$tmp/metrics.txt"
grep -q "job=\"$job\"" "$tmp/metrics.txt" || {
  echo "/metrics carries no job=\"$job\" labels" >&2
  exit 1
}
grep -q '^sdpcm_build_info{' "$tmp/metrics.txt" || {
  echo "/metrics carries no sdpcm_build_info" >&2
  exit 1
}
grep -q '^sdpcm_serve_jobs{state="done"} 1$' "$tmp/metrics.txt" || {
  echo "/metrics does not count the finished job:" >&2
  grep '^sdpcm_serve_jobs' "$tmp/metrics.txt" >&2
  exit 1
}

# The served table must be the golden fig11 table, byte for byte.
curl -fsS "http://$addr/api/v1/jobs/$job/result" >"$tmp/result1.txt"
python3 - "$tmp/result1.txt" testdata/golden/fig11.txt <<'EOF'
import sys
served = open(sys.argv[1], "rb").read()
golden = open(sys.argv[2], "rb").read()
assert golden == served + b"\n", "served fig11 table differs from testdata/golden/fig11.txt"
EOF

stop_server

### Pass 2: warm store — the same submission must not simulate at all.
start_server "$tmp/stderr2.txt"
echo "warm server at http://$addr"

job="$(submit)"
wait_done "$job" "$tmp/status2.json"
python3 - "$tmp/status2.json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["points"] > 0, s
assert s["sim_runs"] == 0, ("warm resubmission re-simulated", s)
assert s["store_hits"] == s["points"], ("not every point came from the durable store", s)
EOF

curl -fsS "http://$addr/api/v1/jobs/$job/result" >"$tmp/result2.txt"
cmp -s "$tmp/result1.txt" "$tmp/result2.txt" || {
  echo "warm result differs from cold result" >&2
  exit 1
}

stop_server

### Pass 3: SIGTERM mid-job — the drain must finish the work and exit 0.
store="$tmp/store-drain"
start_server "$tmp/stderr3.txt"
echo "drain server at http://$addr"

job="$(submit)"
stop_server
grep -q 'drained, exiting' "$tmp/stderr3.txt" || {
  echo "drain server never logged a clean drain:" >&2
  cat "$tmp/stderr3.txt" >&2
  exit 1
}

echo "serve smoke OK: cold run streamed and persisted; warm run was sim-free and byte-identical; mid-job SIGTERM drained cleanly"
