#!/usr/bin/env bash
# Golden-table harness. Every experiment's rendered table is pinned
# byte-for-byte under testdata/golden/ at a small, fast, shape-preserving
# scale; the CI golden job regenerates them and fails on any drift.
#
#   scripts/golden.sh --check    # regenerate and diff (CI; default)
#   scripts/golden.sh --update   # refresh the pinned tables (make golden)
#
# The tables are deterministic: the sweep executor produces bit-identical
# results regardless of worker count, and every stochastic element derives
# from -seed. An intentional change to simulator behaviour is recorded by
# rerunning with --update and committing the diff.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:---check}"

GOLDEN_FLAGS=(-refs 2000 -cores 4 -benchmarks gemsFDTD,lbm,mcf -mem-mb 128 -region-pages 256 -seed 42)
EXPS=(table1 capacity fig4 fig5 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19 overhead fig-topo2)

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/sdpcm-bench" ./cmd/sdpcm-bench

generate() { # generate <dir>
  local dir="$1"
  mkdir -p "$dir"
  for exp in "${EXPS[@]}"; do
    "$tmp/sdpcm-bench" -exp "$exp" "${GOLDEN_FLAGS[@]}" >"$dir/$exp.txt" 2>/dev/null
  done
}

case "$mode" in
--update)
  generate testdata/golden
  echo "refreshed testdata/golden (${#EXPS[@]} tables)"
  ;;
--check)
  generate "$tmp/golden"
  status=0
  for exp in "${EXPS[@]}"; do
    if ! diff -u "testdata/golden/$exp.txt" "$tmp/golden/$exp.txt"; then
      echo "golden mismatch: $exp (run 'make golden' to accept intentional changes)" >&2
      status=1
    fi
  done
  if [ "$status" -eq 0 ]; then
    echo "golden tables match (${#EXPS[@]} tables, byte-for-byte)"
  fi
  exit "$status"
  ;;
*)
  echo "usage: scripts/golden.sh [--check|--update]" >&2
  exit 2
  ;;
esac
