// Command benchgate turns `go test -bench` output into a pinned JSON record
// and gates changes on ns/op regressions against a baseline record.
//
// Usage:
//
//	benchgate -emit bench.txt > BENCH_10.json
//	benchgate -gate -old main.json -new BENCH_10.json -threshold 10
//
// Emit mode aggregates repeated runs (-count N) of each benchmark into the
// median of every published metric, so one noisy run does not skew the
// record. Gate mode compares the intersection of the two records and exits
// non-zero when any benchmark's median ns/op regressed by more than the
// threshold; benchmarks absent from the baseline (newly added ones) are
// reported but never fail the gate. The CI job pairs this hard gate with an
// informational benchstat diff — see DESIGN.md ("Data plane & memory
// layout") for how to read the two together.
//
// Speedup mode gates the sharded executor's scaling claim on a live record:
//
//	benchgate -speedup -new BENCH_10.json -base BenchmarkSimRunSharded/1 -min 2.0
//
// It reads the median ns/op of every BenchmarkSimRunSharded/<n> variant,
// reports each variant's speedup over the -base (inline) run, and fails
// unless the best variant reaches -min. With -worst the gate flips to the
// slowest variant, turning -min into an overhead bound: single-core CI runs
// -worst -min 0.925 to pin every sharded configuration's overhead at ~8%
// over inline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type record struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Note       string   `json:"note"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	var (
		emit      = flag.Bool("emit", false, "parse `go test -bench` text (file arg or stdin) and print a JSON record")
		gate      = flag.Bool("gate", false, "compare -new against -old and fail on ns/op regressions")
		speedup   = flag.Bool("speedup", false, "gate the sharded-vs-inline speedup recorded in -new")
		oldPath   = flag.String("old", "", "baseline JSON record for -gate")
		newPath   = flag.String("new", "", "candidate JSON record for -gate or -speedup")
		threshold = flag.Float64("threshold", 10, "ns/op regression percentage that fails the gate")
		baseName  = flag.String("base", "BenchmarkSimRunSharded/1", "inline-reference benchmark for -speedup")
		variants  = flag.String("variants", "BenchmarkSimRunSharded/", "benchmark-name prefix whose records compete for the -speedup gate")
		minRatio  = flag.Float64("min", 2.0, "minimum gated speedup over -base that passes -speedup")
		worst     = flag.Bool("worst", false, "gate the slowest variant instead of the fastest (overhead bound)")
	)
	flag.Parse()
	nModes := 0
	for _, m := range []bool{*emit, *gate, *speedup} {
		if m {
			nModes++
		}
	}
	switch {
	case nModes != 1:
		fmt.Fprintln(os.Stderr, "benchgate: exactly one of -emit, -gate or -speedup is required")
		os.Exit(2)
	case *emit:
		if err := runEmit(flag.Arg(0)); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
	case *speedup:
		ok, err := runSpeedup(*newPath, *baseName, *variants, *minRatio, *worst)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
	default:
		ok, err := runGate(*oldPath, *newPath, *threshold)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
	}
}

// cpuSuffix is the -GOMAXPROCS tail go test appends to benchmark names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads `go test -bench` text and returns per-benchmark metric
// samples keyed by name (CPU suffix stripped), preserving first-seen order.
func parseBench(r io.Reader) (order []string, samples map[string]map[string][]float64, err error) {
	samples = map[string]map[string][]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := cpuSuffix.ReplaceAllString(fields[0], "")
		if _, ok := samples[name]; !ok {
			order = append(order, name)
			samples[name] = map[string][]float64{}
		}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			samples[name][unit] = append(samples[name][unit], v)
		}
	}
	return order, samples, sc.Err()
}

func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func runEmit(path string) error {
	in := io.Reader(os.Stdin)
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	order, samples, err := parseBench(in)
	if err != nil {
		return err
	}
	rep := report{Note: "medians over repeated `go test -bench` runs; see scripts/benchgate"}
	for _, name := range order {
		rec := record{Name: name}
		for unit, vs := range samples[name] {
			m := median(vs)
			switch unit {
			case "ns/op":
				rec.NsPerOp = m
				rec.Runs = len(vs)
			case "B/op":
				rec.BPerOp = m
			case "allocs/op":
				rec.AllocsPerOp = m
			default:
				if rec.Metrics == nil {
					rec.Metrics = map[string]float64{}
				}
				rec.Metrics[unit] = m
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, rec)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func loadReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

func runGate(oldPath, newPath string, threshold float64) (ok bool, err error) {
	if oldPath == "" || newPath == "" {
		return false, fmt.Errorf("-gate needs both -old and -new")
	}
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return false, err
	}
	base := map[string]record{}
	for _, r := range oldRep.Benchmarks {
		base[r.Name] = r
	}
	ok = true
	for _, n := range newRep.Benchmarks {
		o, found := base[n.Name]
		if !found || o.NsPerOp == 0 {
			fmt.Printf("%-50s %12.1f ns/op  (no baseline — new benchmark)\n", n.Name, n.NsPerOp)
			continue
		}
		delta := (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		verdict := "ok"
		if delta > threshold {
			verdict = fmt.Sprintf("FAIL (>%g%%)", threshold)
			ok = false
		}
		fmt.Printf("%-50s %12.1f -> %12.1f ns/op  %+7.1f%%  %s\n",
			n.Name, o.NsPerOp, n.NsPerOp, delta, verdict)
	}
	if !ok {
		fmt.Printf("\nbenchgate: ns/op regression beyond %g%% — see rows marked FAIL\n", threshold)
	}
	return ok, nil
}

// runSpeedup reads one record and gates one variant's speedup over the base
// benchmark: the fastest by default, the slowest with worst. The default
// deliberately takes the best variant, not a fixed one — which shard count
// wins is host-dependent (core count, SMT), while the claim under test,
// "sharding beats inline by at least minRatio here", is not. The worst
// flavour is for overhead bounds, where every configuration must stay close
// to inline.
func runSpeedup(path, base, prefix string, minRatio float64, worst bool) (bool, error) {
	if path == "" {
		return false, fmt.Errorf("-speedup needs -new")
	}
	rep, err := loadReport(path)
	if err != nil {
		return false, err
	}
	var baseNs float64
	for _, r := range rep.Benchmarks {
		if r.Name == base {
			baseNs = r.NsPerOp
		}
	}
	if baseNs == 0 {
		return false, fmt.Errorf("%s: no %s record to compare against", path, base)
	}
	gated, gatedName, label := 0.0, "", "best"
	if worst {
		label = "worst"
	}
	for _, r := range rep.Benchmarks {
		if r.Name == base || !strings.HasPrefix(r.Name, prefix) || r.NsPerOp == 0 {
			continue
		}
		ratio := baseNs / r.NsPerOp
		fmt.Printf("%-50s %12.1f ns/op  %.2fx vs %s\n", r.Name, r.NsPerOp, ratio, base)
		if gatedName == "" || (worst && ratio < gated) || (!worst && ratio > gated) {
			gated, gatedName = ratio, r.Name
		}
	}
	if gatedName == "" {
		return false, fmt.Errorf("%s: no %s* variants besides the base", path, prefix)
	}
	if gated < minRatio {
		fmt.Printf("\nbenchgate: %s sharded speedup %.2fx (%s) below the %.2fx gate\n", label, gated, gatedName, minRatio)
		return false, nil
	}
	fmt.Printf("\nbenchgate: speedup gate passed: %s %.2fx (%s) >= %.2fx\n", label, gated, gatedName, minRatio)
	return true, nil
}
