#!/usr/bin/env bash
# Observability smoke test (the CI obs-smoke step and `make obs-smoke`).
#
# Starts `sdpcm-bench -listen 127.0.0.1:0` on a short sweep, scrapes the
# live endpoints mid-run, and fails on any non-200 response or unparsable
# payload:
#
#   /metrics   must be Prometheus text exposition with sdpcm_-prefixed
#              series and at least one nonzero counter
#   /progress  must be JSON carrying the points_done tally
#   /events    must be JSON
#
# The bench prints its bound address ("obs: listening on http://ADDR") to
# stderr, so the script needs no free-port guessing.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
cleanup() {
  [ -n "${BENCH_PID:-}" ] && kill "$BENCH_PID" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/sdpcm-bench" ./cmd/sdpcm-bench

# A sweep big enough to still be in flight when we scrape: every figure at
# the golden scale.
"$tmp/sdpcm-bench" -exp all -refs 2000 -cores 4 -benchmarks gemsFDTD,lbm,mcf \
  -mem-mb 128 -region-pages 256 -listen 127.0.0.1:0 \
  >"$tmp/stdout.txt" 2>"$tmp/stderr.txt" &
BENCH_PID=$!

# Wait for the listening line (the server binds before the sweep starts).
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's|^obs: listening on http://||p' "$tmp/stderr.txt" | head -1)"
  [ -n "$addr" ] && break
  if ! kill -0 "$BENCH_PID" 2>/dev/null; then
    echo "sdpcm-bench exited before listening:" >&2
    cat "$tmp/stderr.txt" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "sdpcm-bench never printed its listen address" >&2
  exit 1
fi
echo "scraping http://$addr"

# Give the sweep a moment to publish its first aggregate, then scrape while
# it is still running.
ok=1
for _ in $(seq 1 100); do
  curl -fsS "http://$addr/metrics" >"$tmp/metrics.txt" || { ok=0; break; }
  grep -q '^sdpcm_' "$tmp/metrics.txt" && break
  sleep 0.1
done
[ "$ok" -eq 1 ] || { echo "/metrics unreachable" >&2; exit 1; }

# /metrics: exposition shape + a nonzero counter.
if ! grep -q '^# TYPE sdpcm_' "$tmp/metrics.txt"; then
  echo "/metrics carries no sdpcm_ TYPE lines:" >&2
  head "$tmp/metrics.txt" >&2
  exit 1
fi
if ! awk '$1 ~ /^sdpcm_.*_total$/ && $2+0 > 0 { found=1 } END { exit !found }' "$tmp/metrics.txt"; then
  echo "/metrics has no nonzero sdpcm_*_total counter mid-run" >&2
  exit 1
fi

# /progress: valid JSON with a points_done tally.
curl -fsS "http://$addr/progress" >"$tmp/progress.json"
python3 - "$tmp/progress.json" <<'EOF'
import json, sys
p = json.load(open(sys.argv[1]))
assert "points_done" in p, p
assert isinstance(p["experiments"], list), p
EOF

# /events: valid JSON.
curl -fsS "http://$addr/events?n=5" >"$tmp/events.json"
python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$tmp/events.json"

wait "$BENCH_PID"
BENCH_PID=""
echo "obs smoke OK: /metrics, /progress and /events served live data"
