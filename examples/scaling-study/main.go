// Scaling study: why super dense PCM needs SD-PCM at all. The thermal model
// (§2.2.2) shows write disturbance emerging as the technology node shrinks:
// negligible at 54 nm where it was first observed, severe at 20 nm — and
// how much inter-cell spacing (cell area) it costs to suppress it
// physically instead of architecturally.
package main

import (
	"fmt"

	"sdpcm"
)

func main() {
	fmt.Println("Write disturbance vs technology node (4F² cells, minimal 2F pitch)")
	fmt.Printf("  %8s %18s %18s\n", "node", "word-line rate", "bit-line rate")
	for _, node := range []float64{54, 45, 32, 28, 24, 20, 16} {
		wl, bl := sdpcm.DisturbanceRatesAt(2, 2, node)
		fmt.Printf("  %6.0fnm %17.4f%% %17.4f%%\n", node, wl*100, bl*100)
	}

	fmt.Println()
	fmt.Println("Suppressing WD with spacing at 20nm (the Figure 1 design space):")
	fmt.Printf("  %-14s %10s %14s %14s %16s\n",
		"layout", "cell area", "word-line WD", "bit-line WD", "relative density")
	for _, l := range []struct {
		name   string
		wl, bl int
	}{
		{"super dense", 2, 2},
		{"DIN-enhanced", 2, 4},
		{"prototype", 3, 4},
	} {
		wlr, blr := sdpcm.DisturbanceRatesAt(l.wl, l.bl, 20)
		area := l.wl * l.bl
		fmt.Printf("  %-14s %8dF² %13.1f%% %13.1f%% %15.2fx\n",
			l.name, area, wlr*100, blr*100, 4.0/float64(area))
	}

	fmt.Println()
	fmt.Println("The paper's position: keep the 4F² cell (1.00x density), accept the")
	fmt.Println("disturbance rates in row one, and handle them architecturally with")
	fmt.Println("LazyCorrection + PreRead + (n:m)-Alloc — recovering the 80% capacity")
	fmt.Println("that spacing-based designs give away:")
	sd, din, imp := sdpcm.CapacityComparison(4)
	fmt.Printf("  4GB SD-PCM vs %.2fGB DIN at equal silicon: +%.0f%% capacity\n",
		din, imp*100)
	_ = sd
}
