// Allocator tradeoff: the §4.4/§6.6 knob in action. A write-intensive,
// high-priority application (mcf) can trade memory capacity for write
// performance by requesting its pages from an (n:m) allocator: the fewer
// strips used, the fewer adjacent lines each write must verify.
//
// The example also demonstrates the paper's §8 usage model: given a maximum
// acceptable slowdown versus the WD-free DIN design, pick the cheapest
// allocator (most capacity) that meets it.
package main

import (
	"fmt"
	"log"

	"sdpcm"
)

func main() {
	const bench = "mcf"
	cfg := sdpcm.SimConfig{
		Mix:         sdpcm.HomogeneousMix(bench, 8),
		RefsPerCore: 12000,
		Seed:        3,
	}

	run := func(s sdpcm.Scheme) sdpcm.SimResult {
		cfg.Scheme = s
		r, err := sdpcm.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	din := run(sdpcm.DIN())
	base := run(sdpcm.Baseline())

	type point struct {
		scheme sdpcm.Scheme
		res    sdpcm.SimResult
	}
	points := []point{
		{sdpcm.LazyCNM(6, sdpcm.Tag34), sdpcm.SimResult{}},
		{sdpcm.LazyCNM(6, sdpcm.Tag23), sdpcm.SimResult{}},
		{sdpcm.NMAlloc(sdpcm.Tag12), sdpcm.SimResult{}},
	}
	for i := range points {
		points[i].res = run(points[i].scheme)
	}

	fmt.Printf("(n:m)-Alloc tradeoff — %s x 8 cores (write-intensive)\n\n", bench)
	fmt.Printf("  %-22s %10s %10s %14s\n", "scheme", "speedup", "vs DIN", "capacity vs 8F²")
	report := func(name string, r sdpcm.SimResult, cap float64) {
		fmt.Printf("  %-22s %10.3f %9.1f%% %13.2fx\n",
			name, sdpcm.Speedup(base, r), (r.CPI/din.CPI-1)*100, cap)
	}
	report("DIN (8F² reference)", din, 1.0)
	report("baseline VnC", base, sdpcm.Baseline().CapacityFraction()/sdpcm.DIN().CapacityFraction())
	for _, p := range points {
		report(p.scheme.Name, p.res, p.scheme.CapacityFraction()/sdpcm.DIN().CapacityFraction())
	}

	// Pick the densest allocator within a slowdown budget vs DIN (§8).
	const budget = 0.25 // accept up to 25% slower than DIN
	fmt.Printf("\n  policy: densest configuration within %.0f%% of DIN:\n", budget*100)
	best := ""
	bestCap := 0.0
	for _, p := range points {
		slow := p.res.CPI/din.CPI - 1
		if slow <= budget && p.scheme.CapacityFraction() > bestCap {
			best, bestCap = p.scheme.Name, p.scheme.CapacityFraction()
		}
	}
	if best == "" {
		fmt.Println("    none qualifies at this trace length; relax the budget")
	} else {
		fmt.Printf("    -> %s (%.2fx the capacity of DIN)\n",
			best, bestCap/sdpcm.DIN().CapacityFraction())
	}

	// Per-process tags (§4.4's real usage model): only the high-priority
	// app pays the (1:2) capacity cost; its neighbours keep full density.
	mixedCfg := sdpcm.SimConfig{
		Scheme:      sdpcm.LazyC(sdpcm.DefaultECPEntries),
		Mix:         sdpcm.MixSpec{Name: "priority-mix", Cores: []string{"mcf", "lbm", "lbm", "lbm"}},
		CoreTags:    []sdpcm.Tag{sdpcm.Tag12, sdpcm.Tag11, sdpcm.Tag11, sdpcm.Tag11},
		RefsPerCore: 12000,
		Seed:        3,
	}
	mixed, err := sdpcm.Run(mixedCfg)
	if err != nil {
		log.Fatal(err)
	}
	uniformCfg := mixedCfg
	uniformCfg.CoreTags = nil
	uniform, err := sdpcm.Run(uniformCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  per-process tags (mcf under (1:2), three lbm cores under (1:1)):\n")
	fmt.Printf("    uniform (1:1) mix CPI: %.2f\n", uniform.CPI)
	fmt.Printf("    priority mix CPI:      %.2f (%.0f%% faster; only mcf pays capacity)\n",
		mixed.CPI, (uniform.CPI/mixed.CPI-1)*100)
}
