// Lifetime study: how SD-PCM behaves as the DIMM ages (§6.4 Fig. 14) and
// what LazyCorrection costs in endurance (§6.7 Fig. 17/18).
//
// As hard errors accumulate they consume ECP entries, leaving fewer for
// LazyCorrection to park WD errors in — more corrections, slightly lower
// performance. Meanwhile every parked error wears the ECP chip (10 cells
// per fresh pointer) and every correction wears the data chips.
package main

import (
	"fmt"
	"log"

	"sdpcm"
)

func main() {
	const bench = "zeusmp"
	fmt.Printf("DIMM aging study — LazyC(ECP-%d) on %s x 8 cores\n\n",
		sdpcm.DefaultECPEntries, bench)
	fmt.Printf("  %-10s %12s %16s %14s %14s\n",
		"lifetime", "CPI", "normalised perf", "data-chip life", "ECP-chip life")

	var freshCPI float64
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		scheme := sdpcm.LazyC(sdpcm.DefaultECPEntries)
		scheme.HardErrorFn = sdpcm.HardErrorModel(frac)
		res, err := sdpcm.Run(sdpcm.SimConfig{
			Scheme:      scheme,
			Mix:         sdpcm.HomogeneousMix(bench, 8),
			RefsPerCore: 10000,
			Seed:        9,
		})
		if err != nil {
			log.Fatal(err)
		}
		if frac == 0 {
			freshCPI = res.CPI
		}
		fmt.Printf("  %8.0f%% %12.2f %16.4f %14.5f %14.5f\n",
			frac*100, res.CPI, freshCPI/res.CPI,
			res.DataChipLifetime(), res.ECPChipLifetime())
	}

	fmt.Println()
	fmt.Println("  Reading the table:")
	fmt.Println("  - normalised perf barely moves: even at end of life most lines")
	fmt.Println("    keep enough free ECP entries for LazyCorrection (Fig. 14);")
	fmt.Println("  - data chips lose <1% lifetime to correction writes (Fig. 17);")
	fmt.Println("  - the ECP chip absorbs the WD bookkeeping and wears visibly")
	fmt.Println("    faster (Fig. 18) — which is why SD-PCM provisions it as a")
	fmt.Println("    low-density (8F², WD-free) chip.")
}
