// Quickstart: run the SD-PCM design (LazyCorrection + PreRead on super
// dense 4F² PCM) against the basic verify-and-correct baseline on a
// memory-intensive workload, and print the paper's §5.2 speedup metric.
package main

import (
	"fmt"
	"log"

	"sdpcm"
)

func main() {
	cfg := sdpcm.SimConfig{
		Mix:         sdpcm.HomogeneousMix("lbm", 8), // 8 cores, one copy each (§5.2)
		RefsPerCore: 20000,
		Seed:        1,
	}

	cfg.Scheme = sdpcm.Baseline() // basic VnC on 4F² cells
	base, err := sdpcm.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	cfg.Scheme = sdpcm.LazyCPreRead(sdpcm.DefaultECPEntries)
	sd, err := sdpcm.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	cfg.Scheme = sdpcm.DIN() // the 8F² state of the art, for context
	din, err := sdpcm.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SD-PCM quickstart — lbm x 8 cores")
	fmt.Printf("  baseline (basic VnC, 4F²):   CPI %6.2f   speedup 1.00   capacity %.2fx\n",
		base.CPI, sdpcm.Baseline().CapacityFraction())
	fmt.Printf("  LazyC+PreRead (SD-PCM, 4F²): CPI %6.2f   speedup %.2f   capacity %.2fx\n",
		sd.CPI, sdpcm.Speedup(base, sd), sdpcm.LazyCPreRead(6).CapacityFraction())
	fmt.Printf("  DIN (8F² comparator):        CPI %6.2f   speedup %.2f   capacity %.2fx\n",
		din.CPI, sdpcm.Speedup(base, din), sdpcm.DIN().CapacityFraction())
	fmt.Println()
	fmt.Printf("  SD-PCM absorbed %d of %d disturbed-line events in ECP entries\n",
		sd.MC.LazyRecords, sd.MC.LazyRecords+sd.MC.CorrectionWrites)
	fmt.Printf("  corrections per write: baseline %.2f -> SD-PCM %.3f\n",
		base.CorrectionsPerWrite(), sd.CorrectionsPerWrite())
	fmt.Printf("  write disturbance seen: %.2f bit-line errors per adjacent line per write\n",
		sd.BitLineErrorsPerAdjacentLine())
}
