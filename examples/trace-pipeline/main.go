// Trace pipeline: the paper's §5.2 methodology end to end. Generate (or
// capture) a reference trace the way the authors used PIN, persist it, and
// replay the same trace against several schemes — so every design point
// sees exactly the same reference stream, exactly like trace-driven
// simulation papers do.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sdpcm"
)

func main() {
	dir, err := os.MkdirTemp("", "sdpcm-traces")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Step 1: generate per-core traces for a 4-core zeusmp mix and persist
	// them (sdpcm-trace gen does the same from the command line).
	paths := make([]string, 4)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("zeusmp-core%d.trc", i))
		if err := writeTrace(paths[i], "zeusmp", 8000, uint64(100+i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("captured 4 x 8000-ref traces under %s\n\n", dir)

	// Step 2: replay the identical streams under different schemes.
	fmt.Printf("  %-22s %10s %12s\n", "scheme", "CPI", "corr/write")
	var baseCPI float64
	for _, s := range []sdpcm.Scheme{
		sdpcm.Baseline(),
		sdpcm.LazyC(sdpcm.DefaultECPEntries),
		sdpcm.AllThree(sdpcm.DefaultECPEntries, sdpcm.Tag23),
	} {
		streams, err := sdpcm.LoadTraceStreams(paths...)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sdpcm.Run(sdpcm.SimConfig{
			Scheme:  s,
			Streams: streams,
			Seed:    1,
		})
		if err != nil {
			log.Fatal(err)
		}
		if baseCPI == 0 {
			baseCPI = res.CPI
		}
		fmt.Printf("  %-22s %10.2f %12.3f\n", s.Name, res.CPI, res.CorrectionsPerWrite())
	}
	fmt.Printf("\n(replay guarantees all schemes saw the identical reference stream)\n")
}

// writeTrace generates refs records of the named benchmark into path.
func writeTrace(path, bench string, refs int, seed uint64) error {
	recs, err := sdpcm.CaptureWorkload(bench, refs, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return sdpcm.WriteTrace(f, recs)
}
