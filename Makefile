# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go

.PHONY: build test race bench bench-json golden check-golden bench-record obs-smoke resume-smoke serve-smoke lint ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark — a smoke test that the bench harness
# still runs, not a measurement.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# The pinned data-plane benchmark set the benchstat CI gate compares
# against main. Parent names only: sub-benchmarks (WritePath/vnc, ...) run
# because go test splits the -bench regex on '/'.
BENCH_PIN = BenchmarkDevicePeek$$|BenchmarkDeviceWrite$$|BenchmarkDeviceDisturb$$|BenchmarkWDInject$$|BenchmarkWritePath$$|BenchmarkSimulatorThroughput$$|BenchmarkSimRunSharded$$

# Where bench-json records the per-benchmark medians; the CI bench-gate sets
# it explicitly so the Makefile and workflow can never disagree on the name.
BENCH_OUT ?= BENCH_10.json

# Run the pinned set three times, keep the raw text (bench.txt, what
# benchstat consumes) and record per-benchmark medians as $(BENCH_OUT).
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_PIN)' -benchtime 200ms -count 3 \
		./internal/pcm ./internal/wd ./internal/mc . > bench.txt
	$(GO) run ./scripts/benchgate -emit bench.txt > $(BENCH_OUT)

# Refresh the pinned golden tables after an intentional simulator change.
golden:
	./scripts/golden.sh --update

# Regenerate the golden tables and fail on any byte difference (the CI job).
check-golden:
	./scripts/golden.sh --check

# Start sdpcm-bench -listen on a free port and scrape /metrics, /progress
# and /events mid-run; fails on any non-200 or unparsable payload.
obs-smoke:
	./scripts/obs_smoke.sh

# End-to-end sweep-service check: cold sdpcm-serve run (SSE stream, per-job
# /metrics, golden-identical table), warm rerun on the same store dir with
# zero simulations, and a clean mid-job SIGTERM drain.
serve-smoke:
	./scripts/serve_smoke.sh

# Kill a checkpointing sdpcm-sim run with SIGKILL at ~50%, resume it, and
# diff the output byte-for-byte against an uninterrupted run — plain and
# -race builds, Shards=1 and Shards=4 (the CI resume-determinism job).
resume-smoke:
	./scripts/resume_smoke.sh

# Emit one point of the performance trajectory (BENCH_ci.json).
bench-record:
	$(GO) run ./cmd/sdpcm-bench -exp fig11 -refs 2000 -cores 4 \
		-benchmarks gemsFDTD,lbm,mcf -mem-mb 128 -region-pages 256 \
		-metrics json -bench-json BENCH_ci.json >/dev/null

lint:
	$(GO) vet ./...
	test -z "$$(gofmt -l .)"
	$(GO) run ./scripts/archcheck.go

ci: build lint race check-golden bench obs-smoke resume-smoke serve-smoke
