package sdpcm_test

import (
	"fmt"

	"sdpcm"
)

// ExampleTable1 regenerates the paper's Table 1: the disturbance
// probabilities that motivate the whole design.
func ExampleTable1() {
	wl, bl := sdpcm.DisturbanceRates(sdpcm.SuperDense)
	fmt.Printf("word-line: %.3f\n", wl)
	fmt.Printf("bit-line:  %.3f\n", bl)
	// Output:
	// word-line: 0.099
	// bit-line:  0.115
}

// ExampleCapacityComparison reproduces the §6.1 headline: 80% more usable
// capacity than the DIN design at equal cell-array silicon.
func ExampleCapacityComparison() {
	sd, din, imp := sdpcm.CapacityComparison(4)
	fmt.Printf("SD-PCM %.2f GB vs DIN %.2f GB: +%.0f%%\n", sd, din, imp*100)
	// Output:
	// SD-PCM 4.00 GB vs DIN 2.22 GB: +80%
}

// ExampleScheme_CapacityFraction shows the §6 capacity/performance
// trade-off space in one place.
func ExampleScheme_CapacityFraction() {
	for _, s := range []sdpcm.Scheme{
		sdpcm.Baseline(),
		sdpcm.LazyCNM(6, sdpcm.Tag23),
		sdpcm.NMAlloc(sdpcm.Tag12),
		sdpcm.DIN(),
	} {
		fmt.Printf("%-22s %.2fx\n", s.Name, s.CapacityFraction())
	}
	// Output:
	// baseline               1.00x
	// LazyC+(2:3)            0.67x
	// (1:2)-Alloc            0.50x
	// DIN                    0.50x
}

// ExampleDisturbanceRatesAt walks the technology scaling model: write
// disturbance is absent at 54nm (where it was first observed as marginal)
// and severe at 20nm.
func ExampleDisturbanceRatesAt() {
	for _, node := range []float64{54, 20} {
		wl, bl := sdpcm.DisturbanceRatesAt(2, 2, node)
		fmt.Printf("%2.0fnm: word-line %.3f, bit-line %.3f\n", node, wl, bl)
	}
	// Output:
	// 54nm: word-line 0.000, bit-line 0.000
	// 20nm: word-line 0.099, bit-line 0.115
}

// ExampleRun is the minimal simulation workflow: run the SD-PCM design and
// the basic-VnC baseline on the same workload and compare with the §5.2
// speedup metric.
func ExampleRun() {
	cfg := sdpcm.SimConfig{
		Mix:         sdpcm.HomogeneousMix("lbm", 4),
		RefsPerCore: 2000,
		MemPages:    1 << 16,
		RegionPages: 1024,
		Seed:        1,
	}
	cfg.Scheme = sdpcm.Baseline()
	base, err := sdpcm.Run(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	cfg.Scheme = sdpcm.LazyCPreRead(sdpcm.DefaultECPEntries)
	sd, err := sdpcm.Run(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("SD-PCM beats basic VnC: %v\n", sdpcm.Speedup(base, sd) > 1)
	// Output:
	// SD-PCM beats basic VnC: true
}
